(* Benchmark harness regenerating every table and figure of the
   paper's evaluation (§5).  One section per artifact; run all with
   `dune exec bench/main.exe`, or a subset with `--only fig7,tab2`.
   DECIBEL_BENCH_SCALE=<n> scales the data volume (default 1: a small,
   minutes-long run; the paper's absolute numbers used 100 GB on a
   dedicated server, so only relative comparisons are meaningful —
   see EXPERIMENTS.md). *)

open Decibel
open Decibel_bench
open Decibel_util
module Vg = Decibel_graph.Version_graph
module Git_engine = Decibel_gitlike.Git_engine

let engines =
  [
    ("TF", Database.Tuple_first);
    ("VF", Database.Version_first);
    ("HY", Database.Hybrid);
  ]

let bench_root = Fsutil.fresh_dir "decibel-bench"

let fresh_dir name = Filename.concat bench_root name

let load_counter = ref 0

(* every load performed, for the build-time table (tab5) *)
let load_log : (string * string * int * float) list ref = ref []
(* (strategy, engine, branches, seconds) *)

let load ?(clustered = false) ?(durable = false) ~scheme_name ~scheme kind cfg =
  incr load_counter;
  let wl = Strategy.generate kind cfg in
  let dir =
    fresh_dir
      (Printf.sprintf "%s-%s-%d" (Strategy.kind_name kind) scheme_name
         !load_counter)
  in
  let l = Driver.load ~clustered ~durable ~scheme ~dir cfg wl in
  load_log :=
    (Strategy.kind_name kind, scheme_name, cfg.Config.branches,
     l.Driver.load_seconds)
    :: !load_log;
  l

(* ------------------------------------------------------------------ *)
(* Figure 6a: Q1 on flat while scaling the branch count (total dataset
   size fixed), and Figure 6b: Q4 on deep while scaling branches. *)

let branch_scales = [ 10; 50; 100 ]

let fig6a () =
  Report.section
    "Figure 6a — Q1 (single-branch scan) on FLAT, scaling branches";
  Report.note "total dataset size fixed; scanning a random child branch";
  let rows =
    List.map
      (fun nb ->
        let cfg = Config.with_branches nb Config.default in
        string_of_int nb
        :: List.map
             (fun (ename, scheme) ->
               let l = load ~scheme_name:ename ~scheme Strategy.Flat cfg in
               let samples =
                 Driver.q1 l ~branch:(Workload.role_exn l.Driver.workload "child")
               in
               Driver.close l;
               Report.fmt_ms samples)
             engines)
      branch_scales
  in
  Report.table ~headers:([ "branches" ] @ List.map fst engines) ~rows

let fig6b () =
  Report.section
    "Figure 6b — Q4 (scan all branch heads) on DEEP, scaling branches";
  let rows =
    List.map
      (fun nb ->
        let cfg = Config.with_branches nb Config.default in
        string_of_int nb
        :: List.map
             (fun (ename, scheme) ->
               let l = load ~scheme_name:ename ~scheme Strategy.Deep cfg in
               let samples = Driver.q4 l in
               Driver.close l;
               Report.fmt_ms samples)
             engines)
      branch_scales
  in
  Report.table ~headers:([ "branches" ] @ List.map fst engines) ~rows

(* ------------------------------------------------------------------ *)
(* Main suite: figures 7-10 and table 2 share one set of loads per
   strategy (default branch count), including a clustered tuple-first
   variant for figure 7. *)

type main_loads = {
  strategy : Strategy.kind;
  per_engine : (string * Driver.loaded) list; (* TF, VF, HY *)
  tf_clustered : Driver.loaded;
}

let load_main kind =
  let cfg = Config.default in
  {
    strategy = kind;
    per_engine =
      List.map
        (fun (ename, scheme) -> (ename, load ~scheme_name:ename ~scheme kind cfg))
        engines;
    tf_clustered =
      load ~clustered:true ~scheme_name:"TF-clustered"
        ~scheme:Database.Tuple_first kind cfg;
  }

let close_main m =
  List.iter (fun (_, l) -> Driver.close l) m.per_engine;
  Driver.close m.tf_clustered

(* query-target roles per strategy for Q1 (figure 7) *)
let q1_roles kind =
  match kind with
  | Strategy.Deep -> [ ("tail", "tail") ]
  | Strategy.Flat -> [ ("child", "child") ]
  | Strategy.Science ->
      [
        ("mainline", "mainline");
        ("old", "oldest-active");
        ("young", "youngest-active");
      ]
  | Strategy.Curation ->
      [ ("mainline", "mainline"); ("dev", "dev"); ("feat", "feature") ]

(* diff/join pairs per strategy for Q2/Q3 (figures 8, 9) *)
let pair_roles kind =
  match kind with
  | Strategy.Deep -> ("tail", "tail-parent")
  | Strategy.Flat -> ("child", "parent")
  | Strategy.Science -> ("oldest-active", "mainline")
  | Strategy.Curation -> ("mainline", "dev")

let fig7 m =
  List.concat_map
    (fun (label, role) ->
      let row_label =
        Printf.sprintf "%s/%s" (Strategy.kind_name m.strategy) label
      in
      let cells =
        List.map
          (fun (_, l) ->
            Report.fmt_ms
              (Driver.q1 l ~branch:(Workload.role_exn l.Driver.workload role)))
          m.per_engine
        @ [
            Report.fmt_ms
              (Driver.q1 m.tf_clustered
                 ~branch:
                   (Workload.role_exn m.tf_clustered.Driver.workload role));
          ]
      in
      [ row_label :: cells ])
    (q1_roles m.strategy)

let fig8 m =
  let r1, r2 = pair_roles m.strategy in
  let row_label = Strategy.kind_name m.strategy in
  let cells =
    List.map
      (fun (_, l) ->
        Report.fmt_ms
          (Driver.q2 l
             ~b1:(Workload.role_exn l.Driver.workload r1)
             ~b2:(Workload.role_exn l.Driver.workload r2)))
      m.per_engine
  in
  [ row_label :: cells ]

let fig9 m =
  let r1, r2 = pair_roles m.strategy in
  let row_label = Strategy.kind_name m.strategy in
  let cells =
    List.map
      (fun (_, l) ->
        Report.fmt_ms
          (Driver.q3 l
             ~b1:(Workload.role_exn l.Driver.workload r1)
             ~b2:(Workload.role_exn l.Driver.workload r2)))
      m.per_engine
  in
  [ row_label :: cells ]

let fig10 m =
  let row_label = Strategy.kind_name m.strategy in
  let cells =
    List.map (fun (_, l) -> Report.fmt_ms (Driver.q4 l)) m.per_engine
  in
  [ row_label :: cells ]

(* Table 2: commit-history sizes and commit/checkout latencies for the
   bitmap-backed schemes. *)
let tab2 m =
  let rng = Prng.create 99L in
  List.filter_map
    (fun (ename, l) ->
      if ename = "VF" then None
      else begin
        let mainline =
          match Workload.role l.Driver.workload "mainline" with
          | Some b -> b
          | None -> "master"
        in
        let commits = Driver.commit_samples l ~branch:mainline ~count:20 rng in
        let checkouts = Driver.checkout_samples l ~count:30 rng in
        Some
          [
            Printf.sprintf "%s %s" (Strategy.kind_name m.strategy) ename;
            Report.fmt_bytes (Driver.commit_meta_bytes l);
            Report.fmt_ms_pm commits;
            Report.fmt_ms_pm checkouts;
          ]
      end)
    m.per_engine

let main_suite () =
  let fig7_rows = ref [] and fig8_rows = ref [] in
  let fig9_rows = ref [] and fig10_rows = ref [] in
  let tab2_rows = ref [] in
  List.iter
    (fun kind ->
      let m = load_main kind in
      fig7_rows := !fig7_rows @ fig7 m;
      fig8_rows := !fig8_rows @ fig8 m;
      fig9_rows := !fig9_rows @ fig9 m;
      fig10_rows := !fig10_rows @ fig10 m;
      tab2_rows := !tab2_rows @ tab2 m;
      close_main m)
    Strategy.all;
  let eng_headers = List.map fst engines in
  Report.section "Figure 7 — Q1 (single-branch scan) per strategy and branch";
  Report.table
    ~headers:([ "case" ] @ eng_headers @ [ "TF-clust" ])
    ~rows:!fig7_rows;
  Report.section "Figure 8 — Q2 (positive diff of two branches)";
  Report.table ~headers:([ "strategy" ] @ eng_headers) ~rows:!fig8_rows;
  Report.section "Figure 9 — Q3 (join of two branches with predicate)";
  Report.table ~headers:([ "strategy" ] @ eng_headers) ~rows:!fig9_rows;
  Report.section "Figure 10 — Q4 (scan all heads with predicate)";
  Report.table ~headers:([ "strategy" ] @ eng_headers) ~rows:!fig10_rows;
  Report.section
    "Table 2 — bitmap commit data: history size, commit and checkout time";
  Report.table
    ~headers:[ "case"; "agg. history size"; "avg commit"; "avg checkout" ]
    ~rows:!tab2_rows

(* ------------------------------------------------------------------ *)
(* Table 3: merge throughput (two-way vs three-way), curation. *)

let override_policy policy (wl : Workload.t) =
  {
    wl with
    Workload.ops =
      List.map
        (fun (op : Workload.op) ->
          match op with
          | Workload.Merge m -> Workload.Merge { m with policy }
          | other -> other)
        wl.Workload.ops;
  }

let tab3 () =
  Report.section "Table 3 — merge throughput (MB/s of inter-branch diff)";
  let cfg = Config.default in
  let wl = Strategy.generate Strategy.Curation cfg in
  let run scheme_name scheme policy =
    incr load_counter;
    let dir = fresh_dir (Printf.sprintf "tab3-%s-%d" scheme_name !load_counter) in
    let l = Driver.load ~scheme ~dir cfg (override_policy policy wl) in
    let secs =
      List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 l.Driver.merge_stats
    in
    let bytes =
      List.fold_left (fun acc (_, _, b) -> acc + b) 0 l.Driver.merge_stats
    in
    let n = List.length l.Driver.merge_stats in
    Driver.close l;
    (Report.fmt_mbps ~bytes ~seconds:secs, n)
  in
  let rows =
    List.map
      (fun (ename, scheme) ->
        let two, n = run ename scheme Types.Ours in
        let three, _ = run ename scheme Types.Three_way in
        [ ename; two; three; string_of_int n ])
      engines
  in
  Report.table
    ~headers:[ "scheme"; "two-way"; "three-way"; "merges" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Figure 11 + Table 4: table-wise updates (10 branches). *)

let fig11_tab4 () =
  Report.section
    "Figure 11 — Q1 before/after a table-wise update (10 branches)";
  let cfg = Config.with_branches 10 Config.default in
  let tab4_rows = ref [] in
  let fig11_rows =
    List.map
      (fun kind ->
        let role =
          match kind with
          | Strategy.Deep -> "tail"
          | Strategy.Flat -> "child"
          | Strategy.Science | Strategy.Curation -> "mainline"
        in
        let cells =
          List.concat_map
            (fun (ename, scheme) ->
              let l = load ~scheme_name:ename ~scheme kind cfg in
              let branch = Workload.role_exn l.Driver.workload role in
              let before = Driver.q1 l ~branch in
              let pre_bytes = Driver.dataset_bytes l in
              Driver.table_wise_update l ~branch;
              let after = Driver.q1 l ~branch in
              let post_bytes = Driver.dataset_bytes l in
              if ename = "HY" then
                tab4_rows :=
                  !tab4_rows
                  @ [
                      [
                        Strategy.kind_name kind;
                        Report.fmt_bytes pre_bytes;
                        Report.fmt_bytes post_bytes;
                      ];
                    ];
              Driver.close l;
              [ Report.fmt_ms before; Report.fmt_ms after ])
            engines
        in
        Strategy.kind_name kind :: cells)
      Strategy.all
  in
  Report.table
    ~headers:
      [
        "strategy"; "TF pre"; "TF post"; "VF pre"; "VF post"; "HY pre";
        "HY post";
      ]
    ~rows:fig11_rows;
  Report.section "Table 4 — storage impact of table-wise updates";
  Report.table ~headers:[ "strategy"; "pre-size"; "post-size" ] ~rows:!tab4_rows

(* ------------------------------------------------------------------ *)
(* Table 5: build (load) times, from every load this run performed. *)

let tab5 () =
  Report.section "Table 5 — build times (seconds)";
  let rows =
    List.rev_map
      (fun (strategy, engine, branches, secs) ->
        [ strategy; engine; string_of_int branches;
          Printf.sprintf "%.2f s" secs ])
      !load_log
  in
  Report.table ~headers:[ "strategy"; "scheme"; "branches"; "load" ] ~rows

(* ------------------------------------------------------------------ *)
(* Tables 6 and 7: git-like baseline vs Decibel (hybrid) on the deep
   structure, insert-only and update-heavy. *)

let git_variants =
  [
    (Git_engine.One_file, Git_engine.Bin);
    (Git_engine.One_file, Git_engine.Csv);
    (Git_engine.File_per_tuple, Git_engine.Bin);
    (Git_engine.File_per_tuple, Git_engine.Csv);
  ]

let drive_git ~layout ~format cfg (wl : Workload.t) =
  let dir =
    fresh_dir
      (Printf.sprintf "git-%s-%s-%d"
         (Git_engine.layout_name layout)
         (Git_engine.format_name format)
         (incr load_counter; !load_counter))
  in
  let schema = Config.schema cfg in
  let g = Git_engine.create ~dir ~schema ~layout ~format in
  let commit_times = ref [] in
  let versions = ref [] in
  let commits : (string, Vg.version_id list) Hashtbl.t = Hashtbl.create 16 in
  let name_to_bid = Hashtbl.create 16 in
  Hashtbl.replace name_to_bid "master" Vg.master;
  let bid name = Hashtbl.find name_to_bid name in
  List.iter
    (fun (op : Workload.op) ->
      match op with
      | Workload.Insert { branch; key } | Workload.Update { branch; key } ->
          Git_engine.write g (bid branch) (Driver.tuple_of_key cfg key)
      | Workload.Commit branch ->
          let t0 = Unix.gettimeofday () in
          let v = Git_engine.commit g (bid branch) ~message:"bench" in
          commit_times := (Unix.gettimeofday () -. t0) :: !commit_times;
          versions := v :: !versions;
          Hashtbl.replace commits branch
            (v :: Option.value ~default:[] (Hashtbl.find_opt commits branch))
      | Workload.Create_branch { name; from_branch; commits_back } ->
          let vs = Option.value ~default:[] (Hashtbl.find_opt commits from_branch) in
          let from = List.nth vs commits_back in
          let b = Git_engine.create_branch g ~name ~from in
          Hashtbl.replace name_to_bid name b
      | Workload.Merge _ | Workload.Retire _ -> ())
    wl.Workload.ops;
  (* checkout sample over random commits *)
  let rng = Prng.create 31L in
  let varr = Array.of_list !versions in
  let checkout_times =
    List.init 20 (fun _ ->
        let v = varr.(Prng.int rng (Array.length varr)) in
        let t0 = Unix.gettimeofday () in
        ignore (Git_engine.read_version g v);
        Unix.gettimeofday () -. t0)
  in
  let t0 = Unix.gettimeofday () in
  Git_engine.repack g;
  let repack_time = Unix.gettimeofday () -. t0 in
  let tail =
    match Workload.role wl "tail" with Some b -> b | None -> "master"
  in
  let data = Git_engine.data_bytes g (bid tail) in
  let result =
    [
      Printf.sprintf "git %s (%s)"
        (Git_engine.layout_name layout)
        (Git_engine.format_name format);
      Report.fmt_bytes data;
      Report.fmt_bytes (Git_engine.repo_bytes g);
      Printf.sprintf "%.2f s" repack_time;
      Report.fmt_ms_pm !commit_times;
      Report.fmt_ms_pm checkout_times;
    ]
  in
  Fsutil.rm_rf dir;
  result

let drive_decibel_hybrid cfg (wl : Workload.t) =
  incr load_counter;
  let dir = fresh_dir (Printf.sprintf "tab6-hy-%d" !load_counter) in
  let l = Driver.load ~scheme:Database.Hybrid ~dir cfg wl in
  let rng = Prng.create 31L in
  let tail =
    match Workload.role wl "tail" with Some b -> b | None -> "master"
  in
  let commit_times = Driver.commit_samples l ~branch:tail ~count:20 rng in
  let checkout_times = Driver.checkout_samples l ~count:20 rng in
  let n = ref 0 in
  let schema = Database.schema l.Driver.db in
  Database.scan l.Driver.db (Database.branch_named l.Driver.db tail) (fun t ->
      n := !n + Decibel_storage.Tuple.encoded_size schema t);
  let row =
    [
      "Decibel (hybrid)";
      Report.fmt_bytes !n;
      Report.fmt_bytes (Driver.dataset_bytes l + Driver.commit_meta_bytes l);
      "n/a";
      Report.fmt_ms_pm commit_times;
      Report.fmt_ms_pm checkout_times;
    ]
  in
  Driver.close l;
  row

let git_table ~title cfg =
  Report.section title;
  let wl = Strategy.generate Strategy.Deep cfg in
  let rows =
    List.map (fun (layout, format) -> drive_git ~layout ~format cfg wl)
      git_variants
    @ [ drive_decibel_hybrid cfg wl ]
  in
  Report.table
    ~headers:
      [ "system"; "data size"; "repo size"; "repack"; "commit mean+-sd";
        "checkout mean+-sd" ]
    ~rows

let tab6 () =
  let cfg =
    {
      (Config.with_branches 10 Config.default) with
      Config.update_fraction = 0.0;
      commit_every = max 10 (20 * Config.scale);
      records_per_branch = 200 * Config.scale;
    }
  in
  git_table
    ~title:
      "Table 6 — git baseline vs Decibel (hybrid), deep, 100% inserts"
    cfg

let tab7 () =
  let cfg =
    {
      (Config.with_branches 10 Config.default) with
      Config.update_fraction = 0.5;
      commit_every = max 10 (20 * Config.scale);
      records_per_branch = 200 * Config.scale;
    }
  in
  git_table
    ~title:
      "Table 7 — git baseline vs Decibel (hybrid), deep, 50% updates"
    cfg

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md §5. *)

let ablations () =
  Report.section "Ablation — bitmap orientation (tuple- vs branch-oriented)";
  let cfg = Config.default in
  let rows =
    List.map
      (fun (ename, scheme) ->
        let l = load ~scheme_name:ename ~scheme Strategy.Flat cfg in
        let q1s =
          Driver.q1 l ~branch:(Workload.role_exn l.Driver.workload "child")
        in
        let q4s = Driver.q4 l in
        Driver.close l;
        [ ename; Report.fmt_ms q1s; Report.fmt_ms q4s ])
      [
        ("TF branch-oriented", Database.Tuple_first);
        ("TF tuple-oriented", Database.Tuple_first_tuple_oriented);
      ]
  in
  Report.table ~headers:[ "layout"; "Q1 flat"; "Q4 flat" ] ~rows;

  Report.section "Ablation — commit-history layering (replay lengths)";
  let open Decibel_index in
  let dir = fresh_dir "ablation-hist" in
  Fsutil.mkdir_p dir;
  let h = Commit_history.create ~path:(Filename.concat dir "h.chx") in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore
      (Commit_history.commit h
         (Bitvec.of_list (List.init (i + 1) (fun j -> j * 7))))
  done;
  let avg_layered =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + Commit_history.replay_length h i
    done;
    float_of_int !acc /. float_of_int n
  in
  let avg_flat = float_of_int (n + 1) /. 2.0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    ignore (Commit_history.checkout h i)
  done;
  let per_checkout = (Unix.gettimeofday () -. t0) /. float_of_int n in
  Commit_history.close h;
  Report.table
    ~headers:[ "variant"; "avg deltas replayed"; "measured avg checkout" ]
    ~rows:
      [
        [ "two-layer (stride 16)"; Printf.sprintf "%.1f" avg_layered;
          Printf.sprintf "%.3f ms" (per_checkout *. 1000.) ];
        [ "single layer (analytic)"; Printf.sprintf "%.1f" avg_flat; "-" ];
      ];

  Report.section "Ablation — clustered vs interleaved load (TF, flat, Q1)";
  let cfg = Config.default in
  let rows =
    List.map
      (fun (label, clustered) ->
        let l =
          load ~clustered ~scheme_name:("TF-" ^ label)
            ~scheme:Database.Tuple_first Strategy.Flat cfg
        in
        let s =
          Driver.q1 l ~branch:(Workload.role_exn l.Driver.workload "child")
        in
        Driver.close l;
        [ label; Report.fmt_ms s ])
      [ ("interleaved", false); ("clustered", true) ]
  in
  Report.table ~headers:[ "load mode"; "Q1 flat child" ] ~rows;

  Report.section
    "Ablation — record compression (HY, deep, 10 branches; paper §5.5)";
  Report.note
    "low-cardinality record content (compressible, unlike the uniform \
     random benchmark columns)";
  let cfg10 = Config.with_branches 10 Config.default in
  let rows =
    List.map
      (fun (label, compress) ->
        incr load_counter;
        let wl = Strategy.generate Strategy.Deep cfg10 in
        let dir = fresh_dir (Printf.sprintf "abl-comp-%d" !load_counter) in
        Fsutil.mkdir_p dir;
        let db =
          Database.open_ ~compress ~scheme:Database.Hybrid ~dir
            ~schema:(Config.schema cfg10) ()
        in
        (* minimal load *)
        let commits = Hashtbl.create 16 in
        List.iter
          (fun (op : Workload.op) ->
            match op with
            | Workload.Insert { branch; key } ->
                Database.insert db (Database.branch_named db branch)
                  (Driver.compressible_tuple_of_key cfg10 key)
            | Workload.Update { branch; key } ->
                Database.update db (Database.branch_named db branch)
                  (Driver.compressible_tuple_of_key cfg10 key)
            | Workload.Commit branch ->
                let v =
                  Database.commit db (Database.branch_named db branch)
                    ~message:"x"
                in
                Hashtbl.replace commits branch
                  (v
                  :: Option.value ~default:[] (Hashtbl.find_opt commits branch))
            | Workload.Create_branch { name; from_branch; commits_back } ->
                let vs =
                  Option.value ~default:[]
                    (Hashtbl.find_opt commits from_branch)
                in
                ignore
                  (Database.create_branch db ~name
                     ~from:(List.nth vs commits_back))
            | Workload.Merge _ | Workload.Retire _ -> ())
          wl.Workload.ops;
        Database.flush db;
        let pre = Database.dataset_bytes db in
        let tail = Workload.role_exn wl "tail" in
        let b = Database.branch_named db tail in
        let scan_time () =
          let samples =
            List.init 3 (fun _ ->
                Database.drop_caches db;
                let t0 = Unix.gettimeofday () in
                Database.scan db b (fun _ -> ());
                Unix.gettimeofday () -. t0)
          in
          Report.fmt_ms samples
        in
        let q1_pre = scan_time () in
        ignore
          (Database.update_all db b (fun t ->
               let t' = Array.copy t in
               t'.(1) <- Decibel_storage.Value.int 7;
               t'));
        let post = Database.dataset_bytes db in
        let q1_post = scan_time () in
        Database.close db;
        Fsutil.rm_rf dir;
        [ label; Report.fmt_bytes pre; Report.fmt_bytes post; q1_pre; q1_post ])
      [ ("plain", false); ("lz77-compressed", true) ]
  in
  Report.table
    ~headers:[ "records"; "pre-size"; "post-size"; "Q1 pre"; "Q1 post" ]
    ~rows;

  Report.section "Ablation — buffer-pool page size (HY, flat, Q1)";
  let rows =
    List.map
      (fun page_size ->
        incr load_counter;
        let wl = Strategy.generate Strategy.Flat cfg in
        let dir = fresh_dir (Printf.sprintf "abl-page-%d" !load_counter) in
        Fsutil.mkdir_p dir;
        let pool =
          Decibel_storage.Buffer_pool.create ~page_size ~capacity_pages:256 ()
        in
        let db =
          Database.open_ ~pool ~scheme:Database.Hybrid ~dir
            ~schema:(Config.schema cfg) ()
        in
        Database.close db;
        Fsutil.rm_rf dir;
        (* reload through the driver with default pool for timing
           consistency; page-size effect measured via a direct load *)
        let dir2 = fresh_dir (Printf.sprintf "abl-page2-%d" !load_counter) in
        let pool2 =
          Decibel_storage.Buffer_pool.create ~page_size ~capacity_pages:256 ()
        in
        let db2 =
          Database.open_ ~pool:pool2 ~scheme:Database.Hybrid ~dir:dir2
            ~schema:(Config.schema cfg) ()
        in
        (* minimal manual load of the workload *)
        let commits = Hashtbl.create 16 in
        List.iter
          (fun (op : Workload.op) ->
            match op with
            | Workload.Insert { branch; key } ->
                Database.insert db2
                  (Database.branch_named db2 branch)
                  (Driver.tuple_of_key cfg key)
            | Workload.Update { branch; key } ->
                Database.update db2
                  (Database.branch_named db2 branch)
                  (Driver.tuple_of_key cfg key)
            | Workload.Commit branch ->
                let v =
                  Database.commit db2
                    (Database.branch_named db2 branch)
                    ~message:"x"
                in
                Hashtbl.replace commits branch
                  (v
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt commits branch))
            | Workload.Create_branch { name; from_branch; commits_back } ->
                let vs =
                  Option.value ~default:[]
                    (Hashtbl.find_opt commits from_branch)
                in
                ignore
                  (Database.create_branch db2 ~name
                     ~from:(List.nth vs commits_back))
            | Workload.Merge { into; from; policy } ->
                let r =
                  Database.merge db2
                    ~into:(Database.branch_named db2 into)
                    ~from:(Database.branch_named db2 from)
                    ~policy ~message:"m"
                in
                Hashtbl.replace commits into
                  (r.Types.merge_version
                  :: Option.value ~default:[] (Hashtbl.find_opt commits into))
            | Workload.Retire branch ->
                Vg.retire (Database.graph db2)
                  (Database.branch_named db2 branch))
          wl.Workload.ops;
        Database.flush db2;
        let child = Workload.role_exn wl "child" in
        let samples =
          List.init 3 (fun _ ->
              Database.drop_caches db2;
              let t0 = Unix.gettimeofday () in
              Database.scan db2 (Database.branch_named db2 child) (fun _ -> ());
              Unix.gettimeofday () -. t0)
        in
        Database.close db2;
        Fsutil.rm_rf dir2;
        [ Report.fmt_bytes page_size; Report.fmt_ms samples ])
      [ 16 * 1024; 64 * 1024; 256 * 1024 ]
  in
  Report.table ~headers:[ "page size"; "Q1 flat child" ] ~rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of core primitives. *)

let micro () =
  Report.section "Micro-benchmarks (Bechamel): core primitives";
  let open Bechamel in
  let open Toolkit in
  let bits = Bitvec.of_list (List.init 5000 (fun i -> i * 3)) in
  let bits2 = Bitvec.of_list (List.init 5000 (fun i -> (i * 5) + 1)) in
  let rle_enc = Rle.encode bits in
  let payload = String.concat "" (List.init 400 (fun i -> Printf.sprintf "rec-%d;" i)) in
  let compressed = Lz77.compress payload in
  let tests =
    [
      Test.make ~name:"bitvec-xor" (Staged.stage (fun () -> Bitvec.xor bits bits2));
      Test.make ~name:"bitvec-popcount"
        (Staged.stage (fun () -> Bitvec.pop_count bits));
      Test.make ~name:"rle-encode" (Staged.stage (fun () -> Rle.encode bits));
      Test.make ~name:"rle-decode"
        (Staged.stage (fun () -> Rle.decode rle_enc (ref 0)));
      Test.make ~name:"lz77-compress"
        (Staged.stage (fun () -> Lz77.compress payload));
      Test.make ~name:"lz77-decompress"
        (Staged.stage (fun () -> Lz77.decompress compressed));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
        Hashtbl.fold
          (fun name result acc ->
            let estimate =
              match Analyze.OLS.estimates result with
              | Some [ e ] -> Printf.sprintf "%.0f ns/run" e
              | _ -> "-"
            in
            [ name; estimate ] :: acc)
          results []
        )
      tests
  in
  Report.table ~headers:[ "primitive"; "time" ] ~rows

(* ------------------------------------------------------------------ *)
(* Observability report: per scheme x query latency distributions plus
   internal counter deltas, written to BENCH_<timestamp>.json.  Loads
   run durable so wal.* counters are exercised too. *)

module Obs = Decibel_obs.Obs

let obs_report () =
  Report.section "Observability: latency distributions + counter deltas";
  let cfg = Config.default in
  let repeat = 5 in
  let scheme_entries =
    List.map
      (fun (ename, scheme) ->
        let before_load = Obs.snapshot () in
        let l =
          load ~durable:true ~scheme_name:ename ~scheme Strategy.Flat cfg
        in
        let load_counters =
          List.filter_map
            (fun (k, v) -> if v <> 0 then Some (k, Report.J_int v) else None)
            (Obs.counters_diff before_load (Obs.snapshot ()))
        in
        let run_query qname f =
          let before = Obs.snapshot () in
          let samples = f () in
          let after = Obs.snapshot () in
          let counters =
            List.filter_map
              (fun (k, v) -> if v <> 0 then Some (k, Report.J_int v) else None)
              (Obs.counters_diff before after)
          in
          (* the four headline counters must always be present, zero or
             not, so downstream tooling can rely on the keys *)
          let counters =
            List.fold_left
              (fun acc k ->
                if List.mem_assoc k acc then acc else (k, Report.J_int 0) :: acc)
              counters
              [
                "buffer_pool.misses"; "wal.bytes"; "engine.scan.pages";
                "commit_history.delta_bytes";
              ]
          in
          Report.note "%s %s: p50 %s  p95 %s" ename qname
            (Report.fmt_ms [ Report.percentile samples 0.50 ])
            (Report.fmt_ms [ Report.percentile samples 0.95 ]);
          ( qname,
            Report.J_obj
              [
                ("p50_ms", Report.J_float (Report.percentile samples 0.50 *. 1e3));
                ("p95_ms", Report.J_float (Report.percentile samples 0.95 *. 1e3));
                ("p99_ms", Report.J_float (Report.percentile samples 0.99 *. 1e3));
                ( "samples_ms",
                  Report.J_list
                    (List.map (fun s -> Report.J_float (s *. 1e3)) samples) );
                ("counters", Report.J_obj counters);
              ] )
        in
        let role r = Workload.role_exn l.Driver.workload r in
        let b1, b2 = pair_roles Strategy.Flat in
        (* bind in sequence: list literals evaluate right-to-left *)
        let q1 = run_query "q1" (fun () -> Driver.q1 ~repeat l ~branch:(role "child")) in
        let q2 = run_query "q2" (fun () -> Driver.q2 ~repeat l ~b1:(role b1) ~b2:(role b2)) in
        let q3 = run_query "q3" (fun () -> Driver.q3 ~repeat l ~b1:(role b1) ~b2:(role b2)) in
        let q4 = run_query "q4" (fun () -> Driver.q4 ~repeat l) in
        let queries = [ q1; q2; q3; q4 ] in
        let storage =
          Decibel_obs.Report.to_json (Database.storage_report l.Driver.db)
        in
        let entry =
          Report.J_obj
            [
              ("load_seconds", Report.J_float l.Driver.load_seconds);
              ("dataset_bytes", Report.J_int (Driver.dataset_bytes l));
              ("load_counters", Report.J_obj load_counters);
              ("queries", Report.J_obj queries);
              ("storage_report", Report.J_raw storage);
            ]
        in
        Driver.close l;
        (ename, entry))
      engines
  in
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-bench-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("config", Report.J_str (Format.asprintf "%a" Config.pp cfg));
        ("repeat", Report.J_int repeat);
        ("schemes", Report.J_obj scheme_entries);
      ]
  in
  let path = Printf.sprintf "BENCH_%s.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  (* the spans recorded during the run, as a Chrome-trace artifact *)
  let trace_path = Printf.sprintf "BENCH_%s.trace.json" stamp in
  Obs.write_trace ~path:trace_path;
  Report.note "wrote %s (%d spans, %d events)" trace_path (Obs.span_count ())
    (Obs.events_emitted ())

(* ------------------------------------------------------------------ *)
(* Scalability: scan / multi-scan / diff throughput per scheme as the
   domain pool grows — not a paper figure; the repo's first multicore
   trajectory datapoint.  Emits BENCH_<stamp>.scale.json with speedup
   curves, and fails the process if any parallel run's result
   fingerprint diverges from the serial reference (the executor's
   determinism guarantee, checked end-to-end). *)

module Par = Decibel_par.Par

let scale_bench () =
  Report.section "Scalability — domain pool sweep (scan / multi-scan / diff)";
  let saved_domains = Par.domain_count () in
  let hw = Domain.recommended_domain_count () in
  (* 0 = pool off (serial reference); speedups are reported vs 1 *)
  let domain_counts = List.sort_uniq compare [ 0; 1; 2; 4; max 4 hw ] in
  (* fewer, fatter branches than Config.default so the scans are
     decode-bound (the part that parallelizes) rather than setup-bound *)
  let cfg =
    {
      Config.default with
      branches = 8;
      records_per_branch = 3000 * Config.scale;
      commit_every = 1500 * Config.scale;
    }
  in
  let repeat = 3 in
  let mismatches = ref 0 in
  let scheme_entries =
    List.map
      (fun (ename, scheme) ->
        let l =
          load ~durable:true ~scheme_name:ename ~scheme Strategy.Flat cfg
        in
        let role r = Workload.role_exn l.Driver.workload r in
        let child = role "child" and parent = role "parent" in
        Par.set_domain_count 0;
        let queries =
          [
            ( "scan",
              fun () -> Driver.scan_fingerprint l ~branch:child );
            ("multi_scan", fun () -> Driver.multi_scan_fingerprint l);
            ( "diff",
              fun () -> Driver.diff_fingerprint l ~b1:child ~b2:parent );
          ]
        in
        (* serial reference fingerprints, computed with the pool off *)
        let refs = List.map (fun (qname, run) -> (qname, run ())) queries in
        let query_entries =
          List.map
            (fun (qname, run) ->
              let ref_h, ref_n = List.assoc qname refs in
              let sweep =
                List.map
                  (fun dc ->
                    Par.set_domain_count dc;
                    let result = ref (0L, 0) in
                    let samples =
                      Driver.measure ~repeat l (fun () -> result := run ())
                    in
                    let h, n = !result in
                    let ok = h = ref_h && n = ref_n in
                    if not ok then begin
                      incr mismatches;
                      Report.note
                        "MISMATCH: %s %s with %d domain(s) diverges from serial"
                        ename qname dc
                    end;
                    (dc, Report.percentile samples 0.50, n, ok))
                  domain_counts
              in
              let t1 =
                match List.find_opt (fun (dc, _, _, _) -> dc = 1) sweep with
                | Some (_, m, _, _) -> m
                | None -> nan
              in
              let t4 =
                List.find_opt (fun (dc, _, _, _) -> dc = 4) sweep
                |> Option.map (fun (_, m, _, _) -> m)
              in
              (match t4 with
              | Some m ->
                  Report.note "%s %s: 1 domain %s, 4 domains %s (%.2fx)" ename
                    qname
                    (Report.fmt_ms [ t1 ])
                    (Report.fmt_ms [ m ])
                    (t1 /. m)
              | None -> ());
              ( qname,
                Report.J_obj
                  [
                    ( "serial_fingerprint",
                      Report.J_str (Printf.sprintf "%016Lx" ref_h) );
                    ("tuples", Report.J_int ref_n);
                    ( "sweep",
                      Report.J_list
                        (List.map
                           (fun (dc, med, n, ok) ->
                             Report.J_obj
                               [
                                 ("domains", Report.J_int dc);
                                 ("p50_ms", Report.J_float (med *. 1e3));
                                 ( "tuples_per_sec",
                                   Report.J_float (float_of_int n /. med) );
                                 ("speedup_vs_1", Report.J_float (t1 /. med));
                                 ( "identical_to_serial",
                                   Report.J_raw (if ok then "true" else "false")
                                 );
                               ])
                           sweep) );
                  ] ))
            queries
        in
        let entry =
          Report.J_obj
            [
              ("dataset_bytes", Report.J_int (Driver.dataset_bytes l));
              ("queries", Report.J_obj query_entries);
            ]
        in
        Driver.close l;
        (ename, entry))
      engines
  in
  Par.set_domain_count saved_domains;
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-scale-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("hardware_domains", Report.J_int hw);
        ("config", Report.J_str (Format.asprintf "%a" Config.pp cfg));
        ("repeat", Report.J_int repeat);
        ("schemes", Report.J_obj scheme_entries);
      ]
  in
  let path = Printf.sprintf "BENCH_%s.scale.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  if !mismatches > 0 then begin
    Printf.eprintf "scale bench: %d parallel/serial mismatch(es)\n%!"
      !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Load shedding: not a paper artifact — the resource-governor
   walkthrough in EXPERIMENTS.md.  A fixed op mix (cheap branch scans
   with an occasional heavy multi-scan, plus a slice of tightly
   deadlined scans) hammers one governed database from a rising number
   of client threads.  The governor is provisioned well below the peak
   thread count, so higher levels must shed; the artifact is the
   latency/shed-rate curve in BENCH_<stamp>.shed.json.  After every
   level the full multi-scan fingerprint is compared against the
   pre-storm serial reference — shedding and deadline aborts must be
   invisible to the data — and any divergence fails the process. *)

module Governor = Decibel_governor.Governor

let shed_bench () =
  Report.section
    "Shed — governed op mix under rising concurrency (p99 + shed rate)";
  let cfg =
    {
      Config.default with
      Config.branches = 8;
      records_per_branch = 1200 * Config.scale;
      commit_every = 600 * Config.scale;
    }
  in
  incr load_counter;
  let dir = fresh_dir (Printf.sprintf "shed-%d" !load_counter) in
  let wl = Strategy.generate Strategy.Flat cfg in
  let l = Driver.load ~scheme:Database.Hybrid ~dir cfg wl in
  (* deliberately under-provisioned: 4 weighted slots and a 2-deep
     queue against up to 16 clients, so overload actually sheds *)
  let gov =
    Governor.Admission.create ~capacity:4 ~heavy_weight:4 ~max_queue:2 ()
  in
  Database.close l.Driver.db;
  let l = { l with Driver.db = Database.reopen ~governor:gov ~dir () } in
  let db = l.Driver.db in
  let heads = Database.heads db in
  let harr = Array.of_list heads in
  let reference = Driver.multi_scan_fingerprint l in
  let ops_per_thread = 40 in
  let levels = [ 1; 2; 4; 8; 16 ] in
  let mismatches = ref 0 in
  let level_entries =
    List.map
      (fun conc ->
        let lats = Array.make (conc * ops_per_thread) 0.0 in
        let ok = Atomic.make 0
        and shed = Atomic.make 0
        and deadlined = Atomic.make 0 in
        let worker tid =
          let rng =
            Prng.create (Int64.of_int (0x5EDD + (conc * 1000) + tid))
          in
          for k = 0 to ops_per_thread - 1 do
            let t0 = Unix.gettimeofday () in
            (try
               (match Prng.int rng 10 with
               | 0 ->
                   (* heavy: all-branch scan, weight 4 of 4 slots *)
                   Database.multi_scan db heads (fun _ -> ())
               | 1 ->
                   (* tightly deadlined cheap scan: exercises
                      cancellation while the pool is contended *)
                   let ctx = Governor.Ctx.create ~deadline_ms:1 () in
                   Database.scan ~ctx db
                     harr.(Prng.int rng (Array.length harr))
                     (fun _ -> ())
               | _ ->
                   Database.scan db
                     harr.(Prng.int rng (Array.length harr))
                     (fun _ -> ()));
               Atomic.incr ok
             with
            | Governor.Overloaded _ -> Atomic.incr shed
            | Governor.Deadline_exceeded -> Atomic.incr deadlined);
            lats.((tid * ops_per_thread) + k) <- Unix.gettimeofday () -. t0
          done
        in
        let threads =
          List.init conc (fun tid -> Thread.create worker tid)
        in
        List.iter Thread.join threads;
        let samples = Array.to_list lats in
        let total = conc * ops_per_thread in
        let shed_rate =
          float_of_int (Atomic.get shed) /. float_of_int total
        in
        let p50 = Report.percentile samples 0.50
        and p99 = Report.percentile samples 0.99 in
        (* a storm must never change what a later reader sees *)
        let ok_after = Driver.multi_scan_fingerprint l = reference in
        if not ok_after then begin
          incr mismatches;
          Report.note
            "MISMATCH: fingerprint diverged after %d-thread level" conc
        end;
        Report.note
          "%2d threads: p50 %s  p99 %s  ok %d  shed %d (%.0f%%)  deadline %d"
          conc
          (Report.fmt_ms [ p50 ])
          (Report.fmt_ms [ p99 ])
          (Atomic.get ok) (Atomic.get shed) (shed_rate *. 100.)
          (Atomic.get deadlined);
        Report.J_obj
          [
            ("threads", Report.J_int conc);
            ("ops", Report.J_int total);
            ("ok", Report.J_int (Atomic.get ok));
            ("shed", Report.J_int (Atomic.get shed));
            ("deadline_exceeded", Report.J_int (Atomic.get deadlined));
            ("shed_rate", Report.J_float shed_rate);
            ("p50_ms", Report.J_float (p50 *. 1e3));
            ("p99_ms", Report.J_float (p99 *. 1e3));
            ( "fingerprint_identical",
              Report.J_raw (if ok_after then "true" else "false") );
          ])
      levels
  in
  let st = Governor.Admission.stats gov in
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let ref_h, ref_n = reference in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-shed-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("config", Report.J_str (Format.asprintf "%a" Config.pp cfg));
        ( "governor",
          Report.J_obj
            [
              ("capacity", Report.J_int st.Governor.Admission.capacity);
              ("heavy_weight", Report.J_int 4);
              ("max_queue", Report.J_int 2);
              ("admitted", Report.J_int st.Governor.Admission.admitted);
              ("shed", Report.J_int st.Governor.Admission.shed);
              ( "avg_hold_ms",
                Report.J_float st.Governor.Admission.avg_hold_ms );
            ] );
        ( "reference_fingerprint",
          Report.J_str (Printf.sprintf "%016Lx" ref_h) );
        ("reference_tuples", Report.J_int ref_n);
        ("levels", Report.J_list level_entries);
      ]
  in
  let path = Printf.sprintf "BENCH_%s.shed.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  Driver.close l;
  if !mismatches > 0 then begin
    Printf.eprintf "shed bench: %d fingerprint divergence(s)\n%!" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Crash torture: not a paper artifact — the robustness walkthrough in
   EXPERIMENTS.md.  Kills a scripted branch/insert/commit/merge
   workload at every failpoint site it crosses, recovers, checks
   against the model oracle, and writes the per-case results to
   FSCK_REPORT.json (the CI artifact). *)

let crash () =
  Report.section
    "Crash torture — induced crash at every failpoint site, then recover";
  (* deterministic fault schedule; DECIBEL_SEED overrides *)
  (match Sys.getenv_opt "DECIBEL_SEED" with
  | Some s -> ( try Decibel_fault.Failpoint.set_seed (Int64.of_string s) with _ -> ())
  | None -> Decibel_fault.Failpoint.set_seed 0x5EEDL);
  let root = fresh_dir "crash" in
  let summaries =
    List.map
      (fun (ename, scheme) -> (ename, Torture.torture ~root scheme))
      engines
  in
  let rows =
    List.map
      (fun (ename, (s : Torture.summary)) ->
        let fired =
          List.length (List.filter (fun c -> c.Torture.c_fired) s.Torture.s_cases)
        in
        let repairs =
          List.fold_left
            (fun acc c -> acc + c.Torture.c_fsck_findings)
            0 s.Torture.s_cases
        in
        [
          ename;
          string_of_int (List.length s.Torture.s_sites);
          string_of_int (List.length s.Torture.s_cases);
          string_of_int fired;
          string_of_int repairs;
          string_of_int s.Torture.s_failures;
        ])
      summaries
  in
  Report.table
    ~headers:[ "scheme"; "sites"; "cases"; "fired"; "fsck repairs"; "failures" ]
    ~rows;
  (* same deal inside maintenance: the journaled executor killed at
     every maint.* site mid-compaction/materialization/GC must recover
     fingerprint-identical *)
  let maint_summaries =
    List.map
      (fun (ename, scheme) -> (ename, Torture.maint_torture ~root scheme))
      engines
  in
  Report.section
    "Maintenance torture — crash at every maint.* site mid-rewrite";
  let maint_rows =
    List.map
      (fun (ename, (s : Torture.summary)) ->
        let fired =
          List.length (List.filter (fun c -> c.Torture.c_fired) s.Torture.s_cases)
        in
        [
          ename;
          string_of_int (List.length s.Torture.s_cases);
          string_of_int fired;
          string_of_int s.Torture.s_failures;
        ])
      maint_summaries
  in
  Report.table
    ~headers:[ "scheme"; "cases"; "fired"; "failures" ]
    ~rows:maint_rows;
  let transient_rows =
    List.map
      (fun (ename, scheme) ->
        let outcomes = Torture.transient_check ~root scheme in
        ename
        :: List.map
             (fun (_, outcome) -> if outcome = "" then "absorbed" else outcome)
             outcomes)
      engines
  in
  Report.section "Transient faults — one per retryable site, bounded retry";
  Report.table
    ~headers:[ "scheme"; "wal.sync"; "heap.flush"; "manifest.write_tmp" ]
    ~rows:transient_rows;
  let oc = open_out "FSCK_REPORT.json" in
  output_string oc "[";
  List.iteri
    (fun i (_, s) ->
      if i > 0 then output_char oc ',';
      output_string oc (Torture.summary_json s))
    (summaries @ maint_summaries);
  output_string oc "]\n";
  close_out oc;
  Report.note "wrote FSCK_REPORT.json";
  let total_failures =
    List.fold_left
      (fun acc (_, s) -> acc + s.Torture.s_failures)
      0
      (summaries @ maint_summaries)
  in
  if total_failures > 0 then begin
    Printf.eprintf "crash torture: %d failure(s)\n%!" total_failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Maintenance: build a fragmented, chain-heavy store per scheme, run
   the journaled executor, and report the before/after storage-report
   deltas (dead records, delta-chain depth, on-disk bytes) plus the
   hot-branch scan p50.  Maintenance that fails to reclaim dead space
   (TF/HY) or collapse the hot chain (VF) fails the process.  Writes
   BENCH_<stamp>.maint.json. *)

let maint_bench () =
  Report.section
    "Maint — journaled executor: fragmentation and chains, before/after";
  Obs.set_enabled true;
  let module R = Decibel_obs.Report in
  let dead (r : R.t) =
    List.fold_left
      (fun acc (s : R.segment) -> acc + (s.R.sg_records - s.R.sg_live_records))
      0 r.R.r_segments
  in
  let chain name (r : R.t) =
    match
      List.find_opt (fun (b : R.branch) -> b.R.br_name = name) r.R.r_branches
    with
    | Some b -> b.R.br_delta_chain
    | None -> 0
  in
  let repeat = 15 in
  let cfg = Config.default in
  let all_ok = ref true in
  let scheme_docs = ref [] in
  let rows =
    List.map
      (fun (ename, scheme) ->
        incr load_counter;
        let dir = fresh_dir (Printf.sprintf "maint-%s-%d" ename !load_counter) in
        Fsutil.mkdir_p dir;
        let db = Database.open_ ~scheme ~dir ~schema:(Config.schema cfg) () in
        let key = ref 0 in
        let n = 400 * Config.scale in
        (* every key is written twice before its first commit, so half
           the heap is dead the moment master commits: no checkout
           references the superseded versions *)
        for _ = 1 to n do
          incr key;
          Database.insert db Vg.master (Driver.tuple_of_key cfg !key)
        done;
        for k = 1 to n do
          Database.update db Vg.master (Driver.tuple_of_key cfg k)
        done;
        ignore (Database.commit db Vg.master ~message:"base");
        (* a stack of committing branches builds the delta chain the
           version-first materializer collapses; branching off the
           clean master head also freezes hybrid's fragmented segment *)
        let hot =
          let rec go parent i =
            let nm = if i = 6 then "hot" else Printf.sprintf "hot-%d" i in
            let b = Database.branch_from db ~name:nm ~of_branch:parent in
            for _ = 1 to 20 * Config.scale do
              incr key;
              Database.insert db b (Driver.tuple_of_key cfg !key)
            done;
            ignore (Database.commit db b ~message:nm);
            if i = 6 then b else go b (i + 1)
          in
          go Vg.master 1
        in
        Database.flush db;
        let scan_samples () =
          List.init repeat (fun _ ->
              let t = Unix.gettimeofday () in
              Database.scan db hot (fun _ -> ());
              Unix.gettimeofday () -. t)
        in
        let before = Database.storage_report db in
        let p50_before = Report.percentile (scan_samples ()) 0.50 in
        (* the executor: engine-chosen GC to a fixpoint, then
           materialize every active branch *)
        let reclaimed = ref 0 in
        let tasks = ref 0 in
        let note = function
          | Some (m : Database.maint_result) ->
              incr tasks;
              reclaimed := !reclaimed + m.Database.m_reclaimed
          | None -> ()
        in
        let rec gc_fix i =
          if i < 4 then
            match Database.run_maintenance db ~kind:Engine_intf.M_gc ~target:"" with
            | Some m ->
                note (Some m);
                gc_fix (i + 1)
            | None -> ()
        in
        gc_fix 0;
        List.iter
          (fun (br : Vg.branch) ->
            if br.Vg.active then
              note
                (Database.run_maintenance db ~kind:Engine_intf.M_materialize
                   ~target:br.Vg.name))
          (Vg.branches (Database.graph db));
        let after = Database.storage_report db in
        let p50_after = Report.percentile (scan_samples ()) 0.50 in
        Database.close db;
        let ok =
          match scheme with
          | Database.Version_first -> chain "hot" after < chain "hot" before
          | _ -> dead after < dead before
        in
        if not ok then all_ok := false;
        scheme_docs :=
          ( ename,
            Report.J_obj
              [
                ("tasks", Report.J_int !tasks);
                ("bytes_reclaimed", Report.J_int !reclaimed);
                ("dead_before", Report.J_int (dead before));
                ("dead_after", Report.J_int (dead after));
                ("chain_before", Report.J_int (chain "hot" before));
                ("chain_after", Report.J_int (chain "hot" after));
                ("bytes_before", Report.J_int before.R.r_dataset_bytes);
                ("bytes_after", Report.J_int after.R.r_dataset_bytes);
                ("scan_p50_ms_before", Report.J_float (p50_before *. 1e3));
                ("scan_p50_ms_after", Report.J_float (p50_after *. 1e3));
                ("improved", Report.J_raw (if ok then "true" else "false"));
              ] )
          :: !scheme_docs;
        [
          ename;
          string_of_int !tasks;
          Printf.sprintf "%d -> %d" (dead before) (dead after);
          Printf.sprintf "%d -> %d" (chain "hot" before) (chain "hot" after);
          Printf.sprintf "%d -> %d" before.R.r_dataset_bytes
            after.R.r_dataset_bytes;
          Printf.sprintf "%s -> %s"
            (Report.fmt_ms [ p50_before ])
            (Report.fmt_ms [ p50_after ]);
        ])
      engines
  in
  Report.table
    ~headers:
      [ "scheme"; "tasks"; "dead"; "hot chain"; "bytes"; "hot scan p50" ]
    ~rows;
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-maint-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("schemes", Report.J_obj (List.rev !scheme_docs));
      ]
  in
  let path = Printf.sprintf "BENCH_%s.maint.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  if not !all_ok then begin
    Printf.eprintf
      "maint bench: maintenance failed to improve the storage report\n%!";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Profiler overhead: Q1 latency with and without the request profiler
   (Database.profile) per scheme.  The tracing layer's budget is < 5%
   on the median; exceed it and the run fails.  Writes
   BENCH_<stamp>.prof.json with per-scheme medians plus one captured
   profile tree each, so the overhead claim ships with the evidence. *)

let prof_overhead () =
  Report.section
    "Profiler overhead — Q1 profiled vs unprofiled (< 5% median budget)";
  Obs.set_enabled true;
  let cfg = Config.default in
  let repeat = 7 in
  let budget_pct = 5.0 in
  (* sub-millisecond medians put 5% well inside clock jitter at small
     scales, so a breach must also clear an absolute 20 us delta *)
  let noise_floor_s = 20e-6 in
  let results =
    List.map
      (fun (ename, scheme) ->
        let l = load ~scheme_name:ename ~scheme Strategy.Flat cfg in
        let db = l.Driver.db in
        let bid =
          Driver.branch_id db (Workload.role_exn l.Driver.workload "child")
        in
        let run () = ignore (Query.q1_scan db bid) in
        let run_profiled () =
          ignore (Database.profile ~label:("q1-" ^ ename) db run)
        in
        (* interleave the two measurements in two blocks each, so clock
           drift and buffer-pool state hit both sides equally *)
        let plain1 = Driver.measure ~repeat l run in
        let prof1 = Driver.measure ~repeat l run_profiled in
        let plain2 = Driver.measure ~repeat l run in
        let prof2 = Driver.measure ~repeat l run_profiled in
        let plain = plain1 @ plain2 and prof = prof1 @ prof2 in
        let p50_plain = Report.percentile plain 0.50 in
        let p50_prof = Report.percentile prof 0.50 in
        let overhead_pct =
          if p50_plain <= 0. then 0.
          else (p50_prof -. p50_plain) /. p50_plain *. 100.
        in
        let over_budget =
          overhead_pct > budget_pct && p50_prof -. p50_plain > noise_floor_s
        in
        let sample_profile =
          match Database.last_profile db with
          | Some p -> Obs.Prof.profile_json p
          | None -> "null"
        in
        Report.note "%s: plain p50 %s  profiled p50 %s  overhead %+.2f%%%s"
          ename
          (Report.fmt_ms [ p50_plain ])
          (Report.fmt_ms [ p50_prof ])
          overhead_pct
          (if over_budget then "  OVER BUDGET" else "");
        Driver.close l;
        let entry =
          Report.J_obj
            [
              ("plain_p50_ms", Report.J_float (p50_plain *. 1e3));
              ("profiled_p50_ms", Report.J_float (p50_prof *. 1e3));
              ("overhead_pct", Report.J_float overhead_pct);
              ("over_budget", Report.J_raw (if over_budget then "true" else "false"));
              ("sample_profile", Report.J_raw sample_profile);
            ]
        in
        (ename, entry, over_budget))
      engines
  in
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-prof-overhead-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("repeat", Report.J_int (2 * repeat));
        ("budget_pct", Report.J_float budget_pct);
        ( "schemes",
          Report.J_obj (List.map (fun (e, j, _) -> (e, j)) results) );
      ]
  in
  let path = Printf.sprintf "BENCH_%s.prof.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  let breaches = List.filter (fun (_, _, over) -> over) results in
  if breaches <> [] then begin
    Printf.eprintf "profiler overhead over %.1f%% budget: %s\n%!" budget_pct
      (String.concat ", " (List.map (fun (e, _, _) -> e) breaches));
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Storage advisor: not a paper artifact — the workload-vs-storage
   walkthrough in EXPERIMENTS.md.  A skewed scan mix over three
   branches of a version-first store (hot and cold both sitting on
   long delta chains, plus a quiet mainline) must drive the advisor to
   recommend materializing the hot branch while leaving the cold one
   on deltas — the measured form of the recreation/storage tradeoff.
   Writes BENCH_<stamp>.advise.json; a wrong or missing recommendation
   fails the process. *)

module ObsWl = Decibel_obs.Workload
module Advisor = Decibel_obs.Advisor

let advise_bench () =
  Report.section
    "Advise — storage advisor on a skewed branch workload (VF, long chains)";
  Obs.set_enabled true;
  ObsWl.reset ();
  incr load_counter;
  let dir = fresh_dir (Printf.sprintf "advise-%d" !load_counter) in
  Fsutil.mkdir_p dir;
  let cfg = Config.default in
  let db =
    Database.open_ ~scheme:Database.Version_first ~dir
      ~schema:(Config.schema cfg) ()
  in
  let key = ref 0 in
  let insert_batch b n =
    for _ = 1 to n do
      incr key;
      Database.insert db b (Driver.tuple_of_key cfg !key)
    done
  in
  insert_batch Vg.master (50 * Config.scale);
  let _base = Database.commit db Vg.master ~message:"base" in
  (* version-first opens one segment per branch and a scan replays the
     whole branch lineage, so a stack of branches is what builds a long
     delta chain (depth fragments per read) *)
  let grow name depth =
    let rec go parent i =
      let nm = if i = depth then name else Printf.sprintf "%s-%d" name i in
      let b = Database.branch_from db ~name:nm ~of_branch:parent in
      insert_batch b (20 * Config.scale);
      ignore (Database.commit db b ~message:nm);
      if i = depth then b else go b (i + 1)
    in
    go Vg.master 1
  in
  let hot = grow "hot" 6 and cold = grow "cold" 6 in
  (* skew: hot absorbs almost all the reads, cold sees one *)
  for _ = 1 to 40 do
    Database.scan db hot (fun _ -> ())
  done;
  Database.scan db cold (fun _ -> ());
  Database.scan db Vg.master (fun _ -> ());
  let recs = Database.advise db in
  List.iter
    (fun r ->
      Report.note "%s %s: %s"
        (Advisor.kind_name r.Advisor.rc_kind)
        r.Advisor.rc_target r.Advisor.rc_reason)
    recs;
  let is_materialize target r =
    r.Advisor.rc_kind = Advisor.Materialize && r.Advisor.rc_target = target
  in
  let hot_flagged = List.exists (is_materialize "hot") recs in
  let cold_on_deltas = not (List.exists (is_materialize "cold") recs) in
  let workload_json = ObsWl.to_json (Database.workload db) in
  Database.close db;
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-advise-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("config", Report.J_str (Format.asprintf "%a" Config.pp cfg));
        ("workload", Report.J_raw workload_json);
        ("recommendations", Report.J_raw (Advisor.to_json recs));
        ( "assertions",
          Report.J_obj
            [
              ( "hot_materialize",
                Report.J_raw (if hot_flagged then "true" else "false") );
              ( "cold_on_deltas",
                Report.J_raw (if cold_on_deltas then "true" else "false") );
            ] );
      ]
  in
  let path = Printf.sprintf "BENCH_%s.advise.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  if not (hot_flagged && cold_on_deltas) then begin
    Printf.eprintf
      "advise bench: expected materialize(hot) and cold on deltas \
       (hot_materialize=%b cold_on_deltas=%b)\n%!"
      hot_flagged cold_on_deltas;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Colscan: segment format v1 (row-per-record heap) vs v2 (columnar
   blocks, per-column compression) over the same low-cardinality
   branchy dataset.  Reports median full-scan and pushed
   filter+aggregate latency plus on-disk bytes per format, and checks
   an FNV-1a fingerprint of every query surface for identity across
   v1/v2 and across serial vs 4-domain execution — any divergence
   fails the process.  Writes BENCH_<stamp>.colscan.json. *)

module Cs = Decibel_storage

let colscan_bench () =
  Report.section
    "Colscan — segment v1 vs v2: scan/aggregate latency, bytes, fingerprints";
  let cfg = Config.default in
  let schema = Config.schema cfg in
  let nrows = 20_000 * Config.scale in
  let repeat = 7 in
  let saved_domains = Par.domain_count () in
  Par.set_domain_count 0;
  (* low-cardinality content (cf. compressible_tuple_of_key): runs of
     equal values per column, so dictionaries and deltas have traction *)
  let ctuple key salt =
    Array.init cfg.Config.columns (fun j ->
        if j = 0 then Cs.Value.int key
        else Cs.Value.int (((key / 16) + j + salt) mod 8))
  in
  let agg_preds =
    [ Cs.Col_pred.make schema ~column:"c1" Cs.Col_pred.Eq (Cs.Value.int 3) ]
  in
  let c2 = Cs.Schema.column_index schema "c2" in
  let run_agg db child () =
    let sum = ref 0L and n = ref 0 in
    Database.scan_filtered db child ~preds:agg_preds (fun t ->
        incr n;
        match t.(c2) with
        | Cs.Value.Int x -> sum := Int64.add !sum x
        | Cs.Value.Str _ -> ());
    (!n, !sum)
  in
  (* one FNV-1a-64 fingerprint over everything the formats must agree
     on: the child scan stream and the filtered aggregate *)
  let fingerprint db child =
    let h = ref 0xcbf29ce484222325L in
    let mix s =
      String.iter
        (fun c ->
          h := Int64.logxor !h (Int64.of_int (Char.code c));
          h := Int64.mul !h 0x100000001b3L)
        s
    in
    Database.scan db child (fun t -> mix (Cs.Tuple.to_string t));
    let n, sum = run_agg db child () in
    mix (Printf.sprintf "agg:%d:%Ld" n sum);
    !h
  in
  let build ename scheme format =
    incr load_counter;
    let dir =
      fresh_dir (Printf.sprintf "colscan-%s-v%d-%d" ename format !load_counter)
    in
    Fsutil.mkdir_p dir;
    let db = Database.open_ ~format ~scheme ~dir ~schema () in
    for key = 1 to nrows do
      Database.insert db Vg.master (ctuple key 0)
    done;
    let base = Database.commit db Vg.master ~message:"base" in
    let child = Database.create_branch db ~name:"child" ~from:base in
    for key = 1 to nrows do
      if key mod 5 = 0 then Database.update db child (ctuple key 3);
      if key mod 13 = 0 then Database.delete db child (Cs.Value.int key)
    done;
    for key = nrows + 1 to nrows + (nrows / 10) do
      Database.insert db child (ctuple key 1)
    done;
    ignore (Database.commit db child ~message:"child");
    Database.flush db;
    (db, child, dir)
  in
  let sample db f =
    Database.drop_caches db;
    fst (Driver.time f)
  in
  let diverged = ref [] in
  let table_rows = ref [] in
  let engine_json =
    List.map
      (fun (ename, scheme) ->
        (* both formats stay open and are sampled round-robin, so
           machine drift within the run lands on v1 and v2 equally *)
        let db1, child1, dir1 = build ename scheme 1 in
        let db2, child2, dir2 = build ename scheme 2 in
        let scan1 () = Database.scan db1 child1 (fun _ -> ()) in
        let scan2 () = Database.scan db2 child2 (fun _ -> ()) in
        let agg1 () = ignore (run_agg db1 child1 ()) in
        let agg2 () = ignore (run_agg db2 child2 ()) in
        Gc.full_major ();
        List.iter (fun f -> ignore (sample db1 f)) [ scan1; agg1 ];
        List.iter (fun f -> ignore (sample db2 f)) [ scan2; agg2 ];
        let s1 = ref [] and s2 = ref [] and a1 = ref [] and a2 = ref [] in
        for _ = 1 to repeat do
          s1 := sample db1 scan1 :: !s1;
          s2 := sample db2 scan2 :: !s2;
          a1 := sample db1 agg1 :: !a1;
          a2 := sample db2 agg2 :: !a2
        done;
        let s1 = !s1 and s2 = !s2 and a1 = !a1 and a2 = !a2 in
        let b1 = Database.dataset_bytes db1 in
        let b2 = Database.dataset_bytes db2 in
        let fs1 = fingerprint db1 child1 in
        let fs2 = fingerprint db2 child2 in
        Par.set_domain_count 4;
        let fp1 = fingerprint db1 child1 in
        let fp2 = fingerprint db2 child2 in
        Par.set_domain_count 0;
        Database.close db1;
        Database.close db2;
        Fsutil.rm_rf dir1;
        Fsutil.rm_rf dir2;
        let agree = fs1 = fp1 && fs1 = fs2 && fs2 = fp2 in
        if not agree then diverged := ename :: !diverged;
        let p50 xs = Report.percentile xs 0.50 in
        let ratio num den = if den = 0. then 0. else num /. den in
        let fmt_p50 ss = Printf.sprintf "%.1f ms" (p50 ss *. 1e3) in
        let row fmt ss aa bb =
          [ ename; fmt; fmt_p50 ss; fmt_p50 aa; string_of_int bb ]
        in
        table_rows := row "v2" s2 a2 b2 :: row "v1" s1 a1 b1 :: !table_rows;
        Report.note
          "%s: v2/v1 scan %.2fx  aggregate %.2fx  bytes %.2fx  \
           fingerprints %s"
          ename
          (ratio (p50 s1) (p50 s2))
          (ratio (p50 a1) (p50 a2))
          (ratio (float_of_int b1) (float_of_int b2))
          (if agree then "identical" else "DIVERGED");
        let fmt_json ss aa bb fps fpp =
          Report.J_obj
            [
              ("scan_p50_ms", Report.J_float (p50 ss *. 1e3));
              ("aggregate_p50_ms", Report.J_float (p50 aa *. 1e3));
              ("dataset_bytes", Report.J_int bb);
              ("fingerprint_serial", Report.J_str (Printf.sprintf "%016Lx" fps));
              ("fingerprint_4domains", Report.J_str (Printf.sprintf "%016Lx" fpp));
            ]
        in
        ( ename,
          Report.J_obj
            [
              ("v1", fmt_json s1 a1 b1 fs1 fp1);
              ("v2", fmt_json s2 a2 b2 fs2 fp2);
              ("scan_speedup", Report.J_float (ratio (p50 s1) (p50 s2)));
              ("aggregate_speedup", Report.J_float (ratio (p50 a1) (p50 a2)));
              ( "bytes_ratio",
                Report.J_float (ratio (float_of_int b1) (float_of_int b2)) );
              ( "fingerprints_identical",
                Report.J_raw (if agree then "true" else "false") );
            ] ))
      engines
  in
  Par.set_domain_count saved_domains;
  Report.table
    ~headers:[ "engine"; "format"; "scan"; "filter+agg"; "bytes" ]
    ~rows:(List.rev !table_rows);
  let stamp =
    let tm = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let doc =
    Report.J_obj
      [
        ("schema", Report.J_str "decibel-colscan-v1");
        ("timestamp", Report.J_str stamp);
        ("scale", Report.J_int Config.scale);
        ("rows", Report.J_int nrows);
        ("repeat", Report.J_int repeat);
        ("engines", Report.J_obj engine_json);
      ]
  in
  let path = Printf.sprintf "BENCH_%s.colscan.json" stamp in
  let oc = open_out path in
  output_string oc (Report.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Report.note "wrote %s" path;
  if !diverged <> [] then begin
    Printf.eprintf "colscan: fingerprint divergence on %s\n%!"
      (String.concat ", " (List.rev !diverged));
    exit 1
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig6a", fig6a);
    ("fig6b", fig6b);
    ("main", main_suite); (* fig7, fig8, fig9, fig10, tab2 *)
    ("tab3", tab3);
    ("fig11", fig11_tab4); (* + tab4 *)
    ("tab6", tab6);
    ("tab7", tab7);
    ("ablations", ablations);
    ("micro", micro);
    ("obs", obs_report);
    ("scale", scale_bench);
    ("shed", shed_bench);
    ("profoverhead", prof_overhead);
    ("advise", advise_bench);
    ("colscan", colscan_bench);
    ("crash", crash);
    ("maint", maint_bench);
    ("tab5", tab5); (* printed last: aggregates all loads this run *)
  ]

let aliases =
  [
    ("fig7", "main"); ("fig8", "main"); ("fig9", "main"); ("fig10", "main");
    ("tab2", "main"); ("tab4", "fig11");
  ]

let () =
  let only =
    let rec find = function
      | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
      | _ :: rest -> find rest
      | [] -> None
    in
    find (Array.to_list Sys.argv)
  in
  let wanted name =
    match only with
    | None -> true
    | Some names ->
        List.exists
          (fun n ->
            n = name
            || (match List.assoc_opt n aliases with
               | Some target -> target = name
               | None -> false))
          names
  in
  Printf.printf "Decibel versioning benchmark (scale %d)\n" Config.scale;
  Printf.printf "config: %s\n"
    (Format.asprintf "%a" Config.pp Config.default);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) -> if wanted name then f ())
    experiments;
  Printf.printf "\ntotal benchmark wall time: %.1f s\n"
    (Unix.gettimeofday () -. t0);
  Fsutil.rm_rf bench_root
