(* Instrumentation overhead check: scan throughput with the metrics
   registry enabled vs disabled (Obs.set_enabled).  The acceptance bar
   for the observability layer is <5% on the hot scan path; run with
   `dune exec bench/overhead.exe`. *)

open Decibel
open Decibel_storage
module Obs = Decibel_obs.Obs

let schema = Schema.ints ~name:"r" ~width:8

let tuple_of_key k =
  Array.init 8 (fun j ->
      if j = 0 then Value.int k else Value.int ((k * 31) + j))

let () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-overhead" in
  let db = Database.open_ ~scheme:Database.Hybrid ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let master = Database.branch_named db "master" in
      let n = 50_000 in
      for k = 1 to n do
        Database.insert db master (tuple_of_key k)
      done;
      let _ = Database.commit db master ~message:"seed" in
      Database.flush db;
      let rounds = 30 in
      let bench enabled =
        Obs.set_enabled enabled;
        (* warm the cache so the measurement isolates CPU cost *)
        Database.scan db master (fun _ -> ());
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        let seen = ref 0 in
        for _ = 1 to rounds do
          Database.scan db master (fun _ -> incr seen)
        done;
        let dt = Unix.gettimeofday () -. t0 in
        assert (!seen = rounds * n);
        dt
      in
      (* interleave to cancel drift, alternating which goes first *)
      let on = ref 0.0 and off = ref 0.0 in
      for i = 1 to 6 do
        if i mod 2 = 0 then begin
          on := !on +. bench true;
          off := !off +. bench false
        end
        else begin
          off := !off +. bench false;
          on := !on +. bench true
        end
      done;
      Obs.set_enabled true;
      let tuples = float_of_int (6 * rounds * n) in
      Printf.printf "scan throughput, %d tuples x %d rounds x 6 reps\n" n
        rounds;
      Printf.printf "  enabled : %8.1f ktuples/s\n" (tuples /. !on /. 1e3);
      Printf.printf "  disabled: %8.1f ktuples/s\n" (tuples /. !off /. 1e3);
      Printf.printf "  overhead: %+.2f%%\n"
        ((!on -. !off) /. !off *. 100.0))
