# Convenience targets; `make ci` is what .github/workflows/ci.yml runs.

.PHONY: all build test fmt ci bench bench-smoke crash-smoke scale-smoke \
	shed-smoke prof-smoke advise-smoke colscan-smoke maint-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting check is best-effort: skipped when ocamlformat is not
# installed (the pinned dev environment does not ship it).
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

ci: build fmt test

bench:
	dune exec bench/main.exe

# Tiny observability bench (seconds, not minutes): emits a
# BENCH_<stamp>.json report and a BENCH_<stamp>.trace.json Chrome
# trace in the working directory; CI uploads both as artifacts.
bench-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only obs

# Crash-torture smoke: kills a scripted workload at every failpoint
# site per scheme, recovers, and checks against the WAL-marker oracle.
# Fixed seed for reproducible fault schedules; emits FSCK_REPORT.json
# (uploaded by CI) and exits non-zero on any recovery failure.
crash-smoke:
	DECIBEL_SEED=24301 dune exec bench/main.exe -- --only crash

# Domain-pool scalability sweep: scan/multi-scan/diff per scheme at
# 0/1/2/4/max domains, checking every parallel run's fingerprint
# against the serial reference (exit non-zero on divergence). Emits
# BENCH_<stamp>.scale.json; speedup curves are informational only.
scale-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only scale

# Load-shedding sweep: a fixed op mix from 1..16 client threads against
# an under-provisioned admission controller. Reports p50/p99 latency and
# shed rate per level to BENCH_<stamp>.shed.json, and exits non-zero if
# any post-storm multi-scan fingerprint diverges from the serial
# reference (shedding must be invisible to the data).
shed-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only shed

# Profiler-overhead smoke: Q1 latency with and without the request
# profiler per scheme, asserting < 5% median overhead (exit non-zero
# on a breach). Emits BENCH_<stamp>.prof.json with the medians plus a
# captured EXPLAIN ANALYZE tree per scheme; CI uploads it.
prof-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only profoverhead

# Storage-advisor smoke: a skewed scan mix over hot/cold branches on
# long version-first delta chains must make the advisor recommend
# materializing the hot branch and leave the cold one on deltas (exit
# non-zero otherwise). Emits BENCH_<stamp>.advise.json; CI uploads it.
advise-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only advise

# Columnar-scan smoke: v1 vs v2 segment formats per scheme, interleaved
# A/B sampling of full-scan and filtered-aggregate latency plus on-disk
# bytes. Exits non-zero if any v1/v2 or serial/4-domain query
# fingerprint diverges. Emits BENCH_<stamp>.colscan.json; CI uploads it.
colscan-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only colscan

# Maintenance smoke: builds a fragmented, chain-heavy store per scheme,
# runs the journaled maintenance executor, and reports before/after
# storage deltas (dead records, delta-chain depth, on-disk bytes) plus
# the hot-branch scan p50. Exits non-zero if maintenance fails to
# reclaim dead space (TF/HY) or collapse the hot chain (VF). Emits
# BENCH_<stamp>.maint.json; CI uploads it.
maint-smoke:
	DECIBEL_BENCH_SCALE=1 dune exec bench/main.exe -- --only maint

clean:
	dune clean
