(* decibel — command-line interface to Decibel repositories.

   A repository is a directory managed by one of the storage schemes;
   every command opens it, performs one operation, and persists the
   result, mirroring how git is driven from a shell.

     decibel init /tmp/repo --schema "id:int,name:str,score:int" --pk id
     decibel insert /tmp/repo --branch master --values "1,ada,90"
     decibel commit /tmp/repo --branch master -m "first rows"
     decibel branch /tmp/repo dev --from master
     decibel scan /tmp/repo --branch dev
     decibel diff /tmp/repo master dev
     decibel merge /tmp/repo --into master --from dev
     decibel log /tmp/repo
     decibel sql /tmp/repo "SELECT * FROM r WHERE HEAD(r.Version) = true"
*)

open Decibel
open Decibel_storage
open Cmdliner
module Vg = Decibel_graph.Version_graph
module Governor = Decibel_governor.Governor
module Obs = Decibel_obs.Obs

(* ------------------------------------------------------------------ *)
(* helpers *)

let parse_schema spec pk =
  let columns =
    List.map
      (fun field ->
        match String.split_on_char ':' (String.trim field) with
        | [ name; "int" ] -> { Schema.col_name = name; col_type = Schema.T_int }
        | [ name; "str" ] -> { Schema.col_name = name; col_type = Schema.T_str }
        | _ ->
            failwith
              (Printf.sprintf "bad column spec %S (want name:int|str)" field))
      (String.split_on_char ',' spec)
  in
  Schema.make ~name:"r" ~columns ~pk

let parse_tuple schema spec =
  let parts = String.split_on_char ',' spec in
  let cols = Schema.columns schema in
  if List.length parts <> Array.length cols then
    failwith
      (Printf.sprintf "expected %d fields, got %d" (Array.length cols)
         (List.length parts));
  Array.of_list
    (List.mapi
       (fun i part ->
         let part = String.trim part in
         match cols.(i).Schema.col_type with
         | Schema.T_int -> Value.Int (Int64.of_string part)
         | Schema.T_str -> Value.Str part)
       parts)

(* An injected fault simulates the process dying at that instant, so
   the clean close (which checkpoints and would heal the simulated
   damage) must not run — drop the handle as a crash would. *)
let with_repo dir f =
  let db = Database.reopen ~dir () in
  match f db with
  | v ->
      Database.close db;
      v
  | exception (Decibel_fault.Failpoint.Fault_injected _ as e) ->
      Database.crash db;
      raise e
  | exception e ->
      Database.close db;
      raise e

let branch_arg db name =
  match Vg.branch_by_name (Database.graph db) name with
  | Some b -> b.Vg.bid
  | None -> failwith (Printf.sprintf "no branch named %S" name)

let print_tuple t = print_endline (Tuple.to_string t)

let wrap f =
  try
    f ();
    0
  with
  | Failure msg | Types.Engine_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Decibel_fault.Failpoint.Fault_injected site ->
      Printf.eprintf "fault injected at %s (simulated crash)\n" site;
      1
  | Vquel.Parse_error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
  | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Invalid_argument msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Governor.Cancelled ->
      Printf.eprintf "error: operation cancelled\n";
      3
  | Governor.Deadline_exceeded ->
      Printf.eprintf "error: deadline exceeded\n";
      3
  | Governor.Budget_exceeded { charged; budget } ->
      Printf.eprintf "error: memory budget exceeded (%d of %d bytes)\n"
        charged budget;
      3
  | Governor.Overloaded { retry_after_ms } ->
      Printf.eprintf "error: server overloaded, retry after ~%d ms\n"
        retry_after_ms;
      4
  | Governor.Breaker.Tripped resource ->
      Printf.eprintf "error: circuit breaker open for %s\n" resource;
      4

(* ------------------------------------------------------------------ *)
(* common arguments *)

let dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"REPO" ~doc:"Repository directory.")

let branch_opt =
  Arg.(
    value & opt string "master"
    & info [ "branch"; "b" ] ~docv:"BRANCH"
        ~doc:"Branch to operate on (default master).")

let deadline_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Abandon the operation after $(docv) milliseconds (cooperative \
           cancellation; exits 3 when the deadline fires).")

let ctx_of_deadline = function
  | None -> None
  | Some ms -> Some (Governor.Ctx.create ~deadline_ms:ms ())

let profile_opt =
  let fmt_conv = Arg.enum [ ("text", "text"); ("json", "json") ] in
  Arg.(
    value
    & opt ~vopt:(Some "text") (some fmt_conv) None
    & info [ "profile" ] ~docv:"FMT"
        ~doc:
          "EXPLAIN ANALYZE: run the operation under a request trace and \
           print its per-operator profile tree (rows, timings, cost \
           counters) after the results.  $(docv) is $(b,text) (default) or \
           $(b,json).")

(* Run [f] under Database.profile when --profile was given; tracing
   must be armed before the operation or the spans that become profile
   nodes are never recorded. *)
let with_profile db profile ~label f =
  match profile with
  | None -> f ()
  | Some fmt ->
      Obs.set_enabled true;
      let (), p = Database.profile ~label db f in
      if fmt = "json" then print_endline (Obs.Prof.profile_json p)
      else print_string (Obs.Prof.render p)

(* ------------------------------------------------------------------ *)
(* commands *)

let init_cmd =
  let schema_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "schema" ] ~docv:"COLS"
          ~doc:"Comma-separated columns, e.g. $(i,id:int,name:str).")
  in
  let pk_arg =
    Arg.(value & opt string "id" & info [ "pk" ] ~doc:"Primary key column.")
  in
  let scheme_arg =
    let scheme_conv =
      Arg.enum
        [
          ("tuple-first", Database.Tuple_first);
          ("version-first", Database.Version_first);
          ("hybrid", Database.Hybrid);
        ]
    in
    Arg.(
      value & opt scheme_conv Database.Hybrid
      & info [ "scheme" ]
          ~doc:
            "Storage scheme: $(b,tuple-first), $(b,version-first) or \
             $(b,hybrid) (default).")
  in
  let durable_arg =
    Arg.(
      value & flag
      & info [ "durable" ]
          ~doc:
            "Arm write-ahead logging: operations are logged to \
             $(b,wal.log) and replayed after a crash. Subsequent \
             commands detect the log and stay durable.")
  in
  let run dir spec pk scheme durable =
    wrap (fun () ->
        if Sys.file_exists dir && Sys.readdir dir <> [||] then
          failwith (Printf.sprintf "%s already exists and is not empty" dir);
        let schema = parse_schema spec pk in
        let db = Database.open_ ~scheme ~dir ~schema ~durable () in
        Database.close db;
        Printf.printf "initialized %s%s repository in %s\n"
          (Database.scheme_name scheme)
          (if durable then " (durable)" else "")
          dir)
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create a new versioned repository.")
    Term.(const run $ dir_arg $ schema_arg $ pk_arg $ scheme_arg $ durable_arg)

let values_opt =
  Arg.(
    required
    & opt (some string) None
    & info [ "values"; "v" ] ~docv:"V1,V2,..."
        ~doc:"Field values in schema order.")

let insert_cmd =
  let run dir branch spec =
    wrap (fun () ->
        with_repo dir (fun db ->
            let t = parse_tuple (Database.schema db) spec in
            Database.insert db (branch_arg db branch) t))
  in
  Cmd.v
    (Cmd.info "insert" ~doc:"Insert a record into a branch's working copy.")
    Term.(const run $ dir_arg $ branch_opt $ values_opt)

let update_cmd =
  let run dir branch spec =
    wrap (fun () ->
        with_repo dir (fun db ->
            let t = parse_tuple (Database.schema db) spec in
            Database.update db (branch_arg db branch) t))
  in
  Cmd.v
    (Cmd.info "update" ~doc:"Update the record with a matching key.")
    Term.(const run $ dir_arg $ branch_opt $ values_opt)

let delete_cmd =
  let key =
    Arg.(
      required
      & opt (some string) None
      & info [ "key"; "k" ] ~docv:"KEY" ~doc:"Primary key value.")
  in
  let run dir branch key =
    wrap (fun () ->
        with_repo dir (fun db ->
            let schema = Database.schema db in
            let pk_col = (Schema.columns schema).(Schema.pk_index schema) in
            let k =
              match pk_col.Schema.col_type with
              | Schema.T_int -> Value.Int (Int64.of_string key)
              | Schema.T_str -> Value.Str key
            in
            Database.delete db (branch_arg db branch) k))
  in
  Cmd.v
    (Cmd.info "delete" ~doc:"Delete the record with the given key.")
    Term.(const run $ dir_arg $ branch_opt $ key)

let commit_cmd =
  let msg =
    Arg.(
      value & opt string ""
      & info [ "message"; "m" ] ~docv:"MSG" ~doc:"Commit message.")
  in
  let run dir branch message =
    wrap (fun () ->
        with_repo dir (fun db ->
            let v = Database.commit db (branch_arg db branch) ~message in
            Printf.printf "committed version %d on %s\n" v branch))
  in
  Cmd.v
    (Cmd.info "commit" ~doc:"Snapshot a branch's working state.")
    Term.(const run $ dir_arg $ branch_opt $ msg)

let branch_cmd =
  let name_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NAME" ~doc:"Name of the new branch.")
  in
  let from_arg =
    Arg.(
      value & opt string "master"
      & info [ "from" ] ~docv:"BRANCH|#N"
          ~doc:
            "Source: a branch name (its head commit) or $(i,#n) for version \
             n.")
  in
  let run dir name from =
    wrap (fun () ->
        with_repo dir (fun db ->
            let from_version =
              if String.length from > 1 && from.[0] = '#' then
                int_of_string (String.sub from 1 (String.length from - 1))
              else Vg.head (Database.graph db) (branch_arg db from)
            in
            let b = Database.create_branch db ~name ~from:from_version in
            Printf.printf "created branch %s (id %d) from version %d\n" name b
              from_version))
  in
  Cmd.v
    (Cmd.info "branch" ~doc:"Create a branch from a commit (no data copied).")
    Term.(const run $ dir_arg $ name_arg $ from_arg)

let scan_cmd =
  let version =
    Arg.(
      value
      & opt (some int) None
      & info [ "at" ] ~docv:"N"
          ~doc:"Scan committed version N (--at N) instead of a branch head.")
  in
  let run dir branch version deadline profile =
    wrap (fun () ->
        with_repo dir (fun db ->
            let ctx = ctx_of_deadline deadline in
            with_profile db profile ~label:"cli.scan" (fun () ->
                match version with
                | Some v -> Database.scan_version ?ctx db v print_tuple
                | None ->
                    Database.scan ?ctx db (branch_arg db branch) print_tuple)))
  in
  Cmd.v
    (Cmd.info "scan" ~doc:"Print the live records of a branch or version.")
    Term.(const run $ dir_arg $ branch_opt $ version $ deadline_opt
          $ profile_opt)

let diff_cmd =
  let b1 = Arg.(required & pos 1 (some string) None & info [] ~docv:"A") in
  let b2 = Arg.(required & pos 2 (some string) None & info [] ~docv:"B") in
  let run dir a b deadline profile =
    wrap (fun () ->
        with_repo dir (fun db ->
            let ctx = ctx_of_deadline deadline in
            with_profile db profile ~label:"cli.diff" (fun () ->
                Database.diff ?ctx db (branch_arg db a) (branch_arg db b)
                  ~pos:(fun t -> Printf.printf "< %s\n" (Tuple.to_string t))
                  ~neg:(fun t -> Printf.printf "> %s\n" (Tuple.to_string t)))))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Differences between two branches ('<' only in A, '>' only in B).")
    Term.(const run $ dir_arg $ b1 $ b2 $ deadline_opt $ profile_opt)

let merge_cmd =
  let into =
    Arg.(required & opt (some string) None & info [ "into" ] ~docv:"BRANCH")
  in
  let from =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"BRANCH")
  in
  let policy =
    let policy_conv =
      Arg.enum
        [
          ("ours", Types.Ours);
          ("theirs", Types.Theirs);
          ("three-way", Types.Three_way);
        ]
    in
    Arg.(
      value & opt policy_conv Types.Three_way
      & info [ "policy" ]
          ~doc:
            "Conflict policy: $(b,ours), $(b,theirs) or $(b,three-way) \
             (default: field-level three-way with destination precedence).")
  in
  let msg = Arg.(value & opt string "merge" & info [ "message"; "m" ]) in
  let run dir into from policy message deadline profile =
    wrap (fun () ->
        with_repo dir (fun db ->
            let ctx = ctx_of_deadline deadline in
            with_profile db profile ~label:"cli.merge" (fun () ->
                let r =
                  Database.merge ?ctx db ~into:(branch_arg db into)
                    ~from:(branch_arg db from) ~policy ~message
                in
                Printf.printf
                  "merged %s into %s: version %d, %d conflicts (%d/%d/%d \
                   keys ours/theirs/both)\n"
                  from into r.Types.merge_version
                  (List.length r.Types.conflicts)
                  r.Types.keys_ours r.Types.keys_theirs r.Types.keys_both;
                List.iter
                  (fun (c : Types.conflict) ->
                    Printf.printf "  conflict key=%s fields=[%s]\n"
                      (Value.to_string c.Types.key)
                      (String.concat ","
                         (List.map string_of_int c.Types.fields)))
                  r.Types.conflicts)))
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Merge one branch into another.")
    Term.(const run $ dir_arg $ into $ from $ policy $ msg $ deadline_opt
          $ profile_opt)

let log_cmd =
  let run dir =
    wrap (fun () ->
        with_repo dir (fun db ->
            let g = Database.graph db in
            List.iter
              (fun (v : Vg.version) ->
                let branch = (Vg.branch g v.Vg.on_branch).Vg.name in
                Printf.printf "version %-4d on %-12s parents=[%s] %s%s\n"
                  v.Vg.id branch
                  (String.concat ", " (List.map string_of_int v.Vg.parents))
                  v.Vg.message
                  (if Vg.is_head g v.Vg.id then "  <- head" else ""))
              (Vg.versions g)))
  in
  Cmd.v (Cmd.info "log" ~doc:"Print the version graph.")
    Term.(const run $ dir_arg)

let branches_cmd =
  let run dir =
    wrap (fun () ->
        with_repo dir (fun db ->
            List.iter
              (fun (b : Vg.branch) ->
                Printf.printf "%-16s id=%-3d base=v%-4d head=v%-4d%s\n"
                  b.Vg.name b.Vg.bid b.Vg.base b.Vg.head
                  (if b.Vg.active then "" else "  (retired)"))
              (Vg.branches (Database.graph db))))
  in
  Cmd.v (Cmd.info "branches" ~doc:"List branches.") Term.(const run $ dir_arg)

let sql_term =
  let query =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SQL"
          ~doc:
            "A VQuel query (see the paper's Table 1 for the four supported \
             shapes).")
  in
  let run dir q profile =
    wrap (fun () ->
        with_repo dir (fun db ->
            with_profile db profile ~label:"cli.query" (fun () ->
                let rows = Vquel.query db q in
                List.iter
                  (fun (r : Vquel.row) ->
                    if r.Vquel.row_branches = [] then
                      print_tuple r.Vquel.values
                    else
                      Printf.printf "%s  [%s]\n"
                        (Tuple.to_string r.Vquel.values)
                        (String.concat ", " r.Vquel.row_branches))
                  rows;
                Printf.printf "(%d rows)\n" (List.length rows))))
  in
  Term.(const run $ dir_arg $ query $ profile_opt)

let sql_cmd = Cmd.v (Cmd.info "sql" ~doc:"Run a versioned query.") sql_term

let query_cmd =
  (* alias: `decibel query REPO SQL --profile` reads as EXPLAIN ANALYZE *)
  Cmd.v (Cmd.info "query" ~doc:"Run a versioned query (alias of sql).")
    sql_term

let stats_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit statistics as one JSON object, including the internal \
             metrics registry (counters, gauges, latency histograms).")
  in
  let watch_opt =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECS"
          ~doc:
            "Re-render statistics in place every $(docv) seconds, showing \
             per-counter deltas since the previous refresh; stop with \
             ctrl-c.")
  in
  let count_opt =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"With $(b,--watch), stop after $(docv) refreshes (0 = forever).")
  in
  let governor_json db =
    match Database.governor_stats db with
    | None -> "null"
    | Some s ->
        Printf.sprintf
          "{\"capacity\":%d,\"in_use\":%d,\"queue_depth\":%d,\
           \"admitted\":%d,\"shed\":%d,\"avg_hold_ms\":%.3f}"
          s.Governor.Admission.capacity s.Governor.Admission.in_use
          s.Governor.Admission.queue_depth s.Governor.Admission.admitted
          s.Governor.Admission.shed s.Governor.Admission.avg_hold_ms
  in
  let print_stats db json =
    let g = Database.graph db in
    if json then
      Printf.printf
        "{\"scheme\":\"%s\",\"branches\":%d,\"versions\":%d,\
         \"dataset_bytes\":%d,\"commit_meta_bytes\":%d,\"domains\":%d,\
         \"governor\":%s,\"metrics\":%s}\n"
        (Decibel_obs.Obs.json_escape (Database.scheme_of db))
        (Vg.branch_count g) (Vg.version_count g)
        (Database.dataset_bytes db)
        (Database.commit_meta_bytes db)
        (Decibel_par.Par.domain_count ())
        (governor_json db)
        (Database.metrics_json db)
    else begin
      Printf.printf "scheme:        %s\n" (Database.scheme_of db);
      Printf.printf "schema:        %s\n"
        (Format.asprintf "%a" Schema.pp (Database.schema db));
      Printf.printf "branches:      %d\n" (Vg.branch_count g);
      Printf.printf "versions:      %d\n" (Vg.version_count g);
      Printf.printf "data bytes:    %d\n" (Database.dataset_bytes db);
      Printf.printf "commit bytes:  %d\n" (Database.commit_meta_bytes db);
      Printf.printf "scan domains:  %d (DECIBEL_DOMAINS to change)\n"
        (Decibel_par.Par.domain_count ());
      (match Database.governor_stats db with
      | Some s ->
          Printf.printf
            "governor:      %d/%d slots in use, queue %d, admitted %d, \
             shed %d, avg hold %.1f ms\n"
            s.Governor.Admission.in_use s.Governor.Admission.capacity
            s.Governor.Admission.queue_depth s.Governor.Admission.admitted
            s.Governor.Admission.shed s.Governor.Admission.avg_hold_ms
      | None ->
          let c = Governor.counters () in
          let get k = Option.value ~default:0 (List.assoc_opt k c) in
          Printf.printf
            "governor:      off (process counters: admitted %d, shed %d, \
             cancelled %d, deadline %d)\n"
            (get "governor.admitted") (get "governor.shed")
            (get "governor.cancelled")
            (get "governor.deadline_exceeded"));
      let snap = Database.metrics db in
      List.iter
        (fun (name, v) -> if v > 0 then Printf.printf "%-32s %d\n" name v)
        snap.Decibel_obs.Obs.counters
    end
  in
  let run dir json watch count =
    wrap (fun () ->
        match watch with
        | None -> with_repo dir (fun db -> print_stats db json)
        | Some secs ->
            (* each refresh reopens the repository, so an external
               writer's committed state shows up between ticks *)
            let prev = ref (Decibel_obs.Obs.snapshot ()) in
            let tick n =
              print_string "\027[H\027[2J";
              with_repo dir (fun db -> print_stats db json);
              let snap = Decibel_obs.Obs.snapshot () in
              let deltas =
                List.filter
                  (fun (_, d) -> d <> 0)
                  (Decibel_obs.Obs.counters_diff !prev snap)
              in
              prev := snap;
              if deltas <> [] then begin
                Printf.printf "-- counter deltas since last refresh --\n";
                List.iter
                  (fun (k, d) -> Printf.printf "%-32s +%d\n" k d)
                  deltas
              end;
              Printf.printf "[refresh %d, every %gs; ctrl-c to stop]\n%!" n
                secs
            in
            let n = ref 0 in
            let more () = count <= 0 || !n < count in
            while more () do
              Stdlib.incr n;
              tick !n;
              if more () then Unix.sleepf (Float.max 0.01 secs)
            done)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Repository statistics.")
    Term.(const run $ dir_arg $ json_flag $ watch_opt $ count_opt)

let inspect_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the storage report as one JSON object.")
  in
  let run dir json =
    wrap (fun () ->
        with_repo dir (fun db ->
            let r = Database.storage_report db in
            if json then
              print_endline (Decibel_obs.Report.to_json r)
            else print_string (Decibel_obs.Report.to_text r)))
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "ANALYZE-style storage introspection: per-branch live/dead tuple \
          counts, bitmap density, commit-delta chains, per-segment \
          fragmentation, version-graph shape and buffer-pool residency.")
    Term.(const run $ dir_arg $ json_flag)

let advise_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the recommendations as one JSON array.")
  in
  let run dir json =
    wrap (fun () ->
        with_repo dir (fun db ->
            let recs = Database.advise db in
            if json then print_endline (Decibel_obs.Advisor.to_json recs)
            else print_string (Decibel_obs.Advisor.to_text recs)))
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Storage advisor: join the per-branch workload statistics \
          (read/write rates, delta fragments replayed) with the storage \
          report through the recreation/storage cost model and print \
          ranked, explained recommendations — materialize a hot \
          delta-chained branch, compact a fragmented segment, gc dead \
          space, rechunk a long cold chain.")
    Term.(const run $ dir_arg $ json_flag)

let health_cmd =
  let json_flag =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit the status as one JSON object.")
  in
  let run dir json =
    let level = ref 0 in
    let rc =
      wrap (fun () ->
          with_repo dir (fun db ->
              let module W = Decibel_obs.Watchdog in
              let st = Database.health_tick db in
              if json then print_endline (W.to_json st)
              else print_string (W.to_text st);
              level :=
                (match st.W.st_level with
                | W.L_ok -> 0
                | W.L_warn -> 1
                | W.L_critical -> 2)))
    in
    if rc <> 0 then rc else !level
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run one health-watchdog evaluation (dead-space ratios, \
          delta-chain depths, hot replay cost, quarantined branches) and \
          print the verdict.  Exits 0 when ok, 1 on warnings, 2 when \
          critical.")
    Term.(const run $ dir_arg $ json_flag)

let serve_metrics_cmd =
  let port_opt =
    Arg.(
      value & opt int 9464
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let host_opt =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")
  in
  let max_requests_opt =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after serving $(docv) requests (0 = serve forever).")
  in
  let run dir port host max_requests =
    wrap (fun () ->
        with_repo dir (fun db ->
            Monitor.serve ~host ~max_requests ~port ~handle_signals:true db
              ~on_listen:(fun port ->
                Printf.printf
                  "serving metrics on http://%s:%d (routes: /metrics /events \
                   /report /governor /profile /workload /advise /health; \
                   SIGINT/SIGTERM to stop)\n\
                   %!"
                  host port)))
  in
  Cmd.v
    (Cmd.info "serve-metrics"
       ~doc:
         "Serve a Prometheus-format pull endpoint for the metrics registry \
          plus storage-report gauges ($(b,/metrics)), the structured event \
          log ($(b,/events)) and the full storage report ($(b,/report)) \
          over HTTP.")
    Term.(const run $ dir_arg $ port_opt $ host_opt $ max_requests_opt)

let maint_cmd =
  let kind_opt =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("compact", Engine_intf.M_compact);
                  ("materialize", Engine_intf.M_materialize);
                  ("gc", Engine_intf.M_gc);
                ]))
          None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Run one explicit task instead of an advisor-driven pass: \
             $(b,compact) a segment, $(b,materialize) a branch, or \
             $(b,gc) dead heap space.")
  in
  let target_opt =
    Arg.(
      value & opt string ""
      & info [ "target" ] ~docv:"TARGET"
          ~doc:
            "What the task rewrites: a branch name for materialize, a \
             segment file for compact.  GC picks its own target when \
             empty.")
  in
  let json_flag =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit the results as a JSON array.")
  in
  let run dir kind target json =
    wrap (fun () ->
        with_repo dir (fun db ->
            let results =
              match kind with
              | None -> Database.maintenance_tick db
              | Some kind -> (
                  match Database.run_maintenance db ~kind ~target with
                  | Some m -> [ m ]
                  | None -> [])
            in
            if json then begin
              let item (m : Database.maint_result) =
                Printf.sprintf
                  "{\"kind\":\"%s\",\"target\":\"%s\",\"bytes_reclaimed\":%d}"
                  (Obs.json_escape m.Database.m_kind)
                  (Obs.json_escape m.Database.m_target)
                  m.Database.m_reclaimed
              in
              print_endline
                ("[" ^ String.concat "," (List.map item results) ^ "]")
            end
            else if results = [] then print_endline "nothing to do"
            else
              List.iter
                (fun (m : Database.maint_result) ->
                  Printf.printf "%s %s: reclaimed %d bytes\n"
                    m.Database.m_kind
                    (if m.Database.m_target = "" then "store"
                     else m.Database.m_target)
                    m.Database.m_reclaimed)
                results))
  in
  Cmd.v
    (Cmd.info "maint"
       ~doc:
         "Run crash-safe maintenance: compact fragmented segments, \
          materialize hot delta-chained branches, reclaim dead heap \
          space.  Without $(b,--kind), runs one advisor-driven pass \
          (every current recommendation).  Each task is journaled to \
          maint.jsonl and fingerprint-checked against the \
          pre-maintenance contents, so a crash at any point leaves \
          either the old or the new state — never a torn hybrid.")
    Term.(const run $ dir_arg $ kind_opt $ target_opt $ json_flag)

let fsck_cmd =
  let repair_flag =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Fix the mechanically safe problems: remove stale temp files \
             from interrupted atomic renames, truncate a torn \
             write-ahead-log tail to its intact prefix, and finish or \
             roll back maintenance tasks left pending in the maint.jsonl \
             journal (reclaiming orphaned rewrite files).  Checkpoint \
             checksum failures are only ever reported.")
  in
  let migrate_flag =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:
            "Upgrade a segment-format-v1 (pre-columnar) repository to the \
             columnar v2 layout in place.  Row order is preserved so every \
             persisted locator stays valid; the checkpoint must verify \
             clean first, and a repository already on v2 is untouched.")
  in
  let json_flag =
    Arg.(
      value & flag & info [ "json" ] ~doc:"Emit the report as one JSON object.")
  in
  let run dir repair migrate json =
    let code = ref 0 in
    let rc =
      wrap (fun () ->
          let r = Fsck.run ~repair ~migrate ~dir () in
          if json then print_endline (Fsck.to_json r)
          else print_string (Fsck.to_text r);
          if not (Fsck.clean r) then code := 1)
    in
    if rc <> 0 then rc else !code
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check repository integrity: manifest trailer checksum, per-record \
          heap and segment checksums, commit-locator cross-references, \
          stale temp files and torn write-ahead-log tails.  Exits non-zero \
          if any problem is found (repaired or not).  With $(b,--migrate), \
          also upgrades a clean v1-format repository to the columnar v2 \
          segment layout.")
    Term.(const run $ dir_arg $ repair_flag $ migrate_flag $ json_flag)

let () =
  let info =
    Cmd.info "decibel" ~version:"1.0.0"
      ~doc:
        "Relational dataset branching: branch, commit, diff and merge tables \
         like code."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            init_cmd; insert_cmd; update_cmd; delete_cmd; commit_cmd;
            branch_cmd; scan_cmd; diff_cmd; merge_cmd; log_cmd; branches_cmd;
            sql_cmd; query_cmd; stats_cmd; inspect_cmd; advise_cmd;
            health_cmd; serve_metrics_cmd; maint_cmd; fsck_cmd;
          ]))
