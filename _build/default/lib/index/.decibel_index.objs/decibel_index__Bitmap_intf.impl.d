lib/index/bitmap_intf.ml: Buffer Decibel_util
