lib/index/pk_index.mli: Decibel_storage Value
