lib/index/commit_history.ml: Array Binio Bitvec Buffer Decibel_util Printf Rle String
