lib/index/tuple_bitmap.ml: Bitvec Decibel_util Printf
