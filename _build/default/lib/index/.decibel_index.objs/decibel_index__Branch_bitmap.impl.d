lib/index/branch_bitmap.ml: Array Bitvec Decibel_util Printf
