lib/index/commit_history.mli: Decibel_util
