lib/index/pk_index.ml: Array Decibel_storage Hashtbl Printf Value
