open Decibel_storage

(** Per-branch primary-key index.

    To support efficient updates and deletes, the engines keep an index
    from primary key to the most recent copy of each record in each
    branch (paper §3.2 “Data Modification”).  The location type is
    engine-specific (row number for tuple-first, segment/offset for
    version-first and hybrid), so the index is polymorphic in it.

    Branch creation clones the parent's map, mirroring the branch-time
    bitmap clone. *)

type 'a t

val create : unit -> 'a t

val add_branch : 'a t -> from:int option -> int
(** Register the next dense branch id, optionally inheriting the
    parent's key map. Returns the new branch id. *)

val branch_count : 'a t -> int

val find : 'a t -> branch:int -> Value.t -> 'a option
val set : 'a t -> branch:int -> Value.t -> 'a -> unit
val remove : 'a t -> branch:int -> Value.t -> unit
val mem : 'a t -> branch:int -> Value.t -> bool
val iter : 'a t -> branch:int -> (Value.t -> 'a -> unit) -> unit
val cardinal : 'a t -> branch:int -> int
