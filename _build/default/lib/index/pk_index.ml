open Decibel_storage

module H = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type 'a t = { mutable maps : 'a H.t array; mutable n : int }

let create () = { maps = Array.make 4 (H.create 1); n = 0 }

let branch_count t = t.n

let check t b =
  if b < 0 || b >= t.n then
    invalid_arg (Printf.sprintf "Pk_index: unknown branch %d" b)

let add_branch t ~from =
  let m =
    match from with
    | None -> H.create 64
    | Some parent ->
        check t parent;
        H.copy t.maps.(parent)
  in
  if t.n = Array.length t.maps then begin
    let a = Array.make (2 * t.n) (H.create 1) in
    Array.blit t.maps 0 a 0 t.n;
    t.maps <- a
  end;
  t.maps.(t.n) <- m;
  t.n <- t.n + 1;
  t.n - 1

let find t ~branch k =
  check t branch;
  H.find_opt t.maps.(branch) k

let set t ~branch k v =
  check t branch;
  H.replace t.maps.(branch) k v

let remove t ~branch k =
  check t branch;
  H.remove t.maps.(branch) k

let mem t ~branch k =
  check t branch;
  H.mem t.maps.(branch) k

let iter t ~branch f =
  check t branch;
  H.iter f t.maps.(branch)

let cardinal t ~branch =
  check t branch;
  H.length t.maps.(branch)
