lib/graph/version_graph.mli: Format
