lib/graph/version_graph.ml: Array Binio Bitvec Buffer Decibel_util Format Hashtbl List Option Printf String
