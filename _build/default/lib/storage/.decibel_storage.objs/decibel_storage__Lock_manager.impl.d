lib/storage/lock_manager.ml: Condition Fun Hashtbl List Mutex Thread Unix
