lib/storage/buffer_pool.ml: Array Hashtbl List
