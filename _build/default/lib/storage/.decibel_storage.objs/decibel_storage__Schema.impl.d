lib/storage/schema.ml: Array Binio Decibel_util Format List Printf Set String Value
