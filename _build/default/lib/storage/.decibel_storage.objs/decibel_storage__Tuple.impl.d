lib/storage/tuple.ml: Array Binio Buffer Decibel_util Format Schema String Value
