lib/storage/value.ml: Binio Decibel_util Format Hashtbl Int64 Printf String
