lib/storage/schema.mli: Buffer Format Value
