lib/storage/heap_file.ml: Binio Buffer Buffer_pool Bytes Decibel_util List Option Printf String Sys Unix
