open Decibel_util

type col_type = T_int | T_str

type column = { col_name : string; col_type : col_type }

type t = { name : string; columns : column array; pk : int }

let make ~name ~columns ~pk =
  if columns = [] then invalid_arg "Schema.make: no columns";
  let arr = Array.of_list columns in
  let names = Array.map (fun c -> c.col_name) arr in
  let module S = Set.Make (String) in
  if S.cardinal (S.of_list (Array.to_list names)) <> Array.length names then
    invalid_arg "Schema.make: duplicate column names";
  let pk_idx =
    match Array.find_index (fun c -> c.col_name = pk) arr with
    | Some i -> i
    | None -> invalid_arg ("Schema.make: unknown pk column " ^ pk)
  in
  { name; columns = arr; pk = pk_idx }

let name t = t.name
let columns t = t.columns
let arity t = Array.length t.columns
let pk_index t = t.pk

let column_index t n =
  match Array.find_index (fun c -> c.col_name = n) t.columns with
  | Some i -> i
  | None -> raise Not_found

let validate t tuple =
  if Array.length tuple <> arity t then
    Error
      (Printf.sprintf "arity mismatch: expected %d fields, got %d" (arity t)
         (Array.length tuple))
  else
    let bad = ref None in
    Array.iteri
      (fun i (v : Value.t) ->
        if !bad = None then
          match v, t.columns.(i).col_type with
          | Value.Int _, T_int | Value.Str _, T_str -> ()
          | _ ->
              bad :=
                Some
                  (Printf.sprintf "column %s: expected %s, got %s"
                     t.columns.(i).col_name
                     (match t.columns.(i).col_type with
                     | T_int -> "int"
                     | T_str -> "str")
                     (Value.type_name v)))
      tuple;
    match !bad with None -> Ok () | Some msg -> Error msg

let ints ~name ~width =
  if width < 1 then invalid_arg "Schema.ints: width must be >= 1";
  let columns =
    List.init width (fun i ->
        { col_name = Printf.sprintf "c%d" i; col_type = T_int })
  in
  make ~name ~columns ~pk:"c0"

let serialize buf t =
  Binio.write_string buf t.name;
  Binio.write_varint buf t.pk;
  Binio.write_varint buf (Array.length t.columns);
  Array.iter
    (fun c ->
      Binio.write_string buf c.col_name;
      Binio.write_u8 buf (match c.col_type with T_int -> 0 | T_str -> 1))
    t.columns

let deserialize s pos =
  let name = Binio.read_string s pos in
  let pk = Binio.read_varint s pos in
  let n = Binio.read_varint s pos in
  let columns =
    Array.init n (fun _ ->
        let col_name = Binio.read_string s pos in
        let col_type =
          match Binio.read_u8 s pos with
          | 0 -> T_int
          | 1 -> T_str
          | t ->
              raise
                (Binio.Corrupt (Printf.sprintf "Schema: bad column type %d" t))
        in
        { col_name; col_type })
  in
  { name; columns; pk }

let equal a b =
  a.name = b.name && a.pk = b.pk && a.columns = b.columns

let pp fmt t =
  Format.fprintf fmt "%s(" t.name;
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s:%s%s" c.col_name
        (match c.col_type with T_int -> "int" | T_str -> "str")
        (if i = t.pk then "*" else ""))
    t.columns;
  Format.fprintf fmt ")"
