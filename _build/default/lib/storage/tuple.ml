open Decibel_util

type t = Value.t array

let pk schema t = t.(Schema.pk_index schema)
let field t i = t.(i)

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 Value.equal a b

let encode_into schema buf t =
  let cols = Schema.columns schema in
  Array.iteri
    (fun i (v : Value.t) ->
      match v, cols.(i).Schema.col_type with
      | Value.Int x, Schema.T_int -> Binio.write_i64 buf x
      | Value.Str s, Schema.T_str -> Binio.write_string buf s
      | _ -> invalid_arg "Tuple.encode: value does not match schema")
    t

let encode schema t =
  let buf = Buffer.create (Schema.arity schema * 8) in
  encode_into schema buf t;
  Buffer.contents buf

let decode schema s pos =
  let cols = Schema.columns schema in
  Array.map
    (fun (c : Schema.column) ->
      match c.Schema.col_type with
      | Schema.T_int -> Value.Int (Binio.read_i64 s pos)
      | Schema.T_str -> Value.Str (Binio.read_string s pos))
    cols

let encoded_size schema t =
  let cols = Schema.columns schema in
  let acc = ref 0 in
  Array.iteri
    (fun i (v : Value.t) ->
      match v, cols.(i).Schema.col_type with
      | Value.Int _, Schema.T_int -> acc := !acc + 8
      | Value.Str s, Schema.T_str ->
          let n = String.length s in
          let rec varint_len v = if v < 0x80 then 1 else 1 + varint_len (v lsr 7) in
          acc := !acc + varint_len n + n
      | _ -> invalid_arg "Tuple.encoded_size: value does not match schema")
    t;
  !acc

let conflicting_fields a b =
  let n = min (Array.length a) (Array.length b) in
  let rec loop i acc =
    if i < 0 then acc
    else if Value.equal a.(i) b.(i) then loop (i - 1) acc
    else loop (i - 1) (i :: acc)
  in
  loop (n - 1) []

let merge_fields ~base ~ours ~theirs =
  match base with
  | None ->
      (* Both branches inserted the key with no common ancestor copy:
         identical tuples merge trivially, otherwise every differing
         field conflicts. *)
      let diffs = conflicting_fields ours theirs in
      if diffs = [] then Ok ours else Error diffs
  | Some base ->
      let n = Array.length base in
      let merged = Array.copy base in
      let conflicts = ref [] in
      for i = n - 1 downto 0 do
        let ours_changed = not (Value.equal ours.(i) base.(i)) in
        let theirs_changed = not (Value.equal theirs.(i) base.(i)) in
        match ours_changed, theirs_changed with
        | false, false -> ()
        | true, false -> merged.(i) <- ours.(i)
        | false, true -> merged.(i) <- theirs.(i)
        | true, true ->
            if Value.equal ours.(i) theirs.(i) then merged.(i) <- ours.(i)
            else conflicts := i :: !conflicts
      done;
      if !conflicts = [] then Ok merged else Error !conflicts

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt ", ";
      Value.pp fmt v)
    t;
  Format.fprintf fmt ")"

let to_string t = Format.asprintf "%a" pp t
