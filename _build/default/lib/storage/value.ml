open Decibel_util

type t =
  | Int of int64
  | Str of string

let compare a b =
  match a, b with
  | Int x, Int y -> Int64.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Int64.to_int x land max_int
  | Str s -> Hashtbl.hash s

let int n = Int (Int64.of_int n)

let to_int_exn = function
  | Int x -> x
  | Str _ -> invalid_arg "Value.to_int_exn: string value"

let type_name = function Int _ -> "int" | Str _ -> "str"

(* Tag byte distinguishes the constructors so heterogeneous decode is
   self-describing; schemas still enforce homogeneity per column. *)
let encode buf = function
  | Int x ->
      Binio.write_u8 buf 0;
      Binio.write_i64 buf x
  | Str s ->
      Binio.write_u8 buf 1;
      Binio.write_string buf s

let decode s pos =
  match Binio.read_u8 s pos with
  | 0 -> Int (Binio.read_i64 s pos)
  | 1 -> Str (Binio.read_string s pos)
  | t -> raise (Binio.Corrupt (Printf.sprintf "Value.decode: bad tag %d" t))

let pp fmt = function
  | Int x -> Format.fprintf fmt "%Ld" x
  | Str s -> Format.fprintf fmt "%S" s

let to_string v = Format.asprintf "%a" pp v
