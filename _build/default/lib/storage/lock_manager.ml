type mode = Shared | Exclusive

exception Deadlock of string

type entry = { mutable locks : (int * mode) list }

type t = {
  mutex : Mutex.t;
  changed : Condition.t;
  table : (string, entry) Hashtbl.t;
  timeout_s : float;
}

let create ?(timeout_s = 5.0) () =
  {
    mutex = Mutex.create ();
    changed = Condition.create ();
    table = Hashtbl.create 64;
    timeout_s;
  }

let entry_of t resource =
  match Hashtbl.find_opt t.table resource with
  | Some e -> e
  | None ->
      let e = { locks = [] } in
      Hashtbl.replace t.table resource e;
      e

let compatible entry ~owner mode =
  match mode with
  | Shared ->
      List.for_all
        (fun (o, m) -> o = owner || m = Shared)
        entry.locks
  | Exclusive -> List.for_all (fun (o, _) -> o = owner) entry.locks

let acquire t ~owner ~resource mode =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let e = entry_of t resource in
      let deadline = Unix.gettimeofday () +. t.timeout_s in
      let rec wait () =
        if compatible e ~owner mode then begin
          let held = List.assoc_opt owner e.locks in
          match held, mode with
          | Some Exclusive, _ | Some Shared, Shared -> ()
          | Some Shared, Exclusive ->
              e.locks <-
                (owner, Exclusive) :: List.remove_assoc owner e.locks
          | None, _ -> e.locks <- (owner, mode) :: e.locks
        end
        else begin
          if Unix.gettimeofday () > deadline then raise (Deadlock resource);
          (* Condition.wait has no timeout; poll with a short sleep while
             releasing the mutex so holders can make progress. *)
          Mutex.unlock t.mutex;
          Thread.yield ();
          Unix.sleepf 0.002;
          Mutex.lock t.mutex;
          wait ()
        end
      in
      wait ())

let release_all t ~owner =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.iter
        (fun _ e -> e.locks <- List.filter (fun (o, _) -> o <> owner) e.locks)
        t.table;
      Condition.broadcast t.changed)

let holders t ~resource =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.table resource with
      | Some e -> e.locks
      | None -> [])
