(** Field values.

    Decibel's benchmark uses integer columns with an integer primary key
    (paper §4.2); examples also use strings, so both are supported.
    Values are compared structurally — only values of the same type are
    comparable; mixing types in one column is a schema violation caught
    at insert time. *)

type t =
  | Int of int64
  | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val int : int -> t
(** Convenience: [Int (Int64.of_int n)]. *)

val to_int_exn : t -> int64
(** Raises [Invalid_argument] on a [Str]. *)

val type_name : t -> string

val encode : Buffer.t -> t -> unit
val decode : string -> int ref -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
