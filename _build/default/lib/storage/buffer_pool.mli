(** Page cache shared by heap files.

    Decibel stores pages "in a fairly conventional buffer pool
    architecture" (paper §2.1; 4 MB pages on their testbed).  This pool
    caches fixed-size pages keyed by (file id, page number) with clock
    (second-chance) eviction.  Files perform their own I/O and consult
    the pool; only complete pages are cached, so a file's growing tail
    page is always re-read and never stale.

    The pool counts hits/misses/evictions for benchmark reporting, and
    {!drop_all} simulates a cold cache between measurements (the paper
    flushes disk caches before each operation, §5). *)

type t

val create : ?page_size:int -> ?capacity_pages:int -> unit -> t
(** [page_size] in bytes (default 65536); [capacity_pages] bounds
    residency (default 1024, i.e. 64 MiB at the default page size). *)

val page_size : t -> int

val next_file_id : t -> int
(** Fresh identifier for a file joining the pool. *)

val find : t -> file:int -> page:int -> bytes option
(** Cached page contents, if resident. Marks the page recently-used. *)

val add : t -> file:int -> page:int -> bytes -> unit
(** Insert a (complete) page, evicting if at capacity. *)

val invalidate_file : t -> int -> unit
(** Drop every cached page of one file (file truncated or deleted). *)

val invalidate_page : t -> file:int -> page:int -> unit
(** Drop one cached page (its durable contents grew). *)

val drop_all : t -> unit
(** Empty the cache; statistics are retained. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : t -> stats
val reset_stats : t -> unit
