(** Relation schemas.

    Each relation has a well-defined, immutable primary key used to
    track records across versions and branches (paper §2.2.1).  A schema
    names the relation, its columns and their types, and designates the
    primary-key column. *)

type col_type = T_int | T_str

type column = { col_name : string; col_type : col_type }

type t

val make : name:string -> columns:column list -> pk:string -> t
(** Raises [Invalid_argument] if [pk] is not a column name, column names
    are not distinct, or [columns] is empty. *)

val name : t -> string
val columns : t -> column array
val arity : t -> int

val pk_index : t -> int
(** Position of the primary-key column. *)

val column_index : t -> string -> int
(** Raises [Not_found] for an unknown column name. *)

val validate : t -> Value.t array -> (unit, string) result
(** Arity and per-column type check for a candidate tuple. *)

val ints : name:string -> width:int -> t
(** Benchmark-style schema: [width] int columns [c0..c{width-1}] with
    [c0] as primary key (paper §4.2 uses all-integer rows). *)

val serialize : Buffer.t -> t -> unit
val deserialize : string -> int ref -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
