(** Tuple (record) encoding.

    A tuple is an array of {!Value.t} conforming to a {!Schema.t}.  The
    wire form is schema-directed: int columns are fixed 8-byte
    little-endian, string columns are varint-length-prefixed, so all-int
    benchmark tuples have a fixed, predictable size (the paper fixes a
    1 KB record of integer columns, §4.2). *)

type t = Value.t array

val pk : Schema.t -> t -> Value.t
(** The primary-key field. *)

val field : t -> int -> Value.t

val equal : t -> t -> bool

val encode : Schema.t -> t -> string
val encode_into : Schema.t -> Buffer.t -> t -> unit
val decode : Schema.t -> string -> int ref -> t

val encoded_size : Schema.t -> t -> int

val conflicting_fields : t -> t -> int list
(** Indices where the two tuples disagree — the paper's field-level
    conflict granularity (§2.2.3): two records conflict if they share a
    primary key but differ in some field. *)

val merge_fields : base:t option -> ours:t -> theirs:t -> (t, int list) result
(** Three-way field merge relative to the lowest-common-ancestor copy.
    Non-overlapping field updates auto-merge; returns [Error fields]
    listing the conflicting field indices when both sides changed the
    same field to different values (paper §2.2.3 “Merge”).  With no base
    (both sides inserted the key independently), any disagreeing field
    conflicts. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
