(** A small LZ77 byte compressor.

    Used by the git-like baseline ({!Decibel_gitlike}) to stand in for
    zlib when storing loose objects: real git deflates every object on
    commit, and that per-byte compression cost is one of the behaviours
    the paper's §5.7 comparison exercises.  The format is a stream of
    tokens — literal runs and back-references found with a hash-chain
    match finder — framed by the uncompressed length. *)

val compress : string -> string
val decompress : string -> string
(** [decompress (compress s) = s].  Raises [Binio.Corrupt] on malformed
    input. *)
