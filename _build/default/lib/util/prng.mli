(** Deterministic pseudo-random numbers (SplitMix64).

    The benchmark loads every storage scheme with the *same* operation
    stream (paper §5.6: “we deterministically seed the random number
    generator to ensure each scheme performs the same set of operations
    in the same order”).  A self-contained generator with explicit state
    and cheap splitting guarantees that across engines and across runs,
    independent of the OCaml stdlib's generator evolution. *)

type t

val create : int64 -> t
(** Generator seeded with the given value. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
