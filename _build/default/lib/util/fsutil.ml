let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { st_kind = S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let rec dir_bytes path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0
  | { st_kind = S_DIR; _ } ->
      Array.fold_left
        (fun acc name -> acc + dir_bytes (Filename.concat path name))
        0 (Sys.readdir path)
  | { st_kind = S_REG; st_size; _ } -> st_size
  | _ -> 0

let counter = ref 0

let fresh_dir ?base prefix =
  let base =
    match base with Some b -> b | None -> Filename.get_temp_dir_name ()
  in
  let rec try_next () =
    incr counter;
    let candidate =
      Filename.concat base
        (Printf.sprintf "%s.%d.%d" prefix (Unix.getpid ()) !counter)
    in
    if Sys.file_exists candidate then try_next ()
    else begin
      mkdir_p candidate;
      candidate
    end
  in
  try_next ()
