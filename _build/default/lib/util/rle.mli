(** Run-length encoding of bit vectors.

    Decibel compresses commit-history bitmap deltas with run-length
    encoding (paper §3.2 “Commit”): an XOR between two successive commit
    snapshots is overwhelmingly zero with sparse runs of ones, which RLE
    captures compactly.  The encoding is a varint run-count followed by
    varint run lengths, alternating zero-run / one-run and starting with
    a zero-run (possibly of length 0). *)

val encode : Bitvec.t -> string
(** Self-delimiting compressed form of the vector. *)

val decode : string -> int ref -> Bitvec.t
(** Inverse of {!encode}; advances the cursor. Raises [Binio.Corrupt] on
    malformed input. *)

val encoded_size : Bitvec.t -> int
(** [String.length (encode v)] (used for storage accounting). *)
