lib/util/rle.ml: Binio Bitvec Buffer List String
