lib/util/binio.ml: Buffer Char Fun Int32 List Printf String Sys
