lib/util/vec.mli:
