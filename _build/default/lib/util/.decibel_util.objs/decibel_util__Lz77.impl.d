lib/util/lz77.ml: Array Binio Buffer Char Printf String
