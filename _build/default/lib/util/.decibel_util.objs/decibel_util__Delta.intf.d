lib/util/delta.mli:
