lib/util/fsutil.ml: Array Filename Printf Sys Unix
