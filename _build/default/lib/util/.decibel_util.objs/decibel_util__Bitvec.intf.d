lib/util/bitvec.mli: Buffer Format
