lib/util/fsutil.mli:
