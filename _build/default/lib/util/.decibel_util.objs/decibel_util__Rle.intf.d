lib/util/rle.mli: Bitvec
