lib/util/lz77.mli:
