lib/util/prng.mli:
