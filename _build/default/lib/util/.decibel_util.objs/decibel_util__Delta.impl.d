lib/util/delta.ml: Binio Buffer Char Hashtbl List Printf String
