lib/util/bitvec.ml: Buffer Bytes Format Int32 Int64 List String
