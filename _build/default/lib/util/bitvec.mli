(** Growable bit vectors.

    The central indexing structure of Decibel's tuple-first and hybrid
    storage schemes is a bitmap relating tuples to the branches they are
    live in (paper §3.1).  This module provides the underlying dense bit
    vector: a growable sequence of bits with word-at-a-time bulk
    operations (and / or / xor), population count, and fast iteration
    over set bits.

    Indices are 0-based.  Reading past [length] returns [false]; writing
    past [length] grows the vector (intervening bits are zero).  All
    operations are single-threaded; callers synchronize externally. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty vector. [capacity] (bits) preallocates backing storage. *)

val length : t -> int
(** Number of bits logically present (highest written index + 1). *)

val get : t -> int -> bool
(** [get t i] is bit [i]; [false] beyond [length t]. Raises
    [Invalid_argument] on negative [i]. *)

val set : t -> int -> unit
(** [set t i] sets bit [i] to one, growing the vector if needed. *)

val clear : t -> int -> unit
(** [clear t i] sets bit [i] to zero, growing the vector if needed. *)

val assign : t -> int -> bool -> unit
(** [assign t i b] writes [b] at index [i]. *)

val copy : t -> t

val equal : t -> t -> bool
(** Logical equality: trailing zeros are insignificant. *)

val is_empty : t -> bool
(** [true] iff no bit is set. *)

val pop_count : t -> int
(** Number of set bits. *)

val union : t -> t -> t
val inter : t -> t -> t
val xor : t -> t -> t
(** Bulk logical operations; the result length is the max of the two
    argument lengths ([inter]: the min suffices logically, but we keep
    the max for uniformity). Arguments are unchanged. *)

val diff : t -> t -> t
(** [diff a b] is [a AND NOT b]. *)

val union_in_place : t -> t -> unit
(** [union_in_place dst src] ORs [src] into [dst]. *)

val iter_set : (int -> unit) -> t -> unit
(** Calls the function on each set index, ascending. Skips zero words. *)

val fold_set : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val of_list : int list -> t

val next_set : t -> int -> int option
(** [next_set t i] is the smallest set index [>= i], if any. *)

val serialize : Buffer.t -> t -> unit
(** Appends a self-delimiting encoding (length + raw words). *)

val deserialize : string -> int ref -> t
(** Reads an encoding produced by {!serialize}, advancing the cursor. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: ["{1, 5, 9}"]. *)
