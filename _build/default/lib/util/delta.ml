(* Encoding: varint base_len, varint target_len, then instructions:
   0x00 = insert (varint len, bytes); 0x01 = copy (varint off, varint len).
   The match finder hashes fixed-size base blocks and greedily extends
   candidate matches in both directions within the current target span. *)

let block = 16

let hash_block s i =
  let h = ref 0 in
  for k = i to i + block - 1 do
    h := (!h * 131) + Char.code s.[k]
  done;
  !h land max_int

let make ~base ~target =
  let nb = String.length base and nt = String.length target in
  let buf = Buffer.create (nt / 4 + 16) in
  Binio.write_varint buf nb;
  Binio.write_varint buf nt;
  let table : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let i = ref 0 in
  while !i + block <= nb do
    let h = hash_block base !i in
    let l = try Hashtbl.find table h with Not_found -> [] in
    (* cap bucket size so adversarial bases stay linear *)
    if List.length l < 8 then Hashtbl.replace table h (!i :: l);
    i := !i + block
  done;
  let insert_start = ref 0 in
  let flush_insert upto =
    if upto > !insert_start then begin
      Binio.write_u8 buf 0x00;
      Binio.write_varint buf (upto - !insert_start);
      Buffer.add_substring buf target !insert_start (upto - !insert_start)
    end
  in
  let extend_forward bi ti =
    let rec loop k =
      if bi + k < nb && ti + k < nt && base.[bi + k] = target.[ti + k] then
        loop (k + 1)
      else k
    in
    loop 0
  in
  (* rolling hash over the sliding 16-byte window so a miss advances in
     O(1) instead of rehashing the whole block *)
  let hbase = 131 in
  let hbase_pow =
    let rec pow acc n =
      if n = 0 then acc else pow (acc * hbase land max_int) (n - 1)
    in
    pow 1 (block - 1)
  in
  let rolling = ref 0 in
  let rolling_at = ref (-1) in
  let roll_to t_pos =
    if t_pos = !rolling_at then ()
    else if !rolling_at >= 0 && t_pos = !rolling_at + 1 && t_pos + block <= nt
    then begin
      let out = Char.code target.[t_pos - 1] in
      let inc = Char.code target.[t_pos + block - 1] in
      rolling :=
        (((!rolling - (out * hbase_pow)) * hbase) + inc) land max_int;
      rolling_at := t_pos
    end
    else begin
      rolling := hash_block target t_pos;
      rolling_at := t_pos
    end
  in
  let t = ref 0 in
  while !t + block <= nt do
    roll_to !t;
    let h = !rolling in
    let candidates = try Hashtbl.find table h with Not_found -> [] in
    let best = ref None in
    List.iter
      (fun bi ->
        if String.sub base bi block = String.sub target !t block then begin
          let len = extend_forward bi !t in
          match !best with
          | Some (_, l) when l >= len -> ()
          | _ -> best := Some (bi, len)
        end)
      candidates;
    match !best with
    | Some (bi, len) when len >= block ->
        flush_insert !t;
        Binio.write_u8 buf 0x01;
        Binio.write_varint buf bi;
        Binio.write_varint buf len;
        t := !t + len;
        insert_start := !t
    | _ -> incr t
  done;
  flush_insert nt;
  Buffer.contents buf

let apply ~base delta =
  let pos = ref 0 in
  let nb = Binio.read_varint delta pos in
  let nt = Binio.read_varint delta pos in
  if nb <> String.length base then
    raise (Binio.Corrupt "Delta.apply: base length mismatch");
  let out = Buffer.create nt in
  while Buffer.length out < nt do
    match Binio.read_u8 delta pos with
    | 0x00 ->
        let len = Binio.read_varint delta pos in
        if !pos + len > String.length delta then
          raise (Binio.Corrupt "Delta.apply: truncated insert");
        Buffer.add_substring out delta !pos len;
        pos := !pos + len
    | 0x01 ->
        let off = Binio.read_varint delta pos in
        let len = Binio.read_varint delta pos in
        if off + len > nb then
          raise (Binio.Corrupt "Delta.apply: copy out of range");
        Buffer.add_substring out base off len
    | tok ->
        raise (Binio.Corrupt (Printf.sprintf "Delta.apply: bad op %d" tok))
  done;
  if Buffer.length out <> nt then
    raise (Binio.Corrupt "Delta.apply: target length mismatch");
  Buffer.contents out

let size d = String.length d
