type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let a = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 a 0 t.len;
    t.data <- a
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of [0,%d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))
