exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let check_remaining s pos n =
  if !pos + n > String.length s then
    fail "truncated input: need %d bytes at %d (len %d)" n !pos
      (String.length s)

let write_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let read_u8 s pos =
  check_remaining s pos 1;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let write_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let read_u32 s pos =
  check_remaining s pos 4;
  let v = Int32.to_int (String.get_int32_le s !pos) in
  pos := !pos + 4;
  (* keep unsigned semantics for values up to 2^32-1 *)
  v land 0xFFFFFFFF

let write_i64 buf v = Buffer.add_int64_le buf v

let read_i64 s pos =
  check_remaining s pos 8;
  let v = String.get_int64_le s !pos in
  pos := !pos + 8;
  v

let write_varint buf v =
  if v < 0 then invalid_arg "Binio.write_varint: negative";
  let rec loop v =
    if v < 0x80 then write_u8 buf v
    else begin
      write_u8 buf (0x80 lor (v land 0x7f));
      loop (v lsr 7)
    end
  in
  loop v

let read_varint s pos =
  let rec loop shift acc =
    if shift > 62 then fail "varint too long at %d" !pos;
    let b = read_u8 s pos in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string s pos =
  let n = read_varint s pos in
  check_remaining s pos n;
  let r = String.sub s !pos n in
  pos := !pos + n;
  r

let write_list write_elt buf l =
  write_varint buf (List.length l);
  List.iter (write_elt buf) l

let read_list read_elt s pos =
  let n = read_varint s pos in
  List.init n (fun _ -> read_elt s pos)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let append_file path contents =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
