(** Binary encoding/decoding helpers.

    Writers append to a [Buffer.t]; readers consume from a [string] with
    an explicit cursor ([int ref]), so composite codecs thread the
    position without intermediate slicing.  Integers use LEB128 varints
    where noted; fixed-width values are little-endian. *)

val write_u8 : Buffer.t -> int -> unit
val read_u8 : string -> int ref -> int

val write_u32 : Buffer.t -> int -> unit
val read_u32 : string -> int ref -> int

val write_i64 : Buffer.t -> int64 -> unit
val read_i64 : string -> int ref -> int64

val write_varint : Buffer.t -> int -> unit
(** LEB128; argument must be non-negative. *)

val read_varint : string -> int ref -> int

val write_string : Buffer.t -> string -> unit
(** Varint length prefix, then bytes. *)

val read_string : string -> int ref -> string

val write_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val read_list : (string -> int ref -> 'a) -> string -> int ref -> 'a list

(** {1 Whole-file helpers} *)

val read_file : string -> string
(** Entire contents of a file. *)

val write_file : string -> string -> unit
(** Atomic-ish replace: writes to [path ^ ".tmp"], then renames. *)

val append_file : string -> string -> unit

exception Corrupt of string
(** Raised by readers on malformed input. *)
