(* Token stream: 0x00 = literal run (varint len, bytes);
   0x01 = match (varint distance >= 1, varint length >= min_match).
   A hash table over 4-byte prefixes supplies match candidates; chains
   are bounded so worst-case inputs stay linear-ish. *)

let min_match = 4
let max_chain = 16
let window = 1 lsl 16

(* stop probing the chain once a match this long is found, and never
   extend matches further than this: repetitive inputs otherwise make
   the search quadratic *)
let good_enough = 512

let hash4 s i =
  let b k = Char.code (String.unsafe_get s (i + k)) in
  (b 0 + (b 1 lsl 6) + (b 2 lsl 12) + (b 3 lsl 18)) * 2654435761 land 0xFFFFF

let match_len s i j limit =
  let rec loop k =
    if k < limit && s.[i + k] = s.[j + k] then loop (k + 1) else k
  in
  loop 0

let compress s =
  let n = String.length s in
  let buf = Buffer.create (n / 2 + 16) in
  Binio.write_varint buf n;
  let heads = Array.make 0x100000 (-1) in
  let prev = Array.make (max n 1) (-1) in
  let lit_start = ref 0 in
  let flush_literals upto =
    if upto > !lit_start then begin
      Binio.write_u8 buf 0x00;
      Binio.write_varint buf (upto - !lit_start);
      Buffer.add_substring buf s !lit_start (upto - !lit_start)
    end
  in
  let insert i =
    if i + min_match <= n then begin
      let h = hash4 s i in
      prev.(i) <- heads.(h);
      heads.(h) <- i
    end
  in
  let i = ref 0 in
  while !i + min_match <= n do
    let h = hash4 s !i in
    let best_len = ref 0 and best_pos = ref (-1) in
    let cand = ref heads.(h) and steps = ref 0 in
    while !cand >= 0 && !steps < max_chain && !best_len < good_enough do
      if !i - !cand < window then begin
        let len = match_len s !cand !i (min good_enough (n - !i)) in
        if len > !best_len then begin
          best_len := len;
          best_pos := !cand
        end
      end;
      cand := prev.(!cand);
      incr steps
    done;
    (* a good match may extend beyond the probe cap *)
    if !best_len >= good_enough then
      best_len := match_len s !best_pos !i (n - !i);
    if !best_len >= min_match then begin
      flush_literals !i;
      Binio.write_u8 buf 0x01;
      Binio.write_varint buf (!i - !best_pos);
      Binio.write_varint buf !best_len;
      (* index a prefix of the covered positions so later matches can
         refer here; indexing every position of a very long match costs
         more than the marginally better matches it enables *)
      for k = 0 to min (!best_len - 1) 31 do
        insert (!i + k)
      done;
      i := !i + !best_len;
      lit_start := !i
    end
    else begin
      insert !i;
      incr i
    end
  done;
  flush_literals n;
  Buffer.contents buf

let decompress c =
  let pos = ref 0 in
  let n = Binio.read_varint c pos in
  let out = Buffer.create n in
  while Buffer.length out < n do
    match Binio.read_u8 c pos with
    | 0x00 ->
        let len = Binio.read_varint c pos in
        if !pos + len > String.length c then
          raise (Binio.Corrupt "Lz77: truncated literal run");
        Buffer.add_substring out c !pos len;
        pos := !pos + len
    | 0x01 ->
        let dist = Binio.read_varint c pos in
        let len = Binio.read_varint c pos in
        let start = Buffer.length out - dist in
        if dist = 0 || start < 0 then
          raise (Binio.Corrupt "Lz77: bad match distance");
        (* overlapping copies are legal and must be byte-sequential *)
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
    | tok -> raise (Binio.Corrupt (Printf.sprintf "Lz77: bad token %d" tok))
  done;
  if Buffer.length out <> n then
    raise (Binio.Corrupt "Lz77: length mismatch");
  Buffer.contents out
