(** Growable arrays (amortized O(1) push). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the element's index. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of range. *)

val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
