(** Filesystem helpers shared by engines, benchmarks and tests. *)

val mkdir_p : string -> unit
(** Create a directory and any missing ancestors. *)

val rm_rf : string -> unit
(** Recursively delete a file or directory tree; silent if absent. *)

val dir_bytes : string -> int
(** Total size of all regular files under a directory. *)

val fresh_dir : ?base:string -> string -> string
(** [fresh_dir prefix] creates and returns a new empty directory
    [base/prefix.<n>] ([base] defaults to [Filename.get_temp_dir_name ()]). *)
