type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = create (next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep the intermediate non-negative: a 63-bit value can still wrap
     OCaml's tagged int sign bit, so mask after conversion *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
