(** Binary deltas between byte strings.

    git packfiles store most objects as a delta against another object:
    a sequence of [Copy] instructions (ranges of the base) interleaved
    with [Insert] instructions (fresh bytes).  The git-like baseline's
    repack step ({!Decibel_gitlike.Packfile}) uses this module; the
    paper's §5.7 attributes much of git's repack cost to the exhaustive
    search for good delta encodings, which {!make} reproduces with a
    block-hash match finder. *)

val make : base:string -> target:string -> string
(** A delta such that [apply ~base (make ~base ~target) = target]. *)

val apply : base:string -> string -> string
(** Reconstructs the target.  Raises [Binio.Corrupt] if the delta is
    malformed or does not match the base's length. *)

val size : string -> int
(** Length in bytes of an encoded delta (for pack accounting). *)
