open Decibel_util

type oid = string

type location =
  | Loose
  | Packed of { pack : int; offset : int }

type t = {
  dir : string;
  objects_dir : string;
  packs_dir : string;
  index : (oid, location) Hashtbl.t;
  mutable pack_cache : string array; (* pack id -> file contents *)
  mutable npacks : int;
}

let max_chain_depth = 50
let window = 10

let create ~dir =
  let objects_dir = Filename.concat dir "objects" in
  let packs_dir = Filename.concat dir "packs" in
  Fsutil.mkdir_p objects_dir;
  Fsutil.mkdir_p packs_dir;
  {
    dir;
    objects_dir;
    packs_dir;
    index = Hashtbl.create 1024;
    pack_cache = Array.make 4 "";
    npacks = 0;
  }

let hash data = Digest.to_hex (Digest.string data)

let loose_path t oid = Filename.concat t.objects_dir oid

let mem t oid = Hashtbl.mem t.index oid

let put t data =
  let oid = hash data in
  if not (mem t oid) then begin
    Binio.write_file (loose_path t oid) (Lz77.compress data);
    Hashtbl.replace t.index oid Loose
  end;
  oid

(* Pack entry framing: [oid hex, 32 bytes][u8 kind][payload string with
   varint length prefix]; kind 0 = full object (LZ77), kind 1 = delta
   (base oid hex 32 bytes + LZ77'd delta). *)
let rec get t oid =
  match Hashtbl.find_opt t.index oid with
  | None -> raise Not_found
  | Some Loose -> Lz77.decompress (Binio.read_file (loose_path t oid))
  | Some (Packed { pack; offset }) ->
      let data = t.pack_cache.(pack) in
      let pos = ref offset in
      let stored_oid = String.sub data !pos 32 in
      pos := !pos + 32;
      if stored_oid <> oid then
        raise (Binio.Corrupt "Object_store: pack entry id mismatch");
      let kind = Binio.read_u8 data pos in
      let payload = Binio.read_string data pos in
      (match kind with
      | 0 -> Lz77.decompress payload
      | 1 ->
          let ppos = ref 0 in
          let base_oid = String.sub payload 0 32 in
          ppos := 32;
          let delta =
            Lz77.decompress (String.sub payload 32 (String.length payload - 32))
          in
          ignore ppos;
          Delta.apply ~base:(get t base_oid) delta
      | k ->
          raise (Binio.Corrupt (Printf.sprintf "Object_store: pack kind %d" k)))

let object_count t = Hashtbl.length t.index

let loose_count t =
  Hashtbl.fold
    (fun _ loc acc -> match loc with Loose -> acc + 1 | Packed _ -> acc)
    t.index 0

(* Repack: exhaustive window search for the best delta base, mirroring
   git's behaviour (and its cost).  Objects are ordered by decreasing
   size so larger objects become bases; each object is delta'd against
   up to [window] predecessors and keeps the smallest encoding that
   beats full compression, within the chain-depth cap. *)
let repack t =
  let loose =
    Hashtbl.fold
      (fun oid loc acc -> match loc with Loose -> oid :: acc | Packed _ -> acc)
      t.index []
  in
  if loose <> [] then begin
    let objs =
      List.map (fun oid -> (oid, get t oid)) loose
      |> List.sort (fun (_, a) (_, b) ->
             compare (String.length b) (String.length a))
      |> Array.of_list
    in
    let n = Array.length objs in
    let depth = Hashtbl.create n in
    let buf = Buffer.create (1 lsl 20) in
    let offsets = Array.make n 0 in
    for i = 0 to n - 1 do
      let oid, data = objs.(i) in
      let full = Lz77.compress data in
      (* exhaustive candidate search over the window; candidates are
         ranked by raw delta size and only the winner is compressed *)
      let best = ref None in
      for j = max 0 (i - window) to i - 1 do
        let base_oid, base = objs.(j) in
        let base_depth =
          Option.value ~default:0 (Hashtbl.find_opt depth base_oid)
        in
        if base_depth + 1 <= max_chain_depth then begin
          let raw = Delta.make ~base ~target:data in
          let candidate_size = 32 + Delta.size raw in
          let better =
            match !best with
            | Some (_, _, s) -> candidate_size < s
            | None -> candidate_size < String.length full * 9 / 10
          in
          if better then best := Some (base_oid, raw, candidate_size)
        end
      done;
      let best =
        Option.map
          (fun (base_oid, raw, _) ->
            let d = Lz77.compress raw in
            (base_oid, d, 32 + String.length d))
          !best
      in
      let best = ref best in
      offsets.(i) <- Buffer.length buf;
      Buffer.add_string buf oid;
      (match !best with
      | Some (base_oid, d, _) ->
          Hashtbl.replace depth oid
            (1 + Option.value ~default:0 (Hashtbl.find_opt depth base_oid));
          Binio.write_u8 buf 1;
          Binio.write_string buf (base_oid ^ d)
      | None ->
          Hashtbl.replace depth oid 0;
          Binio.write_u8 buf 0;
          Binio.write_string buf full)
    done;
    let pack_id = t.npacks in
    let pack_path =
      Filename.concat t.packs_dir (Printf.sprintf "pack_%d.pack" pack_id)
    in
    let contents = Buffer.contents buf in
    Binio.write_file pack_path contents;
    if t.npacks = Array.length t.pack_cache then begin
      let a = Array.make (2 * t.npacks) "" in
      Array.blit t.pack_cache 0 a 0 t.npacks;
      t.pack_cache <- a
    end;
    t.pack_cache.(pack_id) <- contents;
    t.npacks <- t.npacks + 1;
    (* move index entries over and drop the loose files *)
    Array.iteri
      (fun i (oid, _) ->
        Hashtbl.replace t.index oid (Packed { pack = pack_id; offset = offsets.(i) });
        let p = loose_path t oid in
        if Sys.file_exists p then Sys.remove p)
      objs
  end

let repo_bytes t = Fsutil.dir_bytes t.dir
