(** Content-addressed object store with delta-encoded packfiles.

    A from-scratch stand-in for git's storage layer, reproducing the
    cost structure the paper's §5.7 comparison exercises rather than
    git's exact wire formats:

    - every stored object is hashed over its full contents (MD5 here,
      SHA-1 in git — same per-byte cost class) and written as a
      compressed loose file, so commit cost grows with data size;
    - [repack] exhaustively searches a window of similar objects for
      the best binary delta, producing one packfile — slow, as the
      paper observes ("git exhaustively compares objects to find the
      best delta encoding");
    - reading a packed object replays its delta chain, so checkout
      cost grows with chain depth.

    Object ids are hex strings.  Not thread-safe. *)

type t

type oid = string

val create : dir:string -> t
(** Initialize an empty store under [dir] (created if needed). *)

val put : t -> string -> oid
(** Store a blob; returns its content address.  Idempotent — an object
    already present (loose or packed) is not rewritten. *)

val get : t -> oid -> string
(** Raises [Not_found] for unknown ids. *)

val mem : t -> oid -> bool

val object_count : t -> int

val repack : t -> unit
(** Compact all loose objects into a packfile, delta-encoding against
    a search window of similar objects (git's [git repack -a -d]). *)

val repo_bytes : t -> int
(** Bytes on disk: loose objects plus packfiles plus indexes. *)

val loose_count : t -> int

val max_chain_depth : int
(** Cap on delta-chain length in a pack. *)
