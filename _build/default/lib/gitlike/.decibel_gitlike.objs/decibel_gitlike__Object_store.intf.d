lib/gitlike/object_store.mli:
