lib/gitlike/git_engine.ml: Array Binio Buffer Decibel_graph Decibel_storage Decibel_util Fsutil Hashtbl Int64 List Map Object_store Printf Schema String Tuple Value
