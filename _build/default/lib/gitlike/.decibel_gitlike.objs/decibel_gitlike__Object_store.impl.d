lib/gitlike/object_store.ml: Array Binio Buffer Decibel_util Delta Digest Filename Fsutil Hashtbl List Lz77 Option Printf String Sys
