lib/bench/strategy.ml: Array Config Decibel Decibel_util Hashtbl List Printf Prng String Types Vec Workload
