lib/bench/workload.ml: Decibel Format Hashtbl List Option Printf Types
