lib/bench/driver.ml: Array Config Database Decibel Decibel_graph Decibel_storage Decibel_util Fsutil Gc Hashtbl Int64 List Option Printf Prng Query Schema Tuple Types Unix Value Workload
