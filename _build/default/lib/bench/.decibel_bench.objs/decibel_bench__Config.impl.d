lib/bench/config.ml: Decibel_storage Format String Sys
