(** Plain-text tables and timing statistics for benchmark output. *)

let mean samples =
  match samples with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let std samples =
  match samples with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean samples in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples
        /. float_of_int (List.length samples - 1)
      in
      sqrt var

let ms x = x *. 1000.0

let fmt_ms samples =
  let m = ms (mean samples) in
  if m < 0.1 then Printf.sprintf "%.0f us" (m *. 1000.)
  else Printf.sprintf "%.1f ms" m

let fmt_ms_pm samples =
  let m = ms (mean samples) and s = ms (std samples) in
  if m < 0.1 then
    Printf.sprintf "%.0f +- %.0f us" (m *. 1000.) (s *. 1000.)
  else Printf.sprintf "%.1f +- %.1f ms" m s

let fmt_bytes b =
  if b >= 1 lsl 30 then Printf.sprintf "%.2f GB" (float_of_int b /. 1073741824.)
  else if b >= 1 lsl 20 then
    Printf.sprintf "%.2f MB" (float_of_int b /. 1048576.)
  else if b >= 1 lsl 10 then Printf.sprintf "%.1f KB" (float_of_int b /. 1024.)
  else Printf.sprintf "%d B" b

let fmt_mbps ~bytes ~seconds =
  if seconds <= 0.0 then "-"
  else Printf.sprintf "%.1f MB/s" (float_of_int bytes /. 1048576. /. seconds)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

(* aligned table printer *)
let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          cell ^ String.make (w - String.length cell) ' ')
        row
    in
    Printf.printf "  %s\n" (String.concat "  " cells)
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout
