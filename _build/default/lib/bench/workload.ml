(** Workload representation: a fully concrete operation stream.

    Strategies (paper §4.1) emit every operation with its target branch
    and primary key decided up front, so each storage scheme replays
    exactly the same operations in the same order — the paper's
    methodology for comparable load and query measurements (§5.6). *)

open Decibel

type op =
  | Insert of { branch : string; key : int }
  | Update of { branch : string; key : int }
  | Commit of string
  | Create_branch of {
      name : string;
      from_branch : string;
      commits_back : int;
          (** 0 = the source branch's latest commit; [n] = n commits
              earlier (science branches start from historical mainline
              commits). *)
    }
  | Merge of { into : string; from : string; policy : Types.merge_policy }
  | Retire of string

type t = {
  ops : op list;
  roles : (string * string list) list;
      (** Query-target roles, e.g. ("tail", [...]), ("mainline", [...]),
          ("dev", [...]); meaning is strategy-specific (§4.1). *)
}

let role t name =
  match List.assoc_opt name t.roles with Some (b :: _) -> Some b | _ -> None

let role_exn t name =
  match role t name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "workload has no %S role" name)

let roles t name = Option.value ~default:[] (List.assoc_opt name t.roles)

let op_counts t =
  let ins = ref 0 and upd = ref 0 and com = ref 0 in
  let br = ref 0 and mrg = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Insert _ -> incr ins
      | Update _ -> incr upd
      | Commit _ -> incr com
      | Create_branch _ -> incr br
      | Merge _ -> incr mrg
      | Retire _ -> ())
    t.ops;
  (!ins, !upd, !com, !br, !mrg)

let pp_op fmt = function
  | Insert { branch; key } -> Format.fprintf fmt "insert %s #%d" branch key
  | Update { branch; key } -> Format.fprintf fmt "update %s #%d" branch key
  | Commit b -> Format.fprintf fmt "commit %s" b
  | Create_branch { name; from_branch; commits_back } ->
      Format.fprintf fmt "branch %s from %s~%d" name from_branch commits_back
  | Merge { into; from; _ } -> Format.fprintf fmt "merge %s <- %s" into from
  | Retire b -> Format.fprintf fmt "retire %s" b

(* Clustered loading mode (§4.2): group consecutive data operations by
   branch between structural barriers, so each branch's records land
   contiguously.  Interleaved mode is whatever order the strategy
   emitted. *)
let cluster t =
  let out = ref [] in
  let emit op = out := op :: !out in
  let pending : (string, op list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let flush () =
    List.iter
      (fun b ->
        match Hashtbl.find_opt pending b with
        | Some l ->
            List.iter emit (List.rev !l);
            Hashtbl.remove pending b
        | None -> ())
      (List.rev !order);
    order := []
  in
  List.iter
    (fun op ->
      match op with
      | Insert { branch; _ } | Update { branch; _ } -> (
          match Hashtbl.find_opt pending branch with
          | Some l -> l := op :: !l
          | None ->
              Hashtbl.replace pending branch (ref [ op ]);
              order := branch :: !order)
      | Commit _ | Create_branch _ | Merge _ | Retire _ ->
          flush ();
          emit op)
    t.ops;
  flush ();
  { t with ops = List.rev !out }
