(** Branching strategies (paper §4.1).

    Each strategy produces a {!Workload.t}: a concrete operation stream
    plus role annotations telling the driver which branches the queries
    should target.

    - {!deep}: a single linear chain; each branch is created from the
      end of the previous one, and only the newest branch takes data
      operations.  Stresses long lineage chains.
    - {!flat}: one parent, many siblings; inserts are interleaved
      across all children uniformly at random.  Stresses wide bitmap
      fan-out and interleaved heap files.
    - {!science}: an evolving mainline; working branches start from
      historical mainline commits or from active branch heads, live a
      fixed lifetime, and are never merged.  Inserts favour the
      mainline with a configurable skew.
    - {!curation}: an authoritative mainline plus development branches
      that merge back, with short-lived feature branches off mainline
      or dev branches (the only strategy with merges). *)

open Decibel
open Decibel_util

(* ------------------------------------------------------------------ *)
(* Key bookkeeping.

   Branch key sets mirror the engines' semantics without running an
   engine: keys are only ever added (the benchmark mix has no deletes),
   a child inherits the keys its base commit could see, and a merge
   unions the source's keys into the destination.  Sets are represented
   structurally — parent pointer plus own appended keys — so snapshots
   at commits are just own-counts. *)

type key_set = {
  parent : (key_set * int) option; (* parent set, total count at branch *)
  own : int Vec.t;
  mutable commit_counts : int list; (* own totals at commits, newest first *)
}

let ks_create ?parent () =
  { parent; own = Vec.create ~dummy:0 (); commit_counts = [] }

let ks_total ks =
  (match ks.parent with Some (_, n) -> n | None -> 0) + Vec.length ks.own

(* total as of [commits_back] commits ago *)
let ks_total_at ks commits_back =
  let own = List.nth ks.commit_counts commits_back in
  (match ks.parent with Some (_, n) -> n | None -> 0) + own

let rec ks_get ks bound i =
  let inherited = match ks.parent with Some (_, n) -> n | None -> 0 in
  assert (i < bound);
  if i < inherited then
    match ks.parent with
    | Some (p, n) -> ks_get p n i
    | None -> assert false
  else Vec.get ks.own (i - inherited)

let ks_pick rng ks =
  let n = ks_total ks in
  if n = 0 then None else Some (ks_get ks n (Prng.int rng n))

let ks_mark_commit ks =
  ks.commit_counts <- Vec.length ks.own :: ks.commit_counts

let rec ks_mem ks bound key =
  (* membership within the first [bound] keys *)
  let inherited = match ks.parent with Some (_, n) -> n | None -> 0 in
  let found_own = ref false in
  let upto_own = bound - inherited in
  (try
     for i = 0 to min upto_own (Vec.length ks.own) - 1 do
       if Vec.get ks.own i = key then begin
         found_own := true;
         raise Exit
       end
     done
   with Exit -> ());
  !found_own
  ||
  match ks.parent with
  | Some (p, n) -> ks_mem p n key
  | None -> false

let ks_all ks =
  let rec collect ks bound acc =
    let inherited = match ks.parent with Some (_, n) -> n | None -> 0 in
    let acc = ref acc in
    for i = 0 to min (bound - inherited) (Vec.length ks.own) - 1 do
      acc := Vec.get ks.own i :: !acc
    done;
    match ks.parent with Some (p, n) -> collect p n !acc | None -> !acc
  in
  collect ks (ks_total ks) []

(* ------------------------------------------------------------------ *)
(* Generator state shared by all strategies *)

type branch_state = {
  name : string;
  keys : key_set;
  mutable ops_since_commit : int;
  mutable dirty : bool;
  mutable total_ops : int; (* data ops applied to this branch *)
  mutable alive : bool;
}

type gen = {
  cfg : Config.t;
  rng : Prng.t;
  mutable ops : Workload.op list; (* reversed *)
  mutable next_key : int;
  branches : (string, branch_state) Hashtbl.t;
  mutable branch_order : string list; (* creation order, reversed *)
}

let gen_create cfg =
  let g =
    {
      cfg;
      rng = Prng.create cfg.Config.seed;
      ops = [];
      next_key = 0;
      branches = Hashtbl.create 64;
      branch_order = [];
    }
  in
  let master =
    {
      name = "master";
      keys = ks_create ();
      ops_since_commit = 0;
      dirty = false;
      total_ops = 0;
      alive = true;
    }
  in
  Hashtbl.replace g.branches "master" master;
  g.branch_order <- [ "master" ];
  g

let emit g op = g.ops <- op :: g.ops

let branch_state g name = Hashtbl.find g.branches name

let commit_branch g b =
  if b.dirty then begin
    emit g (Workload.Commit b.name);
    ks_mark_commit b.keys;
    b.dirty <- false;
    b.ops_since_commit <- 0
  end

(* ensure at least one commit exists so branch/merge targets resolve *)
let ensure_committed g b = if b.dirty || b.keys.commit_counts = [] then begin
    emit g (Workload.Commit b.name);
    ks_mark_commit b.keys;
    b.dirty <- false;
    b.ops_since_commit <- 0
  end

let data_op g b =
  let cfg = g.cfg in
  let do_update =
    Prng.chance g.rng cfg.Config.update_fraction && ks_total b.keys > 0
  in
  (if do_update then
     match ks_pick g.rng b.keys with
     | Some key -> emit g (Workload.Update { branch = b.name; key })
     | None -> ()
   else begin
     let key = g.next_key in
     g.next_key <- key + 1;
     let _ = Vec.push b.keys.own key in
     emit g (Workload.Insert { branch = b.name; key })
   end);
  b.dirty <- true;
  b.total_ops <- b.total_ops + 1;
  b.ops_since_commit <- b.ops_since_commit + 1;
  if b.ops_since_commit >= cfg.Config.commit_every then commit_branch g b

let new_branch g ~name ~from ~commits_back =
  let parent = branch_state g from in
  if commits_back = 0 then ensure_committed g parent;
  let bound =
    if commits_back = 0 then ks_total parent.keys
    else ks_total_at parent.keys commits_back
  in
  let b =
    {
      name;
      keys = ks_create ~parent:(parent.keys, bound) ();
      ops_since_commit = 0;
      dirty = false;
      total_ops = 0;
      alive = true;
    }
  in
  Hashtbl.replace g.branches name b;
  g.branch_order <- name :: g.branch_order;
  emit g (Workload.Create_branch { name; from_branch = from; commits_back });
  b

let merge_branches g ~into ~from ~policy =
  let bi = branch_state g into and bf = branch_state g from in
  ensure_committed g bi;
  ensure_committed g bf;
  (* union the source's keys into the destination (no deletes exist) *)
  let have = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace have k ()) (ks_all bi.keys);
  List.iter
    (fun k ->
      if not (Hashtbl.mem have k) then begin
        let _ = Vec.push bi.keys.own k in
        ()
      end)
    (ks_all bf.keys);
  emit g (Workload.Merge { into; from; policy });
  (* the merge creates a commit in the engines *)
  ks_mark_commit bi.keys;
  bi.dirty <- false;
  bi.ops_since_commit <- 0

let retire g name =
  let b = branch_state g name in
  commit_branch g b;
  b.alive <- false;
  emit g (Workload.Retire name)

let finish g roles =
  (* final commit on every live branch so heads are committed *)
  List.iter
    (fun name ->
      let b = branch_state g name in
      if b.alive then commit_branch g b)
    (List.rev g.branch_order);
  { Workload.ops = List.rev g.ops; roles }

(* ------------------------------------------------------------------ *)
(* Deep: a linear chain of branches (paper: "inserts and updates always
   occur in the branch that was created last"). *)

let deep cfg =
  let g = gen_create cfg in
  let current = ref (branch_state g "master") in
  for i = 1 to cfg.Config.branches do
    if i > 1 then begin
      let name = Printf.sprintf "deep%d" i in
      current := new_branch g ~name ~from:!current.name ~commits_back:0
    end;
    for _ = 1 to cfg.Config.records_per_branch do
      data_op g !current
    done
  done;
  let names = List.rev g.branch_order in
  finish g
    [
      ("tail", [ !current.name ]);
      ("tail-parent",
       [ (match List.rev names with _ :: p :: _ -> p | _ -> "master") ]);
      ("head", [ "master" ]);
    ]

(* ------------------------------------------------------------------ *)
(* Flat: many children of one parent, modified concurrently (inserts
   interleaved uniformly at random across children). *)

let flat cfg =
  let g = gen_create cfg in
  let master = branch_state g "master" in
  for _ = 1 to cfg.Config.records_per_branch do
    data_op g master
  done;
  ensure_committed g master;
  let children =
    List.init
      (max 1 (cfg.Config.branches - 1))
      (fun i ->
        new_branch g
          ~name:(Printf.sprintf "flat%d" (i + 1))
          ~from:"master" ~commits_back:0)
  in
  let arr = Array.of_list children in
  let total = Array.length arr * cfg.Config.records_per_branch in
  for _ = 1 to total do
    data_op g arr.(Prng.int g.rng (Array.length arr))
  done;
  finish g
    [
      ("parent", [ "master" ]);
      ("child", [ arr.(Prng.int g.rng (Array.length arr)).name ]);
      ("children", List.map (fun b -> b.name) children);
    ]

(* ------------------------------------------------------------------ *)
(* Science: evolving mainline, no merges; branches start either from a
   historical mainline commit or from an active branch head, live a
   fixed lifetime, then retire.  Inserts favour the mainline. *)

let science cfg =
  let g = gen_create cfg in
  let mainline = branch_state g "master" in
  let active : branch_state list ref = ref [] in
  let created = ref 0 in
  let total_ops = cfg.Config.branches * cfg.Config.records_per_branch in
  let branch_interval =
    max 1 (total_ops / max 1 (cfg.Config.branches - 1))
  in
  for op = 1 to total_ops do
    (* spawn working branches on a fixed cadence *)
    if op mod branch_interval = 0 && !created < cfg.Config.branches - 1 then begin
      incr created;
      let name = Printf.sprintf "sci%d" !created in
      let from_mainline = Prng.chance g.rng 0.5 || !active = [] in
      let b =
        if from_mainline then begin
          ensure_committed g mainline;
          let ncommits = List.length mainline.keys.commit_counts in
          let commits_back = Prng.int g.rng (min 5 ncommits) in
          new_branch g ~name ~from:"master" ~commits_back
        end
        else begin
          let src = Prng.pick g.rng !active in
          new_branch g ~name ~from:src.name ~commits_back:0
        end
      in
      active := b :: !active
    end;
    (* retire expired branches *)
    let expired, live =
      List.partition
        (fun b -> b.total_ops >= cfg.Config.science_lifetime)
        !active
    in
    List.iter (fun b -> retire g b.name) expired;
    active := live;
    (* route the data op: mainline gets extra weight *)
    let targets = mainline :: !active in
    let weights =
      List.map
        (fun b -> if b == mainline then cfg.Config.science_mainline_skew else 1.0)
        targets
    in
    let total_w = List.fold_left ( +. ) 0.0 weights in
    let x = Prng.float g.rng total_w in
    let rec pick ts ws acc =
      match ts, ws with
      | [ t ], _ -> t
      | t :: _, w :: _ when x < acc +. w -> t
      | t :: ts', w :: ws' ->
          ignore t;
          pick ts' ws' (acc +. w)
      | _ -> mainline
    in
    data_op g (pick targets weights 0.0)
  done;
  let oldest =
    match List.rev !active with b :: _ -> b.name | [] -> "master"
  in
  let youngest = match !active with b :: _ -> b.name | [] -> "master" in
  finish g
    [
      ("mainline", [ "master" ]);
      ("oldest-active", [ oldest ]);
      ("youngest-active", [ youngest ]);
      ("active", "master" :: List.rev_map (fun b -> b.name) !active);
    ]

(* ------------------------------------------------------------------ *)
(* Curation: mainline plus development branches merged back into it,
   with short-lived feature branches off mainline or a dev branch,
   merged back into their parent (§4.1). *)

let curation cfg =
  let g = gen_create cfg in
  let mainline = branch_state g "master" in
  (* (branch, parent name, lifetime) *)
  let active : (branch_state * string * int) list ref = ref [] in
  let created = ref 0 in
  let total_ops = cfg.Config.branches * cfg.Config.records_per_branch in
  let branch_interval =
    max 1 (total_ops / max 1 (cfg.Config.branches - 1))
  in
  let devs_at_end = ref [] and features_at_end = ref [] in
  for op = 1 to total_ops do
    if op mod branch_interval = 0 && !created < cfg.Config.branches - 1 then begin
      incr created;
      let is_feature = Prng.chance g.rng cfg.Config.curation_feature_prob in
      let parent_name =
        if is_feature && !active <> [] && Prng.chance g.rng 0.5 then
          let b, _, _ = Prng.pick g.rng !active in
          b.name
        else "master"
      in
      let name =
        Printf.sprintf "%s%d" (if is_feature then "feat" else "dev") !created
      in
      let lifetime =
        if is_feature then cfg.Config.curation_feature_lifetime
        else cfg.Config.curation_dev_lifetime
      in
      ensure_committed g (branch_state g parent_name);
      let b = new_branch g ~name ~from:parent_name ~commits_back:0 in
      active := (b, parent_name, lifetime) :: !active
    end;
    (* merge back expired branches, children before their parents *)
    let rec merge_expired () =
      let expired, live =
        List.partition (fun (b, _, life) -> b.total_ops >= life) !active
      in
      (* do not merge a parent while it still has active children *)
      let has_active_child name =
        List.exists (fun (_, p, _) -> p = name) live
      in
      let ready, postponed =
        List.partition (fun (b, _, _) -> not (has_active_child b.name)) expired
      in
      active := live @ postponed;
      if ready <> [] then begin
        List.iter
          (fun (b, parent, _) ->
            merge_branches g ~into:parent ~from:b.name
              ~policy:Types.Three_way;
            retire g b.name)
          ready;
        merge_expired ()
      end
    in
    merge_expired ();
    let targets = mainline :: List.map (fun (b, _, _) -> b) !active in
    data_op g (List.nth targets (Prng.int g.rng (List.length targets)))
  done;
  devs_at_end :=
    List.filter_map
      (fun (b, _, _) ->
        if String.length b.name >= 3 && String.sub b.name 0 3 = "dev" then
          Some b.name
        else None)
      !active;
  features_at_end :=
    List.filter_map
      (fun (b, _, _) ->
        if String.length b.name >= 4 && String.sub b.name 0 4 = "feat" then
          Some b.name
        else None)
      !active;
  finish g
    [
      ("mainline", [ "master" ]);
      ("dev", if !devs_at_end = [] then [ "master" ] else !devs_at_end);
      ( "feature",
        if !features_at_end = [] then [ "master" ] else !features_at_end );
      ( "active",
        "master" :: List.rev_map (fun (b, _, _) -> b.name) !active );
    ]

type kind = Deep | Flat | Science | Curation

let kind_name = function
  | Deep -> "deep"
  | Flat -> "flat"
  | Science -> "sci"
  | Curation -> "cur"

let generate kind cfg =
  match kind with
  | Deep -> deep cfg
  | Flat -> flat cfg
  | Science -> science cfg
  | Curation -> curation cfg

let all = [ Deep; Flat; Science; Curation ]
