(** Benchmark parameters (paper §4.2).

    The paper loads 100 GB datasets of 1 KB records with 250 integer
    columns, committing every 10,000 operations per branch, with a
    fixed 80/20 insert/update mix.  This reproduction keeps the mix,
    commit cadence structure, and branching strategies, and scales the
    data volume with [DECIBEL_BENCH_SCALE] (an integer multiplier,
    default 1 ≈ tens of megabytes across the whole suite) so a full run
    finishes in minutes on a laptop.  Relative results — which scheme
    wins and by how much — are preserved; see DESIGN.md §2. *)

type t = {
  branches : int;  (** Branch count for the run. *)
  records_per_branch : int;  (** Insert operations per branch. *)
  columns : int;  (** Integer columns per record (pk included). *)
  update_fraction : float;  (** Fraction of data ops that are updates. *)
  commit_every : int;  (** Operations per branch between commits. *)
  seed : int64;
  science_lifetime : int;  (** Ops a science branch stays active. *)
  science_mainline_skew : float;
      (** Weight of the mainline when picking the target branch (the
          paper evaluates a 2-to-1 skew). *)
  curation_dev_lifetime : int;  (** Ops before a dev branch merges back. *)
  curation_feature_lifetime : int;
  curation_feature_prob : float;
      (** Probability that a new curation branch is a short-lived
          feature branch rather than a development branch. *)
}

let scale =
  match Sys.getenv_opt "DECIBEL_BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let default =
  {
    branches = 20;
    records_per_branch = 600 * scale;
    columns = 16;
    update_fraction = 0.2;
    commit_every = 200 * scale;
    seed = 0xDEC1BE1L;
    science_lifetime = 1200 * scale;
    science_mainline_skew = 2.0;
    curation_dev_lifetime = 600 * scale;
    curation_feature_lifetime = 200 * scale;
    curation_feature_prob = 0.4;
  }

let with_branches branches t =
  (* keep the total dataset size fixed while varying the branch count,
     as the paper's scaling experiment does (§5.1) *)
  let total = t.branches * t.records_per_branch in
  { t with branches; records_per_branch = max 1 (total / branches) }

let schema t = Decibel_storage.Schema.ints ~name:"r" ~width:t.columns

let record_bytes t = t.columns * 8

let pp fmt t =
  Format.fprintf fmt
    "branches=%d records/branch=%d columns=%d (%dB records) updates=%.0f%% \
     commit_every=%d seed=%Ld"
    t.branches t.records_per_branch t.columns (record_bytes t)
    (100. *. t.update_fraction)
    t.commit_every t.seed
