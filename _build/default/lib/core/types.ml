(** Shared versioning types.

    Vocabulary used across the storage engines: branch and version
    identifiers come from {!Decibel_graph.Version_graph}; merges produce
    conflicts at field granularity (paper §2.2.3). *)

open Decibel_storage

type branch_id = Decibel_graph.Version_graph.branch_id
type version_id = Decibel_graph.Version_graph.version_id

(** How a merge resolves records modified in both branches since their
    lowest common ancestor. *)
type merge_policy =
  | Ours
      (** Two-way precedence merge: the destination branch wins every
          conflicting record outright (paper §3.3 “simple precedence
          based model”). *)
  | Theirs  (** Two-way precedence merge, source branch wins. *)
  | Three_way
      (** Field-level merge against the LCA copy: non-overlapping field
          updates auto-merge; overlapping field updates are conflicts,
          resolved by giving the destination branch precedence and
          reported in the result (paper §2.2.3 default). *)

(** One conflicting record, as reported to the caller. [None] states
    mean the record was deleted on that side. *)
type conflict = {
  key : Value.t;
  base : Tuple.t option;  (** State at the LCA. *)
  ours : Tuple.t option;  (** State in the destination branch. *)
  theirs : Tuple.t option;  (** State in the source branch. *)
  fields : int list;
      (** Conflicting field indices (empty for whole-record conflicts
          such as delete-vs-modify). *)
  resolved : Tuple.t option;  (** State the merge installed. *)
}

type merge_result = {
  merge_version : version_id;
  conflicts : conflict list;
  keys_ours : int;  (** Keys changed only in the destination branch. *)
  keys_theirs : int;  (** Keys changed only in the source branch. *)
  keys_both : int;  (** Keys changed in both (conflict candidates). *)
}

(** A record paired with the branches whose heads contain it — the
    output shape of a multi-branch scan (paper Q4: records “annotated
    with their active branches”). *)
type annotated = { tuple : Tuple.t; in_branches : branch_id list }

exception Engine_error of string

let errorf fmt = Printf.ksprintf (fun s -> raise (Engine_error s)) fmt
