(** Reference model engine: executable semantics over plain maps, used
    as the oracle for property-based engine-equivalence tests.  Raises
    on [open_existing] (it does not persist). *)

include Engine_intf.S
