(** Branch-level access control.

    The paper envisions that "each branch could have different access
    privileges for different users" (§2.2.2) without implementing it;
    this module supplies a small, persistent grant table and the checks
    {!Guarded} enforces on top of the {!Database} facade.

    Principals are user names; rights are per branch, with an optional
    wildcard branch ["*"].  Admins may additionally create branches,
    merge into branches they can write, and administer grants.  The
    table is serialized alongside the repository. *)

type right = Read | Write | Admin

let right_rank = function Read -> 0 | Write -> 1 | Admin -> 2

let right_name = function
  | Read -> "read"
  | Write -> "write"
  | Admin -> "admin"

type t = {
  grants : (string * string, right) Hashtbl.t; (* (user, branch or "*") *)
  mutable default_right : right option;
      (** Right granted to users with no entry at all ([None] = deny). *)
}

exception Denied of string

let denied fmt = Printf.ksprintf (fun s -> raise (Denied s)) fmt

let create ?default () = { grants = Hashtbl.create 16; default_right = default }

let grant t ~user ~branch right =
  Hashtbl.replace t.grants (user, branch) right

let revoke t ~user ~branch = Hashtbl.remove t.grants (user, branch)

let set_default t right = t.default_right <- right

(* the effective right is the strongest of: exact grant, wildcard
   grant, and the table default *)
let effective t ~user ~branch =
  let candidates =
    List.filter_map Fun.id
      [
        Hashtbl.find_opt t.grants (user, branch);
        Hashtbl.find_opt t.grants (user, "*");
        t.default_right;
      ]
  in
  List.fold_left
    (fun acc r ->
      match acc with
      | Some best when right_rank best >= right_rank r -> acc
      | _ -> Some r)
    None candidates

let allows t ~user ~branch right =
  match effective t ~user ~branch with
  | Some have -> right_rank have >= right_rank right
  | None -> false

let check t ~user ~branch right =
  if not (allows t ~user ~branch right) then
    denied "user %s lacks %s on branch %s" user (right_name right) branch

let grants_for t ~user =
  Hashtbl.fold
    (fun (u, b) r acc -> if u = user then (b, r) :: acc else acc)
    t.grants []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* persistence *)

let serialize t =
  let open Decibel_util in
  let buf = Buffer.create 256 in
  (match t.default_right with
  | None -> Binio.write_u8 buf 0
  | Some r ->
      Binio.write_u8 buf 1;
      Binio.write_u8 buf (right_rank r));
  Binio.write_varint buf (Hashtbl.length t.grants);
  Hashtbl.iter
    (fun (user, branch) r ->
      Binio.write_string buf user;
      Binio.write_string buf branch;
      Binio.write_u8 buf (right_rank r))
    t.grants;
  Buffer.contents buf

let right_of_rank = function
  | 0 -> Read
  | 1 -> Write
  | 2 -> Admin
  | n ->
      raise (Decibel_util.Binio.Corrupt (Printf.sprintf "Acl: bad right %d" n))

let deserialize s =
  let open Decibel_util in
  let pos = ref 0 in
  let default_right =
    match Binio.read_u8 s pos with
    | 0 -> None
    | _ -> Some (right_of_rank (Binio.read_u8 s pos))
  in
  let t = { grants = Hashtbl.create 16; default_right } in
  let n = Binio.read_varint s pos in
  for _ = 1 to n do
    let user = Binio.read_string s pos in
    let branch = Binio.read_string s pos in
    Hashtbl.replace t.grants (user, branch) (right_of_rank (Binio.read_u8 s pos))
  done;
  t

let acl_path dir = Filename.concat dir "acl.bin"

let save t ~dir = Decibel_util.Binio.write_file (acl_path dir) (serialize t)

let load ~dir =
  if Sys.file_exists (acl_path dir) then
    deserialize (Decibel_util.Binio.read_file (acl_path dir))
  else create ()

(* ------------------------------------------------------------------ *)

(** The guarded facade: every operation names the acting user and is
    checked against the grant table before delegating to {!Database}. *)
module Guarded = struct
  type guarded = { db : Database.t; acl : t; dir : string }

  let make ~db ~acl ~dir = { db; acl; dir }

  let branch_name g b = Database.branch_name g.db b

  let check_branch g ~user right b = check g.acl ~user ~branch:(branch_name g b) right

  let insert g ~user b tuple =
    check_branch g ~user Write b;
    Database.insert g.db b tuple

  let update g ~user b tuple =
    check_branch g ~user Write b;
    Database.update g.db b tuple

  let delete g ~user b key =
    check_branch g ~user Write b;
    Database.delete g.db b key

  let scan g ~user b f =
    check_branch g ~user Read b;
    Database.scan g.db b f

  let scan_version g ~user v f =
    (* a version is readable if its owning branch is *)
    let graph = Database.graph g.db in
    let owner =
      (Decibel_graph.Version_graph.version graph v)
        .Decibel_graph.Version_graph.on_branch
    in
    check_branch g ~user Read owner;
    Database.scan_version g.db v f

  let commit g ~user b ~message =
    check_branch g ~user Write b;
    Database.commit g.db b ~message

  let diff g ~user a b ~pos ~neg =
    check_branch g ~user Read a;
    check_branch g ~user Read b;
    Database.diff g.db a b ~pos ~neg

  let create_branch g ~user ~name ~from =
    (* creating requires admin on the source branch's line *)
    let graph = Database.graph g.db in
    let owner =
      (Decibel_graph.Version_graph.version graph from)
        .Decibel_graph.Version_graph.on_branch
    in
    check_branch g ~user Admin owner;
    let b = Database.create_branch g.db ~name ~from in
    (* the creator owns the new branch *)
    grant g.acl ~user ~branch:name Admin;
    save g.acl ~dir:g.dir;
    b

  let merge g ~user ~into ~from ~policy ~message =
    check_branch g ~user Write into;
    check_branch g ~user Read from;
    Database.merge g.db ~into ~from ~policy ~message

  let grant g ~admin ~user ~branch right =
    check g.acl ~user:admin ~branch Admin;
    grant g.acl ~user ~branch right;
    save g.acl ~dir:g.dir

  let revoke g ~admin ~user ~branch =
    check g.acl ~user:admin ~branch Admin;
    revoke g.acl ~user ~branch;
    save g.acl ~dir:g.dir
end
