(** Tuple-first storage (paper §3.2): one shared heap file plus a
    bitmap index relating every tuple to the branches it is live in,
    functorized over the bitmap layout (§3.1). *)

module Make (_ : Decibel_index.Bitmap_intf.S) : Engine_intf.S

module Branch_oriented : Engine_intf.S
(** The evaluation's default layout (§5). *)

module Tuple_oriented : Engine_intf.S
