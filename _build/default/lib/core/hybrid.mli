(** Hybrid storage (paper §3.4): version-first's per-branch segment
    files combined with tuple-first's bitmaps — per-segment local
    bitmaps plus a global branch–segment bitmap.  The paper's best
    performing scheme. *)

include Engine_intf.S
