lib/core/engine_intf.ml: Buffer_pool Decibel_graph Decibel_storage Schema Tuple Types Value
