lib/core/acl.ml: Binio Buffer Database Decibel_graph Decibel_util Filename Fun Hashtbl List Printf Sys
