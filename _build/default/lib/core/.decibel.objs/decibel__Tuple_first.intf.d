lib/core/tuple_first.mli: Decibel_index Engine_intf
