lib/core/vquel.ml: Array Database Decibel_graph Decibel_storage Hashtbl Int64 List Option Printf Query Schema String Tuple Types Value
