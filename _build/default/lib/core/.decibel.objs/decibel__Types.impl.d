lib/core/types.ml: Decibel_graph Decibel_storage Printf Tuple Value
