lib/core/query.ml: Array Database Decibel_storage Hashtbl Schema Tuple Types Value
