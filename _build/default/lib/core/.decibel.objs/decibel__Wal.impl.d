lib/core/wal.ml: Binio Buffer Char Decibel_storage Decibel_util List Printf String Sys Tuple Types Value
