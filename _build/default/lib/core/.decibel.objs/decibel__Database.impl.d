lib/core/database.ml: Buffer_pool Decibel_graph Decibel_storage Decibel_util Engine_intf Filename Hybrid List Lock_manager Model Option Sys Tuple_first Types Version_first Wal
