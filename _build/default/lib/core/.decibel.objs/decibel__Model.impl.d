lib/core/model.ml: Array Decibel_graph Decibel_storage Hashtbl List Map Merge_driver Option Schema Tuple Types Value
