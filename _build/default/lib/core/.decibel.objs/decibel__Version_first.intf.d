lib/core/version_first.mli: Engine_intf
