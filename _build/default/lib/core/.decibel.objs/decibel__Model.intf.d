lib/core/model.mli: Engine_intf
