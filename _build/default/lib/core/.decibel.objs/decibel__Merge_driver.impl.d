lib/core/merge_driver.ml: Array Decibel_storage Hashtbl List Tuple Types Value
