lib/core/database.mli: Buffer_pool Decibel_graph Decibel_storage Lock_manager Schema Tuple Types Value
