lib/core/hybrid.mli: Engine_intf
