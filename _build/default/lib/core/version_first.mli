(** Version-first storage (paper §3.3): per-branch segment files
    chained by branch-point offsets; see the implementation header for
    the scan-order and merge-materialization details. *)

include Engine_intf.S
