(* The paper's "curation pattern" (§1.1): a team maintains a canonical
   product catalog on the mainline; curators stage edits on development
   branches and merge them back after review.  Shows conflict
   detection at field granularity and precedence resolution (§2.2.3).

     dune exec examples/curation_team.exe
*)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema =
  Schema.make ~name:"catalog"
    ~columns:
      [
        { Schema.col_name = "sku"; col_type = Schema.T_int };
        { Schema.col_name = "title"; col_type = Schema.T_str };
        { Schema.col_name = "price_cents"; col_type = Schema.T_int };
        { Schema.col_name = "stock"; col_type = Schema.T_int };
      ]
    ~pk:"sku"

let item sku title price stock =
  [| Value.int sku; Value.Str title; Value.int price; Value.int stock |]

let show db label b =
  Printf.printf "%s:\n" label;
  let rows = ref [] in
  Database.scan db b (fun t -> rows := t :: !rows);
  List.iter
    (fun t -> Printf.printf "  %s\n" (Tuple.to_string t))
    (List.sort compare !rows)

let () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-curation" in
  let db = Database.open_ ~scheme:Database.Hybrid ~dir ~schema () in

  Database.insert db Vg.master (item 100 "usb cable" 799 42);
  Database.insert db Vg.master (item 101 "keyboard" 4999 7);
  Database.insert db Vg.master (item 102 "mouse" 2599 0);
  let base = Database.commit db Vg.master ~message:"catalog v1" in

  (* curator 1: a pricing pass on a development branch *)
  let pricing = Database.create_branch db ~name:"pricing-pass" ~from:base in
  Database.update db pricing (item 100 "usb cable" 699 42);
  Database.update db pricing (item 101 "keyboard" 4499 7);
  let _ = Database.commit db pricing ~message:"spring discounts" in

  (* curator 2: inventory fixes on another branch from the same base *)
  let inventory = Database.create_branch db ~name:"inventory-fix" ~from:base in
  Database.update db inventory (item 101 "keyboard" 4999 12);
  Database.update db inventory (item 102 "mouse" 2599 30);
  Database.insert db inventory (item 103 "monitor" 18999 5);
  let _ = Database.commit db inventory ~message:"restock count" in

  (* meanwhile production fixes a title directly on the mainline *)
  Database.update db Vg.master (item 100 "usb-c cable" 799 42);
  let _ = Database.commit db Vg.master ~message:"title hotfix" in

  (* merge the pricing pass: sku 100 changed on both sides — master
     changed the title, pricing changed the price.  Disjoint fields, so
     the three-way merge combines them silently. *)
  let r1 =
    Database.merge db ~into:Vg.master ~from:pricing ~policy:Types.Three_way
      ~message:"merge pricing-pass"
  in
  Printf.printf "merge pricing-pass: %d conflicts\n"
    (List.length r1.Types.conflicts);
  show db "master after pricing merge" Vg.master;

  (* merge the inventory fixes: sku 101 now conflicts — pricing changed
     its price to 4499, inventory kept 4999 while changing stock.
     Stock auto-merges; price was only changed on one side, so it
     auto-merges too.  No conflict expected. *)
  let r2 =
    Database.merge db ~into:Vg.master ~from:inventory ~policy:Types.Three_way
      ~message:"merge inventory-fix"
  in
  Printf.printf "merge inventory-fix: %d conflicts\n"
    (List.length r2.Types.conflicts);
  show db "master after inventory merge" Vg.master;

  (* a genuine conflict: two curators discount the same sku to
     different prices *)
  let promo = Database.create_branch db ~name:"promo"
      ~from:(Vg.head (Database.graph db) Vg.master) in
  Database.update db promo (item 103 "monitor" 14999 5);
  let _ = Database.commit db promo ~message:"promo price" in
  Database.update db Vg.master (item 103 "monitor" 15999 5);
  let r3 =
    Database.merge db ~into:Vg.master ~from:promo ~policy:Types.Three_way
      ~message:"merge promo"
  in
  List.iter
    (fun (c : Types.conflict) ->
      Printf.printf
        "conflict on sku %s, fields %s: ours=%s theirs=%s -> resolved %s\n"
        (Value.to_string c.Types.key)
        (String.concat "," (List.map string_of_int c.Types.fields))
        (match c.Types.ours with Some t -> Tuple.to_string t | None -> "(deleted)")
        (match c.Types.theirs with Some t -> Tuple.to_string t | None -> "(deleted)")
        (match c.Types.resolved with Some t -> Tuple.to_string t | None -> "(deleted)"))
    r3.Types.conflicts;
  show db "master final" Vg.master;

  (* the audit trail: every version of the catalog remains readable *)
  Printf.printf "catalog versions:\n";
  List.iter
    (fun (v : Vg.version) ->
      let n = ref 0 in
      Database.scan_version db v.Vg.id (fun _ -> incr n);
      Printf.printf "  v%-2d %-24s %d items\n" v.Vg.id v.Vg.message !n)
    (Vg.versions (Database.graph db));

  Database.close db;
  Decibel_util.Fsutil.rm_rf dir
