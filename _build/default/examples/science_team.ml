(* The paper's "science pattern" (§1.1): a data-science team works on
   snapshots of an evolving dataset.  The mainline keeps ingesting new
   measurements while two analysts branch from a fixed snapshot, apply
   different normalization strategies, and compare their results —
   without ever copying the dataset.

     dune exec examples/science_team.exe
*)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

(* sensor readings: (id, sensor, raw value, normalized value) *)
let schema = Schema.ints ~name:"readings" ~width:4

let reading id sensor raw norm =
  [| Value.int id; Value.int sensor; Value.int raw; Value.int norm |]

let ingest db branch ~from_id ~count =
  for i = from_id to from_id + count - 1 do
    Database.insert db branch (reading i (i mod 7) ((i * 37) mod 1000) 0)
  done

let mean_normalized db branch =
  let sum = ref 0L and n = ref 0 in
  Database.scan db branch (fun t ->
      sum := Int64.add !sum (Value.to_int_exn t.(3));
      incr n);
  if !n = 0 then 0.0 else Int64.to_float !sum /. float_of_int !n

let () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-science" in
  let db = Database.open_ ~scheme:Database.Hybrid ~dir ~schema () in

  (* the canonical dataset evolves on the mainline *)
  ingest db Vg.master ~from_id:0 ~count:500;
  let snapshot = Database.commit db Vg.master ~message:"week 1 data" in

  (* analysts pin their work to the week-1 snapshot; later mainline
     ingests must not leak into their analysis *)
  let minmax = Database.create_branch db ~name:"norm-minmax" ~from:snapshot in
  let zscore = Database.create_branch db ~name:"norm-zscore" ~from:snapshot in

  (* mainline keeps ingesting concurrently *)
  ingest db Vg.master ~from_id:500 ~count:300;
  let _ = Database.commit db Vg.master ~message:"week 2 data" in

  (* analyst A: min-max normalization to [0, 100] *)
  let lo = ref Int64.max_int and hi = ref Int64.min_int in
  Database.scan db minmax (fun t ->
      let v = Value.to_int_exn t.(2) in
      if v < !lo then lo := v;
      if v > !hi then hi := v);
  let span = Int64.to_float (Int64.sub !hi !lo) in
  let tuples = ref [] in
  Database.scan db minmax (fun t -> tuples := t :: !tuples);
  List.iter
    (fun t ->
      let raw = Int64.to_float (Value.to_int_exn t.(2)) in
      let norm =
        Int64.of_float ((raw -. Int64.to_float !lo) /. span *. 100.0)
      in
      let t' = Array.copy t in
      t'.(3) <- Value.Int norm;
      Database.update db minmax t')
    !tuples;
  let _ = Database.commit db minmax ~message:"min-max normalization" in

  (* analyst B: coarse z-score-style normalization *)
  let tuples = ref [] in
  Database.scan db zscore (fun t -> tuples := t :: !tuples);
  let n = List.length !tuples in
  let mean =
    List.fold_left
      (fun acc t -> acc +. Int64.to_float (Value.to_int_exn t.(2)))
      0.0 !tuples
    /. float_of_int n
  in
  List.iter
    (fun t ->
      let raw = Int64.to_float (Value.to_int_exn t.(2)) in
      let t' = Array.copy t in
      t'.(3) <- Value.Int (Int64.of_float (50.0 +. ((raw -. mean) /. 10.0)));
      Database.update db zscore t')
    !tuples;
  let _ = Database.commit db zscore ~message:"z-score normalization" in

  (* compare the two strategies and the untouched snapshot *)
  Printf.printf "records: snapshot=%d mainline=%d (analysis unaffected)\n"
    (let c = ref 0 in
     Database.scan_version db snapshot (fun _ -> incr c);
     !c)
    (let c = ref 0 in
     Database.scan db Vg.master (fun _ -> incr c);
     !c);
  Printf.printf "mean normalized value: min-max=%.1f z-score=%.1f\n"
    (mean_normalized db minmax)
    (mean_normalized db zscore);

  (* how many records did the strategies normalize differently? *)
  let differing = ref 0 in
  Database.diff db minmax zscore ~pos:(fun _ -> incr differing) ~neg:(fun _ -> ());
  Printf.printf "records with differing normalization: %d of %d\n" !differing n;

  (* Q4-style overview: which branch heads exist right now? *)
  List.iter
    (fun (b : Vg.branch) ->
      Printf.printf "branch %-12s head=version %d%s\n" b.Vg.name b.Vg.head
        (if b.Vg.active then "" else " (retired)"))
    (Vg.branches (Database.graph db));

  Database.close db;
  Decibel_util.Fsutil.rm_rf dir
