(* Durability and governance: write-ahead logging, crash recovery,
   persistent repositories, and branch-level access control — the
   operational features around the core versioning engine (the paper
   defers fault tolerance and per-branch privileges to future work,
   §2.1 / §2.2.2; this library implements both).

     dune exec examples/durable_workflows.exe
*)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"events" ~width:3

let row k a = [| Value.int k; Value.int a; Value.int (k * a) |]

let () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-durable" in

  (* 1. a durable database journals every operation *)
  let db =
    Database.open_ ~durable:true ~scheme:Database.Hybrid ~dir ~schema ()
  in
  Database.insert db Vg.master (row 1 10);
  Database.insert db Vg.master (row 2 20);
  let v1 = Database.commit db Vg.master ~message:"first batch" in
  let dev = Database.create_branch db ~name:"dev" ~from:v1 in
  Database.insert db dev (row 3 30);

  (* 2. simulate a crash: the process dies without close or flush *)
  Printf.printf "pretend crash with %d rows on master, %d on dev...\n"
    (Database.count db Vg.master)
    (Database.count db dev);

  (* 3. reopen: the WAL tail is replayed onto the last checkpoint *)
  let db = Database.reopen ~dir () in
  Printf.printf "recovered: master=%d rows, dev=%d rows, %d versions\n"
    (Database.count db Vg.master)
    (Database.count db dev)
    (Vg.version_count (Database.graph db));

  (* 4. branch-level access control on top of the recovered database *)
  let acl = Acl.create () in
  Acl.grant acl ~user:"alice" ~branch:"master" Acl.Admin;
  Acl.grant acl ~user:"bob" ~branch:"dev" Acl.Write;
  Acl.grant acl ~user:"bob" ~branch:"master" Acl.Read;
  let g = Acl.Guarded.make ~db ~acl ~dir in

  Acl.Guarded.insert g ~user:"bob" (Database.branch_named db "dev") (row 4 40);
  (match
     Acl.Guarded.insert g ~user:"bob" Vg.master (row 5 50)
   with
  | exception Acl.Denied msg -> Printf.printf "denied as expected: %s\n" msg
  | () -> assert false);
  Acl.Guarded.insert g ~user:"alice" Vg.master (row 5 50);

  (* 5. concurrent sessions are isolated by two-phase locking *)
  let s1 = Database.new_session db in
  Database.session_checkout_branch s1 "master";
  Database.session_insert s1 (row 6 60);
  let _ = Database.session_commit s1 ~message:"session work" in
  Printf.printf "final master rows: %d\n" (Database.count db Vg.master);

  Database.close db;
  Decibel_util.Fsutil.rm_rf dir
