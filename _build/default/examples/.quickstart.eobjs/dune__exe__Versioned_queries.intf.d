examples/versioned_queries.mli:
