examples/durable_workflows.ml: Acl Database Decibel Decibel_graph Decibel_storage Decibel_util Printf Schema Value
