examples/curation_team.ml: Database Decibel Decibel_graph Decibel_storage Decibel_util List Printf Schema String Tuple Types Value
