examples/durable_workflows.mli:
