examples/curation_team.mli:
