examples/versioned_queries.ml: Database Decibel Decibel_graph Decibel_storage Decibel_util List Printf Query Schema String Tuple Value Vquel
