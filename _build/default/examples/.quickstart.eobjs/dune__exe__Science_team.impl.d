examples/science_team.ml: Array Database Decibel Decibel_graph Decibel_storage Decibel_util Int64 List Printf Schema Value
