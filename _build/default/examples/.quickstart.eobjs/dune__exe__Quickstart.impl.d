examples/quickstart.ml: Database Decibel Decibel_graph Decibel_storage Decibel_util List Printf Schema Tuple Types Value
