examples/quickstart.mli:
