examples/science_team.mli:
