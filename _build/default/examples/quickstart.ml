(* Quickstart: the core Decibel workflow in one file.

   Creates a versioned table, commits, branches, modifies both
   branches, inspects their difference, and merges with field-level
   conflict handling.  Run with:

     dune exec examples/quickstart.exe
*)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema =
  Schema.make ~name:"users"
    ~columns:
      [
        { Schema.col_name = "id"; col_type = Schema.T_int };
        { Schema.col_name = "name"; col_type = Schema.T_str };
        { Schema.col_name = "city"; col_type = Schema.T_str };
        { Schema.col_name = "score"; col_type = Schema.T_int };
      ]
    ~pk:"id"

let user id name city score =
  [| Value.int id; Value.Str name; Value.Str city; Value.int score |]

let print_branch db label branch =
  Printf.printf "%s:\n" label;
  let rows = ref [] in
  Database.scan db branch (fun t -> rows := t :: !rows);
  List.iter
    (fun t -> Printf.printf "  %s\n" (Tuple.to_string t))
    (List.sort compare !rows)

let () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-quickstart" in
  (* pick any storage scheme; hybrid is the paper's best performer *)
  let db = Database.open_ ~scheme:Database.Hybrid ~dir ~schema () in

  (* 1. populate the master branch and commit a version *)
  Database.insert db Vg.master (user 1 "ada" "london" 90);
  Database.insert db Vg.master (user 2 "grace" "nyc" 85);
  Database.insert db Vg.master (user 3 "alan" "cambridge" 88);
  let v1 = Database.commit db Vg.master ~message:"initial snapshot" in
  Printf.printf "committed version %d\n" v1;

  (* 2. branch a private working copy — no data is copied *)
  let cleaning = Database.create_branch db ~name:"cleaning" ~from:v1 in

  (* 3. work on both branches independently *)
  Database.update db cleaning (user 2 "grace" "new york" 85);
  Database.delete db cleaning (Value.int 3);
  Database.insert db Vg.master (user 4 "edsger" "austin" 92);
  Database.update db Vg.master (user 2 "grace" "nyc" 99);

  print_branch db "master (after divergence)" Vg.master;
  print_branch db "cleaning" cleaning;

  (* 4. inspect the difference between the branches *)
  Printf.printf "diff master vs cleaning:\n";
  Database.diff db Vg.master cleaning
    ~pos:(fun t -> Printf.printf "  only in master:   %s\n" (Tuple.to_string t))
    ~neg:(fun t -> Printf.printf "  only in cleaning: %s\n" (Tuple.to_string t));

  (* 5. merge the cleaning branch back.  Grace's record was changed on
     both sides: master changed 'score', cleaning changed 'city' —
     disjoint fields, so the three-way merge combines them without a
     conflict.  Alan was deleted in cleaning and untouched in master,
     so the delete carries over. *)
  let _ = Database.commit db cleaning ~message:"cleaning pass" in
  let result =
    Database.merge db ~into:Vg.master ~from:cleaning ~policy:Types.Three_way
      ~message:"merge cleaning"
  in
  Printf.printf "merge: %d conflicts, %d keys from cleaning, version %d\n"
    (List.length result.Types.conflicts)
    result.Types.keys_theirs result.Types.merge_version;
  print_branch db "master (merged)" Vg.master;

  (* 6. history is preserved: the first commit still reads as it was *)
  Printf.printf "version %d still has %d users\n" v1
    (let n = ref 0 in
     Database.scan_version db v1 (fun _ -> incr n);
     !n);

  Database.close db;
  Decibel_util.Fsutil.rm_rf dir
