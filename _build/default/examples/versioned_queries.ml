(* The four versioned query classes of the paper's Table 1, both
   through the typed Query operators and through the VQuel SQL dialect
   (§2.3).

     dune exec examples/versioned_queries.exe
*)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

let row id a = [| Value.int id; Value.int a; Value.int (id * a) |]

let () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-queries" in
  let db = Database.open_ ~scheme:Database.Tuple_first ~dir ~schema () in

  for i = 1 to 50 do
    Database.insert db Vg.master (row i (i mod 10))
  done;
  let v1 = Database.commit db Vg.master ~message:"v1" in
  let dev = Database.create_branch db ~name:"dev" ~from:v1 in
  for i = 51 to 60 do
    Database.insert db dev (row i (i mod 10))
  done;
  Database.update db dev (row 7 99);
  let _ = Database.commit db dev ~message:"dev work" in

  (* --- typed operators ------------------------------------------- *)
  Printf.printf "Q1 master count: %d\n" (Query.q1_scan db Vg.master);
  Printf.printf "Q1 with predicate c1 = 3: %d\n"
    (Query.q1_scan
       ~pred:(Query.column_pred schema ~column:"c1" Query.Eq (Value.int 3))
       db Vg.master);
  Printf.printf "Q2 records in dev not in master: %d\n"
    (Query.q2_pos_diff db dev Vg.master);
  Printf.printf "Q3 join master with dev where c1 > 5: %d\n"
    (Query.q3_join
       ~pred:(Query.column_pred schema ~column:"c1" Query.Gt (Value.int 5))
       db Vg.master dev);
  Printf.printf "Q4 records in any head: %d\n" (Query.q4_heads db);

  (* --- the same queries in VQuel's SQL dialect ------------------- *)
  let run label sql =
    let rows = Vquel.query db sql in
    Printf.printf "%-12s %-70s -> %d rows\n" label sql (List.length rows)
  in
  (* version literals: a branch name reads its working head; '#n'
     reads committed version n *)
  run "Q1" "SELECT * FROM r WHERE r.Version = 'master'";
  run "Q1@commit" (Printf.sprintf "SELECT * FROM r WHERE r.Version = '#%d'" v1);
  run "Q1+pred" "SELECT * FROM r WHERE r.Version = 'dev' AND c1 >= 5";
  run "Q2"
    "SELECT * FROM r WHERE r.Version = 'dev' AND r.id NOT IN (SELECT id \
     FROM r WHERE r.Version = 'master')";
  run "Q3"
    "SELECT * FROM r AS r1, r AS r2 WHERE r1.Version = 'master' AND r1.c1 = \
     3 AND r1.id = r2.id AND r2.Version = 'dev'";
  run "Q4" "SELECT * FROM r WHERE HEAD(r.Version) = true";

  (* Q4's rows carry branch annotations *)
  let heads = Vquel.query db "SELECT * FROM r WHERE HEAD(r.Version) = true AND c0 <= 3" in
  List.iter
    (fun (r : Vquel.row) ->
      Printf.printf "  %s in branches [%s]\n"
        (Tuple.to_string r.Vquel.values)
        (String.concat ", " r.Vquel.row_branches))
    heads;

  Database.close db;
  Decibel_util.Fsutil.rm_rf dir
