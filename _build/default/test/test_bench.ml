(* Tests for the benchmark machinery: the four branching strategies
   (paper §4.1) generate well-formed, deterministic workloads; the
   clustered load mode is an order-preserving regrouping; and loading
   the same workload into different engines yields identical logical
   datasets. *)

open Decibel
open Decibel_bench

let small_cfg =
  {
    Config.default with
    Config.branches = 6;
    records_per_branch = 80;
    commit_every = 25;
    science_lifetime = 120;
    curation_dev_lifetime = 100;
    curation_feature_lifetime = 40;
  }

let all_kinds = Strategy.all

(* ------------------------------------------------------------------ *)
(* structural validity: replay a workload against a simple checker *)

let validate (wl : Workload.t) =
  let branches = Hashtbl.create 16 in
  (* branch -> (live keys, commits seen) *)
  Hashtbl.replace branches "master" (Hashtbl.create 64, ref 0);
  let keys_of b =
    match Hashtbl.find_opt branches b with
    | Some (k, _) -> k
    | None -> Alcotest.fail (Printf.sprintf "op targets unknown branch %s" b)
  in
  let commits_of b =
    match Hashtbl.find_opt branches b with
    | Some (_, c) -> c
    | None -> Alcotest.fail (Printf.sprintf "unknown branch %s" b)
  in
  let seen_keys = Hashtbl.create 1024 in
  List.iter
    (fun (op : Workload.op) ->
      match op with
      | Workload.Insert { branch; key } ->
          let keys = keys_of branch in
          if Hashtbl.mem keys key then
            Alcotest.fail
              (Printf.sprintf "insert of existing key %d in %s" key branch);
          if Hashtbl.mem seen_keys key then
            Alcotest.fail (Printf.sprintf "key %d inserted twice globally" key);
          Hashtbl.replace seen_keys key ();
          Hashtbl.replace keys key ()
      | Workload.Update { branch; key } ->
          if not (Hashtbl.mem (keys_of branch) key) then
            Alcotest.fail
              (Printf.sprintf "update of absent key %d in %s" key branch)
      | Workload.Commit branch -> incr (commits_of branch)
      | Workload.Create_branch { name; from_branch; commits_back } ->
          if Hashtbl.mem branches name then
            Alcotest.fail (Printf.sprintf "branch %s created twice" name);
          let parent_commits = !(commits_of from_branch) in
          if commits_back >= parent_commits then
            Alcotest.fail
              (Printf.sprintf "%s branches %d back but %s has %d commits"
                 name commits_back from_branch parent_commits);
          (* the checker does not model historical key sets precisely;
             inherit the parent's current keys (superset) *)
          let keys = Hashtbl.copy (keys_of from_branch) in
          Hashtbl.replace branches name (keys, ref 0)
      | Workload.Merge { into; from; _ } ->
          let ki = keys_of into and kf = keys_of from in
          Hashtbl.iter (fun k () -> Hashtbl.replace ki k ()) kf;
          incr (commits_of into)
      | Workload.Retire branch -> ignore (keys_of branch))
    wl.Workload.ops

let test_strategy_validity kind () =
  let wl = Strategy.generate kind small_cfg in
  validate wl;
  let ins, upd, com, br, mrg = Workload.op_counts wl in
  Alcotest.(check bool) "has inserts" true (ins > 0);
  Alcotest.(check bool) "has updates" true (upd > 0);
  Alcotest.(check bool) "has commits" true (com > 0);
  Alcotest.(check bool) "creates branches" true
    (br = small_cfg.Config.branches - 1);
  (match kind with
  | Strategy.Curation ->
      Alcotest.(check bool) "curation merges" true (mrg > 0)
  | Strategy.Deep | Strategy.Flat | Strategy.Science ->
      Alcotest.(check int) "no merges" 0 mrg);
  (* update fraction roughly matches the configured mix *)
  let frac = float_of_int upd /. float_of_int (ins + upd) in
  Alcotest.(check bool)
    (Printf.sprintf "update fraction %.2f in [0.1, 0.3]" frac)
    true
    (frac > 0.1 && frac < 0.3)

let test_determinism kind () =
  let wl1 = Strategy.generate kind small_cfg in
  let wl2 = Strategy.generate kind small_cfg in
  Alcotest.(check bool) "identical ops" true (wl1.Workload.ops = wl2.Workload.ops);
  Alcotest.(check bool) "identical roles" true
    (wl1.Workload.roles = wl2.Workload.roles);
  let wl3 =
    Strategy.generate kind { small_cfg with Config.seed = 123L }
  in
  Alcotest.(check bool) "different seed differs" true
    (wl3.Workload.ops <> wl1.Workload.ops)

let test_roles kind () =
  let wl = Strategy.generate kind small_cfg in
  let required =
    match kind with
    | Strategy.Deep -> [ "tail"; "tail-parent"; "head" ]
    | Strategy.Flat -> [ "parent"; "child"; "children" ]
    | Strategy.Science -> [ "mainline"; "oldest-active"; "youngest-active" ]
    | Strategy.Curation -> [ "mainline"; "dev"; "feature" ]
  in
  List.iter
    (fun r ->
      match Workload.role wl r with
      | Some _ -> ()
      | None -> Alcotest.fail (Printf.sprintf "missing role %s" r))
    required

let test_cluster_preserves_ops () =
  let wl = Strategy.generate Strategy.Flat small_cfg in
  let cl = Workload.cluster wl in
  (* same multiset of operations *)
  let sort ops = List.sort compare ops in
  Alcotest.(check bool) "same multiset" true
    (sort wl.Workload.ops = sort cl.Workload.ops);
  (* clustered runs are grouped: count adjacent branch switches among
     data ops between barriers; clustering must not increase them *)
  let switches ops =
    let last = ref "" and n = ref 0 in
    List.iter
      (fun (op : Workload.op) ->
        match op with
        | Workload.Insert { branch; _ } | Workload.Update { branch; _ } ->
            if branch <> !last then incr n;
            last := branch
        | _ -> last := "")
      ops;
    !n
  in
  Alcotest.(check bool) "fewer branch switches" true
    (switches cl.Workload.ops <= switches wl.Workload.ops);
  validate cl

let test_deep_single_writer () =
  let wl = Strategy.generate Strategy.Deep small_cfg in
  (* deep: after a branch is created, its parent receives no more data
     operations (§4.1: "once a branch is created, no further records
     are inserted to the parent branch") *)
  let retired = Hashtbl.create 8 in
  List.iter
    (fun (op : Workload.op) ->
      match op with
      | Workload.Create_branch { from_branch; _ } ->
          Hashtbl.replace retired from_branch ()
      | Workload.Insert { branch; _ } | Workload.Update { branch; _ } ->
          if Hashtbl.mem retired branch then
            Alcotest.fail (Printf.sprintf "data op on retired parent %s" branch)
      | _ -> ())
    wl.Workload.ops

let test_science_retires () =
  let wl =
    Strategy.generate Strategy.Science
      { small_cfg with Config.branches = 8; records_per_branch = 200 }
  in
  let _, _, _, _, _ = Workload.op_counts wl in
  let retires =
    List.length
      (List.filter
         (fun op -> match op with Workload.Retire _ -> true | _ -> false)
         wl.Workload.ops)
  in
  Alcotest.(check bool) "some branches retire" true (retires > 0)

(* ------------------------------------------------------------------ *)
(* cross-engine load equivalence on each strategy *)

let test_load_equivalence kind () =
  let cfg = { small_cfg with Config.branches = 4; records_per_branch = 60 } in
  let wl = Strategy.generate kind cfg in
  let datasets =
    List.map
      (fun scheme ->
        let dir = Decibel_util.Fsutil.fresh_dir "decibel-benchload" in
        let l = Driver.load ~scheme ~dir cfg wl in
        let g = Database.graph l.Driver.db in
        let per_branch =
          List.init
            (Decibel_graph.Version_graph.branch_count g)
            (fun b ->
              List.sort compare
                (List.map Array.to_list (Database.scan_list l.Driver.db b)))
        in
        Driver.close l;
        per_branch)
      [ Database.Tuple_first; Database.Version_first; Database.Hybrid ]
  in
  match datasets with
  | [ tf; vf; hy ] ->
      Alcotest.(check bool) "tf = vf" true (tf = vf);
      Alcotest.(check bool) "tf = hy" true (tf = hy)
  | _ -> assert false

let kind_cases name f =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Strategy.kind_name kind))
        `Quick (f kind))
    all_kinds

let () =
  Alcotest.run "bench"
    [
      ("validity", kind_cases "well-formed ops" test_strategy_validity);
      ("determinism", kind_cases "deterministic" test_determinism);
      ("roles", kind_cases "roles present" test_roles);
      ( "clustering",
        [
          Alcotest.test_case "cluster preserves ops" `Quick
            test_cluster_preserves_ops;
          Alcotest.test_case "deep single-writer" `Quick
            test_deep_single_writer;
          Alcotest.test_case "science retires branches" `Quick
            test_science_retires;
        ] );
      ( "load-equivalence",
        kind_cases "same dataset across engines" test_load_equivalence );
    ]
