(* Shared random-operation-sequence machinery for property tests: a
   generator of abstract versioning commands and a deterministic
   interpreter over any Database.  Validity decisions (key existence,
   branch choice) are resolved against the driven database itself, so
   engines that agree semantically resolve them identically. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

type cmd =
  | CInsert of int * int
  | CUpdate of int * int
  | CDelete of int
  | CCommit of int
  | CBranch of int
  | CMerge of int * int * int

let cmd_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun k v -> CInsert (k, v)) (int_bound 40) (int_bound 1000));
        (4, map2 (fun k v -> CUpdate (k, v)) (int_bound 40) (int_bound 1000));
        (2, map (fun k -> CDelete k) (int_bound 40));
        (3, map (fun b -> CCommit b) (int_bound 1000));
        (2, map (fun v -> CBranch v) (int_bound 1000));
        ( 2,
          map3
            (fun a b p -> CMerge (a, b, p))
            (int_bound 1000) (int_bound 1000) (int_bound 3) );
      ])

let cmds_gen = QCheck2.Gen.(list_size (int_range 1 60) cmd_gen)

let print_cmd = function
  | CInsert (k, v) -> Printf.sprintf "Insert(%d,%d)" k v
  | CUpdate (k, v) -> Printf.sprintf "Update(%d,%d)" k v
  | CDelete k -> Printf.sprintf "Delete(%d)" k
  | CCommit b -> Printf.sprintf "Commit(%d)" b
  | CBranch v -> Printf.sprintf "Branch(%d)" v
  | CMerge (a, b, p) -> Printf.sprintf "Merge(%d,%d,%d)" a b p

let print_cmds cmds = String.concat "; " (List.map print_cmd cmds)

let tuple k v = [| Value.int k; Value.int v; Value.int (k + v) |]

(* [branch_offset] seeds the fresh-branch-name counter, so a sequence
   split across a close/reopen still generates unique names. *)
let apply_cmds ?(branch_offset = 0) db cmds =
  let branch_counter = ref branch_offset in
  List.iteri
    (fun _i cmd ->
      let g = Database.graph db in
      let nbranches = Vg.branch_count g in
      match cmd with
      | CInsert (k, v) ->
          let b = (k + v) mod nbranches in
          if Database.lookup db b (Value.int k) = None then
            Database.insert db b (tuple k v)
          else Database.update db b (tuple k v)
      | CUpdate (k, v) ->
          let b = (k + v + 1) mod nbranches in
          if Database.lookup db b (Value.int k) = None then
            Database.insert db b (tuple k v)
          else Database.update db b (tuple k v)
      | CDelete k ->
          let b = k mod nbranches in
          if Database.lookup db b (Value.int k) <> None then
            Database.delete db b (Value.int k)
      | CCommit h ->
          let b = h mod nbranches in
          let _ = Database.commit db b ~message:"commit" in
          ()
      | CBranch h ->
          let from = h mod Vg.version_count g in
          incr branch_counter;
          let _ =
            Database.create_branch db
              ~name:(Printf.sprintf "b%d" !branch_counter)
              ~from
          in
          ()
      | CMerge (a, b, p) ->
          if nbranches >= 2 then begin
            let into = a mod nbranches in
            let from = b mod nbranches in
            if into <> from then begin
              let policy =
                match p mod 3 with
                | 0 -> Types.Ours
                | 1 -> Types.Theirs
                | _ -> Types.Three_way
              in
              let _ =
                Database.merge db ~into ~from ~policy
                  ~message:"merge"
              in
              ()
            end
          end)
    cmds
