test/test_acl.ml: Acl Alcotest Database Decibel Decibel_graph Decibel_storage Decibel_util Fun List Schema Types Value
