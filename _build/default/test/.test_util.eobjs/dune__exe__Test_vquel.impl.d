test/test_vquel.ml: Alcotest Array Database Decibel Decibel_graph Decibel_storage Decibel_util Fun Int64 List Printf Query Schema Value Vquel
