test/test_bench.ml: Alcotest Array Config Database Decibel Decibel_bench Decibel_graph Decibel_util Driver Hashtbl List Printf Strategy Workload
