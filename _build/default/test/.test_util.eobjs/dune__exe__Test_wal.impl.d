test/test_wal.ml: Alcotest Array Bytes Char Database Decibel Decibel_graph Decibel_storage Decibel_util Filename Fun List Schema String Sys Types Unix Value Wal
