test/test_graph.ml: Alcotest Decibel_graph Format List Printf QCheck2 QCheck_alcotest
