test/test_gitlike.ml: Alcotest Array Decibel_gitlike Decibel_graph Decibel_storage Decibel_util Fsutil Fun Git_engine List Object_store Printf QCheck2 QCheck_alcotest Schema String Value
