test/cmds.ml: Database Decibel Decibel_graph Decibel_storage List Printf QCheck2 Schema String Types Value
