test/test_engine.ml: Alcotest Array Database Decibel Decibel_graph Decibel_storage Decibel_util Fun Hashtbl List Option Printf Schema Tuple Types Value
