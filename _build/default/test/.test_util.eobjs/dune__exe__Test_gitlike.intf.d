test/test_gitlike.mli:
