test/test_props.ml: Alcotest Array Cmds Database Decibel Decibel_graph Decibel_storage Decibel_util Fun Hashtbl List Option Printf QCheck2 QCheck_alcotest String Tuple Types Value
