test/test_vquel.mli:
