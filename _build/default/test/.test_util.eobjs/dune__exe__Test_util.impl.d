test/test_util.ml: Alcotest Array Binio Bitvec Buffer Decibel_util Delta Fun Int Int64 List Lz77 Printf Prng QCheck2 QCheck_alcotest Rle Set String Vec
