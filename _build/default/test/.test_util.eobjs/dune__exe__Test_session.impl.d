test/test_session.ml: Alcotest Database Decibel Decibel_graph Decibel_storage Decibel_util Fun List Lock_manager Schema Types Value
