test/test_persistence.ml: Alcotest Array Cmds Database Decibel Decibel_graph Decibel_storage Decibel_util Fun List Printf QCheck2 QCheck_alcotest Schema Types Value
