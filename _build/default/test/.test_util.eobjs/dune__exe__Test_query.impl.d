test/test_query.ml: Alcotest Database Decibel Decibel_graph Decibel_storage Decibel_util Fun Hashtbl List Merge_driver Printf Query Schema Types Value
