(* Tests for the typed query operators (Q1-Q4, paper Table 1 / §4.3)
   and the merge decision driver. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

let row id a = [| Value.int id; Value.int a; Value.int (id + a) |]

let with_db f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-query" in
  let db = Database.open_ ~scheme:Database.Hybrid ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f db)

(* a small fixture: master has ids 1..20, dev branches at v1 and adds
   21..25, updates id 3, deletes id 4 *)
let fixture db =
  for i = 1 to 20 do
    Database.insert db Vg.master (row i (i mod 5))
  done;
  let v1 = Database.commit db Vg.master ~message:"v1" in
  let dev = Database.create_branch db ~name:"dev" ~from:v1 in
  for i = 21 to 25 do
    Database.insert db dev (row i (i mod 5))
  done;
  Database.update db dev (row 3 77);
  Database.delete db dev (Value.int 4);
  let _ = Database.commit db dev ~message:"dev" in
  (v1, dev)

let test_q1 () =
  with_db (fun db ->
      let _, dev = fixture db in
      Alcotest.(check int) "master" 20 (Query.q1_scan db Vg.master);
      Alcotest.(check int) "dev" 24 (Query.q1_scan db dev);
      let pred = Query.column_pred schema ~column:"c1" Query.Eq (Value.int 0) in
      (* ids with i mod 5 = 0 in master: 5,10,15,20 *)
      Alcotest.(check int) "predicate" 4 (Query.q1_scan ~pred db Vg.master))

let test_q1_version () =
  with_db (fun db ->
      let v1, dev = fixture db in
      ignore dev;
      Alcotest.(check int) "historical" 20 (Query.q1_scan_version db v1);
      Alcotest.(check int) "root" 0
        (Query.q1_scan_version db Vg.root_version))

let test_q2 () =
  with_db (fun db ->
      let _, dev = fixture db in
      (* dev-side novelties: 21..25 inserts + updated 3 = 6 *)
      Alcotest.(check int) "dev minus master" 6 (Query.q2_pos_diff db dev Vg.master);
      (* master-side: old copy of 3, deleted 4 = 2 *)
      Alcotest.(check int) "master minus dev" 2
        (Query.q2_pos_diff db Vg.master dev);
      Alcotest.(check int) "self diff empty" 0
        (Query.q2_pos_diff db Vg.master Vg.master))

let test_q3 () =
  with_db (fun db ->
      let _, dev = fixture db in
      (* join on pk: common keys = 1..20 minus deleted 4 = 19 *)
      Alcotest.(check int) "join all" 19 (Query.q3_join db Vg.master dev);
      let pred = Query.column_pred schema ~column:"c0" Query.Le (Value.int 5) in
      (* keys 1..5 minus 4 *)
      Alcotest.(check int) "join with predicate" 4
        (Query.q3_join ~pred db Vg.master dev))

let test_q4 () =
  with_db (fun db ->
      let _, dev = fixture db in
      ignore dev;
      (* distinct physical records across both heads: 20 master + 6 dev
         copies (21..25 and new copy of 3) = 26 *)
      Alcotest.(check int) "all heads" 26 (Query.q4_heads db);
      Alcotest.(check int) "restricted to master" 20
        (Query.q4_heads ~branches:[ Vg.master ] db);
      (* retired branches are excluded from the default set *)
      Vg.retire (Database.graph db) dev;
      Alcotest.(check int) "after retiring dev" 20 (Query.q4_heads db))

let test_column_pred_ops () =
  let t = row 10 3 in
  let check name op v expected =
    let p = Query.column_pred schema ~column:"c1" op (Value.int v) in
    Alcotest.(check bool) name expected (p t)
  in
  check "eq true" Query.Eq 3 true;
  check "eq false" Query.Eq 4 false;
  check "ne" Query.Ne 4 true;
  check "lt" Query.Lt 4 true;
  check "le" Query.Le 3 true;
  check "gt" Query.Gt 2 true;
  check "ge" Query.Ge 4 false;
  Alcotest.check_raises "unknown column" Not_found (fun () ->
      let p = Query.column_pred schema ~column:"nope" Query.Eq (Value.int 0) in
      ignore (p t))

(* ------------------------------------------------------------------ *)
(* merge driver unit tests *)

open Decibel_storage

let sc state base = { Merge_driver.state; base }

let tbl kvs =
  let t = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace t (Value.int k) v) kvs;
  t

let decide policy ours theirs =
  Merge_driver.decide ~policy ~ours:(tbl ours) ~theirs:(tbl theirs)

let final_of decisions k =
  let d =
    List.find (fun d -> Value.equal d.Merge_driver.d_key (Value.int k)) decisions
  in
  d.Merge_driver.final

let test_driver_disjoint_sides () =
  let a = row 1 10 and b = row 2 20 in
  let ds, stats =
    decide Types.Three_way
      [ (1, sc (Some a) None) ]
      [ (2, sc (Some b) None) ]
  in
  Alcotest.(check int) "ours count" 1 stats.Merge_driver.n_ours;
  Alcotest.(check int) "theirs count" 1 stats.Merge_driver.n_theirs;
  Alcotest.(check int) "both count" 0 stats.Merge_driver.n_both;
  Alcotest.(check bool) "key1 keeps ours" true (final_of ds 1 = Some a);
  Alcotest.(check bool) "key2 takes theirs" true (final_of ds 2 = Some b)

let test_driver_same_change_not_conflict () =
  let a = row 1 10 in
  let ds, _ =
    decide Types.Three_way
      [ (1, sc (Some a) None) ]
      [ (1, sc (Some a) None) ]
  in
  Alcotest.(check int) "no conflicts" 0
    (List.length (Merge_driver.conflicts_of ds))

let test_driver_field_merge () =
  let base = [| Value.int 1; Value.int 10; Value.int 20 |] in
  let ours = [| Value.int 1; Value.int 99; Value.int 20 |] in
  let theirs = [| Value.int 1; Value.int 10; Value.int 77 |] in
  let ds, _ =
    decide Types.Three_way
      [ (1, sc (Some ours) (Some base)) ]
      [ (1, sc (Some theirs) (Some base)) ]
  in
  Alcotest.(check int) "no conflicts" 0
    (List.length (Merge_driver.conflicts_of ds));
  Alcotest.(check bool) "merged fields" true
    (final_of ds 1 = Some [| Value.int 1; Value.int 99; Value.int 77 |])

let test_driver_conflict_resolution () =
  let base = [| Value.int 1; Value.int 10; Value.int 20 |] in
  let ours = [| Value.int 1; Value.int 11; Value.int 21 |] in
  let theirs = [| Value.int 1; Value.int 12; Value.int 20 |] in
  let ds, _ =
    decide Types.Three_way
      [ (1, sc (Some ours) (Some base)) ]
      [ (1, sc (Some theirs) (Some base)) ]
  in
  (match Merge_driver.conflicts_of ds with
  | [ c ] ->
      Alcotest.(check (list int)) "field 1 conflicts" [ 1 ] c.Types.fields;
      (* conflicting field from ours, theirs-only change... in this case
         field 2 changed only in ours so it is kept too *)
      Alcotest.(check bool) "resolution" true
        (c.Types.resolved = Some [| Value.int 1; Value.int 11; Value.int 21 |])
  | l -> Alcotest.fail (Printf.sprintf "expected 1 conflict, got %d" (List.length l)))

let test_driver_two_way_policies () =
  let a = row 1 10 and b = row 1 20 in
  let ours = [ (1, sc (Some a) None) ] in
  let theirs = [ (1, sc (Some b) None) ] in
  let ds_ours, _ = decide Types.Ours ours theirs in
  Alcotest.(check bool) "ours wins" true (final_of ds_ours 1 = Some a);
  Alcotest.(check int) "counted as conflict" 1
    (List.length (Merge_driver.conflicts_of ds_ours));
  let ds_theirs, _ = decide Types.Theirs ours theirs in
  Alcotest.(check bool) "theirs wins" true (final_of ds_theirs 1 = Some b)

let test_driver_delete_vs_modify () =
  let base = row 1 10 and modified = row 1 99 in
  let ds, _ =
    decide Types.Three_way
      [ (1, sc None (Some base)) ]
      [ (1, sc (Some modified) (Some base)) ]
  in
  Alcotest.(check int) "conflict" 1
    (List.length (Merge_driver.conflicts_of ds));
  Alcotest.(check bool) "ours (delete) wins" true (final_of ds 1 = None)

let () =
  Alcotest.run "query"
    [
      ( "operators",
        [
          Alcotest.test_case "q1" `Quick test_q1;
          Alcotest.test_case "q1 versions" `Quick test_q1_version;
          Alcotest.test_case "q2" `Quick test_q2;
          Alcotest.test_case "q3" `Quick test_q3;
          Alcotest.test_case "q4" `Quick test_q4;
          Alcotest.test_case "column predicates" `Quick test_column_pred_ops;
        ] );
      ( "merge-driver",
        [
          Alcotest.test_case "disjoint sides" `Quick test_driver_disjoint_sides;
          Alcotest.test_case "same change not a conflict" `Quick
            test_driver_same_change_not_conflict;
          Alcotest.test_case "field merge" `Quick test_driver_field_merge;
          Alcotest.test_case "conflict resolution" `Quick
            test_driver_conflict_resolution;
          Alcotest.test_case "two-way policies" `Quick
            test_driver_two_way_policies;
          Alcotest.test_case "delete vs modify" `Quick
            test_driver_delete_vs_modify;
        ] );
    ]
