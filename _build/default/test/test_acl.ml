(* Tests for branch-level access control (the per-branch privileges the
   paper envisions, §2.2.2): grant resolution, persistence, and the
   guarded facade's enforcement. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

let row k a = [| Value.int k; Value.int a; Value.int 0 |]

(* ------------------------------------------------------------------ *)
(* grant table semantics *)

let test_rights_ordering () =
  let t = Acl.create () in
  Acl.grant t ~user:"u" ~branch:"b" Acl.Write;
  Alcotest.(check bool) "write implies read" true
    (Acl.allows t ~user:"u" ~branch:"b" Acl.Read);
  Alcotest.(check bool) "write is write" true
    (Acl.allows t ~user:"u" ~branch:"b" Acl.Write);
  Alcotest.(check bool) "write is not admin" false
    (Acl.allows t ~user:"u" ~branch:"b" Acl.Admin);
  Alcotest.(check bool) "other branch denied" false
    (Acl.allows t ~user:"u" ~branch:"other" Acl.Read);
  Alcotest.(check bool) "other user denied" false
    (Acl.allows t ~user:"v" ~branch:"b" Acl.Read)

let test_wildcard_and_default () =
  let t = Acl.create ~default:Acl.Read () in
  Alcotest.(check bool) "default read" true
    (Acl.allows t ~user:"anyone" ~branch:"x" Acl.Read);
  Alcotest.(check bool) "default not write" false
    (Acl.allows t ~user:"anyone" ~branch:"x" Acl.Write);
  Acl.grant t ~user:"ops" ~branch:"*" Acl.Admin;
  Alcotest.(check bool) "wildcard admin" true
    (Acl.allows t ~user:"ops" ~branch:"whatever" Acl.Admin);
  (* strongest right wins when several apply *)
  Acl.grant t ~user:"ops" ~branch:"narrow" Acl.Read;
  Alcotest.(check bool) "wildcard still dominates" true
    (Acl.allows t ~user:"ops" ~branch:"narrow" Acl.Admin)

let test_revoke_and_listing () =
  let t = Acl.create () in
  Acl.grant t ~user:"u" ~branch:"a" Acl.Read;
  Acl.grant t ~user:"u" ~branch:"b" Acl.Admin;
  Alcotest.(check int) "two grants" 2 (List.length (Acl.grants_for t ~user:"u"));
  Acl.revoke t ~user:"u" ~branch:"a";
  Alcotest.(check bool) "revoked" false (Acl.allows t ~user:"u" ~branch:"a" Acl.Read);
  Alcotest.(check int) "one grant" 1 (List.length (Acl.grants_for t ~user:"u"))

let test_persistence () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-acl" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let t = Acl.create ~default:Acl.Read () in
      Acl.grant t ~user:"alice" ~branch:"master" Acl.Admin;
      Acl.grant t ~user:"bob" ~branch:"dev" Acl.Write;
      Acl.save t ~dir;
      let t2 = Acl.load ~dir in
      Alcotest.(check bool) "alice admin" true
        (Acl.allows t2 ~user:"alice" ~branch:"master" Acl.Admin);
      Alcotest.(check bool) "bob write" true
        (Acl.allows t2 ~user:"bob" ~branch:"dev" Acl.Write);
      Alcotest.(check bool) "default read" true
        (Acl.allows t2 ~user:"carol" ~branch:"dev" Acl.Read);
      (* empty dir loads an empty table *)
      let dir2 = Decibel_util.Fsutil.fresh_dir "decibel-acl2" in
      let t3 = Acl.load ~dir:dir2 in
      Alcotest.(check bool) "empty denies" false
        (Acl.allows t3 ~user:"x" ~branch:"y" Acl.Read);
      Decibel_util.Fsutil.rm_rf dir2)

(* ------------------------------------------------------------------ *)
(* guarded facade *)

let with_guarded f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-guarded" in
  let db = Database.open_ ~scheme:Database.Hybrid ~dir ~schema () in
  let acl = Acl.create () in
  Acl.grant acl ~user:"alice" ~branch:"master" Acl.Admin;
  Acl.grant acl ~user:"bob" ~branch:"master" Acl.Read;
  let g = Acl.Guarded.make ~db ~acl ~dir in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f g db acl)

let expect_denied f =
  match f () with
  | exception Acl.Denied _ -> ()
  | _ -> Alcotest.fail "expected Acl.Denied"

let test_guarded_writes () =
  with_guarded (fun g _db _acl ->
      Acl.Guarded.insert g ~user:"alice" Vg.master (row 1 1);
      expect_denied (fun () ->
          Acl.Guarded.insert g ~user:"bob" Vg.master (row 2 2));
      expect_denied (fun () ->
          Acl.Guarded.insert g ~user:"mallory" Vg.master (row 3 3));
      (* bob can read what alice wrote *)
      let n = ref 0 in
      Acl.Guarded.scan g ~user:"bob" Vg.master (fun _ -> incr n);
      Alcotest.(check int) "bob reads" 1 !n;
      expect_denied (fun () ->
          Acl.Guarded.scan g ~user:"mallory" Vg.master (fun _ -> ())))

let test_guarded_branching_grants_ownership () =
  with_guarded (fun g _db acl ->
      Acl.Guarded.insert g ~user:"alice" Vg.master (row 1 1);
      let v = Acl.Guarded.commit g ~user:"alice" Vg.master ~message:"c" in
      (* bob has only read on master: cannot branch from it *)
      expect_denied (fun () ->
          ignore (Acl.Guarded.create_branch g ~user:"bob" ~name:"nope" ~from:v));
      (* alice branches and becomes admin of the new branch *)
      let dev =
        Acl.Guarded.create_branch g ~user:"alice" ~name:"dev" ~from:v
      in
      Alcotest.(check bool) "creator owns" true
        (Acl.allows acl ~user:"alice" ~branch:"dev" Acl.Admin);
      (* alice delegates write on dev to bob; bob can then work there *)
      Acl.Guarded.grant g ~admin:"alice" ~user:"bob" ~branch:"dev" Acl.Write;
      Acl.Guarded.insert g ~user:"bob" dev (row 9 9);
      let _ = Acl.Guarded.commit g ~user:"bob" dev ~message:"bobwork" in
      (* but bob still cannot merge into master (write needed there) *)
      expect_denied (fun () ->
          ignore
            (Acl.Guarded.merge g ~user:"bob" ~into:Vg.master ~from:dev
               ~policy:Types.Three_way ~message:"m"));
      (* alice can: she has admin ≥ write on master and read via... her
         own grant is only on master; give her read on dev first *)
      Acl.Guarded.grant g ~admin:"alice" ~user:"alice" ~branch:"dev" Acl.Read;
      let r =
        Acl.Guarded.merge g ~user:"alice" ~into:Vg.master ~from:dev
          ~policy:Types.Three_way ~message:"m"
      in
      Alcotest.(check int) "merged" 0 (List.length r.Types.conflicts))

let test_guarded_grant_requires_admin () =
  with_guarded (fun g _db _acl ->
      expect_denied (fun () ->
          Acl.Guarded.grant g ~admin:"bob" ~user:"bob" ~branch:"master"
            Acl.Admin);
      expect_denied (fun () ->
          Acl.Guarded.revoke g ~admin:"mallory" ~user:"alice" ~branch:"master"))

let () =
  Alcotest.run "acl"
    [
      ( "grant-table",
        [
          Alcotest.test_case "rights ordering" `Quick test_rights_ordering;
          Alcotest.test_case "wildcard and default" `Quick
            test_wildcard_and_default;
          Alcotest.test_case "revoke and listing" `Quick
            test_revoke_and_listing;
          Alcotest.test_case "persistence" `Quick test_persistence;
        ] );
      ( "guarded-facade",
        [
          Alcotest.test_case "writes enforced" `Quick test_guarded_writes;
          Alcotest.test_case "branching grants ownership" `Quick
            test_guarded_branching_grants_ownership;
          Alcotest.test_case "grant requires admin" `Quick
            test_guarded_grant_requires_admin;
        ] );
    ]
