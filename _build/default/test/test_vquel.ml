(* Tests for the VQuel query language (paper §2.3, Table 1): the
   lexer/parser, the planner's recognition of the four versioned query
   shapes, rejection of unsupported constructs, and end-to-end results
   against the typed operators. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

let row id a = [| Value.int id; Value.int a; Value.int (id + a) |]

let with_db f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-vquel" in
  let db = Database.open_ ~scheme:Database.Tuple_first ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f db)

let fixture db =
  for i = 1 to 30 do
    Database.insert db Vg.master (row i (i mod 7))
  done;
  let v1 = Database.commit db Vg.master ~message:"v1" in
  let dev = Database.create_branch db ~name:"dev" ~from:v1 in
  for i = 31 to 35 do
    Database.insert db dev (row i (i mod 7))
  done;
  Database.update db dev (row 5 50);
  let _ = Database.commit db dev ~message:"dev" in
  (v1, dev)

let count db q = List.length (Vquel.query db q)

(* ------------------------------------------------------------------ *)
(* planner shape recognition *)

let plan q = (Vquel.plan_of_select (Vquel.parse q)).Vquel.base

let test_plan_shapes () =
  (match plan "SELECT * FROM r WHERE r.Version = 'master'" with
  | Vquel.Scan { target = Vquel.Branch_head "master"; preds = [] } -> ()
  | _ -> Alcotest.fail "expected Scan");
  (match plan "SELECT * FROM r WHERE r.Version = '#3' AND c1 > 5" with
  | Vquel.Scan { target = Vquel.Committed 3; preds = [ p ] } ->
      Alcotest.(check string) "pred column" "c1" p.Vquel.p_column
  | _ -> Alcotest.fail "expected Scan with predicate");
  (match
     plan
       "SELECT * FROM r WHERE r.Version = 'a' AND r.id NOT IN (SELECT id \
        FROM r WHERE r.Version = 'b')"
   with
  | Vquel.Pos_diff
      { target = Vquel.Branch_head "a"; other = Vquel.Branch_head "b"; _ } ->
      ()
  | _ -> Alcotest.fail "expected Pos_diff");
  (match
     plan
       "SELECT * FROM r AS r1, r AS r2 WHERE r1.Version = 'a' AND r1.c1 = 3 \
        AND r1.id = r2.id AND r2.Version = 'b'"
   with
  | Vquel.Join
      {
        left = Vquel.Branch_head "a";
        right = Vquel.Branch_head "b";
        left_preds = [ _ ];
        right_preds = [];
      } ->
      ()
  | _ -> Alcotest.fail "expected Join");
  match plan "SELECT * FROM r WHERE HEAD(r.Version) = true" with
  | Vquel.Head_scan { preds = [] } -> ()
  | _ -> Alcotest.fail "expected Head_scan"

let expect_parse_error q =
  match plan q with
  | exception Vquel.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" q)

let test_rejections () =
  List.iter expect_parse_error
    [
      (* missing version constraint *)
      "SELECT * FROM r";
      "SELECT * FROM r WHERE c1 = 3";
      (* GROUP BY without aggregates *)
      "SELECT c1 FROM r WHERE r.Version = 'a' GROUP BY c1";
      (* bare column mixed with aggregates without GROUP BY *)
      "SELECT c1, COUNT(*) FROM r WHERE r.Version = 'a'";
      (* grouped column must appear in GROUP BY *)
      "SELECT c2, COUNT(*) FROM r WHERE r.Version = 'a' GROUP BY c1";
      (* aggregates over joins unsupported *)
      "SELECT COUNT(*) FROM r AS a, r AS b WHERE a.Version = 'x' AND \
       b.Version = 'y' AND a.id = b.id";
      (* two version constraints on one table *)
      "SELECT * FROM r WHERE r.Version = 'a' AND r.Version = 'b'";
      (* head mixed with version *)
      "SELECT * FROM r WHERE HEAD(r.Version) = true AND r.Version = 'a'";
      (* HEAD must compare to true *)
      "SELECT * FROM r WHERE HEAD(r.Version) = false";
      (* join without join condition *)
      "SELECT * FROM r AS a, r AS b WHERE a.Version = 'x' AND b.Version = 'y'";
      (* join on non-pk *)
      "SELECT * FROM r AS a, r AS b WHERE a.Version = 'x' AND b.Version = \
       'y' AND a.c1 = b.c1";
      (* different tables *)
      "SELECT * FROM r, s WHERE r.Version = 'a' AND r.id = s.id AND \
       s.Version = 'b'";
      (* trailing garbage *)
      "SELECT * FROM r WHERE r.Version = 'a' banana";
      (* unterminated string *)
      "SELECT * FROM r WHERE r.Version = 'a";
      (* NOT IN on non-id *)
      "SELECT * FROM r WHERE r.Version = 'a' AND r.c1 NOT IN (SELECT id \
       FROM r WHERE r.Version = 'b')";
    ]

let test_lexer_details () =
  (* keywords are case-insensitive; idents keep their case *)
  match plan "select * from r where R.version = 'Master'" with
  | Vquel.Scan { target = Vquel.Branch_head "Master"; _ } -> ()
  | _ -> Alcotest.fail "case-insensitive keywords"

(* ------------------------------------------------------------------ *)
(* end-to-end agreement with typed operators *)

let test_q1_agreement () =
  with_db (fun db ->
      let _ = fixture db in
      Alcotest.(check int) "q1" (Query.q1_scan db Vg.master)
        (count db "SELECT * FROM r WHERE r.Version = 'master'");
      let pred = Query.column_pred schema ~column:"c1" Query.Ge (Value.int 4) in
      Alcotest.(check int) "q1 pred"
        (Query.q1_scan ~pred db Vg.master)
        (count db "SELECT * FROM r WHERE r.Version = 'master' AND c1 >= 4"))

let test_q1_version_literal () =
  with_db (fun db ->
      let v1, dev = fixture db in
      ignore dev;
      Alcotest.(check int) "committed version" 30
        (count db (Printf.sprintf "SELECT * FROM r WHERE r.Version = '#%d'" v1));
      (* bad version id *)
      match Vquel.query db "SELECT * FROM r WHERE r.Version = '#999'" with
      | exception _ -> ()
      | _ -> Alcotest.fail "expected failure for unknown version")

let test_q2_key_semantics () =
  with_db (fun db ->
      let _, dev = fixture db in
      ignore dev;
      (* NOT IN is key-based (paper's SQL): the updated key 5 exists in
         both branches and is excluded; only the 5 fresh inserts remain *)
      Alcotest.(check int) "dev not in master" 5
        (count db
           "SELECT * FROM r WHERE r.Version = 'dev' AND r.id NOT IN (SELECT \
            id FROM r WHERE r.Version = 'master')"))

let test_q3_agreement () =
  with_db (fun db ->
      let _, dev = fixture db in
      ignore dev;
      let pred = Query.column_pred schema ~column:"c1" Query.Eq (Value.int 3) in
      Alcotest.(check int) "join"
        (Query.q3_join ~pred db Vg.master dev)
        (count db
           "SELECT * FROM r AS r1, r AS r2 WHERE r1.Version = 'master' AND \
            r1.c1 = 3 AND r1.id = r2.id AND r2.Version = 'dev'");
      (* join rows concatenate both sides *)
      match
        Vquel.query db
          "SELECT * FROM r AS r1, r AS r2 WHERE r1.Version = 'master' AND \
           r1.c0 = 5 AND r1.id = r2.id AND r2.Version = 'dev'"
      with
      | [ r ] ->
          Alcotest.(check int) "width doubles" 6
            (Array.length r.Vquel.values);
          (* master side has the old value, dev side the updated one *)
          Alcotest.(check bool) "sides differ" false
            (Value.equal r.Vquel.values.(1) r.Vquel.values.(4))
      | l -> Alcotest.fail (Printf.sprintf "expected 1 row, got %d" (List.length l)))

let test_q4_annotations () =
  with_db (fun db ->
      let _, dev = fixture db in
      ignore dev;
      Alcotest.(check int) "q4 count" (Query.q4_heads db)
        (count db "SELECT * FROM r WHERE HEAD(r.Version) = true");
      let rows = Vquel.query db "SELECT * FROM r WHERE HEAD(r.Version) = true AND c0 = 1" in
      match rows with
      | [ r ] ->
          Alcotest.(check (list string)) "branch annotations"
            [ "master"; "dev" ]
            r.Vquel.row_branches
      | _ -> Alcotest.fail "expected exactly one row for key 1")

let test_comparison_operators () =
  with_db (fun db ->
      let _ = fixture db in
      let q op = Printf.sprintf "SELECT * FROM r WHERE r.Version = 'master' AND c0 %s 15" op in
      Alcotest.(check int) "eq" 1 (count db (q "="));
      Alcotest.(check int) "ne" 29 (count db (q "<>"));
      Alcotest.(check int) "lt" 14 (count db (q "<"));
      Alcotest.(check int) "le" 15 (count db (q "<="));
      Alcotest.(check int) "gt" 15 (count db (q ">"));
      Alcotest.(check int) "ge" 16 (count db (q ">=")))

(* ------------------------------------------------------------------ *)
(* projections and aggregates *)

let one_value db q =
  match Vquel.query db q with
  | [ r ] when Array.length r.Vquel.values = 1 -> r.Vquel.values.(0)
  | _ -> Alcotest.fail (Printf.sprintf "expected single cell for %S" q)

let test_projection () =
  with_db (fun db ->
      let _ = fixture db in
      let rows =
        Vquel.query db "SELECT c0, c1 FROM r WHERE r.Version = 'master'"
      in
      Alcotest.(check int) "row count" 30 (List.length rows);
      List.iter
        (fun (r : Vquel.row) ->
          Alcotest.(check int) "two columns" 2 (Array.length r.Vquel.values))
        rows)

let test_aggregates () =
  with_db (fun db ->
      let _ = fixture db in
      (* master: ids 1..30, c1 = id mod 7 *)
      Alcotest.(check bool) "count" true
        (Value.equal (Value.int 30)
           (one_value db "SELECT COUNT(*) FROM r WHERE r.Version = 'master'"));
      Alcotest.(check bool) "sum of ids" true
        (Value.equal (Value.int 465)
           (one_value db "SELECT SUM(c0) FROM r WHERE r.Version = 'master'"));
      Alcotest.(check bool) "avg (integer division)" true
        (Value.equal (Value.int 15)
           (one_value db "SELECT AVG(c0) FROM r WHERE r.Version = 'master'"));
      Alcotest.(check bool) "min" true
        (Value.equal (Value.int 1)
           (one_value db "SELECT MIN(c0) FROM r WHERE r.Version = 'master'"));
      Alcotest.(check bool) "max" true
        (Value.equal (Value.int 30)
           (one_value db "SELECT MAX(c0) FROM r WHERE r.Version = 'master'"));
      (* aggregates respect predicates *)
      Alcotest.(check bool) "filtered count" true
        (Value.equal (Value.int 15)
           (one_value db
              "SELECT COUNT(*) FROM r WHERE r.Version = 'master' AND c0 <= 15"));
      (* empty input still yields one row *)
      Alcotest.(check bool) "empty count" true
        (Value.equal (Value.int 0)
           (one_value db
              "SELECT COUNT(*) FROM r WHERE r.Version = 'master' AND c0 > 999")))

let test_group_by () =
  with_db (fun db ->
      let _ = fixture db in
      let rows =
        Vquel.query db
          "SELECT c1, COUNT(*), SUM(c0) FROM r WHERE r.Version = 'master' \
           GROUP BY c1"
      in
      (* c1 = id mod 7 over ids 1..30: seven groups *)
      Alcotest.(check int) "groups" 7 (List.length rows);
      let total =
        List.fold_left
          (fun acc (r : Vquel.row) ->
            acc + Int64.to_int (Value.to_int_exn r.Vquel.values.(1)))
          0 rows
      in
      Alcotest.(check int) "counts partition rows" 30 total;
      (* check one group exactly: c1 = 3 -> ids 3,10,17,24 *)
      let g3 =
        List.find
          (fun (r : Vquel.row) -> Value.equal r.Vquel.values.(0) (Value.int 3))
          rows
      in
      Alcotest.(check bool) "group count" true
        (Value.equal g3.Vquel.values.(1) (Value.int 4));
      Alcotest.(check bool) "group sum" true
        (Value.equal g3.Vquel.values.(2) (Value.int 54)))

let test_aggregate_over_heads () =
  with_db (fun db ->
      let _ = fixture db in
      (* Q4 + COUNT: number of distinct physical records across heads *)
      Alcotest.(check bool) "count over heads" true
        (Value.equal
           (Value.int (Query.q4_heads db))
           (one_value db "SELECT COUNT(*) FROM r WHERE HEAD(r.Version) = true")))

let () =
  Alcotest.run "vquel"
    [
      ( "parser-planner",
        [
          Alcotest.test_case "four shapes" `Quick test_plan_shapes;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "lexer details" `Quick test_lexer_details;
        ] );
      ( "execution",
        [
          Alcotest.test_case "q1 agreement" `Quick test_q1_agreement;
          Alcotest.test_case "version literals" `Quick test_q1_version_literal;
          Alcotest.test_case "q2 key semantics" `Quick test_q2_key_semantics;
          Alcotest.test_case "q3 agreement" `Quick test_q3_agreement;
          Alcotest.test_case "q4 annotations" `Quick test_q4_annotations;
          Alcotest.test_case "comparison operators" `Quick
            test_comparison_operators;
        ] );
      ( "projection-aggregation",
        [
          Alcotest.test_case "projection" `Quick test_projection;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "aggregate over heads" `Quick
            test_aggregate_over_heads;
        ] );
    ]
