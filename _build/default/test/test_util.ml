(* Unit and property tests for the util substrate: bit vectors, binary
   codecs, RLE, LZ77, binary deltas, the PRNG and the dynamic array. *)

open Decibel_util

let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let test_bitvec_basics () =
  let v = Bitvec.create () in
  Alcotest.(check int) "empty length" 0 (Bitvec.length v);
  Alcotest.(check bool) "unset" false (Bitvec.get v 5);
  Bitvec.set v 5;
  Alcotest.(check bool) "set" true (Bitvec.get v 5);
  Alcotest.(check int) "length grows" 6 (Bitvec.length v);
  Bitvec.clear v 5;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 5);
  Alcotest.(check bool) "empty" true (Bitvec.is_empty v)

let test_bitvec_growth () =
  let v = Bitvec.create ~capacity:1 () in
  Bitvec.set v 1000;
  Alcotest.(check bool) "far bit" true (Bitvec.get v 1000);
  Alcotest.(check bool) "below" false (Bitvec.get v 999);
  Alcotest.(check int) "popcount" 1 (Bitvec.pop_count v)

let test_bitvec_word_boundaries () =
  let v = Bitvec.create () in
  List.iter (fun i -> Bitvec.set v i) [ 0; 63; 64; 127; 128 ];
  Alcotest.(check (list int)) "to_list" [ 0; 63; 64; 127; 128 ]
    (Bitvec.to_list v);
  Alcotest.(check int) "popcount" 5 (Bitvec.pop_count v)

let test_bitvec_next_set () =
  let v = Bitvec.of_list [ 3; 64; 200 ] in
  Alcotest.(check (option int)) "from 0" (Some 3) (Bitvec.next_set v 0);
  Alcotest.(check (option int)) "from 4" (Some 64) (Bitvec.next_set v 4);
  Alcotest.(check (option int)) "from 64" (Some 64) (Bitvec.next_set v 64);
  Alcotest.(check (option int)) "from 65" (Some 200) (Bitvec.next_set v 65);
  Alcotest.(check (option int)) "past end" None (Bitvec.next_set v 201)

let test_bitvec_equal_trailing_zeros () =
  let a = Bitvec.of_list [ 1; 2 ] in
  let b = Bitvec.of_list [ 1; 2 ] in
  Bitvec.clear b 500;
  Alcotest.(check bool) "equal modulo trailing zeros" true (Bitvec.equal a b)

let bits_gen = QCheck2.Gen.(list_size (int_range 0 200) (int_bound 500))

let prop_ops_match_reference =
  QCheck2.Test.make ~name:"bitvec ops match set reference" ~count:300
    QCheck2.Gen.(pair bits_gen bits_gen)
    (fun (la, lb) ->
      let module S = Set.Make (Int) in
      let sa = S.of_list la and sb = S.of_list lb in
      let a = Bitvec.of_list la and b = Bitvec.of_list lb in
      let check op vec set =
        let got = Bitvec.to_list vec in
        let want = S.elements set in
        if got <> want then
          QCheck2.Test.fail_reportf "%s: got %s want %s" op
            (String.concat "," (List.map string_of_int got))
            (String.concat "," (List.map string_of_int want));
        true
      in
      check "union" (Bitvec.union a b) (S.union sa sb)
      && check "inter" (Bitvec.inter a b) (S.inter sa sb)
      && check "diff" (Bitvec.diff a b) (S.diff sa sb)
      && check "xor"
           (Bitvec.xor a b)
           (S.union (S.diff sa sb) (S.diff sb sa))
      && Bitvec.pop_count a = S.cardinal sa)

let prop_serialize_roundtrip =
  QCheck2.Test.make ~name:"bitvec serialize roundtrip" ~count:300 bits_gen
    (fun l ->
      let v = Bitvec.of_list l in
      let buf = Buffer.create 64 in
      Bitvec.serialize buf v;
      let pos = ref 0 in
      let v' = Bitvec.deserialize (Buffer.contents buf) pos in
      Bitvec.equal v v' && !pos = Buffer.length buf)

let prop_union_in_place =
  QCheck2.Test.make ~name:"union_in_place == union" ~count:200
    QCheck2.Gen.(pair bits_gen bits_gen)
    (fun (la, lb) ->
      let a = Bitvec.of_list la and b = Bitvec.of_list lb in
      let expect = Bitvec.union a b in
      Bitvec.union_in_place a b;
      Bitvec.equal a expect)

(* ------------------------------------------------------------------ *)
(* Binio *)

let test_varint_edges () =
  List.iter
    (fun v ->
      let buf = Buffer.create 8 in
      Binio.write_varint buf v;
      let pos = ref 0 in
      Alcotest.(check int)
        (Printf.sprintf "varint %d" v)
        v
        (Binio.read_varint (Buffer.contents buf) pos))
    [ 0; 1; 127; 128; 16383; 16384; 1 lsl 30; 1 lsl 55 ]

let test_varint_negative () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Binio.write_varint: negative") (fun () ->
      Binio.write_varint (Buffer.create 4) (-1))

let test_truncated_input () =
  Alcotest.check_raises "truncated u32"
    (Binio.Corrupt "truncated input: need 4 bytes at 0 (len 2)") (fun () ->
      ignore (Binio.read_u32 "ab" (ref 0)))

let prop_binio_roundtrip =
  QCheck2.Test.make ~name:"binio composite roundtrip" ~count:200
    QCheck2.Gen.(
      triple (string_size (int_bound 50)) (list (int_bound 100000))
        (int_bound 255))
    (fun (s, ints, byte) ->
      let buf = Buffer.create 64 in
      Binio.write_string buf s;
      Binio.write_list Binio.write_varint buf ints;
      Binio.write_u8 buf byte;
      Binio.write_i64 buf (Int64.of_int (List.length ints));
      let data = Buffer.contents buf in
      let pos = ref 0 in
      let s' = Binio.read_string data pos in
      let ints' = Binio.read_list Binio.read_varint data pos in
      let byte' = Binio.read_u8 data pos in
      let n = Binio.read_i64 data pos in
      s = s' && ints = ints' && byte = byte'
      && n = Int64.of_int (List.length ints)
      && !pos = String.length data)

(* ------------------------------------------------------------------ *)
(* Rle *)

let prop_rle_roundtrip =
  QCheck2.Test.make ~name:"rle roundtrip preserves bits and length"
    ~count:300 bits_gen (fun l ->
      let v = Bitvec.of_list l in
      let enc = Rle.encode v in
      let pos = ref 0 in
      let v' = Rle.decode enc pos in
      Bitvec.equal v v'
      && Bitvec.length v = Bitvec.length v'
      && !pos = String.length enc)

let test_rle_compresses_runs () =
  let v = Bitvec.create () in
  for i = 1000 to 2000 do
    Bitvec.set v i
  done;
  let enc = Rle.encode v in
  Alcotest.(check bool) "long runs compress well" true
    (String.length enc < 16)

(* ------------------------------------------------------------------ *)
(* Lz77 and Delta *)

let payload_gen =
  (* biased toward repetitive content so matches actually occur *)
  QCheck2.Gen.(
    let word = string_size ~gen:(char_range 'a' 'f') (int_range 1 8) in
    map (String.concat "") (list_size (int_range 0 60) word))

let prop_lz77_roundtrip =
  QCheck2.Test.make ~name:"lz77 roundtrip" ~count:300 payload_gen (fun s ->
      Lz77.decompress (Lz77.compress s) = s)

let test_lz77_compresses_repetition () =
  let s = String.concat "" (List.init 200 (fun _ -> "abcdefgh")) in
  let c = Lz77.compress s in
  Alcotest.(check bool) "ratio" true
    (String.length c * 10 < String.length s)

let test_lz77_overlapping_match () =
  (* run-length style overlap: match distance smaller than length *)
  let s = String.make 1000 'x' in
  Alcotest.(check string) "roundtrip" s (Lz77.decompress (Lz77.compress s))

let prop_delta_roundtrip =
  QCheck2.Test.make ~name:"delta apply(make) = target" ~count:300
    QCheck2.Gen.(pair payload_gen payload_gen)
    (fun (base, target) ->
      Delta.apply ~base (Delta.make ~base ~target) = target)

let test_delta_similar_inputs_small () =
  let base =
    String.concat "" (List.init 300 (fun i -> Printf.sprintf "row-%d;" i))
  in
  let target = base ^ "row-300;" in
  let d = Delta.make ~base ~target in
  Alcotest.(check bool) "delta much smaller than target" true
    (Delta.size d < String.length target / 10);
  Alcotest.(check string) "applies" target (Delta.apply ~base d)

let test_delta_wrong_base_rejected () =
  let d = Delta.make ~base:"aaaa" ~target:"aaaabbbb" in
  Alcotest.check_raises "length mismatch"
    (Binio.Corrupt "Delta.apply: base length mismatch") (fun () ->
      ignore (Delta.apply ~base:"aaa" d))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let g = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds";
    let f = Prng.float g 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_prng_split_independent () =
  let g = Prng.create 1L in
  let a = Prng.split g and b = Prng.split g in
  Alcotest.(check bool) "substreams differ" true
    (Prng.next_int64 a <> Prng.next_int64 b)

let test_prng_shuffle_permutes () =
  let g = Prng.create 5L in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec () =
  let v = Vec.create ~dummy:(-1) () in
  for i = 0 to 99 do
    let idx = Vec.push v (i * 2) in
    Alcotest.(check int) "index" i idx
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Vec.set v 42 7;
  Alcotest.(check int) "set" 7 (Vec.get v 42);
  Alcotest.check_raises "oob"
    (Invalid_argument "Vec: index 100 out of [0,100)") (fun () ->
      ignore (Vec.get v 100))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "util"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "growth" `Quick test_bitvec_growth;
          Alcotest.test_case "word boundaries" `Quick
            test_bitvec_word_boundaries;
          Alcotest.test_case "next_set" `Quick test_bitvec_next_set;
          Alcotest.test_case "equal ignores trailing zeros" `Quick
            test_bitvec_equal_trailing_zeros;
          qtest prop_ops_match_reference;
          qtest prop_serialize_roundtrip;
          qtest prop_union_in_place;
        ] );
      ( "binio",
        [
          Alcotest.test_case "varint edges" `Quick test_varint_edges;
          Alcotest.test_case "varint negative" `Quick test_varint_negative;
          Alcotest.test_case "truncated input" `Quick test_truncated_input;
          qtest prop_binio_roundtrip;
        ] );
      ( "rle",
        [
          qtest prop_rle_roundtrip;
          Alcotest.test_case "compresses runs" `Quick test_rle_compresses_runs;
        ] );
      ( "lz77",
        [
          qtest prop_lz77_roundtrip;
          Alcotest.test_case "compresses repetition" `Quick
            test_lz77_compresses_repetition;
          Alcotest.test_case "overlapping match" `Quick
            test_lz77_overlapping_match;
        ] );
      ( "delta",
        [
          qtest prop_delta_roundtrip;
          Alcotest.test_case "similar inputs give small deltas" `Quick
            test_delta_similar_inputs_small;
          Alcotest.test_case "wrong base rejected" `Quick
            test_delta_wrong_base_rejected;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick
            test_prng_shuffle_permutes;
        ] );
      ("vec", [ Alcotest.test_case "push/get/set" `Quick test_vec ]);
    ]
