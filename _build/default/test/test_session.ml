(* Tests for sessions and the Database facade: checkout semantics,
   two-phase locking between concurrent sessions (paper §2.2.3), and
   facade conveniences (update_all, heads, branch naming). *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

let row k a = [| Value.int k; Value.int a; Value.int 0 |]

let with_db f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-session" in
  let db = Database.open_ ~lock_timeout_s:0.1 ~scheme:Database.Hybrid ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f db)

let test_session_basic () =
  with_db (fun db ->
      let s = Database.new_session db in
      Database.session_insert s (row 1 10);
      Database.session_insert s (row 2 20);
      let v = Database.session_commit s ~message:"via session" in
      Alcotest.(check bool) "version created" true (v > 0);
      let n = ref 0 in
      Database.session_scan s (fun _ -> incr n);
      Alcotest.(check int) "scan via session" 2 !n;
      Database.end_transaction s)

let test_session_checkout_version () =
  with_db (fun db ->
      let s = Database.new_session db in
      Database.session_insert s (row 1 10);
      let v1 = Database.session_commit s ~message:"v1" in
      Database.session_insert s (row 2 20);
      let _ = Database.session_commit s ~message:"v2" in
      (* point the session at the historical commit: reads see the
         snapshot, writes are rejected (§2.2.3 Checkout) *)
      Database.session_checkout_version s v1;
      let n = ref 0 in
      Database.session_scan s (fun _ -> incr n);
      Alcotest.(check int) "historical view" 1 !n;
      (match Database.session_insert s (row 9 9) with
      | exception Types.Engine_error _ -> ()
      | () -> Alcotest.fail "write at a version checkout must fail");
      (* back to a branch *)
      Database.session_checkout_branch s "master";
      Database.session_insert s (row 3 30);
      Database.end_transaction s)

let test_sessions_conflict () =
  with_db (fun db ->
      let s1 = Database.new_session db in
      let s2 = Database.new_session db in
      Database.session_insert s1 (row 1 10);
      (* s1 holds the exclusive branch lock until it commits; s2's
         write must block and time out (we use a short-lock manager via
         direct acquisition) *)
      let blocked =
        match
          Lock_manager.acquire
            (Database.locks_of db)
            ~owner:9999 ~resource:"master" Lock_manager.Exclusive
        with
        | exception Lock_manager.Deadlock _ -> true
        | () -> false
      in
      Alcotest.(check bool) "second writer blocks" true blocked;
      let _ = Database.session_commit s1 ~message:"s1" in
      (* after s1 commits (releasing locks), s2 can write *)
      Database.session_insert s2 (row 2 20);
      let _ = Database.session_commit s2 ~message:"s2" in
      Alcotest.(check int) "both rows" 2 (Database.count db Vg.master))

let test_branch_from () =
  with_db (fun db ->
      Database.insert db Vg.master (row 1 1);
      let _ = Database.commit db Vg.master ~message:"c" in
      let b = Database.branch_from db ~name:"side" ~of_branch:Vg.master in
      Alcotest.(check int) "inherits" 1 (Database.count db b);
      Alcotest.(check int) "resolvable by name" b
        (Database.branch_named db "side");
      Alcotest.check_raises "unknown branch name"
        (Types.Engine_error "no branch named \"nope\"") (fun () ->
          ignore (Database.branch_named db "nope")))

let test_heads_excludes_retired () =
  with_db (fun db ->
      Database.insert db Vg.master (row 1 1);
      let v = Database.commit db Vg.master ~message:"c" in
      let b = Database.create_branch db ~name:"tmp" ~from:v in
      Alcotest.(check int) "two heads" 2 (List.length (Database.heads db));
      Vg.retire (Database.graph db) b;
      Alcotest.(check (list int)) "one head" [ Vg.master ]
        (Database.heads db))

let () =
  Alcotest.run "session"
    [
      ( "sessions",
        [
          Alcotest.test_case "basic workflow" `Quick test_session_basic;
          Alcotest.test_case "version checkout" `Quick
            test_session_checkout_version;
          Alcotest.test_case "2PL conflict" `Quick test_sessions_conflict;
        ] );
      ( "facade",
        [
          Alcotest.test_case "branch_from" `Quick test_branch_from;
          Alcotest.test_case "heads exclude retired" `Quick
            test_heads_excludes_retired;
        ] );
    ]
