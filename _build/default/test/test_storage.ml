(* Tests for the storage substrate: values, schemas, tuple codecs,
   buffer pool, heap files and the lock manager. *)

open Decibel_util
open Decibel_storage

let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Value / Schema / Tuple *)

let test_value_compare () =
  Alcotest.(check bool) "int eq" true
    (Value.equal (Value.int 3) (Value.Int 3L));
  Alcotest.(check bool) "int lt" true
    (Value.compare (Value.int 1) (Value.int 2) < 0);
  Alcotest.(check bool) "str" true
    (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  Alcotest.(check bool) "cross type ordered" true
    (Value.compare (Value.int 9) (Value.Str "") < 0)

let test_value_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Value.encode buf v;
      let pos = ref 0 in
      Alcotest.(check bool) "roundtrip" true
        (Value.equal v (Value.decode (Buffer.contents buf) pos)))
    [ Value.int 0; Value.int (-5); Value.Int Int64.max_int; Value.Str "";
      Value.Str "hello" ]

let test_schema_validation () =
  let s =
    Schema.make ~name:"t"
      ~columns:
        [
          { Schema.col_name = "id"; col_type = Schema.T_int };
          { Schema.col_name = "name"; col_type = Schema.T_str };
        ]
      ~pk:"id"
  in
  Alcotest.(check int) "pk index" 0 (Schema.pk_index s);
  Alcotest.(check bool) "valid" true
    (Schema.validate s [| Value.int 1; Value.Str "x" |] = Ok ());
  Alcotest.(check bool) "arity" true
    (Result.is_error (Schema.validate s [| Value.int 1 |]));
  Alcotest.(check bool) "type" true
    (Result.is_error (Schema.validate s [| Value.Str "x"; Value.Str "y" |]))

let test_schema_bad_construction () =
  Alcotest.check_raises "unknown pk"
    (Invalid_argument "Schema.make: unknown pk column nope") (fun () ->
      ignore
        (Schema.make ~name:"t"
           ~columns:[ { Schema.col_name = "a"; col_type = Schema.T_int } ]
           ~pk:"nope"));
  Alcotest.check_raises "dup columns"
    (Invalid_argument "Schema.make: duplicate column names") (fun () ->
      ignore
        (Schema.make ~name:"t"
           ~columns:
             [
               { Schema.col_name = "a"; col_type = Schema.T_int };
               { Schema.col_name = "a"; col_type = Schema.T_str };
             ]
           ~pk:"a"))

let test_schema_serialize () =
  let s = Schema.ints ~name:"bench" ~width:7 in
  let buf = Buffer.create 64 in
  Schema.serialize buf s;
  let pos = ref 0 in
  let s' = Schema.deserialize (Buffer.contents buf) pos in
  Alcotest.(check bool) "roundtrip" true (Schema.equal s s')

let mixed_schema =
  Schema.make ~name:"mixed"
    ~columns:
      [
        { Schema.col_name = "id"; col_type = Schema.T_int };
        { Schema.col_name = "label"; col_type = Schema.T_str };
        { Schema.col_name = "score"; col_type = Schema.T_int };
      ]
    ~pk:"id"

let tuple_gen =
  QCheck2.Gen.(
    map2
      (fun (k, s) n ->
        [| Value.int k; Value.Str s; Value.int n |])
      (pair int (string_size (int_bound 30)))
      int)

let prop_tuple_roundtrip =
  QCheck2.Test.make ~name:"tuple codec roundtrip" ~count:300 tuple_gen
    (fun t ->
      let enc = Tuple.encode mixed_schema t in
      let pos = ref 0 in
      let t' = Tuple.decode mixed_schema enc pos in
      Tuple.equal t t'
      && !pos = String.length enc
      && Tuple.encoded_size mixed_schema t = String.length enc)

let test_merge_fields () =
  let base = [| Value.int 1; Value.int 10; Value.int 20 |] in
  let ours = [| Value.int 1; Value.int 99; Value.int 20 |] in
  let theirs = [| Value.int 1; Value.int 10; Value.int 77 |] in
  (match Tuple.merge_fields ~base:(Some base) ~ours ~theirs with
  | Ok m ->
      Alcotest.(check bool) "disjoint merge" true
        (Tuple.equal m [| Value.int 1; Value.int 99; Value.int 77 |])
  | Error _ -> Alcotest.fail "unexpected conflict");
  let theirs2 = [| Value.int 1; Value.int 55; Value.int 20 |] in
  (match Tuple.merge_fields ~base:(Some base) ~ours ~theirs:theirs2 with
  | Ok _ -> Alcotest.fail "expected conflict"
  | Error fields -> Alcotest.(check (list int)) "field 1" [ 1 ] fields);
  (* both sides converging on the same value is not a conflict *)
  match Tuple.merge_fields ~base:(Some base) ~ours ~theirs:ours with
  | Ok m -> Alcotest.(check bool) "same change" true (Tuple.equal m ours)
  | Error _ -> Alcotest.fail "same change conflicted"

(* ------------------------------------------------------------------ *)
(* Buffer pool *)

let page n = Bytes.make 8 (Char.chr (n land 0xff))

let test_pool_hit_miss () =
  let p = Buffer_pool.create ~page_size:8 ~capacity_pages:4 () in
  Alcotest.(check bool) "miss" true (Buffer_pool.find p ~file:0 ~page:0 = None);
  Buffer_pool.add p ~file:0 ~page:0 (page 1);
  Alcotest.(check bool) "hit" true
    (Buffer_pool.find p ~file:0 ~page:0 = Some (page 1));
  let s = Buffer_pool.stats p in
  Alcotest.(check int) "hits" 1 s.Buffer_pool.hits;
  Alcotest.(check int) "misses" 1 s.Buffer_pool.misses

let test_pool_eviction () =
  let p = Buffer_pool.create ~page_size:8 ~capacity_pages:4 () in
  for i = 0 to 9 do
    Buffer_pool.add p ~file:0 ~page:i (page i)
  done;
  (* capacity is 4: at most 4 pages resident *)
  let resident = ref 0 in
  for i = 0 to 9 do
    if Buffer_pool.find p ~file:0 ~page:i <> None then incr resident
  done;
  Alcotest.(check bool) "bounded residency" true (!resident <= 4);
  Alcotest.(check bool) "evictions happened" true
    ((Buffer_pool.stats p).Buffer_pool.evictions >= 6)

let test_pool_invalidate () =
  let p = Buffer_pool.create ~page_size:8 ~capacity_pages:8 () in
  Buffer_pool.add p ~file:0 ~page:0 (page 0);
  Buffer_pool.add p ~file:1 ~page:0 (page 1);
  Buffer_pool.invalidate_file p 0;
  Alcotest.(check bool) "file 0 gone" true
    (Buffer_pool.find p ~file:0 ~page:0 = None);
  Alcotest.(check bool) "file 1 kept" true
    (Buffer_pool.find p ~file:1 ~page:0 <> None);
  Buffer_pool.drop_all p;
  Alcotest.(check bool) "all gone" true
    (Buffer_pool.find p ~file:1 ~page:0 = None)

(* ------------------------------------------------------------------ *)
(* Heap file *)

let with_heap ?(page_size = 64) f =
  let dir = Fsutil.fresh_dir "decibel-heap" in
  let pool = Buffer_pool.create ~page_size ~capacity_pages:16 () in
  let h = Heap_file.create ~pool (Filename.concat dir "h.dat") in
  Fun.protect
    ~finally:(fun () ->
      Heap_file.close h;
      Fsutil.rm_rf dir)
    (fun () -> f pool h)

let test_heap_append_get () =
  with_heap (fun _pool h ->
      let o1 = Heap_file.append h "hello" in
      let o2 = Heap_file.append h "world!" in
      Alcotest.(check string) "r1" "hello" (Heap_file.get h o1);
      Alcotest.(check string) "r2" "world!" (Heap_file.get h o2);
      Alcotest.(check bool) "offsets ordered" true (o2 > o1))

let test_heap_iter_order () =
  with_heap (fun _pool h ->
      let records = List.init 50 (fun i -> Printf.sprintf "record-%03d" i) in
      let offsets = List.map (Heap_file.append h) records in
      let got = ref [] in
      Heap_file.iter h (fun off payload -> got := (off, payload) :: !got);
      Alcotest.(check (list (pair int string)))
        "forward order"
        (List.combine offsets records)
        (List.rev !got);
      let got_rev = ref [] in
      Heap_file.iter_rev h (fun off payload ->
          got_rev := (off, payload) :: !got_rev);
      Alcotest.(check (list (pair int string)))
        "reverse order"
        (List.combine offsets records)
        !got_rev)

let test_heap_ranges () =
  with_heap (fun _pool h ->
      let o1 = Heap_file.append h "aaa" in
      let o2 = Heap_file.append h "bbb" in
      let o3 = Heap_file.append h "ccc" in
      ignore o1;
      let got = ref [] in
      Heap_file.iter ~from:o2 ~upto:o3 h (fun _ p -> got := p :: !got);
      Alcotest.(check (list string)) "window" [ "bbb" ] !got)

let test_heap_spanning_pages () =
  (* record bigger than a page must span cleanly *)
  with_heap ~page_size:64 (fun _pool h ->
      let big = String.init 1000 (fun i -> Char.chr (i mod 256)) in
      let o = Heap_file.append h big in
      Heap_file.flush h;
      Alcotest.(check string) "big record" big (Heap_file.get h o))

let test_heap_read_unflushed () =
  with_heap (fun _pool h ->
      let o = Heap_file.append h "pending" in
      (* no flush: the read must come from the in-memory tail *)
      Alcotest.(check string) "pending read" "pending" (Heap_file.get h o))

let test_heap_reopen () =
  let dir = Fsutil.fresh_dir "decibel-heap2" in
  let pool = Buffer_pool.create ~page_size:64 ~capacity_pages:16 () in
  let path = Filename.concat dir "h.dat" in
  let h = Heap_file.create ~pool path in
  let o1 = Heap_file.append h "persisted" in
  Heap_file.close h;
  let h2 = Heap_file.open_existing ~pool path in
  Fun.protect
    ~finally:(fun () ->
      Heap_file.close h2;
      Fsutil.rm_rf dir)
    (fun () ->
      Alcotest.(check string) "reopened" "persisted" (Heap_file.get h2 o1);
      let o2 = Heap_file.append h2 "more" in
      Alcotest.(check string) "appended after reopen" "more"
        (Heap_file.get h2 o2))

let prop_heap_roundtrip =
  QCheck2.Test.make ~name:"heap file roundtrips arbitrary records"
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 40) (string_size (int_bound 300)))
    (fun records ->
      let result = ref true in
      with_heap ~page_size:128 (fun pool h ->
          let offsets = List.map (Heap_file.append h) records in
          Heap_file.flush h;
          Buffer_pool.drop_all pool;
          List.iter2
            (fun off r -> if Heap_file.get h off <> r then result := false)
            offsets records);
      !result)

(* ------------------------------------------------------------------ *)
(* Lock manager *)

let test_lock_shared_compatible () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Shared;
  Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Shared;
  Alcotest.(check int) "two holders" 2
    (List.length (Lock_manager.holders lm ~resource:"r"));
  Lock_manager.release_all lm ~owner:1;
  Lock_manager.release_all lm ~owner:2

let test_lock_exclusive_blocks () =
  let lm = Lock_manager.create ~timeout_s:0.05 () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  Alcotest.check_raises "second writer times out"
    (Lock_manager.Deadlock "r") (fun () ->
      Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Exclusive);
  Lock_manager.release_all lm ~owner:1;
  (* now it can proceed *)
  Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Exclusive;
  Lock_manager.release_all lm ~owner:2

let test_lock_upgrade () =
  let lm = Lock_manager.create ~timeout_s:0.05 () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Shared;
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  Alcotest.(check bool) "upgraded" true
    (Lock_manager.holders lm ~resource:"r" = [ (1, Lock_manager.Exclusive) ]);
  Lock_manager.release_all lm ~owner:1

let test_lock_reentrant () =
  let lm = Lock_manager.create () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Shared;
  Alcotest.(check int) "single entry" 1
    (List.length (Lock_manager.holders lm ~resource:"r"));
  Lock_manager.release_all lm ~owner:1

let test_lock_concurrent_writers () =
  (* two threads increment a counter under the same exclusive lock;
     without mutual exclusion the unprotected increments would race *)
  let lm = Lock_manager.create ~timeout_s:5.0 () in
  let counter = ref 0 in
  let worker owner () =
    for _ = 1 to 100 do
      Lock_manager.acquire lm ~owner ~resource:"c" Lock_manager.Exclusive;
      let v = !counter in
      Thread.yield ();
      counter := v + 1;
      Lock_manager.release_all lm ~owner
    done
  in
  let t1 = Thread.create (worker 1) () in
  let t2 = Thread.create (worker 2) () in
  Thread.join t1;
  Thread.join t2;
  Alcotest.(check int) "no lost updates" 200 !counter

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "storage"
    [
      ( "value-schema-tuple",
        [
          Alcotest.test_case "value compare" `Quick test_value_compare;
          Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "schema validation" `Quick test_schema_validation;
          Alcotest.test_case "schema bad construction" `Quick
            test_schema_bad_construction;
          Alcotest.test_case "schema serialize" `Quick test_schema_serialize;
          qtest prop_tuple_roundtrip;
          Alcotest.test_case "three-way field merge" `Quick test_merge_fields;
        ] );
      ( "buffer-pool",
        [
          Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
          Alcotest.test_case "eviction bounded" `Quick test_pool_eviction;
          Alcotest.test_case "invalidate" `Quick test_pool_invalidate;
        ] );
      ( "heap-file",
        [
          Alcotest.test_case "append/get" `Quick test_heap_append_get;
          Alcotest.test_case "iter order" `Quick test_heap_iter_order;
          Alcotest.test_case "ranges" `Quick test_heap_ranges;
          Alcotest.test_case "records span pages" `Quick
            test_heap_spanning_pages;
          Alcotest.test_case "read unflushed tail" `Quick
            test_heap_read_unflushed;
          Alcotest.test_case "reopen" `Quick test_heap_reopen;
          qtest prop_heap_roundtrip;
        ] );
      ( "lock-manager",
        [
          Alcotest.test_case "shared compatible" `Quick
            test_lock_shared_compatible;
          Alcotest.test_case "exclusive blocks" `Quick
            test_lock_exclusive_blocks;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "reentrant" `Quick test_lock_reentrant;
          Alcotest.test_case "concurrent writers" `Quick
            test_lock_concurrent_writers;
        ] );
    ]
