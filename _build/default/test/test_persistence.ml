(* Persistence tests: repositories survive close + reopen for every
   physical scheme — contents, historical versions, the version graph,
   and the ability to keep working (including merges) afterwards.  Also
   a property test: closing and reopening at a random point of a random
   operation sequence leaves the database equivalent to one that never
   closed. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:4

let row k a = [| Value.int k; Value.int a; Value.int 0; Value.int 0 |]

let schemes =
  [
    Database.Tuple_first;
    Database.Tuple_first_tuple_oriented;
    Database.Version_first;
    Database.Hybrid;
  ]

let contents db b =
  List.sort compare (List.map Array.to_list (Database.scan_list db b))

let version_contents db v =
  List.sort compare (List.map Array.to_list (Database.scan_version_list db v))

let test_reopen_roundtrip scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-persist" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db = Database.open_ ~scheme ~dir ~schema () in
      Database.insert db Vg.master (row 1 10);
      Database.insert db Vg.master (row 2 20);
      let v1 = Database.commit db Vg.master ~message:"v1" in
      let dev = Database.create_branch db ~name:"dev" ~from:v1 in
      Database.update db dev (row 1 99);
      Database.insert db dev (row 3 30);
      let _ = Database.commit db dev ~message:"dev" in
      Database.delete db Vg.master (Value.int 2);
      (* leave master dirty on purpose: working state must persist *)
      let master_before = contents db Vg.master in
      let dev_before = contents db dev in
      let v1_before = version_contents db v1 in
      Database.close db;

      (* scheme auto-detected from the manifest *)
      let db2 = Database.reopen ~dir () in
      Alcotest.(check bool) "master contents" true
        (contents db2 Vg.master = master_before);
      Alcotest.(check bool) "dev contents" true (contents db2 dev = dev_before);
      Alcotest.(check bool) "v1 contents" true
        (version_contents db2 v1 = v1_before);
      Alcotest.(check bool) "lookup" true
        (Database.lookup db2 dev (Value.int 1) <> None);
      (* graph survived *)
      Alcotest.(check int) "branches" 2
        (Vg.branch_count (Database.graph db2));

      (* keep working: modify, merge, commit, branch from old commit *)
      Database.insert db2 Vg.master (row 9 90);
      let r =
        Database.merge db2 ~into:Vg.master ~from:dev ~policy:Types.Three_way
          ~message:"merge after reopen"
      in
      Alcotest.(check int) "merge conflicts" 0 (List.length r.Types.conflicts);
      let old = Database.create_branch db2 ~name:"old" ~from:v1 in
      Alcotest.(check bool) "branch from historical commit" true
        (contents db2 old = v1_before);
      Database.close db2)

(* double reopen: persistence is stable across multiple cycles *)
let test_reopen_twice scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-persist2" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db = Database.open_ ~scheme ~dir ~schema () in
      Database.insert db Vg.master (row 1 1);
      let _ = Database.commit db Vg.master ~message:"a" in
      Database.close db;
      let db = Database.reopen ~dir () in
      Database.insert db Vg.master (row 2 2);
      let v = Database.commit db Vg.master ~message:"b" in
      Database.close db;
      let db = Database.reopen ~dir () in
      Alcotest.(check int) "count" 2
        (let n = ref 0 in
         Database.scan db Vg.master (fun _ -> incr n);
         !n);
      Alcotest.(check int) "versions survive" 2
        (let n = ref 0 in
         Database.scan_version db v (fun _ -> incr n);
         !n);
      Database.close db)

(* compression survives close/reopen: the flag is in the manifest and
   compressed payloads must decode identically *)
let test_reopen_compressed scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-persist-comp" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db = Database.open_ ~compress:true ~scheme ~dir ~schema () in
      for i = 1 to 30 do
        Database.insert db Vg.master (row i (i mod 4))
      done;
      let v = Database.commit db Vg.master ~message:"c" in
      let before = contents db Vg.master in
      Database.close db;
      let db2 = Database.reopen ~dir () in
      Alcotest.(check bool) "contents" true (contents db2 Vg.master = before);
      Alcotest.(check bool) "version" true
        (version_contents db2 v = before);
      (* new writes after reopen keep compressing and reading back *)
      Database.insert db2 Vg.master (row 99 1);
      Alcotest.(check bool) "post-reopen write" true
        (Database.lookup db2 Vg.master (Value.int 99) <> None);
      Database.close db2)

let test_reopen_missing () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-persist3" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      match Database.reopen ~dir () with
      | exception Types.Engine_error _ -> ()
      | _ -> Alcotest.fail "expected Engine_error for empty dir")

(* property: close+reopen at a random cut point ≡ never closing *)
let reopen_equivalence scheme (cmds, cut_hint) =
  let dir1 = Decibel_util.Fsutil.fresh_dir "decibel-pp1" in
  let dir2 = Decibel_util.Fsutil.fresh_dir "decibel-pp2" in
  Fun.protect
    ~finally:(fun () ->
      Decibel_util.Fsutil.rm_rf dir1;
      Decibel_util.Fsutil.rm_rf dir2)
    (fun () ->
      let n = List.length cmds in
      let cut = if n = 0 then 0 else cut_hint mod (n + 1) in
      let before = List.filteri (fun i _ -> i < cut) cmds in
      let after = List.filteri (fun i _ -> i >= cut) cmds in
      (* continuous run *)
      let db1 = Database.open_ ~scheme ~dir:dir1 ~schema:Cmds.schema () in
      Cmds.apply_cmds db1 cmds;
      (* interrupted run *)
      let db2 = Database.open_ ~scheme ~dir:dir2 ~schema:Cmds.schema () in
      Cmds.apply_cmds db2 before;
      Database.close db2;
      let db2 = Database.reopen ~dir:dir2 () in
      Cmds.apply_cmds ~branch_offset:(Vg.branch_count (Database.graph db2) - 1)
        db2 after;
      let g = Database.graph db1 in
      let ok = ref true in
      if Vg.serialize g <> Vg.serialize (Database.graph db2) then ok := false;
      for b = 0 to Vg.branch_count g - 1 do
        if contents db1 b <> contents db2 b then ok := false
      done;
      for v = 0 to Vg.version_count g - 1 do
        if version_contents db1 v <> version_contents db2 v then ok := false
      done;
      Database.close db1;
      Database.close db2;
      if not !ok then
        QCheck2.Test.fail_reportf "reopen divergence on %s (cut %d): %s"
          (Database.scheme_name scheme) cut (Cmds.print_cmds cmds);
      true)

let reopen_prop scheme =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "close+reopen mid-sequence == continuous: %s"
         (Database.scheme_name scheme))
    ~count:40
    ~print:(fun (cmds, cut) ->
      Printf.sprintf "cut=%d; %s" cut (Cmds.print_cmds cmds))
    QCheck2.Gen.(pair Cmds.cmds_gen (int_bound 1000))
    (reopen_equivalence scheme)

let () =
  Alcotest.run "persistence"
    [
      ( "reopen",
        List.concat_map
          (fun scheme ->
            let n = Database.scheme_name scheme in
            [
              Alcotest.test_case (n ^ " roundtrip") `Quick
                (test_reopen_roundtrip scheme);
              Alcotest.test_case (n ^ " twice") `Quick
                (test_reopen_twice scheme);
              Alcotest.test_case (n ^ " compressed") `Quick
                (test_reopen_compressed scheme);
            ])
          schemes
        @ [ Alcotest.test_case "missing repository" `Quick test_reopen_missing ]
      );
      ( "reopen-equivalence",
        List.map
          (fun s -> QCheck_alcotest.to_alcotest (reopen_prop s))
          schemes );
    ]
