(* Tests for the index library: both bitmap layouts (against a common
   behavioural spec), the compressed commit history, and the per-branch
   primary-key index. *)

open Decibel_util
open Decibel_index
open Decibel_storage

let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Bitmap layouts: same test suite runs against both *)

module type BITMAP = Bitmap_intf.S

let bitmap_cases (module B : BITMAP) =
  let test_branch_clone () =
    let t = B.create () in
    let b0 = B.add_branch t ~from:None in
    let r0 = B.append_row t and r1 = B.append_row t in
    B.set t ~branch:b0 ~row:r0;
    B.set t ~branch:b0 ~row:r1;
    let b1 = B.add_branch t ~from:(Some b0) in
    Alcotest.(check bool) "cloned r0" true (B.get t ~branch:b1 ~row:r0);
    B.clear t ~branch:b1 ~row:r0;
    Alcotest.(check bool) "parent unaffected" true (B.get t ~branch:b0 ~row:r0);
    Alcotest.(check bool) "child cleared" false (B.get t ~branch:b1 ~row:r0)
  in
  let test_many_branches () =
    (* exceed the tuple-oriented initial capacity to force expansion *)
    let t = B.create () in
    let b0 = B.add_branch t ~from:None in
    let rows = List.init 20 (fun _ -> B.append_row t) in
    List.iteri (fun i r -> if i mod 2 = 0 then B.set t ~branch:b0 ~row:r) rows;
    let branches =
      List.init 20 (fun _ -> B.add_branch t ~from:(Some b0))
    in
    List.iter
      (fun b ->
        List.iteri
          (fun i r ->
            Alcotest.(check bool)
              (Printf.sprintf "b%d r%d" b r)
              (i mod 2 = 0)
              (B.get t ~branch:b ~row:r))
          rows)
      branches;
    Alcotest.(check int) "branch count" 21 (B.branch_count t)
  in
  let test_snapshot_immutable () =
    let t = B.create () in
    let b = B.add_branch t ~from:None in
    let r = B.append_row t in
    B.set t ~branch:b ~row:r;
    let snap = B.snapshot t ~branch:b in
    B.clear t ~branch:b ~row:r;
    Alcotest.(check bool) "snapshot keeps bit" true (Bitvec.get snap r);
    Alcotest.(check bool) "live cleared" false (B.get t ~branch:b ~row:r)
  in
  let test_overwrite_column () =
    let t = B.create () in
    let b = B.add_branch t ~from:None in
    let _ = B.append_row t and _ = B.append_row t and _ = B.append_row t in
    B.overwrite_column t ~branch:b (Bitvec.of_list [ 0; 2 ]);
    Alcotest.(check bool) "r0" true (B.get t ~branch:b ~row:0);
    Alcotest.(check bool) "r1" false (B.get t ~branch:b ~row:1);
    Alcotest.(check bool) "r2" true (B.get t ~branch:b ~row:2)
  in
  let test_row_membership () =
    let t = B.create () in
    let b0 = B.add_branch t ~from:None in
    let b1 = B.add_branch t ~from:None in
    let b2 = B.add_branch t ~from:None in
    let r = B.append_row t in
    B.set t ~branch:b0 ~row:r;
    B.set t ~branch:b2 ~row:r;
    ignore b1;
    Alcotest.(check (list int)) "membership" [ b0; b2 ]
      (B.row_membership t ~row:r)
  in
  [
    Alcotest.test_case "branch clone isolates" `Quick test_branch_clone;
    Alcotest.test_case "many branches / expansion" `Quick test_many_branches;
    Alcotest.test_case "snapshot immutable" `Quick test_snapshot_immutable;
    Alcotest.test_case "overwrite column" `Quick test_overwrite_column;
    Alcotest.test_case "row membership" `Quick test_row_membership;
  ]

(* layouts agree with each other on random operations *)
type bop = Add_branch of int option | Set of int * int | Clear of int * int

let bop_gen nbranches_hint =
  QCheck2.Gen.(
    frequency
      [
        (1, map (fun p -> Add_branch (if p mod 3 = 0 then None else Some p)) (int_bound nbranches_hint));
        (5, map2 (fun b r -> Set (b, r)) (int_bound 8) (int_bound 100));
        (2, map2 (fun b r -> Clear (b, r)) (int_bound 8) (int_bound 100));
      ])

let prop_layouts_agree =
  QCheck2.Test.make ~name:"branch- and tuple-oriented layouts agree"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (bop_gen 8))
    (fun ops ->
      let a = Branch_bitmap.create () and b = Tuple_bitmap.create () in
      let apply (type tt) (module B : BITMAP with type t = tt) (t : tt) op =
        let nb = B.branch_count t in
        match op with
        | Add_branch None -> ignore (B.add_branch t ~from:None)
        | Add_branch (Some p) ->
            let from = if nb = 0 then None else Some (p mod nb) in
            ignore (B.add_branch t ~from)
        | Set (br, row) ->
            if nb > 0 then B.set t ~branch:(br mod nb) ~row
        | Clear (br, row) ->
            if nb > 0 then B.clear t ~branch:(br mod nb) ~row
      in
      List.iter
        (fun op ->
          apply (module Branch_bitmap) a op;
          apply (module Tuple_bitmap) b op)
        ops;
      if Branch_bitmap.branch_count a <> Tuple_bitmap.branch_count b then
        false
      else begin
        let ok = ref true in
        for br = 0 to Branch_bitmap.branch_count a - 1 do
          if
            not
              (Bitvec.equal
                 (Branch_bitmap.snapshot a ~branch:br)
                 (Tuple_bitmap.snapshot b ~branch:br))
          then ok := false
        done;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Commit history *)

let with_history f =
  let dir = Fsutil.fresh_dir "decibel-hist" in
  let h = Commit_history.create ~path:(Filename.concat dir "h.chx") in
  Fun.protect
    ~finally:(fun () ->
      Commit_history.close h;
      Fsutil.rm_rf dir)
    (fun () -> f dir h)

let test_history_checkout () =
  with_history (fun _dir h ->
      let snaps =
        List.init 50 (fun i ->
            Bitvec.of_list (List.init (i + 1) (fun j -> j * 3)))
      in
      let idxs = List.map (Commit_history.commit h) snaps in
      Alcotest.(check (list int)) "indices" (List.init 50 Fun.id) idxs;
      List.iteri
        (fun i snap ->
          Alcotest.(check bool)
            (Printf.sprintf "checkout %d" i)
            true
            (Bitvec.equal snap (Commit_history.checkout h i)))
        snaps)

let test_history_layering_bounds_replay () =
  with_history (fun _dir h ->
      for i = 0 to 99 do
        ignore (Commit_history.commit h (Bitvec.of_list [ i ]))
      done;
      (* with stride S, replay length is at most i/S + S *)
      for i = 0 to 99 do
        let r = Commit_history.replay_length h i in
        let s = Commit_history.layer_stride in
        Alcotest.(check bool)
          (Printf.sprintf "replay bound at %d" i)
          true
          (r <= (i / s) + s)
      done;
      (* far checkout strictly cheaper than replaying every delta *)
      Alcotest.(check bool) "layering helps" true
        (Commit_history.replay_length h 99 < 99))

let test_history_persistence () =
  let dir = Fsutil.fresh_dir "decibel-hist2" in
  let path = Filename.concat dir "h.chx" in
  let h = Commit_history.create ~path in
  let snaps =
    List.init 40 (fun i -> Bitvec.of_list (List.init i (fun j -> j * 2)))
  in
  List.iter (fun s -> ignore (Commit_history.commit h s)) snaps;
  let size = Commit_history.disk_bytes h in
  Commit_history.close h;
  let h2 = Commit_history.open_existing ~path in
  Fun.protect
    ~finally:(fun () ->
      Commit_history.close h2;
      Fsutil.rm_rf dir)
    (fun () ->
      Alcotest.(check int) "count" 40 (Commit_history.count h2);
      Alcotest.(check int) "disk size" size (Commit_history.disk_bytes h2);
      List.iteri
        (fun i snap ->
          Alcotest.(check bool)
            (Printf.sprintf "reloaded checkout %d" i)
            true
            (Bitvec.equal snap (Commit_history.checkout h2 i)))
        snaps;
      (* appending after reload continues correctly *)
      let extra = Bitvec.of_list [ 1000 ] in
      let idx = Commit_history.commit h2 extra in
      Alcotest.(check bool) "append after reload" true
        (Bitvec.equal extra (Commit_history.checkout h2 idx)))

let prop_history_roundtrip =
  QCheck2.Test.make ~name:"commit history checkout == snapshot" ~count:60
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (list_size (int_bound 50) (int_bound 300)))
    (fun snapshots ->
      let result = ref true in
      with_history (fun _dir h ->
          let snaps = List.map Bitvec.of_list snapshots in
          let idxs = List.map (Commit_history.commit h) snaps in
          List.iter2
            (fun snap i ->
              if not (Bitvec.equal snap (Commit_history.checkout h i)) then
                result := false)
            snaps idxs);
      !result)

(* ------------------------------------------------------------------ *)
(* Pk index *)

let test_pk_basic () =
  let t = Pk_index.create () in
  let b0 = Pk_index.add_branch t ~from:None in
  Pk_index.set t ~branch:b0 (Value.int 1) 100;
  Pk_index.set t ~branch:b0 (Value.int 2) 200;
  Alcotest.(check (option int)) "find" (Some 100)
    (Pk_index.find t ~branch:b0 (Value.int 1));
  Alcotest.(check int) "cardinal" 2 (Pk_index.cardinal t ~branch:b0);
  Pk_index.remove t ~branch:b0 (Value.int 1);
  Alcotest.(check (option int)) "removed" None
    (Pk_index.find t ~branch:b0 (Value.int 1))

let test_pk_branch_clone () =
  let t = Pk_index.create () in
  let b0 = Pk_index.add_branch t ~from:None in
  Pk_index.set t ~branch:b0 (Value.int 1) 100;
  let b1 = Pk_index.add_branch t ~from:(Some b0) in
  Pk_index.set t ~branch:b1 (Value.int 1) 999;
  Alcotest.(check (option int)) "parent keeps" (Some 100)
    (Pk_index.find t ~branch:b0 (Value.int 1));
  Alcotest.(check (option int)) "child overrides" (Some 999)
    (Pk_index.find t ~branch:b1 (Value.int 1))

let test_pk_unknown_branch () =
  let t = Pk_index.create () in
  Alcotest.check_raises "unknown branch"
    (Invalid_argument "Pk_index: unknown branch 0") (fun () ->
      ignore (Pk_index.find t ~branch:0 (Value.int 1)))

let () =
  Alcotest.run "index"
    [
      ("branch-bitmap", bitmap_cases (module Branch_bitmap));
      ("tuple-bitmap", bitmap_cases (module Tuple_bitmap));
      ("layout-agreement", [ qtest prop_layouts_agree ]);
      ( "commit-history",
        [
          Alcotest.test_case "checkout all" `Quick test_history_checkout;
          Alcotest.test_case "layering bounds replay" `Quick
            test_history_layering_bounds_replay;
          Alcotest.test_case "persistence" `Quick test_history_persistence;
          qtest prop_history_roundtrip;
        ] );
      ( "pk-index",
        [
          Alcotest.test_case "basic" `Quick test_pk_basic;
          Alcotest.test_case "branch clone" `Quick test_pk_branch_clone;
          Alcotest.test_case "unknown branch" `Quick test_pk_unknown_branch;
        ] );
    ]
