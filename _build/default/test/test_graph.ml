(* Tests for the version graph: DAG construction, heads, ancestry, LCA
   and persistence. *)

module Vg = Decibel_graph.Version_graph

let qtest t = QCheck_alcotest.to_alcotest t

let test_initial_state () =
  let g = Vg.create () in
  Alcotest.(check int) "one version" 1 (Vg.version_count g);
  Alcotest.(check int) "one branch" 1 (Vg.branch_count g);
  Alcotest.(check int) "master head is root" Vg.root_version
    (Vg.head g Vg.master);
  Alcotest.(check bool) "root is head" true (Vg.is_head g Vg.root_version)

let test_commit_advances_head () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"one" in
  let v2 = Vg.commit g Vg.master ~message:"two" in
  Alcotest.(check int) "head" v2 (Vg.head g Vg.master);
  Alcotest.(check (list int)) "parents" [ v1 ] (Vg.version g v2).Vg.parents;
  Alcotest.(check bool) "old not head" false (Vg.is_head g v1)

let test_branching () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"one" in
  let b = Vg.create_branch g ~name:"dev" ~from:v1 in
  Alcotest.(check int) "branch head is base" v1 (Vg.head g b);
  Alcotest.(check bool) "named lookup" true
    (match Vg.branch_by_name g "dev" with
    | Some br -> br.Vg.bid = b
    | None -> false);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Version_graph.create_branch: name taken: dev")
    (fun () -> ignore (Vg.create_branch g ~name:"dev" ~from:v1))

let test_merge_commit_parents () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"m1" in
  let b = Vg.create_branch g ~name:"dev" ~from:v1 in
  let v2 = Vg.commit g b ~message:"d1" in
  let v3 = Vg.commit g Vg.master ~message:"m2" in
  let m = Vg.merge_commit g ~into:Vg.master ~theirs:v2 ~message:"merge" in
  Alcotest.(check (list int)) "merge parents" [ v3; v2 ]
    (Vg.version g m).Vg.parents;
  Alcotest.(check int) "merge is head" m (Vg.head g Vg.master)

let test_lca_linear () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"1" in
  let v2 = Vg.commit g Vg.master ~message:"2" in
  Alcotest.(check int) "lca(v1,v2) = v1" v1 (Vg.lca g v1 v2);
  Alcotest.(check int) "lca(v,v) = v" v2 (Vg.lca g v2 v2);
  Alcotest.(check int) "lca with root" Vg.root_version
    (Vg.lca g Vg.root_version v2)

let test_lca_fork () =
  let g = Vg.create () in
  let base = Vg.commit g Vg.master ~message:"base" in
  let b = Vg.create_branch g ~name:"dev" ~from:base in
  let vb = Vg.commit g b ~message:"dev" in
  let vm = Vg.commit g Vg.master ~message:"master" in
  Alcotest.(check int) "fork lca" base (Vg.lca g vb vm)

let test_lca_after_merge () =
  let g = Vg.create () in
  let base = Vg.commit g Vg.master ~message:"base" in
  let b = Vg.create_branch g ~name:"dev" ~from:base in
  let vb = Vg.commit g b ~message:"dev1" in
  let m = Vg.merge_commit g ~into:Vg.master ~theirs:vb ~message:"merge" in
  (* after merging dev into master, dev's tip is an ancestor of master,
     so the next merge's base is dev's commit itself *)
  let vb2 = Vg.commit g b ~message:"dev2" in
  Alcotest.(check int) "lca after merge" vb (Vg.lca g m vb2)

let test_ancestry () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"1" in
  let b = Vg.create_branch g ~name:"dev" ~from:v1 in
  let v2 = Vg.commit g b ~message:"2" in
  Alcotest.(check bool) "root ancestor of all" true
    (Vg.is_ancestor g ~ancestor:Vg.root_version v2);
  Alcotest.(check bool) "reflexive" true (Vg.is_ancestor g ~ancestor:v2 v2);
  Alcotest.(check bool) "not descendant" false
    (Vg.is_ancestor g ~ancestor:v2 v1);
  Alcotest.(check (list int)) "ancestors descend" [ v2; v1; 0 ]
    (Vg.ancestors g v2)

let test_lineage_precedence () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"1" in
  let b = Vg.create_branch g ~name:"dev" ~from:v1 in
  let vb = Vg.commit g b ~message:"dev" in
  let vm = Vg.commit g Vg.master ~message:"m2" in
  let m = Vg.merge_commit g ~into:Vg.master ~theirs:vb ~message:"merge" in
  (* first parent (ours, vm) explored before second (vb) *)
  Alcotest.(check (list int)) "lineage order" [ m; vm; v1; 0; vb ]
    (Vg.lineage g m)

let test_retire () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"1" in
  let b = Vg.create_branch g ~name:"dev" ~from:v1 in
  Vg.retire g b;
  Alcotest.(check bool) "inactive" false (Vg.branch g b).Vg.active;
  Alcotest.(check bool) "master active" true
    (Vg.branch g Vg.master).Vg.active

let test_serialize_roundtrip () =
  let g = Vg.create () in
  let v1 = Vg.commit g Vg.master ~message:"first" in
  let b = Vg.create_branch g ~name:"dev" ~from:v1 in
  let vb = Vg.commit g b ~message:"dev work" in
  let _ = Vg.merge_commit g ~into:Vg.master ~theirs:vb ~message:"merge" in
  Vg.retire g b;
  let g' = Vg.deserialize (Vg.serialize g) in
  Alcotest.(check string) "identical dump"
    (Format.asprintf "%a" Vg.pp g)
    (Format.asprintf "%a" Vg.pp g');
  Alcotest.(check string) "stable serialization" (Vg.serialize g)
    (Vg.serialize g')

(* Random DAG property: the LCA is a common ancestor, and no common
   ancestor has a greater id. *)
let ops_gen =
  QCheck2.Gen.(list_size (int_range 1 40) (pair (int_bound 3) (int_bound 1000)))

let build_random_graph ops =
  let g = Vg.create () in
  List.iteri
    (fun i (kind, x) ->
      let nb = Vg.branch_count g in
      match kind with
      | 0 | 1 -> ignore (Vg.commit g (x mod nb) ~message:(string_of_int i))
      | 2 ->
          ignore
            (Vg.create_branch g
               ~name:(Printf.sprintf "r%d" i)
               ~from:(x mod Vg.version_count g))
      | _ ->
          if nb >= 2 then begin
            let into = x mod nb and from = (x + 1) mod nb in
            if into <> from then
              ignore
                (Vg.merge_commit g ~into ~theirs:(Vg.head g from)
                   ~message:(string_of_int i))
          end)
    ops;
  g

let prop_lca_sound =
  QCheck2.Test.make ~name:"lca is a maximal common ancestor" ~count:200
    QCheck2.Gen.(triple ops_gen (int_bound 1000) (int_bound 1000))
    (fun (ops, ha, hb) ->
      let g = build_random_graph ops in
      let n = Vg.version_count g in
      let a = ha mod n and b = hb mod n in
      let l = Vg.lca g a b in
      let common v = Vg.is_ancestor g ~ancestor:v a && Vg.is_ancestor g ~ancestor:v b in
      if not (common l) then
        QCheck2.Test.fail_reportf "lca %d not common ancestor of %d,%d" l a b;
      (* no common ancestor with a greater id *)
      let ok = ref true in
      for v = l + 1 to n - 1 do
        if common v then ok := false
      done;
      !ok)

let prop_serialize_random =
  QCheck2.Test.make ~name:"serialize roundtrips random graphs" ~count:200
    ops_gen (fun ops ->
      let g = build_random_graph ops in
      Vg.serialize (Vg.deserialize (Vg.serialize g)) = Vg.serialize g)

let () =
  Alcotest.run "graph"
    [
      ( "version-graph",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "commit advances head" `Quick
            test_commit_advances_head;
          Alcotest.test_case "branching" `Quick test_branching;
          Alcotest.test_case "merge parents" `Quick test_merge_commit_parents;
          Alcotest.test_case "lca linear" `Quick test_lca_linear;
          Alcotest.test_case "lca fork" `Quick test_lca_fork;
          Alcotest.test_case "lca after merge" `Quick test_lca_after_merge;
          Alcotest.test_case "ancestry" `Quick test_ancestry;
          Alcotest.test_case "lineage precedence" `Quick
            test_lineage_precedence;
          Alcotest.test_case "retire" `Quick test_retire;
          Alcotest.test_case "serialize roundtrip" `Quick
            test_serialize_roundtrip;
          qtest prop_lca_sound;
          qtest prop_serialize_random;
        ] );
    ]
