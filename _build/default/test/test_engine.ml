(* Behavioural tests for the versioned storage engines.  Every test in
   [engine_cases] runs against all three physical schemes (plus the
   tuple-oriented bitmap variant and the model oracle), so the suite
   checks the engines agree on the paper's semantics (§2.2.3). *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:4

let row k a b c =
  [| Value.int k; Value.int a; Value.int b; Value.int c |]

let key k = Value.int k

let with_db ?(compress = false) scheme f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test" in
  let db = Database.open_ ~compress ~scheme ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f db)

let sorted_tuples l =
  List.sort compare (List.map (fun t -> Array.to_list t) l)

let check_contents ?(msg = "contents") db b expected =
  let got = sorted_tuples (Database.scan_list db b) in
  let want = sorted_tuples expected in
  Alcotest.(check (list (list (testable Value.pp Value.equal)))) msg want got

let check_version_contents ?(msg = "version contents") db v expected =
  let got = sorted_tuples (Database.scan_version_list db v) in
  let want = sorted_tuples expected in
  Alcotest.(check (list (list (testable Value.pp Value.equal)))) msg want got

(* ------------------------------------------------------------------ *)

let test_insert_scan db =
  let b = Vg.master in
  Database.insert db b (row 1 10 20 30);
  Database.insert db b (row 2 11 21 31);
  check_contents db b [ row 1 10 20 30; row 2 11 21 31 ]

let test_update_delete db =
  let b = Vg.master in
  Database.insert db b (row 1 10 20 30);
  Database.insert db b (row 2 11 21 31);
  Database.update db b (row 1 99 20 30);
  Database.delete db b (key 2);
  check_contents db b [ row 1 99 20 30 ];
  Alcotest.check_raises "dup insert" (Types.Engine_error "")
    (fun () ->
      try Database.insert db b (row 1 0 0 0)
      with Types.Engine_error _ -> raise (Types.Engine_error ""));
  Alcotest.check_raises "absent update" (Types.Engine_error "")
    (fun () ->
      try Database.update db b (row 7 0 0 0)
      with Types.Engine_error _ -> raise (Types.Engine_error ""))

let test_lookup db =
  let b = Vg.master in
  Database.insert db b (row 5 1 2 3);
  (match Database.lookup db b (key 5) with
  | Some t -> Alcotest.(check bool) "found" true (Tuple.equal t (row 5 1 2 3))
  | None -> Alcotest.fail "lookup miss");
  Alcotest.(check bool) "absent" true (Database.lookup db b (key 9) = None)

let test_branch_isolation db =
  let m = Vg.master in
  Database.insert db m (row 1 10 0 0);
  Database.insert db m (row 2 20 0 0);
  let v1 = Database.commit db m ~message:"base" in
  let child = Database.create_branch db ~name:"child" ~from:v1 in
  (* modifications in the child are invisible to the parent and vice
     versa (§2.2.3 Branch) *)
  Database.insert db child (row 3 30 0 0);
  Database.update db child (row 1 99 0 0);
  Database.insert db m (row 4 40 0 0);
  check_contents ~msg:"child" db child
    [ row 1 99 0 0; row 2 20 0 0; row 3 30 0 0 ];
  check_contents ~msg:"master" db m
    [ row 1 10 0 0; row 2 20 0 0; row 4 40 0 0 ]

let test_commit_immutable db =
  let m = Vg.master in
  Database.insert db m (row 1 1 1 1);
  let v1 = Database.commit db m ~message:"one" in
  Database.update db m (row 1 2 2 2);
  Database.insert db m (row 2 5 5 5);
  let v2 = Database.commit db m ~message:"two" in
  Database.delete db m (key 1);
  check_version_contents ~msg:"v1" db v1 [ row 1 1 1 1 ];
  check_version_contents ~msg:"v2" db v2 [ row 1 2 2 2; row 2 5 5 5 ];
  check_contents ~msg:"head" db m [ row 2 5 5 5 ];
  check_version_contents ~msg:"root empty" db Vg.root_version []

let test_branch_from_old_commit db =
  let m = Vg.master in
  Database.insert db m (row 1 1 0 0);
  let v1 = Database.commit db m ~message:"v1" in
  Database.insert db m (row 2 2 0 0);
  let _v2 = Database.commit db m ~message:"v2" in
  Database.insert db m (row 3 3 0 0);
  (* branch rooted at the historical commit sees only its state *)
  let old = Database.create_branch db ~name:"old" ~from:v1 in
  check_contents ~msg:"old branch" db old [ row 1 1 0 0 ];
  Database.insert db old (row 9 9 0 0);
  check_contents ~msg:"old branch after insert" db old
    [ row 1 1 0 0; row 9 9 0 0 ];
  check_contents ~msg:"master untouched" db m
    [ row 1 1 0 0; row 2 2 0 0; row 3 3 0 0 ]

let test_diff db =
  let m = Vg.master in
  Database.insert db m (row 1 1 0 0);
  Database.insert db m (row 2 2 0 0);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"b" ~from:v in
  Database.update db b (row 2 99 0 0);
  Database.insert db b (row 3 3 0 0);
  Database.delete db m (key 1);
  let pos = ref [] and neg = ref [] in
  Database.diff db m b
    ~pos:(fun t -> pos := t :: !pos)
    ~neg:(fun t -> neg := t :: !neg);
  (* master: {2(old)}; b: {1, 2(new), 3} *)
  Alcotest.(check (list (list (testable Value.pp Value.equal))))
    "pos" (sorted_tuples [ row 2 2 0 0 ]) (sorted_tuples !pos);
  Alcotest.(check (list (list (testable Value.pp Value.equal))))
    "neg"
    (sorted_tuples [ row 1 1 0 0; row 2 99 0 0; row 3 3 0 0 ])
    (sorted_tuples !neg)

let test_multi_scan db =
  let m = Vg.master in
  Database.insert db m (row 1 1 0 0);
  Database.insert db m (row 2 2 0 0);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"b" ~from:v in
  Database.update db b (row 2 99 0 0);
  Database.insert db b (row 3 3 0 0);
  (* reduce the annotated output to per-branch multisets *)
  let per_branch = Hashtbl.create 8 in
  Database.multi_scan db [ m; b ] (fun (a : Types.annotated) ->
      List.iter
        (fun br ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt per_branch br)
          in
          Hashtbl.replace per_branch br (a.Types.tuple :: prev))
        a.Types.in_branches);
  let check_branch br expected =
    let got =
      sorted_tuples (Option.value ~default:[] (Hashtbl.find_opt per_branch br))
    in
    Alcotest.(check (list (list (testable Value.pp Value.equal))))
      (Printf.sprintf "branch %d" br)
      (sorted_tuples expected) got
  in
  check_branch m [ row 1 1 0 0; row 2 2 0 0 ];
  check_branch b [ row 1 1 0 0; row 2 99 0 0; row 3 3 0 0 ]

let test_merge_theirs_only db =
  let m = Vg.master in
  Database.insert db m (row 1 1 0 0);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"dev" ~from:v in
  Database.insert db b (row 2 2 0 0);
  Database.update db b (row 1 5 0 0);
  let _ = Database.commit db b ~message:"dev work" in
  let r =
    Database.merge db ~into:m ~from:b ~policy:Types.Three_way ~message:"m"
  in
  Alcotest.(check int) "no conflicts" 0 (List.length r.Types.conflicts);
  check_contents db m [ row 1 5 0 0; row 2 2 0 0 ];
  (* merged version is the new head of master and scannable *)
  check_version_contents db r.Types.merge_version
    [ row 1 5 0 0; row 2 2 0 0 ]

let test_merge_field_level db =
  let m = Vg.master in
  Database.insert db m (row 1 10 20 30);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"dev" ~from:v in
  (* ours changes field 1; theirs changes field 3: disjoint, automerge *)
  Database.update db m (row 1 99 20 30);
  Database.update db b (row 1 10 20 77);
  let _ = Database.commit db b ~message:"dev" in
  let r =
    Database.merge db ~into:m ~from:b ~policy:Types.Three_way ~message:"m"
  in
  Alcotest.(check int) "no conflicts" 0 (List.length r.Types.conflicts);
  check_contents db m [ row 1 99 20 77 ]

let test_merge_conflict_precedence db =
  let m = Vg.master in
  Database.insert db m (row 1 10 20 30);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"dev" ~from:v in
  (* both change field 1: conflicting field, destination precedence *)
  Database.update db m (row 1 111 20 30);
  Database.update db b (row 1 222 20 99);
  let _ = Database.commit db b ~message:"dev" in
  let r =
    Database.merge db ~into:m ~from:b ~policy:Types.Three_way ~message:"m"
  in
  Alcotest.(check int) "one conflict" 1 (List.length r.Types.conflicts);
  let c = List.hd r.Types.conflicts in
  Alcotest.(check (list int)) "conflicting fields" [ 1 ] c.Types.fields;
  (* conflicting field from ours, non-conflicting theirs change kept *)
  check_contents db m [ row 1 111 20 99 ]

let test_merge_two_way db =
  let m = Vg.master in
  Database.insert db m (row 1 10 0 0);
  Database.insert db m (row 2 20 0 0);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"dev" ~from:v in
  Database.update db m (row 1 11 0 0);
  Database.update db b (row 1 12 0 0);
  Database.update db b (row 2 22 0 0);
  let _ = Database.commit db b ~message:"dev" in
  let r =
    Database.merge db ~into:m ~from:b ~policy:Types.Theirs ~message:"m"
  in
  Alcotest.(check int) "conflict count" 1 (List.length r.Types.conflicts);
  (* theirs precedence: both keys take dev's state *)
  check_contents db m [ row 1 12 0 0; row 2 22 0 0 ]

let test_merge_delete_vs_modify db =
  let m = Vg.master in
  Database.insert db m (row 1 10 0 0);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"dev" ~from:v in
  Database.delete db m (key 1);
  Database.update db b (row 1 99 0 0);
  let _ = Database.commit db b ~message:"dev" in
  let r =
    Database.merge db ~into:m ~from:b ~policy:Types.Three_way ~message:"m"
  in
  Alcotest.(check int) "conflict" 1 (List.length r.Types.conflicts);
  (* destination precedence: stays deleted *)
  check_contents db m []

let test_merge_then_continue db =
  (* repeated merges with continued work on both sides: exercises LCAs
     that sit inside segment files and merge-commit lineage *)
  let m = Vg.master in
  Database.insert db m (row 1 1 0 0);
  let v = Database.commit db m ~message:"base" in
  let b = Database.create_branch db ~name:"dev" ~from:v in
  Database.insert db b (row 2 2 0 0);
  let _ = Database.commit db b ~message:"dev1" in
  let _ =
    Database.merge db ~into:m ~from:b ~policy:Types.Three_way ~message:"m1"
  in
  check_contents ~msg:"after m1" db m [ row 1 1 0 0; row 2 2 0 0 ];
  (* continue on dev, then merge again *)
  Database.update db b (row 2 22 0 0);
  Database.insert db b (row 3 3 0 0);
  let _ = Database.commit db b ~message:"dev2" in
  Database.update db m (row 1 11 0 0);
  let _ =
    Database.merge db ~into:m ~from:b ~policy:Types.Three_way ~message:"m2"
  in
  check_contents ~msg:"after m2" db m
    [ row 1 11 0 0; row 2 22 0 0; row 3 3 0 0 ];
  (* dev unaffected by merges into master *)
  check_contents ~msg:"dev" db b [ row 1 1 0 0; row 2 22 0 0; row 3 3 0 0 ]

let test_deep_chain db =
  (* deep branching strategy in miniature: a chain of branches, each
     built from the previous head *)
  let prev_branch = ref Vg.master in
  for i = 1 to 8 do
    Database.insert db !prev_branch (row (100 + i) i 0 0);
    let v =
      Database.commit db !prev_branch
        ~message:(Printf.sprintf "level %d" i)
    in
    let nb =
      Database.create_branch db ~name:(Printf.sprintf "deep%d" i) ~from:v
    in
    prev_branch := nb
  done;
  Alcotest.(check int) "tail size" 8 (Database.count db !prev_branch)

let test_flat_fanout db =
  let m = Vg.master in
  for i = 1 to 5 do
    Database.insert db m (row i i 0 0)
  done;
  let v = Database.commit db m ~message:"base" in
  let children =
    List.init 6 (fun i ->
        Database.create_branch db ~name:(Printf.sprintf "flat%d" i) ~from:v)
  in
  List.iteri
    (fun i c -> Database.insert db c (row (100 + i) i 0 0))
    children;
  List.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "child %d" i) 6
        (Database.count db c))
    children;
  Alcotest.(check int) "master" 5 (Database.count db m)

let test_update_all db =
  let m = Vg.master in
  for i = 1 to 10 do
    Database.insert db m (row i i 0 0)
  done;
  let before = Database.dataset_bytes db in
  let n =
    Database.update_all db m (fun t ->
        let t' = Array.copy t in
        t'.(1) <- Value.int 777;
        t')
  in
  Alcotest.(check int) "touched" 10 n;
  let after = Database.dataset_bytes db in
  (* the in-memory model does not track bytes; physical engines must
     grow by roughly the branch size (full record copies, §5.5) *)
  if Database.scheme_of db <> "model" then
    Alcotest.(check bool) "dataset grew" true (after > before);
  Database.scan db m (fun t ->
      Alcotest.(check bool) "updated" true (Value.equal t.(1) (Value.int 777)))

let engine_cases =
  [
    ("insert-scan", test_insert_scan);
    ("update-delete", test_update_delete);
    ("lookup", test_lookup);
    ("branch-isolation", test_branch_isolation);
    ("commit-immutable", test_commit_immutable);
    ("branch-from-old-commit", test_branch_from_old_commit);
    ("diff", test_diff);
    ("multi-scan", test_multi_scan);
    ("merge-theirs-only", test_merge_theirs_only);
    ("merge-field-level", test_merge_field_level);
    ("merge-conflict-precedence", test_merge_conflict_precedence);
    ("merge-two-way", test_merge_two_way);
    ("merge-delete-vs-modify", test_merge_delete_vs_modify);
    ("merge-then-continue", test_merge_then_continue);
    ("deep-chain", test_deep_chain);
    ("flat-fanout", test_flat_fanout);
    ("update-all", test_update_all);
  ]

let suite_for ?(compress = false) scheme =
  ( (Database.scheme_name scheme ^ if compress then " (compressed)" else ""),
    List.map
      (fun (name, f) ->
        Alcotest.test_case name `Quick (fun () -> with_db ~compress scheme f))
      engine_cases )

let () =
  Alcotest.run "engines"
    (List.map suite_for
       [
         Database.Tuple_first;
         Database.Tuple_first_tuple_oriented;
         Database.Version_first;
         Database.Hybrid;
         Database.Model;
       ]
    (* the same behavioural suite with record compression on (§5.5):
       the codec must be invisible to semantics *)
    @ List.map
        (fun s -> suite_for ~compress:true s)
        [ Database.Tuple_first; Database.Version_first; Database.Hybrid ])
