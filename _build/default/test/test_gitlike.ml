(* Tests for the git-like baseline: the content-addressed object store
   (loose objects, repack into delta packs) and the Decibel-over-git
   adapter in all four layout/format variants (paper §5.7). *)

open Decibel_util
open Decibel_storage
open Decibel_gitlike
module Vg = Decibel_graph.Version_graph

let qtest t = QCheck_alcotest.to_alcotest t

let with_store f =
  let dir = Fsutil.fresh_dir "decibel-git" in
  Fun.protect
    ~finally:(fun () -> Fsutil.rm_rf dir)
    (fun () -> f (Object_store.create ~dir))

(* ------------------------------------------------------------------ *)
(* object store *)

let test_put_get () =
  with_store (fun s ->
      let oid = Object_store.put s "hello world" in
      Alcotest.(check string) "roundtrip" "hello world" (Object_store.get s oid);
      Alcotest.(check bool) "mem" true (Object_store.mem s oid);
      Alcotest.(check bool) "absent" false (Object_store.mem s "nope"))

let test_put_idempotent () =
  with_store (fun s ->
      let a = Object_store.put s "same" in
      let b = Object_store.put s "same" in
      Alcotest.(check string) "same oid" a b;
      Alcotest.(check int) "one object" 1 (Object_store.object_count s))

let test_repack_preserves_contents () =
  with_store (fun s ->
      (* a family of similar blobs, as successive table versions are *)
      let blobs =
        List.init 30 (fun i ->
            String.concat ";"
              (List.init 100 (fun j ->
                   Printf.sprintf "row-%d-%d" j (if j < i then 1 else 0))))
      in
      let oids = List.map (Object_store.put s) blobs in
      let before = Object_store.repo_bytes s in
      Object_store.repack s;
      Alcotest.(check int) "no loose objects left" 0 (Object_store.loose_count s);
      List.iter2
        (fun oid blob ->
          Alcotest.(check string) "content survives" blob (Object_store.get s oid))
        oids blobs;
      let after = Object_store.repo_bytes s in
      Alcotest.(check bool)
        (Printf.sprintf "pack smaller (%d -> %d)" before after)
        true (after < before))

let test_repack_then_more_objects () =
  with_store (fun s ->
      let o1 = Object_store.put s (String.make 500 'a') in
      Object_store.repack s;
      let o2 = Object_store.put s (String.make 500 'b') in
      Object_store.repack s;
      Alcotest.(check string) "packed twice" (String.make 500 'a')
        (Object_store.get s o1);
      Alcotest.(check string) "second pack" (String.make 500 'b')
        (Object_store.get s o2))

let prop_store_roundtrip =
  QCheck2.Test.make ~name:"object store roundtrips with repack" ~count:40
    QCheck2.Gen.(list_size (int_range 1 20) (string_size (int_bound 400)))
    (fun blobs ->
      let result = ref true in
      with_store (fun s ->
          let oids = List.map (Object_store.put s) blobs in
          Object_store.repack s;
          List.iter2
            (fun oid blob ->
              if Object_store.get s oid <> blob then result := false)
            oids blobs);
      !result)

(* ------------------------------------------------------------------ *)
(* git engine *)

let schema = Schema.ints ~name:"r" ~width:4

let row k a = [| Value.int k; Value.int a; Value.int 0; Value.int 0 |]

let variants =
  [
    (Git_engine.One_file, Git_engine.Bin);
    (Git_engine.One_file, Git_engine.Csv);
    (Git_engine.File_per_tuple, Git_engine.Bin);
    (Git_engine.File_per_tuple, Git_engine.Csv);
  ]

let with_engine layout format f =
  let dir = Fsutil.fresh_dir "decibel-gite" in
  Fun.protect
    ~finally:(fun () -> Fsutil.rm_rf dir)
    (fun () -> f (Git_engine.create ~dir ~schema ~layout ~format))

let sorted_scan g b =
  let acc = ref [] in
  Git_engine.scan g b (fun t -> acc := Array.to_list t :: !acc);
  List.sort compare !acc

let engine_case layout format =
  let name =
    Printf.sprintf "%s/%s"
      (Git_engine.layout_name layout)
      (Git_engine.format_name format)
  in
  Alcotest.test_case name `Quick (fun () ->
      with_engine layout format (fun g ->
          let m = Vg.master in
          Git_engine.write g m (row 1 10);
          Git_engine.write g m (row 2 20);
          let v1 = Git_engine.commit g m ~message:"one" in
          Git_engine.write g m (row 1 99);
          Git_engine.delete g m (Value.int 2);
          Git_engine.write g m (row 3 30);
          let v2 = Git_engine.commit g m ~message:"two" in
          (* historical checkout *)
          let st1 =
            List.sort compare
              (List.map Array.to_list (Git_engine.read_version g v1))
          in
          Alcotest.(check int) "v1 size" 2 (List.length st1);
          let st2 =
            List.sort compare
              (List.map Array.to_list (Git_engine.read_version g v2))
          in
          Alcotest.(check int) "v2 size" 2 (List.length st2);
          (* branch from v1 and diverge *)
          let b = Git_engine.create_branch g ~name:"dev" ~from:v1 in
          Alcotest.(check int) "branch state" 2
            (List.length (sorted_scan g b));
          Git_engine.write g b (row 7 70);
          Alcotest.(check int) "branch grew" 3 (List.length (sorted_scan g b));
          Alcotest.(check int) "master unaffected" 2
            (List.length (sorted_scan g m));
          (* repack keeps everything readable *)
          Git_engine.repack g;
          let st1' =
            List.sort compare
              (List.map Array.to_list (Git_engine.read_version g v1))
          in
          Alcotest.(check bool) "v1 survives repack" true (st1 = st1');
          Alcotest.(check bool) "lookup" true
            (Git_engine.lookup g m (Value.int 1) <> None)))

let test_file_per_tuple_dedupes () =
  with_engine Git_engine.File_per_tuple Git_engine.Bin (fun g ->
      let m = Vg.master in
      for i = 1 to 50 do
        Git_engine.write g m (row i i)
      done;
      let _ = Git_engine.commit g m ~message:"c1" in
      let objs_before = Git_engine.object_count g in
      (* touching one record must add O(1) blobs, not O(n): unchanged
         tuples share their content-addressed blob *)
      Git_engine.write g m (row 1 9999);
      let _ = Git_engine.commit g m ~message:"c2" in
      let objs_after = Git_engine.object_count g in
      Alcotest.(check bool)
        (Printf.sprintf "incremental objects (%d -> %d)" objs_before objs_after)
        true
        (objs_after - objs_before <= 3))

let () =
  Alcotest.run "gitlike"
    [
      ( "object-store",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "idempotent put" `Quick test_put_idempotent;
          Alcotest.test_case "repack preserves contents" `Quick
            test_repack_preserves_contents;
          Alcotest.test_case "repack incrementally" `Quick
            test_repack_then_more_objects;
          qtest prop_store_roundtrip;
        ] );
      ( "git-engine",
        List.map (fun (l, f) -> engine_case l f) variants
        @ [
            Alcotest.test_case "file/tup dedupes unchanged blobs" `Quick
              test_file_per_tuple_dedupes;
          ] );
    ]
