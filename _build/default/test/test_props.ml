(* Property-based equivalence testing: random operation sequences are
   applied identically to the in-memory model oracle and to each
   physical storage engine; afterwards every branch's working contents,
   every committed version's contents, and pairwise branch diffs must
   agree.  This is the strongest evidence the three schemes implement
   the same versioning semantics (paper §2.2.3) on arbitrary histories,
   including merge-heavy ones. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph
open Cmds

let contents db b =
  List.sort compare (List.map Array.to_list (Database.scan_list db b))

let version_contents db v =
  List.sort compare (List.map Array.to_list (Database.scan_version_list db v))

let diff_pair db a b =
  let pos = ref [] and neg = ref [] in
  Database.diff db a b
    ~pos:(fun t -> pos := Array.to_list t :: !pos)
    ~neg:(fun t -> neg := Array.to_list t :: !neg);
  (List.sort compare !pos, List.sort compare !neg)

let multi_per_branch db branches =
  let tbl = Hashtbl.create 16 in
  Database.multi_scan db branches (fun (a : Types.annotated) ->
      List.iter
        (fun b ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl b) in
          Hashtbl.replace tbl b (Array.to_list a.Types.tuple :: prev))
        a.Types.in_branches);
  List.map
    (fun b ->
      ( b,
        List.sort compare
          (Option.value ~default:[] (Hashtbl.find_opt tbl b)) ))
    branches

let value_list_pp l =
  "[" ^ String.concat "," (List.map Value.to_string l) ^ "]"

let fail_mismatch what scheme b expected got =
  QCheck2.Test.fail_reportf
    "%s mismatch on %s (object %d):\nmodel: %s\nengine: %s" what scheme b
    (String.concat " | " (List.map value_list_pp expected))
    (String.concat " | " (List.map value_list_pp got))

let equivalence_property scheme cmds =
  let dir_model = Decibel_util.Fsutil.fresh_dir "decibel-prop-model" in
  let dir_engine = Decibel_util.Fsutil.fresh_dir "decibel-prop-engine" in
  let model =
    Database.open_ ~scheme:Database.Model ~dir:dir_model ~schema ()
  in
  let engine = Database.open_ ~scheme ~dir:dir_engine ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close model;
      Database.close engine;
      Decibel_util.Fsutil.rm_rf dir_model;
      Decibel_util.Fsutil.rm_rf dir_engine)
    (fun () ->
      apply_cmds model cmds;
      apply_cmds engine cmds;
      let g = Database.graph model in
      let scheme_n = Database.scheme_of engine in
      if Vg.serialize g <> Vg.serialize (Database.graph engine) then
        QCheck2.Test.fail_reportf "version graph mismatch on %s" scheme_n;
      for b = 0 to Vg.branch_count g - 1 do
        let expected = contents model b and got = contents engine b in
        if expected <> got then
          fail_mismatch "branch contents" scheme_n b expected got
      done;
      for v = 0 to Vg.version_count g - 1 do
        let expected = version_contents model v
        and got = version_contents engine v in
        if expected <> got then
          fail_mismatch "version contents" scheme_n v expected got
      done;
      let nb = min 4 (Vg.branch_count g) in
      for a = 0 to nb - 1 do
        for b = 0 to nb - 1 do
          if a <> b then begin
            let pm, nm = diff_pair model a b in
            let pe, ne = diff_pair engine a b in
            if pm <> pe then fail_mismatch "diff pos" scheme_n a pm pe;
            if nm <> ne then fail_mismatch "diff neg" scheme_n a nm ne
          end
        done
      done;
      let branches = List.init (Vg.branch_count g) Fun.id in
      let mm = multi_per_branch model branches in
      let me = multi_per_branch engine branches in
      List.iter2
        (fun (b, expected) (_, got) ->
          if expected <> got then
            fail_mismatch "multi-scan" scheme_n b expected got)
        mm me;
      true)

let equivalence_test scheme =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "random ops: %s == model" (Database.scheme_name scheme))
    ~count:120 ~print:print_cmds cmds_gen
    (equivalence_property scheme)

(* lookup after random ops agrees with a scan-derived map *)
let lookup_consistency scheme cmds =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-prop-lookup" in
  let db = Database.open_ ~scheme ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      apply_cmds db cmds;
      let g = Database.graph db in
      for b = 0 to Vg.branch_count g - 1 do
        let from_scan = Hashtbl.create 64 in
        Database.scan db b (fun t ->
            Hashtbl.replace from_scan (Tuple.pk schema t) t);
        Hashtbl.iter
          (fun k t ->
            match Database.lookup db b k with
            | Some t' when Tuple.equal t t' -> ()
            | _ ->
                QCheck2.Test.fail_reportf
                  "lookup of %s missing/differs in branch %d"
                  (Value.to_string k) b)
          from_scan;
        for k = 0 to 41 do
          let key = Value.int k in
          match (Database.lookup db b key, Hashtbl.find_opt from_scan key) with
          | Some _, None ->
              QCheck2.Test.fail_reportf
                "lookup finds ghost key %d in branch %d" k b
          | None, Some _ ->
              QCheck2.Test.fail_reportf "lookup misses key %d in branch %d" k b
          | _ -> ()
        done
      done;
      true)

let lookup_test scheme =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "lookup == scan-derived map: %s"
         (Database.scheme_name scheme))
    ~count:60 ~print:print_cmds cmds_gen
    (lookup_consistency scheme)

let () =
  let engines = Database.all_schemes in
  Alcotest.run "properties"
    [
      ( "engine-equivalence",
        List.map
          (fun s -> QCheck_alcotest.to_alcotest (equivalence_test s))
          engines );
      ( "lookup-consistency",
        List.map (fun s -> QCheck_alcotest.to_alcotest (lookup_test s)) engines
      );
    ]
