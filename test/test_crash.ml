(* Crash-torture tests: the harness in Decibel.Torture kills a scripted
   workload at every failpoint site it crosses (first/middle/last
   crossing, raise and torn-write variants), recovers, and checks the
   recovered and final states against the model-engine oracle.  Every
   case must pass and post-recovery fsck must be clean, on every
   physical scheme; one transient fault per retryable site must be
   absorbed by bounded retry. *)

open Decibel
module Failpoint = Decibel_fault.Failpoint

(* deterministic across runs and machines *)
let () = Failpoint.set_seed 0x5EEDL

let schemes =
  [
    Database.Tuple_first;
    Database.Tuple_first_tuple_oriented;
    Database.Version_first;
    Database.Hybrid;
  ]

let with_root f =
  let root = Decibel_util.Fsutil.fresh_dir "decibel-crash" in
  Fun.protect ~finally:(fun () -> Decibel_util.Fsutil.rm_rf root) (fun () -> f root)

let test_torture scheme () =
  with_root (fun root ->
      let s = Torture.torture ~root scheme in
      (* the harness only proves something if the workload actually
         crosses the instrumented sites *)
      Alcotest.(check bool)
        "workload crosses wal.append" true
        (List.mem_assoc "wal.append" s.Torture.s_sites);
      Alcotest.(check bool)
        "workload crosses heap.flush" true
        (List.mem_assoc "heap.flush" s.Torture.s_sites);
      Alcotest.(check bool)
        "workload crosses manifest.write_tmp" true
        (List.mem_assoc "manifest.write_tmp" s.Torture.s_sites);
      Alcotest.(check bool)
        "ran a useful number of cases" true
        (List.length s.Torture.s_cases >= 10);
      List.iter
        (fun (c : Torture.case) ->
          if not c.Torture.c_ok then
            Alcotest.failf "%s: %s@%d (%s): %s" s.Torture.s_scheme
              c.Torture.c_site c.Torture.c_occurrence c.Torture.c_action
              c.Torture.c_detail)
        s.Torture.s_cases)

let test_transient scheme () =
  with_root (fun root ->
      List.iter
        (fun (site, outcome) ->
          Alcotest.(check string)
            (Printf.sprintf "transient at %s absorbed" site)
            "" outcome)
        (Torture.transient_check ~root scheme))

(* fsck end-to-end: a cleanly closed repository is clean; chopping the
   WAL tail is detected and repaired; a flipped byte inside a heap
   record is detected (and not silently "repaired"). *)
let test_fsck_repair () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db =
        Database.open_ ~durable:true ~scheme:Database.Tuple_first ~dir
          ~schema:Torture.schema ()
      in
      List.iter (Torture.apply db) Torture.default_workload;
      (* the workload ends on a checkpoint, so log fresh entries past
         it before crashing *)
      List.iter (Torture.apply db)
        [ Torture.Insert ("master", 7, 70); Torture.Insert ("master", 8, 80) ];
      Database.crash db;
      (* tear the log mid-frame *)
      let wal = Filename.concat dir "wal.log" in
      let data = Decibel_util.Binio.read_file wal in
      Decibel_util.Binio.write_file wal
        (String.sub data 0 (String.length data - 3));
      (* and strand a fake half-renamed manifest *)
      let tmp = Filename.concat dir "manifest.tf.tmp" in
      Decibel_util.Binio.write_file tmp "partial";
      let r1 = Fsck.run ~repair:true ~dir () in
      Alcotest.(check bool) "fsck found problems" false (Fsck.clean r1);
      Alcotest.(check bool)
        "all findings repaired" true
        (List.for_all (fun f -> f.Fsck.repaired) r1.Fsck.findings);
      let r2 = Fsck.run ~dir () in
      Alcotest.(check bool) "clean after repair" true (Fsck.clean r2);
      Alcotest.(check bool)
        "scheme detected" true
        (match r2.Fsck.scheme with
        | Some s -> String.length s >= 11 && String.sub s 0 11 = "tuple-first"
        | None -> false);
      (* recovery still works on the repaired repository *)
      let db2 = Database.reopen ~dir () in
      Alcotest.(check bool)
        "recovered rows present" true
        (Database.count db2 Decibel_graph.Version_graph.master > 0);
      Database.close db2)

let test_fsck_detects_bitrot () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db =
        Database.open_ ~scheme:Database.Tuple_first ~dir
          ~schema:Torture.schema ()
      in
      List.iter (Torture.apply db) Torture.default_workload;
      Database.close db;
      Alcotest.(check bool)
        "clean before corruption" true
        (Fsck.clean (Fsck.run ~dir ()));
      (* flip one payload byte on disk *)
      let heap = Filename.concat dir "heap.dat" in
      let data = Bytes.of_string (Decibel_util.Binio.read_file heap) in
      let off = Bytes.length data - 5 in
      Bytes.set data off (Char.chr (Char.code (Bytes.get data off) lxor 0x40));
      Decibel_util.Binio.write_file heap (Bytes.to_string data);
      let r = Fsck.run ~repair:true ~dir () in
      Alcotest.(check bool) "bitrot detected" false (Fsck.clean r);
      Alcotest.(check bool)
        "checksum corruption is never auto-repaired" true
        (List.exists (fun f -> not f.Fsck.repaired) r.Fsck.findings))

(* Corruption escaping an engine operation quarantines the branch and
   degrades the database to read-only; intact branches stay readable. *)
let test_degraded_mode () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db =
        Database.open_ ~scheme:Database.Tuple_first ~dir
          ~schema:Torture.schema ()
      in
      List.iter (Torture.apply db) Torture.default_workload;
      Database.flush db;
      Database.drop_caches db;
      (* flip a payload byte of the last record (live on master) in
         place — through the same inode the running database has open —
         then force a read *)
      let heap = Filename.concat dir "heap.dat" in
      let data = Bytes.of_string (Decibel_util.Binio.read_file heap) in
      let off = Bytes.length data - 5 in
      let flipped = Char.chr (Char.code (Bytes.get data off) lxor 0x01) in
      let fd = Unix.openfile heap [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 flipped) 0 1);
      Unix.close fd;
      let master = Decibel_graph.Version_graph.master in
      Alcotest.(check bool)
        "read of corrupt branch raises" true
        (match Database.scan_list db master with
        | _ -> false
        | exception Types.Engine_error _ -> true);
      Alcotest.(check bool)
        "database degraded" true
        (match Database.health db with
        | Database.Degraded _ -> true
        | Database.Healthy -> false);
      Alcotest.(check bool)
        "branch quarantined" true
        (List.mem_assoc master (Database.quarantined db));
      Alcotest.(check bool)
        "writes refused while degraded" true
        (match Database.insert db master (Torture.row 99 99) with
        | _ -> false
        | exception Types.Engine_error _ -> true);
      (* health shows up in the storage report *)
      let r = Database.storage_report db in
      Alcotest.(check bool)
        "report shows degraded" true
        (String.length r.Decibel_obs.Report.r_health > 9
        && String.sub r.Decibel_obs.Report.r_health 0 8 = "degraded");
      Alcotest.(check int)
        "report lists quarantined branch" 1
        (List.length r.Decibel_obs.Report.r_quarantined))

let () =
  Alcotest.run "crash"
    [
      ( "torture",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Slow
              (test_torture scheme))
          schemes );
      ( "transient",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Quick
              (test_transient scheme))
          schemes );
      ( "fsck",
        [
          Alcotest.test_case "repairs torn tail + stale tmp" `Quick
            test_fsck_repair;
          Alcotest.test_case "detects bitrot" `Quick test_fsck_detects_bitrot;
        ] );
      ( "degraded",
        [ Alcotest.test_case "quarantine + read-only" `Quick test_degraded_mode ] );
    ]
