(* Unit tests for the fault-injection layer: failpoint triggers and
   spec parsing, torn guarded writes, bounded retry, CRC32 vectors, and
   atomic checksummed file writes. *)

module Failpoint = Decibel_fault.Failpoint
module Retry = Decibel_fault.Retry
module Crc32 = Decibel_util.Crc32
module Atomic_file = Decibel_storage.Atomic_file

let reset () =
  Failpoint.disarm_all ();
  Failpoint.reset_census ();
  Failpoint.set_seed 0x5EEDL

let raises_injected f =
  match f () with
  | _ -> false
  | exception Failpoint.Fault_injected _ -> true

let test_after_hits () =
  reset ();
  Failpoint.arm "t.a" (Failpoint.After_hits 3);
  Failpoint.hit "t.a";
  Failpoint.hit "t.a";
  Alcotest.(check bool)
    "third hit fires" true
    (raises_injected (fun () -> Failpoint.hit "t.a"));
  (* the trigger is one-shot per crossing count, not sticky *)
  Failpoint.hit "t.a";
  Alcotest.(check int) "census counts every hit" 4 (Failpoint.hits "t.a")

let test_always_and_disarm () =
  reset ();
  Failpoint.arm "t.b" Failpoint.Always;
  Alcotest.(check bool)
    "always fires" true
    (raises_injected (fun () -> Failpoint.hit "t.b"));
  Failpoint.disarm "t.b";
  Failpoint.hit "t.b";
  Alcotest.(check int) "disarmed site just counts" 2 (Failpoint.hits "t.b")

let test_probability_deterministic () =
  reset ();
  Failpoint.arm "t.p" (Failpoint.Probability 0.5);
  let fires1 =
    List.init 64 (fun _ -> raises_injected (fun () -> Failpoint.hit "t.p"))
  in
  reset ();
  Failpoint.arm "t.p" (Failpoint.Probability 0.5);
  let fires2 =
    List.init 64 (fun _ -> raises_injected (fun () -> Failpoint.hit "t.p"))
  in
  Alcotest.(check bool) "same seed, same fires" true (fires1 = fires2);
  Alcotest.(check bool)
    "p=0.5 fires sometimes but not always" true
    (List.mem true fires1 && List.mem false fires1)

let test_torn_guard () =
  reset ();
  Failpoint.arm ~action:(Failpoint.Torn 0.5) "t.w" (Failpoint.After_hits 1);
  let written = Buffer.create 16 in
  Alcotest.(check bool)
    "torn write raises" true
    (raises_injected (fun () ->
         Failpoint.guard_write "t.w" "0123456789" (Buffer.add_string written)));
  Alcotest.(check string) "strict prefix written" "01234" (Buffer.contents written);
  (* unarmed: the write goes through whole *)
  Buffer.clear written;
  Failpoint.guard_write "t.w" "0123456789" (Buffer.add_string written);
  Alcotest.(check string) "clean write intact" "0123456789"
    (Buffer.contents written)

let test_spec_parsing () =
  reset ();
  Failpoint.arm_from_spec "a.x=2,b.y=p0.25,c.z=always,d.w=t1";
  List.iter
    (fun site ->
      Alcotest.(check bool) (site ^ " armed") true (Failpoint.armed site))
    [ "a.x"; "b.y"; "c.z"; "d.w" ];
  Failpoint.hit "a.x";
  Alcotest.(check bool)
    "a.x fires on 2nd" true
    (raises_injected (fun () -> Failpoint.hit "a.x"));
  Alcotest.(check bool)
    "c.z always fires" true
    (raises_injected (fun () -> Failpoint.hit "c.z"));
  reset ()

let test_retry_absorbs_transient () =
  reset ();
  let attempts = ref 0 in
  let v =
    Retry.with_retries ~attempts:3 (fun () ->
        incr attempts;
        if !attempts < 3 then raise (Failpoint.Fault_transient "t");
        42)
  in
  Alcotest.(check int) "returned after retries" 42 v;
  Alcotest.(check int) "ran three times" 3 !attempts

let test_retry_gives_up () =
  reset ();
  let attempts = ref 0 in
  Alcotest.(check bool)
    "exhausted retries re-raise" true
    (match
       Retry.with_retries ~attempts:2 (fun () ->
           incr attempts;
           raise (Failpoint.Fault_transient "t"))
     with
    | _ -> false
    | exception Failpoint.Fault_transient _ -> true);
  Alcotest.(check int) "bounded attempts" 2 !attempts;
  (* non-transient errors pass straight through *)
  let once = ref 0 in
  Alcotest.(check bool)
    "hard faults not retried" true
    (match
       Retry.with_retries (fun () ->
           incr once;
           failwith "hard")
     with
    | _ -> false
    | exception Failure _ -> true);
  Alcotest.(check int) "single attempt" 1 !once

let test_crc32_vectors () =
  (* the IEEE 802.3 check value plus a couple of published vectors *)
  List.iter
    (fun (s, expect) ->
      Alcotest.(check int) (Printf.sprintf "crc32(%S)" s) expect (Crc32.string s))
    [
      ("", 0x00000000);
      ("123456789", 0xCBF43926);
      ("a", 0xE8B7BE43);
      ("abc", 0x352441C2);
    ];
  (* incremental update equals one-shot *)
  let s = "the quick brown fox" in
  let half = String.length s / 2 in
  let inc =
    Crc32.update (Crc32.update 0 s 0 half) s half (String.length s - half)
  in
  Alcotest.(check int) "incremental == one-shot" (Crc32.string s) inc

let with_dir f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-atomic" in
  Fun.protect ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir) (fun () -> f dir)

let test_atomic_roundtrip () =
  reset ();
  with_dir (fun dir ->
      let path = Filename.concat dir "m" in
      Atomic_file.write path "payload-one";
      Alcotest.(check string) "roundtrip" "payload-one" (Atomic_file.read path);
      Atomic_file.write path "payload-two";
      Alcotest.(check string) "overwrite" "payload-two" (Atomic_file.read path);
      Alcotest.(check bool) "verify clean" true (Atomic_file.verify path = None);
      Alcotest.(check bool)
        "no temp left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_atomic_detects_corruption () =
  reset ();
  with_dir (fun dir ->
      let path = Filename.concat dir "m" in
      Atomic_file.write path "precious";
      let data = Bytes.of_string (Decibel_util.Binio.read_file path) in
      Bytes.set data 2 'X';
      Decibel_util.Binio.write_file path (Bytes.to_string data);
      Alcotest.(check bool) "flagged" true (Atomic_file.verify path <> None);
      Alcotest.(check bool)
        "read raises" true
        (match Atomic_file.read path with
        | _ -> false
        | exception Decibel_util.Binio.Corrupt _ -> true))

let test_atomic_torn_write_preserves_old () =
  reset ();
  with_dir (fun dir ->
      let path = Filename.concat dir "m" in
      Atomic_file.write path "old-manifest";
      Failpoint.arm ~action:(Failpoint.Torn 0.5) "manifest.write_tmp"
        Failpoint.Always;
      Alcotest.(check bool)
        "torn write raises" true
        (raises_injected (fun () -> Atomic_file.write path "new-manifest"));
      Failpoint.disarm_all ();
      (* the crash left a torn temp file; the real manifest is intact *)
      Alcotest.(check string)
        "old manifest survives" "old-manifest" (Atomic_file.read path);
      Alcotest.(check bool)
        "torn temp stranded" true
        (Sys.file_exists (path ^ ".tmp")))

let () =
  Alcotest.run "fault"
    [
      ( "failpoint",
        [
          Alcotest.test_case "after-hits" `Quick test_after_hits;
          Alcotest.test_case "always + disarm" `Quick test_always_and_disarm;
          Alcotest.test_case "probability deterministic" `Quick
            test_probability_deterministic;
          Alcotest.test_case "torn guard" `Quick test_torn_guard;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        ] );
      ( "retry",
        [
          Alcotest.test_case "absorbs transient" `Quick
            test_retry_absorbs_transient;
          Alcotest.test_case "gives up / hard faults" `Quick
            test_retry_gives_up;
        ] );
      ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc32_vectors ]);
      ( "atomic-file",
        [
          Alcotest.test_case "roundtrip" `Quick test_atomic_roundtrip;
          Alcotest.test_case "detects corruption" `Quick
            test_atomic_detects_corruption;
          Alcotest.test_case "torn write preserves old" `Quick
            test_atomic_torn_write_preserves_old;
        ] );
    ]
