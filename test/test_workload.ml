(* Workload telemetry, storage advisor and health watchdog tests:
   EWMA rates over simulated time, domain-parallel hammering, the JSONL
   checkpoint round-trip (module-level and through Database
   flush/reopen), per-branch totals reconciling with the global Obs
   counters, advisor threshold flips per recommendation kind, JSON
   shape stability, and the watchdog rules engine with its sticky
   status and transition events. *)

open Decibel
open Decibel_storage
module Obs = Decibel_obs.Obs
module Workload = Decibel_obs.Workload
module Advisor = Decibel_obs.Advisor
module Watchdog = Decibel_obs.Watchdog
module Report = Decibel_obs.Report
module Vg = Decibel_graph.Version_graph

let t0 = 1_700_000_000.0

let fresh () =
  Obs.set_enabled true;
  Workload.reset ();
  Workload.set_tau 60.0

let note_reads ?(table = "t") ?(branch = "b") ?(scanned = 0) ?(emitted = 0)
    ?(fragments = 0) ~now n =
  for _ = 1 to n do
    Workload.note_read ~now ~table ~branch ~scanned ~emitted ~fragments ()
  done

let get ?now ~table ~branch () =
  match Workload.find ?now ~table ~branch () with
  | Some s -> s
  | None -> Alcotest.failf "no workload entry for (%s, %s)" table branch

(* ---------- EWMA rates over simulated time ---------- *)

let test_ewma_decay () =
  fresh ();
  Workload.set_tau 10.0;
  (* a steady stream of r events/s converges to ~r: send 1/s for many
     tau and read the rate at the time of the last event *)
  for i = 0 to 99 do
    Workload.note_read ~now:(t0 +. float_of_int i) ~table:"t" ~branch:"hot"
      ~scanned:10 ~emitted:5 ~fragments:2 ()
  done;
  let last = t0 +. 99.0 in
  let s = get ~now:last ~table:"t" ~branch:"hot" () in
  Alcotest.(check bool)
    "steady 1/s stream reads ~1"
    true
    (s.Workload.w_read_rate > 0.9 && s.Workload.w_read_rate < 1.1);
  (* decay: after 5 tau of silence the rate has fallen by e^-5 *)
  let cold = get ~now:(last +. 50.0) ~table:"t" ~branch:"hot" () in
  let expect = s.Workload.w_read_rate *. exp (-5.0) in
  Alcotest.(check bool)
    "5 tau of silence decays by e^-5"
    true
    (abs_float (cold.Workload.w_read_rate -. expect) < 1e-6);
  (* time never runs backwards: a snapshot before the last event does
     not inflate the rate *)
  let back = get ~now:(last -. 100.0) ~table:"t" ~branch:"hot" () in
  Alcotest.(check bool)
    "backwards clock leaves the rate alone"
    true
    (abs_float (back.Workload.w_read_rate -. s.Workload.w_read_rate) < 1e-9);
  (* an explicit sweep bakes the decay in, and a snapshot taken at the
     same instant agrees *)
  Workload.decay ~now:(last +. 50.0) ();
  let swept =
    List.find
      (fun s -> s.Workload.w_branch = "hot")
      (Workload.snapshot ~now:(last +. 50.0) ())
  in
  Alcotest.(check bool)
    "sweep and snapshot agree"
    true
    (abs_float (swept.Workload.w_read_rate -. cold.Workload.w_read_rate)
    < 1e-9);
  Workload.set_tau 60.0

let test_counts_and_ratios () =
  fresh ();
  note_reads ~scanned:100 ~emitted:25 ~fragments:7 ~now:t0 2;
  Workload.note_write ~now:t0 ~table:"t" ~branch:"b" ();
  Workload.note_write ~now:t0 ~table:"t" ~branch:"b" ();
  Workload.note_write ~now:t0 ~table:"t" ~branch:"b" ();
  let s = get ~now:t0 ~table:"t" ~branch:"b" () in
  Alcotest.(check int) "reads" 2 s.Workload.w_reads;
  Alcotest.(check int) "writes" 3 s.Workload.w_writes;
  Alcotest.(check int) "scanned" 200 s.Workload.w_scanned;
  Alcotest.(check int) "emitted" 50 s.Workload.w_emitted;
  Alcotest.(check int) "fragments" 14 s.Workload.w_fragments;
  Alcotest.(check (float 1e-9)) "selectivity" 0.25 (Workload.selectivity s);
  Alcotest.(check (float 1e-9))
    "fragments/read" 7.0
    (Workload.fragments_per_read s);
  Alcotest.(check (float 1e-9)) "last read stamp" t0 s.Workload.w_last_read;
  (* page attribution flows through the ambient context only *)
  Workload.note_page ~hit:true;
  Workload.with_context ~table:"t" ~branch:"b" (fun () ->
      Workload.note_page ~hit:true;
      Workload.note_page ~hit:false);
  let s = get ~now:t0 ~table:"t" ~branch:"b" () in
  Alcotest.(check int) "pages hit (ambient only)" 1 s.Workload.w_pages_hit;
  Alcotest.(check int) "pages missed" 1 s.Workload.w_pages_missed

(* ---------- domain-parallel hammer ---------- *)

let test_parallel_hammer () =
  fresh ();
  let domains = 4 and per_domain = 5_000 in
  let worker d () =
    for i = 1 to per_domain do
      (* every domain hits the shared branch and one private branch,
         exercising both same-shard contention and disjoint shards *)
      Workload.note_read ~now:(t0 +. float_of_int i) ~table:"t"
        ~branch:"shared" ~scanned:3 ~emitted:1 ~fragments:2 ();
      Workload.note_write ~now:(t0 +. float_of_int i) ~table:"t"
        ~branch:(Printf.sprintf "own-%d" d) ()
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let shared = get ~table:"t" ~branch:"shared" () in
  let n = domains * per_domain in
  Alcotest.(check int) "shared reads exact" n shared.Workload.w_reads;
  Alcotest.(check int) "shared scanned exact" (3 * n)
    shared.Workload.w_scanned;
  Alcotest.(check int) "shared emitted exact" n shared.Workload.w_emitted;
  Alcotest.(check int) "shared fragments exact" (2 * n)
    shared.Workload.w_fragments;
  for d = 0 to domains - 1 do
    let own = get ~table:"t" ~branch:(Printf.sprintf "own-%d" d) () in
    Alcotest.(check int)
      (Printf.sprintf "own-%d writes exact" d)
      per_domain own.Workload.w_writes
  done

(* ---------- JSONL checkpoint round-trip ---------- *)

let test_checkpoint_roundtrip () =
  fresh ();
  note_reads ~table:"t" ~branch:"alpha" ~scanned:40 ~emitted:10 ~fragments:4
    ~now:t0 5;
  Workload.note_write ~now:t0 ~table:"t" ~branch:"alpha" ();
  note_reads ~table:"other" ~branch:"beta" ~scanned:7 ~emitted:7 ~now:t0 1;
  let before = get ~now:t0 ~table:"t" ~branch:"alpha" () in
  let path = Filename.temp_file "decibel-workload" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Workload.save ~now:t0 ~path ();
      Workload.reset ();
      Alcotest.(check int) "reset empties" 0
        (List.length (Workload.snapshot ()));
      Workload.load ~path ();
      let after = get ~now:t0 ~table:"t" ~branch:"alpha" () in
      Alcotest.(check int) "reads survive" before.Workload.w_reads
        after.Workload.w_reads;
      Alcotest.(check int) "scanned survive" before.Workload.w_scanned
        after.Workload.w_scanned;
      Alcotest.(check int) "writes survive" before.Workload.w_writes
        after.Workload.w_writes;
      Alcotest.(check (float 1e-9))
        "rate resumes from checkpoint" before.Workload.w_read_rate
        after.Workload.w_read_rate;
      Alcotest.(check (float 1e-9))
        "timestamp survives" before.Workload.w_last_read
        after.Workload.w_last_read;
      Alcotest.(check bool)
        "other table came back too" true
        (Workload.find ~table:"other" ~branch:"beta" () <> None);
      (* merge semantics: loading on top of live entries sums totals *)
      Workload.load ~path ();
      let merged = get ~now:t0 ~table:"t" ~branch:"alpha" () in
      Alcotest.(check int) "second load sums totals"
        (2 * before.Workload.w_reads)
        merged.Workload.w_reads;
      (* ~table filter writes only that table's entries *)
      Workload.save ~now:t0 ~table:"other" ~path ();
      Workload.reset ();
      Workload.load ~path ();
      Alcotest.(check bool)
        "filtered save drops foreign tables" true
        (Workload.find ~table:"t" ~branch:"alpha" () = None);
      Alcotest.(check bool)
        "filtered save keeps its table" true
        (Workload.find ~table:"other" ~branch:"beta" () <> None);
      (* loading a missing file is a no-op, not an error *)
      Workload.load ~path:(path ^ ".does-not-exist") ())

let schema = Schema.ints ~name:"wl" ~width:3

let row k v = [| Value.int k; Value.int v; Value.int 0 |]

let test_db_checkpoint () =
  fresh ();
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-wl-ckpt" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db =
        Database.open_ ~scheme:Database.Tuple_first ~dir ~schema ()
      in
      for k = 1 to 20 do
        Database.insert db Vg.master (row k k)
      done;
      let _ = Database.commit db Vg.master ~message:"v1" in
      for _ = 1 to 4 do
        Database.scan db Vg.master (fun _ -> ())
      done;
      let before = get ~table:"wl" ~branch:"master" () in
      Alcotest.(check bool) "scans recorded" true
        (before.Workload.w_reads >= 4);
      Database.close db;
      Alcotest.(check bool) "close writes workload.jsonl" true
        (Sys.file_exists (Filename.concat dir "workload.jsonl"));
      Workload.reset ();
      let db = Database.reopen ~dir () in
      let s = get ~table:"wl" ~branch:"master" () in
      Alcotest.(check bool)
        "reopen merges the checkpoint back" true
        (s.Workload.w_reads >= before.Workload.w_reads);
      Alcotest.(check bool)
        "Database.workload surfaces the entry" true
        (List.exists
           (fun s -> s.Workload.w_branch = "master")
           (Database.workload db));
      Database.close db)

(* ---------- per-branch totals reconcile with global counters ---------- *)

let test_reconcile_with_globals scheme () =
  fresh ();
  Obs.reset ();
  Obs.set_enabled true;
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-wl-recon" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db = Database.open_ ~scheme ~dir ~schema () in
      for k = 1 to 50 do
        Database.insert db Vg.master (row k k)
      done;
      let v1 = Database.commit db Vg.master ~message:"v1" in
      let hot = Database.create_branch db ~name:"hot" ~from:v1 in
      let cold = Database.create_branch db ~name:"cold" ~from:v1 in
      for k = 51 to 60 do
        Database.insert db hot (row k k)
      done;
      let _ = Database.commit db hot ~message:"hot1" in
      (* skew: hot gets 8 scans, master 2, cold 1 *)
      for _ = 1 to 8 do
        Database.scan db hot (fun _ -> ())
      done;
      for _ = 1 to 2 do
        Database.scan db Vg.master (fun _ -> ())
      done;
      Database.scan db cold (fun _ -> ());
      let stats = Database.workload db in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
      Alcotest.(check int)
        "per-branch scanned sums to engine.scan.tuples"
        (Obs.value_of "engine.scan.tuples")
        (sum (fun s -> s.Workload.w_scanned));
      let hot_s = get ~table:"wl" ~branch:"hot" () in
      let cold_s = get ~table:"wl" ~branch:"cold" () in
      Alcotest.(check int) "hot saw 8 reads" 8 hot_s.Workload.w_reads;
      Alcotest.(check int) "cold saw 1 read" 1 cold_s.Workload.w_reads;
      Alcotest.(check bool)
        "skew shows in the rates" true
        (hot_s.Workload.w_read_rate > cold_s.Workload.w_read_rate);
      Database.close db)

(* ---------- synthetic report builders ---------- *)

let branch ?(name = "b") ?(id = 1) ?(live = 100) ?(dead = 0) ?(chain = 0)
    ?(delta_bytes = 0) () =
  {
    Report.br_name = name;
    br_id = id;
    br_head = id;
    br_active = true;
    br_live_tuples = live;
    br_dead_tuples = dead;
    br_bitmap_bits = live + dead;
    br_density = Report.density ~live ~bits:(live + dead);
    br_segments = 1;
    br_delta_chain = chain;
    br_delta_bytes = delta_bytes;
  }

let segment ?(id = 0) ?(file = "seg-0.dat") ?(bytes = 65536) ?(records = 100)
    ?(live = 100) () =
  {
    Report.sg_id = id;
    sg_file = file;
    sg_bytes = bytes;
    sg_pages = bytes / 4096;
    sg_records = records;
    sg_live_records = live;
    sg_fragmentation =
      (if records = 0 then 0.0
       else 1.0 -. (float_of_int live /. float_of_int records));
  }

let report ?(branches = []) ?(segments = []) ?(health = "healthy")
    ?(quarantined = []) () =
  {
    Report.r_scheme = "synthetic";
    r_format = 2;
    r_dataset_bytes = 0;
    r_commit_meta_bytes = 0;
    r_branches = branches;
    r_segments = segments;
    r_columns = [];
    r_history = Report.empty_history;
    r_graph =
      {
        Report.g_versions = 1;
        g_branches = List.length branches;
        g_active_branches = List.length branches;
        g_depth = 0;
        g_max_fanout = 0;
      };
    r_pool =
      {
        Report.p_page_size = 4096;
        p_capacity_pages = 0;
        p_resident_pages = 0;
        p_hits = 0;
        p_misses = 0;
        p_evictions = 0;
        p_write_backs = 0;
      };
    r_health = health;
    r_quarantined = quarantined;
  }

let wl_stats ?(table = "t") ?(branch = "b") ?(reads = 0) ?(read_rate = 0.0)
    ?(fragments = 0) () =
  {
    Workload.w_table = table;
    w_branch = branch;
    w_reads = reads;
    w_writes = 0;
    w_scanned = 0;
    w_emitted = 0;
    w_fragments = fragments;
    w_pages_hit = 0;
    w_pages_missed = 0;
    w_read_rate = read_rate;
    w_write_rate = 0.0;
    w_last_read = t0;
    w_last_write = 0.0;
  }

let kinds recs = List.map (fun r -> r.Advisor.rc_kind) recs

let has_kind k recs = List.mem k (kinds recs)

(* ---------- advisor threshold flips ---------- *)

let test_advisor_materialize () =
  let rep = report ~branches:[ branch ~name:"hot" ~chain:8 () ] () in
  let wl =
    [ wl_stats ~branch:"hot" ~reads:10 ~read_rate:0.5 ~fragments:80 () ]
  in
  let recs = Advisor.advise ~report:rep ~workload:wl () in
  Alcotest.(check bool) "hot long chain materializes" true
    (has_kind Advisor.Materialize recs);
  let r = List.find (fun r -> r.Advisor.rc_kind = Advisor.Materialize) recs in
  Alcotest.(check string) "targets the branch" "hot" r.Advisor.rc_target;
  Alcotest.(check string) "benefit unit" "fragments/s" r.Advisor.rc_unit;
  (* flip off via read-rate bar: same chain, cold branch *)
  let th = { Advisor.default with th_hot_read_rate = 1.0 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:wl () in
  Alcotest.(check bool) "raised hot bar suppresses it" false
    (has_kind Advisor.Materialize recs);
  (* flip off via chain bar *)
  let th = { Advisor.default with th_chain_min = 9 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:wl () in
  Alcotest.(check bool) "short chain suppresses it" false
    (has_kind Advisor.Materialize recs)

let test_advisor_rechunk () =
  (* long chain but cold: rechunk, not materialize *)
  let rep = report ~branches:[ branch ~name:"cold" ~chain:20 () ] () in
  let recs = Advisor.advise ~report:rep ~workload:[] () in
  Alcotest.(check bool) "cold long chain rechunks" true
    (has_kind Advisor.Rechunk recs);
  Alcotest.(check bool) "cold branch never materializes" false
    (has_kind Advisor.Materialize recs);
  let th = { Advisor.default with th_rechunk_chain = 32 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:[] () in
  Alcotest.(check bool) "raised rechunk bar suppresses it" false
    (has_kind Advisor.Rechunk recs)

let test_advisor_gc () =
  let rep =
    report ~branches:[ branch ~name:"dead" ~live:100 ~dead:100 () ] ()
  in
  let recs = Advisor.advise ~report:rep ~workload:[] () in
  Alcotest.(check bool) "50% dead gcs" true (has_kind Advisor.Gc recs);
  let th = { Advisor.default with th_dead_ratio = 0.6 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:[] () in
  Alcotest.(check bool) "raised dead bar suppresses it" false
    (has_kind Advisor.Gc recs);
  let th = { Advisor.default with th_min_dead_tuples = 1000 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:[] () in
  Alcotest.(check bool) "trivia floor suppresses it" false
    (has_kind Advisor.Gc recs)

let test_advisor_compact () =
  let rep =
    report
      ~segments:[ segment ~file:"seg-7.dat" ~records:100 ~live:50 () ]
      ()
  in
  let recs = Advisor.advise ~report:rep ~workload:[] () in
  Alcotest.(check bool) "fragmented segment compacts" true
    (has_kind Advisor.Compact recs);
  let r = List.find (fun r -> r.Advisor.rc_kind = Advisor.Compact) recs in
  Alcotest.(check string) "targets the file" "seg-7.dat" r.Advisor.rc_target;
  let th = { Advisor.default with th_frag_min = 0.6 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:[] () in
  Alcotest.(check bool) "raised frag bar suppresses it" false
    (has_kind Advisor.Compact recs);
  let th = { Advisor.default with th_min_seg_bytes = 1 lsl 30 } in
  let recs = Advisor.advise ~thresholds:th ~report:rep ~workload:[] () in
  Alcotest.(check bool) "tiny segments never compact" false
    (has_kind Advisor.Compact recs)

let test_advisor_ranking_and_json () =
  let rep =
    report
      ~branches:
        [
          branch ~name:"hot" ~chain:8 ();
          branch ~name:"dying" ~live:10 ~dead:990 ();
        ]
      ~segments:[ segment ~records:100 ~live:40 () ]
      ()
  in
  let wl =
    [ wl_stats ~branch:"hot" ~reads:100 ~read_rate:2.0 ~fragments:800 () ]
  in
  let recs = Advisor.advise ~report:rep ~workload:wl () in
  Alcotest.(check bool) "several kinds fire at once" true
    (List.length recs >= 3);
  let scores = List.map (fun r -> r.Advisor.rc_score) recs in
  Alcotest.(check bool) "sorted best first" true
    (List.sort (fun a b -> compare b a) scores = scores);
  (* JSON shape stability: every field present on every record, and
     empty input renders an empty array *)
  let json = Advisor.to_json recs in
  List.iter
    (fun key ->
      List.iteri
        (fun i r ->
          let j = Advisor.recommendation_json r in
          Alcotest.(check bool)
            (Printf.sprintf "record %d has %s" i key)
            true
            (let re = Printf.sprintf "\"%s\":" key in
             let rec find from =
               from + String.length re <= String.length j
               && (String.sub j from (String.length re) = re
                  || find (from + 1))
             in
             find 0))
        recs)
    [ "kind"; "target"; "score"; "benefit"; "unit"; "reason" ];
  Alcotest.(check bool) "list renders as a JSON array" true
    (String.length json >= 2 && json.[0] = '[');
  Alcotest.(check string) "empty input is []" "[]" (Advisor.to_json []);
  Alcotest.(check bool) "text mentions the count" true
    (String.length (Advisor.to_text recs) > 0);
  (* prometheus: one gauge per kind, all four kinds present *)
  let samples = Advisor.prometheus_samples recs in
  Alcotest.(check int) "one sample per kind" 4 (List.length samples);
  List.iter
    (fun (fam, _, _) ->
      Alcotest.(check string) "family name" "advisor_recommendations" fam)
    samples

(* ---------- watchdog rules ---------- *)

let tick ?(now = t0) ?(workload = []) w rep = Watchdog.tick ~now w ~report:rep ~workload

let test_watchdog_levels () =
  fresh ();
  Obs.reset ();
  Obs.set_enabled true;
  let w = Watchdog.create () in
  let st0 = Watchdog.status w in
  Alcotest.(check int) "no ticks before the first" 0 st0.Watchdog.st_ticks;
  Alcotest.(check bool) "all-ok before the first" true
    (st0.Watchdog.st_level = Watchdog.L_ok);
  let st = tick w (report ~branches:[ branch () ] ()) in
  Alcotest.(check bool) "clean report is ok" true
    (st.Watchdog.st_level = Watchdog.L_ok);
  Alcotest.(check int) "tick counted" 1 st.Watchdog.st_ticks;
  (* dead-ratio warn then crit *)
  let st = tick w (report ~branches:[ branch ~live:40 ~dead:60 () ] ()) in
  Alcotest.(check bool) "60% dead warns" true
    (st.Watchdog.st_level = Watchdog.L_warn);
  let st = tick w (report ~branches:[ branch ~live:5 ~dead:95 () ] ()) in
  Alcotest.(check bool) "95% dead is critical" true
    (st.Watchdog.st_level = Watchdog.L_critical);
  Alcotest.(check bool) "finding names the rule" true
    (List.exists
       (fun f ->
         f.Watchdog.fi_level = Watchdog.L_critical
         && f.Watchdog.fi_rule = "dead_ratio")
       st.Watchdog.st_findings);
  (* chain depth *)
  let st = tick w (report ~branches:[ branch ~chain:50 () ] ()) in
  Alcotest.(check bool) "chain 50 warns" true
    (st.Watchdog.st_level = Watchdog.L_warn);
  let st = tick w (report ~branches:[ branch ~chain:200 () ] ()) in
  Alcotest.(check bool) "chain 200 is critical" true
    (st.Watchdog.st_level = Watchdog.L_critical);
  (* degraded / quarantined *)
  let st = tick w (report ~health:"degraded: checksum" ()) in
  Alcotest.(check bool) "degraded store is critical" true
    (st.Watchdog.st_level = Watchdog.L_critical);
  let st = tick w (report ~quarantined:[ ("b", "bad page") ] ()) in
  Alcotest.(check bool) "quarantine is critical" true
    (st.Watchdog.st_level = Watchdog.L_critical);
  (* hot replay cost from the workload side *)
  let wl =
    [ wl_stats ~branch:"hot" ~reads:10 ~read_rate:0.5 ~fragments:40 () ]
  in
  let st = tick ~workload:wl w (report ()) in
  Alcotest.(check bool) "2 fragments/s replay warns" true
    (st.Watchdog.st_level = Watchdog.L_warn);
  Alcotest.(check bool) "hot_replay finding present" true
    (List.exists
       (fun f -> f.Watchdog.fi_rule = "hot_replay")
       st.Watchdog.st_findings);
  (* recovery: a clean tick drops back to ok *)
  let st = tick w (report ()) in
  Alcotest.(check bool) "clean tick recovers" true
    (st.Watchdog.st_level = Watchdog.L_ok)

let test_watchdog_rising_and_events () =
  fresh ();
  Obs.reset ();
  Obs.set_enabled true;
  let w = Watchdog.create () in
  (* rising rules baseline on the first tick and never fire there *)
  Obs.add (Obs.counter "governor.shed") 5;
  let st = tick w (report ()) in
  Alcotest.(check bool) "first tick never fires rising rules" true
    (st.Watchdog.st_level = Watchdog.L_ok);
  let st = tick ~now:(t0 +. 1.0) w (report ()) in
  Alcotest.(check bool) "steady shed count stays ok" true
    (st.Watchdog.st_level = Watchdog.L_ok);
  Obs.add (Obs.counter "governor.shed") 3;
  let st = tick ~now:(t0 +. 2.0) w (report ()) in
  Alcotest.(check bool) "shed rising warns" true
    (st.Watchdog.st_level = Watchdog.L_warn);
  Alcotest.(check bool) "shed_rising finding present" true
    (List.exists
       (fun f -> f.Watchdog.fi_rule = "shed_rising")
       st.Watchdog.st_findings);
  (* transitions emit one leveled event; steady state emits none *)
  let watchdog_events () =
    List.length
      (List.filter (fun e -> e.Obs.ev_comp = "watchdog") (Obs.events ()))
  in
  let before = watchdog_events () in
  Obs.add (Obs.counter "governor.shed") 3;
  let _ = tick ~now:(t0 +. 3.0) w (report ()) in
  Alcotest.(check int) "steady level emits no event" before
    (watchdog_events ());
  let _ = tick ~now:(t0 +. 4.0) w (report ()) in
  Alcotest.(check int) "transition back to ok emits one" (before + 1)
    (watchdog_events ());
  (* counters / gauge *)
  Alcotest.(check bool) "watchdog.ticks counts" true
    (Obs.value_of "watchdog.ticks" >= 5);
  Alcotest.(check bool) "warnings counted" true
    (Obs.value_of "watchdog.warnings" >= 1);
  (* to_json shape *)
  let st = Watchdog.status w in
  let j = Watchdog.to_json st in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "json has %s" key)
        true
        (let re = Printf.sprintf "\"%s\":" key in
         let rec find from =
           from + String.length re <= String.length j
           && (String.sub j from (String.length re) = re || find (from + 1))
         in
         find 0))
    [ "status"; "ticks"; "time"; "findings" ]

let test_watchdog_maint_rules () =
  fresh ();
  Obs.reset ();
  Obs.set_enabled true;
  let w = Watchdog.create () in
  let st = tick w (report ()) in
  Alcotest.(check bool) "baseline tick is ok" true
    (st.Watchdog.st_level = Watchdog.L_ok);
  (* failures since the previous tick warn *)
  Obs.add (Obs.counter "maint.tasks_failed") 2;
  let st = tick ~now:(t0 +. 1.0) w (report ()) in
  Alcotest.(check bool) "maint failures warn" true
    (List.exists
       (fun f ->
         f.Watchdog.fi_rule = "maint_failed"
         && f.Watchdog.fi_level = Watchdog.L_warn)
       st.Watchdog.st_findings);
  (* a task running past its budget warns *)
  Obs.set_gauge (Obs.gauge "maint.running_since") (t0 -. 120.0);
  let st = tick ~now:(t0 +. 2.0) w (report ()) in
  Alcotest.(check bool) "stalled task warns" true
    (List.exists
       (fun f -> f.Watchdog.fi_rule = "maint_stalled")
       st.Watchdog.st_findings);
  Obs.set_gauge (Obs.gauge "maint.running_since") 0.0;
  (* repeated failures on one target are critical *)
  Obs.set_gauge (Obs.gauge "maint.consecutive_failures") 3.0;
  let st = tick ~now:(t0 +. 3.0) w (report ()) in
  Alcotest.(check bool) "failure streak is critical" true
    (st.Watchdog.st_level = Watchdog.L_critical
    && List.exists
         (fun f -> f.Watchdog.fi_rule = "maint_streak")
         st.Watchdog.st_findings);
  (* clears with the gauge *)
  Obs.set_gauge (Obs.gauge "maint.consecutive_failures") 0.0;
  let st = tick ~now:(t0 +. 4.0) w (report ()) in
  Alcotest.(check bool) "recovers when the streak clears" true
    (st.Watchdog.st_level = Watchdog.L_ok)

let test_database_health_and_advise () =
  fresh ();
  Obs.reset ();
  Obs.set_enabled true;
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-wl-health" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db =
        Database.open_ ~scheme:Database.Version_first ~dir ~schema ()
      in
      for k = 1 to 30 do
        Database.insert db Vg.master (row k k)
      done;
      let _ = Database.commit db Vg.master ~message:"v1" in
      for _ = 1 to 5 do
        Database.scan db Vg.master (fun _ -> ())
      done;
      let st = Database.health_tick db in
      Alcotest.(check bool) "healthy db ticks ok" true
        (st.Watchdog.st_level = Watchdog.L_ok);
      Alcotest.(check int) "sticky status kept" st.Watchdog.st_ticks
        (Database.watchdog_status db).Watchdog.st_ticks;
      (* advise on a live db returns a (possibly empty) ranked list and
         never raises; with a hostile threshold set it must fire *)
      let _ = Database.advise db in
      let th =
        {
          Advisor.default with
          th_chain_min = 0;
          th_hot_read_rate = 0.0;
          th_rechunk_chain = max_int;
        }
      in
      let recs = Database.advise ~thresholds:th db in
      Alcotest.(check bool)
        "zero thresholds recommend materializing the scanned branch" true
        (List.exists
           (fun r ->
             r.Advisor.rc_kind = Advisor.Materialize
             && r.Advisor.rc_target = "master")
           recs);
      Database.close db)

let () =
  Alcotest.run "workload"
    [
      ( "ewma",
        [
          Alcotest.test_case "decay over simulated time" `Quick
            test_ewma_decay;
          Alcotest.test_case "counts and ratios" `Quick
            test_counts_and_ratios;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4-domain hammer, exact totals" `Quick
            test_parallel_hammer;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "module round-trip and merge" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "database flush/reopen" `Quick
            test_db_checkpoint;
        ] );
      ( "reconcile",
        [
          Alcotest.test_case "tuple-first vs globals" `Quick
            (test_reconcile_with_globals Database.Tuple_first);
          Alcotest.test_case "version-first vs globals" `Quick
            (test_reconcile_with_globals Database.Version_first);
          Alcotest.test_case "hybrid vs globals" `Quick
            (test_reconcile_with_globals Database.Hybrid);
        ] );
      ( "advisor",
        [
          Alcotest.test_case "materialize threshold flips" `Quick
            test_advisor_materialize;
          Alcotest.test_case "rechunk threshold flips" `Quick
            test_advisor_rechunk;
          Alcotest.test_case "gc threshold flips" `Quick test_advisor_gc;
          Alcotest.test_case "compact threshold flips" `Quick
            test_advisor_compact;
          Alcotest.test_case "ranking and json shape" `Quick
            test_advisor_ranking_and_json;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "levels and findings" `Quick
            test_watchdog_levels;
          Alcotest.test_case "rising rules and events" `Quick
            test_watchdog_rising_and_events;
          Alcotest.test_case "maintenance rules" `Quick
            test_watchdog_maint_rules;
          Alcotest.test_case "database health and advise" `Quick
            test_database_health_and_advise;
        ] );
    ]
