(* Tests for the columnar segment format v2: codec round-trips
   (delta-varint ints, dictionary strings, RLE tombstone bitmaps)
   through append / save_meta / open_v2, vectorized-scan pushdown
   against row-wise evaluation, adversarial truncated and bit-flipped
   input, and the v1 compatibility story — a v1-format repository
   opens read-only under the v2 binary and [fsck --migrate] rewrites
   it in place with identical query results, for all three schemes. *)

open Decibel
open Decibel_storage
module Binio = Decibel_util.Binio
module Bitvec = Decibel_util.Bitvec
module Varint = Decibel_util.Varint
module Rle = Decibel_util.Rle
module Prng = Decibel_util.Prng
module Fsutil = Decibel_util.Fsutil
module Vg = Decibel_graph.Version_graph

let qtest t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* varint codec *)

let i64_gen =
  QCheck2.Gen.(
    oneof
      [
        map Int64.of_int int;
        oneofl [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 300L; -300L ];
      ])

let prop_zigzag_involution =
  QCheck2.Test.make ~name:"zigzag/unzigzag identity" ~count:500 i64_gen
    (fun x -> Varint.unzigzag (Varint.zigzag x) = x)

let prop_varint_roundtrip =
  QCheck2.Test.make ~name:"varint i64 roundtrip + size" ~count:500 i64_gen
    (fun x ->
      let buf = Buffer.create 10 in
      Varint.write_i64 buf x;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      Varint.read_i64 s pos = x
      && !pos = String.length s
      && Varint.size_i64 x = String.length s)

let test_varint_rejects_truncated () =
  let buf = Buffer.create 10 in
  Varint.write_u64 buf Int64.max_int;
  let s = Buffer.contents buf in
  for cut = 0 to String.length s - 1 do
    match Varint.read_u64 (String.sub s 0 cut) (ref 0) with
    | _ -> Alcotest.failf "prefix of %d bytes decoded" cut
    | exception Binio.Corrupt _ -> ()
  done

let test_varint_rejects_overlong () =
  (* eleven continuation bytes can never be a valid 64-bit varint *)
  let s = String.make 11 '\x80' in
  match Varint.read_u64 s (ref 0) with
  | _ -> Alcotest.fail "over-long varint decoded"
  | exception Binio.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Rle under adversarial input *)

let bits_gen = QCheck2.Gen.(list_size (int_range 0 200) (int_bound 2000))

let prop_rle_rejects_truncation =
  QCheck2.Test.make ~name:"rle rejects every strict prefix" ~count:100
    bits_gen (fun l ->
      let enc = Rle.encode (Bitvec.of_list l) in
      let ok = ref true in
      for cut = 0 to String.length enc - 1 do
        (match Rle.decode (String.sub enc 0 cut) (ref 0) with
        | _ -> ok := false
        | exception Binio.Corrupt _ -> ())
      done;
      !ok)

let prop_rle_bitflip_never_crashes =
  QCheck2.Test.make ~name:"rle bit flips: Corrupt or bounded decode"
    ~count:200
    QCheck2.Gen.(pair bits_gen (int_bound 10_000))
    (fun (l, seed) ->
      let enc = Rle.encode (Bitvec.of_list l) in
      if String.length enc = 0 then true
      else begin
        let rng = Prng.create (Int64.of_int (seed + 1)) in
        let b = Bytes.of_string enc in
        let i = Prng.int rng (Bytes.length b) in
        let bit = Prng.int rng 8 in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        let flipped = Bytes.to_string b in
        match Rle.decode flipped (ref 0) with
        | v ->
            (* decoded fine: the declared length bounds the result, so
               a flipped run count can not turn into runaway growth *)
            Bitvec.length v <= 8 * String.length flipped * 128
        | exception Binio.Corrupt _ -> true
      end)

(* ------------------------------------------------------------------ *)
(* v2 segment round-trip *)

let seg_schema =
  Schema.make ~name:"s"
    ~columns:
      [
        { Schema.col_name = "id"; col_type = Schema.T_int };
        { Schema.col_name = "grp"; col_type = Schema.T_str };
        { Schema.col_name = "v"; col_type = Schema.T_int };
        { Schema.col_name = "note"; col_type = Schema.T_str };
      ]
    ~pk:"id"

let words = [| "alpha"; "beta"; "gamma"; "delta" |]

(* deterministic but varied rows: sequential pk, low-cardinality
   strings (dictionary-friendly), near-constant ints (delta-friendly),
   occasional wide outliers and tombstones *)
let rows_of_seeds seeds =
  List.mapi
    (fun i (a, b, c) ->
      if a mod 13 = 0 then Col_segment.Tombstone (Value.int i)
      else
        Col_segment.Live
          [|
            Value.int i;
            Value.Str words.(b mod Array.length words);
            (if c mod 29 = 0 then Value.Int Int64.min_int
             else Value.int (1000 + (c mod 50)));
            Value.Str (if b mod 5 = 0 then "" else Printf.sprintf "n%d" (c mod 7));
          |])
    seeds

let collect seg =
  let out = ref [] in
  Col_segment.iter seg (fun _ rv -> out := rv :: !out);
  List.rev !out

let with_seg_dir f =
  let dir = Fsutil.fresh_dir "decibel-colseg" in
  Fun.protect ~finally:(fun () -> Fsutil.rm_rf dir) (fun () -> f dir)

let seeds_gen =
  QCheck2.Gen.(
    list_size (int_range 0 400) (triple small_nat small_nat small_nat))

let prop_segment_roundtrip =
  QCheck2.Test.make ~name:"v2 segment roundtrip save_meta/open_v2"
    ~count:30 seeds_gen (fun seeds ->
      let rows = rows_of_seeds seeds in
      with_seg_dir (fun dir ->
          let pool = Buffer_pool.create () in
          let path = Filename.concat dir "seg" in
          let seg =
            Col_segment.create_v2 ~pool ~schema:seg_schema ~compress:true
              ~path
          in
          List.iteri
            (fun i rv ->
              if Col_segment.append seg rv <> i then
                QCheck2.Test.fail_report "append returned wrong row")
            rows;
          let before = collect seg in
          let buf = Buffer.create 256 in
          Col_segment.save_meta buf seg;
          let meta = Buffer.contents buf in
          Col_segment.close seg;
          let seg2 =
            Col_segment.open_v2 ~pool ~schema:seg_schema ~compress:true ~path
              meta (ref 0)
          in
          let after = collect seg2 in
          let verified = Col_segment.verify seg2 in
          Col_segment.close seg2;
          before = rows && after = rows && verified = []))

let prop_scan_pushdown_matches_rowwise =
  (* scan with a selection bitmap + pushed predicates must equal the
     row-wise reference: live rows, selected, satisfying every pred *)
  QCheck2.Test.make ~name:"pushdown scan = row-wise filter" ~count:30
    QCheck2.Gen.(pair seeds_gen (pair (int_bound 3) (int_bound 49)))
    (fun (seeds, (widx, vbound)) ->
      let rows = rows_of_seeds seeds in
      with_seg_dir (fun dir ->
          let pool = Buffer_pool.create () in
          let seg =
            Col_segment.create_v2 ~pool ~schema:seg_schema ~compress:false
              ~path:(Filename.concat dir "seg")
          in
          List.iter (fun rv -> ignore (Col_segment.append seg rv)) rows;
          let preds =
            [
              Col_pred.of_index 1 Col_pred.Eq (Value.Str words.(widx));
              Col_pred.of_index 2 Col_pred.Le (Value.int (1000 + vbound));
            ]
          in
          let sel = Bitvec.create () in
          List.iteri (fun i (a, _, _) -> if a mod 2 = 0 then Bitvec.set sel i)
            (List.map (fun x -> x) seeds);
          let got = ref [] in
          Col_segment.scan ~sel ~preds seg (fun i t -> got := (i, t) :: !got);
          let want =
            List.filteri (fun i _ -> Bitvec.get sel i) rows
            |> List.concat_map (fun rv ->
                   match rv with
                   | Col_segment.Tombstone _ -> []
                   | Col_segment.Live t ->
                       if Col_pred.eval_tuple preds t then [ t ] else [])
          in
          let got = List.rev_map snd !got in
          Col_segment.close seg;
          got = want))

let test_column_report_compresses () =
  with_seg_dir (fun dir ->
      let pool = Buffer_pool.create () in
      let seg =
        Col_segment.create_v2 ~pool ~schema:seg_schema ~compress:false
          ~path:(Filename.concat dir "seg")
      in
      for i = 0 to 4999 do
        ignore
          (Col_segment.append seg
             (Col_segment.Live
                [|
                  Value.int i;
                  Value.Str words.(i mod 4);
                  Value.int 42;
                  Value.Str "note";
                |]))
      done;
      Col_segment.flush seg;
      let report = Col_segment.column_report seg in
      Alcotest.(check int) "one entry per column" 4 (Array.length report);
      let by_name n =
        Array.to_list report
        |> List.find (fun c -> c.Col_segment.cr_name = n)
      in
      let check_col n enc =
        let c = by_name n in
        Alcotest.(check string) (n ^ " encoding") enc c.Col_segment.cr_encoding;
        Alcotest.(check bool)
          (n ^ " compresses") true
          (c.Col_segment.cr_enc_bytes < c.Col_segment.cr_raw_bytes)
      in
      check_col "id" "delta";
      check_col "grp" "dict";
      check_col "v" "const";
      check_col "note" "dict";
      Col_segment.close seg)

(* ------------------------------------------------------------------ *)
(* adversarial segment corruption: flips and truncation must surface
   as [Binio.Corrupt], never as a crash or silently wrong data *)

let test_segment_bitflip_detected () =
  with_seg_dir (fun dir ->
      let pool = Buffer_pool.create () in
      let path = Filename.concat dir "seg" in
      let seg =
        Col_segment.create_v2 ~pool ~schema:seg_schema ~compress:true ~path
      in
      let rows =
        rows_of_seeds (List.init 600 (fun i -> (i * 7, i * 3, i * 11)))
      in
      List.iter (fun rv -> ignore (Col_segment.append seg rv)) rows;
      let buf = Buffer.create 256 in
      Col_segment.save_meta buf seg;
      let meta = Buffer.contents buf in
      Col_segment.close seg;
      let pristine = Binio.read_file path in
      let rng = Prng.create 0x5eedL in
      for _trial = 1 to 40 do
        let b = Bytes.of_string pristine in
        let i = Prng.int rng (Bytes.length b) in
        let bit = Prng.int rng 8 in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        Binio.write_file path (Bytes.to_string b);
        (* a fresh pool per trial: nothing cached from the last one *)
        let pool = Buffer_pool.create () in
        match
          let seg =
            Col_segment.open_v2 ~pool ~schema:seg_schema ~compress:true ~path
              meta (ref 0)
          in
          Fun.protect
            ~finally:(fun () -> Col_segment.close seg)
            (fun () -> collect seg)
        with
        | got ->
            (* the flip landed in heap slack: data must be untouched *)
            if got <> rows then
              Alcotest.failf "bit flip at byte %d silently changed data" i
        | exception Binio.Corrupt _ -> ()
      done;
      Binio.write_file path pristine)

let test_segment_truncation_detected () =
  with_seg_dir (fun dir ->
      let pool = Buffer_pool.create () in
      let path = Filename.concat dir "seg" in
      let seg =
        Col_segment.create_v2 ~pool ~schema:seg_schema ~compress:true ~path
      in
      let rows =
        rows_of_seeds (List.init 600 (fun i -> (i * 5, i, i * 13)))
      in
      List.iter (fun rv -> ignore (Col_segment.append seg rv)) rows;
      let buf = Buffer.create 256 in
      Col_segment.save_meta buf seg;
      let meta = Buffer.contents buf in
      Col_segment.close seg;
      let pristine = Binio.read_file path in
      let rng = Prng.create 0x7ac3L in
      for _trial = 1 to 20 do
        let cut = Prng.int rng (String.length pristine) in
        Binio.write_file path (String.sub pristine 0 cut);
        let pool = Buffer_pool.create () in
        match
          let seg =
            Col_segment.open_v2 ~pool ~schema:seg_schema ~compress:true ~path
              meta (ref 0)
          in
          Fun.protect
            ~finally:(fun () -> Col_segment.close seg)
            (fun () -> collect seg)
        with
        | _ -> Alcotest.failf "truncation to %d bytes went undetected" cut
        | exception Binio.Corrupt _ -> ()
      done;
      Binio.write_file path pristine)

(* ------------------------------------------------------------------ *)
(* v1 compatibility: open read-only, fsck --migrate, identical results *)

let db_schema = Schema.ints ~name:"r" ~width:4

let row k a b c = [| Value.int k; Value.int a; Value.int b; Value.int c |]

let build_branchy db =
  let m = Vg.master in
  for k = 0 to 399 do
    Database.insert db m (row k k (k * 2) 0)
  done;
  let v1 = Database.commit db m ~message:"base" in
  let child = Database.create_branch db ~name:"child" ~from:v1 in
  for k = 0 to 399 do
    if k mod 3 = 0 then Database.update db child (row k k (k * 2) 1);
    if k mod 7 = 0 then Database.delete db child (Value.int k)
  done;
  for k = 400 to 449 do
    Database.insert db child (row k k 0 2)
  done;
  ignore (Database.commit db child ~message:"child")

(* FNV-1a over every query surface the migration must preserve: each
   head's scan (in emission order), the head-pair diff, and a pushed
   predicate scan *)
let fingerprint db =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s
  in
  let mix_tuple t = mix (Tuple.to_string t) in
  let heads = Database.heads db in
  List.iter
    (fun b ->
      mix (Database.branch_name db b);
      Database.scan db b mix_tuple)
    heads;
  (match heads with
  | b1 :: b2 :: _ ->
      Database.diff db b1 b2 ~pos:mix_tuple ~neg:mix_tuple
  | _ -> ());
  let preds = [ Col_pred.make db_schema ~column:"c3" Col_pred.Eq (Value.int 1) ] in
  List.iter
    (fun b -> Database.scan_filtered db b ~preds mix_tuple)
    heads;
  !h

let test_v1_migrate_roundtrip scheme () =
  let dir = Fsutil.fresh_dir "decibel-colseg-migrate" in
  Fun.protect
    ~finally:(fun () -> Fsutil.rm_rf dir)
    (fun () ->
      (* build and close a v1-format repository *)
      let db =
        Database.open_ ~format:1 ~scheme ~dir ~schema:db_schema ()
      in
      build_branchy db;
      let fp0 = fingerprint db in
      Database.close db;
      (* reopens read-only under the v2 binary, reads intact *)
      let db = Database.reopen ~dir () in
      Alcotest.(check int) "still v1" 1 (Database.format_version db);
      (match Database.health db with
      | Database.Degraded _ -> ()
      | Database.Healthy -> Alcotest.fail "v1 repository opened writable");
      (match Database.insert db Vg.master (row 9000 0 0 0) with
      | () -> Alcotest.fail "write accepted on v1 repository"
      | exception Types.Engine_error _ -> ());
      Alcotest.(check int64) "v1 reads intact" fp0 (fingerprint db);
      Database.close db;
      (* fsck --migrate rewrites it as a repaired finding *)
      let report = Fsck.run ~migrate:true ~dir () in
      (match
         List.find_opt (fun f -> f.Fsck.repaired) report.Fsck.findings
       with
      | Some _ -> ()
      | None -> Alcotest.fail "no repaired migration finding");
      (* migrated repository: v2, writable, identical results *)
      let db = Database.reopen ~dir () in
      Alcotest.(check int) "now v2" 2 (Database.format_version db);
      (match Database.health db with
      | Database.Healthy -> ()
      | Database.Degraded r -> Alcotest.failf "still degraded: %s" r);
      Alcotest.(check int64) "migrated reads identical" fp0 (fingerprint db);
      Database.insert db Vg.master (row 9000 1 2 3);
      Database.delete db Vg.master (Value.int 9000);
      Database.close db;
      (* a second --migrate run is a clean no-op *)
      let again = Fsck.run ~migrate:true ~dir () in
      Alcotest.(check bool) "second migrate clean" true (Fsck.clean again))

let test_v2_migrate_noop () =
  let dir = Fsutil.fresh_dir "decibel-colseg-noop" in
  Fun.protect
    ~finally:(fun () -> Fsutil.rm_rf dir)
    (fun () ->
      let db =
        Database.open_ ~scheme:Database.Hybrid ~dir ~schema:db_schema ()
      in
      build_branchy db;
      Database.close db;
      let report = Fsck.run ~migrate:true ~dir () in
      Alcotest.(check bool) "v2 repo untouched and clean" true
        (Fsck.clean report))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "colseg"
    [
      ( "varint",
        [
          qtest prop_zigzag_involution;
          qtest prop_varint_roundtrip;
          Alcotest.test_case "rejects truncation" `Quick
            test_varint_rejects_truncated;
          Alcotest.test_case "rejects over-long" `Quick
            test_varint_rejects_overlong;
        ] );
      ( "rle-adversarial",
        [
          qtest prop_rle_rejects_truncation;
          qtest prop_rle_bitflip_never_crashes;
        ] );
      ( "segment-v2",
        [
          qtest prop_segment_roundtrip;
          qtest prop_scan_pushdown_matches_rowwise;
          Alcotest.test_case "column report encodings" `Quick
            test_column_report_compresses;
        ] );
      ( "segment-adversarial",
        [
          Alcotest.test_case "bit flips detected" `Quick
            test_segment_bitflip_detected;
          Alcotest.test_case "truncation detected" `Quick
            test_segment_truncation_detected;
        ] );
      ( "v1-compat",
        [
          Alcotest.test_case "tuple-first" `Quick
            (test_v1_migrate_roundtrip Database.Tuple_first);
          Alcotest.test_case "version-first" `Quick
            (test_v1_migrate_roundtrip Database.Version_first);
          Alcotest.test_case "hybrid" `Quick
            (test_v1_migrate_roundtrip Database.Hybrid);
          Alcotest.test_case "v2 migrate is a no-op" `Quick
            test_v2_migrate_noop;
        ] );
    ]
