(* Tests for the parallel scan executor: the domain pool combinators,
   the in-place Bitvec kernels backing per-worker scratch, the
   parallel-vs-serial identity of every engine's scan/multi-scan/diff,
   and the domain-safety of the sharded buffer pool and the lock
   manager's condition-based waiting. *)

open Decibel
open Decibel_storage
module Par = Decibel_par.Par
module Bitvec = Decibel_util.Bitvec
module Vg = Decibel_graph.Version_graph

let qtest t = QCheck_alcotest.to_alcotest t

(* run [f] with the pool sized to [n] workers, restoring afterwards *)
let with_domains n f =
  let saved = Par.domain_count () in
  Par.set_domain_count n;
  Fun.protect ~finally:(fun () -> Par.set_domain_count saved) f

(* ------------------------------------------------------------------ *)
(* Bitvec kernels *)

let test_iter_set_matches_to_list () =
  List.iter
    (fun l ->
      let v = Bitvec.of_list l in
      let got = ref [] in
      Bitvec.iter_set (fun i -> got := i :: !got) v;
      Alcotest.(check (list int)) "iter_set order" (Bitvec.to_list v)
        (List.rev !got))
    [ []; [ 0 ]; [ 63 ]; [ 64 ]; [ 0; 63; 64; 127; 128; 500 ] ]

let test_iter_set_single_bits () =
  (* one test per bit position exercises the whole de Bruijn table *)
  for k = 0 to 191 do
    let v = Bitvec.of_list [ k ] in
    let got = ref [] in
    Bitvec.iter_set (fun i -> got := i :: !got) v;
    Alcotest.(check (list int))
      (Printf.sprintf "single bit %d" k)
      [ k ] (List.rev !got)
  done

let bits_gen = QCheck2.Gen.(list_size (int_range 0 200) (int_bound 500))

let prop_iter_set_range =
  QCheck2.Test.make ~name:"iter_set_range = filtered to_list" ~count:300
    QCheck2.Gen.(triple bits_gen (int_bound 520) (int_bound 520))
    (fun (l, a, b) ->
      let lo = min a b and hi = max a b in
      let v = Bitvec.of_list l in
      let got = ref [] in
      Bitvec.iter_set_range (fun i -> got := i :: !got) v ~lo ~hi;
      let want = List.filter (fun i -> i >= lo && i < hi) (Bitvec.to_list v) in
      List.rev !got = want)

let prop_in_place_match_pure =
  QCheck2.Test.make ~name:"in-place kernels match pure ops" ~count:300
    QCheck2.Gen.(pair bits_gen bits_gen)
    (fun (la, lb) ->
      let a = Bitvec.of_list la and b = Bitvec.of_list lb in
      let check pure in_place =
        let dst = Bitvec.create () in
        Bitvec.copy_into ~src:a ~dst;
        in_place dst b;
        Bitvec.equal dst (pure a b)
      in
      check Bitvec.inter Bitvec.inter_in_place
      && check Bitvec.diff Bitvec.diff_in_place
      && check Bitvec.xor Bitvec.xor_in_place
      && check Bitvec.union Bitvec.union_in_place)

let prop_copy_into_reuses =
  QCheck2.Test.make ~name:"copy_into overwrites dirty scratch" ~count:300
    QCheck2.Gen.(pair bits_gen bits_gen)
    (fun (la, lb) ->
      let scratch = Bitvec.of_list la in
      let src = Bitvec.of_list lb in
      Bitvec.copy_into ~src ~dst:scratch;
      Bitvec.equal scratch src && Bitvec.to_list scratch = Bitvec.to_list src)

(* ------------------------------------------------------------------ *)
(* pool combinators *)

let test_parallel_for () =
  with_domains 4 (fun () ->
      let n = 10_000 in
      let hits = Array.make n (Atomic.make 0) in
      for i = 0 to n - 1 do
        hits.(i) <- Atomic.make 0
      done;
      Par.parallel_for ~chunk:64 n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i a ->
          if Atomic.get a <> 1 then
            Alcotest.failf "index %d visited %d times" i (Atomic.get a))
        hits)

let test_parallel_fold () =
  with_domains 4 (fun () ->
      let n = 25_000 in
      let got =
        Par.parallel_fold ~chunk:97 ~n
          ~init:(fun () -> 0)
          ~body:(fun acc i -> acc + i)
          ~merge:(fun res acc -> res + acc)
          0
      in
      Alcotest.(check int) "sum" (n * (n - 1) / 2) got)

let test_parallel_fold_ordered_merge () =
  with_domains 4 (fun () ->
      (* list concatenation is order-sensitive: the merge order
         guarantee makes the parallel fold equal the serial one *)
      let n = 5000 in
      let got =
        Par.parallel_fold ~chunk:61 ~n
          ~init:(fun () -> [])
          ~body:(fun acc i -> i :: acc)
          ~merge:(fun res acc -> res @ List.rev acc)
          []
      in
      Alcotest.(check (list int)) "ordered" (List.init n Fun.id) got)

let test_parallel_iter_buffered_order () =
  with_domains 4 (fun () ->
      let n = 2000 in
      let got = ref [] in
      Par.parallel_iter_buffered ~n
        ~produce:(fun i -> i * 3)
        ~consume:(fun x -> got := x :: !got)
        ();
      Alcotest.(check (list int)) "consume order"
        (List.init n (fun i -> i * 3))
        (List.rev !got))

let test_exception_propagates () =
  with_domains 4 (fun () ->
      match
        Par.parallel_for 1000 (fun i -> if i = 617 then failwith "boom")
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m)

let test_nested_runs_serial () =
  with_domains 2 (fun () ->
      (* a combinator used from inside a pool worker must degrade to a
         serial loop rather than deadlock on the pool's own queue.
         (Tasks may also run on the submitting domain, which helps
         drain the queue — there [available] stays true and nested
         fan-out is legal, so only worker domains are checked.) *)
      let violations = Atomic.make 0 in
      Par.parallel_for ~chunk:1 8 (fun _ ->
          if Par.in_worker () && Par.available () then
            Atomic.incr violations;
          Par.parallel_for ~chunk:1 4 (fun _ -> ()));
      Alcotest.(check int) "workers see available()=false" 0
        (Atomic.get violations))

let test_set_domain_count_roundtrip () =
  with_domains 3 (fun () ->
      Alcotest.(check int) "resized" 3 (Par.domain_count ());
      Par.set_domain_count 0;
      Alcotest.(check bool) "serial fallback" false (Par.available ());
      Par.parallel_for 100 (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* engine identity: parallel output = serial output, all schemes *)

let schema = Schema.ints ~name:"r" ~width:4

let row k a b c = [| Value.int k; Value.int a; Value.int b; Value.int c |]

let key k = Value.int k

(* a small but branchy database: enough rows for several chunks, with
   updates and deletes so diff/multi-scan outputs are non-trivial *)
let build_db ?(compress = false) scheme dir =
  let db = Database.open_ ~compress ~scheme ~dir ~schema () in
  let m = Vg.master in
  for k = 0 to 599 do
    Database.insert db m (row k k (k * 2) 0)
  done;
  let v1 = Database.commit db m ~message:"base" in
  let child = Database.create_branch db ~name:"child" ~from:v1 in
  let other = Database.create_branch db ~name:"other" ~from:v1 in
  for k = 0 to 599 do
    if k mod 3 = 0 then Database.update db child (row k k (k * 2) 1);
    if k mod 7 = 0 then Database.delete db child (key k)
  done;
  for k = 600 to 699 do
    Database.insert db child (row k k 0 2)
  done;
  for k = 0 to 599 do
    if k mod 5 = 0 then Database.update db other (row k k (k * 2) 9)
  done;
  ignore (Database.commit db child ~message:"child");
  (db, m, child)

type snapshot = {
  scan : Tuple.t list;
  multi : (Tuple.t * Types.branch_id list) list;
  pos : Tuple.t list;
  neg : Tuple.t list;
}

let snapshot db ~b1 ~b2 =
  let scan = ref [] in
  Database.scan db b1 (fun t -> scan := t :: !scan);
  let multi = ref [] in
  Database.multi_scan db (Database.heads db) (fun a ->
      multi := (a.Types.tuple, a.Types.in_branches) :: !multi);
  let pos = ref [] and neg = ref [] in
  Database.diff db b1 b2
    ~pos:(fun t -> pos := t :: !pos)
    ~neg:(fun t -> neg := t :: !neg);
  {
    scan = List.rev !scan;
    multi = List.rev !multi;
    pos = List.rev !pos;
    neg = List.rev !neg;
  }

let check_snapshots_equal ~msg a b =
  let tuples = Alcotest.(list (testable Tuple.pp Tuple.equal)) in
  Alcotest.check tuples (msg ^ ": scan") a.scan b.scan;
  Alcotest.check tuples (msg ^ ": diff pos") a.pos b.pos;
  Alcotest.check tuples (msg ^ ": diff neg") a.neg b.neg;
  Alcotest.(check int)
    (msg ^ ": multi count")
    (List.length a.multi) (List.length b.multi);
  List.iter2
    (fun (ta, la) (tb, lb) ->
      if not (Tuple.equal ta tb && la = lb) then
        Alcotest.failf "%s: multi-scan row differs: %s vs %s" msg
          (Tuple.to_string ta) (Tuple.to_string tb))
    a.multi b.multi

let test_engine_identity ?compress scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-par-test" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db, m, child = build_db ?compress scheme dir in
      Fun.protect
        ~finally:(fun () -> Database.close db)
        (fun () ->
          let run n =
            with_domains n (fun () -> snapshot db ~b1:child ~b2:m)
          in
          let serial = run 0 in
          check_snapshots_equal ~msg:"1 domain" serial (run 1);
          check_snapshots_equal ~msg:"4 domains" serial (run 4)))

(* ------------------------------------------------------------------ *)
(* buffer pool under concurrent hammering *)

let test_buffer_pool_hammer () =
  let pool = Buffer_pool.create ~page_size:256 ~capacity_pages:64 () in
  let nd = 4 and per_domain = 4000 in
  let finds = Atomic.make 0 in
  let worker seed () =
    let rng = ref seed in
    let next () =
      rng := (!rng * 1103515245) + 12345;
      (!rng lsr 7) land 0xFFFF
    in
    for _ = 1 to per_domain do
      let file = next () mod 4 and page = next () mod 128 in
      (match Buffer_pool.find pool ~file ~page with
      | Some b -> assert (Bytes.length b = 256)
      | None -> Buffer_pool.add pool ~file ~page (Bytes.create 256));
      Atomic.incr finds
    done
  in
  let domains =
    List.init nd (fun i -> Domain.spawn (worker ((i * 7919) + 1)))
  in
  List.iter Domain.join domains;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "every find hit or missed" (Atomic.get finds)
    (s.Buffer_pool.hits + s.Buffer_pool.misses);
  Alcotest.(check bool) "residency bounded" true
    (Buffer_pool.resident_pages pool <= Buffer_pool.capacity_pages pool);
  Alcotest.(check bool) "evicted under pressure" true (s.evictions > 0)

(* ------------------------------------------------------------------ *)
(* lock manager: condition wake-up and deadline *)

let test_lock_wakeup () =
  let lm = Lock_manager.create ~timeout_s:10.0 () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  let acquired_at = ref 0.0 in
  let waiter =
    Thread.create
      (fun () ->
        Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Exclusive;
        acquired_at := Unix.gettimeofday ();
        Lock_manager.release_all lm ~owner:2)
      ()
  in
  Thread.delay 0.05;
  let released_at = Unix.gettimeofday () in
  Lock_manager.release_all lm ~owner:1;
  Thread.join waiter;
  (* the release broadcast must wake the waiter promptly — orders of
     magnitude under the old 2 ms polling loop's worst case, and far
     under the 10 s deadline *)
  Alcotest.(check bool) "woken promptly" true
    (!acquired_at -. released_at < 1.0)

let test_lock_deadline () =
  let lm = Lock_manager.create ~timeout_s:0.1 () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  match
    Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Shared
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Lock_manager.Deadlock r ->
      Alcotest.(check string) "resource" "r" r;
      Lock_manager.release_all lm ~owner:1

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [
      ( "bitvec-kernels",
        [
          Alcotest.test_case "iter_set matches to_list" `Quick
            test_iter_set_matches_to_list;
          Alcotest.test_case "single bits 0..191" `Quick
            test_iter_set_single_bits;
          qtest prop_iter_set_range;
          qtest prop_in_place_match_pure;
          qtest prop_copy_into_reuses;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers range" `Quick
            test_parallel_for;
          Alcotest.test_case "parallel_fold sum" `Quick test_parallel_fold;
          Alcotest.test_case "parallel_fold merge order" `Quick
            test_parallel_fold_ordered_merge;
          Alcotest.test_case "iter_buffered consume order" `Quick
            test_parallel_iter_buffered_order;
          Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested combinators run serial" `Quick
            test_nested_runs_serial;
          Alcotest.test_case "set_domain_count roundtrip" `Quick
            test_set_domain_count_roundtrip;
        ] );
      ( "engine-identity",
        [
          Alcotest.test_case "tuple-first" `Quick
            (test_engine_identity Database.Tuple_first);
          Alcotest.test_case "version-first" `Quick
            (test_engine_identity Database.Version_first);
          Alcotest.test_case "hybrid" `Quick
            (test_engine_identity Database.Hybrid);
          (* the same identity over LZ77-wrapped v2 blocks: parallel
             workers decompress independently into per-domain scratch,
             so results must still be byte-identical to serial *)
          Alcotest.test_case "tuple-first compressed" `Quick
            (test_engine_identity ~compress:true Database.Tuple_first);
          Alcotest.test_case "version-first compressed" `Quick
            (test_engine_identity ~compress:true Database.Version_first);
          Alcotest.test_case "hybrid compressed" `Quick
            (test_engine_identity ~compress:true Database.Hybrid);
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "buffer pool hammer" `Quick
            test_buffer_pool_hammer;
          Alcotest.test_case "lock release wakes waiter" `Quick
            test_lock_wakeup;
          Alcotest.test_case "lock deadline still enforced" `Quick
            test_lock_deadline;
        ] );
    ]
