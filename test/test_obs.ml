(* Tests for the observability layer: the metrics registry, tracing
   spans, the enable switch, and the per-operation instrumentation the
   engines feed it (counter deltas of a hybrid scan are checked against
   the buffer pool's own accounting). *)

open Decibel
open Decibel_storage
module Obs = Decibel_obs.Obs

(* ------------------------------------------------------------------ *)
(* registry primitives *)

let test_counters () =
  Obs.set_enabled true;
  let c = Obs.counter "test.counter" in
  let before = Obs.counter_value c in
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "incr + add" (before + 42) (Obs.counter_value c);
  Alcotest.(check int) "value_of same name" (before + 42)
    (Obs.value_of "test.counter");
  (* interned: a second lookup returns the same handle *)
  Obs.incr (Obs.counter "test.counter");
  Alcotest.(check int) "interned handle" (before + 43)
    (Obs.value_of "test.counter");
  Alcotest.(check int) "absent counter reads 0" 0
    (Obs.value_of "test.never_created")

let test_gauges () =
  Obs.set_enabled true;
  let g = Obs.gauge "test.gauge" in
  Obs.set_gauge g 2.5;
  Alcotest.(check (float 1e-9)) "gauge set" 2.5 (Obs.gauge_value g)

let test_histogram_percentiles () =
  Obs.set_enabled true;
  let h = Obs.histogram "test.hist" in
  (* 100 observations spread over two decades: 1ms .. 100ms *)
  for i = 1 to 100 do
    Obs.observe h (float_of_int i *. 1e-3)
  done;
  let s = Obs.summarize h in
  Alcotest.(check int) "count" 100 s.Obs.hs_count;
  Alcotest.(check bool) "sum" true (abs_float (s.Obs.hs_sum -. 5.05) < 1e-6);
  Alcotest.(check (float 1e-9)) "min" 1e-3 s.Obs.hs_min;
  Alcotest.(check (float 1e-9)) "max" 0.1 s.Obs.hs_max;
  (* bucketed quantiles are upper bounds of the crossing bucket: the
     p50 must sit between the true median and the max *)
  Alcotest.(check bool) "p50 ordered" true
    (s.Obs.hs_p50 >= 0.05 && s.Obs.hs_p50 <= s.Obs.hs_p95);
  Alcotest.(check bool) "p95 ordered" true
    (s.Obs.hs_p95 >= 0.095 && s.Obs.hs_p95 <= s.Obs.hs_p99);
  Alcotest.(check bool) "p99 clamped to max" true (s.Obs.hs_p99 <= 0.1)

let test_nested_spans () =
  Obs.set_enabled true;
  let before = Obs.span_count () in
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span ~attrs:[ ("k", "v") ] "inner" (fun () -> 7))
  in
  Alcotest.(check int) "result through spans" 7 r;
  Alcotest.(check int) "two spans recorded" (before + 2) (Obs.span_count ());
  let spans = Obs.spans () in
  let inner = List.find (fun s -> s.Obs.sp_name = "inner") spans in
  let outer = List.find (fun s -> s.Obs.sp_name = "outer") spans in
  Alcotest.(check bool) "inner nested inside outer" true
    (inner.Obs.sp_start >= outer.Obs.sp_start
    && inner.Obs.sp_dur <= outer.Obs.sp_dur);
  Alcotest.(check bool) "attrs kept" true
    (inner.Obs.sp_attrs = [ ("k", "v") ]);
  (* spans feed a histogram of the same name *)
  Alcotest.(check bool) "span histogram fed" true
    ((Obs.summarize (Obs.histogram "inner")).Obs.hs_count >= 1);
  (* chrome trace lines parse as one JSON object each *)
  let trace = Obs.dump_trace () in
  String.split_on_char '\n' trace
  |> List.iter (fun line ->
         if line <> "" then begin
           Alcotest.(check bool) "event is an object" true
             (String.length line > 2 && line.[0] = '{'
             && line.[String.length line - 1] = '}')
         end)

let test_enable_disable () =
  Obs.set_enabled true;
  let c = Obs.counter "test.toggle" in
  let spans0 = Obs.span_count () in
  Obs.set_enabled false;
  Alcotest.(check bool) "reads disabled" false (Obs.enabled ());
  Obs.incr c;
  Obs.add c 10;
  let r = Obs.with_span "test.disabled_span" (fun () -> 3) in
  Obs.set_enabled true;
  Alcotest.(check int) "counter frozen while disabled" 0
    (Obs.counter_value c);
  Alcotest.(check int) "no span recorded while disabled" spans0
    (Obs.span_count ());
  Alcotest.(check int) "with_span still runs the body" 3 r;
  Obs.incr c;
  Alcotest.(check int) "counting resumes" 1 (Obs.counter_value c)

let test_snapshot_json () =
  Obs.set_enabled true;
  Obs.incr (Obs.counter "test.json\"quoted");
  let snap = Obs.snapshot () in
  let js = Obs.to_json snap in
  Alcotest.(check bool) "object shape" true
    (js.[0] = '{' && js.[String.length js - 1] = '}');
  (* the quote inside the key must come out escaped *)
  Alcotest.(check bool) "escaped quote present" true
    (let needle = "json\\\"quoted" in
     let n = String.length needle and m = String.length js in
     let rec go i =
       i + n <= m && (String.sub js i n = needle || go (i + 1))
     in
     go 0);
  (* counters are sorted by name in snapshots *)
  Alcotest.(check bool) "counters sorted" true
    (let names = List.map fst snap.Obs.counters in
     names = List.sort compare names)

(* ------------------------------------------------------------------ *)
(* bucket layouts, empty histograms, diff edge cases, span limits *)

let test_histogram_bucket_mismatch () =
  Obs.set_enabled true;
  let buckets = [| 0.1; 1.0; 10.0 |] in
  let h = Obs.histogram ~buckets "test.hist.layout" in
  (* re-interning with a structurally equal layout is fine *)
  let h' = Obs.histogram ~buckets:[| 0.1; 1.0; 10.0 |] "test.hist.layout" in
  Alcotest.(check bool) "equal layout returns same handle" true (h == h');
  (* omitting [?buckets] is a bare lookup and never conflicts *)
  let h'' = Obs.histogram "test.hist.layout" in
  Alcotest.(check bool) "bare lookup returns same handle" true (h == h'');
  (* a different layout for an interned name must raise *)
  (match Obs.histogram ~buckets:[| 0.5 |] "test.hist.layout" with
  | _ -> Alcotest.fail "mismatched bucket layout did not raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names the histogram" true
        (let needle = "test.hist.layout" in
         let n = String.length needle and m = String.length msg in
         let rec go i =
           i + n <= m && (String.sub msg i n = needle || go (i + 1))
         in
         go 0));
  (* the failed call must not have corrupted the interned layout *)
  Alcotest.(check int) "layout unchanged after failed intern" 3
    (Array.length (Obs.hist_buckets h))

let finite f = Float.is_finite f

let check_all_zero_summary label h =
  let s = Obs.summarize h in
  Alcotest.(check int) (label ^ ": count") 0 s.Obs.hs_count;
  List.iter
    (fun (n, v) ->
      Alcotest.(check (float 0.)) (label ^ ": " ^ n) 0.0 v;
      Alcotest.(check bool) (label ^ ": " ^ n ^ " finite") true (finite v))
    [
      ("sum", s.Obs.hs_sum);
      ("min", s.Obs.hs_min);
      ("max", s.Obs.hs_max);
      ("p50", s.Obs.hs_p50);
      ("p95", s.Obs.hs_p95);
      ("p99", s.Obs.hs_p99);
    ]

let test_empty_histogram_quantiles () =
  Obs.set_enabled true;
  let h = Obs.histogram "test.hist.empty" in
  List.iter
    (fun q ->
      let v = Obs.quantile h q in
      Alcotest.(check (float 0.)) "empty quantile is 0" 0.0 v;
      Alcotest.(check bool) "empty quantile finite" true (finite v))
    [ 0.0; 0.5; 0.99; 1.0 ];
  check_all_zero_summary "empty" h;
  (* feed it, then reset: it must summarize all-zero again, nan-free *)
  Obs.observe h 0.25;
  Obs.observe h 0.5;
  Alcotest.(check int) "fed count" 2 (Obs.summarize h).Obs.hs_count;
  Obs.reset ();
  check_all_zero_summary "after reset" h;
  Alcotest.(check (float 0.)) "quantile 0 after reset" 0.0
    (Obs.quantile h 0.5)

let test_counters_diff_created_between () =
  Obs.set_enabled true;
  let anchor = Obs.counter "test.diff.anchor" in
  Obs.add anchor 3;
  let before = Obs.snapshot () in
  (* this counter does not exist in [before] at all *)
  let fresh = Obs.counter "test.diff.born_between_snapshots" in
  Obs.add fresh 5;
  Obs.add anchor 2;
  let after = Obs.snapshot () in
  let d = Obs.counters_diff before after in
  Alcotest.(check int) "fresh counter deltas from zero" 5
    (List.assoc "test.diff.born_between_snapshots" d);
  Alcotest.(check int) "pre-existing counter deltas normally" 2
    (List.assoc "test.diff.anchor" d)

let test_span_overflow_counted () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.set_max_spans 10;
  Fun.protect
    ~finally:(fun () -> Obs.set_max_spans 200_000)
    (fun () ->
      for i = 1 to 15 do
        Obs.with_span "test.overflow" (fun () -> ignore i)
      done;
      Alcotest.(check int) "span buffer capped" 10 (Obs.span_count ());
      Alcotest.(check int) "overflow drops counted" 5
        (Obs.value_of "obs.spans_dropped");
      (* dropped spans still fed the duration histogram *)
      Alcotest.(check int) "histogram sees every span" 15
        (Obs.summarize (Obs.histogram "test.overflow")).Obs.hs_count)

(* ------------------------------------------------------------------ *)
(* event log: ring semantics, sink, levels, slow-op emission *)

let is_json_object line =
  String.length line > 2
  && line.[0] = '{'
  && line.[String.length line - 1] = '}'

let test_event_ring () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.set_event_capacity 4;
  Fun.protect
    ~finally:(fun () -> Obs.set_event_capacity 4096)
    (fun () ->
      Obs.event ~comp:"test" "one";
      Obs.event ~level:Obs.Warn ~attrs:[ ("k", "v") ] ~comp:"test" "two";
      let evs = Obs.events () in
      Alcotest.(check int) "two buffered" 2 (List.length evs);
      let e2 = List.nth evs 1 in
      Alcotest.(check string) "component kept" "test" e2.Obs.ev_comp;
      Alcotest.(check string) "message kept" "two" e2.Obs.ev_msg;
      Alcotest.(check bool) "level kept" true (e2.Obs.ev_level = Obs.Warn);
      Alcotest.(check bool) "attrs kept" true
        (e2.Obs.ev_attrs = [ ("k", "v") ]);
      Alcotest.(check bool) "seq monotonic" true
        ((List.hd evs).Obs.ev_seq < e2.Obs.ev_seq);
      (* overflow the 4-slot ring: oldest events fall out, counted *)
      for i = 3 to 7 do
        Obs.event ~comp:"test" (string_of_int i)
      done;
      let evs = Obs.events () in
      Alcotest.(check int) "ring capped at capacity" 4 (List.length evs);
      Alcotest.(check string) "oldest surviving event" "4"
        (List.hd evs).Obs.ev_msg;
      Alcotest.(check string) "newest event" "7"
        (List.nth evs 3).Obs.ev_msg;
      Alcotest.(check int) "drops counted" 3
        (Obs.value_of "obs.events_dropped");
      Alcotest.(check int) "emission total unaffected by drops" 7
        (Obs.events_emitted ());
      (* JSONL render: one object per line, oldest first *)
      let lines =
        String.split_on_char '\n' (Obs.events_json ())
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "jsonl line per event" 4 (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "jsonl line is an object" true
            (is_json_object l))
        lines;
      (* min-level filter: Debug below Info is not buffered *)
      Obs.set_min_event_level Obs.Warn;
      Obs.event ~comp:"test" "filtered-info";
      Obs.set_min_event_level Obs.Debug;
      Alcotest.(check int) "below-level event not emitted" 7
        (Obs.events_emitted ());
      (* disabled: nothing is emitted at all *)
      Obs.set_enabled false;
      Obs.event ~comp:"test" "invisible";
      Obs.set_enabled true;
      Alcotest.(check int) "disabled suppresses events" 7
        (Obs.events_emitted ()))

let test_event_sink () =
  Obs.set_enabled true;
  Obs.reset ();
  let path = Filename.temp_file "decibel-events" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_event_sink None;
      Sys.remove path)
    (fun () ->
      Obs.set_event_sink (Some path);
      Obs.event ~comp:"sink" "alpha";
      Obs.event ~level:Obs.Error ~comp:"sink" "beta";
      Obs.set_event_sink None;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one jsonl line per event" 2 (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "sink line is an object" true
            (is_json_object l))
        lines;
      Alcotest.(check bool) "payload written through" true
        (let l = List.nth lines 1 in
         let needle = "\"beta\"" in
         let n = String.length needle and m = String.length l in
         let rec go i =
           i + n <= m && (String.sub l i n = needle || go (i + 1))
         in
         go 0))

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_event_sink_rotation () =
  Obs.set_enabled true;
  Obs.reset ();
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test-obs-rot" in
  let path = Filename.concat dir "events.jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_event_sink None;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let rot0 = Obs.value_of "obs.event_log_rotations" in
      (* ~150-byte lines against a 256-byte budget: the sink rotates
         every couple of events *)
      Obs.set_event_sink ~max_bytes:256 ~keep:2 (Some path);
      for i = 1 to 12 do
        Obs.event ~comp:"rot"
          (Printf.sprintf "event-%03d-%s" i (String.make 80 'x'))
      done;
      Obs.set_event_sink None;
      Alcotest.(check bool) "rotations counted" true
        (Obs.value_of "obs.event_log_rotations" > rot0);
      Alcotest.(check bool) "live file exists" true (Sys.file_exists path);
      Alcotest.(check bool) ".1 exists" true (Sys.file_exists (path ^ ".1"));
      Alcotest.(check bool) ".2 exists" true (Sys.file_exists (path ^ ".2"));
      Alcotest.(check bool) ".3 never created (keep 2)" false
        (Sys.file_exists (path ^ ".3"));
      (* rotation happens on line boundaries: every surviving file is
         intact JSONL, and only oversized single lines may exceed the
         byte budget *)
      List.iter
        (fun p ->
          let ic = open_in p in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              Alcotest.(check bool) (p ^ " within budget") true
                (in_channel_length ic <= 256 + 200);
              try
                while true do
                  let l = input_line ic in
                  if l <> "" then
                    Alcotest.(check bool) "rotated line is an object" true
                      (is_json_object l)
                done
              with End_of_file -> ()))
        [ path; path ^ ".1"; path ^ ".2" ];
      (* the newest event is in the live file, not a rotated one *)
      let ic = open_in path in
      let last = ref "" in
      (try
         while true do
           last := input_line ic
         done
       with End_of_file -> close_in ic);
      Alcotest.(check bool) "live file holds the newest event" true
        (contains !last "event-012"))

let test_streaming_trace () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.with_span "trace.a" (fun () ->
      Obs.with_span "trace.b" (fun () -> ()));
  Obs.with_span "trace.c" (fun () -> ());
  let dump_lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Obs.dump_trace ()))
  in
  Alcotest.(check int) "one line per span" 3 (List.length dump_lines);
  (* write_trace streams through output_trace; the file must carry
     exactly the batch dump, line for line *)
  let path = Filename.temp_file "decibel-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.write_trace ~path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           let l = input_line ic in
           if l <> "" then lines := l :: !lines
         done
       with End_of_file -> close_in ic);
      let file_lines = List.rev !lines in
      Alcotest.(check (list string)) "streamed = batch dump" dump_lines
        file_lines;
      (* each line is span_json of the corresponding span *)
      let b = List.find (fun s -> s.Obs.sp_name = "trace.b") (Obs.spans ()) in
      Alcotest.(check bool) "span_json line present" true
        (List.mem (Obs.span_json b) file_lines))

let test_prometheus_format () =
  Obs.set_enabled true;
  Obs.reset ();
  let module P = Decibel_obs.Prometheus in
  (* touch one member of each HELP-registered family *)
  Obs.incr (Obs.counter "governor.admitted");
  Obs.incr (Obs.counter "prof.profiles");
  Obs.incr (Obs.counter "obs.event_log_rotations");
  let text =
    P.render
      ~extra:[ ("test_labeled", [ ("branch", "we\"ird\nname\\x") ], 1.0) ]
      ()
  in
  (* HELP and TYPE headers for the documented families, HELP first *)
  List.iter
    (fun family ->
      let help = "# HELP " ^ family ^ " " in
      let typ = "# TYPE " ^ family ^ " counter" in
      Alcotest.(check bool) (family ^ " has HELP") true (contains text help);
      Alcotest.(check bool) (family ^ " has TYPE") true (contains text typ);
      let idx needle =
        let n = String.length needle and m = String.length text in
        let rec go i =
          if i + n > m then -1
          else if String.sub text i n = needle then i
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check bool) (family ^ " HELP precedes TYPE") true
        (idx help < idx typ))
    [
      "governor_admitted_total"; "prof_profiles_total";
      "obs_event_log_rotations_total";
    ];
  (* label values escape backslash, double-quote and newline *)
  Alcotest.(check bool) "label value escaped" true
    (contains text "branch=\"we\\\"ird\\nname\\\\x\"");
  (* EVERY family carries both headers: undocumented ones get a
     readable fallback HELP derived from the metric name *)
  Obs.incr (Obs.counter "test.prom.undocumented");
  let text2 = P.render () in
  Alcotest.(check bool) "TYPE for unknown family" true
    (contains text2 "# TYPE test_prom_undocumented_total counter");
  Alcotest.(check bool) "fallback HELP for unknown family" true
    (contains text2 "# HELP test_prom_undocumented_total test prom undocumented\n");
  (* exporter-wide regression: walk the rendered text and require that
     each TYPE line is immediately preceded by its family's HELP line *)
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let lines = String.split_on_char '\n' text2 in
  let rec check_pairs = function
    | prev :: line :: rest ->
        (if has_prefix "# TYPE " line then
           let fam =
             match String.split_on_char ' ' line with
             | _ :: _ :: fam :: _ -> fam
             | _ -> Alcotest.fail ("malformed TYPE line: " ^ line)
           in
           Alcotest.(check bool)
             ("HELP precedes TYPE for " ^ fam)
             true
             (has_prefix ("# HELP " ^ fam ^ " ") prev));
        check_pairs (line :: rest)
    | _ -> ()
  in
  check_pairs lines

let test_slow_op_log () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.set_slow_threshold "test.slow" 0.0;
  Fun.protect
    ~finally:(fun () -> Obs.clear_slow_threshold "test.slow")
    (fun () ->
      Alcotest.(check bool) "threshold registered" true
        (Obs.slow_threshold "test.slow" = Some 0.0);
      Obs.with_span ~attrs:[ ("x", "1") ] "test.slow" (fun () -> ());
      (* a span of any duration is >= 0, so the slow-op log must fire *)
      let slow =
        List.filter (fun e -> e.Obs.ev_comp = "slow_op") (Obs.events ())
      in
      Alcotest.(check int) "one slow-op event" 1 (List.length slow);
      let e = List.hd slow in
      Alcotest.(check string) "event msg is the span name" "test.slow"
        e.Obs.ev_msg;
      Alcotest.(check bool) "warn level" true (e.Obs.ev_level = Obs.Warn);
      Alcotest.(check bool) "duration attr present" true
        (List.mem_assoc "duration_ms" e.Obs.ev_attrs);
      Alcotest.(check bool) "threshold attr present" true
        (List.mem_assoc "threshold_ms" e.Obs.ev_attrs);
      Alcotest.(check bool) "span attrs carried over" true
        (List.assoc_opt "x" e.Obs.ev_attrs = Some "1");
      Alcotest.(check int) "obs.slow_ops counted" 1
        (Obs.value_of "obs.slow_ops");
      (* uninstrumented names never fire *)
      Obs.with_span "test.fast" (fun () -> ());
      Alcotest.(check int) "no threshold, no event" 1
        (List.length
           (List.filter
              (fun e -> e.Obs.ev_comp = "slow_op")
              (Obs.events ()))))

(* ------------------------------------------------------------------ *)
(* instrumentation wired through the storage layers *)

let schema = Schema.ints ~name:"r" ~width:4

let row k = [| Value.int k; Value.int 1; Value.int 2; Value.int 3 |]

let test_hybrid_scan_accounting () =
  Obs.set_enabled true;
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test-obs" in
  (* small pages so a modest dataset spans many of them *)
  let pool = Buffer_pool.create ~page_size:512 ~capacity_pages:64 () in
  let db = Database.open_ ~pool ~scheme:Database.Hybrid ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let master = Database.branch_named db "master" in
      (* enough rows that the dataset spans several small pages even
         after v2 per-column compression *)
      let n = 3000 in
      for k = 1 to n do
        Database.insert db master (row k)
      done;
      let _ = Database.commit db master ~message:"seed" in
      (* seal and flush so the extent accounting sees only on-disk
         bytes, then cold-cache: every page the scan touches must miss *)
      Database.flush db;
      Database.drop_caches db;
      let bytes = Database.dataset_bytes db in
      let expected_pages = (bytes + 511) / 512 in
      Alcotest.(check bool) "dataset spans several pages" true
        (expected_pages >= 4);
      let before = Obs.snapshot () in
      let seen = ref 0 in
      Database.scan db master (fun _ -> incr seen);
      let after = Obs.snapshot () in
      let delta name =
        List.assoc name (Obs.counters_diff before after)
      in
      Alcotest.(check int) "tuples scanned" n !seen;
      Alcotest.(check int) "engine.scan.tuples" n (delta "engine.scan.tuples");
      Alcotest.(check int) "engine.scan.pages = dataset extent"
        expected_pages (delta "engine.scan.pages");
      Alcotest.(check int) "cold scan misses once per page"
        expected_pages (delta "buffer_pool.misses");
      Alcotest.(check int) "segments scanned" 1
        (delta "engine.scan.segments");
      (* warm re-scan: pages now hit, extent accounting unchanged *)
      let before2 = Obs.snapshot () in
      Database.scan db master (fun _ -> ());
      let after2 = Obs.snapshot () in
      let delta2 name = List.assoc name (Obs.counters_diff before2 after2) in
      Alcotest.(check int) "warm scan misses nothing" 0
        (delta2 "buffer_pool.misses");
      Alcotest.(check int) "warm scan same page extent" expected_pages
        (delta2 "engine.scan.pages");
      (* the scan recorded a span + histogram sample *)
      Alcotest.(check bool) "hybrid.scan histogram fed" true
        ((Obs.summarize (Obs.histogram "hybrid.scan")).Obs.hs_count >= 2))

let test_write_back_stats () =
  Obs.set_enabled true;
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test-obs-wb" in
  let pool = Buffer_pool.create ~page_size:512 ~capacity_pages:8 () in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let hf = Heap_file.create ~pool (Filename.concat dir "h.dat") in
      let wb0 = (Buffer_pool.stats pool).Buffer_pool.write_backs in
      let reg0 = Obs.value_of "buffer_pool.write_backs" in
      let _ = Heap_file.append hf (String.make 100 'x') in
      Heap_file.flush hf;
      let s = Buffer_pool.stats pool in
      Alcotest.(check int) "write-back counted" (wb0 + 1)
        s.Buffer_pool.write_backs;
      Alcotest.(check int) "registry mirrors write-backs" (reg0 + 1)
        (Obs.value_of "buffer_pool.write_backs");
      Buffer_pool.reset_stats pool;
      let s2 = Buffer_pool.stats pool in
      Alcotest.(check int) "reset clears instance stats" 0
        (s2.Buffer_pool.hits + s2.Buffer_pool.misses + s2.Buffer_pool.evictions
        + s2.Buffer_pool.write_backs);
      Alcotest.(check bool) "registry is monotonic across resets" true
        (Obs.value_of "buffer_pool.write_backs" >= reg0 + 1);
      Heap_file.close hf)

let test_wal_counters () =
  Obs.set_enabled true;
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test-obs-wal" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let before = Obs.value_of "wal.records" in
      let bytes_before = Obs.value_of "wal.bytes" in
      let db =
        Database.open_ ~durable:true ~scheme:Database.Tuple_first ~dir
          ~schema ()
      in
      let master = Database.branch_named db "master" in
      for k = 1 to 10 do
        Database.insert db master (row k)
      done;
      Database.close db;
      Alcotest.(check bool) "wal.records counted" true
        (Obs.value_of "wal.records" >= before + 10);
      Alcotest.(check bool) "wal.bytes counted" true
        (Obs.value_of "wal.bytes" > bytes_before))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "nested spans" `Quick test_nested_spans;
          Alcotest.test_case "enable/disable" `Quick test_enable_disable;
          Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
          Alcotest.test_case "histogram bucket mismatch" `Quick
            test_histogram_bucket_mismatch;
          Alcotest.test_case "empty histogram quantiles" `Quick
            test_empty_histogram_quantiles;
          Alcotest.test_case "counters_diff with fresh counter" `Quick
            test_counters_diff_created_between;
          Alcotest.test_case "span overflow counted" `Quick
            test_span_overflow_counted;
        ] );
      ( "events",
        [
          Alcotest.test_case "event ring" `Quick test_event_ring;
          Alcotest.test_case "event sink" `Quick test_event_sink;
          Alcotest.test_case "event sink rotation" `Quick
            test_event_sink_rotation;
          Alcotest.test_case "streaming trace" `Quick test_streaming_trace;
          Alcotest.test_case "prometheus format" `Quick
            test_prometheus_format;
          Alcotest.test_case "slow-op log" `Quick test_slow_op_log;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "hybrid scan accounting" `Quick
            test_hybrid_scan_accounting;
          Alcotest.test_case "write-back stats" `Quick test_write_back_stats;
          Alcotest.test_case "wal counters" `Quick test_wal_counters;
        ] );
    ]
