(* Write-ahead-log tests: entry framing, torn-tail tolerance, and full
   crash recovery — a durable database abandoned without close must
   come back with every logged operation intact, on every physical
   scheme. *)

open Decibel
open Decibel_storage
module Vg = Decibel_graph.Version_graph

let schema = Schema.ints ~name:"r" ~width:3

let row k a = [| Value.int k; Value.int a; Value.int 0 |]

let schemes =
  [
    Database.Tuple_first;
    Database.Tuple_first_tuple_oriented;
    Database.Version_first;
    Database.Hybrid;
  ]

let contents db b =
  List.sort compare (List.map Array.to_list (Database.scan_list db b))

(* ------------------------------------------------------------------ *)
(* Wal module unit tests *)

let with_log f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-wal" in
  let path = Filename.concat dir "w.log" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f path)

let all_entries =
  [
    Wal.W_insert (0, row 1 10);
    Wal.W_update (1, row 1 20);
    Wal.W_delete (0, Value.int 1);
    Wal.W_commit (2, "a message");
    Wal.W_branch ("dev", 7);
    Wal.W_merge (0, 3, Types.Three_way, "merge msg");
    Wal.W_merge (1, 2, Types.Ours, "");
    Wal.W_merge (1, 2, Types.Theirs, "x");
    Wal.W_retire 4;
  ]

let append_all w entries =
  List.iter (fun e -> ignore (Wal.append w schema e)) entries

(* FNV-1a frame checksum pinned against the published test vectors, so
   any drift in the hash loop (e.g. a wrong mask or prime) is caught
   directly rather than via undecodable logs. *)
let test_fnv1a_vectors () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "fnv1a %S" s)
        expect (Wal.fnv1a s))
    [
      ("", 0x811c9dc5);
      ("a", 0xe40c292c);
      ("foobar", 0xbf9cf968);
      ("123456789", 0xbb86b11c);
      ("hello world", 0xd58b3fa7);
    ]

let test_wal_roundtrip () =
  with_log (fun path ->
      let w = Wal.open_log ~path () in
      append_all w all_entries;
      Alcotest.(check int) "pending" (List.length all_entries) (Wal.pending w);
      Wal.close w;
      let back = Wal.read_entries ~path schema in
      Alcotest.(check bool) "entries roundtrip" true (back = all_entries))

let test_wal_lsns () =
  with_log (fun path ->
      let w = Wal.open_log ~path () in
      append_all w all_entries;
      let n = List.length all_entries in
      Alcotest.(check (list int))
        "lsns are 1..n"
        (List.init n (fun i -> i + 1))
        (List.map fst (Wal.read_frames ~path schema));
      (* a checkpoint truncates the file but never rewinds numbering *)
      Wal.reset w;
      let lsn = Wal.append w schema (Wal.W_commit (0, "post")) in
      Alcotest.(check int) "lsn continues past reset" (n + 1) lsn;
      Wal.close w;
      Alcotest.(check (list int))
        "reopened frames keep their lsn" [ n + 1 ]
        (List.map fst (Wal.read_frames ~path schema));
      (* a reopened log resumes past both the file and the marker *)
      let w2 = Wal.open_log ~start_lsn:(n + 5) ~path () in
      Alcotest.(check int) "start_lsn floor" (n + 5) (Wal.next_lsn w2);
      Wal.close w2)

let test_wal_torn_tail () =
  with_log (fun path ->
      let w = Wal.open_log ~path () in
      append_all w all_entries;
      Wal.close w;
      (* chop bytes off the end: replay must still yield a prefix *)
      let data = Decibel_util.Binio.read_file path in
      for cut = 1 to 25 do
        let truncated = String.sub data 0 (String.length data - cut) in
        Decibel_util.Binio.write_file path truncated;
        let back = Wal.read_entries ~path schema in
        let n = List.length back in
        if n > List.length all_entries then Alcotest.fail "too many entries";
        if back <> List.filteri (fun i _ -> i < n) all_entries then
          Alcotest.fail "torn tail produced a non-prefix"
      done)

let test_wal_corrupt_middle () =
  with_log (fun path ->
      let w = Wal.open_log ~path () in
      append_all w all_entries;
      Wal.close w;
      let data = Bytes.of_string (Decibel_util.Binio.read_file path) in
      (* flip a byte in the middle: replay stops before it *)
      let mid = Bytes.length data / 2 in
      Bytes.set data mid
        (Char.chr (Char.code (Bytes.get data mid) lxor 0xFF));
      Decibel_util.Binio.write_file path (Bytes.to_string data);
      let back = Wal.read_entries ~path schema in
      Alcotest.(check bool) "prefix only" true
        (List.length back < List.length all_entries);
      Alcotest.(check bool) "is a prefix" true
        (back = List.filteri (fun i _ -> i < List.length back) all_entries))

let test_wal_reset () =
  with_log (fun path ->
      let w = Wal.open_log ~path () in
      append_all w all_entries;
      Wal.reset w;
      Alcotest.(check int) "pending resets" 0 (Wal.pending w);
      ignore (Wal.append w schema (Wal.W_commit (0, "post")));
      Wal.close w;
      Alcotest.(check bool) "only post-reset entries" true
        (Wal.read_entries ~path schema = [ Wal.W_commit (0, "post") ]))

(* ------------------------------------------------------------------ *)
(* crash recovery through the Database layer *)

let test_crash_recovery scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-crash" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db = Database.open_ ~durable:true ~scheme ~dir ~schema () in
      Database.insert db Vg.master (row 1 10);
      Database.insert db Vg.master (row 2 20);
      let v1 = Database.commit db Vg.master ~message:"v1" in
      let dev = Database.create_branch db ~name:"dev" ~from:v1 in
      Database.update db dev (row 1 99);
      Database.insert db dev (row 3 30);
      let _ = Database.commit db dev ~message:"dev" in
      let _ =
        Database.merge db ~into:Vg.master ~from:dev ~policy:Types.Three_way
          ~message:"m"
      in
      Database.delete db Vg.master (Value.int 2);
      let master_state = contents db Vg.master in
      let dev_state = contents db dev in
      let nversions = Vg.version_count (Database.graph db) in
      (* crash: no close, no flush — the engine manifest still holds
         only the initial empty checkpoint *)
      let db2 = Database.reopen ~dir () in
      Alcotest.(check bool) "master recovered" true
        (contents db2 Vg.master = master_state);
      Alcotest.(check bool) "dev recovered" true
        (contents db2 dev = dev_state);
      Alcotest.(check int) "versions recovered" nversions
        (Vg.version_count (Database.graph db2));
      (* the recovered database keeps journaling: work, crash again *)
      Database.insert db2 Vg.master (row 50 5);
      let db3 = Database.reopen ~dir () in
      Alcotest.(check bool) "second crash recovered" true
        (Database.lookup db3 Vg.master (Value.int 50) <> None);
      Database.close db3)

let test_checkpoint_trims_log scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-ckpt" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db = Database.open_ ~durable:true ~scheme ~dir ~schema () in
      for i = 1 to 20 do
        Database.insert db Vg.master (row i i)
      done;
      Database.flush db;
      let wal_size = (Unix.stat (Filename.concat dir "wal.log")).Unix.st_size in
      Alcotest.(check int) "log truncated at checkpoint" 0 wal_size;
      (* post-checkpoint ops land in the fresh log and still recover *)
      Database.insert db Vg.master (row 100 1);
      let db2 = Database.reopen ~dir () in
      Alcotest.(check int) "all rows" 21
        (let n = ref 0 in
         Database.scan db2 Vg.master (fun _ -> incr n);
         !n);
      Database.close db2)

(* Torn WAL tail through full recovery on every physical scheme: run a
   scripted workload, crash without checkpointing, chop bytes off the
   log, reopen.  Replay must stop at the torn frame, so the recovered
   contents equal the state after some prefix of the operations —
   computed by replaying prefixes on the in-memory model oracle — and
   chopping one byte must lose exactly the final operation. *)
let torn_ops =
  [
    `Insert (row 1 10);
    `Insert (row 2 20);
    `Commit;
    `Update (row 1 11);
    `Insert (row 3 30);
    `Delete 2;
    `Commit;
    `Insert (row 4 40);
  ]

let apply_op db = function
  | `Insert r -> Database.insert db Vg.master r
  | `Update r -> Database.update db Vg.master r
  | `Delete k -> Database.delete db Vg.master (Value.int k)
  | `Commit -> ignore (Database.commit db Vg.master ~message:"c")

let oracle_prefix dir m =
  let o =
    Database.open_ ~scheme:Database.Model
      ~dir:(Filename.concat dir "oracle") ~schema ()
  in
  List.iteri (fun i op -> if i < m then apply_op o op) torn_ops;
  contents o Vg.master

let test_torn_tail_recovery scheme () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-torn" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let n = List.length torn_ops in
      let prefixes = List.init (n + 1) (oracle_prefix dir) in
      List.iter
        (fun cut ->
          let rdir = Filename.concat dir (Printf.sprintf "cut%d" cut) in
          let db = Database.open_ ~durable:true ~scheme ~dir:rdir ~schema () in
          List.iter (apply_op db) torn_ops;
          Database.crash db;
          let wal = Filename.concat rdir "wal.log" in
          let data = Decibel_util.Binio.read_file wal in
          Decibel_util.Binio.write_file wal
            (String.sub data 0 (String.length data - cut));
          let db2 = Database.reopen ~dir:rdir ~durable:false () in
          let got = contents db2 Vg.master in
          Database.close db2;
          if cut = 1 then
            (* one byte gone tears exactly the final frame *)
            Alcotest.(check bool)
              "one-byte tear loses exactly the last op" true
              (got = List.nth prefixes (n - 1));
          if not (List.mem got prefixes) then
            Alcotest.fail
              (Printf.sprintf "torn log (cut %d) not a prefix state" cut))
        [ 1; 2; 5; 64 ])

let test_non_durable_has_no_log () =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-nolog" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let db =
        Database.open_ ~scheme:Database.Hybrid ~dir ~schema ()
      in
      Database.insert db Vg.master (row 1 1);
      Alcotest.(check bool) "no wal file" false
        (Sys.file_exists (Filename.concat dir "wal.log"));
      Database.close db)

let () =
  Alcotest.run "wal"
    [
      ( "log",
        [
          Alcotest.test_case "fnv1a vectors" `Quick test_fnv1a_vectors;
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "lsns" `Quick test_wal_lsns;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt middle" `Quick test_wal_corrupt_middle;
          Alcotest.test_case "reset" `Quick test_wal_reset;
        ] );
      ( "crash-recovery",
        List.concat_map
          (fun scheme ->
            let n = Database.scheme_name scheme in
            [
              Alcotest.test_case (n ^ " crash recovery") `Quick
                (test_crash_recovery scheme);
              Alcotest.test_case (n ^ " checkpoint trims log") `Quick
                (test_checkpoint_trims_log scheme);
              Alcotest.test_case (n ^ " torn tail recovery") `Quick
                (test_torn_tail_recovery scheme);
            ])
          schemes
        @ [
            Alcotest.test_case "non-durable has no log" `Quick
              test_non_durable_has_no_log;
          ] );
    ]
