(* Tests for the storage-introspection subsystem: per-scheme storage
   reports, the Prometheus text exporter, and the monitoring endpoint
   exercised over a real loopback socket.

   The socket test is single-threaded on purpose: the client connect
   completes against the server's listen backlog and the tiny request
   fits the kernel socket buffer, so we can connect + write first and
   only then let [Http.handle_one] serve the request. *)

open Decibel
open Decibel_storage
module Obs = Decibel_obs.Obs
module Report = Decibel_obs.Report
module Prometheus = Decibel_obs.Prometheus
module Http = Decibel_obs.Http

let schema = Schema.ints ~name:"r" ~width:3

let row k v = [| Value.int k; Value.int v; Value.int 0 |]

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* A small two-branch repo with updates and deletes, so every scheme
   has both dead tuples and a non-trivial delta chain to report:
   master holds 50 rows; dev updates 10 of them and deletes 5. *)
let with_loaded scheme f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test-introspect" in
  let db = Database.open_ ~scheme ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () ->
      let master = Database.branch_named db "master" in
      for k = 1 to 50 do
        Database.insert db master (row k 0)
      done;
      let v1 = Database.commit db master ~message:"seed" in
      let dev = Database.create_branch db ~name:"dev" ~from:v1 in
      for k = 1 to 10 do
        Database.update db dev (row k 1)
      done;
      for k = 41 to 45 do
        Database.delete db dev (Value.int k)
      done;
      let _ = Database.commit db dev ~message:"mutate" in
      f db)

(* ------------------------------------------------------------------ *)
(* storage reports per scheme *)

let check_report ~expect_scheme scheme () =
  Obs.set_enabled true;
  with_loaded scheme (fun db ->
      let r = Database.storage_report db in
      (* the engine self-describes, e.g. "tuple-first (branch-oriented)" *)
      Alcotest.(check bool) "scheme named" true
        (contains r.Report.r_scheme expect_scheme);
      Alcotest.(check bool) "dataset bytes positive" true
        (r.Report.r_dataset_bytes > 0);
      Alcotest.(check int) "two branches" 2
        (List.length r.Report.r_branches);
      let find n = List.find (fun b -> b.Report.br_name = n) r.Report.r_branches in
      let master = find "master" and dev = find "dev" in
      Alcotest.(check int) "master live tuples" 50
        master.Report.br_live_tuples;
      Alcotest.(check int) "dev live tuples" 45 dev.Report.br_live_tuples;
      Alcotest.(check bool) "dev has dead tuples" true
        (dev.Report.br_dead_tuples > 0);
      Alcotest.(check bool) "dev delta chain recorded" true
        (dev.Report.br_delta_chain >= 1);
      List.iter
        (fun b ->
          Alcotest.(check bool) "density in [0,1]" true
            (b.Report.br_density >= 0. && b.Report.br_density <= 1.);
          Alcotest.(check bool) "dead tuples non-negative" true
            (b.Report.br_dead_tuples >= 0);
          Alcotest.(check bool) "branch active" true b.Report.br_active)
        r.Report.r_branches;
      (* bitmap schemes must report bits; version-first has none *)
      (match scheme with
      | Database.Version_first | Database.Model -> ()
      | _ ->
          Alcotest.(check bool) "bitmap bits reported" true
            (dev.Report.br_bitmap_bits > 0);
          Alcotest.(check bool) "density positive" true
            (dev.Report.br_density > 0.));
      (* graph facts: root + two commits, one fork *)
      Alcotest.(check int) "graph versions" 3 r.Report.r_graph.Report.g_versions;
      Alcotest.(check int) "graph branches" 2 r.Report.r_graph.Report.g_branches;
      Alcotest.(check int) "graph active" 2
        r.Report.r_graph.Report.g_active_branches;
      Alcotest.(check int) "graph depth" 2 r.Report.r_graph.Report.g_depth;
      Alcotest.(check bool) "graph fanout" true
        (r.Report.r_graph.Report.g_max_fanout >= 1);
      (* physical schemes expose segments with sane fragmentation *)
      (match scheme with
      | Database.Model -> ()
      | _ ->
          Alcotest.(check bool) "segments reported" true
            (List.length r.Report.r_segments >= 1);
          List.iter
            (fun s ->
              Alcotest.(check bool) "segment records >= live" true
                (s.Report.sg_records >= s.Report.sg_live_records);
              Alcotest.(check bool) "fragmentation in [0,1]" true
                (s.Report.sg_fragmentation >= 0.
                && s.Report.sg_fragmentation <= 1.))
            r.Report.r_segments;
          let records =
            List.fold_left
              (fun a s -> a + s.Report.sg_records)
              0 r.Report.r_segments
          in
          Alcotest.(check bool) "records cover the live set" true
            (records >= 50));
      (* pool block mirrors the buffer pool *)
      Alcotest.(check bool) "pool page size positive" true
        (r.Report.r_pool.Report.p_page_size > 0);
      (* JSON rendering carries the per-branch numbers *)
      let js = Report.to_json r in
      Alcotest.(check bool) "json is an object" true
        (js.[0] = '{' && js.[String.length js - 1] = '}');
      Alcotest.(check bool) "json names master" true
        (contains js "\"name\":\"master\"");
      Alcotest.(check bool) "json carries live count" true
        (contains js "\"live_tuples\":50");
      Alcotest.(check bool) "json nan-free" true
        (not (contains js "nan") && not (contains js "inf"));
      (* text rendering mentions both branches *)
      let txt = Report.to_text r in
      Alcotest.(check bool) "text names dev" true (contains txt "dev"))

let test_report_disabled_obs () =
  (* DECIBEL_OBS=0 / set_enabled false silences events and spans, but
     introspection must keep returning real data *)
  Obs.set_enabled true;
  Obs.reset ();
  with_loaded Database.Hybrid (fun db ->
      Obs.set_enabled false;
      Fun.protect
        ~finally:(fun () -> Obs.set_enabled true)
        (fun () ->
          let emitted = Obs.events_emitted () in
          Obs.event ~comp:"test" "suppressed";
          Alcotest.(check int) "events suppressed while disabled" emitted
            (Obs.events_emitted ());
          let spans0 = Obs.span_count () in
          let r = Database.storage_report db in
          Alcotest.(check int) "report still sees branches" 2
            (List.length r.Report.r_branches);
          Alcotest.(check bool) "report still counts live tuples" true
            ((List.find
                (fun b -> b.Report.br_name = "master")
                r.Report.r_branches)
               .Report.br_live_tuples = 50);
          Alcotest.(check int) "no span recorded for the report" spans0
            (Obs.span_count ())))

let test_slow_scan_event () =
  (* threshold 0 on an instrumented span name: any scan must fire the
     slow-op log with the span's attributes attached *)
  Obs.set_enabled true;
  Obs.reset ();
  with_loaded Database.Tuple_first (fun db ->
      Obs.set_slow_threshold "tuple_first.scan" 0.0;
      Fun.protect
        ~finally:(fun () -> Obs.clear_slow_threshold "tuple_first.scan")
        (fun () ->
          let master = Database.branch_named db "master" in
          Database.scan db master (fun _ -> ());
          let slow =
            List.filter
              (fun e ->
                e.Obs.ev_comp = "slow_op" && e.Obs.ev_msg = "tuple_first.scan")
              (Obs.events ())
          in
          Alcotest.(check bool) "slow-op fired for the scan" true
            (List.length slow >= 1);
          let e = List.hd slow in
          Alcotest.(check bool) "duration attr present" true
            (List.mem_assoc "duration_ms" e.Obs.ev_attrs);
          Alcotest.(check int) "obs.slow_ops counted" (List.length slow)
            (Obs.value_of "obs.slow_ops")))

(* ------------------------------------------------------------------ *)
(* Prometheus text exporter *)

(* one exposition line: "name value" or "name{labels} value"; the
   value must parse as a finite float and the name must be a legal
   Prometheus identifier *)
let check_sample_line line =
  let sp = String.rindex line ' ' in
  let value = String.sub line (sp + 1) (String.length line - sp - 1) in
  (match float_of_string_opt value with
  | Some v -> Alcotest.(check bool) ("finite value: " ^ line) true
                (Float.is_finite v)
  | None -> Alcotest.fail ("unparseable value in: " ^ line));
  let name_end =
    match String.index_opt line '{' with Some i -> i | None -> sp
  in
  let name = String.sub line 0 name_end in
  Alcotest.(check bool) ("non-empty name: " ^ line) true (name <> "");
  Alcotest.(check bool) ("leading char legal: " ^ line) true
    (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false);
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | c -> Alcotest.fail (Printf.sprintf "bad char %C in name %s" c name))
    name

let check_exposition text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "non-empty exposition" true (lines <> []);
  List.iter
    (fun l ->
      if String.length l >= 2 && String.sub l 0 2 = "# " then ()
      else check_sample_line l)
    lines;
  lines

let test_sanitize () =
  Alcotest.(check string) "dots become underscores" "buffer_pool_misses"
    (Prometheus.sanitize "buffer_pool.misses");
  Alcotest.(check string) "dashes become underscores" "a_b_c"
    (Prometheus.sanitize "a-b.c");
  Alcotest.(check bool) "leading digit guarded" true
    ((Prometheus.sanitize "9lives").[0] <> '9')

let test_prometheus_render () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.add (Obs.counter "prom.test.counter") 7;
  Obs.set_gauge (Obs.gauge "prom.test.gauge") 1.5;
  let h = Obs.histogram ~buckets:[| 0.001; 0.01; 0.1 |] "prom.test.hist" in
  List.iter (Obs.observe h) [ 0.0005; 0.005; 0.05; 0.5 ];
  let text = Prometheus.render () in
  let lines = check_exposition text in
  (* every metric name was sanitized: no dots anywhere *)
  List.iter
    (fun l ->
      Alcotest.(check bool) ("no dotted name: " ^ l) true
        (not (contains l "prom.test")))
    lines;
  Alcotest.(check bool) "counter rendered with _total" true
    (List.mem "prom_test_counter_total 7" lines);
  Alcotest.(check bool) "gauge rendered" true
    (List.mem "prom_test_gauge 1.5" lines);
  (* histogram series: cumulative buckets consistent with summarize *)
  let s = Obs.summarize h in
  Alcotest.(check bool) "bucket le=0.001" true
    (List.mem "prom_test_hist_bucket{le=\"0.001\"} 1" lines);
  Alcotest.(check bool) "bucket le=0.01 cumulative" true
    (List.mem "prom_test_hist_bucket{le=\"0.01\"} 2" lines);
  Alcotest.(check bool) "bucket le=0.1 cumulative" true
    (List.mem "prom_test_hist_bucket{le=\"0.1\"} 3" lines);
  Alcotest.(check bool) "+Inf bucket equals count" true
    (List.mem
       (Printf.sprintf "prom_test_hist_bucket{le=\"+Inf\"} %d" s.Obs.hs_count)
       lines);
  Alcotest.(check bool) "_count equals summarize count" true
    (List.mem (Printf.sprintf "prom_test_hist_count %d" s.Obs.hs_count) lines);
  (* _sum must match the histogram's tracked sum *)
  let sum_line =
    List.find (fun l -> contains l "prom_test_hist_sum ") lines
  in
  let sp = String.rindex sum_line ' ' in
  let v =
    float_of_string
      (String.sub sum_line (sp + 1) (String.length sum_line - sp - 1))
  in
  Alcotest.(check bool) "_sum equals summarize sum" true
    (abs_float (v -. s.Obs.hs_sum) < 1e-9);
  (* TYPE headers present for each family *)
  Alcotest.(check bool) "counter TYPE header" true
    (List.mem "# TYPE prom_test_counter_total counter" lines);
  Alcotest.(check bool) "histogram TYPE header" true
    (List.mem "# TYPE prom_test_hist histogram" lines)

(* ------------------------------------------------------------------ *)
(* the monitoring endpoint over a real loopback socket *)

(* connect, write the whole request, then let the single-threaded
   server pick the connection off its backlog and answer *)
let http_get server handler path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_loopback, Http.port server));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          path
      in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      Http.handle_one server handler;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 4096 in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let split_response raw =
  let sep = "\r\n\r\n" in
  let rec find i =
    if i + 4 > String.length raw then
      Alcotest.fail "no header/body separator in response"
    else if String.sub raw i 4 = sep then i
    else find (i + 1)
  in
  let i = find 0 in
  (String.sub raw 0 i, String.sub raw (i + 4) (String.length raw - i - 4))

let header headers name =
  String.split_on_char '\n' headers
  |> List.filter_map (fun l ->
         let l = String.trim l in
         let prefix = name ^ ":" in
         if
           String.length l > String.length prefix
           && String.lowercase_ascii (String.sub l 0 (String.length prefix))
              = String.lowercase_ascii prefix
         then
           Some
             (String.trim
                (String.sub l (String.length prefix)
                   (String.length l - String.length prefix)))
         else None)
  |> function
  | [ v ] -> v
  | _ -> Alcotest.fail ("header not found exactly once: " ^ name)

let test_metrics_endpoint () =
  Obs.set_enabled true;
  Obs.reset ();
  with_loaded Database.Hybrid (fun db ->
      let server = Http.listen ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Http.close server)
        (fun () ->
          Alcotest.(check bool) "ephemeral port bound" true
            (Http.port server > 0);
          let handler = Monitor.handler db in
          (* /metrics: valid Prometheus text with storage gauges *)
          let raw = http_get server handler "/metrics" in
          Alcotest.(check bool) "200 OK" true
            (String.length raw > 12 && String.sub raw 0 12 = "HTTP/1.1 200");
          let headers, body = split_response raw in
          Alcotest.(check string) "prometheus content type"
            Prometheus.content_type (header headers "Content-Type");
          Alcotest.(check int) "content-length matches body"
            (String.length body)
            (int_of_string (header headers "Content-Length"));
          let lines = check_exposition body in
          Alcotest.(check bool) "registry counters exported" true
            (List.exists
               (fun l -> contains l "buffer_pool_misses_total ")
               lines);
          Alcotest.(check bool) "per-branch storage gauge" true
            (List.mem "storage_branch_live_tuples{branch=\"master\"} 50" lines);
          Alcotest.(check bool) "dataset bytes gauge present" true
            (List.exists
               (fun l -> contains l "storage_dataset_bytes ")
               lines);
          (* /report: the JSON storage report *)
          let raw = http_get server handler "/report" in
          let headers, body = split_response raw in
          Alcotest.(check string) "report is json" "application/json"
            (header headers "Content-Type");
          Alcotest.(check bool) "report names the scheme" true
            (contains body "\"scheme\":\"hybrid\"");
          (* /events: JSONL (possibly empty) with ndjson content type *)
          let raw = http_get server handler "/events" in
          Alcotest.(check bool) "events 200" true
            (String.sub raw 0 12 = "HTTP/1.1 200");
          let headers, _ = split_response raw in
          Alcotest.(check string) "events are ndjson" "application/x-ndjson"
            (header headers "Content-Type");
          (* unknown route: 404 *)
          let raw = http_get server handler "/nope" in
          Alcotest.(check bool) "404 for unknown route" true
            (String.sub raw 0 12 = "HTTP/1.1 404")))

let () =
  Alcotest.run "introspect"
    [
      ( "storage-report",
        [
          Alcotest.test_case "tuple-first" `Quick
            (check_report ~expect_scheme:"tuple-first" Database.Tuple_first);
          Alcotest.test_case "tuple-first (tuple-oriented)" `Quick
            (check_report ~expect_scheme:"tuple-first"
               Database.Tuple_first_tuple_oriented);
          Alcotest.test_case "version-first" `Quick
            (check_report ~expect_scheme:"version-first"
               Database.Version_first);
          Alcotest.test_case "hybrid" `Quick
            (check_report ~expect_scheme:"hybrid" Database.Hybrid);
          Alcotest.test_case "report with obs disabled" `Quick
            test_report_disabled_obs;
          Alcotest.test_case "slow scan event" `Quick test_slow_scan_event;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "render" `Quick test_prometheus_render;
        ] );
      ( "endpoint",
        [
          Alcotest.test_case "loopback round-trip" `Quick
            test_metrics_endpoint;
        ] );
    ]
