(* Tests for the resource governor: cancellation contexts (deadline,
   manual cancel, byte budget) firing mid-scan on every physical
   scheme, admission control with weighted slots and load shedding,
   circuit breakers, lock-wait deadlines, retry jitter, and — the
   acceptance property — that an aborted operation releases every
   admission slot and pool pin and leaves the database returning the
   exact serial fingerprint. *)

open Decibel
open Decibel_bench
module Governor = Decibel_governor.Governor
module Ctx = Governor.Ctx
module Admission = Governor.Admission
module Breaker = Governor.Breaker
module Par = Decibel_par.Par
module Lock_manager = Decibel_storage.Lock_manager
module Retry = Decibel_fault.Retry
module Failpoint = Decibel_fault.Failpoint

let now () = Unix.gettimeofday ()

(* run [f] with the pool sized to [n] workers, restoring afterwards *)
let with_domains n f =
  let saved = Par.domain_count () in
  Par.set_domain_count n;
  Fun.protect ~finally:(fun () -> Par.set_domain_count saved) f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* datasets: a flat branching workload, optionally reopened governed *)

let gov_cfg =
  {
    Config.default with
    Config.branches = 4;
    records_per_branch = 700;
    columns = 8;
    commit_every = 200;
  }

let load_flat ?governor ~scheme cfg =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-gov" in
  let wl = Strategy.generate Strategy.Flat cfg in
  let l = Driver.load ~scheme ~dir cfg wl in
  match governor with
  | None -> l
  | Some g ->
      (* [Driver.load] has no governor hook; re-open the flushed
         repository with one *)
      Database.close l.Driver.db;
      { l with Driver.db = Database.reopen ~governor:g ~dir () }

let biggest_branch db =
  List.fold_left
    (fun (bb, bn) b ->
      let n = Database.count db b in
      if n > bn then (b, n) else (bb, bn))
    (-1, -1) (Database.heads db)
  |> fst

(* ------------------------------------------------------------------ *)
(* Ctx *)

let test_ctx_basics () =
  let c = Ctx.create () in
  Ctx.check c;
  Ctx.cancel c;
  (match Ctx.check c with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Governor.Cancelled -> ());
  let c = Ctx.create ~deadline_ms:0 () in
  Unix.sleepf 0.002;
  (match Ctx.check c with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Governor.Deadline_exceeded -> ());
  (* cancel takes precedence over an expired deadline *)
  Ctx.cancel c;
  (match Ctx.check c with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Governor.Cancelled -> ());
  let c = Ctx.create ~budget_bytes:100 () in
  Ctx.charge c 50;
  Ctx.check c;
  Ctx.charge c 100;
  (match Ctx.check c with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Governor.Budget_exceeded { charged = 150; budget = 100 } -> ()
  | exception Governor.Budget_exceeded _ ->
      Alcotest.fail "wrong budget payload");
  Alcotest.(check int) "charged" 150 (Ctx.charged_bytes c);
  Ctx.uncharge c 30;
  Alcotest.(check int) "uncharged" 120 (Ctx.charged_bytes c);
  let before = Ctx.pinned_bytes () in
  Ctx.release c;
  Alcotest.(check int) "release drops pins" (before - 120) (Ctx.pinned_bytes ());
  Ctx.release c;
  Alcotest.(check int) "release idempotent" (before - 120) (Ctx.pinned_bytes ())

let test_poller_stride () =
  let c = Ctx.create () in
  Ctx.cancel c;
  let poll = Ctx.poller ~stride:4 (Some c) in
  poll ();
  poll ();
  poll ();
  (match poll () with
  | () -> Alcotest.fail "expected Cancelled on 4th call"
  | exception Governor.Cancelled -> ());
  (* a contextless poller never raises *)
  let noop = Ctx.poller None in
  for _ = 1 to 1000 do
    noop ()
  done

let test_ambient_ctx () =
  let c = Ctx.create ~budget_bytes:10 () in
  Alcotest.(check bool) "no ambient outside" true (Ctx.current () = None);
  Ctx.with_current (Some c) (fun () ->
      Alcotest.(check bool) "ambient inside" true (Ctx.current () = Some c);
      Ctx.charge_current 7);
  Alcotest.(check bool) "restored" true (Ctx.current () = None);
  Alcotest.(check int) "ambient charge landed" 7 (Ctx.charged_bytes c);
  Ctx.charge_current 5;
  Alcotest.(check int) "no ambient, no charge" 7 (Ctx.charged_bytes c);
  Ctx.release c

(* ------------------------------------------------------------------ *)
(* Admission *)

let test_admission_weights_and_shed () =
  let a = Admission.create ~capacity:2 ~heavy_weight:2 ~max_queue:0 () in
  let s1 = Admission.admit a Governor.Cheap in
  let s2 = Admission.admit a Governor.Cheap in
  (match Admission.admit a Governor.Cheap with
  | _ -> Alcotest.fail "expected Overloaded"
  | exception Governor.Overloaded { retry_after_ms } ->
      Alcotest.(check bool) "retry hint positive" true (retry_after_ms > 0));
  Admission.release s1;
  Admission.release s1 (* idempotent *);
  let s3 = Admission.admit a Governor.Cheap in
  Admission.release s2;
  Admission.release s3;
  let st = Admission.stats a in
  Alcotest.(check int) "in_use back to 0" 0 st.Admission.in_use;
  Alcotest.(check int) "admitted" 3 st.Admission.admitted;
  Alcotest.(check int) "shed" 1 st.Admission.shed;
  (* a heavy op takes the whole weighted capacity *)
  let h = Admission.admit a Governor.Heavy in
  (match Admission.admit a Governor.Cheap with
  | _ -> Alcotest.fail "expected Overloaded behind heavy"
  | exception Governor.Overloaded _ -> ());
  Admission.release h

let test_admission_wait_deadline () =
  let a = Admission.create ~capacity:1 ~max_queue:8 () in
  let s = Admission.admit a Governor.Cheap in
  let ctx = Ctx.create ~deadline_ms:30 () in
  let t0 = now () in
  (match Admission.admit ~ctx a Governor.Cheap with
  | _ -> Alcotest.fail "expected Deadline_exceeded while queued"
  | exception Governor.Deadline_exceeded -> ());
  Alcotest.(check bool) "waited ~deadline, not forever" true
    (now () -. t0 < 2.0);
  let st = Admission.stats a in
  Alcotest.(check int) "queue drained" 0 st.Admission.queue_depth;
  Admission.release s;
  (* slot is free again *)
  let s2 = Admission.admit a Governor.Cheap in
  Admission.release s2

(* ------------------------------------------------------------------ *)
(* Breaker *)

let test_breaker_lifecycle () =
  let b = Breaker.create ~threshold:3 ~cooldown_s:0.05 ~name:"res" () in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.failure b;
  Breaker.failure b;
  Breaker.check b (* still closed below threshold *);
  Breaker.failure b;
  Alcotest.(check bool) "tripped" true (Breaker.state b = Breaker.Open);
  (match Breaker.check b with
  | () -> Alcotest.fail "expected Tripped"
  | exception Breaker.Tripped "res" -> ()
  | exception Breaker.Tripped _ -> Alcotest.fail "wrong resource");
  Unix.sleepf 0.06;
  Breaker.check b (* cool-down elapsed: half-opens, no raise *);
  Alcotest.(check bool) "half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.failure b (* failed trial goes straight back open *);
  Alcotest.(check bool) "re-tripped" true (Breaker.state b = Breaker.Open);
  Unix.sleepf 0.06;
  Breaker.check b;
  Breaker.success b;
  Alcotest.(check bool) "closed after trial" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "streak cleared" 0 (Breaker.consecutive_failures b)

(* ------------------------------------------------------------------ *)
(* deadlines mid-scan, every physical scheme, serial and 4 domains *)

let deadline_mid_scan ~scheme () =
  let l = load_flat ~scheme gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  let reference = Driver.multi_scan_fingerprint l in
  let ctx = Ctx.create ~deadline_ms:1 () in
  (* ~50 µs per consumed tuple, so the 1 ms deadline lands mid-scan *)
  (match
     Database.multi_scan ~ctx db (Database.heads db) (fun _ ->
         Unix.sleepf 0.00005)
   with
  | () -> Alcotest.fail "deadline did not fire mid-scan"
  | exception Governor.Deadline_exceeded -> ());
  Alcotest.(check int) "no pins leaked" 0 (Ctx.pinned_bytes ());
  (* the same on a plain branch scan *)
  let b = biggest_branch db in
  let ctx2 = Ctx.create ~deadline_ms:1 () in
  (match Database.scan ~ctx:ctx2 db b (fun _ -> Unix.sleepf 0.00005) with
  | () -> Alcotest.fail "deadline did not fire on scan"
  | exception Governor.Deadline_exceeded -> ());
  Alcotest.(check int) "no pins leaked (scan)" 0 (Ctx.pinned_bytes ());
  (* an unrestricted pass still sees exactly the same data *)
  Alcotest.(check bool) "multi_scan fingerprint unchanged" true
    (Driver.multi_scan_fingerprint l = reference)

let test_deadline_mid_scan scheme () = deadline_mid_scan ~scheme ()

let test_deadline_mid_scan_domains scheme () =
  with_domains 4 (fun () -> deadline_mid_scan ~scheme ())

(* ------------------------------------------------------------------ *)
(* acceptance: 1 ms deadline on a large multi_scan aborts fast,
   releases slots and pins, and the rerun matches the serial result *)

let test_acceptance_deadline_multi_scan () =
  let cfg =
    {
      gov_cfg with
      Config.branches = 8;
      records_per_branch = 2500;
      columns = 24;
    }
  in
  let gov = Admission.create ~capacity:8 () in
  let l = load_flat ~governor:gov ~scheme:Database.Hybrid cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  let t0 = now () in
  let reference = Driver.multi_scan_fingerprint l in
  let serial_s = now () -. t0 in
  let ctx = Ctx.create ~deadline_ms:1 () in
  let t1 = now () in
  (match Database.multi_scan ~ctx db (Database.heads db) (fun _ -> ()) with
  | () -> Alcotest.fail "deadline did not fire"
  | exception Governor.Deadline_exceeded -> ());
  let aborted_s = now () -. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "aborted in %.1f ms, well under 100 ms"
       (aborted_s *. 1e3))
    true (aborted_s < 0.1);
  Alcotest.(check bool) "aborted faster than the serial pass" true
    (aborted_s < serial_s || serial_s < 0.02);
  Alcotest.(check int) "all pool pins released" 0 (Ctx.pinned_bytes ());
  let st = Option.get (Database.governor_stats db) in
  Alcotest.(check int) "all admission slots released" 0 st.Admission.in_use;
  Alcotest.(check int) "admission queue empty" 0 st.Admission.queue_depth;
  Alcotest.(check bool) "rerun returns the exact serial fingerprint" true
    (Driver.multi_scan_fingerprint l = reference)

(* ------------------------------------------------------------------ *)
(* cancelled operation releases its admission slot and pins *)

let test_cancel_releases_slot_and_pins () =
  let gov = Admission.create ~capacity:4 () in
  let l = load_flat ~governor:gov ~scheme:Database.Tuple_first gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  let b = biggest_branch db in
  let cancelled_before =
    List.assoc "governor.cancelled" (Governor.counters ())
  in
  Database.drop_caches db (* force page loads so pins accumulate *);
  let ctx = Ctx.create () in
  let seen = ref 0 in
  (match
     Database.scan ~ctx db b (fun _ ->
         incr seen;
         if !seen = 10 then Ctx.cancel ctx)
   with
  | () -> Alcotest.fail "cancel did not fire"
  | exception Governor.Cancelled -> ());
  Alcotest.(check bool) "scan actually started" true (!seen >= 10);
  Alcotest.(check int) "pins released" 0 (Ctx.pinned_bytes ());
  let st = Option.get (Database.governor_stats db) in
  Alcotest.(check int) "slot released" 0 st.Admission.in_use;
  Alcotest.(check int) "cancelled counted" (cancelled_before + 1)
    (List.assoc "governor.cancelled" (Governor.counters ()));
  (* the database is still fully readable *)
  let _, n = Driver.scan_fingerprint l ~branch:(Database.branch_name db b) in
  Alcotest.(check bool) "branch still readable" true (n > 0)

(* ------------------------------------------------------------------ *)
(* full queue sheds with Overloaded; shed op leaves the db readable *)

let test_shed_leaves_readable () =
  let gov = Admission.create ~capacity:1 ~heavy_weight:1 ~max_queue:0 () in
  let l = load_flat ~governor:gov ~scheme:Database.Version_first gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  let before = Driver.scan_fingerprint l ~branch:"master" in
  (* occupy the only slot, then every arrival sheds immediately *)
  let s = Admission.admit gov Governor.Cheap in
  (match Database.scan db (biggest_branch db) (fun _ -> ()) with
  | () -> Alcotest.fail "expected Overloaded"
  | exception Governor.Overloaded { retry_after_ms } ->
      Alcotest.(check bool) "retry hint positive" true (retry_after_ms > 0));
  let st = Option.get (Database.governor_stats db) in
  Alcotest.(check bool) "shed recorded" true (st.Admission.shed >= 1);
  Admission.release s;
  Alcotest.(check bool) "shed op left the data intact" true
    (Driver.scan_fingerprint l ~branch:"master" = before)

(* ------------------------------------------------------------------ *)
(* circuit breaker wired through the facade *)

let test_db_breaker_wiring () =
  let gov = Admission.create () in
  let l = load_flat ~governor:gov ~scheme:Database.Hybrid gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  let b = Database.branch_named db "master" in
  let br = Option.get (Database.breaker db b) in
  (* a successful governed op clears a sub-threshold failure streak *)
  Breaker.failure br;
  Breaker.failure br;
  Database.scan db b (fun _ -> ());
  Alcotest.(check int) "success cleared streak" 0
    (Breaker.consecutive_failures br);
  (* trip it: scans on that branch now fail fast, others are untouched *)
  for _ = 1 to 5 do
    Breaker.failure br
  done;
  Alcotest.(check bool) "open" true (Breaker.state br = Breaker.Open);
  (match Database.scan db b (fun _ -> ()) with
  | () -> Alcotest.fail "expected Tripped"
  | exception Breaker.Tripped name ->
      Alcotest.(check string) "names the branch" "master" name);
  (match List.find_opt (fun b' -> b' <> b) (Database.heads db) with
  | Some other -> Database.scan db other (fun _ -> ())
  | None -> ());
  (* operator reset: close it and the branch serves again *)
  Breaker.success br;
  Database.scan db b (fun _ -> ())

(* ------------------------------------------------------------------ *)
(* byte budget: buffer-pool page loads charge the ambient context *)

let test_budget_on_page_loads () =
  let l = load_flat ~scheme:Database.Tuple_first gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  let b = biggest_branch db in
  Database.drop_caches db (* cold cache: the scan must load pages *);
  let ctx = Ctx.create ~budget_bytes:1024 () in
  (match Database.scan ~ctx db b (fun _ -> ()) with
  | () -> Alcotest.fail "expected Budget_exceeded"
  | exception Governor.Budget_exceeded { charged; budget = 1024 } ->
      Alcotest.(check bool) "charged past budget" true (charged > 1024)
  | exception Governor.Budget_exceeded _ ->
      Alcotest.fail "wrong budget payload");
  Alcotest.(check int) "pins released" 0 (Ctx.pinned_bytes ());
  (* an unbudgeted scan over the same branch is unaffected *)
  let n = Database.count db b in
  Alcotest.(check bool) "still readable" true (n > 256)

(* ------------------------------------------------------------------ *)
(* lock waits respect deadlines *)

let test_lock_wait_deadline () =
  let lm = Lock_manager.create ~timeout_s:5.0 () in
  Lock_manager.acquire lm ~owner:1 ~resource:"r" Lock_manager.Exclusive;
  (* via the ambient governor context *)
  let ctx = Ctx.create ~deadline_ms:30 () in
  let t0 = now () in
  (match
     Ctx.with_current (Some ctx) (fun () ->
         Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Shared)
   with
  | () -> Alcotest.fail "expected Deadline_exceeded (ambient)"
  | exception Governor.Deadline_exceeded -> ());
  Alcotest.(check bool) "abandoned promptly, not at the 5 s timeout" true
    (now () -. t0 < 2.0);
  (* via an explicit per-call absolute deadline *)
  (match
     Lock_manager.acquire lm
       ~deadline:(now () +. 0.03)
       ~owner:3 ~resource:"r" Lock_manager.Shared
   with
  | () -> Alcotest.fail "expected Deadline_exceeded (explicit)"
  | exception Governor.Deadline_exceeded -> ());
  Lock_manager.release_all lm ~owner:1;
  (* the lock is grantable again afterwards *)
  Lock_manager.acquire lm ~owner:2 ~resource:"r" Lock_manager.Shared;
  Lock_manager.release_all lm ~owner:2

(* ------------------------------------------------------------------ *)
(* retry backoff with full jitter *)

let test_retry_backoff () =
  Alcotest.(check int) "base 0 never sleeps" 0
    (Retry.backoff_ms ~base_delay_ms:0 ~max_delay_ms:1000 ~attempt:5);
  for attempt = 1 to 8 do
    for _ = 1 to 50 do
      let d = Retry.backoff_ms ~base_delay_ms:10 ~max_delay_ms:80 ~attempt in
      let ceiling = min 80 (10 * (1 lsl (attempt - 1))) in
      if d < 0 || d > ceiling then
        Alcotest.fail
          (Printf.sprintf "attempt %d: backoff %d outside [0,%d]" attempt d
             ceiling)
    done
  done;
  (* the exponential actually widens before the cap *)
  let widened = ref false in
  for _ = 1 to 200 do
    if Retry.backoff_ms ~base_delay_ms:10 ~max_delay_ms:1000 ~attempt:4 > 10
    then widened := true
  done;
  Alcotest.(check bool) "later attempts draw past the base" true !widened;
  (* behaviour: transient failures retry, then succeed *)
  let calls = ref 0 in
  let r =
    Retry.with_retries ~attempts:3 ~base_delay_ms:1 (fun () ->
        incr calls;
        if !calls < 3 then raise (Failpoint.Fault_transient "jitter-test")
        else 42)
  in
  Alcotest.(check int) "succeeded on 3rd try" 42 r;
  Alcotest.(check int) "tried thrice" 3 !calls

(* ------------------------------------------------------------------ *)
(* Par combinators honor ?ctx *)

let test_par_ctx () =
  with_domains 4 (fun () ->
      let c = Ctx.create () in
      Ctx.cancel c;
      (match Par.parallel_for ~ctx:c 100_000 (fun _ -> ()) with
      | () -> Alcotest.fail "expected Cancelled from parallel_for"
      | exception Governor.Cancelled -> ());
      let c2 = Ctx.create ~deadline_ms:0 () in
      Unix.sleepf 0.002;
      (match
         Par.parallel_fold ~ctx:c2 ~n:100_000
           ~init:(fun () -> 0)
           ~body:(fun acc _ -> acc + 1)
           ~merge:( + ) 0
       with
      | _ -> Alcotest.fail "expected Deadline_exceeded from parallel_fold"
      | exception Governor.Deadline_exceeded -> ());
      let c3 = Ctx.create () in
      Ctx.cancel c3;
      match
        Par.parallel_iter_buffered ~ctx:c3 ~n:100_000
          ~produce:(fun i -> i)
          ~consume:(fun _ -> ())
          ()
      with
      | () -> Alcotest.fail "expected Cancelled from parallel_iter_buffered"
      | exception Governor.Cancelled -> ())

(* ------------------------------------------------------------------ *)
(* monitor surface *)

let test_monitor_governor_route () =
  let gov = Admission.create ~capacity:16 () in
  let l = load_flat ~governor:gov ~scheme:Database.Hybrid gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let db = l.Driver.db in
  Database.scan db (biggest_branch db) (fun _ -> ());
  let resp = Monitor.handler db ~meth:"GET" ~path:"/governor" ~query:[] in
  Alcotest.(check int) "200" 200 resp.Decibel_obs.Http.status;
  let body = resp.Decibel_obs.Http.body in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "body has %s" needle)
        true (contains body needle))
    [ "\"admission\""; "\"capacity\":16"; "\"counters\""; "\"breakers\"" ];
  (* prometheus exposition carries the governor counters *)
  let metrics = Monitor.handler db ~meth:"GET" ~path:"/metrics" ~query:[] in
  Alcotest.(check bool) "governor counters exported" true
    (contains metrics.Decibel_obs.Http.body "governor_")

let test_monitor_governor_ungoverned () =
  let l = load_flat ~scheme:Database.Hybrid gov_cfg in
  Fun.protect ~finally:(fun () -> Driver.close l) @@ fun () ->
  let resp = Monitor.handler l.Driver.db ~meth:"GET" ~path:"/governor" ~query:[] in
  Alcotest.(check int) "200" 200 resp.Decibel_obs.Http.status;
  Alcotest.(check bool) "admission null" true
    (contains resp.Decibel_obs.Http.body "\"admission\":null")

(* ------------------------------------------------------------------ *)

let scheme_cases name f =
  List.map
    (fun scheme ->
      Alcotest.test_case
        (Printf.sprintf "%s (%s)" name (Database.scheme_name scheme))
        `Quick (f scheme))
    [ Database.Tuple_first; Database.Version_first; Database.Hybrid ]

let () =
  Alcotest.run "governor"
    [
      ( "ctx",
        [
          Alcotest.test_case "check precedence and budget" `Quick
            test_ctx_basics;
          Alcotest.test_case "poller stride" `Quick test_poller_stride;
          Alcotest.test_case "ambient context" `Quick test_ambient_ctx;
        ] );
      ( "admission",
        [
          Alcotest.test_case "weights and shedding" `Quick
            test_admission_weights_and_shed;
          Alcotest.test_case "queued waiter honors deadline" `Quick
            test_admission_wait_deadline;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trip, half-open, close" `Quick
            test_breaker_lifecycle;
        ] );
      ( "deadline",
        scheme_cases "fires mid-scan" test_deadline_mid_scan
        @ scheme_cases "fires mid-scan, 4 domains"
            test_deadline_mid_scan_domains
        @ [
            Alcotest.test_case "acceptance: abort releases everything"
              `Quick test_acceptance_deadline_multi_scan;
          ] );
      ( "release",
        [
          Alcotest.test_case "cancel releases slot and pins" `Quick
            test_cancel_releases_slot_and_pins;
          Alcotest.test_case "full queue sheds, db stays readable" `Quick
            test_shed_leaves_readable;
          Alcotest.test_case "budget stops page-load blowup" `Quick
            test_budget_on_page_loads;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "facade breakers" `Quick test_db_breaker_wiring;
          Alcotest.test_case "lock waits respect deadlines" `Quick
            test_lock_wait_deadline;
          Alcotest.test_case "retry backoff jitter" `Quick test_retry_backoff;
          Alcotest.test_case "par combinators" `Quick test_par_ctx;
          Alcotest.test_case "monitor /governor" `Quick
            test_monitor_governor_route;
          Alcotest.test_case "monitor /governor ungoverned" `Quick
            test_monitor_governor_ungoverned;
        ] );
    ]
