(* Crash-safe maintenance tests: the journaled executor
   (Database.run_maintenance) on all three physical schemes — direct
   task execution preserves the logical fingerprint and improves the
   storage report; the maintenance torture schedule kills at every
   maint.* failpoint and must recover fingerprint-identical; recovery
   rolls back (or finishes) whatever the journal left pending; the
   maint.* observability surface moves. *)

open Decibel
module Failpoint = Decibel_fault.Failpoint
module Obs = Decibel_obs.Obs
module Vg = Decibel_graph.Version_graph

(* deterministic across runs and machines *)
let () = Failpoint.set_seed 0x5EEDL

let schemes =
  [
    Database.Tuple_first;
    Database.Tuple_first_tuple_oriented;
    Database.Version_first;
    Database.Hybrid;
  ]

let with_root f =
  let root = Decibel_util.Fsutil.fresh_dir "decibel-maint" in
  Fun.protect
    ~finally:(fun () -> Decibel_util.Fsutil.rm_rf root)
    (fun () -> f root)

(* the fragmenting prefix of the torture maintenance schedule: dead
   heap rows, multi-commit delta chains, sealed fragmented segments *)
let fragmenting =
  Torture.
    [
      (* the row holding 9 is superseded before the first commit, so
         no checkout ever references it: dead heap space *)
      Insert ("master", 1, 9);
      Insert ("master", 2, 20);
      Update ("master", 1, 10);
      Insert ("master", 3, 30);
      Commit "master";
      (* hybrid: freezes master's head segment with the dead row in it *)
      Branch ("dev", "master");
      Update ("dev", 1, 11);
      Update ("dev", 2, 21);
      Commit "dev";
      Update ("dev", 1, 12);
      Commit "dev";
      Update ("master", 3, 31);
      Delete ("master", 2);
      Commit "master";
      Flush;
    ]

let open_fragmented ~dir scheme =
  let db =
    Database.open_ ~durable:true ~scheme ~dir ~schema:Torture.schema ()
  in
  List.iter (Torture.apply db) fragmenting;
  db

(* run the same pass the torture [Maint] op runs: engine-chosen GC,
   then materialize per active branch *)
let run_all db =
  let r = ref [] in
  (match Database.run_maintenance db ~kind:Engine_intf.M_gc ~target:"" with
  | Some x -> r := x :: !r
  | None -> ());
  List.iter
    (fun (br : Vg.branch) ->
      if br.Vg.active then
        match
          Database.run_maintenance db ~kind:Engine_intf.M_materialize
            ~target:br.Vg.name
        with
        | Some x -> r := x :: !r
        | None -> ())
    (Vg.branches (Database.graph db));
  List.rev !r

let test_executor scheme () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db = open_fragmented ~dir scheme in
      let st = Torture.state_of db in
      let fp = Database.fingerprint db in
      let ran = run_all db in
      Alcotest.(check bool) "at least one task ran" true (ran <> []);
      Alcotest.(check string) "fingerprint preserved" fp
        (Database.fingerprint db);
      Alcotest.(check bool)
        "contents preserved" true
        (Torture.state_of db = st);
      (* the journal records only terminal outcomes *)
      Alcotest.(check int) "no pending journal tasks" 0
        (List.length (Database.resolve_maintenance ~dry_run:true db));
      Database.close db;
      (* the rewritten repository reopens to the same content and is
         fsck-clean *)
      let db2 = Database.reopen ~dir () in
      Alcotest.(check string) "fingerprint survives reopen" fp
        (Database.fingerprint db2);
      Alcotest.(check bool)
        "contents survive reopen" true
        (Torture.state_of db2 = st);
      Database.close db2;
      let r = Fsck.run ~dir () in
      if not (Fsck.clean r) then
        Alcotest.failf "fsck after maintenance: %s"
          (String.concat "; "
             (List.map (fun f -> f.Fsck.artifact ^ ": " ^ f.Fsck.problem)
                r.Fsck.findings)))

(* maintenance actually shrinks the store / shortens chains *)
let test_improves scheme () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db = open_fragmented ~dir scheme in
      let module R = Decibel_obs.Report in
      let dead r =
        List.fold_left
          (fun acc (s : R.segment) ->
            acc + (s.R.sg_records - s.R.sg_live_records))
          0 r.R.r_segments
      in
      let before = Database.storage_report db in
      let ran = run_all db in
      let after = Database.storage_report db in
      (match scheme with
      | Database.Tuple_first | Database.Tuple_first_tuple_oriented
      | Database.Hybrid ->
          Alcotest.(check bool)
            "dead records reclaimed" true
            (dead after < dead before)
      | Database.Version_first ->
          (* materialization collapses the hot branch's delta chain *)
          let chain name r =
            let b =
              List.find (fun (b : R.branch) -> b.R.br_name = name)
                r.R.r_branches
            in
            b.R.br_delta_chain
          in
          Alcotest.(check bool)
            "delta chain collapsed" true
            (chain "dev" after < chain "dev" before)
      | Database.Model -> ());
      Alcotest.(check bool)
        "reclaimed bytes are non-negative" true
        (List.for_all (fun m -> m.Database.m_reclaimed >= 0) ran);
      Database.close db)

(* kill at maint.commit (before the manifest write): recovery must
   roll the journaled task back — old content, no new files leaked *)
let test_rollback_at_commit scheme () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db = open_fragmented ~dir scheme in
      let fp = Database.fingerprint db in
      Failpoint.arm ~action:Failpoint.Raise "maint.commit"
        (Failpoint.After_hits 1);
      let fired =
        match run_all db with
        | _ -> false
        | exception Failpoint.Fault_injected _ -> true
      in
      Failpoint.disarm_all ();
      Alcotest.(check bool) "failpoint fired" true fired;
      Database.crash db;
      let db2 = Database.reopen ~dir () in
      Alcotest.(check string) "rolled back to old content" fp
        (Database.fingerprint db2);
      Alcotest.(check bool)
        "rollback left no pending journal work" true
        (Database.resolve_maintenance ~dry_run:true db2 = []);
      Database.close db2;
      Alcotest.(check bool)
        "fsck clean after rollback" true
        (Fsck.clean (Fsck.run ~dir ())))

(* fsck --repair alone (no reopen) must resolve interrupted
   maintenance from the journal: roll back a pre-commit crash, finish
   a post-commit one *)
let test_fsck_resolves scheme () =
  with_root (fun root ->
      let check ~site ~action =
        let dir = Filename.concat root ("repo-" ^ site) in
        let db = open_fragmented ~dir scheme in
        let fp = Database.fingerprint db in
        Failpoint.arm ~action:Failpoint.Raise site (Failpoint.After_hits 1);
        (try ignore (run_all db)
         with Failpoint.Fault_injected _ -> ());
        Failpoint.disarm_all ();
        Database.crash db;
        (* report-only run sees the pending task but leaves it *)
        let dry = Fsck.run ~dir () in
        Alcotest.(check bool)
          (site ^ ": dry run reports pending maintenance")
          true
          (List.exists (fun m -> m.Fsck.mf_action = "pending") dry.Fsck.maint);
        (* repair resolves it *)
        let r = Fsck.run ~repair:true ~dir () in
        Alcotest.(check bool)
          (site ^ ": repair resolved as " ^ action)
          true
          (List.exists (fun m -> m.Fsck.mf_action = action) r.Fsck.maint);
        (* second pass: nothing left to do *)
        let r2 = Fsck.run ~dir () in
        Alcotest.(check (list string)) (site ^ ": second pass clean") []
          (List.map (fun f -> f.Fsck.problem) r2.Fsck.findings);
        let db2 = Database.reopen ~dir () in
        Alcotest.(check string)
          (site ^ ": content preserved")
          fp
          (Database.fingerprint db2);
        Database.close db2
      in
      (* crash before the manifest commit: old state wins *)
      check ~site:"maint.commit" ~action:"rolled_back";
      (* crash after the journal's Apply entry: new state wins *)
      check ~site:"maint.swap" ~action:"finished")

(* the full matrix: kill at every maint.* crossing of the
   maintenance-concurrent schedule, raise and torn variants *)
let test_maint_torture scheme () =
  with_root (fun root ->
      let s = Torture.maint_torture ~root scheme in
      List.iter
        (fun site ->
          Alcotest.(check bool)
            (Printf.sprintf "schedule crosses %s" site)
            true
            (List.mem_assoc site s.Torture.s_sites))
        Torture.maint_sites;
      Alcotest.(check bool)
        "ran a useful number of cases" true
        (List.length s.Torture.s_cases >= 10);
      List.iter
        (fun (c : Torture.case) ->
          if not c.Torture.c_ok then
            Alcotest.failf "%s: %s@%d (%s): %s" s.Torture.s_scheme
              c.Torture.c_site c.Torture.c_occurrence c.Torture.c_action
              c.Torture.c_detail)
        s.Torture.s_cases)

(* counters and the background service *)
let test_observability () =
  with_root (fun root ->
      let dir = Filename.concat root "repo" in
      let db = open_fragmented ~dir Database.Tuple_first in
      let run0 = Obs.value_of "maint.tasks_run" in
      let ran = run_all db in
      Alcotest.(check bool) "task ran" true (ran <> []);
      Alcotest.(check bool)
        "maint.tasks_run moved" true
        (Obs.value_of "maint.tasks_run" > run0);
      Alcotest.(check bool)
        "running gauge cleared" true
        (Obs.gauge_value (Obs.gauge "maint.running_since") = 0.0);
      (* advisor-driven tick on an already-clean store is a no-op *)
      Alcotest.(check (list string))
        "tick after maintenance finds nothing" []
        (List.map
           (fun m -> m.Database.m_kind)
           (Database.maintenance_tick db));
      (* service lifecycle *)
      Alcotest.(check bool) "not running" false
        (Database.maintenance_running db);
      Database.start_maintenance ~interval_s:0.01 db;
      Alcotest.(check bool) "running" true (Database.maintenance_running db);
      Unix.sleepf 0.05;
      Database.stop_maintenance db;
      Alcotest.(check bool) "stopped" false
        (Database.maintenance_running db);
      Database.close db)

let () =
  Alcotest.run "maint"
    [
      ( "executor",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Quick
              (test_executor scheme))
          schemes );
      ( "improves",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Quick
              (test_improves scheme))
          schemes );
      ( "rollback",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Quick
              (test_rollback_at_commit scheme))
          schemes );
      ( "fsck",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Quick
              (test_fsck_resolves scheme))
          schemes );
      ( "torture",
        List.map
          (fun scheme ->
            Alcotest.test_case (Database.scheme_name scheme) `Slow
              (test_maint_torture scheme))
          schemes );
      ( "observability",
        [ Alcotest.test_case "counters + service" `Quick test_observability ]
      );
    ]
