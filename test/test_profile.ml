(* Tests for the request-scoped profiler (EXPLAIN ANALYZE): operator
   trees with cost counters, trace-context propagation into pool
   worker domains, partial profiles flushed on governed aborts, the
   profile ring, tail-latency exemplars, and the monitor's /profile
   route. *)

open Decibel
open Decibel_storage
module Obs = Decibel_obs.Obs
module Prof = Obs.Prof
module Par = Decibel_par.Par
module Governor = Decibel_governor.Governor

let schema = Schema.ints ~name:"r" ~width:4

let row k = [| Value.int k; Value.int 1; Value.int 2; Value.int 3 |]

let with_db ?pool scheme f =
  let dir = Decibel_util.Fsutil.fresh_dir "decibel-test-prof" in
  let db = Database.open_ ?pool ~scheme ~dir ~schema () in
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      Decibel_util.Fsutil.rm_rf dir)
    (fun () -> f db)

let seed db n =
  let master = Database.branch_named db "master" in
  for k = 1 to n do
    Database.insert db master (row k)
  done;
  ignore (Database.commit db master ~message:"seed");
  master

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let find_node p name =
  let rec go n =
    if n.Prof.n_name = name then Some n
    else List.fold_left (fun acc c -> if acc = None then go c else acc)
           None n.Prof.n_children
  in
  go p.Prof.p_root

(* ------------------------------------------------------------------ *)
(* the operator tree of a plain scan *)

let test_profile_tree () =
  Obs.set_enabled true;
  Obs.reset ();
  with_db Database.Hybrid (fun db ->
      let master = seed db 100 in
      let n, p =
        Database.profile ~label:"t1" db (fun () ->
            let n = ref 0 in
            Database.scan db master (fun _ -> incr n);
            !n)
      in
      Alcotest.(check int) "scan sees every row" 100 n;
      Alcotest.(check string) "label kept" "t1" p.Prof.p_label;
      Alcotest.(check bool) "not aborted" true (p.Prof.p_aborted = None);
      Alcotest.(check bool) "trace id non-empty" true
        (String.length p.Prof.p_trace_id > 0);
      (* the engine scan span became an operator node under the root *)
      let scan =
        match find_node p "hybrid.scan" with
        | Some node -> node
        | None -> Alcotest.fail "no hybrid.scan node in the profile tree"
      in
      Alcotest.(check int) "scan node rows" 100 scan.Prof.n_rows;
      Alcotest.(check bool) "scan node timed" true (scan.Prof.n_dur >= 0.);
      (* request totals: every emitted tuple attributed to this trace *)
      Alcotest.(check int) "tuples_emitted total" 100
        (Prof.total p Prof.Tuples_emitted);
      Alcotest.(check bool) "tuples_scanned >= emitted" true
        (Prof.total p Prof.Tuples_scanned >= 100);
      (* cumulative semantics: the root includes its children *)
      let idx k =
        let rec go i = function
          | [] -> assert false
          | k' :: rest -> if k = k' then i else go (i + 1) rest
        in
        go 0 Prof.all_kinds
      in
      Alcotest.(check bool) "root >= child per kind" true
        (List.for_all
           (fun k ->
             p.Prof.p_root.Prof.n_counters.(idx k)
             >= scan.Prof.n_counters.(idx k))
           Prof.all_kinds);
      (* ring and accessors *)
      (match Database.last_profile db with
      | Some q ->
          Alcotest.(check string) "last_profile is this request"
            p.Prof.p_trace_id q.Prof.p_trace_id
      | None -> Alcotest.fail "last_profile empty");
      Alcotest.(check bool) "recent_profiles holds it" true
        (List.exists
           (fun q -> q.Prof.p_trace_id = p.Prof.p_trace_id)
           (Database.recent_profiles db));
      (* renders *)
      let text = Prof.render p in
      Alcotest.(check bool) "render names the operator" true
        (contains text "hybrid.scan");
      Alcotest.(check bool) "render shows rows" true
        (contains text "rows=100");
      let js = Prof.profile_json p in
      Alcotest.(check bool) "json object shape" true
        (js.[0] = '{' && js.[String.length js - 1] = '}');
      Alcotest.(check bool) "json carries the trace id" true
        (contains js p.Prof.p_trace_id))

(* ------------------------------------------------------------------ *)
(* trace propagation into pool worker domains *)

let with_domains n f =
  let saved = Par.domain_count () in
  Par.set_domain_count n;
  Fun.protect ~finally:(fun () -> Par.set_domain_count saved) f

let test_parallel_attribution () =
  Obs.set_enabled true;
  Obs.reset ();
  with_domains 4 (fun () ->
      Alcotest.(check int) "pool is 4 wide" 4 (Par.domain_count ());
      (* worker tasks run on other domains; their counter adds must
         land in the submitting request's bag *)
      let (), p =
        Prof.profiled ~label:"par" (fun () ->
            Par.parallel_for 1000 (fun _ -> Prof.incr Prof.Tuples_scanned))
      in
      Alcotest.(check int) "all worker increments attributed" 1000
        (Prof.total p Prof.Tuples_scanned);
      (* and a real 4-domain engine scan attributes its tuples *)
      with_db Database.Tuple_first (fun db ->
          let master = seed db 400 in
          let n, p =
            Database.profile ~label:"par-scan" db (fun () ->
                let n = ref 0 in
                let m = Mutex.create () in
                Database.multi_scan db [ master ] (fun _ ->
                    Mutex.lock m;
                    incr n;
                    Mutex.unlock m);
                !n)
          in
          Alcotest.(check int) "multi_scan visits every row" 400 n;
          Alcotest.(check bool) "worker-domain tuples attributed" true
            (Prof.total p Prof.Tuples_emitted >= 400)))

let test_iter_buffered_propagation () =
  Obs.set_enabled true;
  Obs.reset ();
  with_domains 4 (fun () ->
      let drained = ref 0 in
      let (), p =
        Prof.profiled ~label:"buf" (fun () ->
            Par.parallel_iter_buffered ~n:500
              ~produce:(fun i ->
                (* runs on a pool worker *)
                Prof.incr Prof.Tuples_scanned;
                i)
              ~consume:(fun i ->
                (* runs back on the calling domain, interleaved with
                   in-flight producers *)
                Prof.incr Prof.Tuples_emitted;
                Alcotest.(check int) "in-order drain" !drained i;
                incr drained)
              ())
      in
      Alcotest.(check int) "every produce attributed" 500
        (Prof.total p Prof.Tuples_scanned);
      Alcotest.(check int) "every consume attributed" 500
        (Prof.total p Prof.Tuples_emitted);
      Alcotest.(check int) "all items drained" 500 !drained)

(* ------------------------------------------------------------------ *)
(* governed aborts still flush a (partial) profile *)

let test_deadline_flushes_partial () =
  Obs.set_enabled true;
  Obs.reset ();
  with_db Database.Tuple_first (fun db ->
      let master = seed db 200 in
      let ctx = Governor.Ctx.create ~deadline_ms:0 () in
      Unix.sleepf 0.005;
      (match
         Database.profile ~label:"doomed" db (fun () ->
             Database.scan ~ctx db master (fun _ -> ()))
       with
      | _ -> Alcotest.fail "deadline did not fire"
      | exception Governor.Deadline_exceeded -> ());
      match Database.last_profile db with
      | None -> Alcotest.fail "aborted request left no profile"
      | Some p ->
          Alcotest.(check string) "partial profile kept" "doomed"
            p.Prof.p_label;
          Alcotest.(check bool) "marked aborted" true
            (p.Prof.p_aborted <> None);
          Alcotest.(check bool) "prof.aborted counted" true
            (Obs.value_of "prof.aborted" >= 1))

let test_cancel_flushes_partial () =
  Obs.set_enabled true;
  Obs.reset ();
  with_db Database.Hybrid (fun db ->
      let master = seed db 200 in
      let ctx = Governor.Ctx.create () in
      Governor.Ctx.cancel ctx;
      (match
         Database.profile ~label:"cancelled" db (fun () ->
             Database.scan ~ctx db master (fun _ -> ()))
       with
      | _ -> Alcotest.fail "cancel did not fire"
      | exception Governor.Cancelled -> ());
      match Database.last_profile db with
      | None -> Alcotest.fail "cancelled request left no profile"
      | Some p ->
          Alcotest.(check bool) "marked aborted" true
            (p.Prof.p_aborted <> None))

(* ------------------------------------------------------------------ *)
(* ring capacity, exemplars, /profile route *)

let test_ring_capacity () =
  Obs.set_enabled true;
  Obs.reset ();
  Prof.set_profile_capacity 4;
  Fun.protect
    ~finally:(fun () -> Prof.set_profile_capacity 16)
    (fun () ->
      for i = 1 to 6 do
        ignore (Prof.profiled ~label:(Printf.sprintf "r%d" i) (fun () -> ()))
      done;
      let ring = Prof.recent_profiles () in
      Alcotest.(check int) "ring capped" 4 (List.length ring);
      Alcotest.(check string) "oldest survivor" "r3"
        (List.hd ring).Prof.p_label;
      Alcotest.(check string) "newest last" "r6"
        (List.nth ring 3).Prof.p_label;
      Alcotest.(check bool) "profiles counted" true
        (Obs.value_of "prof.profiles" >= 6))

let test_latency_exemplars () =
  Obs.set_enabled true;
  Obs.reset ();
  let (), p =
    Prof.profiled ~label:"ex" (fun () ->
        Obs.with_span "test.exemplar_span" (fun () -> ()))
  in
  let h = Obs.histogram "test.exemplar_span" in
  (* the span's histogram bucket remembers which request it saw, so a
     p99 outlier links back to a trace id *)
  Alcotest.(check (option string)) "exemplar near p99 is this trace"
    (Some p.Prof.p_trace_id)
    (Obs.exemplar_near h 0.99);
  Alcotest.(check bool) "raw exemplar array populated" true
    (Array.exists (fun s -> s = p.Prof.p_trace_id) (Obs.hist_exemplars h))

let test_profile_route () =
  Obs.set_enabled true;
  Obs.reset ();
  with_db Database.Hybrid (fun db ->
      let master = seed db 10 in
      let _, p =
        Database.profile ~label:"http" db (fun () ->
            Database.scan db master (fun _ -> ()))
      in
      let resp = Monitor.handler db ~meth:"GET" ~path:"/profile" ~query:[] in
      Alcotest.(check int) "200" 200 resp.Decibel_obs.Http.status;
      Alcotest.(check string) "json content type" "application/json"
        resp.Decibel_obs.Http.content_type;
      let body = resp.Decibel_obs.Http.body in
      Alcotest.(check bool) "body is a json array" true
        (String.length body > 0 && body.[0] = '[');
      Alcotest.(check bool) "serves the recorded profile" true
        (contains body p.Prof.p_trace_id))

let () =
  Alcotest.run "profile"
    [
      ( "tree",
        [
          Alcotest.test_case "operator tree + counters" `Quick
            test_profile_tree;
          Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "4-domain parallel_for + multi_scan" `Quick
            test_parallel_attribution;
          Alcotest.test_case "parallel_iter_buffered drains" `Quick
            test_iter_buffered_propagation;
        ] );
      ( "aborts",
        [
          Alcotest.test_case "deadline flushes partial" `Quick
            test_deadline_flushes_partial;
          Alcotest.test_case "cancel flushes partial" `Quick
            test_cancel_flushes_partial;
        ] );
      ( "surfacing",
        [
          Alcotest.test_case "latency exemplars" `Quick
            test_latency_exemplars;
          Alcotest.test_case "/profile route" `Quick test_profile_route;
        ] );
    ]
