(** CRC-32 (IEEE 802.3) checksums.

    The reflected-polynomial CRC every zip/png/ethernet implementation
    uses, so test vectors are plentiful ([string "123456789"] is
    [0xCBF43926]).  Decibel stores it after each heap-file record and
    as the trailer of atomically-written manifests; corruption shows up
    as a mismatch on read instead of a decoder derailment. *)

val string : string -> int
(** Checksum of a whole string; in [\[0, 2^32)]. *)

val sub : string -> int -> int -> int
(** [sub s pos len]: checksum of the slice; raises [Invalid_argument]
    on an out-of-range slice. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum, so a composite
    record can be checksummed without concatenation ([string s] is
    [update 0 s 0 (String.length s)]). *)
