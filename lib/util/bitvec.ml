(* Bits are stored little-endian within 64-bit words backed by Bytes, so
   bulk operations (union/xor/popcount) work a word at a time. The byte
   buffer length is always a multiple of 8. *)

type t = { mutable data : Bytes.t; mutable len : int }

let words_for_bits bits = (bits + 63) / 64

let create ?(capacity = 64) () =
  let w = max 1 (words_for_bits capacity) in
  { data = Bytes.make (w * 8) '\000'; len = 0 }

let length t = t.len

let word_count t = Bytes.length t.data / 8

let get_word t i = Bytes.get_int64_le t.data (i * 8)
let set_word t i v = Bytes.set_int64_le t.data (i * 8) v

(* Grow the backing store so that bit index [i] is addressable. Doubles
   to amortize, as the paper prescribes for bitmap expansion (§3.2). *)
let ensure t i =
  let needed = words_for_bits (i + 1) in
  if needed > word_count t then begin
    let new_words = max needed (2 * word_count t) in
    let data = Bytes.make (new_words * 8) '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data
  end;
  if i >= t.len then t.len <- i + 1

let check_index i =
  if i < 0 then invalid_arg "Bitvec: negative index"

let get t i =
  check_index i;
  if i >= t.len then false
  else
    let w = get_word t (i / 64) in
    Int64.logand (Int64.shift_right_logical w (i mod 64)) 1L = 1L

let set t i =
  check_index i;
  ensure t i;
  let wi = i / 64 in
  set_word t wi (Int64.logor (get_word t wi) (Int64.shift_left 1L (i mod 64)))

let clear t i =
  check_index i;
  ensure t i;
  let wi = i / 64 in
  set_word t wi
    (Int64.logand (get_word t wi)
       (Int64.lognot (Int64.shift_left 1L (i mod 64))))

let assign t i b = if b then set t i else clear t i

let copy t = { data = Bytes.copy t.data; len = t.len }

let used_words t = words_for_bits t.len

let pop_count_word w =
  (* 64-bit popcount via two 32-bit popcounts on the tagged-int-safe
     halves. *)
  let low = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
  let high = Int64.to_int (Int64.shift_right_logical w 32) in
  let pop32 x =
    let x = x - ((x lsr 1) land 0x55555555) in
    let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
    let x = (x + (x lsr 4)) land 0x0F0F0F0F in
    (* the byte-summing multiply must truncate to 32 bits as it would
       in C's uint32 arithmetic *)
    (x * 0x01010101 land 0xFFFFFFFF) lsr 24
  in
  pop32 low + pop32 high

let pop_count t =
  let n = used_words t in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + pop_count_word (get_word t i)
  done;
  !acc

let is_empty t =
  let n = used_words t in
  let rec loop i = i >= n || (get_word t i = 0L && loop (i + 1)) in
  loop 0

let equal a b =
  let na = used_words a and nb = used_words b in
  let n = max na nb in
  let word v i = if i < used_words v then get_word v i else 0L in
  let rec loop i = i >= n || (word a i = word b i && loop (i + 1)) in
  loop 0

let binop f a b =
  let len = max a.len b.len in
  let r = create ~capacity:(max 64 len) () in
  r.len <- len;
  let n = words_for_bits len in
  let word v i = if i < used_words v then get_word v i else 0L in
  for i = 0 to n - 1 do
    set_word r i (f (word a i) (word b i))
  done;
  r

let union a b = binop Int64.logor a b
let inter a b = binop Int64.logand a b
let xor a b = binop Int64.logxor a b
let diff a b = binop (fun x y -> Int64.logand x (Int64.lognot y)) a b

let union_in_place dst src =
  if src.len > dst.len then ensure dst (src.len - 1);
  let n = used_words src in
  for i = 0 to n - 1 do
    set_word dst i (Int64.logor (get_word dst i) (get_word src i))
  done

let inter_in_place dst src =
  (* dst.len is unchanged: bits of dst beyond src's words are ANDed
     with implicit zeros, so any dst words past src's used words must
     be cleared explicitly. *)
  let nd = used_words dst and ns = used_words src in
  for i = 0 to min nd ns - 1 do
    set_word dst i (Int64.logand (get_word dst i) (get_word src i))
  done;
  for i = ns to nd - 1 do
    set_word dst i 0L
  done

let diff_in_place dst src =
  (* bits of dst beyond src's words subtract implicit zeros: unchanged *)
  let n = min (used_words dst) (used_words src) in
  for i = 0 to n - 1 do
    set_word dst i (Int64.logand (get_word dst i) (Int64.lognot (get_word src i)))
  done

let xor_in_place dst src =
  if src.len > dst.len then ensure dst (src.len - 1);
  let n = used_words src in
  for i = 0 to n - 1 do
    set_word dst i (Int64.logxor (get_word dst i) (get_word src i))
  done

let copy_into ~src ~dst =
  let bytes = used_words src * 8 in
  if bytes > Bytes.length dst.data then
    dst.data <- Bytes.make (max bytes (2 * Bytes.length dst.data)) '\000'
  else
    (* clear the tail so stale dst words past src's extent vanish *)
    Bytes.fill dst.data bytes (Bytes.length dst.data - bytes) '\000';
  Bytes.blit src.data 0 dst.data 0 bytes;
  dst.len <- src.len

(* Branchless count-trailing-zeros of a 64-bit word with exactly one
   set bit, via de Bruijn multiplication: an isolated bit [1 lsl k]
   shifts the de Bruijn sequence so its top 6 bits index a lookup
   table mapping back to [k]. *)
let debruijn_mul = 0x03f79d71b4cb0a89L

let debruijn_tbl =
  [| 0; 1; 48; 2; 57; 49; 28; 3; 61; 58; 50; 42; 38; 29; 17; 4;
     62; 55; 59; 36; 53; 51; 43; 22; 45; 39; 33; 30; 24; 18; 12; 5;
     63; 47; 56; 27; 60; 41; 37; 16; 54; 35; 52; 21; 44; 32; 23; 11;
     46; 26; 40; 15; 34; 20; 31; 10; 25; 14; 19; 9; 13; 8; 7; 6 |]

let ctz_isolated low =
  debruijn_tbl.(Int64.to_int
                  (Int64.shift_right_logical (Int64.mul low debruijn_mul) 58)
                land 63)

(* Iterate the set bits of word [w] (word index [wi]), bounded by
   [limit] (the bitvector length). *)
let iter_word f wi limit w =
  let w = ref w in
  while !w <> 0L do
    let low = Int64.logand !w (Int64.neg !w) in
    let idx = (wi * 64) + ctz_isolated low in
    if idx < limit then f idx;
    (* strip lowest set bit *)
    w := Int64.logand !w (Int64.sub !w 1L)
  done

let iter_set f t =
  let n = used_words t in
  for wi = 0 to n - 1 do
    iter_word f wi t.len (get_word t wi)
  done

let iter_set_range f t ~lo ~hi =
  let lo = max 0 lo and hi = min hi t.len in
  if lo < hi then begin
    let wlo = lo / 64 and whi = (hi - 1) / 64 in
    for wi = wlo to min whi (used_words t - 1) do
      let w = ref (get_word t wi) in
      if wi = wlo && lo mod 64 > 0 then
        w := Int64.logand !w (Int64.shift_left Int64.minus_one (lo mod 64));
      if wi = whi && hi mod 64 > 0 then
        w :=
          Int64.logand !w
            (Int64.shift_right_logical Int64.minus_one (64 - (hi mod 64)));
      iter_word f wi t.len !w
    done
  end

let any_in_range t ~lo ~hi =
  let lo = max 0 lo and hi = min hi t.len in
  if lo >= hi then false
  else begin
    let wlo = lo / 64 and whi = (hi - 1) / 64 in
    let wmax = min whi (used_words t - 1) in
    let found = ref false in
    let wi = ref wlo in
    while (not !found) && !wi <= wmax do
      let w = ref (get_word t !wi) in
      if !wi = wlo && lo mod 64 > 0 then
        w := Int64.logand !w (Int64.shift_left Int64.minus_one (lo mod 64));
      if !wi = whi && hi mod 64 > 0 then
        w :=
          Int64.logand !w
            (Int64.shift_right_logical Int64.minus_one (64 - (hi mod 64)));
      if !w <> 0L then found := true;
      incr wi
    done;
    !found
  end

let fold_set f init t =
  let acc = ref init in
  iter_set (fun i -> acc := f !acc i) t;
  !acc

let to_list t = List.rev (fold_set (fun acc i -> i :: acc) [] t)

let of_list l =
  let t = create () in
  List.iter (fun i -> set t i) l;
  t

let next_set t i =
  check_index i;
  let n = used_words t in
  let rec scan wi mask =
    if wi >= n then None
    else
      let w = Int64.logand (get_word t wi) mask in
      if w = 0L then scan (wi + 1) Int64.minus_one
      else
        let bit = ctz_isolated (Int64.logand w (Int64.neg w)) in
        let idx = (wi * 64) + bit in
        if idx < t.len then Some idx else None
  in
  if i >= t.len then None
  else
    let wi = i / 64 in
    let mask =
      if i mod 64 = 0 then Int64.minus_one
      else Int64.shift_left Int64.minus_one (i mod 64)
    in
    scan wi mask

let serialize buf t =
  let n = used_words t in
  Buffer.add_int32_le buf (Int32.of_int t.len);
  for i = 0 to n - 1 do
    Buffer.add_int64_le buf (get_word t i)
  done

let deserialize s pos =
  let len = Int32.to_int (String.get_int32_le s !pos) in
  pos := !pos + 4;
  let n = words_for_bits len in
  let t = create ~capacity:(max 64 len) () in
  t.len <- len;
  for i = 0 to n - 1 do
    set_word t i (String.get_int64_le s !pos);
    pos := !pos + 8
  done;
  t

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  iter_set
    (fun i ->
      if not !first then Format.fprintf fmt ", ";
      first := false;
      Format.fprintf fmt "%d" i)
    t;
  Format.fprintf fmt "}"
