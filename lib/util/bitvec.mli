(** Growable bit vectors.

    The central indexing structure of Decibel's tuple-first and hybrid
    storage schemes is a bitmap relating tuples to the branches they are
    live in (paper §3.1).  This module provides the underlying dense bit
    vector: a growable sequence of bits with word-at-a-time bulk
    operations (and / or / xor), population count, and fast iteration
    over set bits.

    Indices are 0-based.  Reading past [length] returns [false]; writing
    past [length] grows the vector (intervening bits are zero).  A
    vector may not be mutated while another domain reads or writes it;
    concurrent read-only access to a quiescent vector is safe. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty vector. [capacity] (bits) preallocates backing storage. *)

val length : t -> int
(** Number of bits logically present (highest written index + 1). *)

val get : t -> int -> bool
(** [get t i] is bit [i]; [false] beyond [length t]. Raises
    [Invalid_argument] on negative [i]. *)

val set : t -> int -> unit
(** [set t i] sets bit [i] to one, growing the vector if needed. *)

val clear : t -> int -> unit
(** [clear t i] sets bit [i] to zero, growing the vector if needed. *)

val assign : t -> int -> bool -> unit
(** [assign t i b] writes [b] at index [i]. *)

val copy : t -> t

val equal : t -> t -> bool
(** Logical equality: trailing zeros are insignificant. *)

val is_empty : t -> bool
(** [true] iff no bit is set. *)

val pop_count : t -> int
(** Number of set bits. *)

val union : t -> t -> t
val inter : t -> t -> t
val xor : t -> t -> t
(** Bulk logical operations; the result length is the max of the two
    argument lengths ([inter]: the min suffices logically, but we keep
    the max for uniformity). Arguments are unchanged. *)

val diff : t -> t -> t
(** [diff a b] is [a AND NOT b]. *)

val union_in_place : t -> t -> unit
(** [union_in_place dst src] ORs [src] into [dst]. *)

val inter_in_place : t -> t -> unit
(** [inter_in_place dst src] ANDs [src] into [dst].  [length dst] is
    unchanged; bits of [dst] beyond [length src] are cleared. *)

val diff_in_place : t -> t -> unit
(** [diff_in_place dst src] is [dst AND NOT src], in place. *)

val xor_in_place : t -> t -> unit
(** [xor_in_place dst src] XORs [src] into [dst], growing [dst] to at
    least [length src]. *)

val copy_into : src:t -> dst:t -> unit
(** Make [dst] a logical copy of [src], reusing [dst]'s backing
    storage when large enough.  The scratch-reuse primitive for hot
    loops that would otherwise allocate a fresh vector per step. *)

val iter_set : (int -> unit) -> t -> unit
(** Calls the function on each set index, ascending. Skips zero words;
    the lowest set bit of a word is found with a branchless de Bruijn
    multiply rather than a shift loop. *)

val iter_set_range : (int -> unit) -> t -> lo:int -> hi:int -> unit
(** [iter_set_range f t ~lo ~hi] calls [f] on each set index in
    [\[lo, hi)], ascending — the chunked form of {!iter_set} used by
    parallel range scans. *)

val any_in_range : t -> lo:int -> hi:int -> bool
(** [any_in_range t ~lo ~hi] is [true] iff some bit in [\[lo, hi)] is
    set — word-at-a-time, without iterating individual bits.  The
    block-skip primitive of columnar scans: a branch-membership bitmap
    with no bit in a block's row range means the block is never read or
    decoded. *)

val fold_set : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val of_list : int list -> t

val next_set : t -> int -> int option
(** [next_set t i] is the smallest set index [>= i], if any. *)

val serialize : Buffer.t -> t -> unit
(** Appends a self-delimiting encoding (length + raw words). *)

val deserialize : string -> int ref -> t
(** Reads an encoding produced by {!serialize}, advancing the cursor. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: ["{1, 5, 9}"]. *)
