(* Runs alternate starting with zeros: [z0; o0; z1; o1; ...].  The total
   of all runs equals the logical length, so decode reproduces trailing
   zeros and hence exact lengths. *)

let runs_of v =
  let len = Bitvec.length v in
  let runs = ref [] in
  let run_start = ref 0 in
  let run_val = ref false in
  let flush upto =
    runs := (upto - !run_start) :: !runs;
    run_start := upto
  in
  for i = 0 to len - 1 do
    let b = Bitvec.get v i in
    if b <> !run_val then begin
      flush i;
      run_val := b
    end
  done;
  flush len;
  List.rev !runs

let encode v =
  let buf = Buffer.create 64 in
  let runs = runs_of v in
  Binio.write_varint buf (Bitvec.length v);
  Binio.write_varint buf (List.length runs);
  List.iter (Binio.write_varint buf) runs;
  Buffer.contents buf

let encoded_size v = String.length (encode v)

let decode s pos =
  let len = Binio.read_varint s pos in
  let nruns = Binio.read_varint s pos in
  (* Sanity-check the header before trusting it with allocation or
     loop bounds: a well-formed encoding alternates runs starting with
     a (possibly empty) zero-run, so at most [len + 1] runs exist, and
     every run must fit inside the declared length.  Without these
     checks a flipped bit in [len] or a run length turns decode into an
     unbounded allocation instead of a clean [Corrupt]. *)
  if nruns > len + 1 then
    raise (Binio.Corrupt "Rle.decode: more runs than bits");
  let v = Bitvec.create ~capacity:(max 64 len) () in
  let cursor = ref 0 in
  let bit = ref false in
  for _ = 1 to nruns do
    let run = Binio.read_varint s pos in
    if run > len - !cursor then
      raise (Binio.Corrupt "Rle.decode: run overruns declared length");
    if !bit then
      for i = !cursor to !cursor + run - 1 do
        Bitvec.set v i
      done;
    cursor := !cursor + run;
    bit := not !bit
  done;
  if !cursor <> len then
    raise (Binio.Corrupt "Rle.decode: run total does not match length");
  (* materialize trailing zeros so the logical length round-trips *)
  if len > 0 && Bitvec.length v < len then Bitvec.assign v (len - 1) false;
  v
