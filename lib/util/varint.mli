(** Full-width (64-bit) LEB128 varints with zigzag signed encoding.

    {!Binio.write_varint} serves manifest bookkeeping where values are
    non-negative tagged ints; the columnar codecs of segment format v2
    store deltas of arbitrary [int64] column values, which need all 64
    bits and a signed mapping that keeps small magnitudes short.
    Conventions follow {!Binio}: writers append to a [Buffer.t], readers
    take a string and a cursor and raise [Binio.Corrupt] on truncated or
    over-long input. *)

val write_u64 : Buffer.t -> int64 -> unit
(** Unsigned LEB128; at most 10 bytes. *)

val read_u64 : string -> int ref -> int64
(** Inverse of {!write_u64}. Raises [Binio.Corrupt] on truncation or an
    encoding longer than 10 bytes. *)

val zigzag : int64 -> int64
val unzigzag : int64 -> int64
(** The zigzag transform and its inverse: [0, -1, 1, -2, ...] maps to
    [0, 1, 2, 3, ...], so small-magnitude deltas encode in one byte. *)

val write_i64 : Buffer.t -> int64 -> unit
(** [write_u64] of the zigzag transform. *)

val read_i64 : string -> int ref -> int64

val size_u64 : int64 -> int
val size_i64 : int64 -> int
(** Encoded byte counts, for storage accounting. *)
