(* LEB128 over full 64-bit values, plus the zigzag transform used by
   the columnar int codec.  Binio's varint is capped at 62 bits because
   it round-trips OCaml's tagged ints; column data is Int64-valued, so
   delta streams need the full range (a delta between two extremes of
   the int64 domain does not fit a tagged int). *)

let write_u64 buf (v : int64) =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = Int64.to_int (Int64.logand !v 0x7fL) in
    v := Int64.shift_right_logical !v 7;
    if !v = 0L then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Chunks at shifts 0..49 accumulate in a native int (56 bits fit a
   63-bit OCaml int with room to spare), so the common small-delta case
   decodes without a single boxed Int64 operation; only the 9th and
   10th chunks fall back to Int64 arithmetic. *)
let read_u64 s pos =
  let len = String.length s in
  let i = ref !pos in
  let rec fast acc shift =
    if !i >= len then
      raise (Binio.Corrupt "Varint.read_u64: truncated input");
    let b = Char.code (String.unsafe_get s !i) in
    incr i;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then Int64.of_int acc
    else if shift = 49 then slow (Int64.of_int acc) 56
    else fast acc (shift + 7)
  and slow acc shift =
    if shift > 63 then raise (Binio.Corrupt "Varint.read_u64: too long");
    if !i >= len then
      raise (Binio.Corrupt "Varint.read_u64: truncated input");
    let b = Char.code (String.unsafe_get s !i) in
    incr i;
    let acc =
      Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift)
    in
    if b land 0x80 = 0 then acc else slow acc (shift + 7)
  in
  let v = fast 0 0 in
  pos := !i;
  v

(* Zigzag maps signed values to unsigned ones with small magnitudes
   staying small: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ... *)
let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag v =
  Int64.logxor
    (Int64.shift_right_logical v 1)
    (Int64.neg (Int64.logand v 1L))

let write_i64 buf v = write_u64 buf (zigzag v)
let read_i64 s pos = unzigzag (read_u64 s pos)

let size_u64 v =
  let rec loop n v =
    let v = Int64.shift_right_logical v 7 in
    if v = 0L then n else loop (n + 1) v
  in
  loop 1 v

let size_i64 v = size_u64 (zigzag v)
