(** Top-level database facade.

    Wraps any {!Engine_intf.S} implementation behind one concrete type
    (via a first-class module), adds branch-name resolution, session
    management with two-phase locking (paper §2.2.3: concurrent
    transactions on the same version are isolated through 2PL), and
    convenience operations used by the benchmark (table-wise updates,
    list-returning scans). *)

open Decibel_storage
open Types
module Vg = Decibel_graph.Version_graph
module Obs = Decibel_obs.Obs
module Workload = Decibel_obs.Workload
module Advisor = Decibel_obs.Advisor
module Watchdog = Decibel_obs.Watchdog
module Governor = Decibel_governor.Governor
module Maint = Decibel_maint.Maint
module Mjournal = Decibel_maint.Journal

(** Storage scheme selector (paper §3, plus the testing oracle). *)
type scheme =
  | Tuple_first  (** branch-oriented bitmap, the paper's default (§5) *)
  | Tuple_first_tuple_oriented
  | Version_first
  | Hybrid
  | Model

let scheme_name = function
  | Tuple_first -> "tuple-first"
  | Tuple_first_tuple_oriented -> "tuple-first-tuple-oriented"
  | Version_first -> "version-first"
  | Hybrid -> "hybrid"
  | Model -> "model"

let all_schemes = [ Tuple_first; Tuple_first_tuple_oriented; Version_first; Hybrid ]

(** Graceful degradation: detected corruption quarantines the affected
    branch and flips the database to read-only, rather than crashing or
    silently serving bad data. *)
type health = Healthy | Degraded of string

type t =
  | Db : {
      engine : (module Engine_intf.S with type t = 'e);
      state : 'e;
      dir : string;
      pool : Buffer_pool.t;
      locks : Lock_manager.t;
      mutable wal : Wal.t option;
      mutable next_session : int;
      mutable health : health;
      quarantined : (branch_id, string) Hashtbl.t;
      governor : Governor.Admission.t option;
      breakers : (branch_id, Governor.Breaker.t) Hashtbl.t;
      watchdog : Watchdog.t;
      maint_mutex : Mutex.t;
      mutable maint_service : Maint.Service.t option;
    }
      -> t

let wal_path dir = Filename.concat dir "wal.log"

(* workload checkpoint lives next to the manifest, like the WAL *)
let workload_path dir = Filename.concat dir "workload.jsonl"

let c_corruption = Obs.counter "storage.corruption_detected"
let c_replay_skipped = Obs.counter "wal.replay_skipped"

let open_ ?pool ?(durable = false) ?(compress = false) ?(format = 2)
    ?lock_timeout_s ?governor ~scheme ~dir ~schema () =
  let pool =
    match pool with Some p -> p | None -> Buffer_pool.create ()
  in
  let locks = Lock_manager.create ?timeout_s:lock_timeout_s () in
  let pack (type e) (module E : Engine_intf.S with type t = e) =
    let state = E.create ~format ~compress ~dir ~pool ~schema in
    let wal =
      if durable then begin
        (* checkpoint 0: the freshly-initialized state, so a crash
           before the first flush still has a base to replay onto *)
        E.flush state;
        Some (Wal.open_log ~path:(wal_path dir) ())
      end
      else None
    in
    Db
      {
        engine = (module E);
        state;
        dir;
        pool;
        locks;
        wal;
        next_session = 0;
        health = Healthy;
        quarantined = Hashtbl.create 4;
        governor;
        breakers = Hashtbl.create 4;
        watchdog = Watchdog.create ();
        maint_mutex = Mutex.create ();
        maint_service = None;
      }
  in
  match scheme with
  | Tuple_first -> pack (module Tuple_first.Branch_oriented)
  | Tuple_first_tuple_oriented -> pack (module Tuple_first.Tuple_oriented)
  | Version_first -> pack (module Version_first)
  | Hybrid -> pack (module Hybrid)
  | Model -> pack (module Model)

(* Reopen a repository persisted by [flush]/[close].  The scheme is
   discovered from the manifest each engine leaves behind. *)
let manifest_schemes =
  [
    ("manifest.tf", Tuple_first);
    ("manifest.vf", Version_first);
    ("manifest.hy", Hybrid);
  ]

let detect_scheme dir =
  let candidates =
    List.filter_map
      (fun (file, scheme) ->
        if Sys.file_exists (Filename.concat dir file) then Some (file, scheme)
        else None)
      manifest_schemes
  in
  match candidates with
  | [ (file, scheme) ] ->
      if scheme = Tuple_first then begin
        (* both bitmap layouts share the manifest file; it records which
           layout wrote it (past the columnar format header, if any) *)
        let data =
          Decibel_util.Binio.read_file (Filename.concat dir file)
        in
        let pos = ref 0 in
        let _version = Col_segment.manifest_version data pos in
        match Decibel_util.Binio.read_string data pos with
        | "tuple-oriented" -> Tuple_first_tuple_oriented
        | _ -> Tuple_first
      end
      else scheme
  | [] -> errorf "no Decibel repository found in %s" dir
  | _ :: _ :: _ -> errorf "ambiguous repository manifests in %s" dir

(* A repository persisted in segment format v1 opens read-only under
   the v2 binary: every read path works (the v1 codecs remain), but
   writes would commit the old layout further, so they are refused
   until [fsck --migrate] rewrites the segments. *)
let v1_readonly_reason =
  "repository uses segment format v1; run fsck --migrate to upgrade"

let reopen_checkpoint ?pool ?scheme ?governor ~dir () =
  let pool = match pool with Some p -> p | None -> Buffer_pool.create () in
  let scheme = match scheme with Some s -> s | None -> detect_scheme dir in
  let pack (type e) (module E : Engine_intf.S with type t = e) =
    let state = E.open_existing ~dir ~pool in
    (* resume per-branch workload accounting from the checkpoint left
       by the last flush/close (missing file is a no-op) *)
    Workload.load ~path:(workload_path dir) ();
    Db
      {
        engine = (module E);
        state;
        dir;
        pool;
        locks = Lock_manager.create ();
        wal = None;
        next_session = 0;
        health =
          (if E.format_version state < 2 then Degraded v1_readonly_reason
           else Healthy);
        quarantined = Hashtbl.create 4;
        governor;
        breakers = Hashtbl.create 4;
        watchdog = Watchdog.create ();
        maint_mutex = Mutex.create ();
        maint_service = None;
      }
  in
  match scheme with
  | Tuple_first -> pack (module Tuple_first.Branch_oriented)
  | Tuple_first_tuple_oriented -> pack (module Tuple_first.Tuple_oriented)
  | Version_first -> pack (module Version_first)
  | Hybrid -> pack (module Hybrid)
  | Model -> pack (module Model)

let scheme_of (Db { engine = (module E); _ }) = E.scheme
let schema (Db { engine = (module E); state; _ }) = E.schema state
let graph (Db { engine = (module E); state; _ }) = E.graph state

let branch_named t name =
  match Vg.branch_by_name (graph t) name with
  | Some b -> b.Vg.bid
  | None -> errorf "no branch named %S" name

let branch_name t bid = (Vg.branch (graph t) bid).Vg.name

(* ------------------------------------------------------------------ *)
(* Health and graceful degradation.

   A checksum failure ([Binio.Corrupt] escaping an engine operation)
   quarantines the branch it surfaced on and flips the database to
   read-only: intact branches stay readable, every write is refused
   until the operator runs fsck / restores, and nothing corrupt is
   silently served or made durable. *)

let health (Db { health; _ }) = health

let quarantined (Db { quarantined; _ }) =
  List.sort compare
    (Hashtbl.fold (fun b reason acc -> (b, reason) :: acc) quarantined [])

let degrade (Db d) reason =
  match d.health with
  | Degraded _ -> ()
  | Healthy ->
      d.health <- Degraded reason;
      Obs.event ~level:Obs.Warn ~comp:"db"
        ~attrs:[ ("reason", reason) ]
        "database degraded to read-only"

(* Record detected corruption and raise; never returns. *)
let corruption (Db d as t) ?branch msg =
  Obs.incr c_corruption;
  (match branch with
  | Some b when not (Hashtbl.mem d.quarantined b) ->
      Hashtbl.replace d.quarantined b msg;
      Obs.event ~level:Obs.Warn ~comp:"db"
        ~attrs:[ ("branch", string_of_int b); ("reason", msg) ]
        "corruption detected; branch quarantined"
  | _ ->
      Obs.event ~level:Obs.Warn ~comp:"db"
        ~attrs:[ ("reason", msg) ]
        "corruption detected");
  degrade t msg;
  errorf "corruption detected: %s" msg

let check_writable (Db d) =
  match d.health with
  | Healthy -> ()
  | Degraded reason -> errorf "database is read-only (degraded): %s" reason

let check_branch_ok (Db d) b =
  match Hashtbl.find_opt d.quarantined b with
  | Some reason -> errorf "branch %d is quarantined: %s" b reason
  | None -> ()

(* Run an engine operation touching the given branches; corruption it
   surfaces quarantines the first listed branch. *)
let guarded t bs f =
  List.iter (check_branch_ok t) bs;
  try f ()
  with Decibel_util.Binio.Corrupt msg ->
    corruption t ?branch:(match bs with b :: _ -> Some b | [] -> None) msg

(* ------------------------------------------------------------------ *)
(* Resource governance.

   When the database is opened with a [?governor], long-running
   operations pass through the full gauntlet: per-branch circuit
   breaker, weighted admission (cheap single-branch scans vs. heavy
   multi-scans / diffs / merges), then the engine work with the
   caller's context installed ambiently so the buffer pool and lock
   manager see its deadline and budget.  Without a governor the
   wrapper only honors an explicit [?ctx] — no slots, no breakers —
   so an ungoverned database behaves exactly as before. *)

let breaker_for (Db d as t) b =
  match Hashtbl.find_opt d.breakers b with
  | Some br -> br
  | None ->
      let br = Governor.Breaker.create ~name:(branch_name t b) () in
      Hashtbl.replace d.breakers b br;
      br

(* Only infrastructure failures count against a branch's breaker: user
   errors ([Engine_error]) and governor verdicts (deadline, shed) say
   nothing about the branch's storage health. *)
let counts_as_failure = function
  | Decibel_util.Binio.Corrupt _ -> true
  | Decibel_fault.Failpoint.Fault_injected _ -> true
  | Unix.Unix_error _ -> true
  | _ -> false

let governed (Db d as t) ?ctx ~cls bs f =
  let breakers =
    match d.governor with
    | None -> [] (* breakers are part of the opt-in governor machinery *)
    | Some _ -> List.map (breaker_for t) bs
  in
  List.iter Governor.Breaker.check breakers;
  let classify () =
    match f () with
    | r ->
        List.iter Governor.Breaker.success breakers;
        r
    | exception e ->
        Governor.note_outcome e;
        if counts_as_failure e then
          List.iter Governor.Breaker.failure breakers;
        raise e
  in
  let with_ctx () =
    match ctx with
    | None -> classify ()
    | Some c ->
        (* [release] drops any pool pins / scratch charges the op still
           holds, however it ended — the gauge must return to baseline *)
        Fun.protect
          ~finally:(fun () -> Governor.Ctx.release c)
          (fun () ->
            Governor.Ctx.check c;
            Governor.Ctx.with_current ctx classify)
  in
  match d.governor with
  | None -> with_ctx ()
  | Some adm ->
      let slot = Governor.Admission.admit ?ctx adm cls in
      Fun.protect
        ~finally:(fun () -> Governor.Admission.release slot)
        with_ctx

let governor_stats (Db { governor; _ }) =
  Option.map Governor.Admission.stats governor

let breaker (Db { governor; _ } as t) b =
  match governor with None -> None | Some _ -> Some (breaker_for t b)

let breaker_list (Db { breakers; _ }) =
  List.sort compare
    (Hashtbl.fold
       (fun _ br acc -> (Governor.Breaker.name br, br) :: acc)
       breakers [])

(* ------------------------------------------------------------------ *)
(* Logged operations.  The WAL entry is written (and synced) before the
   engine applies the operation; once the engine has applied it, its
   LSN becomes the state's wal-marker, which the next checkpoint
   persists inside the manifest.  Recovery replays only entries beyond
   the marker, so a crash anywhere between append and checkpoint can
   never double-apply. *)

let log (Db { engine = (module E); state; wal; _ }) entry =
  match wal with
  | Some w -> Some (Wal.append w (E.schema state) entry)
  | None -> None

let mark (Db { engine = (module E); state; _ }) = function
  | Some lsn -> E.set_wal_marker state lsn
  | None -> ()

let create_branch (Db { engine = (module E); state; _ } as t) ~name ~from =
  check_writable t;
  let lsn = log t (Wal.W_branch (name, from)) in
  let bid = E.create_branch state ~name ~from in
  mark t lsn;
  bid

let branch_from t ~name ~of_branch =
  (* branch off the current head commit of an existing branch; goes
     through [create_branch] so the operation is write-ahead-logged *)
  let from = Vg.head (graph t) of_branch in
  create_branch t ~name ~from

let commit (Db { engine = (module E); state; _ } as t) b ~message =
  check_writable t;
  guarded t [ b ] (fun () ->
      let lsn = log t (Wal.W_commit (b, message)) in
      let vid = E.commit state b ~message in
      mark t lsn;
      vid)

let insert (Db { engine = (module E); state; _ } as t) b tuple =
  check_writable t;
  guarded t [ b ] (fun () ->
      let lsn = log t (Wal.W_insert (b, tuple)) in
      E.insert state b tuple;
      mark t lsn)

let update (Db { engine = (module E); state; _ } as t) b tuple =
  check_writable t;
  guarded t [ b ] (fun () ->
      let lsn = log t (Wal.W_update (b, tuple)) in
      E.update state b tuple;
      mark t lsn)

let delete (Db { engine = (module E); state; _ } as t) b key =
  check_writable t;
  guarded t [ b ] (fun () ->
      let lsn = log t (Wal.W_delete (b, key)) in
      E.delete state b key;
      mark t lsn)

let lookup (Db { engine = (module E); state; _ } as t) b key =
  guarded t [ b ] (fun () -> E.lookup state b key)

let scan ?ctx (Db { engine = (module E); state; _ } as t) b f =
  guarded t [ b ] (fun () ->
      governed t ?ctx ~cls:Governor.Cheap [ b ] (fun () ->
          E.scan ?ctx state b f))

let scan_filtered ?ctx (Db { engine = (module E); state; _ } as t) b ~preds f =
  guarded t [ b ] (fun () ->
      governed t ?ctx ~cls:Governor.Cheap [ b ] (fun () ->
          E.scan_filtered ?ctx state b ~preds f))

let scan_version ?ctx (Db { engine = (module E); state; _ } as t) v f =
  try
    governed t ?ctx ~cls:Governor.Cheap [] (fun () ->
        E.scan_version ?ctx state v f)
  with Decibel_util.Binio.Corrupt msg -> corruption t msg

let multi_scan ?ctx (Db { engine = (module E); state; _ } as t) bs f =
  guarded t bs (fun () ->
      governed t ?ctx ~cls:Governor.Heavy bs (fun () ->
          E.multi_scan ?ctx state bs f))

let diff ?ctx (Db { engine = (module E); state; _ } as t) a b ~pos ~neg =
  guarded t [ a; b ] (fun () ->
      governed t ?ctx ~cls:Governor.Heavy [ a; b ] (fun () ->
          E.diff ?ctx state a b ~pos ~neg))

let merge ?ctx (Db { engine = (module E); state; _ } as t) ~into ~from ~policy
    ~message =
  check_writable t;
  guarded t [ into; from ] (fun () ->
      governed t ?ctx ~cls:Governor.Heavy [ into; from ] (fun () ->
          let lsn = log t (Wal.W_merge (into, from, policy, message)) in
          match E.merge ?ctx state ~into ~from ~policy ~message with
          | r ->
              mark t lsn;
              r
          | exception
              (( Governor.Cancelled | Governor.Deadline_exceeded
               | Governor.Budget_exceeded _ ) as e) ->
              (* Engines abort merges only in the read phase, so the
                 logged entry had no effect on state.  Marking it
                 consumed keeps recovery from replaying — and this time
                 applying — an operation the caller saw fail. *)
              mark t lsn;
              raise e))

let format_version (Db { engine = (module E); state; _ }) =
  E.format_version state

(* In-place v1 → v2 segment rewrite.  Clearing the v1 read-only
   degradation afterwards makes the migrated repository immediately
   writable; any other degradation reason is left in force. *)
let migrate (Db d as t) =
  let (Db { engine = (module E); state; _ }) = t in
  E.migrate state;
  match d.health with
  | Degraded reason when reason = v1_readonly_reason -> d.health <- Healthy
  | _ -> ()

let dataset_bytes (Db { engine = (module E); state; _ }) =
  E.dataset_bytes state

let commit_meta_bytes (Db { engine = (module E); state; _ }) =
  E.commit_meta_bytes state

(* Checkpoint this database's slice of the process-wide workload table
   next to the manifest.  The model oracle may run with a nonexistent
   dir; skip rather than fail the flush. *)
let save_workload (Db { engine = (module E); state; dir; _ }) =
  if Sys.file_exists dir && Sys.is_directory dir then
    Workload.save
      ~table:(Schema.name (E.schema state))
      ~path:(workload_path dir) ()

(* flushing checkpoints: once the engine's durable state reflects all
   applied operations, the log can restart empty *)
let flush (Db { engine = (module E); state; wal; _ } as t) =
  E.flush state;
  save_workload t;
  Option.iter Wal.reset wal

(* The background maintenance service must be stopped before the
   engine's descriptors go away, whether the shutdown is graceful or a
   simulated crash — a domain ticking against a closed state would
   turn the torture harness's controlled kills into wild ones. *)
let stop_maint_service (Db d) =
  match d.maint_service with
  | None -> ()
  | Some s ->
      d.maint_service <- None;
      Maint.Service.stop s

let close (Db { engine = (module E); state; wal; _ } as t) =
  stop_maint_service t;
  save_workload t;
  E.close state;
  Option.iter
    (fun w ->
      Wal.reset w;
      Wal.close w)
    wal

(* Crash simulation for the torture harness: drop every in-memory
   buffer and close descriptors without checkpointing, so disk holds
   exactly what the WAL and the last flush made durable. *)
let crash (Db { engine = (module E); state; wal; _ } as t) =
  stop_maint_service t;
  E.crash state;
  Option.iter Wal.close wal

let verify (Db { engine = (module E); state; _ }) = E.verify state

let wal_marker (Db { engine = (module E); state; _ }) = E.wal_marker state

let pool (Db { pool; _ }) = pool

(* Simulate a cold cache between measurements, standing in for the
   paper's disk-cache flushes before each operation (§5). *)
let drop_caches (Db { pool; _ } as t) =
  flush t;
  Buffer_pool.drop_all pool

(* The registry is process-wide; the [t] parameter keeps the API shaped
   like the rest of the facade and leaves room for per-database
   registries later. *)
let metrics (Db _) = Obs.snapshot ()
let metrics_json (Db _) = Obs.to_json (Obs.snapshot ())
let dump_trace (Db _) ~path = Obs.write_trace ~path

(* EXPLAIN ANALYZE entry point: run [f] (any sequence of ops against
   this database) under a fresh request trace; the per-operator tree is
   returned alongside the result and kept in the profiler's ring for
   the monitor's /profile route. *)
let profile ?label (Db _) f = Obs.Prof.profiled ?label f
let last_profile (Db _) = Obs.Prof.last_profile ()
let recent_profiles (Db _) = Obs.Prof.recent_profiles ()

let storage_report (Db { engine = (module E); state; pool; _ } as t) =
  Obs.with_span "db.storage_report" (fun () ->
      let part = E.storage_report state in
      let g = E.graph state in
      let ps = Buffer_pool.stats pool in
      let module R = Decibel_obs.Report in
      {
        R.r_scheme = E.scheme;
        r_format = part.R.e_format;
        r_dataset_bytes = E.dataset_bytes state;
        r_commit_meta_bytes = E.commit_meta_bytes state;
        r_branches = part.R.e_branches;
        r_segments = part.R.e_segments;
        r_columns = part.R.e_columns;
        r_history = part.R.e_history;
        r_graph =
          {
            R.g_versions = Vg.version_count g;
            g_branches = Vg.branch_count g;
            g_active_branches =
              List.length
                (List.filter (fun (b : Vg.branch) -> b.Vg.active)
                   (Vg.branches g));
            g_depth = Vg.depth g;
            g_max_fanout = Vg.max_fanout g;
          };
        r_pool =
          {
            R.p_page_size = Buffer_pool.page_size pool;
            p_capacity_pages = Buffer_pool.capacity_pages pool;
            p_resident_pages = Buffer_pool.resident_pages pool;
            p_hits = ps.Buffer_pool.hits;
            p_misses = ps.Buffer_pool.misses;
            p_evictions = ps.Buffer_pool.evictions;
            p_write_backs = ps.Buffer_pool.write_backs;
          };
        r_health =
          (match health t with
          | Healthy -> "healthy"
          | Degraded msg -> "degraded: " ^ msg);
        r_quarantined =
          List.map
            (fun (b, reason) -> (branch_name t b, reason))
            (quarantined t);
      })

(* ------------------------------------------------------------------ *)
(* Workload telemetry, storage advice and health.

   The workload table is process-wide; this database's slice is the
   entries whose table name matches its schema. *)

let workload (Db { engine = (module E); state; _ }) =
  let table = Schema.name (E.schema state) in
  List.filter
    (fun (s : Workload.stats) -> s.Workload.w_table = table)
    (Workload.snapshot ())

let advise ?thresholds t =
  Advisor.advise ?thresholds ~report:(storage_report t)
    ~workload:(workload t) ()

let watchdog_status (Db { watchdog; _ }) = Watchdog.status watchdog

(* One watchdog evaluation over fresh report/workload snapshots.  The
   tick itself is governor-budgeted: it takes a cheap admission slot
   and runs under a short deadline, so health probes cannot pile onto
   an already-overloaded server — if the governor refuses, the sticky
   status from the previous tick is returned unchanged. *)
let health_tick (Db d as t) =
  let run () =
    Watchdog.tick d.watchdog ~report:(storage_report t) ~workload:(workload t)
  in
  match d.governor with
  | None -> run ()
  | Some _ -> (
      let ctx = Governor.Ctx.create ~deadline_ms:250 () in
      try governed t ~ctx ~cls:Governor.Cheap [] run
      with
      | Governor.Cancelled | Governor.Deadline_exceeded
      | Governor.Budget_exceeded _
      | Governor.Overloaded _
      ->
        Watchdog.status d.watchdog)

(* ------------------------------------------------------------------ *)
(* Crash-safe background maintenance (the executor half; the policy
   half is the advisor, the mechanism half [Decibel_maint]).

   Protocol per task, all under the maintenance mutex:

     plan (pure)                      -- engine hook, None = nothing to do
     fingerprint before               -- logical content digest
     journal Begin                    -- intent, fsynced, tearable
     mp_apply                         -- build new files; in-memory swap
                                         is its last step; on exception
                                         it removed its partial files
     fingerprint after                -- mismatch: degrade, no commit
     flush                            -- engine manifest via Atomic_file:
                                         THE atomic commit point
     journal Apply
     mp_cleanup                       -- invalidate pool pages, unlink
                                         old files
     journal Done

   A crash anywhere leaves either the old state (manifest not yet
   written) or the new state (manifest written); [resolve_maintenance]
   finishes or rolls back the pending task from the journal on the
   next open.  Failpoints [maint.plan] / [maint.rewrite] (inside the
   engines' applies) / [maint.commit] / [maint.swap] /
   [maint.journal.append] let the torture harness kill at every
   transition. *)

type maint_result = {
  m_kind : string;
  m_target : string;
  m_reclaimed : int;  (** on-disk bytes freed (before - after, >= 0) *)
}

type maint_resolution = {
  mr_id : int;
  mr_kind : string;
  mr_target : string;
  mr_action : [ `Finished | `Rolled_back ];
  mr_removed : string list;
}

let kind_tag = function
  | Engine_intf.M_compact -> "compact"
  | Engine_intf.M_materialize -> "materialize"
  | Engine_intf.M_gc -> "gc"

let maint_kind_of_advisor = function
  | Advisor.Materialize | Advisor.Rechunk -> Engine_intf.M_materialize
  | Advisor.Compact -> Engine_intf.M_compact
  | Advisor.Gc -> Engine_intf.M_gc

(* Logical content digest: per active branch (by name, sorted), the
   sorted encoded live tuples.  Independent of physical layout, so it
   is preserved by any correct rewrite — the executor's guard against
   a maintenance bug silently corrupting data. *)
let fingerprint (Db { engine = (module E); state; _ }) =
  let buf = Buffer.create 4096 in
  let schema = E.schema state in
  let branches =
    List.sort
      (fun (a : Vg.branch) (b : Vg.branch) -> compare a.Vg.name b.Vg.name)
      (List.filter
         (fun (b : Vg.branch) -> b.Vg.active)
         (Vg.branches (E.graph state)))
  in
  List.iter
    (fun (br : Vg.branch) ->
      Buffer.add_string buf br.Vg.name;
      Buffer.add_char buf '\000';
      let rows = ref [] in
      E.scan state br.Vg.bid (fun tuple ->
          rows := Tuple.encode schema tuple :: !rows);
      List.iter
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\001')
        (List.sort compare !rows))
    branches;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let file_size dir name =
  try (Unix.stat (Filename.concat dir name)).Unix.st_size
  with Unix.Unix_error _ -> 0

let run_maintenance_locked (Db { engine = (module E); state; dir; _ } as t)
    ~kind ~target =
  match E.plan_maintenance state ~kind ~target with
  | None -> None
  | Some plan ->
      let target = plan.Engine_intf.mp_target in
      Maint.note_started ();
      let entry status =
        {
          Mjournal.e_id = Mjournal.next_id (Mjournal.load dir);
          e_status = status;
          e_kind = kind_tag kind;
          e_target = target;
          e_new = plan.Engine_intf.mp_new_files;
          e_old = plan.Engine_intf.mp_old_files;
        }
      in
      let protocol () =
        Decibel_fault.Failpoint.hit "maint.plan";
        let before = fingerprint t in
        let begun = entry Mjournal.Begin in
        Mjournal.append dir begun;
        let journal status =
          try Mjournal.append dir { begun with Mjournal.e_status = status }
          with _ -> ()
        in
        (try plan.Engine_intf.mp_apply ()
         with e ->
           (* the engine removed its partial new files and left the
              in-memory state untouched; the task is over *)
           journal Mjournal.Rolled_back;
           Maint.note_rolled_back ();
           raise e);
        if fingerprint t <> before then begin
          (* The swap is in memory only (no manifest written): disk
             still holds the old state, so the next open recovers it
             and rolls the journaled task back.  This process must not
             commit or serve writes on the bad state. *)
          degrade t "maintenance fingerprint mismatch";
          errorf "maintenance fingerprint mismatch on %s %s" (kind_tag kind)
            target
        end;
        Decibel_fault.Failpoint.hit "maint.commit";
        flush t;
        journal Mjournal.Apply;
        Decibel_fault.Failpoint.hit "maint.swap";
        plan.Engine_intf.mp_cleanup ();
        journal Mjournal.Done;
        let after =
          List.fold_left
            (fun acc f -> acc + file_size dir f)
            0 plan.Engine_intf.mp_new_files
        in
        let reclaimed = max 0 (plan.Engine_intf.mp_bytes_before - after) in
        Maint.note_reclaimed reclaimed;
        Maint.note_finished ~target ~ok:true;
        Some { m_kind = kind_tag kind; m_target = target; m_reclaimed = reclaimed }
      in
      (match protocol () with
      | r -> r
      | exception e ->
          Maint.note_finished ~target ~ok:false;
          raise e)

let run_maintenance (Db d as t) ~kind ~target =
  check_writable t;
  if format_version t < 2 then None
  else begin
    Mutex.lock d.maint_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock d.maint_mutex)
      (fun () -> run_maintenance_locked t ~kind ~target)
  end

(* One advisor-driven pass: plan and execute every current
   recommendation that maps to an engine task.  Recommendations made
   stale by an earlier task in the same pass plan to [None] and are
   skipped.  Exceptions propagate (the service loop counts and
   swallows them). *)
let maintenance_tick ?thresholds (Db d as t) =
  match d.health with
  | Degraded _ -> []
  | Healthy when format_version t < 2 -> []
  | Healthy ->
      List.filter_map
        (fun (r : Advisor.recommendation) ->
          run_maintenance t
            ~kind:(maint_kind_of_advisor r.Advisor.rc_kind)
            ~target:r.Advisor.rc_target)
        (advise ?thresholds t)

let start_maintenance ?interval_s ?thresholds (Db d as t) =
  match d.maint_service with
  | Some _ -> ()
  | None ->
      d.maint_service <-
        Some
          (Maint.Service.start ?interval_s (fun () ->
               ignore (maintenance_tick ?thresholds t)))

let stop_maintenance t = stop_maint_service t
let maintenance_running (Db d) =
  match d.maint_service with Some s -> Maint.Service.running s | None -> false

(* Finish or roll back maintenance the journal left pending.  Runs on
   a freshly reopened checkpoint, before WAL replay: a pending task
   committed iff its [Apply] entry was journaled or every file it
   created is referenced by the manifest state just loaded (the
   manifest write is atomic, so there is no in-between).  Committed:
   reclaim surviving old files and journal [Done].  Not committed:
   remove surviving new files (disk already holds the old state) and
   journal [Rolled_back].  Never removes a file the current manifest
   references.  [dry_run] reports what would happen without touching
   anything (fsck's check mode). *)
let resolve_maintenance ?(dry_run = false)
    (Db { engine = (module E); state; dir; _ }) =
  let entries = Mjournal.load dir in
  match Mjournal.pending entries with
  | [] ->
      (* every recorded task is terminal: the journal is history, not
         intent, and can be compacted away *)
      if (not dry_run) && entries <> [] then Mjournal.truncate dir;
      []
  | pending ->
      let referenced = E.referenced_files state in
      List.map
        (fun (id, es) ->
          let last = List.nth es (List.length es - 1) in
          let committed =
            List.exists (fun e -> e.Mjournal.e_status = Mjournal.Apply) es
            || (last.Mjournal.e_new <> []
               && List.for_all
                    (fun f -> List.mem f referenced)
                    last.Mjournal.e_new)
          in
          let doomed =
            if committed then last.Mjournal.e_old else last.Mjournal.e_new
          in
          let removed =
            List.filter
              (fun f ->
                (not (List.mem f referenced))
                && Sys.file_exists (Filename.concat dir f))
              doomed
          in
          if not dry_run then begin
            List.iter
              (fun f ->
                try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
              removed;
            (try
               Mjournal.append dir
                 {
                   last with
                   Mjournal.e_status =
                     (if committed then Mjournal.Done else Mjournal.Rolled_back);
                 }
             with _ -> ());
            if not committed then Maint.note_rolled_back ()
          end;
          {
            mr_id = id;
            mr_kind = last.Mjournal.e_kind;
            mr_target = last.Mjournal.e_target;
            mr_action = (if committed then `Finished else `Rolled_back);
            mr_removed = removed;
          })
        pending

let scan_list t b =
  let acc = ref [] in
  scan t b (fun tuple -> acc := tuple :: !acc);
  !acc

let scan_version_list t v =
  let acc = ref [] in
  scan_version t v (fun tuple -> acc := tuple :: !acc);
  !acc

let count t b =
  let n = ref 0 in
  scan t b (fun _ -> incr n);
  !n

(* Table-wise update (paper §5.5): rewrite every live record of the
   branch.  Each update copies the full record, so the dataset grows by
   about the branch's size and the branch's data ends up re-clustered
   at the end of storage. *)
let update_all t b f =
  let tuples = scan_list t b in
  List.iter (fun tuple -> update t b (f tuple)) tuples;
  List.length tuples

let heads t =
  List.filter_map
    (fun (b : Vg.branch) -> if b.Vg.active then Some b.Vg.bid else None)
    (Vg.branches (graph t))

(** {1 Sessions}

    A session captures a user's state: the commit or branch its
    operations read or modify (paper §2.2.3).  Write operations take an
    exclusive lock on the branch; reads take a shared lock; all locks
    are held until [end_transaction] (strict two-phase locking). *)

type session = {
  sid : int;
  db : t;
  mutable at : [ `Branch of branch_id | `Version of version_id ];
}

let new_session (Db d as t) =
  let sid = d.next_session in
  d.next_session <- sid + 1;
  { sid; db = t; at = `Branch Vg.master }

let locks_of (Db d) = d.locks

let session_checkout_branch s name = s.at <- `Branch (branch_named s.db name)

let session_checkout_version s vid =
  let _ = Vg.version (graph s.db) vid in
  s.at <- `Version vid

let current_branch s =
  match s.at with
  | `Branch b -> b
  | `Version _ -> errorf "session is at a version checkout; writes need a branch"

let lock s mode b =
  Lock_manager.acquire (locks_of s.db) ~owner:s.sid
    ~resource:(branch_name s.db b) mode

let session_insert s tuple =
  let b = current_branch s in
  lock s Lock_manager.Exclusive b;
  insert s.db b tuple

let session_update s tuple =
  let b = current_branch s in
  lock s Lock_manager.Exclusive b;
  update s.db b tuple

let session_delete s key =
  let b = current_branch s in
  lock s Lock_manager.Exclusive b;
  delete s.db b key

let session_scan s f =
  match s.at with
  | `Branch b ->
      lock s Lock_manager.Shared b;
      scan s.db b f
  | `Version v -> scan_version s.db v f

let session_commit s ~message =
  let b = current_branch s in
  lock s Lock_manager.Exclusive b;
  let vid = commit s.db b ~message in
  Lock_manager.release_all (locks_of s.db) ~owner:s.sid;
  vid

let end_transaction s =
  Lock_manager.release_all (locks_of s.db) ~owner:s.sid

(* ------------------------------------------------------------------ *)
(* Reopen with crash recovery.

   The engine reloads its last checkpoint (the manifest written by the
   most recent flush or close); any intact write-ahead-log tail beyond
   it is replayed through the ordinary operations and the result is
   checkpointed.  [durable] re-arms logging for subsequent operations
   (default: on, if the repository ever had a log). *)

let replay_entry t lsn (e : Wal.entry) =
  (try
     match e with
     | Wal.W_insert (b, tuple) -> insert t b tuple
     | Wal.W_update (b, tuple) -> update t b tuple
     | Wal.W_delete (b, key) -> delete t b key
     | Wal.W_commit (b, message) -> ignore (commit t b ~message)
     | Wal.W_branch (name, from) -> ignore (create_branch t ~name ~from)
     | Wal.W_merge (into, from, policy, message) ->
         ignore (merge t ~into ~from ~policy ~message)
     | Wal.W_retire b -> Vg.retire (graph t) b
   with Engine_error _ ->
     (* the log records attempted operations; one that failed when
        first executed fails identically here, and skipping it
        reproduces the original outcome *)
     Obs.incr c_replay_skipped);
  let (Db { engine = (module E); state; _ }) = t in
  E.set_wal_marker state lsn

let reopen ?pool ?scheme ?durable ?governor ~dir () =
  let t = reopen_checkpoint ?pool ?scheme ?governor ~dir () in
  (* finish or roll back interrupted maintenance before replaying the
     WAL: replay must run against a physically consistent store *)
  let _ = resolve_maintenance t in
  let had_log = Sys.file_exists (wal_path dir) in
  let durable = Option.value durable ~default:had_log in
  if had_log then begin
    (* replay the intact log tail past the checkpoint's marker: entries
       at or below it are already reflected in the manifest state, and
       replaying them would double-apply (the manifest write and the
       log truncation cannot be one atomic step, so recovery may see a
       fresh checkpoint together with a not-yet-truncated log) *)
    let marker = wal_marker t in
    let frames = Wal.read_frames ~path:(wal_path dir) (schema t) in
    List.iter (fun (lsn, e) -> if lsn > marker then replay_entry t lsn e) frames;
    (* the replayed state becomes the new checkpoint *)
    flush t
  end;
  let truncate_consumed_log () =
    let w = Wal.open_log ~path:(wal_path dir) () in
    Wal.reset w;
    Wal.close w
  in
  if durable then begin
    let (Db d) = t in
    let w =
      Wal.open_log ~start_lsn:(wal_marker t + 1) ~path:(wal_path dir) ()
    in
    Wal.reset w;
    d.wal <- Some w
  end
  else if had_log then truncate_consumed_log ();
  t
