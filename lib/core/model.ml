(** Reference model engine.

    Executable semantics for the versioning API: branch states are
    plain key→tuple maps, commits are whole-map snapshots, and merges
    run the shared {!Merge_driver} over brute-force change sets.  It is
    deliberately naive — no files, no bitmaps, no segments — so the
    property-based tests can check the three physical engines against
    it on arbitrary operation sequences.  Not part of the paper; it
    exists to make the reproduction trustworthy. *)

open Decibel_storage
open Types
module Vg = Decibel_graph.Version_graph

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type state = Tuple.t Vmap.t

type t = {
  schema : Schema.t;
  graph : Vg.t;
  mutable heads : state array; (* per branch working state *)
  mutable nheads : int;
  snapshots : (version_id, state) Hashtbl.t;
  mutable wal_marker : int;
}

let scheme = "model"

let create ~format:_ ~compress:_ ~dir:_ ~pool:_ ~schema =
  let snapshots = Hashtbl.create 64 in
  Hashtbl.replace snapshots Vg.root_version Vmap.empty;
  {
    schema;
    graph = Vg.create ();
    heads = Array.make 4 Vmap.empty;
    nheads = 1;
    snapshots;
    wal_marker = 0;
  }

let open_existing ~dir:_ ~pool:_ =
  errorf "model: the in-memory oracle does not persist"

let schema t = t.schema
let graph t = t.graph

let head_state t b =
  if b < 0 || b >= t.nheads then errorf "model: unknown branch %d" b;
  t.heads.(b)

let set_head t b st = t.heads.(b) <- st

let push_head t st =
  if t.nheads = Array.length t.heads then begin
    let a = Array.make (2 * t.nheads) Vmap.empty in
    Array.blit t.heads 0 a 0 t.nheads;
    t.heads <- a
  end;
  t.heads.(t.nheads) <- st;
  t.nheads <- t.nheads + 1;
  t.nheads - 1

let commit t b ~message =
  let vid = Vg.commit t.graph b ~message in
  Hashtbl.replace t.snapshots vid (head_state t b);
  vid

let snapshot t vid =
  match Hashtbl.find_opt t.snapshots vid with
  | Some st -> st
  | None -> errorf "model: version %d has no snapshot" vid

let create_branch t ~name ~from =
  let st = snapshot t from in
  let nb =
    try Vg.create_branch t.graph ~name ~from
    with Invalid_argument msg -> errorf "model: %s" msg
  in
  let slot = push_head t st in
  assert (slot = nb);
  nb

let validate t tuple =
  match Schema.validate t.schema tuple with
  | Ok () -> ()
  | Error msg -> errorf "model: %s" msg

module Obs = Decibel_obs.Obs
module Workload = Decibel_obs.Workload

(* Workload notes mirror the Prof sites, as in the physical engines:
   single-branch scans carry real counts, writes a per-op note. *)
let wl_table t = Schema.name t.schema
let wl_branch t b = (Vg.branch t.graph b).Vg.name

let wl_write t b =
  if Obs.enabled () then
    Workload.note_write ~table:(wl_table t) ~branch:(wl_branch t b) ()

let insert t b tuple =
  validate t tuple;
  let key = Tuple.pk t.schema tuple in
  if Vmap.mem key (head_state t b) then
    errorf "model: duplicate key %s in branch %d" (Value.to_string key) b;
  set_head t b (Vmap.add key tuple (head_state t b));
  wl_write t b

let update t b tuple =
  validate t tuple;
  let key = Tuple.pk t.schema tuple in
  if not (Vmap.mem key (head_state t b)) then
    errorf "model: update of absent key %s" (Value.to_string key);
  set_head t b (Vmap.add key tuple (head_state t b));
  wl_write t b

let delete t b key =
  if not (Vmap.mem key (head_state t b)) then
    errorf "model: delete of absent key %s" (Value.to_string key);
  set_head t b (Vmap.remove key (head_state t b));
  wl_write t b

let lookup t b key = Vmap.find_opt key (head_state t b)

(* The oracle's datasets are tiny; contexts are honored with one poll
   per emitted record so deadline/cancel tests can still exercise it. *)
let ctx_poll ctx =
  let poll = Decibel_governor.Governor.Ctx.poller ~stride:1 ctx in
  fun f x -> poll (); f x

(* Oracle ops still profile (one span + one batch-total counter add per
   operation) so model-vs-engine comparisons show up in profile trees,
   while the uninstrumented fast path stays allocation-free. *)
let scan ?ctx t b f =
  let run ?(count = fun g x -> g x) () =
    let f = ctx_poll ctx (count f) in
    Vmap.iter (fun _ tuple -> f tuple) (head_state t b)
  in
  if not (Obs.enabled ()) then run ()
  else
    Obs.with_span "model.scan" (fun () ->
        let n = ref 0 in
        run ~count:(fun g x -> incr n; g x) ();
        Obs.Prof.add Obs.Prof.Tuples_emitted !n;
        Workload.note_read ~table:(wl_table t) ~branch:(wl_branch t b)
          ~scanned:!n ~emitted:!n ~fragments:0 ())

(* No physical layout, so predicate pushdown degenerates to a row-wise
   filter — the executable semantics the columnar engines must match. *)
let scan_filtered ?ctx t b ~preds f =
  scan ?ctx t b (fun tuple ->
      if Col_pred.eval_tuple preds tuple then f tuple)

let scan_version ?ctx t vid f =
  let run ?(count = fun g x -> g x) () =
    let f = ctx_poll ctx (count f) in
    Vmap.iter (fun _ tuple -> f tuple) (snapshot t vid)
  in
  if not (Obs.enabled ()) then run ()
  else
    Obs.with_span "model.scan_version" (fun () ->
        let n = ref 0 in
        run ~count:(fun g x -> incr n; g x) ();
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

let multi_scan_impl ?ctx t branches f =
  let f = ctx_poll ctx f in
  (* group by record content: each distinct live tuple once, annotated
     with the branches holding exactly that state for its key *)
  let tbl : (Value.t * Tuple.t, branch_id list) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun b ->
      Vmap.iter
        (fun key tuple ->
          let k = (key, tuple) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
          Hashtbl.replace tbl k (b :: prev))
        (head_state t b))
    branches;
  Hashtbl.iter
    (fun (_, tuple) bs -> f { tuple; in_branches = List.sort compare bs })
    tbl

let multi_scan ?ctx t branches f =
  if not (Obs.enabled ()) then multi_scan_impl ?ctx t branches f
  else
    Obs.with_span "model.multi_scan" (fun () ->
        let n = ref 0 in
        multi_scan_impl ?ctx t branches (fun mt ->
            incr n;
            f mt);
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

let diff_impl ?ctx t a b ~pos ~neg =
  let pos = ctx_poll ctx pos and neg = ctx_poll ctx neg in
  let sa = head_state t a and sb = head_state t b in
  Vmap.iter
    (fun key tuple ->
      match Vmap.find_opt key sb with
      | Some other when Tuple.equal other tuple -> ()
      | _ -> pos tuple)
    sa;
  Vmap.iter
    (fun key tuple ->
      match Vmap.find_opt key sa with
      | Some other when Tuple.equal other tuple -> ()
      | _ -> neg tuple)
    sb

let diff ?ctx t a b ~pos ~neg =
  if not (Obs.enabled ()) then diff_impl ?ctx t a b ~pos ~neg
  else
    Obs.with_span "model.diff" (fun () ->
        let n = ref 0 in
        let count out tuple =
          incr n;
          out tuple
        in
        diff_impl ?ctx t a b ~pos:(count pos) ~neg:(count neg);
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

let changes_since t b base =
  let cur = head_state t b in
  let tbl : (Value.t, Merge_driver.side_change) Hashtbl.t =
    Hashtbl.create 64
  in
  Vmap.iter
    (fun key tuple ->
      match Vmap.find_opt key base with
      | Some old when Tuple.equal old tuple -> ()
      | old -> Hashtbl.replace tbl key { Merge_driver.state = Some tuple; base = old })
    cur;
  Vmap.iter
    (fun key tuple ->
      if not (Vmap.mem key cur) then
        Hashtbl.replace tbl key
          { Merge_driver.state = None; base = Some tuple })
    base;
  tbl

let merge_impl ?ctx t ~into ~from ~policy ~message =
  let check () =
    match ctx with
    | Some c -> Decibel_governor.Governor.Ctx.check c
    | None -> ()
  in
  let v_ours = Vg.head t.graph into and v_theirs = Vg.head t.graph from in
  let lca = Vg.lca t.graph v_ours v_theirs in
  let base = snapshot t lca in
  check ();
  let ours = changes_since t into base in
  let theirs = changes_since t from base in
  check ();
  let decisions, stats = Merge_driver.decide ~policy ~ours ~theirs in
  let st = ref (head_state t into) in
  List.iter
    (fun (d : Merge_driver.decision) ->
      match d.Merge_driver.changed_in with
      | `Ours -> ()
      | `Theirs | `Both -> (
          match d.Merge_driver.final with
          | None -> st := Vmap.remove d.Merge_driver.d_key !st
          | Some tuple -> st := Vmap.add d.Merge_driver.d_key tuple !st))
    decisions;
  set_head t into !st;
  let vid = Vg.merge_commit t.graph ~into ~theirs:v_theirs ~message in
  Hashtbl.replace t.snapshots vid !st;
  {
    merge_version = vid;
    conflicts = Merge_driver.conflicts_of decisions;
    keys_ours = stats.Merge_driver.n_ours;
    keys_theirs = stats.Merge_driver.n_theirs;
    keys_both = stats.Merge_driver.n_both;
  }

let merge ?ctx t ~into ~from ~policy ~message =
  if not (Obs.enabled ()) then merge_impl ?ctx t ~into ~from ~policy ~message
  else
    Obs.with_span "model.merge" (fun () ->
        merge_impl ?ctx t ~into ~from ~policy ~message)

(* in-memory maps: always the current format, nothing to rewrite *)
let format_version _ = 2
let migrate _ = ()
let dataset_bytes _ = 0
let commit_meta_bytes _ = 0

(* The oracle stores full states, so nothing is ever dead and there are
   no segments or delta chains to report. *)
let storage_report t =
  let module R = Decibel_obs.Report in
  let branches =
    List.map
      (fun (br : Vg.branch) ->
        {
          R.br_name = br.Vg.name;
          br_id = br.Vg.bid;
          br_head = br.Vg.head;
          br_active = br.Vg.active;
          br_live_tuples = Vmap.cardinal (head_state t br.Vg.bid);
          br_dead_tuples = 0;
          br_bitmap_bits = 0;
          br_density = 0.0;
          br_segments = 0;
          br_delta_chain = 0;
          br_delta_bytes = 0;
        })
      (Vg.branches t.graph)
  in
  {
    R.e_format = 2;
    e_branches = branches;
    e_segments = [];
    e_columns = [];
    e_history =
      { R.empty_history with h_commits = Hashtbl.length t.snapshots };
  }
let wal_marker t = t.wal_marker
let set_wal_marker t lsn = t.wal_marker <- lsn

(* purely in-memory: nothing to compact, no files to reference *)
let plan_maintenance _ ~kind:_ ~target:_ = None
let referenced_files _ = []

(* nothing on disk: always clean, and a crash loses everything *)
let verify _ = []
let crash _ = ()
let flush _ = ()
let close _ = ()
