(** Hybrid storage (paper §3.4).

    Records are clustered into per-branch segment files as in
    version-first, but liveness is tracked with bitmaps as in
    tuple-first: every segment carries a local bitmap index over its own
    rows, and a global branch–segment bitmap records which segments hold
    records live in each branch, letting scans skip irrelevant segments
    entirely and proceed in any order.

    Segments are {!Decibel_storage.Col_segment}s addressed by local row
    index (format v1 keeps the original byte-offset record heap behind
    the same row interface; format v2 stores columnar blocks).  The
    local bitmaps were always row-indexed, so branch scans hand them to
    {!Col_segment.scan} as selection vectors directly — in v2 that
    skips and filters whole blocks below decompression, the combination
    of §3.4's segment skipping with columnar execution.

    Head segments receive a branch's fresh modifications; when a branch
    is created from a clean head, the old head is frozen into an
    internal segment (its data no longer changes, only its bitmaps) and
    both branches get fresh head segments.  Commits snapshot, per
    segment the branch touches, the branch's local column into a
    compressed history — many small histories rather than tuple-first's
    single wide one, which is why hybrid's commit data is smaller and
    its checkouts faster (Table 2). *)

open Decibel_util
open Decibel_storage
open Decibel_index
open Types
module Vg = Decibel_graph.Version_graph
module Obs = Decibel_obs.Obs
module Workload = Decibel_obs.Workload
module Par = Decibel_par.Par
module Gctx = Decibel_governor.Governor.Ctx

(* Per-domain bitmap scratch: each parallel segment worker (and the
   serial caller) reuses one vector across segments via the in-place
   Bitvec kernels, so the hot loops allocate no fresh bitmaps. *)
let scratch_key = Domain.DLS.new_key (fun () -> Bitvec.create ())
let scratch () = Domain.DLS.get scratch_key

(* same engine.* names as the other schemes: Obs interns by name, so
   all engines feed the shared counters *)
let c_scan_tuples = Obs.counter "engine.scan.tuples"
let c_scan_pages = Obs.counter "engine.scan.pages"
let c_scan_segments = Obs.counter "engine.scan.segments"
let c_scan_bitmap_words = Obs.counter "engine.scan.bitmap_words"
let c_multi_scan_tuples = Obs.counter "engine.multi_scan.tuples"
let c_diff_tuples = Obs.counter "engine.diff.tuples"
let c_commits = Obs.counter "engine.commits"
let c_merges = Obs.counter "engine.merges"
let sp_scan = "hybrid.scan"
let sp_scan_filtered = "hybrid.scan_filtered"
let sp_scan_version = "hybrid.scan_version"
let sp_multi_scan = "hybrid.multi_scan"
let sp_diff = "hybrid.diff"
let sp_merge = "hybrid.merge"
let sp_commit = "hybrid.commit"

let bitmap_words col = (Bitvec.length col + 63) / 64

type seg = {
  seg_id : int;
  seg : Col_segment.t;
  local : Branch_bitmap.t; (* columns indexed by global branch id *)
}

type t = {
  dir : string;
  pool : Buffer_pool.t;
  schema : Schema.t;
  compress : bool;
  mutable format : int; (* segment layout version; migrate flips to 2 *)
  graph : Vg.t;
  segments : seg Vec.t;
  head_seg : int Vec.t; (* branch -> head segment id *)
  seg_index : Branch_bitmap.t; (* branch column over segment-id rows *)
  pk : (int * int) Pk_index.t; (* branch -> key -> (segment, local row) *)
  histories : (int * int, Commit_history.t) Hashtbl.t; (* (branch, seg) *)
  hist_segs : (branch_id, int list ref) Hashtbl.t;
      (* segments having a history for the branch, in creation order *)
  commit_loc : (version_id, branch_id * (int * int) list) Hashtbl.t;
      (* version -> (branch, [(segment, history index)]) *)
  dirty : (branch_id, bool) Hashtbl.t;
  mutable wal_marker : int; (* last WAL LSN reflected here *)
  mutable closed : bool;
}

let scheme = "hybrid"

(* Format-v1 record wire format, as in the original layout: [u8 tag]
   with tag 0 a raw tuple body and tag 1 LZ77-compressed (§5.5
   mitigation).  Hybrid has no tombstone records — deletion only clears
   liveness bits. *)
let v1_codec ~schema ~compress =
  let encode = function
    | Col_segment.Live tuple ->
        let buf = Buffer.create 64 in
        if compress then begin
          Binio.write_u8 buf 1;
          Buffer.add_string buf (Lz77.compress (Tuple.encode schema tuple))
        end
        else begin
          Binio.write_u8 buf 0;
          Tuple.encode_into schema buf tuple
        end;
        Buffer.contents buf
    | Col_segment.Tombstone _ ->
        raise (Binio.Corrupt "hybrid: tombstone in record stream")
  in
  let decode payload =
    Obs.Prof.add Obs.Prof.Bytes_decoded (String.length payload);
    let pos = ref 0 in
    match Binio.read_u8 payload pos with
    | 0 -> Col_segment.Live (Tuple.decode schema payload pos)
    | 1 ->
        let raw =
          Lz77.decompress (String.sub payload 1 (String.length payload - 1))
        in
        Col_segment.Live (Tuple.decode schema raw (ref 0))
    | k -> raise (Binio.Corrupt (Printf.sprintf "hybrid: record tag %d" k))
  in
  { Col_segment.v1_encode = encode; v1_decode = decode }

let segment t id = Vec.get t.segments id

let seg_dummy =
  {
    seg_id = -1;
    seg = Obj.magic `never_dereferenced;
    local = Branch_bitmap.create ();
  }

let seg_file_path dir seg_id =
  Filename.concat dir (Printf.sprintf "seg_%d.dat" seg_id)

let new_segment t =
  let seg_id = Vec.length t.segments in
  let path = seg_file_path t.dir seg_id in
  let seg =
    if t.format >= 2 then
      Col_segment.create_v2 ~pool:t.pool ~schema:t.schema ~compress:t.compress
        ~path
    else
      Col_segment.create_v1 ~pool:t.pool ~schema:t.schema ~compress:t.compress
        ~codec:(v1_codec ~schema:t.schema ~compress:t.compress) ~path
  in
  let s = { seg_id; seg; local = Branch_bitmap.create () } in
  let _ = Vec.push t.segments s in
  s

(* Local bitmaps and the global index allocate branch columns lazily so
   a segment only pays for branches that actually reach it. *)
let ensure_branch bm b =
  while Branch_bitmap.branch_count bm <= b do
    let _ = Branch_bitmap.add_branch bm ~from:None in
    ()
  done

let create ~format ~compress ~dir ~pool ~schema =
  if format <> 1 && format <> 2 then
    errorf "hybrid: unknown segment format v%d" format;
  Fsutil.mkdir_p dir;
  let t =
    {
      dir;
      pool;
      schema;
      compress;
      format;
      graph = Vg.create ();
      (* dummy never dereferenced; fills unused Vec capacity *)
      segments = Vec.create ~dummy:seg_dummy ();
      head_seg = Vec.create ~dummy:(-1) ();
      seg_index = Branch_bitmap.create ();
      pk = Pk_index.create ();
      histories = Hashtbl.create 64;
      hist_segs = Hashtbl.create 16;
      commit_loc = Hashtbl.create 64;
      dirty = Hashtbl.create 16;
      wal_marker = 0;
      closed = false;
    }
  in
  let s0 = new_segment t in
  let _ = Vec.push t.head_seg s0.seg_id in
  let _ = Pk_index.add_branch t.pk ~from:None in
  ensure_branch t.seg_index 0;
  Hashtbl.replace t.commit_loc Vg.root_version (Vg.master, []);
  t

let schema t = t.schema
let graph t = t.graph
let format_version t = t.format

let is_dirty t b = Hashtbl.find_opt t.dirty b = Some true
let set_dirty t b v = Hashtbl.replace t.dirty b v

let history t b sid =
  match Hashtbl.find_opt t.histories (b, sid) with
  | Some h -> h
  | None ->
      let path =
        Filename.concat t.dir (Printf.sprintf "hist_b%d_s%d.chx" b sid)
      in
      let h =
        if Sys.file_exists path then Commit_history.open_existing ~path
        else Commit_history.create ~path
      in
      Hashtbl.replace t.histories (b, sid) h;
      let l =
        match Hashtbl.find_opt t.hist_segs b with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace t.hist_segs b l;
            l
      in
      l := sid :: !l;
      h

let tuple_at t sid row = Col_segment.get_tuple (segment t sid).seg row
let key_at t sid row = Tuple.pk t.schema (tuple_at t sid row)

(* Segments holding live records of a branch, per the global
   branch–segment bitmap. *)
let segs_of_branch t b =
  if b >= Branch_bitmap.branch_count t.seg_index then []
  else Bitvec.to_list (Branch_bitmap.column_view t.seg_index ~branch:b)

let local_col t b sid =
  let s = segment t sid in
  if b >= Branch_bitmap.branch_count s.local then Bitvec.create ()
  else Branch_bitmap.column_view s.local ~branch:b

let set_live t b sid row =
  let s = segment t sid in
  ensure_branch s.local b;
  Branch_bitmap.set s.local ~branch:b ~row;
  ensure_branch t.seg_index b;
  Branch_bitmap.set t.seg_index ~branch:b ~row:sid

let clear_live t b sid row =
  let s = segment t sid in
  ensure_branch s.local b;
  Branch_bitmap.clear s.local ~branch:b ~row;
  (* keep the branch–segment bitmap exact: drop the segment when the
     branch's last record there dies (§3.4 "at least one record alive") *)
  if Bitvec.is_empty (Branch_bitmap.column_view s.local ~branch:b) then begin
    ensure_branch t.seg_index b;
    Branch_bitmap.clear t.seg_index ~branch:b ~row:sid
  end

(* Workload accounting mirrors the Prof sites: the single-branch scan
   reports summed per-segment counts — the same figures added to the
   engine.* counters, so per-branch totals reconcile with the globals;
   multi-branch reads leave zero-count touches. *)
let wl_table t = Schema.name t.schema
let wl_branch t b = (Vg.branch t.graph b).Vg.name

let wl_touch t b =
  Workload.note_read ~table:(wl_table t) ~branch:(wl_branch t b) ~scanned:0
    ~emitted:0 ~fragments:0 ()

let wl_write t b =
  if Obs.enabled () then
    Workload.note_write ~table:(wl_table t) ~branch:(wl_branch t b) ()

let commit_impl t b ~message =
  (* snapshot every segment the branch has ever had a history for plus
     any it now touches, so deletions round-trip through checkout *)
  let touched : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace touched s ()) (segs_of_branch t b);
  (match Hashtbl.find_opt t.hist_segs b with
  | Some l -> List.iter (fun s -> Hashtbl.replace touched s ()) !l
  | None -> ());
  let snaps =
    Hashtbl.fold
      (fun sid () acc ->
        let col = Bitvec.copy (local_col t b sid) in
        let idx = Commit_history.commit (history t b sid) col in
        (sid, idx) :: acc)
      touched []
  in
  let vid = Vg.commit t.graph b ~message in
  Hashtbl.replace t.commit_loc vid (b, snaps);
  set_dirty t b false;
  vid

let commit t b ~message =
  if not (Obs.enabled ()) then commit_impl t b ~message
  else
    Obs.with_span sp_commit (fun () ->
        Obs.incr c_commits;
        wl_write t b;
        commit_impl t b ~message)

let commit_cols t vid =
  match Hashtbl.find_opt t.commit_loc vid with
  | None -> errorf "hybrid: version %d has no snapshot" vid
  | Some (b, snaps) ->
      List.map (fun (sid, idx) ->
          (sid, Commit_history.checkout (history t b sid) idx))
        snaps

let create_branch t ~name ~from =
  let v = Vg.version t.graph from in
  let parent = v.Vg.on_branch in
  let nb =
    try Vg.create_branch t.graph ~name ~from
    with Invalid_argument msg -> errorf "hybrid: %s" msg
  in
  if Vg.head t.graph parent = from && not (is_dirty t parent) then begin
    (* clean-head branch: freeze the parent's head segment (it becomes
       internal, holding records of both branches) and give both
       branches fresh head segments (§3.4 Branch) *)
    List.iter
      (fun sid ->
        let s = segment t sid in
        ensure_branch s.local nb;
        Branch_bitmap.overwrite_column s.local ~branch:nb
          (local_col t parent sid);
        ensure_branch t.seg_index nb;
        if not (Bitvec.is_empty (local_col t nb sid)) then
          Branch_bitmap.set t.seg_index ~branch:nb ~row:sid)
      (segs_of_branch t parent);
    ensure_branch t.seg_index nb;
    let parent_head = new_segment t in
    Vec.set t.head_seg parent parent_head.seg_id;
    let child_head = new_segment t in
    let slot = Vec.push t.head_seg child_head.seg_id in
    assert (slot = nb);
    let bid = Pk_index.add_branch t.pk ~from:(Some parent) in
    assert (bid = nb)
  end
  else begin
    (* branch from a historical commit: restore each covered segment's
       column from its history and rebuild the key index *)
    let bid = Pk_index.add_branch t.pk ~from:None in
    assert (bid = nb);
    ensure_branch t.seg_index nb;
    List.iter
      (fun (sid, col) ->
        let s = segment t sid in
        ensure_branch s.local nb;
        Branch_bitmap.overwrite_column s.local ~branch:nb col;
        if not (Bitvec.is_empty col) then
          Branch_bitmap.set t.seg_index ~branch:nb ~row:sid;
        Bitvec.iter_set
          (fun row ->
            Pk_index.set t.pk ~branch:nb (key_at t sid row) (sid, row))
          col)
      (commit_cols t from);
    let child_head = new_segment t in
    let slot = Vec.push t.head_seg child_head.seg_id in
    assert (slot = nb)
  end;
  set_dirty t nb false;
  nb

let validate t tuple =
  match Schema.validate t.schema tuple with
  | Ok () -> ()
  | Error msg -> errorf "hybrid: %s" msg

let append_record t b tuple =
  let sid = Vec.get t.head_seg b in
  let row = Col_segment.append (segment t sid).seg (Col_segment.Live tuple) in
  (sid, row)

let insert t b tuple =
  validate t tuple;
  let key = Tuple.pk t.schema tuple in
  if Pk_index.mem t.pk ~branch:b key then
    errorf "hybrid: duplicate key %s in branch %d" (Value.to_string key) b;
  let sid, row = append_record t b tuple in
  set_live t b sid row;
  Pk_index.set t.pk ~branch:b key (sid, row);
  set_dirty t b true;
  wl_write t b

let update t b tuple =
  validate t tuple;
  let key = Tuple.pk t.schema tuple in
  match Pk_index.find t.pk ~branch:b key with
  | None -> errorf "hybrid: update of absent key %s" (Value.to_string key)
  | Some (old_sid, old_row) ->
      clear_live t b old_sid old_row;
      let sid, row = append_record t b tuple in
      set_live t b sid row;
      Pk_index.set t.pk ~branch:b key (sid, row);
      set_dirty t b true;
      wl_write t b

let delete t b key =
  match Pk_index.find t.pk ~branch:b key with
  | None -> errorf "hybrid: delete of absent key %s" (Value.to_string key)
  | Some (sid, row) ->
      clear_live t b sid row;
      Pk_index.remove t.pk ~branch:b key;
      set_dirty t b true;
      wl_write t b

let lookup t b key =
  Option.map
    (fun (sid, row) -> tuple_at t sid row)
    (Pk_index.find t.pk ~branch:b key)

(* The local column goes straight down as the segment scan's selection
   vector: in v2 the block skip + batch predicate machinery runs below
   decompression, in v1 it degenerates to the old bit-test-per-row
   walk. *)
let scan_segment_col ?preds t sid col f =
  Col_segment.scan ~sel:col ?preds (segment t sid).seg (fun _row tuple ->
      f tuple)

(* One segment's worth of accounting, charged per segment (not per
   tuple) so instrumentation stays amortized: the segment scan walks
   the whole extent page by page, and the live-tuple count is the
   bitmap's population count, so the scan itself runs uninstrumented. *)
let account_segment t sid col =
  Obs.incr c_scan_segments;
  Obs.Prof.incr Obs.Prof.Delta_fragments;
  Obs.add c_scan_pages (Col_segment.page_count (segment t sid).seg);
  Obs.add c_scan_bitmap_words (bitmap_words col);
  Obs.Prof.add Obs.Prof.Bitmap_words (bitmap_words col);
  let live = Bitvec.pop_count col in
  Obs.add c_scan_tuples live;
  Obs.Prof.add Obs.Prof.Tuples_scanned live;
  Obs.Prof.add Obs.Prof.Tuples_emitted live

(* Segment-parallel scan over (segment, column) pairs: pool workers
   decode their segments into buffered tuple lists against the
   read-only heap snapshot; buffers are consumed in list order, so the
   tuple stream is byte-identical to the serial loop.  With the pool
   off (or a single segment) this is the plain serial loop with no
   buffering. *)
let scan_cols ?ctx ?preds t cols f =
  match cols with
  | [] -> ()
  | _ when Par.available () && List.length cols > 1 ->
      let cols = Array.of_list cols in
      Par.parallel_iter_buffered ?ctx ~n:(Array.length cols)
        ~produce:(fun i ->
          let poll = Gctx.poller ctx in
          let sid, col = cols.(i) in
          let acc = ref [] in
          scan_segment_col ?preds t sid col (fun tu ->
              poll ();
              acc := tu :: !acc);
          List.rev !acc)
        ~consume:(fun tuples -> List.iter f tuples)
        ()
  | _ ->
      let poll = Gctx.poller ctx in
      List.iter
        (fun (sid, col) ->
          scan_segment_col ?preds t sid col (fun tu ->
              poll ();
              f tu))
        cols

(* Single-branch scan: only segments flagged in the branch–segment
   bitmap are read, in any order (§3.4 “Single-branch Scan”). *)
let scan ?ctx t b f =
  let cols =
    List.map (fun sid -> (sid, local_col t b sid)) (segs_of_branch t b)
  in
  if not (Obs.enabled ()) then scan_cols ?ctx t cols f
  else
    let table = wl_table t and branch = wl_branch t b in
    (* ambient context attributes buffer-pool page traffic during the
       segment walk to this (table, branch) *)
    Workload.with_context ~table ~branch (fun () ->
        Obs.with_span sp_scan (fun () ->
            List.iter (fun (sid, col) -> account_segment t sid col) cols;
            let live =
              List.fold_left
                (fun acc (_, col) -> acc + Bitvec.pop_count col)
                0 cols
            in
            Workload.note_read ~table ~branch ~scanned:live ~emitted:live
              ~fragments:(List.length cols) ();
            scan_cols ?ctx t cols f))

(* Predicate pushdown composes with segment skipping: the branch's
   local columns select, the predicates filter on decoded batches (or
   dictionary codes) inside each surviving block. *)
let scan_filtered ?ctx t b ~preds f =
  let cols =
    List.map (fun sid -> (sid, local_col t b sid)) (segs_of_branch t b)
  in
  if not (Obs.enabled ()) then scan_cols ?ctx ~preds t cols f
  else
    let table = wl_table t and branch = wl_branch t b in
    Workload.with_context ~table ~branch (fun () ->
        Obs.with_span sp_scan_filtered (fun () ->
            let scanned = ref 0 in
            List.iter
              (fun (sid, col) ->
                Obs.incr c_scan_segments;
                Obs.Prof.incr Obs.Prof.Delta_fragments;
                Obs.add c_scan_pages
                  (Col_segment.page_count (segment t sid).seg);
                Obs.add c_scan_bitmap_words (bitmap_words col);
                Obs.Prof.add Obs.Prof.Bitmap_words (bitmap_words col);
                scanned := !scanned + Bitvec.pop_count col)
              cols;
            let n = ref 0 in
            scan_cols ?ctx ~preds t cols (fun tu ->
                incr n;
                f tu);
            Obs.add c_scan_tuples !n;
            Obs.Prof.add Obs.Prof.Tuples_scanned !scanned;
            Obs.Prof.add Obs.Prof.Tuples_emitted !n;
            Workload.note_read ~table ~branch ~scanned:!scanned ~emitted:!n
              ~fragments:(List.length cols) ()))

let scan_version ?ctx t vid f =
  let cols = commit_cols t vid in
  if not (Obs.enabled ()) then scan_cols ?ctx t cols f
  else
    Obs.with_span sp_scan_version (fun () ->
        List.iter (fun (sid, col) -> account_segment t sid col) cols;
        scan_cols ?ctx t cols f)

let multi_scan_impl ?ctx t branches f =
  let seg_set : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b -> List.iter (fun s -> Hashtbl.replace seg_set s ()) (segs_of_branch t b))
    branches;
  let segs =
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun s () a -> s :: a) seg_set []))
  in
  (* Union the branch columns into the per-domain scratch (in place, no
     allocation per segment per branch) and decode only live rows,
     annotating each with its branches.  Rows ascend within a segment
     and segments are consumed in sorted order, so output order matches
     the serial record walk. *)
  let annotated_of_segment sid =
    match List.map (fun b -> (b, local_col t b sid)) branches with
    | [] -> []
    | ((_, c0) :: rest) as cols ->
        let poll = Gctx.poller ctx in
        let any = scratch () in
        Bitvec.copy_into ~src:c0 ~dst:any;
        List.iter (fun (_, c) -> Bitvec.union_in_place any c) rest;
        (* bitmap scratch is a transient allocation; bill it to the
           operation's byte budget *)
        Gctx.charge_current ((Bitvec.length any + 7) lsr 3);
        let acc = ref [] in
        Col_segment.scan ~sel:any (segment t sid).seg (fun row tuple ->
            poll ();
            let live =
              List.filter_map
                (fun (b, col) -> if Bitvec.get col row then Some b else None)
                cols
            in
            acc := { tuple; in_branches = live } :: !acc);
        List.rev !acc
  in
  if Par.available () && Array.length segs > 1 then
    Par.parallel_iter_buffered ?ctx ~n:(Array.length segs)
      ~produce:(fun i -> annotated_of_segment segs.(i))
      ~consume:(fun l -> List.iter f l)
      ()
  else Array.iter (fun sid -> List.iter f (annotated_of_segment sid)) segs

let multi_scan ?ctx t branches f =
  if not (Obs.enabled ()) then multi_scan_impl ?ctx t branches f
  else
    Obs.with_span sp_multi_scan (fun () ->
        List.iter (wl_touch t) branches;
        let n = ref 0 in
        multi_scan_impl ?ctx t branches (fun mt ->
            n := !n + 1;
            f mt);
        Obs.add c_multi_scan_tuples !n;
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

let diff_impl ?ctx t a b ~pos ~neg =
  let seg_set : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace seg_set s ()) (segs_of_branch t a);
  List.iter (fun s -> Hashtbl.replace seg_set s ()) (segs_of_branch t b);
  (* sorted so output is deterministic and parallel == serial *)
  let segs =
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) seg_set []))
  in
  let collect sid =
    let poll = Gctx.poller ctx in
    let ca = local_col t a sid and cb = local_col t b sid in
    let sym = scratch () in
    Bitvec.copy_into ~src:ca ~dst:sym;
    Bitvec.xor_in_place sym cb;
    Gctx.charge_current ((Bitvec.length sym + 7) lsr 3);
    let acc = ref [] in
    (* every symmetric-difference row is live in exactly one branch;
       the selection-driven scan decodes each exactly once *)
    Col_segment.scan ~sel:sym (segment t sid).seg (fun row tuple ->
        poll ();
        let side = Bitvec.get ca row in
        let other = if side then b else a in
        let key = Tuple.pk t.schema tuple in
        let same =
          match lookup t other key with
          | Some other_t -> Tuple.equal tuple other_t
          | None -> false
        in
        if not same then acc := (side, tuple) :: !acc);
    List.rev !acc
  in
  let consume l =
    List.iter (fun (side, tu) -> if side then pos tu else neg tu) l
  in
  if Par.available () && Array.length segs > 1 then
    Par.parallel_iter_buffered ?ctx ~n:(Array.length segs)
      ~produce:(fun i -> collect segs.(i))
      ~consume ()
  else Array.iter (fun sid -> consume (collect sid)) segs

let diff ?ctx t a b ~pos ~neg =
  if not (Obs.enabled ()) then diff_impl ?ctx t a b ~pos ~neg
  else
    Obs.with_span sp_diff (fun () ->
        wl_touch t a;
        wl_touch t b;
        let n = ref 0 in
        let count out tuple =
          n := !n + 1;
          out tuple
        in
        diff_impl ?ctx t a b ~pos:(count pos) ~neg:(count neg);
        Obs.add c_diff_tuples !n;
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

(* Change tables for merge: per segment, XOR the branch's current
   column against the LCA's restored column; set-minus directions give
   new live copies and overwritten/deleted LCA copies (§3.4 Merge). *)
let changes_since t b lca_cols =
  let tbl : (Value.t, Merge_driver.side_change) Hashtbl.t =
    Hashtbl.create 256
  in
  let lca_map : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (sid, col) -> Hashtbl.replace lca_map sid col) lca_cols;
  let seg_set : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace seg_set s ()) (segs_of_branch t b);
  List.iter (fun (sid, _) -> Hashtbl.replace seg_set sid ()) lca_cols;
  let no_col = Bitvec.create () in
  let d = scratch () in
  Hashtbl.iter
    (fun sid () ->
      let col = local_col t b sid in
      let col_lca =
        Option.value ~default:no_col (Hashtbl.find_opt lca_map sid)
      in
      Bitvec.copy_into ~src:col ~dst:d;
      Bitvec.diff_in_place d col_lca;
      Bitvec.iter_set
        (fun row ->
          let tuple = tuple_at t sid row in
          Hashtbl.replace tbl (Tuple.pk t.schema tuple)
            { Merge_driver.state = Some tuple; base = None })
        d)
    seg_set;
  Hashtbl.iter
    (fun sid () ->
      let col = local_col t b sid in
      let col_lca =
        Option.value ~default:no_col (Hashtbl.find_opt lca_map sid)
      in
      Bitvec.copy_into ~src:col_lca ~dst:d;
      Bitvec.diff_in_place d col;
      Bitvec.iter_set
        (fun row ->
          let tuple = tuple_at t sid row in
          let key = Tuple.pk t.schema tuple in
          match Hashtbl.find_opt tbl key with
          | Some c -> Hashtbl.replace tbl key { c with base = Some tuple }
          | None ->
              Hashtbl.replace tbl key
                { Merge_driver.state = None; base = Some tuple })
        d)
    seg_set;
  (* changes are by content: a key updated back to its LCA value via a
     fresh physical row is not a change *)
  Hashtbl.filter_map_inplace
    (fun _key (c : Merge_driver.side_change) ->
      if Merge_driver.opt_tuple_equal c.state c.base then None else Some c)
    tbl;
  tbl

let merge_impl ?ctx t ~into ~from ~policy ~message =
  (* the read phase (change collection) polls the context; once
     decisions start installing the merge runs to completion so a
     deadline can never leave a half-applied merge behind *)
  let check () = match ctx with Some c -> Gctx.check c | None -> () in
  let v_ours = Vg.head t.graph into and v_theirs = Vg.head t.graph from in
  let lca = Vg.lca t.graph v_ours v_theirs in
  let lca_cols = commit_cols t lca in
  check ();
  let ours = changes_since t into lca_cols in
  check ();
  let theirs = changes_since t from lca_cols in
  check ();
  let decisions, stats = Merge_driver.decide ~policy ~ours ~theirs in
  check ();
  List.iter
    (fun (d : Merge_driver.decision) ->
      let key = d.Merge_driver.d_key in
      let install_state final =
        let current = Pk_index.find t.pk ~branch:into key in
        match final with
        | None ->
            Option.iter
              (fun (sid, row) ->
                clear_live t into sid row;
                Pk_index.remove t.pk ~branch:into key)
              current
        | Some tuple ->
            let target =
              match d.Merge_driver.origin with
              | Merge_driver.O_theirs -> Pk_index.find t.pk ~branch:from key
              | Merge_driver.O_merged | Merge_driver.O_ours -> None
            in
            let sid, row =
              match target with
              | Some loc -> loc
              | None -> append_record t into tuple
            in
            Option.iter
              (fun (osid, orow) ->
                if (osid, orow) <> (sid, row) then clear_live t into osid orow)
              current;
            set_live t into sid row;
            Pk_index.set t.pk ~branch:into key (sid, row)
      in
      match d.Merge_driver.changed_in, d.Merge_driver.origin with
      | `Ours, _ -> ()
      | _, Merge_driver.O_ours -> ()
      | (`Theirs | `Both), _ -> install_state d.Merge_driver.final)
    decisions;
  let vid = Vg.merge_commit t.graph ~into ~theirs:v_theirs ~message in
  (* snapshot the merged state, like any commit *)
  let touched : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace touched s ()) (segs_of_branch t into);
  (match Hashtbl.find_opt t.hist_segs into with
  | Some l -> List.iter (fun s -> Hashtbl.replace touched s ()) !l
  | None -> ());
  let snaps =
    Hashtbl.fold
      (fun sid () acc ->
        let col = Bitvec.copy (local_col t into sid) in
        let idx = Commit_history.commit (history t into sid) col in
        (sid, idx) :: acc)
      touched []
  in
  Hashtbl.replace t.commit_loc vid (into, snaps);
  set_dirty t into false;
  {
    merge_version = vid;
    conflicts = Merge_driver.conflicts_of decisions;
    keys_ours = stats.Merge_driver.n_ours;
    keys_theirs = stats.Merge_driver.n_theirs;
    keys_both = stats.Merge_driver.n_both;
  }

let merge ?ctx t ~into ~from ~policy ~message =
  if not (Obs.enabled ()) then merge_impl ?ctx t ~into ~from ~policy ~message
  else
    Obs.with_span sp_merge (fun () ->
        Obs.incr c_merges;
        merge_impl ?ctx t ~into ~from ~policy ~message)

let dataset_bytes t =
  let acc = ref 0 in
  Vec.iter (fun s -> acc := !acc + Col_segment.byte_size s.seg) t.segments;
  !acc

let commit_meta_bytes t =
  (* count the persisted history files, including ones not yet lazily
     (re)opened in this process *)
  Array.fold_left
    (fun acc name ->
      if String.length name > 5 && String.sub name 0 5 = "hist_" then
        acc + (Unix.stat (Filename.concat t.dir name)).Unix.st_size
      else acc)
    0 (Sys.readdir t.dir)

let storage_report t =
  let module R = Decibel_obs.Report in
  let branches =
    List.map
      (fun (br : Vg.branch) ->
        let b = br.Vg.bid in
        let segs = segs_of_branch t b in
        (* liveness bits allocated for the branch span its segments'
           local rows; live bits are the set ones among them *)
        let live, bits =
          List.fold_left
            (fun (live, bits) sid ->
              ( live + Bitvec.pop_count (local_col t b sid),
                bits + Col_segment.rows (segment t sid).seg ))
            (0, 0) segs
        in
        let chain, dbytes =
          match Hashtbl.find_opt t.commit_loc br.Vg.head with
          | Some (hb, snaps) ->
              List.fold_left
                (fun (chain, dbytes) (sid, idx) ->
                  let h = history t hb sid in
                  ( max chain (Commit_history.replay_length h idx),
                    dbytes + Commit_history.disk_bytes h ))
                (0, 0) snaps
          | None -> (0, 0)
        in
        {
          R.br_name = br.Vg.name;
          br_id = b;
          br_head = br.Vg.head;
          br_active = br.Vg.active;
          br_live_tuples = live;
          br_dead_tuples = bits - live;
          br_bitmap_bits = bits;
          br_density = R.density ~live ~bits;
          br_segments = List.length segs;
          br_delta_chain = chain;
          br_delta_bytes = dbytes;
        })
      (Vg.branches t.graph)
  in
  let active = List.filter (fun (br : Vg.branch) -> br.Vg.active)
      (Vg.branches t.graph)
  in
  let segments =
    List.init (Vec.length t.segments) (fun sid ->
        let s = segment t sid in
        let records = Col_segment.rows s.seg in
        let any_live = Bitvec.create ~capacity:(max 1 records) () in
        List.iter
          (fun (br : Vg.branch) ->
            Bitvec.union_in_place any_live (local_col t br.Vg.bid sid))
          active;
        let live = Bitvec.pop_count any_live in
        {
          R.sg_id = sid;
          sg_file = Filename.basename (Col_segment.path s.seg);
          sg_bytes = Col_segment.byte_size s.seg;
          sg_pages = Col_segment.page_count s.seg;
          sg_records = records;
          sg_live_records = live;
          sg_fragmentation = R.fragmentation ~live ~records;
        })
  in
  let chains =
    Hashtbl.fold
      (fun _ (b, snaps) acc ->
        List.fold_left
          (fun chain (sid, idx) ->
            max chain (Commit_history.replay_length (history t b sid) idx))
          0 snaps
        :: acc)
      t.commit_loc []
  in
  let max_chain, mean_chain = R.chain_stats chains in
  let h_files, h_bytes =
    Array.fold_left
      (fun (n, bytes) name ->
        if String.length name > 5 && String.sub name 0 5 = "hist_" then
          (n + 1, bytes + (Unix.stat (Filename.concat t.dir name)).Unix.st_size)
        else (n, bytes))
      (0, 0) (Sys.readdir t.dir)
  in
  let columns =
    let reports = ref [] in
    Vec.iter
      (fun s -> reports := Col_segment.column_report s.seg :: !reports)
      t.segments;
    List.map
      (fun (c : Col_segment.col_report) ->
        {
          R.co_name = c.Col_segment.cr_name;
          co_encoding = c.cr_encoding;
          co_raw_bytes = c.cr_raw_bytes;
          co_enc_bytes = c.cr_enc_bytes;
        })
      (Array.to_list (Col_segment.merge_column_reports !reports))
  in
  {
    R.e_format = t.format;
    e_branches = branches;
    e_segments = segments;
    e_columns = columns;
    e_history =
      {
        R.h_files;
        h_bytes;
        h_commits = Hashtbl.length t.commit_loc;
        h_max_chain = max_chain;
        h_mean_chain = mean_chain;
      };
  }

(* The manifest persists the graph, every segment's local bitmap and
   layout metadata, branch head segments, the branch–segment bitmap,
   history bookkeeping, the commit locator and dirtiness; the key index
   is rebuilt from local bitmaps on reopen.  Format-v1 manifests keep
   the original byte-for-byte encoding (heap size + per-row byte
   offsets), so pre-columnar repositories reopen unchanged; v2
   manifests lead with the columnar magic header and embed each
   segment's block index instead of an offset table. *)
let manifest_path dir = Filename.concat dir "manifest.hy"

let save_manifest t =
  let v2 = t.format >= 2 in
  let buf = Buffer.create 4096 in
  if v2 then Col_segment.write_manifest_header buf;
  Binio.write_u8 buf (if t.compress then 1 else 0);
  Binio.write_string buf (Vg.serialize t.graph);
  Schema.serialize buf t.schema;
  Binio.write_varint buf (Vec.length t.segments);
  Vec.iter
    (fun s ->
      if v2 then begin
        Col_segment.save_meta buf s.seg;
        Branch_bitmap.serialize buf s.local
      end
      else begin
        Binio.write_varint buf (Col_segment.byte_size s.seg);
        Branch_bitmap.serialize buf s.local;
        let offsets = Col_segment.v1_offsets s.seg in
        Binio.write_varint buf (Vec.length offsets);
        Vec.iter (fun off -> Binio.write_varint buf off) offsets
      end)
    t.segments;
  Binio.write_varint buf (Vec.length t.head_seg);
  Vec.iter (fun sid -> Binio.write_varint buf sid) t.head_seg;
  Branch_bitmap.serialize buf t.seg_index;
  Binio.write_varint buf (Hashtbl.length t.hist_segs);
  Hashtbl.iter
    (fun b l ->
      Binio.write_varint buf b;
      Binio.write_list (fun buf s -> Binio.write_varint buf s) buf !l)
    t.hist_segs;
  Binio.write_varint buf (Hashtbl.length t.commit_loc);
  Hashtbl.iter
    (fun vid (b, snaps) ->
      Binio.write_varint buf vid;
      Binio.write_varint buf b;
      Binio.write_list
        (fun buf (sid, idx) ->
          Binio.write_varint buf sid;
          Binio.write_varint buf idx)
        buf snaps)
    t.commit_loc;
  Binio.write_varint buf (Hashtbl.length t.dirty);
  Hashtbl.iter
    (fun b d ->
      Binio.write_varint buf b;
      Binio.write_u8 buf (if d then 1 else 0))
    t.dirty;
  Binio.write_varint buf t.wal_marker;
  Atomic_file.write (manifest_path t.dir) (Buffer.contents buf)

let flush t =
  Vec.iter (fun s -> Col_segment.flush s.seg) t.segments;
  save_manifest t

let migrate t =
  if t.format < 2 then begin
    for sid = 0 to Vec.length t.segments - 1 do
      let s = segment t sid in
      Vec.set t.segments sid { s with seg = Col_segment.migrate_to_v2 s.seg }
    done;
    (* local bitmaps, the key index and commit histories are all
       row-addressed and rows survive migration 1:1 — only the format
       flag and manifest encoding change *)
    t.format <- 2;
    save_manifest t
  end

let open_existing ~dir ~pool =
  let data =
    try Atomic_file.read (manifest_path dir)
    with Sys_error _ -> errorf "hybrid: no repository in %s" dir
  in
  let pos = ref 0 in
  let version = Col_segment.manifest_version data pos in
  let compress = Binio.read_u8 data pos = 1 in
  let graph = Vg.deserialize (Binio.read_string data pos) in
  let schema = Schema.deserialize data pos in
  let t =
    {
      dir;
      pool;
      schema;
      compress;
      format = version;
      graph;
      segments = Vec.create ~dummy:seg_dummy ();
      head_seg = Vec.create ~dummy:(-1) ();
      seg_index = Branch_bitmap.create ();
      pk = Pk_index.create ();
      histories = Hashtbl.create 64;
      hist_segs = Hashtbl.create 16;
      commit_loc = Hashtbl.create 64;
      dirty = Hashtbl.create 16;
      wal_marker = 0;
      closed = false;
    }
  in
  let nsegs = Binio.read_varint data pos in
  for seg_id = 0 to nsegs - 1 do
    if version >= 2 then begin
      let seg =
        Col_segment.open_v2 ~pool ~schema ~compress
          ~path:(seg_file_path dir seg_id) data pos
      in
      let local = Branch_bitmap.deserialize data pos in
      let _ = Vec.push t.segments { seg_id; seg; local } in
      ()
    end
    else begin
      let size = Binio.read_varint data pos in
      let local = Branch_bitmap.deserialize data pos in
      let offsets = ref [] in
      let noff = Binio.read_varint data pos in
      for _ = 1 to noff do
        offsets := Binio.read_varint data pos :: !offsets
      done;
      let file =
        Heap_file.open_existing ~pool (seg_file_path dir seg_id)
      in
      (* drop bytes past the checkpoint (recovered via the WAL instead) *)
      Heap_file.truncate_to file size;
      let seg =
        Col_segment.of_v1 ~pool ~schema ~compress
          ~codec:(v1_codec ~schema ~compress) ~file
          ~offsets:(List.rev !offsets)
      in
      let _ = Vec.push t.segments { seg_id; seg; local } in
      ()
    end
  done;
  let nheads = Binio.read_varint data pos in
  for _ = 1 to nheads do
    let _ = Vec.push t.head_seg (Binio.read_varint data pos) in
    ()
  done;
  let seg_index = Branch_bitmap.deserialize data pos in
  (* seg_index is immutable in the record; rebuild via overwrite *)
  for b = 0 to Branch_bitmap.branch_count seg_index - 1 do
    ensure_branch t.seg_index b;
    Branch_bitmap.overwrite_column t.seg_index ~branch:b
      (Branch_bitmap.column_view seg_index ~branch:b)
  done;
  let nhist = Binio.read_varint data pos in
  for _ = 1 to nhist do
    let b = Binio.read_varint data pos in
    let l = Binio.read_list (fun s p -> Binio.read_varint s p) data pos in
    Hashtbl.replace t.hist_segs b (ref l)
  done;
  let ncommits = Binio.read_varint data pos in
  for _ = 1 to ncommits do
    let vid = Binio.read_varint data pos in
    let b = Binio.read_varint data pos in
    let snaps =
      Binio.read_list
        (fun s p ->
          let sid = Binio.read_varint s p in
          let idx = Binio.read_varint s p in
          (sid, idx))
        data pos
    in
    Hashtbl.replace t.commit_loc vid (b, snaps)
  done;
  let ndirty = Binio.read_varint data pos in
  for _ = 1 to ndirty do
    let b = Binio.read_varint data pos in
    Hashtbl.replace t.dirty b (Binio.read_u8 data pos = 1)
  done;
  t.wal_marker <- Binio.read_varint data pos;
  (* rebuild the key index from the local bitmaps *)
  for b = 0 to Vec.length t.head_seg - 1 do
    let bid = Pk_index.add_branch t.pk ~from:None in
    assert (bid = b)
  done;
  Vec.iter
    (fun s ->
      for b = 0 to Branch_bitmap.branch_count s.local - 1 do
        Bitvec.iter_set
          (fun row ->
            Pk_index.set t.pk ~branch:b (key_at t s.seg_id row) (s.seg_id, row))
          (Branch_bitmap.column_view s.local ~branch:b)
      done)
    t.segments;
  t

let wal_marker t = t.wal_marker
let set_wal_marker t lsn = t.wal_marker <- lsn

let verify t =
  let errs = ref [] in
  (match Atomic_file.verify (manifest_path t.dir) with
  | Some reason -> errs := ("manifest.hy", reason) :: !errs
  | None -> ());
  Vec.iter
    (fun s ->
      let name = Printf.sprintf "seg_%d.dat" s.seg_id in
      List.iter
        (fun (_, reason) -> errs := (name, reason) :: !errs)
        (Col_segment.verify s.seg))
    t.segments;
  Hashtbl.iter
    (fun vid (_, snaps) ->
      if not (Vg.mem_version t.graph vid) then
        errs :=
          ( "manifest.hy",
            Printf.sprintf "commit locator references unknown version %d" vid )
          :: !errs
      else
        List.iter
          (fun (sid, _) ->
            if sid < 0 || sid >= Vec.length t.segments then
              errs :=
                ( "manifest.hy",
                  Printf.sprintf "commit %d references unknown segment %d" vid
                    sid )
                :: !errs)
          snaps)
    t.commit_loc;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* maintenance *)

let hist_file b sid = Printf.sprintf "hist_b%d_s%d.chx" b sid
let hist_path t b sid = Filename.concat t.dir (hist_file b sid)

let referenced_files t =
  let segs =
    List.init (Vec.length t.segments) (fun sid ->
        Printf.sprintf "seg_%d.dat" sid)
  in
  let hists =
    Hashtbl.fold
      (fun b l acc ->
        List.fold_left (fun acc sid -> hist_file b sid :: acc) acc !l)
      t.hist_segs []
  in
  segs @ List.sort compare hists

(* branches owning a commit history for segment [sid], ascending *)
let hist_branches t sid =
  Hashtbl.fold
    (fun b l acc -> if List.mem sid !l then b :: acc else acc)
    t.hist_segs []
  |> List.sort compare

(* Rows of [sid] that anything still addresses: any branch's local
   column (active or not) or any commit snapshot in any branch's
   history for this segment.  Rows outside this set are unreachable
   from every head and every committed version, so a compaction may
   drop them. *)
let keep_set t sid =
  let s = segment t sid in
  let keep = Bitvec.create ~capacity:(max 1 (Col_segment.rows s.seg)) () in
  for b = 0 to Branch_bitmap.branch_count s.local - 1 do
    Bitvec.union_in_place keep (Branch_bitmap.column_view s.local ~branch:b)
  done;
  List.iter
    (fun b ->
      let h = history t b sid in
      for i = 0 to Commit_history.count h - 1 do
        Bitvec.union_in_place keep (Commit_history.checkout h i)
      done)
    (hist_branches t sid);
  keep

let seg_by_file t name =
  let found = ref None in
  Vec.iter
    (fun s ->
      if Filename.basename (Col_segment.path s.seg) = name then
        found := Some s.seg_id)
    t.segments;
  !found

(* Compact segment [sid] into a fresh tail segment: copy only
   still-referenced rows (order preserved), rebuild the segment's
   commit histories with remapped rows at unchanged commit indices,
   and repoint every in-memory reference (local bitmap, key index,
   head pointers, branch–segment index, hist bookkeeping, commit
   locators).  The old slot is re-staffed with an EMPTY segment whose
   file is deliberately NOT truncated: until the manifest commits, a
   crash must reopen the old bytes.  The committed manifest records
   size 0 for the slot, so [open_v2]'s truncate self-heals the file on
   the next reopen, and the in-process [mp_cleanup] truncates it
   eagerly after invalidating the old handle's buffer-pool pages. *)
let plan_compact t ~kind sid =
  if t.format < 2 then None
  else if sid < 0 || sid >= Vec.length t.segments then None
  else begin
    let rows = Col_segment.rows (segment t sid).seg in
    let kept = Bitvec.pop_count (keep_set t sid) in
    if rows = 0 || kept >= rows then None
    else begin
      let new_sid = Vec.length t.segments in
      let hbranches = hist_branches t sid in
      let bytes_before =
        Col_segment.byte_size (segment t sid).seg
        + List.fold_left
            (fun acc b -> acc + Commit_history.disk_bytes (history t b sid))
            0 hbranches
      in
      let new_seg_path = seg_file_path t.dir new_sid in
      (* handles retired by the swap, reclaimed by cleanup *)
      let retired : (Col_segment.t * Commit_history.t list) option ref =
        ref None
      in
      let apply () =
        let s = segment t sid in
        let rows = Col_segment.rows s.seg in
        Col_segment.flush s.seg;
        let keep = keep_set t sid in
        let map = Array.make (max 1 rows) (-1) in
        let new_seg =
          Col_segment.create_v2 ~pool:t.pool ~schema:t.schema
            ~compress:t.compress ~path:new_seg_path
        in
        let new_hists = ref [] in
        (try
           Decibel_fault.Failpoint.hit "maint.rewrite";
           let next = ref 0 in
           for row = 0 to rows - 1 do
             if Bitvec.get keep row then begin
               let r =
                 Col_segment.append new_seg
                   (Col_segment.Live (tuple_at t sid row))
               in
               assert (r = !next);
               map.(row) <- !next;
               incr next
             end
           done;
           Col_segment.flush new_seg;
           (* rebuild histories commit-by-commit so indices — what the
              commit locators store — survive unchanged *)
           List.iter
             (fun b ->
               let oldh = history t b sid in
               let nh = Commit_history.create ~path:(hist_path t b new_sid) in
               new_hists := (b, nh) :: !new_hists;
               for i = 0 to Commit_history.count oldh - 1 do
                 let col = Commit_history.checkout oldh i in
                 let ncol = Bitvec.create ~capacity:(max 1 !next) () in
                 Bitvec.iter_set
                   (fun row ->
                     if map.(row) >= 0 then Bitvec.set ncol map.(row))
                   col;
                 let idx = Commit_history.commit nh ncol in
                 assert (idx = i)
               done)
             hbranches
         with e ->
           Col_segment.abandon new_seg;
           (try Sys.remove new_seg_path with Sys_error _ -> ());
           List.iter
             (fun (b, nh) ->
               (try Commit_history.close nh with _ -> ());
               try Sys.remove (hist_path t b new_sid) with Sys_error _ -> ())
             !new_hists;
           raise e);
        (* swap: pure in-memory repointing, nothing below raises *)
        let new_local = Branch_bitmap.create () in
        for b = 0 to Branch_bitmap.branch_count s.local - 1 do
          let col = Branch_bitmap.column_view s.local ~branch:b in
          if not (Bitvec.is_empty col) then begin
            ensure_branch new_local b;
            let ncol = Bitvec.create () in
            Bitvec.iter_set
              (fun row -> if map.(row) >= 0 then Bitvec.set ncol map.(row))
              col;
            Branch_bitmap.overwrite_column new_local ~branch:b ncol
          end
        done;
        let slot =
          Vec.push t.segments
            { seg_id = new_sid; seg = new_seg; local = new_local }
        in
        assert (slot = new_sid);
        let old_hists =
          List.map
            (fun b ->
              let oldh = history t b sid in
              Hashtbl.remove t.histories (b, sid);
              oldh)
            hbranches
        in
        List.iter
          (fun (b, nh) -> Hashtbl.replace t.histories (b, new_sid) nh)
          !new_hists;
        Hashtbl.iter
          (fun _b l ->
            l := List.map (fun s' -> if s' = sid then new_sid else s') !l)
          t.hist_segs;
        let reloc =
          Hashtbl.fold
            (fun vid (b, snaps) acc ->
              if List.exists (fun (s', _) -> s' = sid) snaps then
                (vid, b, snaps) :: acc
              else acc)
            t.commit_loc []
        in
        List.iter
          (fun (vid, b, snaps) ->
            Hashtbl.replace t.commit_loc vid
              ( b,
                List.map
                  (fun (s', i) -> ((if s' = sid then new_sid else s'), i))
                  snaps ))
          reloc;
        for b = 0 to Vec.length t.head_seg - 1 do
          if Vec.get t.head_seg b = sid then Vec.set t.head_seg b new_sid
        done;
        for b = 0 to Branch_bitmap.branch_count t.seg_index - 1 do
          if Branch_bitmap.get t.seg_index ~branch:b ~row:sid then begin
            Branch_bitmap.clear t.seg_index ~branch:b ~row:sid;
            let nonempty =
              b < Branch_bitmap.branch_count new_local
              && not
                   (Bitvec.is_empty
                      (Branch_bitmap.column_view new_local ~branch:b))
            in
            if nonempty then
              Branch_bitmap.set t.seg_index ~branch:b ~row:new_sid
          end
        done;
        for b = 0 to Vec.length t.head_seg - 1 do
          let moves = ref [] in
          Pk_index.iter t.pk ~branch:b (fun key (s', row) ->
              if s' = sid then moves := (key, map.(row)) :: !moves);
          List.iter
            (fun (key, nrow) ->
              if nrow >= 0 then Pk_index.set t.pk ~branch:b key (new_sid, nrow))
            !moves
        done;
        let stub =
          Col_segment.empty_over ~pool:t.pool ~schema:t.schema
            ~compress:t.compress ~path:(seg_file_path t.dir sid)
        in
        Vec.set t.segments sid
          { seg_id = sid; seg = stub; local = Branch_bitmap.create () };
        retired := Some (s.seg, old_hists)
      in
      let cleanup () =
        match !retired with
        | None -> ()
        | Some (old_seg, old_hists) ->
            List.iter
              (fun h ->
                let p = Commit_history.path h in
                (try Commit_history.close h with _ -> ());
                try Sys.remove p with Sys_error _ -> ())
              old_hists;
            (* the old handle's buffer-pool pages are invalidated by
               its close BEFORE the slot file is truncated, so a
               recycled file id can never serve the stale bytes *)
            (try Col_segment.close old_seg with _ -> ());
            let slot = segment t sid in
            (try Col_segment.close slot.seg with _ -> ());
            let fresh =
              Col_segment.create_v2 ~pool:t.pool ~schema:t.schema
                ~compress:t.compress ~path:(seg_file_path t.dir sid)
            in
            Vec.set t.segments sid
              { seg_id = sid; seg = fresh; local = Branch_bitmap.create () };
            retired := None
      in
      Some
        {
          Engine_intf.mp_kind = kind;
          mp_target = Printf.sprintf "seg_%d.dat" sid;
          mp_new_files =
            Filename.basename new_seg_path
            :: List.map (fun b -> hist_file b new_sid) hbranches;
          mp_old_files = List.map (fun b -> hist_file b sid) hbranches;
          mp_bytes_before = bytes_before;
          mp_apply = apply;
          mp_cleanup = cleanup;
        }
    end
  end

let is_head t sid =
  let r = ref false in
  Vec.iter (fun h -> if h = sid then r := true) t.head_seg;
  !r

let plan_maintenance t ~kind ~target =
  match kind with
  | Engine_intf.M_materialize -> None (* no delta chains in this scheme *)
  | Engine_intf.M_compact -> (
      match seg_by_file t target with
      | None -> None
      | Some sid -> plan_compact t ~kind sid)
  | Engine_intf.M_gc ->
      (* pick the most fragmented non-head segment with dead rows *)
      let best = ref None in
      Vec.iter
        (fun s ->
          if not (is_head t s.seg_id) then begin
            let rows = Col_segment.rows s.seg in
            if rows > 0 then begin
              let dead = rows - Bitvec.pop_count (keep_set t s.seg_id) in
              if dead > 0 then
                match !best with
                | Some (_, d) when d >= dead -> ()
                | _ -> best := Some (s.seg_id, dead)
            end
          end)
        t.segments;
      Option.bind !best (fun (sid, _) -> plan_compact t ~kind sid)

let crash t =
  if not t.closed then begin
    Vec.iter (fun s -> Col_segment.abandon s.seg) t.segments;
    Hashtbl.iter (fun _ h -> Commit_history.close h) t.histories;
    t.closed <- true
  end

let close t =
  if not t.closed then begin
    flush t;
    Vec.iter (fun s -> Col_segment.close s.seg) t.segments;
    Hashtbl.iter (fun _ h -> Commit_history.close h) t.histories;
    t.closed <- true
  end
