(** Crash-torture harness: induce a crash at every failpoint site a
    scripted workload crosses, recover, and check the result against a
    model-engine oracle.  Shared by the crash tests and
    [bench --only crash]. *)

type op =
  | Insert of string * int * int  (** branch, key, payload *)
  | Update of string * int * int
  | Delete of string * int
  | Commit of string
  | Branch of string * string  (** new name, from branch *)
  | Merge of string * string  (** into, from *)
  | Flush  (** checkpoint: manifest write + WAL truncation *)

val default_workload : op list

val schema : Decibel_storage.Schema.t
(** The 3-int-column schema the scripted workloads use. *)

val row : int -> int -> Decibel_storage.Tuple.t
(** [row key payload] — a tuple of {!schema}. *)

val apply : Database.t -> op -> unit

val state_of : Database.t -> (string * Decibel_storage.Value.t list list) list
(** Every active branch's sorted contents, sorted by branch name. *)

type case = {
  c_site : string;
  c_occurrence : int;  (** which crossing of the site was armed *)
  c_action : string;  (** ["raise"] or ["torn"] *)
  c_fired : bool;  (** the armed failpoint actually fired *)
  c_marker : int;  (** recovered WAL marker, [-1] if recovery failed *)
  c_fsck_findings : int;  (** findings repaired before recovery *)
  c_ok : bool;
  c_detail : string;  (** failure explanation, [""] when ok *)
}

type summary = {
  s_scheme : string;
  s_cases : case list;
  s_failures : int;
  s_sites : (string * int) list;  (** failpoint census of the dry run *)
}

val torture : ?workload:op list -> root:string -> Database.scheme -> summary
(** Torture one scheme under [root] (scratch space; per-case
    subdirectories are removed as they finish).  Each case arms one
    failpoint crossing, crashes, fsck-repairs, recovers, re-applies the
    swallowed suffix of the workload, and verifies both the recovered
    prefix state and the final state against the oracle. *)

val transient_check :
  ?workload:op list -> root:string -> Database.scheme -> (string * string) list
(** One transient fault at each retryable site: returns
    [(site, outcome)] where outcome [""] means the retry absorbed it
    and the workload completed with the oracle's final state. *)

val summary_json : summary -> string
