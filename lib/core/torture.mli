(** Crash-torture harness: induce a crash at every failpoint site a
    scripted workload crosses, recover, and check the result against a
    model-engine oracle.  Shared by the crash tests and
    [bench --only crash]. *)

type op =
  | Insert of string * int * int  (** branch, key, payload *)
  | Update of string * int * int
  | Delete of string * int
  | Commit of string
  | Branch of string * string  (** new name, from branch *)
  | Merge of string * string  (** into, from *)
  | Flush  (** checkpoint: manifest write + WAL truncation *)
  | Maint
      (** run every applicable maintenance task crash-safely (GC with
          an engine-chosen target, then materialize per active
          branch); content-preserving, so it does not advance the
          oracle state *)

val default_workload : op list

val maint_workload : op list
(** Maintenance-concurrent schedule: fragmenting writes, two [Maint]
    passes, and writer ops continuing in between. *)

val schema : Decibel_storage.Schema.t
(** The 3-int-column schema the scripted workloads use. *)

val row : int -> int -> Decibel_storage.Tuple.t
(** [row key payload] — a tuple of {!schema}. *)

val apply : Database.t -> op -> unit

val state_of : Database.t -> (string * Decibel_storage.Value.t list list) list
(** Every active branch's sorted contents, sorted by branch name. *)

type case = {
  c_site : string;
  c_occurrence : int;  (** which crossing of the site was armed *)
  c_action : string;  (** ["raise"] or ["torn"] *)
  c_fired : bool;  (** the armed failpoint actually fired *)
  c_marker : int;  (** recovered WAL marker, [-1] if recovery failed *)
  c_fsck_findings : int;  (** findings repaired before recovery *)
  c_ok : bool;
  c_detail : string;  (** failure explanation, [""] when ok *)
}

type summary = {
  s_scheme : string;
  s_cases : case list;
  s_failures : int;
  s_sites : (string * int) list;  (** failpoint census of the dry run *)
}

val torture :
  ?workload:op list ->
  ?site_prefix:string ->
  ?tag:string ->
  root:string ->
  Database.scheme ->
  summary
(** Torture one scheme under [root] (scratch space; per-case
    subdirectories are removed as they finish).  Each case arms one
    failpoint crossing, crashes, fsck-repairs, recovers, re-applies the
    swallowed suffix of the workload, and verifies both the recovered
    prefix state and the final state against the oracle.
    [site_prefix] restricts which discovered sites get cases (the
    census in [s_sites] still lists all of them); [tag] namespaces the
    scratch directories so independent torture runs can share a
    [root]. *)

val maint_sites : string list
(** The five maintenance failpoint sites a [Maint] pass crosses. *)

val maint_torture : ?workload:op list -> root:string -> Database.scheme -> summary
(** {!torture} with {!maint_workload}, killing at the [maint.*] sites
    only: every case crashes inside (or at the journal boundaries of)
    a compaction/materialization/GC and must recover
    fingerprint-identical. *)

val transient_check :
  ?workload:op list -> root:string -> Database.scheme -> (string * string) list
(** One transient fault at each retryable site: returns
    [(site, outcome)] where outcome [""] means the retry absorbed it
    and the workload completed with the oracle's final state. *)

val summary_json : summary -> string
