(** A small versioned query language (paper §2.3, Table 1).

    Decibel exposes versioned queries through VQuel; the paper gives
    the SQL equivalents of the four benchmark query classes and notes
    nothing is tied to the concrete syntax.  This module implements
    exactly that SQL subset — a lexer, a recursive-descent parser, and
    a planner that recognizes the four shapes:

    {v
    1. SELECT * FROM R WHERE R.Version = 'v01'                   (scan)
    2. SELECT * FROM R WHERE R.Version = 'v01' AND R.id NOT IN
         (SELECT id FROM R WHERE R.Version = 'v02')              (diff)
    3. SELECT * FROM R AS R1, R AS R2 WHERE R1.Version = 'v01'
         AND R1.name = 'Sam' AND R1.id = R2.id
         AND R2.Version = 'v02'                                  (join)
    4. SELECT * FROM R WHERE HEAD(R.Version) = true              (heads)
    v}

    plus ordinary column predicates ([<], [<=], [=], [<>], [>=], [>])
    on any of them.  Version literals name either a branch (its working
    head is queried) or [#n] for the committed version with id [n]. *)

open Decibel_storage
open Types

(* ------------------------------------------------------------------ *)
(* lexer *)

type token =
  | Tident of string
  | Tstring of string
  | Tint of int64
  | Tstar
  | Tcomma
  | Tdot
  | Tlparen
  | Trparen
  | Teq
  | Tneq
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tkw of string (* uppercased keyword: SELECT FROM WHERE AND AS NOT IN HEAD TRUE FALSE *)
  | Teof

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "AS"; "NOT"; "IN"; "HEAD"; "TRUE";
    "FALSE"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "GROUP"; "BY" ]

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '#'
  in
  while !pos < n do
    match input.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | '*' -> advance (); tokens := Tstar :: !tokens
    | ',' -> advance (); tokens := Tcomma :: !tokens
    | '.' -> advance (); tokens := Tdot :: !tokens
    | '(' -> advance (); tokens := Tlparen :: !tokens
    | ')' -> advance (); tokens := Trparen :: !tokens
    | '=' -> advance (); tokens := Teq :: !tokens
    | '<' ->
        advance ();
        (match peek () with
        | Some '=' -> advance (); tokens := Tle :: !tokens
        | Some '>' -> advance (); tokens := Tneq :: !tokens
        | _ -> tokens := Tlt :: !tokens)
    | '>' ->
        advance ();
        (match peek () with
        | Some '=' -> advance (); tokens := Tge :: !tokens
        | _ -> tokens := Tgt :: !tokens)
    | '\'' ->
        advance ();
        let start = !pos in
        while !pos < n && input.[!pos] <> '\'' do
          advance ()
        done;
        if !pos >= n then fail "unterminated string literal";
        tokens := Tstring (String.sub input start (!pos - start)) :: !tokens;
        advance ()
    | c when c >= '0' && c <= '9' ->
        let start = !pos in
        while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do
          advance ()
        done;
        tokens :=
          Tint (Int64.of_string (String.sub input start (!pos - start)))
          :: !tokens
    | c when is_ident_char c ->
        let start = !pos in
        while !pos < n && is_ident_char input.[!pos] do
          advance ()
        done;
        let word = String.sub input start (!pos - start) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then tokens := Tkw upper :: !tokens
        else tokens := Tident word :: !tokens
    | c -> fail "unexpected character %C" c
  done;
  List.rev (Teof :: !tokens)

(* ------------------------------------------------------------------ *)
(* AST *)

type column_ref = { table : string option; column : string }

(** Aggregate functions (evaluated in the query layer, as the paper
    notes for SimpleDB-level plans, §2.1).  [Avg] uses integer
    division, as SQL does over integer columns. *)
type agg = Count | Sum | Avg | Min_agg | Max_agg

type sel_item =
  | S_col of column_ref
  | S_agg of agg * column_ref option  (** [None] means COUNT over rows. *)

type operand =
  | Col of column_ref
  | Lit_str of string
  | Lit_int of int64
  | Lit_bool of bool

type cond =
  | Cmp of Query.comparison * operand * operand
  | Not_in of column_ref * select
  | Head_cond of column_ref (* HEAD(ref) = true *)

and select = {
  projection : [ `Star | `Items of sel_item list ];
  from : (string * string option) list; (* table, alias *)
  where : cond list; (* conjunction *)
  group_by : column_ref option;
}

(* ------------------------------------------------------------------ *)
(* parser *)

type parser_state = { mutable toks : token list }

let peek_tok p = match p.toks with t :: _ -> t | [] -> Teof

let next_tok p =
  match p.toks with
  | t :: rest ->
      p.toks <- rest;
      t
  | [] -> Teof

let expect p want desc =
  let t = next_tok p in
  if t <> want then fail "expected %s" desc

let parse_ident p =
  match next_tok p with
  | Tident s -> s
  | _ -> fail "expected identifier"

let parse_column_ref p first =
  match peek_tok p with
  | Tdot ->
      let _ = next_tok p in
      let col = parse_ident p in
      { table = Some first; column = col }
  | _ -> { table = None; column = first }

let rec parse_select p =
  expect p (Tkw "SELECT") "SELECT";
  let parse_item () =
    let agg_of = function
      | "COUNT" -> Count
      | "SUM" -> Sum
      | "AVG" -> Avg
      | "MIN" -> Min_agg
      | "MAX" -> Max_agg
      | kw -> fail "unexpected keyword %s in select list" kw
    in
    match next_tok p with
    | Tkw (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") as kw) ->
        expect p Tlparen "(";
        let arg =
          match peek_tok p with
          | Tstar ->
              let _ = next_tok p in
              if agg_of kw <> Count then fail "%s(*) is not valid" kw;
              None
          | _ -> Some (parse_column_ref p (parse_ident p))
        in
        expect p Trparen ")";
        S_agg (agg_of kw, arg)
    | Tident first -> S_col (parse_column_ref p first)
    | _ -> fail "expected column or aggregate in select list"
  in
  let projection =
    match peek_tok p with
    | Tstar ->
        let _ = next_tok p in
        `Star
    | _ ->
        let rec items acc =
          let it = parse_item () in
          match peek_tok p with
          | Tcomma ->
              let _ = next_tok p in
              items (it :: acc)
          | _ -> List.rev (it :: acc)
        in
        `Items (items [])
  in
  expect p (Tkw "FROM") "FROM";
  let rec tables acc =
    let name = parse_ident p in
    let alias =
      match peek_tok p with
      | Tkw "AS" ->
          let _ = next_tok p in
          Some (parse_ident p)
      | _ -> None
    in
    match peek_tok p with
    | Tcomma ->
        let _ = next_tok p in
        tables ((name, alias) :: acc)
    | _ -> List.rev ((name, alias) :: acc)
  in
  let from = tables [] in
  let where =
    match peek_tok p with
    | Tkw "WHERE" ->
        let _ = next_tok p in
        let rec conds acc =
          let c = parse_cond p in
          match peek_tok p with
          | Tkw "AND" ->
              let _ = next_tok p in
              conds (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        conds []
    | _ -> []
  in
  let group_by =
    match peek_tok p with
    | Tkw "GROUP" ->
        let _ = next_tok p in
        expect p (Tkw "BY") "BY";
        Some (parse_column_ref p (parse_ident p))
    | _ -> None
  in
  { projection; from; where; group_by }

and parse_cond p =
  match next_tok p with
  | Tkw "HEAD" ->
      expect p Tlparen "(";
      let r = parse_column_ref p (parse_ident p) in
      expect p Trparen ")";
      expect p Teq "=";
      (match next_tok p with
      | Tkw "TRUE" -> Head_cond r
      | _ -> fail "HEAD(...) must compare to true")
  | Tident first -> (
      let lhs = parse_column_ref p first in
      match next_tok p with
      | Teq -> Cmp (Query.Eq, Col lhs, parse_operand p)
      | Tneq -> Cmp (Query.Ne, Col lhs, parse_operand p)
      | Tlt -> Cmp (Query.Lt, Col lhs, parse_operand p)
      | Tle -> Cmp (Query.Le, Col lhs, parse_operand p)
      | Tgt -> Cmp (Query.Gt, Col lhs, parse_operand p)
      | Tge -> Cmp (Query.Ge, Col lhs, parse_operand p)
      | Tkw "NOT" ->
          expect p (Tkw "IN") "IN";
          expect p Tlparen "(";
          let sub = parse_select p in
          expect p Trparen ")";
          Not_in (lhs, sub)
      | _ -> fail "expected comparison operator")
  | _ -> fail "expected condition"

and parse_operand p =
  match next_tok p with
  | Tstring s -> Lit_str s
  | Tint i -> Lit_int i
  | Tkw "TRUE" -> Lit_bool true
  | Tkw "FALSE" -> Lit_bool false
  | Tident first -> Col (parse_column_ref p first)
  | _ -> fail "expected literal or column"

let parse input =
  let p = { toks = lex input } in
  let s = parse_select p in
  (match peek_tok p with Teof -> () | _ -> fail "trailing input");
  s

(* ------------------------------------------------------------------ *)
(* planner: recognize the four versioned query shapes *)

type version_target =
  | Branch_head of string (* branch name: its working head *)
  | Committed of version_id (* '#n' literal *)

type plan =
  | Scan of { target : version_target; preds : pred list }
  | Pos_diff of {
      target : version_target;
      other : version_target;
      preds : pred list;
    }
  | Join of {
      left : version_target;
      right : version_target;
      left_preds : pred list;
      right_preds : pred list;
    }
  | Head_scan of { preds : pred list }

and pred = { p_column : string; p_op : Query.comparison; p_value : Value.t }

(** What happens to the selected rows: pass through, project columns,
    or aggregate (optionally grouped). *)
type post =
  | P_star
  | P_items of sel_item list * column_ref option (* select list, GROUP BY *)

type query_plan = { base : plan; post : post }

let version_of_literal s =
  if String.length s > 1 && s.[0] = '#' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v -> Committed v
    | None -> fail "bad version literal %S" s
  else Branch_head s

let is_version_col (r : column_ref) =
  String.lowercase_ascii r.column = "version"

(* binding of condition lists: split per alias, recognize version
   equalities, join equalities, HEAD and plain predicates *)
type binding = {
  mutable versions : (string option * version_target) list;
  mutable preds : (string option * pred) list;
  mutable join_on : (column_ref * column_ref) option;
  mutable not_in : (column_ref * select) option;
  mutable head : bool;
}

let operand_value = function
  | Lit_str s -> Value.Str s
  | Lit_int i -> Value.Int i
  | Lit_bool _ -> fail "boolean literals only valid with HEAD()"
  | Col _ -> fail "column on right-hand side only valid in join conditions"

let bind_conditions conds =
  let b =
    { versions = []; preds = []; join_on = None; not_in = None; head = false }
  in
  List.iter
    (fun c ->
      match c with
      | Head_cond r when is_version_col r -> b.head <- true
      | Head_cond _ -> fail "HEAD() applies to a Version column"
      | Not_in (r, sub) ->
          if b.not_in <> None then fail "at most one NOT IN subquery";
          b.not_in <- Some (r, sub)
      | Cmp (Query.Eq, Col l, Col r) ->
          if is_version_col l || is_version_col r then
            fail "version columns cannot join";
          if b.join_on <> None then fail "at most one join condition";
          b.join_on <- Some (l, r)
      | Cmp (op, Col l, rhs) when is_version_col l -> (
          match op, rhs with
          | Query.Eq, Lit_str s ->
              b.versions <- (l.table, version_of_literal s) :: b.versions
          | _ -> fail "Version supports only = 'name' comparisons")
      | Cmp (op, Col l, rhs) ->
          b.preds <-
            (l.table, { p_column = l.column; p_op = op;
                        p_value = operand_value rhs })
            :: b.preds
      | Cmp (_, _, _) -> fail "left side of a comparison must be a column")
    conds;
  b

let preds_for b alias =
  List.filter_map
    (fun (t, p) ->
      match t, alias with
      | None, _ -> Some p
      | Some a, Some alias when a = alias -> Some p
      | Some _, None -> Some p
      | Some _, Some _ -> None)
    b.preds

let plan_of_select (s : select) =
  let base_of (s : select) =
  match s.from with
  | [ (_, _) ] -> (
      let b = bind_conditions s.where in
      match b.head, b.versions, b.not_in with
      | true, [], None -> Head_scan { preds = preds_for b None }
      | false, [ (_, target) ], None ->
          Scan { target; preds = preds_for b None }
      | false, [ (_, target) ], Some (r, sub) ->
          if String.lowercase_ascii r.column <> "id" then
            fail "NOT IN must compare primary keys (id)";
          let sub_b = bind_conditions sub.where in
          (match sub_b.versions with
          | [ (_, other) ] ->
              Pos_diff { target; other; preds = preds_for b None }
          | _ -> fail "subquery must constrain exactly one version")
      | true, _ :: _, _ -> fail "HEAD() cannot be mixed with Version = ..."
      | true, [], Some _ -> fail "HEAD() cannot be mixed with NOT IN"
      | false, [], _ -> fail "missing Version constraint"
      | false, _ :: _ :: _, _ -> fail "one table cannot have two versions")
  | [ (t1, a1); (t2, a2) ] -> (
      if t1 <> t2 then fail "self-joins across versions only";
      let alias1 = Option.value ~default:t1 a1 in
      let alias2 = Option.value ~default:t2 a2 in
      let b = bind_conditions s.where in
      if b.head then fail "HEAD() is not valid in a join";
      (match b.join_on with
      | Some (l, r) ->
          let lt = Option.value ~default:alias1 l.table in
          let rt = Option.value ~default:alias2 r.table in
          if String.lowercase_ascii l.column <> "id"
             || String.lowercase_ascii r.column <> "id"
          then fail "joins must be on the primary key (id)";
          if not ((lt = alias1 && rt = alias2) || (lt = alias2 && rt = alias1))
          then fail "join condition must relate the two aliases"
      | None -> fail "two-table query needs a join condition");
      let version_for alias =
        match
          List.find_opt
            (fun (t, _) -> t = Some alias)
            b.versions
        with
        | Some (_, v) -> v
        | None -> fail "alias %s has no Version constraint" alias
      in
      Join
        {
          left = version_for alias1;
          right = version_for alias2;
          left_preds = preds_for b (Some alias1);
          right_preds = preds_for b (Some alias2);
        })
  | _ -> fail "only one or two tables are supported"
  in
  let base = base_of s in
  let post =
    match s.projection, s.group_by with
    | `Star, Some _ -> fail "GROUP BY requires an aggregate select list"
    | `Star, None -> P_star
    | `Items items, group ->
        (match base with
        | Join _ -> fail "projections and aggregates need a single table"
        | Scan _ | Pos_diff _ | Head_scan _ -> ());
        let has_agg =
          List.exists (function S_agg _ -> true | S_col _ -> false) items
        in
        (match group, has_agg with
        | Some _, false -> fail "GROUP BY requires an aggregate select list"
        | Some g, true ->
            (* plain columns must be the grouping column *)
            List.iter
              (function
                | S_col c when c.column <> g.column ->
                    fail "column %s is not in the GROUP BY clause" c.column
                | S_col _ | S_agg _ -> ())
              items
        | None, true ->
            List.iter
              (function
                | S_col c ->
                    fail "column %s mixed with aggregates needs GROUP BY"
                      c.column
                | S_agg _ -> ())
              items
        | None, false -> ());
        P_items (items, group)
  in
  { base; post }

(* ------------------------------------------------------------------ *)
(* executor *)

let resolve_pred schema (p : pred) : Query.predicate =
  match Schema.column_index schema p.p_column with
  | exception Not_found -> fail "unknown column %S" p.p_column
  | _ -> Query.column_pred schema ~column:p.p_column p.p_op p.p_value

let conj preds tuple = List.for_all (fun p -> p tuple) preds

(* Compile planner predicates to their data form so branch-head scans
   can hand them to the engine, which evaluates them on decoded column
   batches (dictionary codes for string equality) before materializing
   tuples. *)
let compile_preds schema (preds : pred list) : Col_pred.t list =
  List.map
    (fun p ->
      match Query.col_pred schema ~column:p.p_column p.p_op p.p_value with
      | cp -> cp
      | exception Not_found -> fail "unknown column %S" p.p_column)
    preds

(* Scans of a committed version go through scan_version; branch names
   resolve to working heads. *)
let scan_target db target f =
  match target with
  | Branch_head name -> Database.scan db (Database.branch_named db name) f
  | Committed v -> Database.scan_version db v f

(* [scan_target] with the plan's predicates applied.  Branch heads get
   predicate pushdown via {!Database.scan_filtered}; committed-version
   scans (and any engine without a batch path) filter row-wise. *)
let scan_target_where db target preds f =
  let schema = Database.schema db in
  match target, preds with
  | _, [] -> scan_target db target f
  | Branch_head name, preds ->
      Database.scan_filtered db
        (Database.branch_named db name)
        ~preds:(compile_preds schema preds) f
  | Committed v, preds ->
      let ps = List.map (resolve_pred schema) preds in
      Database.scan_version db v (fun t -> if conj ps t then f t)

type row = { values : Tuple.t; row_branches : string list }

module Obs = Decibel_obs.Obs

(* Each plan shape runs under its own operator span (two-phase shapes
   get a child span per phase), so EXPLAIN ANALYZE of a VQuel query
   shows the planner's operator over the engine-op nodes it drove,
   with post-predicate emitted rows per node. *)
let op_span name f =
  if not (Obs.enabled ()) then f ()
  else
    Obs.with_span name (fun () ->
        let n = f () in
        Obs.Prof.set_rows n;
        n)

let run_base db plan =
  let schema = Database.schema db in
  let rows = ref [] in
  let nemitted = ref 0 in
  let emit ?(branches = []) t =
    incr nemitted;
    rows := { values = t; row_branches = branches } :: !rows
  in
  (match plan with
  | Scan { target; preds } ->
      ignore
        (op_span "vquel.scan" (fun () ->
             scan_target_where db target preds emit;
             !nemitted))
  | Pos_diff { target; other; preds } ->
      ignore
        (op_span "vquel.pos_diff" (fun () ->
             (* materialize the subquery's key set, probe while scanning;
                the plan predicates push into the probe-side scan (the
                NOT IN test is a conjunct, so order is immaterial) *)
             let keys = Hashtbl.create 4096 in
             ignore
               (op_span "vquel.pos_diff.keys" (fun () ->
                    scan_target db other (fun t ->
                        Hashtbl.replace keys (Tuple.pk schema t) ());
                    Hashtbl.length keys));
             ignore
               (op_span "vquel.pos_diff.probe" (fun () ->
                    scan_target_where db target preds (fun t ->
                        if not (Hashtbl.mem keys (Tuple.pk schema t)) then
                          emit t);
                    !nemitted));
             !nemitted))
  | Join { left; right; left_preds; right_preds } ->
      ignore
        (op_span "vquel.join" (fun () ->
             let build = Hashtbl.create 4096 in
             ignore
               (op_span "vquel.join.build" (fun () ->
                    scan_target_where db left left_preds (fun t ->
                        Hashtbl.replace build (Tuple.pk schema t) t);
                    Hashtbl.length build));
             ignore
               (op_span "vquel.join.probe" (fun () ->
                    scan_target_where db right right_preds (fun t2 ->
                        match Hashtbl.find_opt build (Tuple.pk schema t2) with
                        | Some t1 -> emit (Array.append t1 t2)
                        | None -> ());
                    !nemitted));
             !nemitted))
  | Head_scan { preds } ->
      let preds = List.map (resolve_pred schema) preds in
      let graph = Database.graph db in
      ignore
        (op_span "vquel.head_scan" (fun () ->
             Database.multi_scan db (Database.heads db) (fun a ->
                 if conj preds a.tuple then
                   emit
                     ~branches:
                       (List.map
                          (fun b ->
                            (Decibel_graph.Version_graph.branch graph b)
                              .Decibel_graph.Version_graph.name)
                          a.in_branches)
                     a.tuple);
             !nemitted)));
  List.rev !rows

(* aggregate accumulation over int columns; MIN/MAX also work on
   strings via Value.compare *)
type accum = {
  mutable a_count : int;
  mutable a_sum : int64;
  mutable a_min : Value.t option;
  mutable a_max : Value.t option;
}

let fresh_accum () =
  { a_count = 0; a_sum = 0L; a_min = None; a_max = None }

let accumulate acc (v : Value.t option) =
  acc.a_count <- acc.a_count + 1;
  match v with
  | None -> ()
  | Some v ->
      (match v with
      | Value.Int x -> acc.a_sum <- Int64.add acc.a_sum x
      | Value.Str _ -> ());
      (match acc.a_min with
      | Some m when Value.compare m v <= 0 -> ()
      | Some _ | None -> acc.a_min <- Some v);
      (match acc.a_max with
      | Some m when Value.compare m v >= 0 -> ()
      | Some _ | None -> acc.a_max <- Some v)

let finish_agg agg (acc : accum) =
  match agg with
  | Count -> Value.int acc.a_count
  | Sum -> Value.Int acc.a_sum
  | Avg ->
      if acc.a_count = 0 then Value.int 0
      else Value.Int (Int64.div acc.a_sum (Int64.of_int acc.a_count))
  | Min_agg -> Option.value ~default:(Value.int 0) acc.a_min
  | Max_agg -> Option.value ~default:(Value.int 0) acc.a_max

let apply_post schema post rows =
  match post with
  | P_star -> rows
  | P_items (items, group) ->
      let col_index (c : column_ref) =
        match Schema.column_index schema c.column with
        | i -> i
        | exception Not_found -> fail "unknown column %S" c.column
      in
      let has_agg =
        List.exists (function S_agg _ -> true | S_col _ -> false) items
      in
      if not has_agg then
        (* plain projection *)
        let idxs = List.map col_index (List.filter_map (function S_col c -> Some c | S_agg _ -> None) items) in
        List.map
          (fun r ->
            {
              r with
              values = Array.of_list (List.map (fun i -> r.values.(i)) idxs);
            })
          rows
      else begin
        (* aggregation, optionally grouped *)
        let group_idx = Option.map col_index group in
        (* per select item needing its own accumulator: pair item with
           the column index it aggregates over (if any) *)
        let agg_specs =
          List.filter_map
            (function
              | S_agg (a, c) -> Some (a, Option.map col_index c)
              | S_col _ -> None)
            items
        in
        let groups : (Value.t option, accum array) Hashtbl.t =
          Hashtbl.create 16
        in
        let order = ref [] in
        List.iter
          (fun r ->
            let key = Option.map (fun i -> r.values.(i)) group_idx in
            let accs =
              match Hashtbl.find_opt groups key with
              | Some a -> a
              | None ->
                  let a =
                    Array.init (List.length agg_specs) (fun _ ->
                        fresh_accum ())
                  in
                  Hashtbl.replace groups key a;
                  order := key :: !order;
                  a
            in
            List.iteri
              (fun i (_, cidx) ->
                accumulate accs.(i) (Option.map (fun c -> r.values.(c)) cidx))
              agg_specs)
          rows;
        (* an ungrouped aggregate over zero rows still yields one row *)
        if Hashtbl.length groups = 0 && group_idx = None then begin
          Hashtbl.replace groups None
            (Array.init (List.length agg_specs) (fun _ -> fresh_accum ()));
          order := [ None ]
        end;
        List.rev_map
          (fun key ->
            let accs = Hashtbl.find groups key in
            let agg_pos = ref (-1) in
            let values =
              List.map
                (fun item ->
                  match item with
                  | S_col _ -> (
                      match key with
                      | Some v -> v
                      | None -> fail "grouping column without GROUP BY")
                  | S_agg (a, _) ->
                      incr agg_pos;
                      finish_agg a accs.(!agg_pos))
                items
            in
            { values = Array.of_list values; row_branches = [] })
          !order
      end

let run db { base; post } =
  let base_rows = run_base db base in
  match post with
  | P_star -> base_rows
  | P_items _ ->
      if not (Obs.enabled ()) then
        apply_post (Database.schema db) post base_rows
      else
        Obs.with_span "vquel.post" (fun () ->
            let out = apply_post (Database.schema db) post base_rows in
            Obs.Prof.set_rows (List.length out);
            out)

let query db input = run db (plan_of_select (parse input))
