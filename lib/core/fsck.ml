(** Offline repository checker ([decibel fsck]).

    Walks a persisted repository without mutating it and reports every
    integrity problem it can find: a manifest whose trailer checksum
    does not match, stale temp files left by a crash mid-rename, a
    write-ahead log with a torn tail, per-record heap and segment
    checksum failures, and dangling commit-locator cross-references
    (the engine-side checks behind {!Database.verify}).

    With [~repair:true] it additionally fixes the two problems that
    have a mechanical, information-preserving remedy: stale [*.tmp]
    files are removed (the rename never happened, so the manifest on
    disk is the authoritative one) and a torn WAL tail is truncated to
    its intact prefix (replay would stop there anyway; truncating makes
    the log clean for future appends).  Checksum failures inside the
    checkpoint itself are reported but never "repaired" — there is no
    redundant copy to restore from, and deleting data silently would be
    worse than refusing. *)

module Obs = Decibel_obs.Obs

let c_runs = Obs.counter "fsck.runs"
let c_findings = Obs.counter "fsck.findings"

type finding = {
  artifact : string;  (** file or object the problem is in *)
  problem : string;
  repaired : bool;
}

type maint_fix = {
  mf_kind : string;  (** "compact" | "materialize" | "gc" *)
  mf_target : string;
  mf_action : string;  (** "finished" | "rolled_back" | "pending" *)
  mf_removed : string list;  (** orphaned rewrite files deleted *)
}

type report = {
  dir : string;
  scheme : string option;  (** detected scheme, if a manifest was found *)
  findings : finding list;
  maint : maint_fix list;  (** interrupted maintenance tasks resolved *)
}

let clean r = r.findings = []

let wal_path dir = Filename.concat dir "wal.log"

(* Stale temp files: an atomic manifest write that crashed between
   writing [*.tmp] and renaming it over the target.  The target is
   still the last complete manifest, so the temp is garbage. *)
let check_tmp_files ~repair dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun name ->
         if Filename.check_suffix name ".tmp" then begin
           let repaired =
             repair
             &&
             (try
                Sys.remove (Filename.concat dir name);
                true
              with Sys_error _ -> false)
           in
           Some
             { artifact = name; problem = "stale temp file"; repaired }
         end
         else None)

(* Torn WAL tail: bytes past the last intact frame. *)
let check_wal ~repair dir =
  let path = wal_path dir in
  if not (Sys.file_exists path) then []
  else begin
    let data = Decibel_util.Binio.read_file path in
    let intact = Wal.intact_bytes ~path in
    let total = String.length data in
    if intact >= total then []
    else begin
      let repaired =
        repair
        &&
        (try
           Decibel_util.Binio.write_file path (String.sub data 0 intact);
           true
         with Sys_error _ -> false)
      in
      [
        {
          artifact = "wal.log";
          problem =
            Printf.sprintf "torn tail: %d of %d bytes intact" intact total;
          repaired;
        };
      ]
    end
  end

(* Interrupted maintenance: the maint.jsonl intent log records every
   compaction / materialization / GC from [Begin] to a terminal
   status.  A non-terminal task means the process died mid-rewrite;
   the checkpoint manifest decides which side won (new files all
   referenced -> the swap committed, finish by reclaiming old files;
   otherwise -> roll back by deleting the orphaned rewrite output).
   Report-only unless [repair]. *)
let check_maint ~repair ?pool dir =
  let module J = Decibel_maint.Journal in
  if J.pending (J.load dir) = [] then ([], [])
  else begin
    match Database.reopen_checkpoint ?pool ~dir () with
    | exception _ ->
        ( [
            {
              artifact = Filename.basename (J.path dir);
              problem =
                "pending maintenance task, but the checkpoint is unreadable";
              repaired = false;
            };
          ],
          [] )
    | db ->
        let resolutions =
          Fun.protect
            ~finally:(fun () -> Database.close db)
            (fun () -> Database.resolve_maintenance ~dry_run:(not repair) db)
        in
        let fixes =
          List.map
            (fun (r : Database.maint_resolution) ->
              {
                mf_kind = r.Database.mr_kind;
                mf_target = r.Database.mr_target;
                mf_action =
                  (if not repair then "pending"
                   else
                     match r.Database.mr_action with
                     | `Finished -> "finished"
                     | `Rolled_back -> "rolled_back");
                mf_removed = r.Database.mr_removed;
              })
            resolutions
        in
        let findings =
          List.map
            (fun (r : Database.maint_resolution) ->
              {
                artifact = Filename.basename (J.path dir);
                problem =
                  Printf.sprintf "interrupted %s of %s (%s%s)"
                    r.Database.mr_kind
                    (if r.Database.mr_target = "" then "store"
                     else r.Database.mr_target)
                    (match r.Database.mr_action with
                    | `Finished -> "swap committed: reclaim old files"
                    | `Rolled_back -> "swap not committed: roll back")
                    (match r.Database.mr_removed with
                    | [] -> ""
                    | fs -> "; orphans: " ^ String.concat " " fs);
                repaired = repair;
              })
            resolutions
        in
        (findings, fixes)
  end

(* Engine-side checks: open the last checkpoint read-only and run the
   engine's own verify (manifest trailer, record checksums, locator
   cross-references). *)
let check_engine ?pool dir =
  match Database.reopen_checkpoint ?pool ~dir () with
  | exception Decibel_util.Binio.Corrupt msg ->
      ( None,
        [ { artifact = "manifest"; problem = msg; repaired = false } ] )
  | exception Types.Engine_error msg ->
      (None, [ { artifact = dir; problem = msg; repaired = false } ])
  | db ->
      let scheme = Database.scheme_of db in
      let findings =
        List.map
          (fun (artifact, problem) -> { artifact; problem; repaired = false })
          (Database.verify db)
      in
      Database.close db;
      (Some scheme, findings)

(* Format upgrade: reopen the checkpoint and rewrite any v1 segments
   as columnar v2 in place (row order preserved, so every persisted
   locator stays valid).  Only attempted on a repository whose
   checkpoint verifies clean — migrating corrupt data would launder
   the corruption into a fresh file. *)
let migrate_repo ?pool dir =
  match Database.reopen_checkpoint ?pool ~dir () with
  | exception Decibel_util.Binio.Corrupt msg ->
      [
        {
          artifact = "manifest";
          problem = "cannot migrate: " ^ msg;
          repaired = false;
        };
      ]
  | exception Types.Engine_error msg ->
      [
        { artifact = dir; problem = "cannot migrate: " ^ msg; repaired = false };
      ]
  | db ->
      Fun.protect
        ~finally:(fun () -> Database.close db)
        (fun () ->
          let before = Database.format_version db in
          if before >= 2 then [] (* already v2: nothing to do *)
          else if Database.verify db <> [] then
            [
              {
                artifact = dir;
                problem = "cannot migrate: checkpoint has integrity errors";
                repaired = false;
              };
            ]
          else begin
            Database.migrate db;
            [
              {
                artifact = dir;
                problem = "segment format v1 (pre-columnar)";
                repaired = true;
              };
            ]
          end)

let run ?(repair = false) ?(migrate = false) ?pool ~dir () =
  Obs.incr c_runs;
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    {
      dir;
      scheme = None;
      findings =
        [ { artifact = dir; problem = "no such directory"; repaired = false } ];
      maint = [];
    }
  else begin
    let tmp = check_tmp_files ~repair dir in
    let wal = check_wal ~repair dir in
    (* resolve interrupted maintenance before the engine check so a
       repaired repository verifies against its settled file set *)
    let mfind, maint = check_maint ~repair ?pool dir in
    let scheme, engine = check_engine ?pool dir in
    let migration = if migrate then migrate_repo ?pool dir else [] in
    let findings = tmp @ wal @ mfind @ engine @ migration in
    Obs.add c_findings (List.length findings);
    if findings <> [] then
      Obs.event ~level:Obs.Warn ~comp:"fsck"
        (Printf.sprintf "%s: %d finding(s)" dir (List.length findings));
    { dir; scheme; findings; maint }
  end

let to_text r =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "fsck %s (%s)\n" r.dir
    (Option.value ~default:"scheme undetected" r.scheme);
  if clean r then pf "  clean: no errors found\n"
  else
    List.iter
      (fun f ->
        pf "  %s: %s%s\n" f.artifact f.problem
          (if f.repaired then "  [repaired]" else ""))
      r.findings;
  List.iter
    (fun m ->
      pf "  maintenance %s of %s: %s%s\n" m.mf_kind
        (if m.mf_target = "" then "store" else m.mf_target)
        m.mf_action
        (match m.mf_removed with
        | [] -> ""
        | fs -> "  (removed " ^ String.concat " " fs ^ ")"))
    r.maint;
  Buffer.contents buf

let to_json r =
  let esc = Obs.json_escape in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"dir\":\"%s\",\"scheme\":%s,\"clean\":%b,\"findings\":["
       (esc r.dir)
       (match r.scheme with
       | Some s -> Printf.sprintf "\"%s\"" (esc s)
       | None -> "null")
       (clean r));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"artifact\":\"%s\",\"problem\":\"%s\",\"repaired\":%b}"
           (esc f.artifact) (esc f.problem) f.repaired))
    r.findings;
  Buffer.add_string buf "],\"maint\":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"kind\":\"%s\",\"target\":\"%s\",\"action\":\"%s\",\"removed\":[%s]}"
           (esc m.mf_kind) (esc m.mf_target) (esc m.mf_action)
           (String.concat ","
              (List.map (fun f -> Printf.sprintf "\"%s\"" (esc f)) m.mf_removed))))
    r.maint;
  Buffer.add_string buf "]}";
  Buffer.contents buf
