(** Write-ahead logging of versioning operations.

    The paper notes that fault tolerance "can be done by employing
    standard write-ahead logging techniques on writes" (§2.1) and
    leaves it to future work; this module supplies it.  The log records
    *logical* operations (insert/update/delete/commit/branch/merge), so
    one implementation covers every storage scheme: after a crash, the
    engine reloads its last checkpoint (the manifest written by flush)
    and the tail of the log is replayed through the ordinary engine
    operations.

    Entries are framed as [u32 length][u32 checksum][payload] and the
    payload checksummed with FNV-1a; replay stops at the first frame
    that is truncated or fails its checksum, which is exactly the torn
    tail a crash mid-append leaves behind.  A checkpoint truncates the
    log.

    Every payload begins with a varint log-sequence number.  LSNs are
    monotonic across checkpoints (a reset truncates the file but never
    rewinds the counter), and each engine persists in its manifest the
    LSN of the last entry its checkpoint reflects, so recovery replays
    exactly the entries beyond the checkpoint — replaying an already-
    checkpointed operation would double-apply it (duplicate keys,
    spurious versions).  Appends and syncs run through the
    {!Decibel_fault.Failpoint} seam (sites ["wal.append"] — tearable —
    ["wal.sync"], ["wal.checkpoint"]); syncs retry on transient
    failures. *)

open Decibel_util
open Decibel_storage
open Types
module Obs = Decibel_obs.Obs
module Failpoint = Decibel_fault.Failpoint
module Retry = Decibel_fault.Retry

(* wal.* registry counters: log volume and durability cost *)
let c_records = Obs.counter "wal.records"
let c_bytes = Obs.counter "wal.bytes"
let c_fsyncs = Obs.counter "wal.fsyncs"
let c_resets = Obs.counter "wal.resets"

type entry =
  | W_insert of branch_id * Tuple.t
  | W_update of branch_id * Tuple.t
  | W_delete of branch_id * Value.t
  | W_commit of branch_id * string
  | W_branch of string * version_id
  | W_merge of branch_id * branch_id * merge_policy * string
  | W_retire of branch_id

type t = {
  path : string;
  mutable oc : out_channel;
  mutable entries : int; (* entries appended since last checkpoint *)
  mutable next_lsn : int; (* monotonic, survives resets *)
}

(* FNV-1a, 32-bit.  The product of a 32-bit hash and the 25-bit prime
   stays under 2^57, so it is exact in OCaml's 63-bit native ints; the
   multiply is hoisted into a local and masked back to 32 bits in a
   separate step to keep the spec shape visible (hash ^= byte;
   hash *= prime; hash &= 2^32-1).  Pinned against the published test
   vectors in the unit tests. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      let mixed = (!h lxor Char.code c) * 0x01000193 in
      h := mixed land 0xFFFFFFFF)
    s;
  !h

let policy_tag = function Ours -> 0 | Theirs -> 1 | Three_way -> 2

let policy_of_tag = function
  | 0 -> Ours
  | 1 -> Theirs
  | 2 -> Three_way
  | n -> raise (Binio.Corrupt (Printf.sprintf "Wal: bad policy %d" n))

let encode_entry schema e =
  let buf = Buffer.create 64 in
  (match e with
  | W_insert (b, tuple) ->
      Binio.write_u8 buf 0;
      Binio.write_varint buf b;
      Tuple.encode_into schema buf tuple
  | W_update (b, tuple) ->
      Binio.write_u8 buf 1;
      Binio.write_varint buf b;
      Tuple.encode_into schema buf tuple
  | W_delete (b, key) ->
      Binio.write_u8 buf 2;
      Binio.write_varint buf b;
      Value.encode buf key
  | W_commit (b, message) ->
      Binio.write_u8 buf 3;
      Binio.write_varint buf b;
      Binio.write_string buf message
  | W_branch (name, from) ->
      Binio.write_u8 buf 4;
      Binio.write_string buf name;
      Binio.write_varint buf from
  | W_merge (into, from, policy, message) ->
      Binio.write_u8 buf 5;
      Binio.write_varint buf into;
      Binio.write_varint buf from;
      Binio.write_u8 buf (policy_tag policy);
      Binio.write_string buf message
  | W_retire b ->
      Binio.write_u8 buf 6;
      Binio.write_varint buf b);
  Buffer.contents buf

let decode_entry schema s =
  let pos = ref 0 in
  let e =
    match Binio.read_u8 s pos with
    | 0 ->
        let b = Binio.read_varint s pos in
        W_insert (b, Tuple.decode schema s pos)
    | 1 ->
        let b = Binio.read_varint s pos in
        W_update (b, Tuple.decode schema s pos)
    | 2 ->
        let b = Binio.read_varint s pos in
        W_delete (b, Value.decode s pos)
    | 3 ->
        let b = Binio.read_varint s pos in
        W_commit (b, Binio.read_string s pos)
    | 4 ->
        let name = Binio.read_string s pos in
        W_branch (name, Binio.read_varint s pos)
    | 5 ->
        let into = Binio.read_varint s pos in
        let from = Binio.read_varint s pos in
        let policy = policy_of_tag (Binio.read_u8 s pos) in
        W_merge (into, from, policy, Binio.read_string s pos)
    | 6 -> W_retire (Binio.read_varint s pos)
    | n -> raise (Binio.Corrupt (Printf.sprintf "Wal: bad entry tag %d" n))
  in
  if !pos <> String.length s then
    raise (Binio.Corrupt "Wal: trailing bytes in entry");
  e

(* Walk the raw frames of a log image without decoding entries (the
   LSN is schema-independent).  Returns the intact (lsn, entry bytes)
   frames in file order and the byte length of the intact prefix; a
   truncated or corrupt tail ends the walk silently (that is the crash
   case being recovered from). *)
let scan_frames data =
  let n = String.length data in
  let pos = ref 0 in
  let acc = ref [] in
  (try
     while !pos + 8 <= n do
       let p = ref !pos in
       let len = Binio.read_u32 data p in
       let sum = Binio.read_u32 data p in
       if !p + len > n then raise Exit;
       let payload = String.sub data !p len in
       if fnv1a payload <> sum then raise Exit;
       let q = ref 0 in
       let lsn = Binio.read_varint payload q in
       acc := (lsn, String.sub payload !q (len - !q)) :: !acc;
       pos := !p + len
     done
   with Exit | Binio.Corrupt _ -> ());
  (List.rev !acc, !pos)

let open_log ?(start_lsn = 1) ~path () =
  (* resume numbering past both the caller's floor (the checkpoint
     marker) and anything already in the file *)
  let next_lsn =
    if Sys.file_exists path then
      let frames, _ = scan_frames (Binio.read_file path) in
      List.fold_left (fun m (lsn, _) -> max m (lsn + 1)) start_lsn frames
    else start_lsn
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { path; oc; entries = 0; next_lsn }

let append t schema entry =
  let lsn = t.next_lsn in
  let payload =
    let buf = Buffer.create 64 in
    Binio.write_varint buf lsn;
    Buffer.add_string buf (encode_entry schema entry);
    Buffer.contents buf
  in
  let buf = Buffer.create (String.length payload + 8) in
  Binio.write_u32 buf (String.length payload);
  Binio.write_u32 buf (fnv1a payload);
  Buffer.add_string buf payload;
  Failpoint.guard_write "wal.append" (Buffer.contents buf)
    (output_string t.oc);
  Retry.with_retries ~site:"wal.sync" (fun () ->
      Failpoint.hit "wal.sync";
      flush t.oc);
  t.next_lsn <- lsn + 1;
  t.entries <- t.entries + 1;
  Obs.incr c_records;
  Obs.add c_bytes (String.length payload + 8);
  Obs.Prof.add Obs.Prof.Wal_bytes (String.length payload + 8);
  Obs.incr c_fsyncs;
  lsn

let read_frames ~path schema =
  if not (Sys.file_exists path) then []
  else begin
    let frames, _ = scan_frames (Binio.read_file path) in
    let acc = ref [] in
    (try
       List.iter
         (fun (lsn, s) -> acc := (lsn, decode_entry schema s) :: !acc)
         frames
     with Binio.Corrupt _ -> ());
    List.rev !acc
  end

let read_entries ~path schema = List.map snd (read_frames ~path schema)

let intact_bytes ~path =
  if not (Sys.file_exists path) then 0
  else snd (scan_frames (Binio.read_file path))

(* Checkpoint: everything up to now is reflected in the engine's
   durable state, so the log restarts empty.  The LSN counter is NOT
   rewound — markers persisted by earlier checkpoints stay comparable
   with every future entry. *)
let reset t =
  Failpoint.hit "wal.checkpoint";
  Obs.incr c_resets;
  close_out_noerr t.oc;
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 t.path in
  t.oc <- oc;
  t.entries <- 0

let pending t = t.entries
let next_lsn t = t.next_lsn

let close t = close_out_noerr t.oc
