(** The versioned storage engine interface.

    All three physical representations (tuple-first, version-first,
    hybrid — paper §3) implement this signature, as do the reference
    model used by the test suite and the git-like baseline's adapter.
    The benchmark, query layer, examples and CLI are written against it,
    so schemes are interchangeable.

    Semantics (paper §2.2.3):
    - Modifications apply to a branch's working head and become a
      checkable version only at {!S.commit}.
    - Branches are created from any committed version.
    - A version is immutable; [scan_version] of a commit returns the
      same records forever.
    - [diff] and [multi_scan] compare current branch heads (the working
      copies); [scan_version] reads historical commits.

    Cancellation: the long-running operations (scans, diff, merge)
    take an optional {!Decibel_governor.Governor.Ctx.t} and poll it
    cooperatively — at chunk boundaries of their parallel fan-out and
    on a stride inside serial decode loops — raising
    [Governor.Cancelled] / [Deadline_exceeded] / [Budget_exceeded]
    from a read path only.  [merge] polls during its read phase
    (collecting both sides' changes) and never once it has begun
    installing decisions, so an abandoned merge leaves the store
    exactly as it was. *)

open Decibel_storage
open Types

(** What a maintenance task does to the physical layout. *)
type maint_kind =
  | M_compact  (** rewrite a fragmented segment keeping only referenced rows *)
  | M_materialize  (** collapse a version-first delta chain into one segment *)
  | M_gc  (** reclaim dead heap space (whole-store rewrite for tuple-first) *)

(** A planned, not-yet-executed maintenance task.  [plan_maintenance]
    is pure: it inspects state and captures closures, touching no
    files.  The executor ([Database.run_maintenance]) then drives the
    crash-safe protocol: journal Begin, [mp_apply] (build every file
    in [mp_new_files] and swap the in-memory state as its very last
    step — on exception it must remove its partial new files and leave
    the in-memory state untouched), fingerprint check, manifest commit
    via the engine [flush], journal Apply, [mp_cleanup] (invalidate
    buffer-pool pages and unlink [mp_old_files]), journal Done. *)
type maint_plan = {
  mp_kind : maint_kind;
  mp_target : string;  (** branch name or segment file being rewritten *)
  mp_new_files : string list;  (** basenames the task will create *)
  mp_old_files : string list;
      (** basenames made obsolete once the manifest commits; recovery
          may unlink any that survive a crash after journal Apply *)
  mp_bytes_before : int;  (** on-disk bytes the rewritten artifacts held *)
  mp_apply : unit -> unit;
  mp_cleanup : unit -> unit;
}

module type S = sig
  type t

  val scheme : string
  (** Short name for reports: ["tuple-first"], ["version-first"],
      ["hybrid"], ... *)

  val create :
    format:int ->
    compress:bool ->
    dir:string ->
    pool:Buffer_pool.t ->
    schema:Schema.t ->
    t
  (** Initialize a repository in [dir] (created if absent): the root
      version (empty dataset) on the master branch.  The paper's [init]
      operation (§2.2.3).  [dir] should be empty or absent; existing
      repository files are truncated.

      [format] selects the segment layout: [1] is the original
      row-per-record heap, [2] the columnar block layout of
      {!Decibel_storage.Col_segment} (the default everywhere above this
      interface).  Raises {!Types.Engine_error} on any other value.

      [compress] stores record payloads LZ77-compressed — the paper's
      suggested mitigation for the storage blowup of whole-record
      copies on table-wise updates (§5.5), trading materialization
      (decode) cost for space.  Default off, as in the paper. *)

  val open_existing : dir:string -> pool:Buffer_pool.t -> t
  (** Reopen a repository persisted by {!S.flush} or {!S.close}.
      Raises {!Types.Engine_error} if [dir] holds no repository of this
      scheme. *)

  val schema : t -> Schema.t
  val graph : t -> Decibel_graph.Version_graph.t

  (** {1 Version control} *)

  val create_branch : t -> name:string -> from:version_id -> branch_id
  (** New branch whose initial contents are version [from].  Raises
      {!Types.Engine_error} if the name is taken. *)

  val commit : t -> branch_id -> message:string -> version_id
  (** Snapshot the branch's working state as a new version. *)

  val merge :
    ?ctx:Decibel_governor.Governor.Ctx.t ->
    t ->
    into:branch_id ->
    from:branch_id ->
    policy:merge_policy ->
    message:string ->
    merge_result
  (** Merge [from]'s head state into [into]; the merged state becomes a
      new merge commit at the head of [into] (paper §2.2.3 “Merge”,
      with the merged version made the new head of the destination). *)

  (** {1 Data modification (working head of a branch)} *)

  val insert : t -> branch_id -> Tuple.t -> unit
  (** Raises {!Types.Engine_error} if the key already exists in the
      branch or the tuple does not match the schema. *)

  val update : t -> branch_id -> Tuple.t -> unit
  (** Replace the record with the tuple's key.  Raises
      {!Types.Engine_error} if the key is absent. *)

  val delete : t -> branch_id -> Value.t -> unit
  (** Raises {!Types.Engine_error} if the key is absent. *)

  val lookup : t -> branch_id -> Value.t -> Tuple.t option
  (** Point read by primary key in the working head. *)

  (** {1 Scans} *)

  val scan :
    ?ctx:Decibel_governor.Governor.Ctx.t ->
    t ->
    branch_id ->
    (Tuple.t -> unit) ->
    unit
  (** All live records of the branch's working head (Q1). *)

  val scan_filtered :
    ?ctx:Decibel_governor.Governor.Ctx.t ->
    t ->
    branch_id ->
    preds:Col_pred.t list ->
    (Tuple.t -> unit) ->
    unit
  (** [scan] restricted to records satisfying every predicate.  On
      format-v2 segments the predicates are evaluated on decoded column
      batches — below tuple materialization, and below decompression
      for blocks the branch bitmap rules out; engines without a
      columnar path apply {!Col_pred.eval_tuple} per record. *)

  val scan_version :
    ?ctx:Decibel_governor.Governor.Ctx.t ->
    t ->
    version_id ->
    (Tuple.t -> unit) ->
    unit
  (** All records of a committed version (checkout + scan). *)

  val multi_scan :
    ?ctx:Decibel_governor.Governor.Ctx.t ->
    t ->
    branch_id list ->
    (annotated -> unit) ->
    unit
  (** Records live in any of the given branch heads, each emitted once
      per physical record with its branch annotations (Q4). *)

  val diff :
    ?ctx:Decibel_governor.Governor.Ctx.t ->
    t ->
    branch_id ->
    branch_id ->
    pos:(Tuple.t -> unit) ->
    neg:(Tuple.t -> unit) ->
    unit
  (** Content difference of two branch heads: [pos] receives records
      live in the first branch whose key is absent or whose fields
      differ in the second; [neg] the converse (Q2 runs [pos] only). *)

  (** {1 Introspection} *)

  val format_version : t -> int
  (** Segment layout version of the open repository: [1] (row heap) or
      [2] (columnar blocks). *)

  val migrate : t -> unit
  (** Rewrite format-v1 segments as v2 in place, row order preserved
      (so bitmaps, commit histories and row locators stay valid), and
      persist a v2 manifest.  No-op on v2 repositories.  The engine
      half of [fsck --migrate]. *)

  val dataset_bytes : t -> int
  (** Bytes of record data on disk (heap/segment files). *)

  val commit_meta_bytes : t -> int
  (** Bytes of commit metadata (compressed bitmap histories or commit
      maps) — the paper's “pack file size” column in Table 2. *)

  val storage_report : t -> Decibel_obs.Report.engine_part
  (** The storage-scheme-specific slice of the introspection report:
      per-branch live/dead tuple counts, bitmap density and delta-chain
      stats, per-segment occupancy/fragmentation, and commit-history
      totals.  Walks in-memory structures (and, for segment schemes,
      record headers); never mutates the store.  [Database] composes
      this with graph and buffer-pool facts into a full
      {!Decibel_obs.Report.t}. *)

  (** {1 Maintenance} *)

  val plan_maintenance :
    t -> kind:maint_kind -> target:string -> maint_plan option
  (** Plan one maintenance task against the current in-memory state,
      or [None] when the task is inapplicable (unknown target, nothing
      to gain, unsupported kind for this scheme).  Pure: no files are
      touched until the returned plan's [mp_apply] runs.  The caller
      must hold off concurrent writers for the whole
      plan-apply-commit-cleanup window (engines are not internally
      synchronized). *)

  val referenced_files : t -> string list
  (** Basenames of every data file the current in-memory state (i.e.
      the manifest that [flush] would write) references.  Recovery
      uses this to decide whether an interrupted maintenance task's
      new files made it into the committed manifest. *)

  (** {1 Fault tolerance} *)

  val wal_marker : t -> int
  (** Log-sequence number of the last write-ahead-log entry reflected
      in this state (0 before any logged operation).  Persisted inside
      the manifest by {!flush}, so the checkpoint and its log position
      are linked atomically; recovery replays only entries beyond it. *)

  val set_wal_marker : t -> int -> unit
  (** Record the LSN of an operation just applied; durable at the next
      {!flush}. *)

  val verify : t -> (string * string) list
  (** Validate on-disk artifacts: manifest trailer checksum, per-record
      heap/segment checksums, and cross-references from commit locators
      into the version graph.  Returns [(artifact, reason)] per
      problem; empty means clean.  Read-only (fsck's engine half). *)

  val crash : t -> unit
  (** Crash simulation for the torture harness: release file
      descriptors {e without} flushing buffered appends or writing the
      manifest, leaving on disk exactly what previous flushes made
      durable.  The state is unusable afterwards. *)

  val flush : t -> unit
  val close : t -> unit
end
