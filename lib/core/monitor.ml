(* The monitoring endpoint behind `decibel serve-metrics`.  Lives in
   the core library so the CLI and the loopback-socket tests exercise
   the same handler. *)

module Obs = Decibel_obs.Obs
module Report = Decibel_obs.Report
module Prometheus = Decibel_obs.Prometheus
module Http = Decibel_obs.Http

let handler db ~meth ~path =
  if meth <> "GET" then Http.text ~status:405 "method not allowed\n"
  else
    match path with
    | "/" ->
        Http.text
          "decibel metrics endpoint\nroutes: /metrics /events /report\n"
    | "/metrics" ->
        let report = Database.storage_report db in
        {
          Http.status = 200;
          content_type = Prometheus.content_type;
          body =
            Prometheus.render ~extra:(Report.prometheus_samples report) ();
        }
    | "/events" ->
        {
          Http.status = 200;
          content_type = "application/x-ndjson";
          body = Obs.events_json ();
        }
    | "/report" ->
        {
          Http.status = 200;
          content_type = "application/json";
          body = Report.to_json (Database.storage_report db) ^ "\n";
        }
    | _ -> Http.not_found

let serve ?(host = "127.0.0.1") ?(max_requests = 0) ?on_listen ~port db =
  let s = Http.listen ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Http.close s)
    (fun () ->
      (match on_listen with Some f -> f (Http.port s) | None -> ());
      if max_requests <= 0 then Http.serve_forever s (handler db)
      else
        for _ = 1 to max_requests do
          Http.handle_one s (handler db)
        done)
