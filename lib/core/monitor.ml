(* The monitoring endpoint behind `decibel serve-metrics`.  Lives in
   the core library so the CLI and the loopback-socket tests exercise
   the same handler. *)

module Obs = Decibel_obs.Obs
module Report = Decibel_obs.Report
module Prometheus = Decibel_obs.Prometheus
module Http = Decibel_obs.Http
module Governor = Decibel_governor.Governor

let governor_json db =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"admission\":";
  (match Database.governor_stats db with
  | None -> Buffer.add_string buf "null"
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"capacity\":%d,\"in_use\":%d,\"queue_depth\":%d,\"admitted\":%d,\
            \"shed\":%d,\"avg_hold_ms\":%.3f}"
           s.Governor.Admission.capacity s.Governor.Admission.in_use
           s.Governor.Admission.queue_depth s.Governor.Admission.admitted
           s.Governor.Admission.shed s.Governor.Admission.avg_hold_ms));
  Buffer.add_string buf ",\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (Obs.json_escape k) v))
    (Governor.counters ());
  Buffer.add_string buf
    (Printf.sprintf "},\"pinned_bytes\":%d,\"breakers\":["
       (Governor.Ctx.pinned_bytes ()));
  List.iteri
    (fun i (name, br) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"branch\":\"%s\",\"state\":\"%s\",\"consecutive_failures\":%d}"
           (Obs.json_escape name)
           (Governor.Breaker.state_name (Governor.Breaker.state br))
           (Governor.Breaker.consecutive_failures br)))
    (Database.breaker_list db);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

module Workload = Decibel_obs.Workload
module Advisor = Decibel_obs.Advisor
module Watchdog = Decibel_obs.Watchdog

(* /health re-evaluates at most once a second: probes between ticks
   read the sticky status, so a probe storm costs one rule pass. *)
let health_min_interval_s = 1.0

let handler db ~meth ~path ~query =
  if meth <> "GET" then Http.error ~status:405 "method not allowed"
  else
    match path with
    | "/" ->
        Http.text
          "decibel metrics endpoint\n\
           routes: /metrics /events /report /governor /profile /workload \
           /advise /maint /health\n"
    | "/metrics" ->
        let report = Database.storage_report db in
        let extra =
          Report.prometheus_samples report
          @ Workload.prometheus_samples ()
          @ Advisor.prometheus_samples (Database.advise db)
        in
        {
          Http.status = 200;
          content_type = Prometheus.content_type;
          body = Prometheus.render ~extra ();
        }
    | "/events" ->
        (* ?n= limits to the newest n events *)
        {
          Http.status = 200;
          content_type = "application/x-ndjson";
          body = Obs.events_json ?limit:(Http.query_int query "n") ();
        }
    | "/report" ->
        {
          Http.status = 200;
          content_type = "application/json";
          body = Report.to_json (Database.storage_report db) ^ "\n";
        }
    | "/governor" ->
        {
          Http.status = 200;
          content_type = "application/json";
          body = governor_json db;
        }
    | "/profile" ->
        (* ring of the last N request profiles, oldest first; ?n=
           limits to the newest n *)
        {
          Http.status = 200;
          content_type = "application/json";
          body = Obs.Prof.profiles_json ?limit:(Http.query_int query "n") ()
                 ^ "\n";
        }
    | "/workload" -> Http.json (Workload.to_json (Database.workload db) ^ "\n")
    | "/maint" ->
        (* maintenance executor: service state, lifetime counters, and
           any journal task recovery would still have to resolve *)
        let buf = Buffer.create 256 in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"service_running\":%b,\"running_since\":%s,\
              \"tasks_run\":%d,\"tasks_failed\":%d,\
              \"tasks_rolled_back\":%d,\"bytes_reclaimed\":%d,\
              \"consecutive_failures\":%d,\"pending\":["
             (Database.maintenance_running db)
             (Obs.json_float (Obs.gauge_value (Obs.gauge "maint.running_since")))
             (Obs.value_of "maint.tasks_run")
             (Obs.value_of "maint.tasks_failed")
             (Obs.value_of "maint.tasks_rolled_back")
             (Obs.value_of "maint.bytes_reclaimed")
             (int_of_float
                (Obs.gauge_value (Obs.gauge "maint.consecutive_failures"))));
        List.iteri
          (fun i (r : Database.maint_resolution) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf
                 "{\"id\":%d,\"kind\":\"%s\",\"target\":\"%s\",\"action\":\"%s\"}"
                 r.Database.mr_id
                 (Obs.json_escape r.Database.mr_kind)
                 (Obs.json_escape r.Database.mr_target)
                 (match r.Database.mr_action with
                 | `Finished -> "finish"
                 | `Rolled_back -> "roll_back")))
          (Database.resolve_maintenance ~dry_run:true db);
        Buffer.add_string buf "]}\n";
        Http.json (Buffer.contents buf)
    | "/advise" -> Http.json (Advisor.to_json (Database.advise db) ^ "\n")
    | "/health" ->
        let st = Database.watchdog_status db in
        let st =
          if Unix.gettimeofday () -. st.Watchdog.st_time
             >= health_min_interval_s
          then Database.health_tick db
          else st
        in
        (* critical maps to 503 so load balancers can act on status
           alone; warn stays 200 (degraded but serving) *)
        let status =
          match st.Watchdog.st_level with
          | Watchdog.L_ok | Watchdog.L_warn -> 200
          | Watchdog.L_critical -> 503
        in
        Http.json ~status (Watchdog.to_json st ^ "\n")
    | _ -> Http.not_found ~path

let serve ?(host = "127.0.0.1") ?(max_requests = 0) ?on_listen
    ?(handle_signals = false) ~port db =
  let s = Http.listen ~host ~port () in
  if handle_signals then begin
    (* long-running `decibel serve-metrics` must die cleanly on ctrl-c
       or a supervisor's TERM: close the listener so the port frees
       immediately, then exit 0 so CI never records a leaked server *)
    let quit _ =
      (try Http.close s with _ -> ());
      Stdlib.exit 0
    in
    List.iter
      (fun signal ->
        try Sys.set_signal signal (Sys.Signal_handle quit)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end;
  Fun.protect
    ~finally:(fun () -> Http.close s)
    (fun () ->
      (match on_listen with Some f -> f (Http.port s) | None -> ());
      if max_requests <= 0 then Http.serve_forever s (handler db)
      else
        for _ = 1 to max_requests do
          Http.handle_one s (handler db)
        done)
