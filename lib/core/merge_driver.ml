(** Engine-independent merge decisions.

    All three schemes detect merge candidates the same way at the
    logical level (paper §3.2/§3.3/§3.4): compute the set of keys
    changed in each branch since the lowest common ancestor, join the
    two sets on primary key, and resolve keys changed on both sides by
    policy — tuple-level precedence for two-way merges, field-level
    three-way comparison against the LCA copy otherwise.  What differs
    per engine is how the change sets are *found* (bitmap XOR against a
    restored LCA snapshot vs. segment-file suffixes) and how the chosen
    states are *installed*; engines supply those parts and this module
    supplies the shared decision logic. *)

open Decibel_storage
open Types
module Obs = Decibel_obs.Obs

(* merge.* registry counters, shared by all engines (the decision
   logic is engine-independent, so the metrics are too) *)
let c_keys_joined = Obs.counter "merge.keys_joined"
let c_conflicts = Obs.counter "merge.conflicts_detected"
let c_resolved = Obs.counter "merge.conflicts_resolved"

(** What one branch did to a key since the LCA. *)
type side_change = {
  state : Tuple.t option;  (** Live state in the branch ([None] = deleted). *)
  base : Tuple.t option;
      (** The LCA's copy of the key, when the engine had it at hand
          ([None] also covers keys inserted after the LCA). *)
}

(** Where a decided final state originated — engines use this to avoid
    physically rewriting records that are already in place. *)
type origin = O_ours | O_theirs | O_merged

type decision = {
  d_key : Value.t;
  final : Tuple.t option;
  origin : origin;
  changed_in : [ `Ours | `Theirs | `Both ];
  d_conflict : conflict option;
}

type stats = { n_ours : int; n_theirs : int; n_both : int }

let opt_tuple_equal a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> Tuple.equal x y
  | None, Some _ | Some _, None -> false

(* Field-level resolution when both sides touched overlapping fields:
   non-conflicting fields take whichever side changed them; conflicting
   fields take the precedence side (paper §2.2.3: one branch "is the
   authoritative version for each conflicting field"). *)
let resolve_fields ~base ~winner ~loser =
  let n = Array.length base in
  let out = Array.copy base in
  for i = 0 to n - 1 do
    let w_changed = not (Value.equal winner.(i) base.(i)) in
    let l_changed = not (Value.equal loser.(i) base.(i)) in
    out.(i) <-
      (match w_changed, l_changed with
      | false, false -> base.(i)
      | true, _ -> winner.(i)
      | false, true -> loser.(i))
  done;
  out

let decide_key policy key (o : side_change) (t : side_change) =
  let conflict ?(fields = []) resolved =
    Some
      {
        key;
        base = (match o.base with Some _ as b -> b | None -> t.base);
        ours = o.state;
        theirs = t.state;
        fields;
        resolved;
      }
  in
  if opt_tuple_equal o.state t.state then
    (* both sides converged on the same state: not a conflict *)
    { d_key = key; final = o.state; origin = O_ours; changed_in = `Both;
      d_conflict = None }
  else
    match policy with
    | Ours ->
        { d_key = key; final = o.state; origin = O_ours; changed_in = `Both;
          d_conflict = conflict o.state }
    | Theirs ->
        { d_key = key; final = t.state; origin = O_theirs;
          changed_in = `Both; d_conflict = conflict t.state }
    | Three_way -> (
        let base = match o.base with Some _ as b -> b | None -> t.base in
        match o.state, t.state, base with
        | Some ours_t, Some theirs_t, Some base_t -> (
            match Tuple.merge_fields ~base:(Some base_t) ~ours:ours_t
                    ~theirs:theirs_t with
            | Ok merged ->
                let origin =
                  if Tuple.equal merged ours_t then O_ours
                  else if Tuple.equal merged theirs_t then O_theirs
                  else O_merged
                in
                { d_key = key; final = Some merged; origin;
                  changed_in = `Both; d_conflict = None }
            | Error fields ->
                let resolved =
                  resolve_fields ~base:base_t ~winner:ours_t ~loser:theirs_t
                in
                let origin =
                  if Tuple.equal resolved ours_t then O_ours else O_merged
                in
                { d_key = key; final = Some resolved; origin;
                  changed_in = `Both;
                  d_conflict = conflict ~fields (Some resolved) })
        | Some _, Some _, None ->
            (* independently inserted with differing fields: whole-record
               conflict, destination precedence *)
            { d_key = key; final = o.state; origin = O_ours;
              changed_in = `Both; d_conflict = conflict o.state }
        | None, Some _, _ | Some _, None, _ ->
            (* delete vs. modify is always a conflict (§2.2.3);
               destination precedence *)
            { d_key = key; final = o.state; origin = O_ours;
              changed_in = `Both; d_conflict = conflict o.state }
        | None, None, _ -> assert false (* states equal, handled above *))

(* The pipelined hash join of the paper's merge (§3.2): iterate one
   change table probing the other; keys present in both go through
   conflict handling, the rest pass straight through. *)
let decide ~policy ~(ours : (Value.t, side_change) Hashtbl.t)
    ~(theirs : (Value.t, side_change) Hashtbl.t) =
  let decisions = ref [] in
  let n_ours = ref 0 and n_theirs = ref 0 and n_both = ref 0 in
  Hashtbl.iter
    (fun key (o : side_change) ->
      match Hashtbl.find_opt theirs key with
      | None ->
          incr n_ours;
          decisions :=
            { d_key = key; final = o.state; origin = O_ours;
              changed_in = `Ours; d_conflict = None }
            :: !decisions
      | Some t ->
          incr n_both;
          Obs.incr c_keys_joined;
          let d = decide_key policy key o t in
          (match d.d_conflict with
          | None -> ()
          | Some c ->
              Obs.incr c_conflicts;
              if c.resolved <> None then Obs.incr c_resolved);
          decisions := d :: !decisions)
    ours;
  Hashtbl.iter
    (fun key (t : side_change) ->
      if not (Hashtbl.mem ours key) then begin
        incr n_theirs;
        decisions :=
          { d_key = key; final = t.state; origin = O_theirs;
            changed_in = `Theirs; d_conflict = None }
          :: !decisions
      end)
    theirs;
  ( !decisions,
    { n_ours = !n_ours; n_theirs = !n_theirs; n_both = !n_both } )

let conflicts_of decisions =
  List.filter_map (fun d -> d.d_conflict) decisions
