(** Offline repository checker behind [decibel fsck].

    Detects manifest-trailer checksum failures, stale temp files from
    interrupted atomic renames, torn write-ahead-log tails, per-record
    heap/segment checksum failures and dangling commit locators.  With
    [~repair:true] the mechanically safe problems (stale temp files,
    torn WAL tail) are fixed in place; checkpoint corruption is only
    ever reported. *)

type finding = {
  artifact : string;  (** file or object the problem is in *)
  problem : string;
  repaired : bool;
}

type report = {
  dir : string;
  scheme : string option;  (** detected scheme, if a manifest was found *)
  findings : finding list;
}

val run :
  ?repair:bool ->
  ?migrate:bool ->
  ?pool:Decibel_storage.Buffer_pool.t ->
  dir:string ->
  unit ->
  report
(** Check the repository at [dir].  Read-only unless [repair] or
    [migrate] (both default false).  Never raises on a corrupt
    repository — problems become findings.

    With [~migrate:true], a repository still on segment format v1 whose
    checkpoint verifies clean is rewritten to columnar v2 in place (row
    order preserved, all persisted locators stay valid); the upgrade
    appears as a repaired finding.  A corrupt checkpoint is never
    migrated, and a v2 repository is left untouched. *)

val clean : report -> bool
(** No findings at all (repaired ones still count as findings). *)

val to_text : report -> string
val to_json : report -> string
