(** Offline repository checker behind [decibel fsck].

    Detects manifest-trailer checksum failures, stale temp files from
    interrupted atomic renames, torn write-ahead-log tails, per-record
    heap/segment checksum failures and dangling commit locators.  With
    [~repair:true] the mechanically safe problems (stale temp files,
    torn WAL tail, interrupted maintenance tasks) are fixed in place;
    checkpoint corruption is only ever reported.

    An interrupted maintenance task (a non-terminal entry in the
    [maint.jsonl] intent log) is resolved the same way
    {!Database.reopen} would: if the checkpoint manifest references
    every file the rewrite produced, the swap committed and the stale
    old-generation files are reclaimed; otherwise the orphaned rewrite
    output is deleted and the task rolled back. *)

type finding = {
  artifact : string;  (** file or object the problem is in *)
  problem : string;
  repaired : bool;
}

type maint_fix = {
  mf_kind : string;  (** "compact" | "materialize" | "gc" *)
  mf_target : string;
  mf_action : string;
      (** ["finished"] or ["rolled_back"] under [repair];
          ["pending"] when report-only *)
  mf_removed : string list;  (** orphaned rewrite files deleted *)
}

type report = {
  dir : string;
  scheme : string option;  (** detected scheme, if a manifest was found *)
  findings : finding list;
  maint : maint_fix list;  (** interrupted maintenance tasks resolved *)
}

val run :
  ?repair:bool ->
  ?migrate:bool ->
  ?pool:Decibel_storage.Buffer_pool.t ->
  dir:string ->
  unit ->
  report
(** Check the repository at [dir].  Read-only unless [repair] or
    [migrate] (both default false).  Never raises on a corrupt
    repository — problems become findings.

    With [~migrate:true], a repository still on segment format v1 whose
    checkpoint verifies clean is rewritten to columnar v2 in place (row
    order preserved, all persisted locators stay valid); the upgrade
    appears as a repaired finding.  A corrupt checkpoint is never
    migrated, and a v2 repository is left untouched. *)

val clean : report -> bool
(** No findings at all (repaired ones still count as findings). *)

val to_text : report -> string
val to_json : report -> string
