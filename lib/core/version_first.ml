(** Version-first storage (paper §3.3).

    Each branch's modifications are appended to that branch's own head
    segment; a child segment records, for each parent segment, the row
    index of the branch point, so anything the parent writes afterwards
    is invisible to the child.  A branch's contents are the records
    reachable through this chain of segments, newest copy of each
    primary key winning.  Deletes append tombstones because a record
    physically present in an ancestor segment cannot be removed.

    Segments are {!Decibel_storage.Col_segment}s addressed by dense row
    index (format v1 keeps the original byte-offset record heap behind
    the same row interface; format v2 stores columnar blocks).  Branch
    points, commit locators and the key index all speak rows, which
    survive the v1→v2 migration unchanged.

    Scan order: the paper scans segments so that descendants are read
    before ancestors (reverse topological order, §3.3 “Multi-branch
    Scan”), with ties broken by parent precedence; within one segment,
    records are read newest-first.  The first copy of a key seen wins.

    Merges create a fresh head segment whose parents are both merged
    heads.  Keys changed only in the destination branch resolve lazily
    through scan order; keys changed in the source branch (or in both)
    have their decided states materialized into the merge segment so
    they dominate any stale copies in either lineage. *)

open Decibel_util
open Decibel_storage
open Decibel_index
open Types
module Vg = Decibel_graph.Version_graph
module Obs = Decibel_obs.Obs
module Workload = Decibel_obs.Workload
module Par = Decibel_par.Par
module Gctx = Decibel_governor.Governor.Ctx

(* same engine.* names as the other schemes: Obs interns by name, so
   all engines feed the shared counters *)
let c_scan_tuples = Obs.counter "engine.scan.tuples"
let c_scan_pages = Obs.counter "engine.scan.pages"
let c_scan_segments = Obs.counter "engine.scan.segments"
let c_multi_scan_tuples = Obs.counter "engine.multi_scan.tuples"
let c_diff_tuples = Obs.counter "engine.diff.tuples"
let c_commits = Obs.counter "engine.commits"
let c_merges = Obs.counter "engine.merges"
let sp_scan = "version_first.scan"
let sp_scan_filtered = "version_first.scan_filtered"
let sp_scan_version = "version_first.scan_version"
let sp_multi_scan = "version_first.multi_scan"
let sp_diff = "version_first.diff"
let sp_merge = "version_first.merge"
let sp_commit = "version_first.commit"

type segment = {
  seg_id : int;
  seg : Col_segment.t;
  parents : (int * int) list; (* (segment, branch-point row), precedence *)
}

type t = {
  dir : string;
  pool : Buffer_pool.t;
  schema : Schema.t;
  compress : bool;
  mutable format : int; (* segment layout version; migrate flips to 2 *)
  graph : Vg.t;
  segments : segment Vec.t;
  head_seg : int Vec.t; (* branch -> its current head segment *)
  pk : (int * int) Pk_index.t; (* branch -> key -> (segment, row) *)
  commits : (version_id, int * int) Hashtbl.t; (* version -> (seg, upto row) *)
  dirty : (branch_id, bool) Hashtbl.t;
  mutable wal_marker : int; (* last WAL LSN reflected here *)
  mutable closed : bool;
}

let scheme = "version-first"

(* Format-v1 record wire format: [u8 flags][body]; flag bit 0 marks a
   tombstone (body = deleted key, §3.3 “Data Modification”), flag bit 1
   an LZ77-compressed tuple body (§5.5 compression mitigation). *)
let v1_codec ~schema ~compress =
  let encode = function
    | Col_segment.Live tuple ->
        let buf = Buffer.create 64 in
        if compress then begin
          Binio.write_u8 buf 2;
          Buffer.add_string buf (Lz77.compress (Tuple.encode schema tuple))
        end
        else begin
          Binio.write_u8 buf 0;
          Tuple.encode_into schema buf tuple
        end;
        Buffer.contents buf
    | Col_segment.Tombstone key ->
        let buf = Buffer.create 16 in
        Binio.write_u8 buf 1;
        Value.encode buf key;
        Buffer.contents buf
  in
  let decode payload =
    Obs.Prof.add Obs.Prof.Bytes_decoded (String.length payload);
    let pos = ref 0 in
    match Binio.read_u8 payload pos with
    | 0 -> Col_segment.Live (Tuple.decode schema payload pos)
    | 1 -> Col_segment.Tombstone (Value.decode payload pos)
    | 2 ->
        let raw =
          Lz77.decompress (String.sub payload 1 (String.length payload - 1))
        in
        Col_segment.Live (Tuple.decode schema raw (ref 0))
    | f ->
        raise (Binio.Corrupt (Printf.sprintf "version-first: bad flags %d" f))
  in
  { Col_segment.v1_encode = encode; v1_decode = decode }

let record_key schema = function
  | Col_segment.Live tuple -> Tuple.pk schema tuple
  | Col_segment.Tombstone key -> key

let segment t id = Vec.get t.segments id
let seg_dummy = { seg_id = -1; seg = Obj.magic `never_dereferenced; parents = [] }

let seg_file_path dir seg_id =
  Filename.concat dir (Printf.sprintf "seg_%d.dat" seg_id)

let new_segment t parents =
  let seg_id = Vec.length t.segments in
  let path = seg_file_path t.dir seg_id in
  let seg =
    if t.format >= 2 then
      Col_segment.create_v2 ~pool:t.pool ~schema:t.schema ~compress:t.compress
        ~path
    else
      Col_segment.create_v1 ~pool:t.pool ~schema:t.schema ~compress:t.compress
        ~codec:(v1_codec ~schema:t.schema ~compress:t.compress) ~path
  in
  let s = { seg_id; seg; parents } in
  let _ = Vec.push t.segments s in
  s

let create ~format ~compress ~dir ~pool ~schema =
  if format <> 1 && format <> 2 then
    errorf "version-first: unknown segment format v%d" format;
  Fsutil.mkdir_p dir;
  let t =
    {
      dir;
      pool;
      schema;
      compress;
      format;
      graph = Vg.create ();
      (* the dummy fills unused Vec capacity only and is never read;
         its segment handle is a placeholder that no code path touches *)
      segments = Vec.create ~dummy:seg_dummy ();
      head_seg = Vec.create ~dummy:(-1) ();
      pk = Pk_index.create ();
      commits = Hashtbl.create 64;
      dirty = Hashtbl.create 16;
      wal_marker = 0;
      closed = false;
    }
  in
  let s0 = new_segment t [] in
  let _ = Vec.push t.head_seg s0.seg_id in
  let _ = Pk_index.add_branch t.pk ~from:None in
  Hashtbl.replace t.commits Vg.root_version (s0.seg_id, 0);
  t

let schema t = t.schema
let graph t = t.graph
let format_version t = t.format

let is_dirty t b = Hashtbl.find_opt t.dirty b = Some true
let set_dirty t b v = Hashtbl.replace t.dirty b v

(* Scan plan from a root (segment, upto): every reachable segment with
   the maximum branch-point row over all paths, ordered descendants
   before ancestors, ties broken by precedence-DFS discovery order. *)
let plan t seg0 upto0 =
  let upto_tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let disc : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_disc = ref 0 in
  let rec visit seg upto =
    (match Hashtbl.find_opt upto_tbl seg with
    | Some u when u >= upto -> ()
    | _ -> Hashtbl.replace upto_tbl seg upto);
    if not (Hashtbl.mem disc seg) then begin
      Hashtbl.replace disc seg !next_disc;
      incr next_disc;
      (* branch-point rows recorded in parent pointers never change,
         so parents need no re-visit when only [upto] grows *)
      List.iter (fun (p, row) -> visit p row) (segment t seg).parents
    end
  in
  visit seg0 upto0;
  let members = Hashtbl.fold (fun s _ acc -> s :: acc) disc [] in
  (* children-before-parents topological order (Kahn), preferring the
     earliest-discovered ready segment so parent precedence breaks
     ties *)
  let pending : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace pending s 0) members;
  List.iter
    (fun s ->
      List.iter
        (fun (p, _) ->
          match Hashtbl.find_opt pending p with
          | Some n -> Hashtbl.replace pending p (n + 1)
          | None -> ())
        (segment t s).parents)
    members;
  let emitted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  for _ = 1 to List.length members do
    let best =
      List.fold_left
        (fun acc s ->
          if Hashtbl.mem emitted s || Hashtbl.find pending s <> 0 then acc
          else
            match acc with
            | None -> Some s
            | Some b ->
                if Hashtbl.find disc s < Hashtbl.find disc b then Some s
                else acc)
        None members
    in
    match best with
    | None -> failwith "version-first: cyclic segment graph"
    | Some s ->
        Hashtbl.replace emitted s ();
        order := s :: !order;
        List.iter
          (fun (p, _) ->
            match Hashtbl.find_opt pending p with
            | Some n -> Hashtbl.replace pending p (n - 1)
            | None -> ())
          (segment t s).parents
  done;
  List.rev_map (fun s -> (s, Hashtbl.find upto_tbl s)) !order

(* Core lineage scan: emit each key's winning record once, newest copy
   first within a segment, descendants before ancestors across
   segments.  [f] receives the segment, row and record of each winner
   (tombstone winners mean "deleted here"). *)
let scan_winners ?ctx t seg0 upto0 f =
  let seen : (Value.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  let items = plan t seg0 upto0 in
  if Par.available () && List.length items > 1 then
    (* Branch fragments decode in parallel (the expensive part: block
       read + CRC + decode); the first-writer-wins [seen] filter runs
       serially in plan order over the buffered fragments, so winners
       are exactly the serial ones, in the same order. *)
    let items = Array.of_list items in
    Par.parallel_iter_buffered ?ctx ~n:(Array.length items)
      ~produce:(fun i ->
        let poll = Gctx.poller ctx in
        let sid, upto = items.(i) in
        let s = segment t sid in
        (* the buffered fragment decode is the scheme's big transient
           allocation; bill its extent to the operation's budget *)
        Gctx.charge_current (Col_segment.bytes_upto s.seg upto);
        let acc = ref [] in
        Col_segment.iter_rev ~upto s.seg (fun row rv ->
            poll ();
            acc := (sid, row, rv, record_key t.schema rv) :: !acc);
        List.rev !acc)
      ~consume:
        (List.iter (fun (sid, row, rv, key) ->
             if not (Hashtbl.mem seen key) then begin
               Hashtbl.replace seen key ();
               f sid row rv
             end))
      ()
  else
    let poll = Gctx.poller ctx in
    List.iter
      (fun (sid, upto) ->
        let s = segment t sid in
        Col_segment.iter_rev ~upto s.seg (fun row rv ->
            poll ();
            let key = record_key t.schema rv in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              f sid row rv
            end))
      items

let scan_live ?ctx t seg0 upto0 f =
  scan_winners ?ctx t seg0 upto0 (fun sid row rv ->
      match rv with
      | Col_segment.Live tuple -> f sid row tuple
      | Col_segment.Tombstone _ -> ())

let head_loc t b =
  let sid = Vec.get t.head_seg b in
  (sid, Col_segment.rows (segment t sid).seg)

let commit_loc t vid =
  match Hashtbl.find_opt t.commits vid with
  | Some loc -> loc
  | None -> errorf "version-first: version %d has no commit record" vid

(* Workload accounting mirrors the Prof sites: single-branch scans
   report the exact counts also added to the engine.* counters, so
   per-branch totals reconcile with the globals; multi-branch reads
   leave zero-count touches.  [diff] needs no touch of its own — it is
   implemented as two instrumented scans, which already note reads. *)
let wl_table t = Schema.name t.schema
let wl_branch t b = (Vg.branch t.graph b).Vg.name

let wl_touch t b =
  Workload.note_read ~table:(wl_table t) ~branch:(wl_branch t b) ~scanned:0
    ~emitted:0 ~fragments:0 ()

let wl_write t b =
  if Obs.enabled () then
    Workload.note_write ~table:(wl_table t) ~branch:(wl_branch t b) ()

let commit_impl t b ~message =
  let sid, upto = head_loc t b in
  Col_segment.flush (segment t sid).seg;
  let vid = Vg.commit t.graph b ~message in
  Hashtbl.replace t.commits vid (sid, upto);
  set_dirty t b false;
  vid

let commit t b ~message =
  if not (Obs.enabled ()) then commit_impl t b ~message
  else
    Obs.with_span sp_commit (fun () ->
        Obs.incr c_commits;
        wl_write t b;
        commit_impl t b ~message)

let create_branch t ~name ~from =
  let v = Vg.version t.graph from in
  let parent = v.Vg.on_branch in
  let psid, prow = commit_loc t from in
  let nb =
    try Vg.create_branch t.graph ~name ~from
    with Invalid_argument msg -> errorf "version-first: %s" msg
  in
  let s = new_segment t [ (psid, prow) ] in
  let slot = Vec.push t.head_seg s.seg_id in
  assert (slot = nb);
  if Vg.head t.graph parent = from && not (is_dirty t parent) then begin
    let bid = Pk_index.add_branch t.pk ~from:(Some parent) in
    assert (bid = nb)
  end
  else begin
    (* branching from a historical commit: rebuild the key index by
       scanning that commit's lineage *)
    let bid = Pk_index.add_branch t.pk ~from:None in
    assert (bid = nb);
    scan_live t psid prow (fun sid row tuple ->
        Pk_index.set t.pk ~branch:nb (Tuple.pk t.schema tuple) (sid, row))
  end;
  set_dirty t nb false;
  nb

let validate t tuple =
  match Schema.validate t.schema tuple with
  | Ok () -> ()
  | Error msg -> errorf "version-first: %s" msg

let append t b rv =
  let sid = Vec.get t.head_seg b in
  let row = Col_segment.append (segment t sid).seg rv in
  (sid, row)

let insert t b tuple =
  validate t tuple;
  let key = Tuple.pk t.schema tuple in
  if Pk_index.mem t.pk ~branch:b key then
    errorf "version-first: duplicate key %s in branch %d"
      (Value.to_string key) b;
  let loc = append t b (Col_segment.Live tuple) in
  Pk_index.set t.pk ~branch:b key loc;
  set_dirty t b true;
  wl_write t b

let update t b tuple =
  validate t tuple;
  let key = Tuple.pk t.schema tuple in
  if not (Pk_index.mem t.pk ~branch:b key) then
    errorf "version-first: update of absent key %s" (Value.to_string key);
  let loc = append t b (Col_segment.Live tuple) in
  Pk_index.set t.pk ~branch:b key loc;
  set_dirty t b true;
  wl_write t b

let delete t b key =
  if not (Pk_index.mem t.pk ~branch:b key) then
    errorf "version-first: delete of absent key %s" (Value.to_string key);
  let _ = append t b (Col_segment.Tombstone key) in
  Pk_index.remove t.pk ~branch:b key;
  set_dirty t b true;
  wl_write t b

let fetch t (sid, row) =
  match Col_segment.get (segment t sid).seg row with
  | Col_segment.Live tuple -> tuple
  | Col_segment.Tombstone _ ->
      errorf "version-first: key index points at tombstone"

let lookup t b key =
  Option.map (fetch t) (Pk_index.find t.pk ~branch:b key)

(* Pages a lineage scan reads: for each planned (segment, upto) pair,
   the extent up to the branch point, in buffer-pool pages. *)
let account_plan t sid upto =
  let psz = Buffer_pool.page_size t.pool in
  let p = plan t sid upto in
  List.iter
    (fun (s, u) ->
      let bytes = Col_segment.bytes_upto (segment t s).seg u in
      Obs.add c_scan_pages ((bytes + psz - 1) / psz))
    p;
  Obs.add c_scan_segments (List.length p);
  (* the plan's (segment, upto) pairs are exactly the delta fragments
     this lineage scan replays *)
  Obs.Prof.add Obs.Prof.Delta_fragments (List.length p)

let instrumented_scan ?ctx ?on_emitted span t sid upto f =
  Obs.with_span span (fun () ->
      account_plan t sid upto;
      let n = ref 0 in
      scan_live ?ctx t sid upto (fun _ _ tuple ->
          n := !n + 1;
          f tuple);
      Obs.add c_scan_tuples !n;
      Obs.Prof.add Obs.Prof.Tuples_scanned !n;
      Obs.Prof.add Obs.Prof.Tuples_emitted !n;
      match on_emitted with Some g -> g !n | None -> ())

let scan ?ctx t b f =
  let sid, upto = head_loc t b in
  if not (Obs.enabled ()) then
    scan_live ?ctx t sid upto (fun _ _ tuple -> f tuple)
  else
    let table = wl_table t and branch = wl_branch t b in
    let frags = List.length (plan t sid upto) in
    (* ambient context attributes buffer-pool page traffic during the
       lineage walk to this (table, branch) *)
    Workload.with_context ~table ~branch (fun () ->
        instrumented_scan ?ctx
          ~on_emitted:(fun n ->
            Workload.note_read ~table ~branch ~scanned:n ~emitted:n
              ~fragments:frags ())
          sp_scan t sid upto f)

(* Winners must be resolved before predicates apply: filtering below
   the newest-copy-wins dedup would let a stale copy of a key win when
   its head copy fails the predicate.  So version-first evaluates
   predicates row-wise on winning tuples. *)
let scan_filtered ?ctx t b ~preds f =
  let filter tuple = if Col_pred.eval_tuple preds tuple then f tuple in
  if not (Obs.enabled ()) then
    let sid, upto = head_loc t b in
    scan_live ?ctx t sid upto (fun _ _ tuple -> filter tuple)
  else
    Obs.with_span sp_scan_filtered (fun () ->
        let n = ref 0 in
        scan ?ctx t b (fun tuple ->
            if Col_pred.eval_tuple preds tuple then begin
              n := !n + 1;
              f tuple
            end);
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

let scan_version ?ctx t vid f =
  let sid, upto = commit_loc t vid in
  if not (Obs.enabled ()) then
    scan_live ?ctx t sid upto (fun _ _ tuple -> f tuple)
  else instrumented_scan ?ctx sp_scan_version t sid upto f

(* Multi-branch scan, per the paper's two-pass scheme (§3.3): pass one
   records each branch's live (segment, row) pairs in hash tables;
   pass two walks the union of segments in storage order emitting each
   live record once with its branch annotations. *)
let multi_scan_impl ?ctx t branches f =
  let ann : (int * int, branch_id list) Hashtbl.t = Hashtbl.create 4096 in
  let segs : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let sid, upto = head_loc t b in
      scan_live ?ctx t sid upto (fun s row _tuple ->
          Hashtbl.replace segs s ();
          let prev = Option.value ~default:[] (Hashtbl.find_opt ann (s, row)) in
          Hashtbl.replace ann (s, row) (b :: prev)))
    branches;
  let seg_ids =
    List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) segs [])
  in
  (* pass 2: [ann] is read-only from here on, so segments decode in
     parallel; buffered fragments are consumed in sorted segment order,
     matching the serial walk *)
  let annotated_of_segment sid =
    let poll = Gctx.poller ctx in
    let s = segment t sid in
    let acc = ref [] in
    Col_segment.iter s.seg (fun row rv ->
        poll ();
        match Hashtbl.find_opt ann (sid, row) with
        | None -> ()
        | Some bs -> (
            match rv with
            | Col_segment.Live tuple ->
                acc := { tuple; in_branches = List.sort compare bs } :: !acc
            | Col_segment.Tombstone _ ->
                errorf "version-first: annotated tombstone"));
    List.rev !acc
  in
  if Par.available () && List.length seg_ids > 1 then
    let seg_ids = Array.of_list seg_ids in
    Par.parallel_iter_buffered ?ctx ~n:(Array.length seg_ids)
      ~produce:(fun i -> annotated_of_segment seg_ids.(i))
      ~consume:(fun l -> List.iter f l)
      ()
  else List.iter (fun sid -> List.iter f (annotated_of_segment sid)) seg_ids

let multi_scan ?ctx t branches f =
  if not (Obs.enabled ()) then multi_scan_impl ?ctx t branches f
  else
    Obs.with_span sp_multi_scan (fun () ->
        List.iter
          (fun b ->
            let sid, upto = head_loc t b in
            Obs.Prof.add Obs.Prof.Delta_fragments
              (List.length (plan t sid upto));
            wl_touch t b)
          branches;
        let n = ref 0 in
        multi_scan_impl ?ctx t branches (fun mt ->
            n := !n + 1;
            f mt);
        Obs.add c_multi_scan_tuples !n;
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

(* Content diff needs the active records of both branches, which
   version-first can only obtain with full lineage scans — the
   multiple-pass cost the paper reports for Q2 (§5.2). *)
let diff_impl ?ctx t a b ~pos ~neg =
  let in_a : (Value.t, Tuple.t) Hashtbl.t = Hashtbl.create 4096 in
  scan ?ctx t a
    (fun tuple -> Hashtbl.replace in_a (Tuple.pk t.schema tuple) tuple);
  scan ?ctx t b (fun tuple ->
      let key = Tuple.pk t.schema tuple in
      match Hashtbl.find_opt in_a key with
      | Some ta when Tuple.equal ta tuple -> Hashtbl.remove in_a key
      | Some ta ->
          pos ta;
          neg tuple;
          Hashtbl.remove in_a key
      | None -> neg tuple);
  Hashtbl.iter (fun _ tuple -> pos tuple) in_a

let diff ?ctx t a b ~pos ~neg =
  if not (Obs.enabled ()) then diff_impl ?ctx t a b ~pos ~neg
  else
    Obs.with_span sp_diff (fun () ->
        let n = ref 0 in
        let count out tuple =
          n := !n + 1;
          out tuple
        in
        diff_impl ?ctx t a b ~pos:(count pos) ~neg:(count neg);
        Obs.add c_diff_tuples !n;
        Obs.Prof.add Obs.Prof.Tuples_emitted !n)

(* Keys a branch touched since the LCA: scan only the segment ranges of
   the branch's lineage that lie beyond the LCA's coverage (the records
   "appearing after the lowest common ancestor", §3.3 Diff/Merge). *)
let changed_keys_since t b lca_loc =
  let lca_sid, lca_upto = lca_loc in
  let lca_cover : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s, u) -> Hashtbl.replace lca_cover s u)
    (plan t lca_sid lca_upto);
  let keys : (Value.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let sid, upto = head_loc t b in
  List.iter
    (fun (s, u) ->
      let from = Option.value ~default:0 (Hashtbl.find_opt lca_cover s) in
      if u > from then
        Col_segment.iter ~from ~upto:u (segment t s).seg (fun _row rv ->
            Hashtbl.replace keys (record_key t.schema rv) ()))
    (plan t sid upto);
  keys

let changes_since t b lca_loc ~lca_state =
  let keys = changed_keys_since t b lca_loc in
  let tbl : (Value.t, Merge_driver.side_change) Hashtbl.t =
    Hashtbl.create (Hashtbl.length keys)
  in
  Hashtbl.iter
    (fun key () ->
      let state = lookup t b key in
      let base =
        match lca_state with
        | Some m -> Hashtbl.find_opt m key
        | None -> None
      in
      let unchanged =
        match state, base with
        | Some s, Some bse -> Tuple.equal s bse
        | None, None -> true
        | _ -> false
      in
      if not unchanged then
        Hashtbl.replace tbl key { Merge_driver.state; base })
    keys;
  tbl

let merge_impl ?ctx t ~into ~from ~policy ~message =
  (* the read phase (LCA scan, change collection) polls the context;
     once the merge segment starts filling the operation runs to
     completion so no half-applied merge is observable *)
  let check () = match ctx with Some c -> Gctx.check c | None -> () in
  let v_ours = Vg.head t.graph into and v_theirs = Vg.head t.graph from in
  let lca = Vg.lca t.graph v_ours v_theirs in
  let lca_loc = commit_loc t lca in
  (* The LCA commit is scanned in its entirety for every merge: the
     segment-suffix candidate sets only record which keys were
     *touched*, so the LCA values are needed to drop keys whose content
     is unchanged (otherwise a touched-but-equal key would spuriously
     win precedence over a real change on the other side).  The paper
     notes the same full-LCA-scan burden for version-first field-level
     merges (§3.3 Merge, §5.4). *)
  let lca_state =
    let m : (Value.t, Tuple.t) Hashtbl.t = Hashtbl.create 4096 in
    let lca_sid, lca_upto = lca_loc in
    scan_live ?ctx t lca_sid lca_upto (fun _ _ tuple ->
        Hashtbl.replace m (Tuple.pk t.schema tuple) tuple);
    Some m
  in
  check ();
  let ours = changes_since t into lca_loc ~lca_state in
  check ();
  let theirs = changes_since t from lca_loc ~lca_state in
  check ();
  let decisions, stats = Merge_driver.decide ~policy ~ours ~theirs in
  check ();
  (* fresh merge segment: scanned before either parent lineage *)
  let ours_loc = head_loc t into and theirs_loc = head_loc t from in
  let parents =
    match policy with
    | Theirs -> [ theirs_loc; ours_loc ]
    | Ours | Three_way -> [ ours_loc; theirs_loc ]
  in
  let s = new_segment t parents in
  Vec.set t.head_seg into s.seg_id;
  (* Every decided state is materialized into the merge segment, which
     is scanned before both parent lineages, so it dominates any copy
     either lineage holds.  Lazy scan-order resolution is unsound in
     general: a key live in the source branch (whose segments are
     topological descendants of shared ancestry) would shadow the
     destination's own post-LCA copy.  The write volume stays
     proportional to the inter-branch diff, the unit the paper reports
     merge throughput in (§5.4). *)
  List.iter
    (fun (d : Merge_driver.decision) ->
      let key = d.Merge_driver.d_key in
      match d.Merge_driver.final with
      | None ->
          let _ = append t into (Col_segment.Tombstone key) in
          Pk_index.remove t.pk ~branch:into key
      | Some tuple ->
          let loc = append t into (Col_segment.Live tuple) in
          Pk_index.set t.pk ~branch:into key loc)
    decisions;
  Col_segment.flush s.seg;
  let vid = Vg.merge_commit t.graph ~into ~theirs:v_theirs ~message in
  Hashtbl.replace t.commits vid (s.seg_id, Col_segment.rows s.seg);
  set_dirty t into false;
  {
    merge_version = vid;
    conflicts = Merge_driver.conflicts_of decisions;
    keys_ours = stats.Merge_driver.n_ours;
    keys_theirs = stats.Merge_driver.n_theirs;
    keys_both = stats.Merge_driver.n_both;
  }

let merge ?ctx t ~into ~from ~policy ~message =
  if not (Obs.enabled ()) then merge_impl ?ctx t ~into ~from ~policy ~message
  else
    Obs.with_span sp_merge (fun () ->
        Obs.incr c_merges;
        merge_impl ?ctx t ~into ~from ~policy ~message)

let dataset_bytes t =
  let acc = ref 0 in
  Vec.iter (fun s -> acc := !acc + Col_segment.byte_size s.seg) t.segments;
  !acc

(* Version-first keeps no bitmap histories; its commit metadata is the
   version -> (segment, row) map. *)
let commit_meta_bytes t = Hashtbl.length t.commits * 12

let storage_report t =
  let module R = Decibel_obs.Report in
  let nsegs = Vec.length t.segments in
  (* live physical records: the distinct (segment, row) targets of
     every active branch's key index *)
  let live_locs : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (br : Vg.branch) ->
      if br.Vg.active then
        Pk_index.iter t.pk ~branch:br.Vg.bid (fun _ loc ->
            Hashtbl.replace live_locs loc ()))
    (Vg.branches t.graph);
  let live_per_seg = Array.make nsegs 0 in
  Hashtbl.iter
    (fun (sid, _) () -> live_per_seg.(sid) <- live_per_seg.(sid) + 1)
    live_locs;
  let branches =
    List.map
      (fun (br : Vg.branch) ->
        let b = br.Vg.bid in
        (* head extent, including uncommitted appends *)
        let sid, upto = head_loc t b in
        let lineage = plan t sid upto in
        (* rows are dense, so a fragment's record extent is its upto *)
        let extent = List.fold_left (fun acc (_, u) -> acc + u) 0 lineage in
        let live = Pk_index.cardinal t.pk ~branch:b in
        {
          R.br_name = br.Vg.name;
          br_id = b;
          br_head = br.Vg.head;
          br_active = br.Vg.active;
          br_live_tuples = live;
          br_dead_tuples = max 0 (extent - live);
          (* no liveness bitmaps in this scheme *)
          br_bitmap_bits = 0;
          br_density = 0.0;
          br_segments = List.length lineage;
          br_delta_chain = List.length lineage;
          br_delta_bytes = 0;
        })
      (Vg.branches t.graph)
  in
  let segments =
    List.init nsegs (fun sid ->
        let s = segment t sid in
        let records = Col_segment.rows s.seg in
        {
          R.sg_id = sid;
          sg_file = Filename.basename (Col_segment.path s.seg);
          sg_bytes = Col_segment.byte_size s.seg;
          sg_pages = Col_segment.page_count s.seg;
          sg_records = records;
          sg_live_records = live_per_seg.(sid);
          sg_fragmentation =
            R.fragmentation ~live:live_per_seg.(sid) ~records;
        })
  in
  let chains =
    Hashtbl.fold
      (fun _ (sid, upto) acc -> List.length (plan t sid upto) :: acc)
      t.commits []
  in
  let max_chain, mean_chain = R.chain_stats chains in
  let columns =
    let reports = ref [] in
    Vec.iter
      (fun s -> reports := Col_segment.column_report s.seg :: !reports)
      t.segments;
    List.map
      (fun (c : Col_segment.col_report) ->
        {
          R.co_name = c.Col_segment.cr_name;
          co_encoding = c.cr_encoding;
          co_raw_bytes = c.cr_raw_bytes;
          co_enc_bytes = c.cr_enc_bytes;
        })
      (Array.to_list (Col_segment.merge_column_reports !reports))
  in
  {
    R.e_format = t.format;
    e_branches = branches;
    e_segments = segments;
    e_columns = columns;
    e_history =
      {
        R.h_files = 0;
        h_bytes = 0;
        h_commits = Hashtbl.length t.commits;
        h_max_chain = max_chain;
        h_mean_chain = mean_chain;
      };
  }

(* The manifest persists the version graph, the segment DAG (parent
   pointers with branch-point locations), branch head segments, the
   commit locator and dirtiness; segment contents live in their own
   files and the key index is rebuilt by lineage scans on reopen.
   Format-v1 manifests keep the original byte-addressed encoding
   (branch points and commit uptos as byte offsets), so pre-columnar
   repositories reopen unchanged; v2 manifests lead with the columnar
   magic header and speak rows throughout. *)
let manifest_path dir = Filename.concat dir "manifest.vf"

let save_manifest t =
  let v2 = t.format >= 2 in
  let buf = Buffer.create 4096 in
  if v2 then Col_segment.write_manifest_header buf;
  Binio.write_u8 buf (if t.compress then 1 else 0);
  Binio.write_string buf (Vg.serialize t.graph);
  Schema.serialize buf t.schema;
  Binio.write_varint buf (Vec.length t.segments);
  Vec.iter
    (fun s ->
      (if v2 then Col_segment.save_meta buf s.seg
       else Binio.write_varint buf (Col_segment.byte_size s.seg));
      Binio.write_list
        (fun b (p, row) ->
          Binio.write_varint b p;
          Binio.write_varint b
            (if v2 then row
             else Col_segment.v1_offset_of_row (segment t p).seg row))
        buf s.parents)
    t.segments;
  Binio.write_varint buf (Vec.length t.head_seg);
  Vec.iter (fun sid -> Binio.write_varint buf sid) t.head_seg;
  Binio.write_varint buf (Hashtbl.length t.commits);
  Hashtbl.iter
    (fun vid (sid, upto) ->
      Binio.write_varint buf vid;
      Binio.write_varint buf sid;
      Binio.write_varint buf
        (if v2 then upto
         else Col_segment.v1_offset_of_row (segment t sid).seg upto))
    t.commits;
  Binio.write_varint buf (Hashtbl.length t.dirty);
  Hashtbl.iter
    (fun b d ->
      Binio.write_varint buf b;
      Binio.write_u8 buf (if d then 1 else 0))
    t.dirty;
  Binio.write_varint buf t.wal_marker;
  Atomic_file.write (manifest_path t.dir) (Buffer.contents buf)

let flush t =
  Vec.iter (fun s -> Col_segment.flush s.seg) t.segments;
  save_manifest t

let migrate t =
  if t.format < 2 then begin
    for sid = 0 to Vec.length t.segments - 1 do
      let s = segment t sid in
      Vec.set t.segments sid { s with seg = Col_segment.migrate_to_v2 s.seg }
    done;
    (* branch points, commit locators and the key index are all
       row-addressed and rows survive migration 1:1 — only the format
       flag and manifest encoding change *)
    t.format <- 2;
    save_manifest t
  end

let open_existing ~dir ~pool =
  let data =
    try Atomic_file.read (manifest_path dir)
    with Sys_error _ -> errorf "version-first: no repository in %s" dir
  in
  let pos = ref 0 in
  let version = Col_segment.manifest_version data pos in
  let compress = Binio.read_u8 data pos = 1 in
  let graph = Vg.deserialize (Binio.read_string data pos) in
  let schema = Schema.deserialize data pos in
  let t =
    {
      dir;
      pool;
      schema;
      compress;
      format = version;
      graph;
      segments = Vec.create ~dummy:seg_dummy ();
      head_seg = Vec.create ~dummy:(-1) ();
      pk = Pk_index.create ();
      commits = Hashtbl.create 64;
      dirty = Hashtbl.create 16;
      wal_marker = 0;
      closed = false;
    }
  in
  let nsegs = Binio.read_varint data pos in
  for seg_id = 0 to nsegs - 1 do
    if version >= 2 then begin
      let seg =
        Col_segment.open_v2 ~pool ~schema ~compress
          ~path:(seg_file_path dir seg_id) data pos
      in
      let parents =
        Binio.read_list
          (fun s p ->
            let a = Binio.read_varint s p in
            let b = Binio.read_varint s p in
            (a, b))
          data pos
      in
      let _ = Vec.push t.segments { seg_id; seg; parents } in
      ()
    end
    else begin
      let size = Binio.read_varint data pos in
      let byte_parents =
        Binio.read_list
          (fun s p ->
            let a = Binio.read_varint s p in
            let b = Binio.read_varint s p in
            (a, b))
          data pos
      in
      let file =
        Heap_file.open_existing ~pool (seg_file_path dir seg_id)
      in
      (* drop bytes past the checkpoint (recovered via the WAL) *)
      Heap_file.truncate_to file size;
      (* rebuild the row-address table by walking the record framing *)
      let offs = ref [] in
      Heap_file.iter file (fun off _payload -> offs := off :: !offs);
      let seg =
        Col_segment.of_v1 ~pool ~schema ~compress
          ~codec:(v1_codec ~schema ~compress) ~file
          ~offsets:(List.rev !offs)
      in
      (* parents reference earlier segments only, so their byte
         offsets can be translated to rows as we go *)
      let parents =
        List.map
          (fun (p, off) ->
            (p, Col_segment.v1_row_of_offset (segment t p).seg off))
          byte_parents
      in
      let _ = Vec.push t.segments { seg_id; seg; parents } in
      ()
    end
  done;
  let nheads = Binio.read_varint data pos in
  for _ = 1 to nheads do
    let _ = Vec.push t.head_seg (Binio.read_varint data pos) in
    ()
  done;
  let ncommits = Binio.read_varint data pos in
  for _ = 1 to ncommits do
    let vid = Binio.read_varint data pos in
    let sid = Binio.read_varint data pos in
    let upto = Binio.read_varint data pos in
    let upto =
      if version >= 2 then upto
      else Col_segment.v1_row_of_offset (segment t sid).seg upto
    in
    Hashtbl.replace t.commits vid (sid, upto)
  done;
  let ndirty = Binio.read_varint data pos in
  for _ = 1 to ndirty do
    let b = Binio.read_varint data pos in
    Hashtbl.replace t.dirty b (Binio.read_u8 data pos = 1)
  done;
  t.wal_marker <- Binio.read_varint data pos;
  (* rebuild the per-branch key index with one lineage scan each *)
  for b = 0 to Vec.length t.head_seg - 1 do
    let bid = Pk_index.add_branch t.pk ~from:None in
    assert (bid = b);
    let sid = Vec.get t.head_seg b in
    scan_live t sid (Col_segment.rows (segment t sid).seg)
      (fun s row tuple ->
        Pk_index.set t.pk ~branch:b (Tuple.pk t.schema tuple) (s, row))
  done;
  t

let wal_marker t = t.wal_marker
let set_wal_marker t lsn = t.wal_marker <- lsn

let verify t =
  let errs = ref [] in
  (match Atomic_file.verify (manifest_path t.dir) with
  | Some reason -> errs := ("manifest.vf", reason) :: !errs
  | None -> ());
  Vec.iter
    (fun s ->
      let name = Printf.sprintf "seg_%d.dat" s.seg_id in
      List.iter
        (fun (_, reason) -> errs := (name, reason) :: !errs)
        (Col_segment.verify s.seg);
      List.iter
        (fun (p, _) ->
          if p < 0 || p >= Vec.length t.segments then
            errs :=
              (name, Printf.sprintf "parent pointer to unknown segment %d" p)
              :: !errs)
        s.parents)
    t.segments;
  Hashtbl.iter
    (fun vid (sid, _) ->
      if not (Vg.mem_version t.graph vid) then
        errs :=
          ( "manifest.vf",
            Printf.sprintf "commit locator references unknown version %d" vid )
          :: !errs
      else if sid < 0 || sid >= Vec.length t.segments then
        errs :=
          ( "manifest.vf",
            Printf.sprintf "commit %d references unknown segment %d" vid sid )
          :: !errs)
    t.commits;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* maintenance *)

let referenced_files t =
  List.init (Vec.length t.segments) (fun sid ->
      Printf.sprintf "seg_%d.dat" sid)

let branch_by_name t name =
  List.find_opt
    (fun (br : Vg.branch) -> br.Vg.active && br.Vg.name = name)
    (Vg.branches t.graph)

(* Materialize a long delta chain: rewrite the branch's live winners
   into one fresh parentless segment and repoint the head at it.
   Purely additive — historical segments stay, because commit locators
   and other branches still address their rows — so the payoff is read
   locality (chain length 1), not reclaimed bytes. *)
let plan_maintenance t ~kind ~target =
  match kind with
  | Engine_intf.M_compact | Engine_intf.M_gc ->
      (* historical rows stay addressable by commit locators and other
         branches' branch points; version-first cannot rewrite them *)
      None
  | Engine_intf.M_materialize -> (
      if t.format < 2 then None
      else
        match branch_by_name t target with
        | None -> None
        | Some br ->
            let b = br.Vg.bid in
            let sid0, upto0 = head_loc t b in
            if List.length (plan t sid0 upto0) <= 1 then None
            else begin
              let new_sid = Vec.length t.segments in
              let path = seg_file_path t.dir new_sid in
              let apply () =
                let sid, upto = head_loc t b in
                (* buffer the winners before creating any file so a
                   failure during the lineage scan leaves no debris *)
                let winners = ref [] in
                scan_live t sid upto (fun _ _ tuple ->
                    winners := tuple :: !winners);
                let winners = List.rev !winners in
                let seg =
                  Col_segment.create_v2 ~pool:t.pool ~schema:t.schema
                    ~compress:t.compress ~path
                in
                try
                  Decibel_fault.Failpoint.hit "maint.rewrite";
                  let locs =
                    List.map
                      (fun tuple ->
                        let row =
                          Col_segment.append seg (Col_segment.Live tuple)
                        in
                        (Tuple.pk t.schema tuple, row))
                      winners
                  in
                  Col_segment.flush seg;
                  (* swap is the last step: nothing above mutated [t],
                     so an exception leaves the old state intact *)
                  let _ =
                    Vec.push t.segments { seg_id = new_sid; seg; parents = [] }
                  in
                  Vec.set t.head_seg b new_sid;
                  List.iter
                    (fun (key, row) ->
                      Pk_index.set t.pk ~branch:b key (new_sid, row))
                    locs
                with e ->
                  Col_segment.abandon seg;
                  (try Sys.remove path with Sys_error _ -> ());
                  raise e
              in
              Some
                {
                  Engine_intf.mp_kind = kind;
                  mp_target = target;
                  mp_new_files = [ Filename.basename path ];
                  mp_old_files = [];
                  mp_bytes_before = 0;
                  mp_apply = apply;
                  mp_cleanup = (fun () -> ());
                }
            end)

let crash t =
  if not t.closed then begin
    Vec.iter (fun s -> Col_segment.abandon s.seg) t.segments;
    t.closed <- true
  end

let close t =
  if not t.closed then begin
    flush t;
    Vec.iter (fun s -> Col_segment.close s.seg) t.segments;
    t.closed <- true
  end
