(** Crash-torture harness.

    Runs a scripted branch/insert/commit/merge workload against a
    durable database and kills it — via the {!Decibel_fault.Failpoint}
    registry — at every failpoint site the workload crosses, at the
    first, middle and last crossing of each, with plain raises and
    (at the write sites) torn short writes.  After each induced crash
    the repository is fsck'd with repair, reopened, and the recovered
    state is checked against an oracle: the in-memory {!Model} engine
    replayed to exactly the prefix of operations the recovered WAL
    marker says survived.  The remaining operations are then re-applied
    and the final state must equal the full-workload oracle.

    Site enumeration is not hard-coded: a clean dry run records the
    failpoint census, so a new instrumented site in the storage layer
    is tortured automatically the next time the harness runs.

    Shared by [test/test_crash.ml] (assert: zero failures per scheme)
    and [bench --only crash] (report: case table plus fsck summary). *)

open Decibel_storage
module Vg = Decibel_graph.Version_graph
module Failpoint = Decibel_fault.Failpoint

let schema = Schema.ints ~name:"torture" ~width:3

let row k a = [| Value.int k; Value.int a; Value.int 0 |]

type op =
  | Insert of string * int * int  (** branch, key, payload *)
  | Update of string * int * int
  | Delete of string * int
  | Commit of string
  | Branch of string * string  (** new name, from branch *)
  | Merge of string * string  (** into, from *)
  | Flush  (** checkpoint: manifest write + WAL truncation *)
  | Maint  (** run every applicable maintenance task (gc + materialize) *)

(* every op except Flush and Maint appends exactly one WAL entry, so
   the number of logged ops completed is exactly the recovered WAL
   marker (maintenance rewrites physical layout, never content) *)
let logged = function Flush | Maint -> false | _ -> true

(* The default scripted workload: two branch points, two three-way
   merges (disjoint key sets, so the outcome is deterministic), inserts
   and deletes on both sides, and mid-run checkpoints so crashes land
   both before and after a manifest write. *)
let default_workload =
  [
    Insert ("master", 1, 10);
    Insert ("master", 2, 20);
    Commit "master";
    Branch ("dev", "master");
    Insert ("dev", 3, 30);
    Update ("dev", 1, 11);
    Commit "dev";
    Flush;
    Insert ("master", 4, 40);
    Delete ("master", 2);
    Commit "master";
    Branch ("feat", "dev");
    Insert ("feat", 5, 50);
    Commit "feat";
    Merge ("dev", "feat");
    Flush;
    Update ("master", 4, 41);
    Commit "master";
    Merge ("master", "dev");
    Insert ("master", 6, 60);
    Commit "master";
    Flush;
  ]

let apply db op =
  let b name = Database.branch_named db name in
  match op with
  | Insert (br, k, v) -> Database.insert db (b br) (row k v)
  | Update (br, k, v) -> Database.update db (b br) (row k v)
  | Delete (br, k) -> Database.delete db (b br) (Value.int k)
  | Commit br -> ignore (Database.commit db (b br) ~message:"torture")
  | Branch (name, from) ->
      ignore (Database.branch_from db ~name ~of_branch:(b from))
  | Merge (into, from) ->
      ignore
        (Database.merge db ~into:(b into) ~from:(b from)
           ~policy:Types.Three_way ~message:"torture")
  | Flush -> Database.flush db
  | Maint ->
      (* scheme-agnostic: GC lets the engine pick its own target
         (tuple-first whole-heap rewrite, hybrid's most fragmented
         sealed segment); materialize is offered per active branch
         (version-first delta chains).  Engines answer [None] for
         whatever does not apply. *)
      ignore (Database.run_maintenance db ~kind:Engine_intf.M_gc ~target:"");
      List.iter
        (fun (br : Vg.branch) ->
          if br.Vg.active then
            ignore
              (Database.run_maintenance db ~kind:Engine_intf.M_materialize
                 ~target:br.Vg.name))
        (Vg.branches (Database.graph db))

(* Full observable state: every active branch's contents, sorted. *)
let state_of db =
  Vg.branches (Database.graph db)
  |> List.filter (fun (br : Vg.branch) -> br.Vg.active)
  |> List.map (fun (br : Vg.branch) ->
         ( br.Vg.name,
           List.sort compare
             (List.map Array.to_list (Database.scan_list db br.Vg.bid)) ))
  |> List.sort compare

(* oracle_states.(m) = state after the first m *logged* ops (Flush does
   not change contents, so indexing by logged count is unambiguous) *)
let oracle_states ~dir workload =
  let o =
    Database.open_ ~scheme:Database.Model
      ~dir:(Filename.concat dir "oracle") ~schema ()
  in
  let states = ref [ state_of o ] in
  List.iter
    (fun op ->
      apply o op;
      if logged op then states := state_of o :: !states)
    workload;
  Database.close o;
  Array.of_list (List.rev !states)

(* Maintenance-concurrent schedule: enough updates/deletes after
   commits and branch points to leave dead heap rows (tuple-first GC),
   multi-commit delta chains (version-first materialize) and fragmented
   sealed segments (hybrid compact), with writer ops continuing between
   and after the [Maint] steps so crashes land mid-rewrite with dirty
   state on both sides. *)
let maint_workload =
  [
    (* pre-commit churn: the row holding 9 is superseded before the
       first commit, so no checkout ever references it — dead heap
       space only maintenance can reclaim *)
    Insert ("master", 1, 9);
    Insert ("master", 2, 20);
    Update ("master", 1, 10);
    Insert ("master", 3, 30);
    Commit "master";
    (* hybrid: branching off a clean head freezes master's head
       segment, turning the dead row into non-head fragmentation *)
    Branch ("dev", "master");
    Update ("dev", 1, 11);
    Update ("dev", 2, 21);
    Commit "dev";
    Update ("dev", 1, 12);
    Commit "dev";
    Update ("master", 3, 31);
    Delete ("master", 2);
    Commit "master";
    Flush;
    Maint;
    Insert ("dev", 4, 39);
    Update ("dev", 4, 40);
    Update ("dev", 1, 13);
    Commit "dev";
    Update ("master", 1, 14);
    Commit "master";
    Maint;
    Insert ("master", 5, 50);
    Commit "master";
    Flush;
  ]

(* Clean dry run, counting how often the workload crosses each
   failpoint site (arming happens after open, so repository creation
   is excluded — torturing a half-created repository is a different,
   less interesting failure than crashing a live one). *)
let discover_sites ~dir scheme workload =
  Failpoint.disarm_all ();
  let db = Database.open_ ~durable:true ~scheme ~dir ~schema () in
  Failpoint.reset_census ();
  List.iter (apply db) workload;
  let sites = Failpoint.sites () in
  Database.close db;
  sites

(* sites where an armed failure can leave a partial (torn) write *)
let tearable =
  [ "wal.append"; "heap.flush"; "manifest.write_tmp"; "maint.journal.append" ]

(* sites whose failures are absorbed by bounded retry *)
let retryable = [ "wal.sync"; "heap.flush"; "manifest.write_tmp" ]

type case = {
  c_site : string;
  c_occurrence : int;  (** which crossing of the site was armed *)
  c_action : string;  (** ["raise"] or ["torn"] *)
  c_fired : bool;
  c_marker : int;  (** recovered WAL marker (logged ops surviving) *)
  c_fsck_findings : int;  (** findings repaired before recovery *)
  c_ok : bool;
  c_detail : string;  (** failure explanation, [""] when ok *)
}

type summary = {
  s_scheme : string;
  s_cases : case list;
  s_failures : int;
  s_sites : (string * int) list;  (** census of the dry run *)
}

let describe_mismatch label expected got =
  let show st =
    String.concat "; "
      (List.map
         (fun (b, rows) -> Printf.sprintf "%s:%d rows" b (List.length rows))
         st)
  in
  Printf.sprintf "%s mismatch: expected [%s] got [%s]" label (show expected)
    (show got)

let run_case ~dir ~scheme ~workload ~states ~site ~occurrence ~action =
  let action_name, fp_action =
    match action with
    | `Raise -> ("raise", Failpoint.Raise)
    | `Torn -> ("torn", Failpoint.Torn 0.5)
  in
  Failpoint.disarm_all ();
  let db = Database.open_ ~durable:true ~scheme ~dir ~schema () in
  Failpoint.reset_census ();
  Failpoint.arm ~action:fp_action site (Failpoint.After_hits occurrence);
  let fired = ref false in
  (try List.iter (apply db) workload
   with Failpoint.Fault_injected _ -> fired := true);
  (* an injected fault can be absorbed on purpose (e.g. a post-commit
     maintenance-journal append swallows its own failure and leaves
     the journal to recovery), so the census — not just an escaped
     exception — decides whether the armed crossing was reached *)
  if Failpoint.hits site >= occurrence then fired := true;
  Failpoint.disarm_all ();
  Database.crash db;
  (* repair what is mechanically repairable (torn WAL tail, stale temp
     files), then recover *)
  let fsck1 = Fsck.run ~repair:true ~dir () in
  let findings = List.length fsck1.Fsck.findings in
  let fail detail =
    {
      c_site = site;
      c_occurrence = occurrence;
      c_action = action_name;
      c_fired = !fired;
      c_marker = -1;
      c_fsck_findings = findings;
      c_ok = false;
      c_detail = detail;
    }
  in
  match Database.reopen ~dir () with
  | exception e -> fail (Printf.sprintf "reopen raised %s" (Printexc.to_string e))
  | db2 ->
      let marker = Database.wal_marker db2 in
      let total = Array.length states - 1 in
      let result =
        if marker < 0 || marker > total then
          fail (Printf.sprintf "recovered marker %d out of range" marker)
        else begin
          let recovered = state_of db2 in
          if recovered <> states.(marker) then
            fail
              (describe_mismatch
                 (Printf.sprintf "recovered state (marker %d)" marker)
                 states.(marker) recovered)
          else begin
            (* re-apply the ops the crash swallowed and demand the full
               oracle state *)
            let cnt = ref 0 in
            let remaining =
              List.filter
                (fun op ->
                  if logged op then incr cnt;
                  !cnt > marker)
                workload
            in
            match List.iter (apply db2) remaining with
            | exception e ->
                fail
                  (Printf.sprintf "resume after marker %d raised %s" marker
                     (Printexc.to_string e))
            | () ->
                let final = state_of db2 in
                if final <> states.(total) then
                  fail (describe_mismatch "final state" states.(total) final)
                else
                  {
                    c_site = site;
                    c_occurrence = occurrence;
                    c_action = action_name;
                    c_fired = !fired;
                    c_marker = marker;
                    c_fsck_findings = findings;
                    c_ok = true;
                    c_detail = "";
                  }
          end
        end
      in
      (try Database.close db2 with _ -> ());
      if result.c_ok then begin
        (* a recovered-and-closed repository must be spotless *)
        let fsck2 = Fsck.run ~dir () in
        if Fsck.clean fsck2 then result
        else
          {
            result with
            c_ok = false;
            c_detail =
              "post-recovery fsck: "
              ^ String.concat "; "
                  (List.map
                     (fun f -> f.Fsck.artifact ^ ": " ^ f.Fsck.problem)
                     fsck2.Fsck.findings);
          }
      end
      else result

(* occurrences to torture for a site crossed [c] times: first, middle,
   last (deduplicated for small [c]) *)
let occurrences c = List.sort_uniq compare [ 1; ((c + 1) / 2); c ]

let torture ?(workload = default_workload) ?site_prefix ?(tag = "") ~root
    scheme =
  let scheme_name = Database.scheme_name scheme in
  (* [tag] namespaces the scratch dirs so two torture runs over the
     same root (e.g. default then maintenance) never share an oracle
     or dry-run repository *)
  let base =
    Filename.concat root
      (if tag = "" then scheme_name else scheme_name ^ "-" ^ tag)
  in
  let states = oracle_states ~dir:(Filename.concat base "oracle") workload in
  let sites =
    discover_sites ~dir:(Filename.concat base "dry") scheme workload
  in
  let tortured =
    match site_prefix with
    | None -> sites
    | Some p ->
        List.filter (fun (site, _) -> String.starts_with ~prefix:p site) sites
  in
  let case_no = ref 0 in
  let cases =
    List.concat_map
      (fun (site, count) ->
        List.concat_map
          (fun occurrence ->
            let actions =
              if List.mem site tearable then [ `Raise; `Torn ] else [ `Raise ]
            in
            List.map
              (fun action ->
                incr case_no;
                let dir =
                  Filename.concat base (Printf.sprintf "case%d" !case_no)
                in
                let c =
                  run_case ~dir ~scheme ~workload ~states ~site ~occurrence
                    ~action
                in
                Decibel_util.Fsutil.rm_rf dir;
                c)
              actions)
          (occurrences count))
      tortured
  in
  Failpoint.disarm_all ();
  {
    s_scheme = scheme_name;
    s_cases = cases;
    s_failures = List.length (List.filter (fun c -> not c.c_ok) cases);
    s_sites = sites;
  }

(* Maintenance crash-torture: run the maintenance-heavy schedule and
   kill only at the maint.* sites — the generic torture above already
   covers the wal/heap/manifest sites that schedule also crosses. *)
let maint_sites =
  [
    "maint.journal.append";
    "maint.plan";
    "maint.rewrite";
    "maint.commit";
    "maint.swap";
  ]

let maint_torture ?(workload = maint_workload) ~root scheme =
  torture ~workload ~site_prefix:"maint." ~tag:"maint" ~root scheme

(* Transient-fault check: a single transient failure at each retryable
   site must be absorbed by bounded retry — the workload completes and
   the final state equals the oracle. *)
let transient_check ?(workload = default_workload) ~root scheme =
  let base = Filename.concat root (Database.scheme_name scheme ^ "-transient") in
  let states = oracle_states ~dir:(Filename.concat base "oracle") workload in
  let total = Array.length states - 1 in
  List.map
    (fun site ->
      let dir = Filename.concat base site in
      Failpoint.disarm_all ();
      let db = Database.open_ ~durable:true ~scheme ~dir ~schema () in
      Failpoint.arm ~action:Failpoint.Transient site (Failpoint.After_hits 1);
      let outcome =
        match List.iter (apply db) workload with
        | exception e -> Printf.sprintf "raised %s" (Printexc.to_string e)
        | () -> if state_of db = states.(total) then "" else "state mismatch"
      in
      Failpoint.disarm_all ();
      (try Database.close db with _ -> ());
      Decibel_util.Fsutil.rm_rf dir;
      (site, outcome))
    retryable

let summary_json s =
  let esc = Decibel_obs.Obs.json_escape in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"scheme\":\"%s\",\"cases\":%d,\"failures\":%d,\"sites\":{"
       (esc s.s_scheme) (List.length s.s_cases) s.s_failures);
  List.iteri
    (fun i (name, hits) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (esc name) hits))
    s.s_sites;
  Buffer.add_string buf "},\"case_list\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"site\":\"%s\",\"occurrence\":%d,\"action\":\"%s\",\"fired\":%b,\"marker\":%d,\"fsck_findings\":%d,\"ok\":%b,\"detail\":\"%s\"}"
           (esc c.c_site) c.c_occurrence (esc c.c_action) c.c_fired c.c_marker
           c.c_fsck_findings c.c_ok (esc c.c_detail)))
    s.s_cases;
  Buffer.add_string buf "]}";
  Buffer.contents buf
