(** Tuple-first storage (paper §3.2).

    Every tuple that has ever existed in any branch lives in one shared
    segment file, in insertion order; a bitmap index with one bit per
    (tuple, branch) records which branches each tuple is live in.
    Branching clones the parent's bitmap column; commits snapshot the
    column into a compressed per-branch history file; updates and
    deletes only flip bits (plus append the new copy on update), so old
    record versions remain readable through historical commits.

    Record storage is a {!Decibel_storage.Col_segment}: format v1 is
    the original row-per-record heap, format v2 packs rows into
    columnar blocks with per-column compression, so branch scans skip
    whole blocks the membership bitmap rules out and evaluate pushed
    predicates on decoded batches before any [Tuple.t] exists.

    The module is a functor over the bitmap layout
    ({!Decibel_index.Bitmap_intf.S}) so tuple-oriented and
    branch-oriented variants share all versioning logic. *)

open Decibel_util
open Decibel_storage
open Decibel_index
open Types
module Vg = Decibel_graph.Version_graph
module Obs = Decibel_obs.Obs
module Workload = Decibel_obs.Workload
module Par = Decibel_par.Par
module Gctx = Decibel_governor.Governor.Ctx

(* Per-domain bitmap scratch for the in-place diff kernels. *)
let scratch_key = Domain.DLS.new_key (fun () -> Bitvec.create ())
let scratch () = Domain.DLS.get scratch_key

(* engine.* counters are shared across all three schemes (Obs.counter
   interns by name), so benchmark reports can diff them uniformly *)
let c_scan_tuples = Obs.counter "engine.scan.tuples"
let c_scan_pages = Obs.counter "engine.scan.pages"
let c_scan_bitmap_words = Obs.counter "engine.scan.bitmap_words"
let c_multi_scan_tuples = Obs.counter "engine.multi_scan.tuples"
let c_diff_tuples = Obs.counter "engine.diff.tuples"
let c_commits = Obs.counter "engine.commits"
let c_merges = Obs.counter "engine.merges"

let bitmap_words col = (Bitvec.length col + 63) / 64

module Make (B : Bitmap_intf.S) = struct
  type t = {
    dir : string;
    schema : Schema.t;
    compress : bool;
    graph : Vg.t;
    mutable seg : Col_segment.t; (* replaced by [migrate] and compaction *)
    mutable bitmap : B.t; (* replaced wholesale by compaction *)
    mutable pk : int Pk_index.t; (* branch -> key -> live row *)
    mutable gen : int; (* heap generation, bumped by each compaction *)
    histories : (branch_id, Commit_history.t) Hashtbl.t;
    commit_loc : (version_id, branch_id * int) Hashtbl.t;
        (* version -> (branch, index in that branch's history) *)
    dirty : (branch_id, bool) Hashtbl.t;
    mutable wal_marker : int; (* last WAL LSN reflected here *)
    mutable closed : bool;
  }

  let scheme = "tuple-first (" ^ B.layout ^ ")"

  (* span names precomputed once per functor instantiation so the
     instrumented paths allocate nothing per call *)
  let sp_scan = "tuple_first.scan"
  let sp_scan_filtered = "tuple_first.scan_filtered"
  let sp_scan_version = "tuple_first.scan_version"
  let sp_multi_scan = "tuple_first.multi_scan"
  let sp_diff = "tuple_first.diff"
  let sp_merge = "tuple_first.merge"
  let sp_commit = "tuple_first.commit"

  (* Workload accounting mirrors the Prof sites at batch granularity.
     Only single-branch scans report tuple/fragment counts — the same
     figures added to the engine.* counters, so per-branch totals
     reconcile exactly with the globals.  Multi-branch reads leave a
     zero-count touch that moves the read rate without double-counting
     tuples. *)
  let wl_table t = Schema.name t.schema
  let wl_branch t b = (Vg.branch t.graph b).Vg.name

  let wl_touch t b =
    Workload.note_read ~table:(wl_table t) ~branch:(wl_branch t b) ~scanned:0
      ~emitted:0 ~fragments:0 ()

  let wl_write t b =
    if Obs.enabled () then
      Workload.note_write ~table:(wl_table t) ~branch:(wl_branch t b) ()

  (* Generation-suffixed file names: gen 0 keeps the original names so
     pre-compaction repositories are untouched; each compaction rewrites
     the heap and every history at gen+1 and retires the old files.
     History names keep the ["hist_"] prefix so directory-scan
     accounting ([commit_meta_bytes], [storage_report]) still sees
     them. *)
  let seg_file gen =
    if gen = 0 then "heap.dat" else Printf.sprintf "heap.g%d.dat" gen

  let hist_file gen b =
    if gen = 0 then Printf.sprintf "hist_b%d.chx" b
    else Printf.sprintf "hist_b%d.g%d.chx" b gen

  let history t b =
    match Hashtbl.find_opt t.histories b with
    | Some h -> h
    | None ->
        let path = Filename.concat t.dir (hist_file t.gen b) in
        let h =
          if Sys.file_exists path then Commit_history.open_existing ~path
          else Commit_history.create ~path
        in
        Hashtbl.replace t.histories b h;
        h

  (* Format-v1 record payload codec: a leading tag byte selects raw or
     LZ77 form, so files remain self-describing (§5.5 compression
     mitigation).  Tuple-first never writes tombstones — deletes only
     clear bitmap bits. *)
  let v1_codec ~schema ~compress =
    let encode = function
      | Col_segment.Live tuple ->
          let buf = Buffer.create 64 in
          if compress then begin
            Binio.write_u8 buf 1;
            Buffer.add_string buf (Lz77.compress (Tuple.encode schema tuple))
          end
          else begin
            Binio.write_u8 buf 0;
            Tuple.encode_into schema buf tuple
          end;
          Buffer.contents buf
      | Col_segment.Tombstone _ ->
          raise (Binio.Corrupt "tuple-first: tombstone in record stream")
    in
    let decode payload =
      Obs.Prof.add Obs.Prof.Bytes_decoded (String.length payload);
      let pos = ref 0 in
      match Binio.read_u8 payload pos with
      | 0 -> Col_segment.Live (Tuple.decode schema payload pos)
      | 1 ->
          let raw =
            Lz77.decompress (String.sub payload 1 (String.length payload - 1))
          in
          Col_segment.Live (Tuple.decode schema raw (ref 0))
      | k ->
          raise (Binio.Corrupt (Printf.sprintf "tuple-first: record tag %d" k))
    in
    { Col_segment.v1_encode = encode; v1_decode = decode }

  let seg_path dir gen = Filename.concat dir (seg_file gen)

  let create ~format ~compress ~dir ~pool ~schema =
    if format <> 1 && format <> 2 then
      errorf "tuple-first: unknown segment format v%d" format;
    Fsutil.mkdir_p dir;
    let seg =
      if format = 1 then
        Col_segment.create_v1 ~pool ~schema ~compress
          ~codec:(v1_codec ~schema ~compress) ~path:(seg_path dir 0)
      else Col_segment.create_v2 ~pool ~schema ~compress ~path:(seg_path dir 0)
    in
    let t =
      {
        dir;
        schema;
        compress;
        graph = Vg.create ();
        seg;
        bitmap = B.create ();
        pk = Pk_index.create ();
        gen = 0;
        histories = Hashtbl.create 16;
        commit_loc = Hashtbl.create 64;
        dirty = Hashtbl.create 16;
        wal_marker = 0;
        closed = false;
      }
    in
    let master = B.add_branch t.bitmap ~from:None in
    let _ = Pk_index.add_branch t.pk ~from:None in
    (* the root version is an explicit empty snapshot so scan_version
       treats it like any other commit *)
    let idx = Commit_history.commit (history t master) (Bitvec.create ()) in
    Hashtbl.replace t.commit_loc Vg.root_version (master, idx);
    t

  let schema t = t.schema
  let graph t = t.graph
  let format_version t = Col_segment.format_version t.seg

  let is_dirty t b = Hashtbl.find_opt t.dirty b = Some true
  let set_dirty t b v = Hashtbl.replace t.dirty b v
  let tuple_at t row = Col_segment.get_tuple t.seg row
  let key_at t row = Tuple.pk t.schema (tuple_at t row)

  let bitmap_at_version t vid =
    match Hashtbl.find_opt t.commit_loc vid with
    | Some (b, idx) -> Commit_history.checkout (history t b) idx
    | None -> errorf "tuple-first: version %d has no snapshot" vid

  let commit_impl t b ~message =
    let col = B.snapshot t.bitmap ~branch:b in
    let idx = Commit_history.commit (history t b) col in
    let vid = Vg.commit t.graph b ~message in
    Hashtbl.replace t.commit_loc vid (b, idx);
    set_dirty t b false;
    vid

  let commit t b ~message =
    if not (Obs.enabled ()) then commit_impl t b ~message
    else
      Obs.with_span sp_commit (fun () ->
          Obs.incr c_commits;
          wl_write t b;
          commit_impl t b ~message)

  let create_branch t ~name ~from =
    let v = Vg.version t.graph from in
    let parent = v.Vg.on_branch in
    let nb =
      try Vg.create_branch t.graph ~name ~from
      with Invalid_argument msg -> errorf "tuple-first: %s" msg
    in
    if Vg.head t.graph parent = from && not (is_dirty t parent)
       && (Vg.branch t.graph parent).Vg.head = from
    then begin
      (* fast path: clone the parent's live column and key index,
         the paper's "simple memory copy" (§3.2 Branch) *)
      let bid = B.add_branch t.bitmap ~from:(Some parent) in
      let _ = Pk_index.add_branch t.pk ~from:(Some parent) in
      assert (bid = nb)
    end
    else begin
      (* branching from a historical commit: restore its bitmap and
         rebuild the key index from the restored column *)
      let col = bitmap_at_version t from in
      let bid = B.add_branch t.bitmap ~from:None in
      let _ = Pk_index.add_branch t.pk ~from:None in
      assert (bid = nb);
      B.overwrite_column t.bitmap ~branch:nb col;
      Bitvec.iter_set
        (fun row -> Pk_index.set t.pk ~branch:nb (key_at t row) row)
        col
    end;
    set_dirty t nb false;
    nb

  let validate t tuple =
    match Schema.validate t.schema tuple with
    | Ok () -> ()
    | Error msg -> errorf "tuple-first: %s" msg

  let append_record t tuple =
    let row = Col_segment.append t.seg (Col_segment.Live tuple) in
    let row' = B.append_row t.bitmap in
    assert (row = row');
    row

  let insert t b tuple =
    validate t tuple;
    let key = Tuple.pk t.schema tuple in
    if Pk_index.mem t.pk ~branch:b key then
      errorf "tuple-first: duplicate key %s in branch %d"
        (Value.to_string key) b;
    let row = append_record t tuple in
    B.set t.bitmap ~branch:b ~row;
    Pk_index.set t.pk ~branch:b key row;
    set_dirty t b true;
    wl_write t b

  let update t b tuple =
    validate t tuple;
    let key = Tuple.pk t.schema tuple in
    match Pk_index.find t.pk ~branch:b key with
    | None ->
        errorf "tuple-first: update of absent key %s" (Value.to_string key)
    | Some old_row ->
        B.clear t.bitmap ~branch:b ~row:old_row;
        let row = append_record t tuple in
        B.set t.bitmap ~branch:b ~row;
        Pk_index.set t.pk ~branch:b key row;
        set_dirty t b true;
        wl_write t b

  let delete t b key =
    match Pk_index.find t.pk ~branch:b key with
    | None ->
        errorf "tuple-first: delete of absent key %s" (Value.to_string key)
    | Some row ->
        B.clear t.bitmap ~branch:b ~row;
        Pk_index.remove t.pk ~branch:b key;
        set_dirty t b true;
        wl_write t b

  let lookup t b key =
    Option.map (tuple_at t) (Pk_index.find t.pk ~branch:b key)

  (* Single scans drive the segment's batch reader with the branch
     column as the selection bitmap: v2 blocks with no selected row are
     skipped before any read or decode (the interleaved-load penalty of
     §5.2 becomes a bitmap test instead of a page fetch), and pushed
     predicates run on the decoded columns before tuples materialize.
     Row-range parallel form: rows ascend within a range and ranges are
     consumed in ascending order, so the tuple stream matches the
     serial walk. *)
  let scan_col ?ctx ?(preds = []) t col f =
    let serial () =
      let poll = Gctx.poller ctx in
      Col_segment.scan ~sel:col ~preds t.seg (fun _row tuple ->
          poll ();
          f tuple)
    in
    if not (Par.available ()) then serial ()
    else
      let ranges = Par.chunk_ranges (Bitvec.length col) in
      if Array.length ranges <= 1 then serial ()
      else
        Par.parallel_iter_buffered ?ctx ~n:(Array.length ranges)
          ~produce:(fun i ->
            let poll = Gctx.poller ctx in
            let lo, hi = ranges.(i) in
            let acc = ref [] in
            Col_segment.scan ~sel:col ~preds ~from:lo ~upto:hi t.seg
              (fun _row tuple ->
                poll ();
                acc := tuple :: !acc);
            List.rev !acc)
          ~consume:(fun tuples -> List.iter f tuples)
          ()

  (* Page accounting stays amortized: the figure reported is the
     segment's page count rather than a per-row count (scattered rows
     under interleaved loads touch nearly every page, §5.2). *)
  let instrumented_scan_col ?ctx ?on_live span t col f =
    Obs.with_span span (fun () ->
        Obs.add c_scan_pages (Col_segment.page_count t.seg);
        Obs.add c_scan_bitmap_words (bitmap_words col);
        Obs.Prof.add Obs.Prof.Bitmap_words (bitmap_words col);
        (* emitted tuples == set bits in the branch column, so the
           count is amortized and the scan runs uninstrumented *)
        let live = Bitvec.pop_count col in
        Obs.add c_scan_tuples live;
        Obs.Prof.add Obs.Prof.Tuples_scanned live;
        Obs.Prof.add Obs.Prof.Tuples_emitted live;
        (match on_live with Some g -> g live | None -> ());
        scan_col ?ctx t col f)

  let scan ?ctx t b f =
    let col = B.column_view t.bitmap ~branch:b in
    if not (Obs.enabled ()) then scan_col ?ctx t col f
    else
      let table = wl_table t and branch = wl_branch t b in
      (* ambient context attributes buffer-pool page traffic during the
         scan body to this (table, branch) *)
      Workload.with_context ~table ~branch (fun () ->
          instrumented_scan_col ?ctx
            ~on_live:(fun live ->
              Workload.note_read ~table ~branch ~scanned:live ~emitted:live
                ~fragments:0 ())
            sp_scan t col f)

  (* Predicated scan: the emitted count is no longer the column's
     population, so it is measured rather than amortized. *)
  let scan_filtered ?ctx t b ~preds f =
    let col = B.column_view t.bitmap ~branch:b in
    if not (Obs.enabled ()) then scan_col ?ctx ~preds t col f
    else
      let table = wl_table t and branch = wl_branch t b in
      Workload.with_context ~table ~branch (fun () ->
          Obs.with_span sp_scan_filtered (fun () ->
              Obs.add c_scan_pages (Col_segment.page_count t.seg);
              Obs.add c_scan_bitmap_words (bitmap_words col);
              Obs.Prof.add Obs.Prof.Bitmap_words (bitmap_words col);
              let live = Bitvec.pop_count col in
              Obs.add c_scan_tuples live;
              Obs.Prof.add Obs.Prof.Tuples_scanned live;
              let n = ref 0 in
              scan_col ?ctx ~preds t col (fun tuple ->
                  incr n;
                  f tuple);
              Obs.Prof.add Obs.Prof.Tuples_emitted !n;
              Workload.note_read ~table ~branch ~scanned:live ~emitted:!n
                ~fragments:0 ()))

  let scan_version ?ctx t vid f =
    let col = bitmap_at_version t vid in
    if not (Obs.enabled ()) then scan_col ?ctx t col f
    else instrumented_scan_col ?ctx sp_scan_version t col f

  let multi_scan_impl ?ctx t branches f =
    let nrows = Col_segment.rows t.seg in
    let probe row =
      List.filter (fun b -> B.get t.bitmap ~branch:b ~row) branches
    in
    let ranges = if Par.available () then Par.chunk_ranges nrows else [||] in
    if Array.length ranges > 1 then
      (* rows ascend within a range and ranges are consumed in order,
         so the annotated stream matches the serial record walk below *)
      Par.parallel_iter_buffered ?ctx ~n:(Array.length ranges)
        ~produce:(fun i ->
          let poll = Gctx.poller ctx in
          let lo, hi = ranges.(i) in
          let acc = ref [] in
          Col_segment.iter ~from:lo ~upto:hi t.seg (fun row rv ->
              poll ();
              match rv with
              | Col_segment.Tombstone _ -> ()
              | Col_segment.Live tuple ->
                  let live = probe row in
                  if live <> [] then
                    acc := { tuple; in_branches = live } :: !acc);
          List.rev !acc)
        ~consume:(fun l -> List.iter f l)
        ()
    else
      let poll = Gctx.poller ctx in
      Col_segment.iter t.seg (fun row rv ->
          poll ();
          match rv with
          | Col_segment.Tombstone _ -> ()
          | Col_segment.Live tuple ->
              let live = probe row in
              if live <> [] then f { tuple; in_branches = live })

  let multi_scan ?ctx t branches f =
    if not (Obs.enabled ()) then multi_scan_impl ?ctx t branches f
    else
      Obs.with_span sp_multi_scan (fun () ->
          Obs.add c_scan_pages (Col_segment.page_count t.seg);
          List.iter (wl_touch t) branches;
          (* every segment row is probed against each head's bitmap *)
          Obs.Prof.add Obs.Prof.Tuples_scanned (Col_segment.rows t.seg);
          let n = ref 0 in
          multi_scan_impl ?ctx t branches (fun mt ->
              n := !n + 1;
              f mt);
          Obs.add c_multi_scan_tuples !n;
          Obs.Prof.add Obs.Prof.Tuples_emitted !n)

  (* Bitmap XOR yields candidate rows; a key-level content check drops
     rows whose key has an identical live copy on the other side, so
     diff is by content, consistently across engines. *)
  let diff_impl ?ctx t a b ~pos ~neg =
    let ca = B.column_view t.bitmap ~branch:a in
    let cb = B.column_view t.bitmap ~branch:b in
    (* candidate rows into the per-domain scratch, in place *)
    let sym = scratch () in
    Bitvec.copy_into ~src:ca ~dst:sym;
    Bitvec.xor_in_place sym cb;
    Gctx.charge_current ((Bitvec.length sym + 7) lsr 3);
    let emit_side ~live_in ~other out row =
      if Bitvec.get live_in row then begin
        let tuple = tuple_at t row in
        let key = Tuple.pk t.schema tuple in
        let same =
          match lookup t other key with
          | Some other_t -> Tuple.equal tuple other_t
          | None -> false
        in
        if not same then out tuple
      end
    in
    let serial () =
      let poll = Gctx.poller ctx in
      Bitvec.iter_set
        (fun row ->
          poll ();
          emit_side ~live_in:ca ~other:b pos row;
          emit_side ~live_in:cb ~other:a neg row)
        sym
    in
    if not (Par.available ()) then serial ()
    else
      let ranges = Par.chunk_ranges (Bitvec.length sym) in
      if Array.length ranges <= 1 then serial ()
      else
        Par.parallel_iter_buffered ?ctx ~n:(Array.length ranges)
          ~produce:(fun i ->
            let poll = Gctx.poller ctx in
            let lo, hi = ranges.(i) in
            let acc = ref [] in
            let buffer side tuple = acc := (side, tuple) :: !acc in
            Bitvec.iter_set_range
              (fun row ->
                poll ();
                emit_side ~live_in:ca ~other:b (buffer true) row;
                emit_side ~live_in:cb ~other:a (buffer false) row)
              sym ~lo ~hi;
            List.rev !acc)
          ~consume:
            (List.iter (fun (side, tu) -> if side then pos tu else neg tu))
          ()

  let diff ?ctx t a b ~pos ~neg =
    if not (Obs.enabled ()) then diff_impl ?ctx t a b ~pos ~neg
    else
      Obs.with_span sp_diff (fun () ->
          Obs.Prof.add Obs.Prof.Bitmap_words
            (bitmap_words (B.column_view t.bitmap ~branch:a));
          wl_touch t a;
          wl_touch t b;
          let n = ref 0 in
          let count out tuple =
            n := !n + 1;
            out tuple
          in
          diff_impl ?ctx t a b ~pos:(count pos) ~neg:(count neg);
          Obs.add c_diff_tuples !n;
          Obs.Prof.add Obs.Prof.Tuples_emitted !n)

  (* Change table for one branch relative to the LCA snapshot: rows set
     now but not at the LCA are new live copies; rows live at the LCA
     but not now are overwritten or deleted copies, which also supply
     the base tuples for three-way field merges (§3.2 Merge). *)
  let changes_since t col_lca branch =
    let col = B.column_view t.bitmap ~branch in
    let tbl : (Value.t, Merge_driver.side_change) Hashtbl.t =
      Hashtbl.create 256
    in
    let d = scratch () in
    Bitvec.copy_into ~src:col ~dst:d;
    Bitvec.diff_in_place d col_lca;
    Bitvec.iter_set
      (fun row ->
        let tuple = tuple_at t row in
        Hashtbl.replace tbl (Tuple.pk t.schema tuple)
          { Merge_driver.state = Some tuple; base = None })
      d;
    Bitvec.copy_into ~src:col_lca ~dst:d;
    Bitvec.diff_in_place d col;
    Bitvec.iter_set
      (fun row ->
        let tuple = tuple_at t row in
        let key = Tuple.pk t.schema tuple in
        match Hashtbl.find_opt tbl key with
        | Some c -> Hashtbl.replace tbl key { c with base = Some tuple }
        | None ->
            Hashtbl.replace tbl key
              { Merge_driver.state = None; base = Some tuple })
      d;
    (* drop keys whose content is back to the LCA state (e.g. updated
       to the same value through a fresh physical row): changes are by
       content, not by row identity *)
    Hashtbl.filter_map_inplace
      (fun _key (c : Merge_driver.side_change) ->
        if Merge_driver.opt_tuple_equal c.state c.base then None else Some c)
      tbl;
    tbl

  let merge_impl ?ctx t ~into ~from ~policy ~message =
    (* read phase polls the context; the install loop below never does,
       so an expired deadline cannot leave a half-applied merge *)
    let check () = match ctx with Some c -> Gctx.check c | None -> () in
    let v_ours = Vg.head t.graph into and v_theirs = Vg.head t.graph from in
    let lca = Vg.lca t.graph v_ours v_theirs in
    let col_lca = bitmap_at_version t lca in
    check ();
    let ours = changes_since t col_lca into in
    check ();
    let theirs = changes_since t col_lca from in
    check ();
    let decisions, stats = Merge_driver.decide ~policy ~ours ~theirs in
    check ();
    List.iter
      (fun (d : Merge_driver.decision) ->
        let install_state final =
          let current = Pk_index.find t.pk ~branch:into d.Merge_driver.d_key in
          match final with
          | None ->
              Option.iter
                (fun row ->
                  B.clear t.bitmap ~branch:into ~row;
                  Pk_index.remove t.pk ~branch:into d.Merge_driver.d_key)
                current
          | Some tuple ->
              let target_row =
                match d.Merge_driver.origin with
                | Merge_driver.O_theirs ->
                    (* adopt the source branch's physical copy *)
                    Pk_index.find t.pk ~branch:from d.Merge_driver.d_key
                | Merge_driver.O_merged | Merge_driver.O_ours -> None
              in
              let row =
                match target_row with
                | Some r -> r
                | None -> append_record t tuple
              in
              Option.iter
                (fun old -> if old <> row then B.clear t.bitmap ~branch:into ~row:old)
                current;
              B.set t.bitmap ~branch:into ~row;
              Pk_index.set t.pk ~branch:into d.Merge_driver.d_key row
        in
        match d.Merge_driver.changed_in, d.Merge_driver.origin with
        | `Ours, _ -> () (* already in place *)
        | _, Merge_driver.O_ours -> () (* precedence kept our copy *)
        | (`Theirs | `Both), _ -> install_state d.Merge_driver.final)
      decisions;
    let vid = Vg.merge_commit t.graph ~into ~theirs:v_theirs ~message in
    let col = B.snapshot t.bitmap ~branch:into in
    let idx = Commit_history.commit (history t into) col in
    Hashtbl.replace t.commit_loc vid (into, idx);
    set_dirty t into false;
    {
      merge_version = vid;
      conflicts = Merge_driver.conflicts_of decisions;
      keys_ours = stats.Merge_driver.n_ours;
      keys_theirs = stats.Merge_driver.n_theirs;
      keys_both = stats.Merge_driver.n_both;
    }

  let merge ?ctx t ~into ~from ~policy ~message =
    if not (Obs.enabled ()) then merge_impl ?ctx t ~into ~from ~policy ~message
    else
      Obs.with_span sp_merge (fun () ->
          Obs.incr c_merges;
          merge_impl ?ctx t ~into ~from ~policy ~message)

  let dataset_bytes t = Col_segment.byte_size t.seg

  let commit_meta_bytes t =
    (* count the persisted history files, including ones not yet
       lazily (re)opened in this process *)
    Array.fold_left
      (fun acc name ->
        if String.length name > 5 && String.sub name 0 5 = "hist_" then
          acc + (Unix.stat (Filename.concat t.dir name)).Unix.st_size
        else acc)
      0 (Sys.readdir t.dir)

  let storage_report t =
    let module R = Decibel_obs.Report in
    let rows = B.row_count t.bitmap in
    let branches =
      List.map
        (fun (br : Vg.branch) ->
          let live = B.live_count t.bitmap ~branch:br.Vg.bid in
          let chain, dbytes =
            match Hashtbl.find_opt t.commit_loc br.Vg.head with
            | Some (hb, idx) ->
                let h = history t hb in
                (Commit_history.replay_length h idx, Commit_history.disk_bytes h)
            | None -> (0, 0)
          in
          {
            R.br_name = br.Vg.name;
            br_id = br.Vg.bid;
            br_head = br.Vg.head;
            br_active = br.Vg.active;
            br_live_tuples = live;
            br_dead_tuples = rows - live;
            br_bitmap_bits = rows;
            br_density = B.density t.bitmap ~branch:br.Vg.bid;
            br_segments = 1;
            br_delta_chain = chain;
            br_delta_bytes = dbytes;
          })
        (Vg.branches t.graph)
    in
    (* a record is live when at least one active branch sees it *)
    let any_live = Bitvec.create ~capacity:(max 1 rows) () in
    List.iter
      (fun (br : Vg.branch) ->
        if br.Vg.active then
          Bitvec.union_in_place any_live
            (B.column_view t.bitmap ~branch:br.Vg.bid))
      (Vg.branches t.graph);
    let records = Col_segment.rows t.seg in
    let live_records = Bitvec.pop_count any_live in
    let segment =
      {
        R.sg_id = 0;
        sg_file = Filename.basename (Col_segment.path t.seg);
        sg_bytes = Col_segment.byte_size t.seg;
        sg_pages = Col_segment.page_count t.seg;
        sg_records = records;
        sg_live_records = live_records;
        sg_fragmentation = R.fragmentation ~live:live_records ~records;
      }
    in
    let chains =
      Hashtbl.fold
        (fun _ (b, idx) acc ->
          Commit_history.replay_length (history t b) idx :: acc)
        t.commit_loc []
    in
    let max_chain, mean_chain = R.chain_stats chains in
    let h_files, h_bytes =
      Array.fold_left
        (fun (n, bytes) name ->
          if String.length name > 5 && String.sub name 0 5 = "hist_" then
            (n + 1, bytes + (Unix.stat (Filename.concat t.dir name)).Unix.st_size)
          else (n, bytes))
        (0, 0) (Sys.readdir t.dir)
    in
    let columns =
      List.map
        (fun (c : Col_segment.col_report) ->
          {
            R.co_name = c.Col_segment.cr_name;
            co_encoding = c.cr_encoding;
            co_raw_bytes = c.cr_raw_bytes;
            co_enc_bytes = c.cr_enc_bytes;
          })
        (Array.to_list (Col_segment.column_report t.seg))
    in
    {
      R.e_format = Col_segment.format_version t.seg;
      e_branches = branches;
      e_segments = [ segment ];
      e_columns = columns;
      e_history =
        {
          R.h_files;
          h_bytes;
          h_commits = Hashtbl.length t.commit_loc;
          h_max_chain = max_chain;
          h_mean_chain = mean_chain;
        };
    }

  (* The manifest persists everything the segment file and commit
     histories do not: the version graph, the live bitmap, the segment
     metadata (v1: the row-offset table; v2: the block index behind the
     columnar magic header), the commit locator and per-branch
     dirtiness.  The key index is rebuilt from the bitmap on reopen.
     Format-v1 manifests stay byte-identical to the pre-columnar
     layout, so old repositories reopen unchanged. *)
  let manifest_path dir = Filename.concat dir "manifest.tf"

  let save_manifest t =
    let buf = Buffer.create 4096 in
    if Col_segment.format_version t.seg >= 2 then
      Col_segment.write_manifest_header buf;
    Binio.write_string buf B.layout;
    (* heap generation, v2 manifests only: v1 stays byte-identical *)
    if Col_segment.format_version t.seg >= 2 then
      Binio.write_varint buf t.gen;
    Binio.write_u8 buf (if t.compress then 1 else 0);
    Schema.serialize buf t.schema;
    Binio.write_string buf (Vg.serialize t.graph);
    (if Col_segment.format_version t.seg >= 2 then
       Col_segment.save_meta buf t.seg
     else begin
       Binio.write_varint buf (Col_segment.byte_size t.seg);
       let offsets = Col_segment.v1_offsets t.seg in
       Binio.write_varint buf (Vec.length offsets);
       Vec.iter (fun off -> Binio.write_varint buf off) offsets
     end);
    B.serialize buf t.bitmap;
    Binio.write_varint buf (Hashtbl.length t.commit_loc);
    Hashtbl.iter
      (fun vid (b, idx) ->
        Binio.write_varint buf vid;
        Binio.write_varint buf b;
        Binio.write_varint buf idx)
      t.commit_loc;
    Binio.write_varint buf (Hashtbl.length t.dirty);
    Hashtbl.iter
      (fun b d ->
        Binio.write_varint buf b;
        Binio.write_u8 buf (if d then 1 else 0))
      t.dirty;
    Binio.write_varint buf t.wal_marker;
    Atomic_file.write (manifest_path t.dir) (Buffer.contents buf)

  let flush t =
    Col_segment.flush t.seg;
    save_manifest t

  let migrate t =
    if Col_segment.format_version t.seg < 2 then begin
      t.seg <- Col_segment.migrate_to_v2 t.seg;
      save_manifest t
    end

  let open_existing ~dir ~pool =
    let s = Atomic_file.read (manifest_path dir) in
    let pos = ref 0 in
    let version = Col_segment.manifest_version s pos in
    let layout = Binio.read_string s pos in
    if layout <> B.layout then
      errorf "tuple-first: manifest written by %s layout, opening as %s"
        layout B.layout;
    let gen = if version >= 2 then Binio.read_varint s pos else 0 in
    let compress = Binio.read_u8 s pos = 1 in
    let schema = Schema.deserialize s pos in
    let graph = Vg.deserialize (Binio.read_string s pos) in
    let seg =
      if version >= 2 then
        Col_segment.open_v2 ~pool ~schema ~compress ~path:(seg_path dir gen) s
          pos
      else begin
        let heap_size = Binio.read_varint s pos in
        let heap = Heap_file.open_existing ~pool (seg_path dir 0) in
        (* drop bytes past the checkpoint (recovered via the WAL) *)
        Heap_file.truncate_to heap heap_size;
        let noff = Binio.read_varint s pos in
        let offsets = ref [] in
        for _ = 1 to noff do
          offsets := Binio.read_varint s pos :: !offsets
        done;
        Col_segment.of_v1 ~pool ~schema ~compress
          ~codec:(v1_codec ~schema ~compress) ~file:heap
          ~offsets:(List.rev !offsets)
      end
    in
    let bitmap = B.deserialize s pos in
    let commit_loc = Hashtbl.create 64 in
    let ncommits = Binio.read_varint s pos in
    for _ = 1 to ncommits do
      let vid = Binio.read_varint s pos in
      let b = Binio.read_varint s pos in
      let idx = Binio.read_varint s pos in
      Hashtbl.replace commit_loc vid (b, idx)
    done;
    let dirty = Hashtbl.create 16 in
    let ndirty = Binio.read_varint s pos in
    for _ = 1 to ndirty do
      let b = Binio.read_varint s pos in
      Hashtbl.replace dirty b (Binio.read_u8 s pos = 1)
    done;
    let wal_marker = Binio.read_varint s pos in
    let t =
      {
        dir;
        schema;
        compress;
        graph;
        seg;
        bitmap;
        pk = Pk_index.create ();
        gen;
        histories = Hashtbl.create 16;
        commit_loc;
        dirty;
        wal_marker;
        closed = false;
      }
    in
    (* rebuild the per-branch key index from the live bitmap *)
    for b = 0 to B.branch_count t.bitmap - 1 do
      let bid = Pk_index.add_branch t.pk ~from:None in
      assert (bid = b);
      Bitvec.iter_set
        (fun row -> Pk_index.set t.pk ~branch:b (key_at t row) row)
        (B.column_view t.bitmap ~branch:b)
    done;
    t

  let wal_marker t = t.wal_marker
  let set_wal_marker t lsn = t.wal_marker <- lsn

  (* {2 Maintenance: generational whole-heap rewrite}

     Tuple-first keeps every record ever written in one shared heap, so
     the only way to reclaim dead space is to rewrite the whole store:
     copy the rows any branch head or committed snapshot still reaches
     into a fresh heap at generation [gen+1], re-commit every history
     with remapped bitmaps (index-preserving, so [commit_loc] stays
     valid), rebuild the bitmap index and key index over the dense new
     row space, and swap in memory as the very last step.  Old-gen
     files keep their names until [mp_cleanup], so a crash anywhere
     before the manifest commit recovers the old generation
     untouched. *)

  (* Branches whose commit history exists (open handle or on-disk
     file).  Probing via [history] would create empty files, so check
     before opening. *)
  let hist_branches t =
    let bs = ref [] in
    for b = B.branch_count t.bitmap - 1 downto 0 do
      if
        Hashtbl.mem t.histories b
        || Sys.file_exists (Filename.concat t.dir (hist_file t.gen b))
      then bs := b :: !bs
    done;
    !bs

  let referenced_files t =
    seg_file t.gen :: List.map (hist_file t.gen) (hist_branches t)

  (* Rows reachable from any branch column (heads, including inactive
     branches whose snapshots remain checkable) or any committed
     snapshot in any history. *)
  let keep_set t hb =
    let keep = Bitvec.create ~capacity:(max 1 (B.row_count t.bitmap)) () in
    for b = 0 to B.branch_count t.bitmap - 1 do
      Bitvec.union_in_place keep (B.column_view t.bitmap ~branch:b)
    done;
    List.iter
      (fun b ->
        let h = history t b in
        for i = 0 to Commit_history.count h - 1 do
          Bitvec.union_in_place keep (Commit_history.checkout h i)
        done)
      hb;
    keep

  let plan_maintenance t ~kind ~target =
    match kind with
    | Engine_intf.M_materialize -> None
    | Engine_intf.M_compact when target <> seg_file t.gen -> None
    | Engine_intf.M_compact | Engine_intf.M_gc ->
        if Col_segment.format_version t.seg < 2 then None
        else
          let rows = Col_segment.rows t.seg in
          let hb = hist_branches t in
          let keep = keep_set t hb in
          let kept = Bitvec.pop_count keep in
          if kept >= rows then None
          else begin
            let gen' = t.gen + 1 in
            let nheap_path = seg_path t.dir gen' in
            let bytes_before =
              List.fold_left
                (fun acc b -> acc + Commit_history.disk_bytes (history t b))
                (Col_segment.byte_size t.seg)
                hb
            in
            (* old-generation artifacts to retire, captured at swap *)
            let retired :
                (Col_segment.t * Commit_history.t list * string list) option
                ref =
              ref None
            in
            let apply () =
              let nbranches = B.branch_count t.bitmap in
              (* dense remap old row -> new row for kept rows *)
              let map = Array.make (max 1 rows) (-1) in
              let next = ref 0 in
              Bitvec.iter_set
                (fun row ->
                  map.(row) <- !next;
                  incr next)
                keep;
              let remap col =
                let c = Bitvec.create ~capacity:(max 1 kept) () in
                Bitvec.iter_set (fun row -> Bitvec.set c map.(row)) col;
                c
              in
              let nseg =
                Col_segment.create_v2 ~pool:(Col_segment.pool t.seg)
                  ~schema:t.schema ~compress:t.compress ~path:nheap_path
              in
              let nhists = ref [] in
              (try
                 Decibel_fault.Failpoint.hit "maint.rewrite";
                 Bitvec.iter_set
                   (fun row ->
                     let nrow =
                       Col_segment.append nseg
                         (Col_segment.Live (tuple_at t row))
                     in
                     assert (nrow = map.(row)))
                   keep;
                 Col_segment.flush nseg;
                 (* re-commit every history at the new generation; commit
                    indices are preserved so [commit_loc] needs no edit *)
                 List.iter
                   (fun b ->
                     let oh = history t b in
                     let nh =
                       Commit_history.create
                         ~path:(Filename.concat t.dir (hist_file gen' b))
                     in
                     nhists := (b, nh) :: !nhists;
                     for i = 0 to Commit_history.count oh - 1 do
                       let idx =
                         Commit_history.commit nh
                           (remap (Commit_history.checkout oh i))
                       in
                       assert (idx = i)
                     done)
                   hb
               with e ->
                 List.iter
                   (fun (_, nh) ->
                     let p = Commit_history.path nh in
                     Commit_history.close nh;
                     (try Sys.remove p with Sys_error _ -> ()))
                   !nhists;
                 Col_segment.abandon nseg;
                 (try Sys.remove nheap_path with Sys_error _ -> ());
                 raise e);
              (* rebuild bitmap and key index over the new row space *)
              let nb = B.create () in
              for b = 0 to nbranches - 1 do
                let bid = B.add_branch nb ~from:None in
                assert (bid = b)
              done;
              for _ = 1 to kept do
                ignore (B.append_row nb)
              done;
              let npk = Pk_index.create () in
              for b = 0 to nbranches - 1 do
                B.overwrite_column nb ~branch:b
                  (remap (B.column_view t.bitmap ~branch:b));
                let bid = Pk_index.add_branch npk ~from:None in
                assert (bid = b);
                Pk_index.iter t.pk ~branch:b (fun key row ->
                    Pk_index.set npk ~branch:b key map.(row))
              done;
              (* swap: pure in-memory, nothing below can raise *)
              let old_seg = t.seg in
              let old_hists =
                List.filter_map (fun b -> Hashtbl.find_opt t.histories b) hb
              in
              let old_paths =
                Filename.concat t.dir (seg_file t.gen)
                :: List.map
                     (fun b -> Filename.concat t.dir (hist_file t.gen b))
                     hb
              in
              t.seg <- nseg;
              t.bitmap <- nb;
              t.pk <- npk;
              t.gen <- gen';
              Hashtbl.reset t.histories;
              List.iter
                (fun (b, nh) -> Hashtbl.replace t.histories b nh)
                !nhists;
              retired := Some (old_seg, old_hists, old_paths)
            in
            let cleanup () =
              match !retired with
              | None -> ()
              | Some (old_seg, old_hists, old_paths) ->
                  retired := None;
                  List.iter Commit_history.close old_hists;
                  (* abandon (not close): invalidates the buffer pool's
                     pages for the old heap without flushing bytes into
                     a file about to be unlinked *)
                  Col_segment.abandon old_seg;
                  List.iter
                    (fun p -> try Sys.remove p with Sys_error _ -> ())
                    old_paths
            in
            Some
              {
                Engine_intf.mp_kind = kind;
                mp_target = seg_file t.gen;
                mp_new_files =
                  seg_file gen' :: List.map (hist_file gen') hb;
                mp_old_files =
                  seg_file t.gen :: List.map (hist_file t.gen) hb;
                mp_bytes_before = bytes_before;
                mp_apply = apply;
                mp_cleanup = cleanup;
              }
          end

  let verify t =
    let errs = ref [] in
    (match Atomic_file.verify (manifest_path t.dir) with
    | Some reason -> errs := ("manifest.tf", reason) :: !errs
    | None -> ());
    let heap_name = Filename.basename (Col_segment.path t.seg) in
    List.iter
      (fun (_, reason) -> errs := (heap_name, reason) :: !errs)
      (Col_segment.verify t.seg);
    Hashtbl.iter
      (fun vid _ ->
        if not (Vg.mem_version t.graph vid) then
          errs :=
            ( "manifest.tf",
              Printf.sprintf "commit locator references unknown version %d"
                vid )
            :: !errs)
      t.commit_loc;
    List.rev !errs

  let crash t =
    if not t.closed then begin
      Col_segment.abandon t.seg;
      Hashtbl.iter (fun _ h -> Commit_history.close h) t.histories;
      t.closed <- true
    end

  let close t =
    if not t.closed then begin
      flush t;
      Col_segment.close t.seg;
      Hashtbl.iter (fun _ h -> Commit_history.close h) t.histories;
      t.closed <- true
    end
end

module Branch_oriented = Make (Branch_bitmap)
module Tuple_oriented = Make (Tuple_bitmap)
