(** Pull-based monitoring endpoint ([decibel serve-metrics]).

    Routes, all GET:
    - [/] — plain-text route listing;
    - [/metrics] — Prometheus text exposition of the {!Decibel_obs.Obs}
      registry plus storage-report gauges;
    - [/report] — the full {!Database.storage_report} as JSON;
    - [/events] — the structured event ring as JSONL;
    - [/governor] — resource-governor snapshot as JSON: admission
      stats (null when ungoverned), governor counters, pinned bytes,
      and per-branch circuit-breaker states;
    - [/profile] — the last N request profiles (EXPLAIN ANALYZE
      operator trees, see {!Decibel_obs.Obs.Prof}) as a JSON array,
      oldest first.

    Anything else is a 404; non-GET methods are a 405. *)

val handler : Database.t -> Decibel_obs.Http.handler
(** The route table bound to one open database. *)

val serve :
  ?host:string ->
  ?max_requests:int ->
  ?on_listen:(int -> unit) ->
  ?handle_signals:bool ->
  port:int ->
  Database.t ->
  unit
(** Listen ([port = 0] for ephemeral) and serve {!handler} on a
    single-threaded accept loop.  [on_listen] receives the bound port.
    [max_requests > 0] returns after that many requests (tests);
    otherwise loops forever.  The socket is closed on the way out.
    [handle_signals] installs SIGINT/SIGTERM handlers that close the
    listening socket and exit 0 (for the CLI's foreground server). *)
