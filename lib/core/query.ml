(** Versioned query operators.

    The four query classes of the paper's benchmark (§4.3, Table 1),
    expressed over the engine-independent {!Database} API:

    - Q1: scan the active records of one branch;
    - Q2: positive difference of two branches;
    - Q3: primary-key join of two branches under a predicate;
    - Q4: full head scan — records in the head of any branch matching a
      predicate, annotated with their active branches.

    Each operator takes an optional consumer and returns the result
    count, so benchmarks can drain results without materializing. *)

open Decibel_storage
open Types

type predicate = Tuple.t -> bool

type comparison = Eq | Ne | Lt | Le | Gt | Ge

let compare_op = function
  | Eq -> fun c -> c = 0
  | Ne -> fun c -> c <> 0
  | Lt -> fun c -> c < 0
  | Le -> fun c -> c <= 0
  | Gt -> fun c -> c > 0
  | Ge -> fun c -> c >= 0

let column_pred schema ~column op value : predicate =
  let idx = Schema.column_index schema column in
  let test = compare_op op in
  fun tuple -> test (Value.compare tuple.(idx) value)

(* Structured predicates carry the comparison as data instead of a
   closure, so engines with a columnar batch path can evaluate them on
   decoded values (or dictionary codes) before materializing tuples. *)
let col_pred_op = function
  | Eq -> Col_pred.Eq
  | Ne -> Col_pred.Ne
  | Lt -> Col_pred.Lt
  | Le -> Col_pred.Le
  | Gt -> Col_pred.Gt
  | Ge -> Col_pred.Ge

let col_pred schema ~column op value : Col_pred.t =
  Col_pred.make schema ~column (col_pred_op op) value

let always : predicate = fun _ -> true

let nop _ = ()

module Obs = Decibel_obs.Obs

(* Each query class runs under its own span so a profile tree shows
   the query operator as the parent of the engine-op nodes, with the
   post-predicate result count as its rows. *)
let qspan name f =
  if not (Obs.enabled ()) then f ()
  else
    Obs.with_span name (fun () ->
        let n = f () in
        Obs.Prof.set_rows n;
        n)

(** Q1: single-branch scan.  Structured [where] conjuncts are pushed
    into the engine scan ({!Database.scan_filtered}), which evaluates
    them below tuple materialization on columnar segments; the closure
    [pred] still filters row-wise on whatever comes back. *)
let q1_scan ?(pred = always) ?(where = []) ?(f = nop) db branch =
  qspan "query.q1_scan" (fun () ->
      let n = ref 0 in
      let consume t =
        if pred t then begin
          incr n;
          f t
        end
      in
      (match where with
      | [] -> Database.scan db branch consume
      | preds -> Database.scan_filtered db branch ~preds consume);
      !n)

(** Q1 over a committed version instead of a branch head. *)
let q1_scan_version ?(pred = always) ?(f = nop) db version =
  qspan "query.q1_scan_version" (fun () ->
      let n = ref 0 in
      Database.scan_version db version (fun t ->
          if pred t then begin
            incr n;
            f t
          end);
      !n)

(** Q2: positive diff — records in [b1] but not in [b2]. *)
let q2_pos_diff ?(f = nop) db b1 b2 =
  qspan "query.q2_pos_diff" (fun () ->
      let n = ref 0 in
      Database.diff db b1 b2
        ~pos:(fun t ->
          incr n;
          f t)
        ~neg:(fun _ -> ());
      !n)

(** Q3: primary-key join of two branch heads; emits pairs whose [b1]
    side satisfies the predicate.  Implemented as a hash join: build on
    the filtered left input, probe with the right (§5.2 Q3). *)
let q3_join ?(pred = always) ?(where = []) ?(f = fun _ _ -> ()) db b1 b2 =
  qspan "query.q3_join" (fun () ->
      let schema = Database.schema db in
      let build : (Value.t, Tuple.t) Hashtbl.t = Hashtbl.create 4096 in
      let collect t =
        if pred t then Hashtbl.replace build (Tuple.pk schema t) t
      in
      (match where with
      | [] -> Database.scan db b1 collect
      | preds -> Database.scan_filtered db b1 ~preds collect);
      let n = ref 0 in
      Database.scan db b2 (fun t2 ->
          match Hashtbl.find_opt build (Tuple.pk schema t2) with
          | Some t1 ->
              incr n;
              f t1 t2
          | None -> ());
      !n)

(** Q4: scan the heads of the given branches (default: all active
    branches), emitting records matching the predicate annotated with
    the branches they are live in. *)
let q4_heads ?branches ?(pred = always) ?(f = nop) db =
  qspan "query.q4_heads" (fun () ->
      let branches =
        match branches with Some bs -> bs | None -> Database.heads db
      in
      let n = ref 0 in
      Database.multi_scan db branches (fun (a : annotated) ->
          if pred a.tuple then begin
            incr n;
            f a.tuple
          end);
      !n)
