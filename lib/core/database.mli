(** Top-level database facade.

    Wraps any storage engine ({!Engine_intf.S}) behind one concrete
    type, adds branch-name resolution, persistence with optional
    write-ahead logging, and sessions with two-phase locking (paper
    §2.2.3).  This is the API applications use; the engines are
    selected by {!scheme} and otherwise indistinguishable. *)

open Decibel_storage
open Types

(** Storage scheme selector (paper §3, plus the testing oracle). *)
type scheme =
  | Tuple_first  (** Branch-oriented bitmap — the paper's default (§5). *)
  | Tuple_first_tuple_oriented
  | Version_first
  | Hybrid
  | Model  (** In-memory oracle for tests; does not persist. *)

val scheme_name : scheme -> string

val all_schemes : scheme list
(** The four physical schemes (excludes {!Model}). *)

type t

val open_ :
  ?pool:Buffer_pool.t ->
  ?durable:bool ->
  ?compress:bool ->
  ?format:int ->
  ?lock_timeout_s:float ->
  ?governor:Decibel_governor.Governor.Admission.t ->
  scheme:scheme ->
  dir:string ->
  schema:Schema.t ->
  unit ->
  t
(** Initialize a fresh repository in [dir].  [durable] arms write-ahead
    logging of every operation (default off); [compress] stores record
    payloads LZ77-compressed (the paper's §5.5 space/materialization
    trade-off, default off); [format] selects the segment layout —
    [2] (default) the columnar block format of
    {!Decibel_storage.Col_segment}, [1] the original row-per-record
    heap (kept for compatibility fixtures and comparison benchmarks);
    [lock_timeout_s] bounds session lock waits; [governor] arms
    admission control, load shedding and per-branch circuit breakers on
    the long-running operations (see {e Resource governance} below). *)

val reopen :
  ?pool:Buffer_pool.t -> ?scheme:scheme -> ?durable:bool ->
  ?governor:Decibel_governor.Governor.Admission.t -> dir:string ->
  unit -> t
(** Reopen a persisted repository: reloads the last checkpoint and
    replays the intact write-ahead-log tail beyond the checkpoint's
    LSN marker (crash recovery; entries the checkpoint already
    reflects are never double-applied).  The scheme is auto-detected
    from the manifest unless given.  [durable] defaults to whether the
    repository ever had a log. *)

val reopen_checkpoint :
  ?pool:Buffer_pool.t -> ?scheme:scheme ->
  ?governor:Decibel_governor.Governor.Admission.t -> dir:string -> unit -> t
(** Reopen the last checkpoint only — no WAL replay, no checkpoint
    rewrite, no log arming.  The read-only half of {!reopen}; fsck
    uses it to inspect a repository without mutating it. *)

val scheme_of : t -> string
val schema : t -> Schema.t
val graph : t -> Decibel_graph.Version_graph.t

val branch_named : t -> string -> branch_id
(** Raises {!Types.Engine_error} for unknown names. *)

val branch_name : t -> branch_id -> string

(** {1 Version control} *)

val create_branch : t -> name:string -> from:version_id -> branch_id

val branch_from : t -> name:string -> of_branch:branch_id -> branch_id
(** Branch from another branch's current head commit. *)

val commit : t -> branch_id -> message:string -> version_id

val merge :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  t ->
  into:branch_id ->
  from:branch_id ->
  policy:merge_policy ->
  message:string ->
  merge_result
(** [ctx] is polled during the merge's read phase only (computing
    change sets and decisions); once installation begins the merge
    runs to completion, so a deadline or cancel never tears state. *)

(** {1 Data modification (branch working heads)} *)

val insert : t -> branch_id -> Tuple.t -> unit
val update : t -> branch_id -> Tuple.t -> unit
val delete : t -> branch_id -> Value.t -> unit
val lookup : t -> branch_id -> Value.t -> Tuple.t option

(** {1 Scans and comparison} *)

val scan :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  t -> branch_id -> (Tuple.t -> unit) -> unit

val scan_filtered :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  t -> branch_id -> preds:Col_pred.t list -> (Tuple.t -> unit) -> unit
(** {!scan} restricted to records satisfying every structured
    predicate.  On format-v2 segments the predicates are pushed below
    tuple materialization (and the branch bitmap below block
    decompression); engines without a batch path filter row-wise. *)

val scan_version :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  t -> version_id -> (Tuple.t -> unit) -> unit

val multi_scan :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  t -> branch_id list -> (annotated -> unit) -> unit

val diff :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  t -> branch_id -> branch_id -> pos:(Tuple.t -> unit) ->
  neg:(Tuple.t -> unit) -> unit

val scan_list : t -> branch_id -> Tuple.t list
val scan_version_list : t -> version_id -> Tuple.t list
val count : t -> branch_id -> int

val update_all : t -> branch_id -> (Tuple.t -> Tuple.t) -> int
(** Table-wise update (paper §5.5): rewrite every live record; returns
    the number touched. *)

val heads : t -> branch_id list
(** Active (non-retired) branches. *)

(** {1 Storage introspection and lifecycle} *)

val dataset_bytes : t -> int
val commit_meta_bytes : t -> int
val pool : t -> Buffer_pool.t

val format_version : t -> int
(** Segment layout version of the open repository: [1] (row heap) or
    [2] (columnar blocks).  A v1 repository reopened from disk is
    read-only ({!health} reports it degraded) until {!migrate}. *)

val migrate : t -> unit
(** Rewrite format-v1 segments as v2 in place (row order preserved, so
    every locator, bitmap and commit history stays valid) and persist a
    v2 manifest.  Clears the v1 read-only degradation; no-op on v2
    repositories.  Exposed to applications via [fsck --migrate]. *)

val drop_caches : t -> unit
(** Flush, then empty the buffer pool (cold-cache benchmarking). *)

val metrics : t -> Decibel_obs.Obs.snapshot
(** Snapshot of the process-wide metrics registry ({!Decibel_obs.Obs}).
    Counters are monotonic over the process lifetime, so diff two
    snapshots to attribute work to an interval. *)

val metrics_json : t -> string
(** [metrics t] rendered as one JSON object. *)

val storage_report : t -> Decibel_obs.Report.t
(** [ANALYZE]-style storage introspection: the engine's per-branch /
    per-segment statistics (live vs. dead tuples, bitmap density,
    delta-chain depth and bytes) composed with version-graph shape and
    buffer-pool residency.  Read-only, and independent of the
    {!Decibel_obs.Obs} recording switch. *)

val dump_trace : t -> path:string -> unit
(** Write recorded tracing spans to [path] in Chrome trace format
    (one JSON event per line; load via chrome://tracing or Perfetto). *)

val profile :
  ?label:string -> t -> (unit -> 'a) -> 'a * Decibel_obs.Obs.Prof.profile
(** EXPLAIN ANALYZE: run [f] — any sequence of operations against this
    database — under a fresh request trace and return its result with
    the per-operator profile tree (rows, timings and cost counters per
    node, worker-domain work attributed to the request).  If [f]
    raises, a partial profile is still flushed (see
    {!Decibel_obs.Obs.Prof.profiled}) and the exception propagates.
    The profile is also kept in the profiler's bounded ring, which the
    monitor serves at [/profile]. *)

val last_profile : t -> Decibel_obs.Obs.Prof.profile option
(** The most recently completed profile, if any. *)

val recent_profiles : t -> Decibel_obs.Obs.Prof.profile list
(** The profiler ring's contents, oldest first. *)

val flush : t -> unit
(** Checkpoint: persist engine manifests and truncate the WAL.  Also
    checkpoints this database's per-branch workload statistics to
    [workload.jsonl] next to the manifest; {!reopen} and
    {!reopen_checkpoint} merge it back, so access frequencies survive
    restarts. *)

val close : t -> unit

(** {1 Workload telemetry, storage advice and health}

    Per-branch access accounting ({!Decibel_obs.Workload}) is fed from
    hooks inside the engines and the buffer pool whenever the
    {!Decibel_obs.Obs} recording switch is on.  The advisor joins it
    with {!storage_report} through the recreation/storage cost model;
    the watchdog turns both into a sticky ok/warn/critical status. *)

val workload : t -> Decibel_obs.Workload.stats list
(** This database's slice of the process-wide workload table (entries
    whose table name matches the schema), rates decayed to now. *)

val advise :
  ?thresholds:Decibel_obs.Advisor.thresholds ->
  t ->
  Decibel_obs.Advisor.recommendation list
(** Ranked, explained storage recommendations (materialize / compact /
    gc / rechunk) from the current report and workload. *)

val health_tick : t -> Decibel_obs.Watchdog.status
(** Run one watchdog evaluation over fresh report/workload snapshots
    and return (and store) the new sticky status.  On a governed
    database the tick takes a cheap admission slot under a short
    deadline; if the governor sheds or expires it, the previous sticky
    status is returned unchanged. *)

val watchdog_status : t -> Decibel_obs.Watchdog.status
(** The sticky status from the last {!health_tick} (all-ok with
    [st_ticks = 0] before the first). *)

(** {1 Crash-safe maintenance}

    The executor for advisor recommendations: compaction, delta-chain
    materialization and GC, run through the engines'
    {!Engine_intf.S.plan_maintenance} hooks under a journaled protocol
    ([maint.jsonl]) whose atomic commit point is the engine manifest
    write.  A crash at any point leaves either the old or the new
    physical state — never a torn hybrid; {!reopen} (and
    [fsck --repair]) finish or roll back whatever the journal left
    pending.  Results are fingerprint-checked against the
    pre-maintenance content before the swap commits. *)

type maint_result = {
  m_kind : string;  (** "compact" | "materialize" | "gc" *)
  m_target : string;  (** branch name or segment file rewritten *)
  m_reclaimed : int;  (** on-disk bytes freed (>= 0) *)
}

type maint_resolution = {
  mr_id : int;  (** journal task id *)
  mr_kind : string;
  mr_target : string;
  mr_action : [ `Finished | `Rolled_back ];
  mr_removed : string list;  (** files reclaimed or rolled back *)
}

val run_maintenance :
  t -> kind:Engine_intf.maint_kind -> target:string -> maint_result option
(** Plan and execute one maintenance task crash-safely.  [None] when
    the engine has nothing to do for this kind/target (or the
    repository is format v1).  Raises on a failed task; the store is
    left on its pre-task state (in memory for plan/apply failures, on
    disk always — recovery rolls back the journaled intent). *)

val maintenance_tick :
  ?thresholds:Decibel_obs.Advisor.thresholds -> t -> maint_result list
(** One advisor-driven pass: execute every current recommendation
    that maps to an engine task.  No-op on degraded or v1 stores. *)

val start_maintenance :
  ?interval_s:float ->
  ?thresholds:Decibel_obs.Advisor.thresholds ->
  t ->
  unit
(** Arm the background maintenance service: {!maintenance_tick} every
    [interval_s] (default 1.0) seconds on a dedicated domain.  The
    tick serializes against explicit {!run_maintenance} calls through
    the maintenance mutex, but the engines are not internally
    synchronized — concurrent user writes during a tick need
    application-level quiescing.  Stopped by {!stop_maintenance},
    {!close} and {!crash}. *)

val stop_maintenance : t -> unit
val maintenance_running : t -> bool

val resolve_maintenance : ?dry_run:bool -> t -> maint_resolution list
(** Finish or roll back maintenance the journal left pending: a task
    whose new files all reached the committed manifest is finished
    (surviving old files reclaimed), anything else is rolled back
    (surviving new files removed).  Truncates an all-terminal journal.
    {!reopen} runs this before WAL replay; [fsck] uses [dry_run] to
    report without repairing. *)

val fingerprint : t -> string
(** Digest of the logical content (per active branch, sorted encoded
    live tuples) — layout-independent, so any correct physical rewrite
    preserves it.  The torture harness's state identity check. *)

(** {1 Fault tolerance}

    Detected corruption (a checksum failure escaping an engine
    operation) quarantines the branch it surfaced on and degrades the
    database to read-only: intact branches stay readable, writes raise
    {!Types.Engine_error} until the repository is repaired, and the
    ["storage.corruption_detected"] counter plus a [Warn] event record
    the transition. *)

type health = Healthy | Degraded of string

val health : t -> health

val quarantined : t -> (branch_id * string) list
(** Quarantined branches with the corruption that condemned them. *)

val verify : t -> (string * string) list
(** Engine-side fsck: manifest trailer checksum, per-record heap and
    segment checksums, commit-locator cross-references.  Returns
    [(artifact, reason)] pairs; empty means clean.  Read-only. *)

val wal_marker : t -> int
(** LSN of the last write-ahead-log entry the engine state reflects. *)

val crash : t -> unit
(** Crash simulation (torture harness): drop all in-memory buffers and
    close descriptors {e without} checkpointing, leaving on disk only
    what the WAL and the last flush made durable.  The handle is
    unusable afterwards; recover with {!reopen}. *)

(** {1 Sessions}

    A session captures a user's state — the commit or branch its
    operations read or modify (paper §2.2.3).  Writes take an exclusive
    lock on the branch, reads a shared lock; locks are held until
    [session_commit] or [end_transaction] (strict two-phase locking).
    Lock waits beyond the configured timeout raise
    {!Decibel_storage.Lock_manager.Deadlock}. *)

type session

val new_session : t -> session
val session_checkout_branch : session -> string -> unit
val session_checkout_version : session -> version_id -> unit
val current_branch : session -> branch_id
val session_insert : session -> Tuple.t -> unit
val session_update : session -> Tuple.t -> unit
val session_delete : session -> Value.t -> unit
val session_scan : session -> (Tuple.t -> unit) -> unit
val session_commit : session -> message:string -> version_id
val end_transaction : session -> unit

val locks_of : t -> Lock_manager.t
(** The lock manager (for tests and instrumentation). *)

(** {1 Resource governance}

    A database opened with [?governor] routes every long-running
    operation (scan, scan_version, multi_scan, diff, merge) through a
    per-branch circuit breaker and the admission controller: cheap
    single-branch scans take one slot unit, heavy multi-branch work
    takes several, and when the wait queue is full arrivals are shed
    with {!Decibel_governor.Governor.Overloaded}.  An explicit [?ctx]
    is honored with or without a governor: it is polled at chunk
    boundaries inside the engines, installed ambiently so buffer-pool
    page loads charge its byte budget and lock waits respect its
    deadline, and fully released (pins, charges) however the operation
    ends. *)

val governor_stats :
  t -> Decibel_governor.Governor.Admission.stats option
(** Admission-controller snapshot; [None] on an ungoverned database. *)

val breaker :
  t -> branch_id -> Decibel_governor.Governor.Breaker.t option
(** The branch's circuit breaker (created on first use); [None] on an
    ungoverned database.  Exposed for tests and the monitor. *)

val breaker_list :
  t -> (string * Decibel_governor.Governor.Breaker.t) list
(** Breakers that have been instantiated so far, by branch name. *)
