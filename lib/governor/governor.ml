(* Resource governor: cancellation contexts, weighted admission with
   bounded queues and load shedding, and per-resource circuit
   breakers.  See governor.mli for the model. *)

module Obs = Decibel_obs.Obs

exception Cancelled
exception Deadline_exceeded
exception Budget_exceeded of { charged : int; budget : int }
exception Overloaded of { retry_after_ms : int }

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Governor.Cancelled"
    | Deadline_exceeded -> Some "Governor.Deadline_exceeded"
    | Budget_exceeded { charged; budget } ->
        Some
          (Printf.sprintf "Governor.Budget_exceeded (%d of %d bytes)" charged
             budget)
    | Overloaded { retry_after_ms } ->
        Some
          (Printf.sprintf "Governor.Overloaded (retry after %d ms)"
             retry_after_ms)
    | _ -> None)

let c_admitted = Obs.counter "governor.admitted"
let c_shed = Obs.counter "governor.shed"
let c_cancelled = Obs.counter "governor.cancelled"
let c_deadline = Obs.counter "governor.deadline_exceeded"
let c_budget = Obs.counter "governor.budget_exceeded"
let g_queue = Obs.gauge "governor.queue_depth"
let g_pinned = Obs.gauge "governor.pinned_bytes"
let h_wait = Obs.histogram "governor.admission_wait"

(* ------------------------------------------------------------------ *)

module Ctx = struct
  type t = {
    deadline : float option; (* absolute, Unix.gettimeofday base *)
    budget : int option; (* transient bytes *)
    cancel_flag : bool Atomic.t;
    charged : int Atomic.t;
    released : bool Atomic.t;
    trace : Obs.Prof.trace option; (* request profiling identity *)
  }

  (* one global accumulator behind the pinned-bytes gauge; contexts
     add on charge and subtract what remains on [release] *)
  let global_pinned = Atomic.make 0

  let sync_pinned () = Obs.set_gauge g_pinned (float (Atomic.get global_pinned))

  let create ?deadline_ms ?budget_bytes ?trace () =
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float ms /. 1e3))
        deadline_ms
    in
    {
      deadline;
      budget = budget_bytes;
      cancel_flag = Atomic.make false;
      charged = Atomic.make 0;
      released = Atomic.make false;
      trace;
    }

  let cancel t = Atomic.set t.cancel_flag true
  let cancelled t = Atomic.get t.cancel_flag
  let deadline t = t.deadline
  let trace t = t.trace

  let remaining_ms t =
    Option.map
      (fun d -> int_of_float (ceil ((d -. Unix.gettimeofday ()) *. 1e3)))
      t.deadline

  let check t =
    if Atomic.get t.cancel_flag then raise Cancelled;
    (match t.deadline with
    | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
    | _ -> ());
    match t.budget with
    | Some b when Atomic.get t.charged > b ->
        raise (Budget_exceeded { charged = Atomic.get t.charged; budget = b })
    | _ -> ()

  let poller ?(stride = 256) ctx =
    match ctx with
    | None -> fun () -> ()
    | Some c ->
        (* round the stride up to a power of two so the poll test is a
           single mask *)
        let s = ref 1 in
        while !s < stride do
          s := !s lsl 1
        done;
        let mask = !s - 1 in
        let n = ref 0 in
        fun () ->
          incr n;
          if !n land mask = 0 then check c

  let charge t n =
    if n > 0 && not (Atomic.get t.released) then begin
      ignore (Atomic.fetch_and_add t.charged n);
      ignore (Atomic.fetch_and_add global_pinned n);
      sync_pinned ()
    end

  let uncharge t n =
    if n > 0 && not (Atomic.get t.released) then begin
      ignore (Atomic.fetch_and_add t.charged (-n));
      ignore (Atomic.fetch_and_add global_pinned (-n));
      sync_pinned ()
    end

  let charged_bytes t = Atomic.get t.charged

  let release t =
    if not (Atomic.exchange t.released true) then begin
      let n = Atomic.get t.charged in
      if n <> 0 then ignore (Atomic.fetch_and_add global_pinned (-n));
      sync_pinned ()
    end

  let pinned_bytes () = Atomic.get global_pinned

  (* ambient per-domain context *)
  let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
  let current () = Domain.DLS.get current_key

  let with_current ctx f =
    let saved = Domain.DLS.get current_key in
    Domain.DLS.set current_key ctx;
    let body () =
      Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f
    in
    (* a context that carries a trace makes it ambient for its extent;
       a traceless context (or None) never severs an already-ambient
       trace, so Database.profile keeps attributing through the
       per-op governed contexts it did not create *)
    match ctx with
    | Some { trace = Some tr; _ } -> Obs.Prof.with_attribution tr body
    | _ -> body ()

  let charge_current n =
    match current () with Some c -> charge c n | None -> ()
end

(* ------------------------------------------------------------------ *)

type op_class = Cheap | Heavy

module Admission = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    capacity : int;
    heavy_weight : int;
    max_queue : int;
    mutable in_use : int;
    mutable waiting : int;
    mutable admitted : int;
    mutable shed : int;
    (* exponential moving average of slot-hold seconds; the basis of
       the [retry_after_ms] shedding hint *)
    mutable avg_hold_s : float;
    mutable watchdog : bool; (* ticker spawned? *)
  }

  type slot = { owner : t; weight : int; t_grant : float; done_ : bool Atomic.t }

  let create ?(capacity = 64) ?(heavy_weight = 4) ?(max_queue = 128) () =
    if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      capacity;
      heavy_weight = max 1 (min heavy_weight capacity);
      max_queue = max 0 max_queue;
      in_use = 0;
      waiting = 0;
      admitted = 0;
      shed = 0;
      avg_hold_s = 0.005;
      watchdog = false;
    }

  let weight t = function Cheap -> 1 | Heavy -> t.heavy_weight

  let retry_after_ms t =
    (* expect to wait about one average hold per queued op ahead of us *)
    let per = max 0.001 t.avg_hold_s in
    max 1 (int_of_float (ceil (per *. float (t.waiting + 1) *. 1e3)))

  (* [Condition] has no timed wait, so deadline-bounded waiters rely on
     a lazily-spawned ticker broadcasting while anyone waits (same
     scheme as [Lock_manager]'s watchdog). *)
  let ensure_watchdog t =
    if not t.watchdog then begin
      t.watchdog <- true;
      let _tid =
        Thread.create
          (fun () ->
            let rec loop () =
              Thread.delay 0.002;
              Mutex.lock t.mutex;
              if t.waiting > 0 then Condition.broadcast t.cond;
              Mutex.unlock t.mutex;
              loop ()
            in
            loop ())
          ()
      in
      ()
    end

  let set_queue_gauge t = Obs.set_gauge g_queue (float t.waiting)

  let admit ?ctx t cls =
    let w = weight t cls in
    let t0 = Unix.gettimeofday () in
    Mutex.lock t.mutex;
    let granted () =
      t.in_use <- t.in_use + w;
      t.admitted <- t.admitted + 1;
      Mutex.unlock t.mutex;
      Obs.incr c_admitted;
      Obs.observe h_wait (Unix.gettimeofday () -. t0);
      { owner = t; weight = w; t_grant = Unix.gettimeofday ();
        done_ = Atomic.make false }
    in
    if t.in_use + w <= t.capacity then granted ()
    else if t.waiting >= t.max_queue then begin
      t.shed <- t.shed + 1;
      let hint = retry_after_ms t in
      Mutex.unlock t.mutex;
      Obs.incr c_shed;
      Obs.event ~level:Obs.Warn ~comp:"governor"
        ~attrs:[ ("retry_after_ms", string_of_int hint) ]
        "admission queue full; operation shed";
      raise (Overloaded { retry_after_ms = hint })
    end
    else begin
      (match ctx with Some _ -> ensure_watchdog t | None -> ());
      t.waiting <- t.waiting + 1;
      set_queue_gauge t;
      let leave_queue () =
        t.waiting <- t.waiting - 1;
        set_queue_gauge t
      in
      let rec wait () =
        (* poll the context while queued so a cancelled or expired
           operation never consumes a slot *)
        (match ctx with
        | Some c -> (
            try Ctx.check c
            with e ->
              leave_queue ();
              Mutex.unlock t.mutex;
              raise e)
        | None -> ());
        if t.in_use + w <= t.capacity then begin
          leave_queue ();
          granted ()
        end
        else begin
          Condition.wait t.cond t.mutex;
          wait ()
        end
      in
      wait ()
    end

  let release s =
    if not (Atomic.exchange s.done_ true) then begin
      let t = s.owner in
      let held = Unix.gettimeofday () -. s.t_grant in
      Mutex.lock t.mutex;
      t.in_use <- t.in_use - s.weight;
      t.avg_hold_s <- (0.8 *. t.avg_hold_s) +. (0.2 *. held);
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end

  type stats = {
    capacity : int;
    in_use : int;
    queue_depth : int;
    admitted : int;
    shed : int;
    avg_hold_ms : float;
  }

  let stats t =
    Mutex.lock t.mutex;
    let s =
      {
        capacity = t.capacity;
        in_use = t.in_use;
        queue_depth = t.waiting;
        admitted = t.admitted;
        shed = t.shed;
        avg_hold_ms = t.avg_hold_s *. 1e3;
      }
    in
    Mutex.unlock t.mutex;
    s
end

(* ------------------------------------------------------------------ *)

module Breaker = struct
  type state = Closed | Open | Half_open

  exception Tripped of string

  let () =
    Printexc.register_printer (function
      | Tripped name -> Some (Printf.sprintf "Breaker.Tripped(%s)" name)
      | _ -> None)

  type t = {
    name : string;
    threshold : int;
    cooldown_s : float;
    mutex : Mutex.t;
    mutable state : state;
    mutable failures : int; (* consecutive *)
    mutable opened_at : float;
  }

  let create ?(threshold = 5) ?(cooldown_s = 30.) ~name () =
    {
      name;
      threshold = max 1 threshold;
      cooldown_s;
      mutex = Mutex.create ();
      state = Closed;
      failures = 0;
      opened_at = 0.;
    }

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open"

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let check t =
    locked t (fun () ->
        match t.state with
        | Closed | Half_open -> ()
        | Open ->
            if Unix.gettimeofday () -. t.opened_at >= t.cooldown_s then begin
              t.state <- Half_open;
              Obs.event ~comp:"governor"
                ~attrs:[ ("breaker", t.name) ]
                "circuit breaker half-open"
            end
            else raise (Tripped t.name))

  let success t =
    locked t (fun () ->
        t.failures <- 0;
        match t.state with
        | Half_open | Open ->
            t.state <- Closed;
            Obs.event ~comp:"governor"
              ~attrs:[ ("breaker", t.name) ]
              "circuit breaker closed"
        | Closed -> ())

  let trip t =
    t.state <- Open;
    t.opened_at <- Unix.gettimeofday ();
    Obs.event ~level:Obs.Warn ~comp:"governor"
      ~attrs:
        [ ("breaker", t.name); ("failures", string_of_int t.failures) ]
      "circuit breaker tripped"

  let failure t =
    locked t (fun () ->
        t.failures <- t.failures + 1;
        match t.state with
        | Half_open -> trip t (* the trial failed: straight back open *)
        | Closed -> if t.failures >= t.threshold then trip t
        | Open -> ())

  let state t = locked t (fun () -> t.state)
  let name t = t.name
  let consecutive_failures t = locked t (fun () -> t.failures)
end

(* ------------------------------------------------------------------ *)

let note_outcome = function
  | Cancelled -> Obs.incr c_cancelled
  | Deadline_exceeded -> Obs.incr c_deadline
  | Budget_exceeded _ -> Obs.incr c_budget
  | _ -> ()

let counters () =
  List.map
    (fun c -> (Obs.counter_name c, Obs.counter_value c))
    [ c_admitted; c_shed; c_cancelled; c_deadline; c_budget ]
