(** Resource governor: cooperative cancellation, admission control and
    load shedding for long-running operations.

    Decibel's heavy queries (multi-branch scans, diffs, merges — paper
    §4–5) can hold the buffer pool and the domain pool for hundreds of
    milliseconds.  Under concurrent traffic that is enough to starve
    every cheap single-branch scan queued behind them.  This module
    provides the three standard defenses:

    - {!Ctx}: a per-operation cancellation context (deadline, manual
      cancel, byte budget) that operations poll at chunk boundaries.
      Cancellation is {e cooperative}: nothing is interrupted
      mid-mutation, an operation only stops at a poll point, and poll
      points are placed exclusively on read paths.
    - {!module-Admission}: a weighted-semaphore admission controller with a
      bounded wait queue.  When the queue is full new arrivals are shed
      immediately with {!Overloaded} instead of queueing unboundedly.
    - {!Breaker}: a per-resource circuit breaker that trips after N
      consecutive internal failures and half-opens after a cool-down,
      so a corrupted or persistently failing branch stops consuming
      admission slots.

    All state is domain-safe; contexts may be polled from pool workers
    while the submitting thread blocks. *)

exception Cancelled
(** The context's cancel flag was set. *)

exception Deadline_exceeded
(** The context's deadline passed before the operation finished. *)

exception Budget_exceeded of { charged : int; budget : int }
(** The operation's transient allocations exceeded its byte budget. *)

exception Overloaded of { retry_after_ms : int }
(** Admission queue full; shed immediately.  [retry_after_ms] is a
    hint derived from the recent average slot-hold time. *)

(** {1 Cancellation contexts} *)

module Ctx : sig
  type t

  val create :
    ?deadline_ms:int ->
    ?budget_bytes:int ->
    ?trace:Decibel_obs.Obs.Prof.trace ->
    unit ->
    t
  (** [deadline_ms] is relative to now; [budget_bytes] bounds the
      transient bytes ({!charge}) the operation may accumulate.  Both
      default to unlimited.  [trace] attaches a request-profiling
      identity: {!with_current} then also installs it as the ambient
      {!Decibel_obs.Obs.Prof} trace for the context's extent, so cost
      counters attribute to the request that created the context. *)

  val cancel : t -> unit
  (** Set the manual cancel flag (safe from any thread or domain);
      takes effect at the operation's next poll point. *)

  val cancelled : t -> bool

  val deadline : t -> float option
  (** Absolute deadline ([Unix.gettimeofday] base), if any. *)

  val trace : t -> Decibel_obs.Obs.Prof.trace option
  (** The profiling trace attached at {!create}, if any. *)

  val remaining_ms : t -> int option
  (** Milliseconds until the deadline; negative once overdue. *)

  val check : t -> unit
  (** The poll point: raises {!Cancelled}, {!Deadline_exceeded} or
      {!Budget_exceeded} (in that precedence) if the context has been
      invalidated.  Cheap enough for chunk-boundary polling. *)

  val poller : ?stride:int -> t option -> unit -> unit
  (** [poller ctx] is a closure for tight serial loops: every [stride]
      calls (default 256, rounded to a power of two) it runs {!check}.
      [poller None] is a no-op closure. *)

  val charge : t -> int -> unit
  (** Account [n] transient bytes (page loads, scratch buffers) to the
      operation.  Never raises — budget violations surface at the next
      {!check}, which keeps charge sites (buffer-pool page loads,
      decode buffers) free of control flow. *)

  val uncharge : t -> int -> unit
  (** Return bytes charged with {!charge} (e.g. a scratch buffer freed
      mid-operation). *)

  val charged_bytes : t -> int

  val release : t -> unit
  (** Drop every outstanding charge of this context from the global
      pinned-bytes gauge.  Idempotent; called by the owner (the
      database facade) when the operation ends, normally or not. *)

  (** {2 Ambient context}

      The context travels implicitly (per-domain) so that layers
      without a [?ctx] parameter — the buffer pool charging page
      loads, the lock manager honoring deadlines — can see it. *)

  val current : unit -> t option
  val with_current : t option -> (unit -> 'a) -> 'a
  (** Install the context for the dynamic extent of the callback on
      the calling domain (saved/restored exception-safely).  If the
      context carries a {!create}-time [trace], it is also installed
      as the ambient profiling trace; a traceless context (or [None])
      leaves any already-ambient trace in place. *)

  val charge_current : int -> unit
  (** [charge] against the ambient context, if any. *)

  val pinned_bytes : unit -> int
  (** Sum of outstanding charges across all live contexts (mirrored on
      the ["governor.pinned_bytes"] gauge). *)
end

(** {1 Admission control} *)

type op_class =
  | Cheap  (** single-branch scan, version scan: 1 slot unit *)
  | Heavy  (** multi-scan, diff, merge: several units, configurable *)

module Admission : sig
  type t

  val create :
    ?capacity:int -> ?heavy_weight:int -> ?max_queue:int -> unit -> t
  (** [capacity] slot units (default 64); a [Heavy] op takes
      [heavy_weight] units (default 4, clamped to [capacity]); at most
      [max_queue] operations may wait for slots (default 128) — beyond
      that arrivals are shed with {!Overloaded}. *)

  type slot

  val admit : ?ctx:Ctx.t -> t -> op_class -> slot
  (** Block until slot units are available (honoring [ctx]'s deadline
      and cancel flag while waiting) or shed with {!Overloaded} when
      the wait queue is full.  Counts
      ["governor.admitted"]/["governor.shed"], observes the wait on
      ["governor.admission_wait_ms"] and keeps the
      ["governor.queue_depth"] gauge current. *)

  val release : slot -> unit
  (** Return the units (idempotent) and feed the hold time into the
      average behind [retry_after_ms]. *)

  type stats = {
    capacity : int;
    in_use : int;
    queue_depth : int;
    admitted : int;
    shed : int;
    avg_hold_ms : float;
  }

  val stats : t -> stats
end

(** {1 Circuit breaker} *)

module Breaker : sig
  type t

  type state = Closed | Open | Half_open

  exception Tripped of string
  (** Raised by {!check} while the breaker is open; carries the
      resource name. *)

  val create : ?threshold:int -> ?cooldown_s:float -> name:string -> unit -> t
  (** Trips after [threshold] {e consecutive} failures (default 5);
      stays open for [cooldown_s] (default 30.), then half-opens to
      admit one trial operation. *)

  val check : t -> unit
  (** Raises {!Tripped} when open (and the cool-down has not elapsed);
      transitions open → half-open once it has. *)

  val success : t -> unit
  (** Clears the failure streak; closes a half-open breaker. *)

  val failure : t -> unit
  (** Extends the failure streak; trips a closed breaker past the
      threshold and re-opens a half-open one immediately. *)

  val state : t -> state
  val name : t -> string
  val consecutive_failures : t -> int
  val state_name : state -> string
end

(** {1 Outcome accounting}

    The facade reports how governed operations ended so the registry
    counters stay truthful even for exceptions raised deep inside an
    engine. *)

val note_outcome : exn -> unit
(** Bump ["governor.cancelled"] / ["governor.deadline_exceeded"] /
    ["governor.budget_exceeded"] when [e] is the corresponding governor
    exception; other exceptions are ignored. *)

val counters : unit -> (string * int) list
(** Current values of the governor counters, for reports and tests. *)
