(* Process-global pool of Domain.spawn workers.

   Single-submitter design: batches are only ever submitted from a
   non-worker domain, and every combinator below is synchronous (it
   returns once its whole batch has drained).  The job queue therefore
   never holds jobs from two batches at once, which lets the
   submitting domain help execute queued jobs while it waits without
   risk of stealing work from an unrelated batch. *)

type pool = {
  size : int;
  jobs : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Workers mark themselves via DLS so combinators invoked from inside
   a worker (nested parallelism) degrade to serial loops instead of
   deadlocking on their own pool. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let worker_main pool () =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock pool.m;
    let rec take () =
      if pool.stop then None
      else if Queue.is_empty pool.jobs then (
        Condition.wait pool.nonempty pool.m;
        take ())
      else Some (Queue.pop pool.jobs)
    in
    let job = take () in
    Mutex.unlock pool.m;
    match job with
    | None -> ()
    | Some job ->
        job ();
        loop ()
  in
  loop ()

let spawn_pool n =
  let p =
    {
      size = n;
      jobs = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  p.workers <- List.init n (fun _ -> Domain.spawn (worker_main p));
  p

let teardown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.m;
  List.iter Domain.join p.workers;
  p.workers <- []

let default_domains () = max 0 (Domain.recommended_domain_count () - 1)

let env_domains () =
  match Sys.getenv_opt "DECIBEL_DOMAINS" with
  | None -> default_domains ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> max 0 n
      | None -> default_domains ())

(* [state_m] guards [requested] and [pool_ref]; it is only touched
   from non-worker domains (pool management, not the hot path). *)
let state_m = Mutex.create ()
let requested = ref (env_domains ())
let pool_ref : pool option ref = ref None

let domain_count () =
  Mutex.lock state_m;
  let n = !requested in
  Mutex.unlock state_m;
  n

let shutdown () =
  Mutex.lock state_m;
  let p = !pool_ref in
  pool_ref := None;
  Mutex.unlock state_m;
  match p with None -> () | Some p -> teardown p

let () = at_exit shutdown

let set_domain_count n =
  let n = max 0 n in
  Mutex.lock state_m;
  requested := n;
  let stale =
    match !pool_ref with
    | Some p when p.size <> n ->
        pool_ref := None;
        Some p
    | _ -> None
  in
  Mutex.unlock state_m;
  match stale with None -> () | Some p -> teardown p

(* Returns the live pool, spawning it on first use.  [None] when the
   pool is disabled or the caller is itself a worker. *)
let usable_pool () =
  if in_worker () then None
  else begin
    Mutex.lock state_m;
    let p =
      if !requested = 0 then None
      else
        match !pool_ref with
        | Some p -> Some p
        | None ->
            let p = spawn_pool !requested in
            pool_ref := Some p;
            Some p
    in
    Mutex.unlock state_m;
    p
  end

let available () = (not (in_worker ())) && domain_count () > 0

(* A dedicated domain outside the pool, for long-lived background
   services.  Marked as a worker so combinators it calls stay serial
   rather than submitting batches into the scan pool (single-submitter
   invariant). *)
let spawn_domain f =
  Domain.spawn (fun () ->
      Domain.DLS.set in_worker_key true;
      f ())

(* ------------------------------------------------------------------ *)
(* batch execution *)

type batch = {
  bm : Mutex.t;
  done_ : Condition.t;
  mutable remaining : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

let run_tasks p (tasks : (unit -> unit) array) =
  let b =
    {
      bm = Mutex.create ();
      done_ = Condition.create ();
      remaining = Array.length tasks;
      failure = None;
    }
  in
  let wrap task () =
    (try task ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock b.bm;
       if b.failure = None then b.failure <- Some (e, bt);
       Mutex.unlock b.bm);
    Mutex.lock b.bm;
    b.remaining <- b.remaining - 1;
    if b.remaining = 0 then Condition.broadcast b.done_;
    Mutex.unlock b.bm
  in
  Mutex.lock p.m;
  Array.iter (fun t -> Queue.push (wrap t) p.jobs) tasks;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.m;
  (* The submitter helps drain the queue, then blocks until stragglers
     running on workers finish. *)
  let rec help () =
    Mutex.lock p.m;
    let job = if Queue.is_empty p.jobs then None else Some (Queue.pop p.jobs) in
    Mutex.unlock p.m;
    match job with
    | Some j ->
        j ();
        help ()
    | None ->
        Mutex.lock b.bm;
        while b.remaining > 0 do
          Condition.wait b.done_ b.bm
        done;
        Mutex.unlock b.bm
  in
  help ();
  match b.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ------------------------------------------------------------------ *)
(* combinators *)

module Ctx = Decibel_governor.Governor.Ctx
module Prof = Decibel_obs.Obs.Prof

(* Cooperative cancellation: serial paths poll the context on a
   stride; parallel chunk tasks check it once up front (all tasks of a
   batch are enqueued eagerly, so after the first failure the
   remaining chunks reduce to this check) and install the context as
   the worker domain's ambient context so that budget charging in
   lower layers (buffer-pool page loads) attributes to the right
   operation. *)
let ctx_check = function None -> () | Some c -> Ctx.check c

let with_ctx ctx f =
  match ctx with None -> f () | Some _ -> Ctx.with_current ctx f

(* Profiling-trace propagation: each combinator captures the
   submitting domain's ambient trace and re-installs it around every
   worker task, so cost counters hit on worker domains attribute to
   the requesting trace.  Serial paths stay on the submitting domain,
   where the trace is already ambient. *)
let with_trace tr f =
  match tr with None -> f () | Some t -> Prof.with_attribution t f

let chunk_ranges ?chunk n =
  if n <= 0 then [||]
  else
    let size =
      match chunk with
      | Some c -> max 1 c
      | None ->
          (* a few chunks per worker, floored so tiny inputs stay in
             one piece *)
          let workers = max 1 (domain_count ()) in
          max 1024 (1 + ((n - 1) / (workers * 4)))
    in
    let nchunks = (n + size - 1) / size in
    Array.init nchunks (fun k -> (k * size, min n ((k + 1) * size)))

let serial_for ?ctx n f =
  let poll = Ctx.poller ctx in
  for i = 0 to n - 1 do
    poll ();
    f i
  done

let parallel_for ?ctx ?chunk n f =
  if n <= 0 then ()
  else
    match usable_pool () with
    | None -> serial_for ?ctx n f
    | Some p ->
        let ranges = chunk_ranges ?chunk n in
        if Array.length ranges <= 1 then serial_for ?ctx n f
        else
          let tr = Prof.current_trace () in
          run_tasks p
            (Array.map
               (fun (lo, hi) () ->
                 ctx_check ctx;
                 with_trace tr (fun () ->
                     with_ctx ctx (fun () ->
                         for i = lo to hi - 1 do
                           f i
                         done)))
               ranges)

let serial_fold ?ctx ~n ~init ~body ~merge z =
  let poll = Ctx.poller ctx in
  let acc = ref (init ()) in
  for i = 0 to n - 1 do
    poll ();
    acc := body !acc i
  done;
  merge z !acc

let parallel_fold ?ctx ?chunk ~n ~init ~body ~merge z =
  if n <= 0 then z
  else
    match usable_pool () with
    | None -> serial_fold ?ctx ~n ~init ~body ~merge z
    | Some p ->
        let ranges = chunk_ranges ?chunk n in
        let nchunks = Array.length ranges in
        if nchunks <= 1 then serial_fold ?ctx ~n ~init ~body ~merge z
        else begin
          let results = Array.make nchunks None in
          let tr = Prof.current_trace () in
          run_tasks p
            (Array.init nchunks (fun k () ->
                 ctx_check ctx;
                 with_trace tr (fun () ->
                     with_ctx ctx (fun () ->
                         let lo, hi = ranges.(k) in
                         let acc = ref (init ()) in
                         for i = lo to hi - 1 do
                           acc := body !acc i
                         done;
                         results.(k) <- Some !acc))));
          Array.fold_left
            (fun z r -> match r with Some a -> merge z a | None -> z)
            z results
        end

let parallel_iter_buffered ?ctx ~n ~produce ~consume () =
  if n <= 0 then ()
  else
    match usable_pool () with
    | None ->
        let poll = Ctx.poller ~stride:1 ctx in
        for i = 0 to n - 1 do
          poll ();
          consume (produce i)
        done
    | Some p when n > 1 ->
        let results = Array.make n None in
        let tr = Prof.current_trace () in
        run_tasks p
          (Array.init n (fun i () ->
               ctx_check ctx;
               with_trace tr (fun () ->
                   with_ctx ctx (fun () -> results.(i) <- Some (produce i)))));
        (* the consumer may cancel its own context mid-drain, so the
           drain loop polls between buffers, not just once up front *)
        let poll = Ctx.poller ~stride:1 ctx in
        Array.iter
          (function
            | Some r ->
                poll ();
                consume r
            | None -> ())
          results
    | Some _ ->
        ctx_check ctx;
        consume (produce 0)
