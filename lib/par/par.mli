(** Fixed pool of [Domain.spawn] workers for data-parallel scans.

    The pool is process-global and lazily spawned on first use.  Its
    size comes from the [DECIBEL_DOMAINS] environment variable,
    defaulting to [Domain.recommended_domain_count () - 1]; a size of
    0 disables the pool entirely and every combinator below runs
    serially in the calling domain.  Callers therefore never need a
    separate serial code path: with the pool off, the combinators
    degrade to plain loops with no domain, mutex, or buffer overhead
    beyond a closure call.

    Determinism contract: [parallel_fold] merges per-chunk
    accumulators in ascending chunk order and [parallel_iter_buffered]
    invokes [consume] for indices [0 .. n-1] in order, buffering
    out-of-order completions.  Both therefore produce results
    byte-identical to a serial left-to-right traversal, regardless of
    pool size or scheduling.

    Nesting: combinators called from inside a pool worker run serially
    in that worker (no nested fan-out), so library code may
    parallelize without worrying about being called from an already
    parallel region.

    Exceptions raised by worker tasks are caught, the batch is drained
    to completion, and the first exception observed is re-raised in
    the calling domain.

    Cancellation: every combinator takes an optional
    [?ctx:Decibel_governor.Ctx.t].  Serial paths poll it on a stride;
    parallel paths check it at the start of every chunk (and install
    it as the worker's ambient context for the chunk's duration, so
    buffer-pool budget charging sees it).  A cancelled or expired
    context makes the batch drain cheaply — every not-yet-started
    chunk fails its initial check — and the first
    [Cancelled]/[Deadline_exceeded] is re-raised in the caller. *)

val domain_count : unit -> int
(** Number of pool workers currently configured.  0 means the pool is
    disabled and all combinators run serially. *)

val set_domain_count : int -> unit
(** Reconfigure the pool size at runtime (tears down existing workers
    and respawns).  Intended for tests and benchmarks that sweep
    domain counts; negative values are clamped to 0.  Must not be
    called while parallel work is in flight. *)

val in_worker : unit -> bool
(** [true] when called from inside a pool worker domain. *)

val available : unit -> bool
(** [true] when parallel execution would actually fan out: the pool
    has at least one worker and the caller is not itself a worker. *)

val chunk_ranges : ?chunk:int -> int -> (int * int) array
(** [chunk_ranges n] splits [0 .. n-1] into contiguous [(lo, hi)]
    half-open ranges sized for the current pool (a few chunks per
    worker, with a floor so tiny inputs are not oversplit).  [?chunk]
    forces an explicit chunk size. *)

val parallel_for :
  ?ctx:Decibel_governor.Governor.Ctx.t -> ?chunk:int -> int -> (int -> unit) ->
  unit
(** [parallel_for n f] runs [f i] for every [i] in [0 .. n-1].
    Iteration order across chunks is unspecified; [f] must be safe to
    call from multiple domains.  With the pool disabled this is a
    plain ascending loop. *)

val parallel_fold :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  ?chunk:int ->
  n:int ->
  init:(unit -> 'acc) ->
  body:('acc -> int -> 'acc) ->
  merge:('res -> 'acc -> 'res) ->
  'res ->
  'res
(** [parallel_fold ~n ~init ~body ~merge z] folds [body] over each
    chunk of [0 .. n-1] (indices in ascending order within a chunk,
    starting from a fresh [init ()] accumulator), then merges the
    chunk accumulators into [z] in ascending chunk order.  Equivalent
    to a serial fold whenever [merge]/[body] satisfy the usual
    homomorphism property; deterministic regardless. *)

val parallel_iter_buffered :
  ?ctx:Decibel_governor.Governor.Ctx.t ->
  n:int ->
  produce:(int -> 'b) ->
  consume:('b -> unit) ->
  unit ->
  unit
(** [parallel_iter_buffered ~n ~produce ~consume ()] evaluates
    [produce i] for [i] in [0 .. n-1] on the pool, buffers the
    results, and calls [consume (produce i)] in ascending index order
    from the calling domain.  [produce] must be domain-safe;
    [consume] runs only in the caller.  With the pool disabled,
    [produce]/[consume] alternate serially with no buffering.  (The
    trailing [unit] exists so [?ctx] is erasable.) *)

val spawn_domain : (unit -> unit) -> unit Domain.t
(** Spawn one dedicated long-lived domain outside the pool (the
    background maintenance service uses this).  The domain is marked
    as a worker, so any [Par] combinator it calls runs serially
    instead of fanning back into the pool.  The caller owns the handle
    and must [Domain.join] it. *)

val shutdown : unit -> unit
(** Join all pool workers.  Called automatically [at_exit]; safe to
    call repeatedly. *)
