(** Maintenance-executor mechanism: task kinds, [maint.*] metrics and
    the dedicated-domain service loop.  The crash-safe protocol itself
    lives in [Database.run_maintenance]; this module is policy-free. *)

module Obs = Decibel_obs.Obs
module Par = Decibel_par.Par

type kind = Compact | Materialize | Gc

let kind_name = function
  | Compact -> "compact"
  | Materialize -> "materialize"
  | Gc -> "gc"

let kind_of_name = function
  | "compact" -> Some Compact
  | "materialize" -> Some Materialize
  | "gc" -> Some Gc
  | _ -> None

(* ------------------------------------------------------------------ *)
(* metrics *)

let c_run = Obs.counter "maint.tasks_run"
let c_failed = Obs.counter "maint.tasks_failed"
let c_rolled_back = Obs.counter "maint.tasks_rolled_back"
let c_reclaimed = Obs.counter "maint.bytes_reclaimed"
let g_running = Obs.gauge "maint.running_since"
let g_streak = Obs.gauge "maint.consecutive_failures"

(* Per-target consecutive-failure streaks feed the watchdog's
   Critical rule: one flaky disk sector makes the same target fail
   again and again, which is a stronger signal than the global failure
   counter.  The gauge exports the worst current streak. *)
let streak_m = Mutex.create ()
let streaks : (string, int) Hashtbl.t = Hashtbl.create 8

let worst_streak () = Hashtbl.fold (fun _ n acc -> max n acc) streaks 0

let note_started () = Obs.set_gauge g_running (Unix.gettimeofday ())

let note_finished ~target ~ok =
  Obs.set_gauge g_running 0.;
  Mutex.lock streak_m;
  if ok then begin
    Obs.incr c_run;
    Hashtbl.remove streaks target
  end
  else begin
    Obs.incr c_failed;
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt streaks target) in
    Hashtbl.replace streaks target n
  end;
  Obs.set_gauge g_streak (float_of_int (worst_streak ()));
  Mutex.unlock streak_m

let note_rolled_back () = Obs.incr c_rolled_back
let note_reclaimed n = if n > 0 then Obs.add c_reclaimed n

let reset_streaks () =
  Mutex.lock streak_m;
  Hashtbl.reset streaks;
  Obs.set_gauge g_streak 0.;
  Mutex.unlock streak_m

(* ------------------------------------------------------------------ *)
(* background service *)

module Service = struct
  type t = {
    m : Mutex.t;
    mutable stop : bool;
    mutable domain : unit Domain.t option;
  }

  let stopping t =
    Mutex.lock t.m;
    let s = t.stop in
    Mutex.unlock t.m;
    s

  let loop t interval_s tick () =
    let rec go () =
      if stopping t then ()
      else begin
        (try tick ()
         with e ->
           Obs.incr c_failed;
           Obs.event ~level:Obs.Warn ~comp:"maint"
             (Printf.sprintf "service tick raised: %s" (Printexc.to_string e)));
        (* interruptible sleep: poll [stop] in short slices so [stop]
           joins promptly even with a long interval *)
        let deadline = Unix.gettimeofday () +. interval_s in
        let rec doze () =
          if stopping t then ()
          else begin
            let left = deadline -. Unix.gettimeofday () in
            if left > 0. then begin
              Unix.sleepf (Float.min 0.05 left);
              doze ()
            end
          end
        in
        doze ();
        go ()
      end
    in
    go ()

  let start ?(interval_s = 1.0) tick =
    let t = { m = Mutex.create (); stop = false; domain = None } in
    t.domain <- Some (Par.spawn_domain (loop t interval_s tick));
    t

  let stop t =
    Mutex.lock t.m;
    t.stop <- true;
    let d = t.domain in
    t.domain <- None;
    Mutex.unlock t.m;
    match d with None -> () | Some d -> Domain.join d

  let running t =
    Mutex.lock t.m;
    let r = (not t.stop) && t.domain <> None in
    Mutex.unlock t.m;
    r
end
