(** Maintenance intent log: one JSON object per line in [maint.jsonl].

    The journal is the crash-safety backbone of the maintenance
    executor.  A task's lifecycle is

      Begin  -> written before any file is created
      Apply  -> written after the engine manifest commits the new state
      Done | Rolled_back -> terminal

    so after a crash the latest entry of each task tells recovery
    whether the rewrite committed (finish: reclaim old files) or not
    (roll back: remove new files).  Appends go through the
    ["maint.journal.append"] failpoint and may tear; the loader drops
    any line that does not parse, which covers the torn-tail case the
    same way the WAL reader does. *)

module Failpoint = Decibel_fault.Failpoint
module Obs = Decibel_obs.Obs

type status = Begin | Apply | Done | Rolled_back

type entry = {
  e_id : int;
  e_status : status;
  e_kind : string;
  e_target : string;
  e_new : string list;
  e_old : string list;
}

let path dir = Filename.concat dir "maint.jsonl"

let status_name = function
  | Begin -> "begin"
  | Apply -> "apply"
  | Done -> "done"
  | Rolled_back -> "rolled_back"

let status_of_name = function
  | "begin" -> Some Begin
  | "apply" -> Some Apply
  | "done" -> Some Done
  | "rolled_back" -> Some Rolled_back
  | _ -> None

let entry_json e =
  let buf = Buffer.create 128 in
  let str s = Buffer.add_string buf (Printf.sprintf "\"%s\"" (Obs.json_escape s)) in
  Buffer.add_string buf (Printf.sprintf "{\"id\":%d,\"status\":\"%s\"," e.e_id (status_name e.e_status));
  Buffer.add_string buf "\"kind\":";
  str e.e_kind;
  Buffer.add_string buf ",\"target\":";
  str e.e_target;
  let files key fs =
    Buffer.add_string buf (Printf.sprintf ",\"%s\":[" key);
    List.iteri
      (fun i f ->
        if i > 0 then Buffer.add_char buf ',';
        str f)
      fs;
    Buffer.add_char buf ']'
  in
  files "new" e.e_new;
  files "old" e.e_old;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Minimal JSON-line parser for exactly the shape [entry_json] writes
   (flat object: int, string and string-array values).  Any deviation
   — including a torn prefix — raises [Bad], and the caller drops the
   line. *)
exception Bad

let parse_line line =
  let len = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= len then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad;
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > len then raise Bad;
              let hex = String.sub line !pos 4 in
              let code = try int_of_string ("0x" ^ hex) with _ -> raise Bad in
              if code > 0xff then raise Bad;
              Buffer.add_char buf (Char.chr code);
              pos := !pos + 4
          | _ -> raise Bad);
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < len && line.[!pos] = '-' then advance ();
    while !pos < len && (match line.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then raise Bad;
    try int_of_string (String.sub line start (!pos - start)) with _ -> raise Bad
  in
  let parse_string_list () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      []
    end
    else begin
      let rec go acc =
        let s = parse_string () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); skip_ws (); go (s :: acc)
        | ']' -> advance (); List.rev (s :: acc)
        | _ -> raise Bad
      in
      go []
    end
  in
  let id = ref None
  and status = ref None
  and kind = ref None
  and target = ref None
  and nw = ref None
  and old = ref None in
  expect '{';
  skip_ws ();
  if peek () <> '}' then begin
    let rec fields () =
      let key = parse_string () in
      expect ':';
      skip_ws ();
      (match key with
      | "id" -> id := Some (parse_int ())
      | "status" -> (
          match status_of_name (parse_string ()) with
          | Some s -> status := Some s
          | None -> raise Bad)
      | "kind" -> kind := Some (parse_string ())
      | "target" -> target := Some (parse_string ())
      | "new" -> nw := Some (parse_string_list ())
      | "old" -> old := Some (parse_string_list ())
      | _ -> raise Bad);
      skip_ws ();
      match peek () with
      | ',' -> advance (); skip_ws (); fields ()
      | '}' -> advance ()
      | _ -> raise Bad
    in
    fields ()
  end
  else advance ();
  skip_ws ();
  if !pos <> len then raise Bad;
  match (!id, !status, !kind, !target, !nw, !old) with
  | Some e_id, Some e_status, Some e_kind, Some e_target, Some e_new, Some e_old
    ->
      { e_id; e_status; e_kind; e_target; e_new; e_old }
  | _ -> raise Bad

let load dir =
  let p = path dir in
  if not (Sys.file_exists p) then []
  else
    let data = try Decibel_util.Binio.read_file p with _ -> "" in
    String.split_on_char '\n' data
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else try Some (parse_line line) with Bad -> None)

let next_id entries =
  1 + List.fold_left (fun acc e -> max acc e.e_id) (-1) entries

let tasks entries =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.e_id with
      | Some r -> r := e :: !r
      | None ->
          Hashtbl.add tbl e.e_id (ref [ e ]);
          order := e.e_id :: !order)
    entries;
  List.rev !order
  |> List.map (fun id -> (id, List.rev !(Hashtbl.find tbl id)))

let is_terminal = function Done | Rolled_back -> true | Begin | Apply -> false

let pending entries =
  tasks entries
  |> List.filter (fun (_, es) ->
         match List.rev es with
         | last :: _ -> not (is_terminal last.e_status)
         | [] -> false)

let append dir e =
  let line = entry_json e ^ "\n" in
  let fd =
    Unix.openfile (path dir) [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Failpoint.guard_write "maint.journal.append" line (fun data ->
          let n = String.length data in
          let off = ref 0 in
          while !off < n do
            off := !off + Unix.write_substring fd data !off (n - !off)
          done;
          Unix.fsync fd))

let truncate dir =
  let p = path dir in
  if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ()
