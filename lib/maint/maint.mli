(** Background maintenance executor support: kinds, counters, and the
    dedicated-domain service loop.

    The policy half lives in the advisor (what to do); this module
    holds the mechanism shared by the database-level executor: the
    task-kind vocabulary, the [maint.*] observability surface, and a
    [Service] that runs a tick callback periodically on its own
    domain.  The crash-safe rewrite protocol itself is implemented in
    [Database.run_maintenance] against the engine hooks, journaled via
    {!Journal}. *)

type kind = Compact | Materialize | Gc

val kind_name : kind -> string
(** "compact" | "materialize" | "gc" — journal encoding. *)

val kind_of_name : string -> kind option

(** {1 Observability}

    Counters [maint.tasks_run], [maint.tasks_failed],
    [maint.tasks_rolled_back], [maint.bytes_reclaimed]; gauges
    [maint.running_since] (unix seconds the current task started, 0
    when idle — the watchdog's stall signal) and
    [maint.consecutive_failures] (worst per-target failure streak —
    the watchdog's Critical signal). *)

val note_started : unit -> unit
(** Mark a task as in flight ([maint.running_since] := now). *)

val note_finished : target:string -> ok:bool -> unit
(** Clear the in-flight gauge and update the run/failed counters and
    the per-target consecutive-failure streak. *)

val note_rolled_back : unit -> unit
(** Count one journal-driven rollback (recovery or failed task). *)

val note_reclaimed : int -> unit
(** Add reclaimed bytes (clamped at 0) to [maint.bytes_reclaimed]. *)

val reset_streaks : unit -> unit
(** Forget per-target failure streaks (tests). *)

(** Periodic driver on a dedicated {!Decibel_par.Par.spawn_domain}
    domain.  The tick callback must be self-synchronizing (the
    database wraps it in its maintenance mutex); exceptions it raises
    are swallowed after being counted as a failed task so the service
    survives a bad tick. *)
module Service : sig
  type t

  val start : ?interval_s:float -> (unit -> unit) -> t
  (** Spawn the service domain; [tick] runs immediately and then every
      [interval_s] (default 1.0) seconds until [stop]. *)

  val stop : t -> unit
  (** Signal shutdown and join the domain.  Idempotent. *)

  val running : t -> bool
end
