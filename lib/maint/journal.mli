(** Crash-safe maintenance intent log ([maint.jsonl]).

    Every maintenance task appends a [Begin] entry before touching any
    file, an [Apply] entry once the rewritten state has been committed
    by the engine manifest, and a terminal [Done] (old files reclaimed)
    or [Rolled_back] (task abandoned, new files removed).  Entries are
    single JSON lines, appended and fsynced through the
    ["maint.journal.append"] failpoint so torture can tear them; the
    loader tolerates a torn final line by dropping it.

    Recovery groups entries by task id: a task whose last entry is
    [Begin] crashed before the manifest commit and must be rolled back;
    a task whose last entry is [Apply] crashed after commit and only
    needs its old files reclaimed.  Terminal entries need no action. *)

type status = Begin | Apply | Done | Rolled_back

type entry = {
  e_id : int;  (** task id, unique within one journal *)
  e_status : status;
  e_kind : string;  (** "compact" | "materialize" | "gc" *)
  e_target : string;  (** branch name or segment file the task rewrote *)
  e_new : string list;  (** basenames of files the task created *)
  e_old : string list;  (** basenames of files the task replaces *)
}

val path : string -> string
(** [path dir] is the journal file for repository [dir]. *)

val load : string -> entry list
(** Parse the journal at [dir], oldest first.  A torn or garbled final
    line is dropped; a missing file is an empty journal.  Never
    raises on bad content. *)

val append : string -> entry -> unit
(** Append one entry to the journal at [dir] and fsync.  Routed
    through the ["maint.journal.append"] failpoint, so the write may
    tear (strict prefix persisted) or raise under fault injection. *)

val next_id : entry list -> int
(** Smallest id strictly greater than every id in the list. *)

val tasks : entry list -> (int * entry list) list
(** Group entries by task id, ascending, entries in journal order. *)

val pending : entry list -> (int * entry list) list
(** Tasks whose latest entry is not terminal ([Done]/[Rolled_back]). *)

val truncate : string -> unit
(** Remove the journal file at [dir] if present (all tasks terminal). *)

val status_name : status -> string
val entry_json : entry -> string
(** One-line JSON encoding (no trailing newline). *)
