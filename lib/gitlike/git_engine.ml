(** Decibel's versioning API implemented on the git-like object store
    (paper §5.7).

    Two layouts are modelled, as in the paper's comparison:
    - [One_file]: the whole relation is one blob per commit ("git 1
      file"), so any change re-hashes and re-compresses the full table;
    - [File_per_tuple]: one blob per record ("git file/tup"), so
      commits hash every file but unchanged blobs dedupe by content
      address, while trees grow with the record count.

    Record encodings are [Bin] (the fixed binary tuple codec) or [Csv]
    (textual, larger raw size — the paper notes CSV "results in a
    larger raw size due to string encoding").

    Branches are head pointers onto commit objects; working states are
    in-memory key→tuple maps, mirroring a git working tree plus index.
    Only the operations the §5.7 benchmark exercises are provided
    (modifications, commit, checkout, branch, repack). *)

open Decibel_util
open Decibel_storage
module Vg = Decibel_graph.Version_graph

type layout = One_file | File_per_tuple
type format = Bin | Csv

let layout_name = function
  | One_file -> "1 file"
  | File_per_tuple -> "file/tup"

let format_name = function Bin -> "bin" | Csv -> "csv"

module Vmap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

type state = Tuple.t Vmap.t

type t = {
  store : Object_store.t;
  schema : Schema.t;
  layout : layout;
  format : format;
  graph : Vg.t;
  mutable heads : state array;
  mutable nheads : int;
  commit_oids : (Vg.version_id, Object_store.oid) Hashtbl.t;
}

let create ~dir ~schema ~layout ~format =
  Fsutil.mkdir_p dir;
  let t =
    {
      store = Object_store.create ~dir;
      schema;
      layout;
      format;
      graph = Vg.create ();
      heads = Array.make 4 Vmap.empty;
      nheads = 1;
      commit_oids = Hashtbl.create 64;
    }
  in
  t

let graph t = t.graph

let variant t =
  Printf.sprintf "git %s (%s)" (layout_name t.layout) (format_name t.format)

(* ------------------------------------------------------------------ *)
(* record encodings *)

let encode_tuple t tuple =
  match t.format with
  | Bin -> Tuple.encode t.schema tuple
  | Csv ->
      String.concat ","
        (Array.to_list
           (Array.map
              (fun (v : Value.t) ->
                match v with
                | Value.Int x -> Int64.to_string x
                | Value.Str s -> s)
              tuple))

let decode_tuple t s =
  match t.format with
  | Bin ->
      let pos = ref 0 in
      Tuple.decode t.schema s pos
  | Csv ->
      let parts = String.split_on_char ',' s in
      let cols = Schema.columns t.schema in
      if List.length parts <> Array.length cols then
        raise (Binio.Corrupt "git csv: field count mismatch");
      Array.of_list
        (List.mapi
           (fun i part ->
             match cols.(i).Schema.col_type with
             | Schema.T_int -> Value.Int (Int64.of_string part)
             | Schema.T_str -> Value.Str part)
           parts)

(* ------------------------------------------------------------------ *)
(* working-state modifications (upsert-style, as the benchmark drives
   them; validity is the caller's concern as in a real working tree) *)

let head t b =
  if b < 0 || b >= t.nheads then invalid_arg "git engine: unknown branch";
  t.heads.(b)

let write t b tuple =
  t.heads.(b) <- Vmap.add (Tuple.pk t.schema tuple) tuple (head t b)

let delete t b key = t.heads.(b) <- Vmap.remove key (head t b)

let lookup t b key = Vmap.find_opt key (head t b)

let scan ?ctx t b f =
  (* the baseline honors cancellation contexts like the real engines:
     one cheap poll per emitted record *)
  let poll = Decibel_governor.Governor.Ctx.poller ctx in
  Vmap.iter
    (fun _ tuple ->
      poll ();
      f tuple)
    (head t b)

let data_bytes t b =
  Vmap.fold
    (fun _ tuple acc -> acc + String.length (encode_tuple t tuple))
    (head t b) 0

(* ------------------------------------------------------------------ *)
(* trees and commits *)

let serialize_tree entries =
  let buf = Buffer.create 256 in
  Binio.write_varint buf (List.length entries);
  List.iter
    (fun (name, oid) ->
      Binio.write_string buf name;
      Binio.write_string buf oid)
    entries;
  Buffer.contents buf

let deserialize_tree s =
  let pos = ref 0 in
  let n = Binio.read_varint s pos in
  List.init n (fun _ ->
      let name = Binio.read_string s pos in
      let oid = Binio.read_string s pos in
      (name, oid))

let tree_of_state t st =
  match t.layout with
  | One_file ->
      (* one blob holding every record, newline/length framed *)
      let buf = Buffer.create 4096 in
      Vmap.iter
        (fun _ tuple ->
          match t.format with
          | Bin -> Binio.write_string buf (encode_tuple t tuple)
          | Csv ->
              Buffer.add_string buf (encode_tuple t tuple);
              Buffer.add_char buf '\n')
        st;
      let blob = Object_store.put t.store (Buffer.contents buf) in
      [ ("table", blob) ]
  | File_per_tuple ->
      Vmap.fold
        (fun key tuple acc ->
          let blob = Object_store.put t.store (encode_tuple t tuple) in
          (Value.to_string key, blob) :: acc)
        st []
      |> List.rev

let state_of_tree t entries =
  match t.layout with
  | One_file -> (
      match entries with
      | [ ("table", blob) ] ->
          let data = Object_store.get t.store blob in
          let st = ref Vmap.empty in
          (match t.format with
          | Bin ->
              let pos = ref 0 in
              while !pos < String.length data do
                let rec_data = Binio.read_string data pos in
                let tuple = decode_tuple t rec_data in
                st := Vmap.add (Tuple.pk t.schema tuple) tuple !st
              done
          | Csv ->
              List.iter
                (fun line ->
                  if line <> "" then begin
                    let tuple = decode_tuple t line in
                    st := Vmap.add (Tuple.pk t.schema tuple) tuple !st
                  end)
                (String.split_on_char '\n' data));
          !st
      | _ -> raise (Binio.Corrupt "git 1-file: malformed tree"))
  | File_per_tuple ->
      List.fold_left
        (fun st (_, blob) ->
          let tuple = decode_tuple t (Object_store.get t.store blob) in
          Vmap.add (Tuple.pk t.schema tuple) tuple st)
        Vmap.empty entries

let serialize_commit ~tree ~parents ~message =
  let buf = Buffer.create 128 in
  Binio.write_string buf tree;
  Binio.write_list (fun b p -> Binio.write_string b p) buf parents;
  Binio.write_string buf message;
  Buffer.contents buf

let deserialize_commit s =
  let pos = ref 0 in
  let tree = Binio.read_string s pos in
  let parents = Binio.read_list Binio.read_string s pos in
  let message = Binio.read_string s pos in
  (tree, parents, message)

let commit t b ~message =
  let entries = tree_of_state t (head t b) in
  let tree_oid = Object_store.put t.store (serialize_tree entries) in
  let parents =
    match Hashtbl.find_opt t.commit_oids (Vg.head t.graph b) with
    | Some oid -> [ oid ]
    | None -> []
  in
  let commit_oid =
    Object_store.put t.store (serialize_commit ~tree:tree_oid ~parents ~message)
  in
  let vid = Vg.commit t.graph b ~message in
  Hashtbl.replace t.commit_oids vid commit_oid;
  vid

let checkout ?ctx t vid =
  (match ctx with
  | Some c -> Decibel_governor.Governor.Ctx.check c
  | None -> ());
  if vid = Vg.root_version then Vmap.empty
  else
    match Hashtbl.find_opt t.commit_oids vid with
    | None -> invalid_arg "git engine: version has no commit object"
    | Some oid ->
        let tree_oid, _, _ = deserialize_commit (Object_store.get t.store oid) in
        state_of_tree t (deserialize_tree (Object_store.get t.store tree_oid))

let read_version t vid =
  Vmap.fold (fun _ tuple acc -> tuple :: acc) (checkout t vid) []

let create_branch t ~name ~from =
  let st = checkout t from in
  let nb = Vg.create_branch t.graph ~name ~from in
  if t.nheads = Array.length t.heads then begin
    let a = Array.make (2 * t.nheads) Vmap.empty in
    Array.blit t.heads 0 a 0 t.nheads;
    t.heads <- a
  end;
  t.heads.(nb) <- st;
  t.nheads <- t.nheads + 1;
  nb

let repack t = Object_store.repack t.store

let repo_bytes t = Object_store.repo_bytes t.store

let object_count t = Object_store.object_count t.store
