(* Deterministic failpoint registry.

   Every I/O seam in the storage stack announces itself here by name
   ([hit] for control sites, [guard_write] for sites that persist a
   byte payload).  In production nothing is armed and a site costs one
   hashtable probe; under test a site can be armed to raise a fatal
   [Fault_injected] (the crash-torture harness treats this as the
   process dying), a retryable [Fault_transient], or to tear the write
   — persist only a prefix of the payload, then die — which is exactly
   the state a power cut leaves behind.

   Triggers are deterministic: [After_hits n] fires on the n-th hit
   after arming, [Always] on every hit, and [Probability p] consults a
   {!Decibel_util.Prng} seeded explicitly (or from [DECIBEL_SEED]), so
   a failing torture run reproduces from its seed.  Sites also count
   their hits even when unarmed; the harness enumerates crash sites
   from that census instead of hard-coding the seam list. *)

module Obs = Decibel_obs.Obs

exception Fault_injected of string
exception Fault_transient of string

type trigger = Always | After_hits of int | Probability of float

type action =
  | Raise  (** fatal: simulate a crash at the site *)
  | Transient  (** retryable: simulate EINTR-class flakiness *)
  | Torn of float
      (** tear the write: persist the given fraction of the payload
          (rounded down, at least one byte short of full), then raise
          fatally.  At a control site this degenerates to [Raise]. *)

type armed = {
  a_trigger : trigger;
  a_action : action;
  mutable a_hits : int; (* hits since arming *)
}

let c_injected = Obs.counter "fault.injected"
let c_transient = Obs.counter "fault.transient"

(* site census: every name ever hit, process-wide *)
let census : (string, int ref) Hashtbl.t = Hashtbl.create 32
let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8

let default_seed = 0x5EED_CAFEL

let prng = ref (Decibel_util.Prng.create default_seed)

let set_seed s = prng := Decibel_util.Prng.create s

let arm ?(action = Raise) name trigger =
  (match trigger with
  | After_hits n when n <= 0 ->
      invalid_arg "Failpoint.arm: After_hits wants a positive count"
  | Probability p when not (p >= 0. && p <= 1.) ->
      invalid_arg "Failpoint.arm: Probability wants p in [0,1]"
  | _ -> ());
  Hashtbl.replace armed_tbl name
    { a_trigger = trigger; a_action = action; a_hits = 0 }

let disarm name = Hashtbl.remove armed_tbl name
let disarm_all () = Hashtbl.reset armed_tbl

let armed name = Hashtbl.mem armed_tbl name

let reset_census () = Hashtbl.reset census

let sites () =
  List.sort compare
    (Hashtbl.fold (fun name n acc -> (name, !n) :: acc) census [])

let hits name =
  match Hashtbl.find_opt census name with Some n -> !n | None -> 0

let note name =
  match Hashtbl.find_opt census name with
  | Some n -> incr n
  | None -> Hashtbl.replace census name (ref 1)

(* Decide whether an armed site fires on this hit. *)
let due a =
  a.a_hits <- a.a_hits + 1;
  match a.a_trigger with
  | Always -> true
  | After_hits n -> a.a_hits = n
  | Probability p -> Decibel_util.Prng.chance !prng p

let fire name = function
  | Raise | Torn _ ->
      Obs.incr c_injected;
      Obs.event ~level:Obs.Warn ~comp:"fault"
        ~attrs:[ ("site", name) ]
        "injected fault";
      raise (Fault_injected name)
  | Transient ->
      Obs.incr c_transient;
      raise (Fault_transient name)

let hit name =
  note name;
  match Hashtbl.find_opt armed_tbl name with
  | None -> ()
  | Some a -> if due a then fire name a.a_action

let guard_write name payload write =
  note name;
  match Hashtbl.find_opt armed_tbl name with
  | None -> write payload
  | Some a ->
      if not (due a) then write payload
      else begin
        match a.a_action with
        | Raise -> fire name Raise
        | Transient -> fire name Transient
        | Torn frac ->
            (* persist a strict prefix, then die: torn-write simulation *)
            let n = String.length payload in
            let keep =
              min (max 0 (n - 1)) (int_of_float (frac *. float_of_int n))
            in
            if keep > 0 then write (String.sub payload 0 keep);
            Obs.incr c_injected;
            Obs.event ~level:Obs.Warn ~comp:"fault"
              ~attrs:
                [ ("site", name); ("torn_bytes", string_of_int (n - keep)) ]
              "injected torn write";
            raise (Fault_injected (name ^ " (torn)"))
      end

(* ------------------------------------------------------------------ *)
(* Environment arming: DECIBEL_FAILPOINTS=wal.append=3,heap.flush=p0.1
   name=N      raise on the N-th hit
   name=tN     torn write (half the payload) on the N-th hit
   name=pX     raise with probability X on every hit
   name=always raise on every hit *)

let parse_spec spec =
  List.filter_map
    (fun part ->
      let part = String.trim part in
      if part = "" then None
      else
        match String.index_opt part '=' with
        | None -> invalid_arg ("Failpoint: bad spec " ^ part)
        | Some i ->
            let name = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            let trigger, action =
              if v = "always" then (Always, Raise)
              else if String.length v > 1 && v.[0] = 'p' then
                ( Probability
                    (float_of_string (String.sub v 1 (String.length v - 1))),
                  Raise )
              else if String.length v > 1 && v.[0] = 't' then
                ( After_hits
                    (int_of_string (String.sub v 1 (String.length v - 1))),
                  Torn 0.5 )
              else (After_hits (int_of_string v), Raise)
            in
            Some (name, trigger, action))
    (String.split_on_char ',' spec)

let arm_from_spec spec =
  List.iter (fun (name, trigger, action) -> arm ~action name trigger)
    (parse_spec spec)

let () =
  (match Sys.getenv_opt "DECIBEL_SEED" with
  | Some s -> (try set_seed (Int64.of_string s) with _ -> ())
  | None -> ());
  match Sys.getenv_opt "DECIBEL_FAILPOINTS" with
  | Some spec -> arm_from_spec spec
  | None -> ()
