(* Bounded retry for flush/sync paths.

   Real storage stacks see transient failures (EINTR, EAGAIN, NFS
   hiccups); Decibel's policy is to retry those a bounded number of
   times and only then let the error escape.  Injected
   [Failpoint.Fault_transient] faults take the same path, which is how
   the test suite proves the retry loop actually runs. *)

module Obs = Decibel_obs.Obs

let c_retries = Obs.counter "fault.retries"

let is_transient = function
  | Failpoint.Fault_transient _ -> true
  | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> true
  | _ -> false

let with_retries ?(attempts = 3) ?site f =
  if attempts < 1 then invalid_arg "Retry.with_retries: attempts < 1";
  let rec go n =
    try f ()
    with e when is_transient e && n < attempts ->
      Obs.incr c_retries;
      Obs.event ~level:Obs.Debug ~comp:"fault"
        ~attrs:
          (("attempt", string_of_int n)
          :: (match site with Some s -> [ ("site", s) ] | None -> []))
        "transient failure, retrying";
      go (n + 1)
  in
  go 1
