(* Bounded retry for flush/sync paths.

   Real storage stacks see transient failures (EINTR, EAGAIN, NFS
   hiccups); Decibel's policy is to retry those a bounded number of
   times and only then let the error escape.  Injected
   [Failpoint.Fault_transient] faults take the same path, which is how
   the test suite proves the retry loop actually runs.

   Retries can back off exponentially with *full jitter*: before the
   k-th retry we sleep uniform(0, min(max_delay, base * 2^(k-1))).
   Fixed delays synchronize contending clients — every loser of a
   round retries in lockstep and collides again; sampling the whole
   interval spreads them out.  The default base delay is 0, which
   skips sleeping entirely and is exactly the old behaviour. *)

module Obs = Decibel_obs.Obs
module Prng = Decibel_util.Prng

let c_retries = Obs.counter "fault.retries"

let is_transient = function
  | Failpoint.Fault_transient _ -> true
  | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> true
  | _ -> false

(* Jitter draws must not perturb the benchmark's deterministically
   seeded operation streams, so the backoff generator is its own
   per-domain instance rather than anything shared. *)
let jitter_key =
  Domain.DLS.new_key (fun () -> Prng.create 0x6a09e667f3bcc908L)

let backoff_ms ~base_delay_ms ~max_delay_ms ~attempt =
  if base_delay_ms <= 0 then 0
  else begin
    (* cap the doubling before shifting so huge attempt counts can't
       overflow; the ceiling is max_delay_ms anyway *)
    let doublings = min (attempt - 1) 20 in
    let ceiling = min max_delay_ms (base_delay_ms lsl doublings) in
    if ceiling <= 0 then 0
    else Prng.int (Domain.DLS.get jitter_key) (ceiling + 1)
  end

let with_retries ?(attempts = 3) ?(base_delay_ms = 0) ?(max_delay_ms = 1000)
    ?site f =
  if attempts < 1 then invalid_arg "Retry.with_retries: attempts < 1";
  let rec go n =
    try f ()
    with e when is_transient e && n < attempts ->
      Obs.incr c_retries;
      let sleep_ms = backoff_ms ~base_delay_ms ~max_delay_ms ~attempt:n in
      Obs.event ~level:Obs.Debug ~comp:"fault"
        ~attrs:
          (("attempt", string_of_int n)
          :: ("backoff_ms", string_of_int sleep_ms)
          :: (match site with Some s -> [ ("site", s) ] | None -> []))
        "transient failure, retrying";
      if sleep_ms > 0 then Unix.sleepf (float_of_int sleep_ms /. 1000.);
      go (n + 1)
  in
  go 1
