(** Deterministic failpoint registry — the fault-injection seam.

    Storage code announces each fault-prone step by name: [hit
    "wal.sync"] for control sites, [guard_write "heap.flush" payload
    write] for sites that persist bytes.  Unarmed sites only count
    themselves in a census (so harnesses can enumerate crash sites);
    armed sites raise {!Fault_injected} (fatal — the crash-torture
    harness treats it as the process dying), raise {!Fault_transient}
    (retryable, absorbed by {!Retry.with_retries}), or tear the write:
    persist a strict prefix of the payload and then die, the torn
    state a real power cut leaves.

    Arming is deterministic.  [After_hits n] fires on the n-th hit
    after arming; [Probability p] consults a {!Decibel_util.Prng}
    seeded via {!set_seed} (or the [DECIBEL_SEED] environment
    variable), so probabilistic runs replay exactly.  The
    [DECIBEL_FAILPOINTS] environment variable arms sites at program
    start: [wal.append=3] (raise on 3rd hit), [heap.flush=p0.1]
    (raise with probability 0.1), [manifest.write_tmp=t2] (torn write
    on 2nd hit), [wal.sync=always].

    Injected faults increment the ["fault.injected"] /
    ["fault.transient"] registry counters and emit a [Warn] event with
    component ["fault"]. *)

exception Fault_injected of string
(** A fatal injected fault; carries the site name. *)

exception Fault_transient of string
(** A retryable injected fault; carries the site name. *)

type trigger = Always | After_hits of int | Probability of float

type action =
  | Raise
  | Transient
  | Torn of float
      (** Persist [frac] of the payload (always at least one byte
          short), then raise fatally.  [Raise] at control sites. *)

val arm : ?action:action -> string -> trigger -> unit
(** Arm a site (default action [Raise]); re-arming resets its
    hit count.  Raises [Invalid_argument] on a non-positive
    [After_hits] or a probability outside [0,1]. *)

val disarm : string -> unit
val disarm_all : unit -> unit
val armed : string -> bool

val hit : string -> unit
(** Announce a control site: counts the hit and fires if armed and
    due. *)

val guard_write : string -> string -> (string -> unit) -> unit
(** [guard_write site payload write] announces a write site.  Unarmed
    or not due: calls [write payload].  [Raise]/[Transient]: raises
    without writing.  [Torn f]: calls [write] with a strict prefix of
    [payload], then raises {!Fault_injected}. *)

(** {1 Site census} *)

val sites : unit -> (string * int) list
(** Every site name ever hit with its process-wide hit count, sorted.
    Harnesses use this to enumerate crash sites. *)

val hits : string -> int
val reset_census : unit -> unit

(** {1 Determinism} *)

val set_seed : int64 -> unit
(** Seed the PRNG behind [Probability] triggers. *)

val arm_from_spec : string -> unit
(** Arm from a [DECIBEL_FAILPOINTS]-syntax spec; raises
    [Invalid_argument] or [Failure] on a malformed spec. *)
