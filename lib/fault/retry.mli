(** Bounded retry-on-transient-failure for flush/sync paths. *)

val is_transient : exn -> bool
(** [EINTR]/[EAGAIN] and injected {!Failpoint.Fault_transient}. *)

val with_retries : ?attempts:int -> ?site:string -> (unit -> 'a) -> 'a
(** Run [f], retrying up to [attempts] total tries (default 3) while
    it raises a transient failure; the final failure escapes.  Each
    retry increments ["fault.retries"].  [site] labels the debug
    event. *)
