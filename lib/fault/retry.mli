(** Bounded retry-on-transient-failure for flush/sync paths. *)

val is_transient : exn -> bool
(** [EINTR]/[EAGAIN] and injected {!Failpoint.Fault_transient}. *)

val with_retries :
  ?attempts:int ->
  ?base_delay_ms:int ->
  ?max_delay_ms:int ->
  ?site:string ->
  (unit -> 'a) ->
  'a
(** Run [f], retrying up to [attempts] total tries (default 3) while
    it raises a transient failure; the final failure escapes.  Each
    retry increments ["fault.retries"].  [site] labels the debug
    event.

    Before the k-th retry, sleep a {e full-jitter} backoff: uniform in
    [\[0, min (max_delay_ms, base_delay_ms * 2^(k-1))\]] milliseconds,
    drawn from a per-domain deterministic generator.  The default
    [base_delay_ms = 0] never sleeps (the historical behaviour);
    [max_delay_ms] caps the exponential growth (default 1000). *)

val backoff_ms : base_delay_ms:int -> max_delay_ms:int -> attempt:int -> int
(** The jittered sleep for the given retry (exposed for tests); 0 when
    [base_delay_ms <= 0]. *)
