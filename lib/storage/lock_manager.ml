module Obs = Decibel_obs.Obs
module Governor = Decibel_governor.Governor

type mode = Shared | Exclusive

exception Deadlock of string

type entry = { mutable locks : (int * mode) list }

type t = {
  mutex : Mutex.t;
  changed : Condition.t;
  table : (string, entry) Hashtbl.t;
  timeout_s : float;
  mutable waiters : int;
  mutable watchdog : bool; (* a deadline-tick thread is running *)
}

let create ?(timeout_s = 5.0) () =
  {
    mutex = Mutex.create ();
    changed = Condition.create ();
    table = Hashtbl.create 64;
    timeout_s;
    waiters = 0;
    watchdog = false;
  }

(* [Condition.wait] has no timeout, so a blocked [acquire] woken only
   by [release_all] could overshoot its deadline forever if the holder
   never releases.  While any waiter exists, a lazily spawned watchdog
   thread broadcasts [changed] periodically so waiters re-check their
   deadlines; it exits as soon as the last waiter is gone. *)
let rec watchdog_loop t =
  (* Tick fast enough that short per-call deadlines (a few ms) are
     honored with useful precision, not just the coarse lock timeout. *)
  Thread.delay (min 0.005 (max 0.002 (t.timeout_s /. 10.)));
  Mutex.lock t.mutex;
  let keep_going = t.waiters > 0 in
  if keep_going then Condition.broadcast t.changed else t.watchdog <- false;
  Mutex.unlock t.mutex;
  if keep_going then watchdog_loop t

let entry_of t resource =
  match Hashtbl.find_opt t.table resource with
  | Some e -> e
  | None ->
      let e = { locks = [] } in
      Hashtbl.replace t.table resource e;
      e

let compatible entry ~owner mode =
  match mode with
  | Shared ->
      List.for_all
        (fun (o, m) -> o = owner || m = Shared)
        entry.locks
  | Exclusive -> List.for_all (fun (o, _) -> o = owner) entry.locks

let acquire t ?deadline ~owner ~resource mode =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let e = entry_of t resource in
      let lock_deadline = Unix.gettimeofday () +. t.timeout_s in
      let ctx = Governor.Ctx.current () in
      (* A caller deadline (explicit or via the ambient governor
         context) abandons the wait with [Deadline_exceeded], not
         [Deadlock]: the wait was cut short by the caller's budget,
         not by suspected lock-graph starvation. *)
      let abandon () =
        Obs.event ~level:Obs.Warn ~comp:"lock"
          ~attrs:[ ("resource", resource); ("owner", string_of_int owner) ]
          "lock wait abandoned: caller deadline exceeded";
        raise Governor.Deadline_exceeded
      in
      let check_caller () =
        (match ctx with
        | Some c -> (
            try Governor.Ctx.check c
            with Governor.Deadline_exceeded -> abandon ())
        | None -> ());
        match deadline with
        | Some d when Unix.gettimeofday () > d -> abandon ()
        | _ -> ()
      in
      let rec wait () =
        check_caller ();
        if compatible e ~owner mode then begin
          let held = List.assoc_opt owner e.locks in
          match held, mode with
          | Some Exclusive, _ | Some Shared, Shared -> ()
          | Some Shared, Exclusive ->
              e.locks <-
                (owner, Exclusive) :: List.remove_assoc owner e.locks
          | None, _ -> e.locks <- (owner, mode) :: e.locks
        end
        else begin
          if Unix.gettimeofday () > lock_deadline then raise (Deadlock resource);
          t.waiters <- t.waiters + 1;
          if not t.watchdog then begin
            t.watchdog <- true;
            ignore (Thread.create watchdog_loop t)
          end;
          (* woken promptly by release_all's broadcast, or by the
             watchdog tick for the deadline re-check *)
          Condition.wait t.changed t.mutex;
          t.waiters <- t.waiters - 1;
          wait ()
        end
      in
      wait ())

let release_all t ~owner =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.iter
        (fun _ e -> e.locks <- List.filter (fun (o, _) -> o <> owner) e.locks)
        t.table;
      Condition.broadcast t.changed)

let holders t ~resource =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      match Hashtbl.find_opt t.table resource with
      | Some e -> e.locks
      | None -> [])
