(** Structured column predicates ([column op literal] conjuncts).

    The data form of {!Query.column_pred}-style closures, so engines
    and the columnar segment reader can evaluate them on decoded
    batches (or dictionary codes) before materializing tuples. *)

type op = Eq | Ne | Lt | Le | Gt | Ge

val op_name : op -> string

val matches : op -> int -> bool
(** [matches op c] is the truth of [op] given three-way comparison
    result [c] (negative / zero / positive). *)

type t = { cp_col : int; cp_op : op; cp_value : Value.t }

val make : Schema.t -> column:string -> op -> Value.t -> t
(** Resolve a column name against the schema. Raises [Not_found] on an
    unknown column. *)

val of_index : int -> op -> Value.t -> t

val eval_one : t -> Tuple.t -> bool
val eval_tuple : t list -> Tuple.t -> bool
(** Row-wise fallback evaluation (conjunction), for engines without a
    batch path. *)

val pp : Format.formatter -> t -> unit
