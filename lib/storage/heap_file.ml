open Decibel_util
module Obs = Decibel_obs.Obs
module Failpoint = Decibel_fault.Failpoint
module Retry = Decibel_fault.Retry

(* heap.* registry counters: shared by every heap/segment file, so
   engine scans can attribute page traffic without plumbing handles *)
let c_pages_read = Obs.counter "heap.pages_read"
let c_pages_allocated = Obs.counter "heap.pages_allocated"
let c_records_written = Obs.counter "heap.records_written"
let c_bytes_written = Obs.counter "heap.bytes_written"
let c_flushes = Obs.counter "heap.flushes"

type t = {
  path : string;
  fd : Unix.file_descr;
  io_m : Mutex.t;
      (* OCaml's Unix has no pread: positioned reads are an
         lseek+read pair on the shared fd, which parallel scan
         workers would otherwise interleave. Writes (flush) take it
         too, since they also move the file offset. *)
  pool : Buffer_pool.t;
  file_id : int;
  mutable size : int; (* logical end, including pending bytes *)
  mutable flushed : int; (* bytes durable in [fd] *)
  pending : Buffer.t;
  mutable closed : bool;
}

let flush_threshold = 1 lsl 20

let make ~pool path fd initial_size =
  {
    path;
    fd;
    io_m = Mutex.create ();
    pool;
    file_id = Buffer_pool.next_file_id pool;
    size = initial_size;
    flushed = initial_size;
    pending = Buffer.create flush_threshold;
    closed = false;
  }

let create ~pool path =
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC ] 0o644 in
  make ~pool path fd 0

let open_existing ~pool path =
  let fd = Unix.openfile path [ O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).st_size in
  make ~pool path fd size

(* Open-or-create with logical size 0 but WITHOUT truncating: the
   maintenance executor uses this to stage an empty segment over a
   slot whose old bytes must survive until the manifest commits (a
   crash before the commit must still reopen the old data).  The stale
   on-disk tail is reclaimed later by [truncate_to]/[create]. *)
let open_reset ~pool path =
  let fd = Unix.openfile path [ O_RDWR; O_CREAT ] 0o644 in
  make ~pool path fd 0

let path t = t.path
let size t = t.size

let page_count t =
  let psz = Buffer_pool.page_size t.pool in
  (t.size + psz - 1) / psz

let check_open t = if t.closed then invalid_arg "Heap_file: closed"

let flush t =
  check_open t;
  if Buffer.length t.pending > 0 then begin
    let data = Buffer.contents t.pending in
    let len = String.length data in
    (* the guard may tear this write: a prefix lands on disk, the
       exception propagates, and [flushed]/[pending] stay put — the
       same state a crash mid-write leaves, cleaned up by the
       truncate-to-manifest-size step on reopen *)
    Retry.with_retries ~site:"heap.flush" (fun () ->
        Failpoint.guard_write "heap.flush" data (fun data ->
            Mutex.lock t.io_m;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.io_m)
              (fun () ->
                let _ = Unix.lseek t.fd t.flushed SEEK_SET in
                let n = String.length data in
                let written = Unix.write_substring t.fd data 0 n in
                if written <> n then failwith "Heap_file.flush: short write")));
    (* the old tail page may be cached with its old, shorter contents *)
    let psz = Buffer_pool.page_size t.pool in
    Buffer_pool.invalidate_page t.pool ~file:t.file_id ~page:(t.flushed / psz);
    Obs.add c_pages_allocated
      (((t.flushed + len + psz - 1) / psz) - ((t.flushed + psz - 1) / psz));
    t.flushed <- t.flushed + len;
    Buffer.clear t.pending;
    Obs.incr c_flushes;
    Buffer_pool.note_write_back t.pool
  end

let truncate_to t size =
  check_open t;
  if Buffer.length t.pending > 0 then
    invalid_arg "Heap_file.truncate_to: pending appends";
  if size < 0 || size > t.flushed then
    invalid_arg "Heap_file.truncate_to: size out of range";
  Failpoint.hit "heap.truncate";
  Unix.ftruncate t.fd size;
  (* only pages at or past the cut are stale (the page containing the
     cut may be cached with bytes beyond it); the retained prefix
     stays warm *)
  let psz = Buffer_pool.page_size t.pool in
  Buffer_pool.invalidate_from t.pool ~file:t.file_id ~page:(size / psz);
  t.flushed <- size;
  t.size <- size

let append t payload =
  check_open t;
  Failpoint.hit "heap.append";
  let off = t.size in
  Binio.write_varint t.pending (String.length payload);
  Binio.write_u32 t.pending (Crc32.string payload);
  Buffer.add_string t.pending payload;
  t.size <- t.flushed + Buffer.length t.pending;
  Obs.incr c_records_written;
  Obs.add c_bytes_written (t.size - off);
  if Buffer.length t.pending >= flush_threshold then flush t;
  off

(* Read [len] bytes at [off] from the durable region, assembling from
   buffer-pool pages.  Only complete pages are cached; the partial tail
   page of the durable region is read directly each time. *)
let read_disk t off len out out_pos =
  let psz = Buffer_pool.page_size t.pool in
  let pread file_off buf buf_pos n =
    Obs.incr c_pages_read;
    Mutex.lock t.io_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.io_m)
      (fun () ->
        let _ = Unix.lseek t.fd file_off SEEK_SET in
        let rec loop pos remaining =
          if remaining > 0 then begin
            let r = Unix.read t.fd buf pos remaining in
            if r = 0 then failwith "Heap_file: unexpected EOF";
            loop (pos + r) (remaining - r)
          end
        in
        loop buf_pos n)
  in
  let first_page = off / psz and last_page = (off + len - 1) / psz in
  for p = first_page to last_page do
    let page_start = p * psz in
    let avail = min psz (t.flushed - page_start) in
    (* partial tail pages are cached too; flush invalidates the stale
       boundary page when the durable region grows past it *)
    let cached =
      match Buffer_pool.find t.pool ~file:t.file_id ~page:p with
      | Some data when Bytes.length data >= avail -> Some data
      | Some _ | None -> None
    in
    let page =
      match cached with
      | Some data -> data
      | None ->
          let data = Bytes.create avail in
          pread page_start data 0 avail;
          Buffer_pool.add t.pool ~file:t.file_id ~page:p data;
          data
    in
    let seg_start = max off page_start in
    let seg_end = min (off + len) (page_start + avail) in
    if seg_end > seg_start then
      Bytes.blit page (seg_start - page_start) out
        (out_pos + (seg_start - off))
        (seg_end - seg_start)
  done

let read_raw t off len =
  check_open t;
  if off < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Heap_file.read_raw: [%d,%d) out of bounds (size %d)"
         off (off + len) t.size);
  let out = Bytes.create len in
  let disk_len = min len (max 0 (t.flushed - off)) in
  if disk_len > 0 then read_disk t off disk_len out 0;
  if disk_len < len then begin
    let mem_off = max off t.flushed - t.flushed in
    let mem_len = len - disk_len in
    let s = Buffer.sub t.pending mem_off mem_len in
    Bytes.blit_string s 0 out disk_len mem_len
  end;
  Bytes.unsafe_to_string out

(* Header: varint payload length (<= 5 bytes) + u32 CRC-32 of the
   payload.  Returns (len, crc, payload_off). *)
let read_header t off =
  let n = min 9 (t.size - off) in
  if n <= 0 then
    raise (Binio.Corrupt "Heap_file: record offset at or past end of file");
  let hdr = read_raw t off n in
  let pos = ref 0 in
  let len = Binio.read_varint hdr pos in
  if !pos + 4 > n then
    raise (Binio.Corrupt "Heap_file: record header truncated");
  let crc = Binio.read_u32 hdr pos in
  (len, crc, off + !pos)

let checked t off crc payload =
  if Crc32.string payload <> crc then
    raise
      (Binio.Corrupt
         (Printf.sprintf "Heap_file: checksum mismatch at offset %d of %s" off
            t.path));
  payload

let get t off =
  Failpoint.hit "heap.get";
  let len, crc, payload_off = read_header t off in
  checked t off crc (read_raw t payload_off len)

let iter ?(from = 0) ?upto t f =
  check_open t;
  let upto = Option.value upto ~default:t.size in
  let pos = ref from in
  while !pos < upto do
    let len, crc, payload_off = read_header t !pos in
    f !pos (checked t !pos crc (read_raw t payload_off len));
    pos := payload_off + len
  done

let iter_rev ?(from = 0) ?upto t f =
  check_open t;
  let upto = Option.value upto ~default:t.size in
  (* First pass collects record extents (headers only), second reads
     payloads newest-first. *)
  let extents = ref [] in
  let pos = ref from in
  while !pos < upto do
    let len, _, payload_off = read_header t !pos in
    extents := (!pos, payload_off, len) :: !extents;
    pos := payload_off + len
  done;
  List.iter
    (fun (off, payload_off, len) ->
      let _, crc, _ = read_header t off in
      f off (checked t off crc (read_raw t payload_off len)))
    !extents

let verify t =
  check_open t;
  let errors = ref [] in
  (try
     let pos = ref 0 in
     while !pos < t.size do
       let len, crc, payload_off = read_header t !pos in
       if payload_off + len > t.size then
         raise
           (Binio.Corrupt
              (Printf.sprintf "record at offset %d overruns end of file" !pos));
       let payload = read_raw t payload_off len in
       if Crc32.string payload <> crc then
         errors :=
           (!pos, Printf.sprintf "checksum mismatch at offset %d" !pos)
           :: !errors;
       pos := payload_off + len
     done
   with Binio.Corrupt msg ->
     (* framing is broken: nothing past this point can be trusted *)
     errors := (-1, msg) :: !errors);
  List.rev !errors

let close t =
  if not t.closed then begin
    flush t;
    Unix.close t.fd;
    Buffer_pool.invalidate_file t.pool t.file_id;
    t.closed <- true
  end

let abandon t =
  if not t.closed then begin
    (* crash simulation: drop buffered appends on the floor and close
       the descriptor without flushing — disk keeps only what earlier
       flushes made durable *)
    Buffer.clear t.pending;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    Buffer_pool.invalidate_file t.pool t.file_id;
    t.closed <- true
  end

let remove t =
  close t;
  if Sys.file_exists t.path then Sys.remove t.path
