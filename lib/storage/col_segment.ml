(* Row-addressed segment storage, format v1 (row-per-record) and v2
   (PAX column-group blocks with per-column lightweight compression).

   Engines address records by dense row index; this module maps rows
   onto one of two on-disk layouts inside a {!Heap_file}:

   - v1: one heap record per row, payload encoded by an engine-supplied
     codec (the pre-columnar format, kept so old repositories open).
   - v2: rows are buffered in memory and sealed into column blocks of
     up to [block_rows] rows.  A sealed block is ONE heap record:

       u8 wrap            0 = raw, 1 = LZ77-compressed body
       -- body --
       varint nrows
       u8 has_tombstones  (1: RLE bitmap of tombstone rows follows)
       per column:        u8 encoding, varint byte length, bytes

     Column encodings: ints are constant-folded (enc 0) or delta +
     zigzag varint (enc 1); strings are raw (enc 2) or dictionary
     coded in first-occurrence order (enc 3).

   Scans over v2 decode a block at a time into per-domain scratch
   arrays and evaluate column predicates on the decoded batch (on
   dictionary codes for string comparisons), materializing Tuple.t
   only for emitted rows.  A selection bitmap is tested against a
   block's row range before the block is read, so rows dead in the
   scanned branch cost neither I/O nor decode. *)

open Decibel_util
module Obs = Decibel_obs.Obs

let c_blocks_sealed = Obs.counter "colseg.blocks_sealed"
let c_blocks_decoded = Obs.counter "colseg.blocks_decoded"
let c_blocks_skipped = Obs.counter "colseg.blocks_skipped"
let c_rows_decoded = Obs.counter "colseg.rows_decoded"

let block_rows = 1024

type row_value = Live of Tuple.t | Tombstone of Value.t

type v1_codec = {
  v1_encode : row_value -> string;
  v1_decode : string -> row_value;
}

(* per-column encoding statistics, persisted with the v2 manifest meta
   so compression-ratio reporting survives reopen *)
type col_stats = {
  mutable cs_raw_bytes : int;   (* pre-encoding byte volume *)
  mutable cs_enc_bytes : int;   (* encoded byte volume *)
  mutable cs_const_blocks : int;
  mutable cs_delta_blocks : int;
  mutable cs_rawstr_blocks : int;
  mutable cs_dict_blocks : int;
}

let fresh_stats () =
  {
    cs_raw_bytes = 0;
    cs_enc_bytes = 0;
    cs_const_blocks = 0;
    cs_delta_blocks = 0;
    cs_rawstr_blocks = 0;
    cs_dict_blocks = 0;
  }

type blk = { bk_off : int; bk_start : int; bk_rows : int }

type mode = V1 of v1_codec | V2

let next_id = Atomic.make 0

type t = {
  id : int; (* process-unique, keys the per-domain decoded-block cache *)
  path : string;
  pool : Buffer_pool.t;
  schema : Schema.t;
  compress : bool;
  mode : mode;
  file : Heap_file.t;
  offsets : int Vec.t; (* v1: heap offset of each row *)
  blocks : blk Vec.t; (* v2: sealed blocks, ascending bk_start *)
  mutable sealed_rows : int;
  open_block : row_value array; (* v2: rows not yet sealed *)
  mutable open_n : int;
  mutable open_bytes : int; (* approximate raw bytes buffered in it *)
  stats : col_stats array; (* v2: one per column *)
}

let dummy_blk = { bk_off = 0; bk_start = 0; bk_rows = 0 }

let make ~pool ~schema ~compress ~path mode file =
  {
    id = Atomic.fetch_and_add next_id 1;
    path;
    pool;
    schema;
    compress;
    mode;
    file;
    offsets = Vec.create ~dummy:0 ();
    blocks = Vec.create ~dummy:dummy_blk ();
    sealed_rows = 0;
    open_block = Array.make block_rows (Live [||]);
    open_n = 0;
    open_bytes = 0;
    stats = Array.init (Schema.arity schema) (fun _ -> fresh_stats ());
  }

let create_v1 ~pool ~schema ~compress ~codec ~path =
  make ~pool ~schema ~compress ~path (V1 codec) (Heap_file.create ~pool path)

let create_v2 ~pool ~schema ~compress ~path =
  make ~pool ~schema ~compress ~path V2 (Heap_file.create ~pool path)

(* Empty v2 segment staged over a slot file whose old bytes must stay
   on disk until the engine manifest commits (maintenance compaction).
   [save_meta] records size 0 and zero blocks without touching the fd,
   and [open_v2]'s truncate-to-manifest-size reclaims the stale tail
   on the next reopen. *)
let empty_over ~pool ~schema ~compress ~path =
  make ~pool ~schema ~compress ~path V2 (Heap_file.open_reset ~pool path)

(* Wrap an already-opened v1 heap (the engine parsed its own manifest
   and truncated the file); [offsets] lists each row's heap offset. *)
let of_v1 ~pool ~schema ~compress ~codec ~file ~offsets =
  let t =
    make ~pool ~schema ~compress ~path:(Heap_file.path file) (V1 codec) file
  in
  List.iter (fun off -> ignore (Vec.push t.offsets off)) offsets;
  t

let format_version t = match t.mode with V1 _ -> 1 | V2 -> 2
let schema t = t.schema
let path t = t.path
let pool t = t.pool
let rows t =
  match t.mode with
  | V1 _ -> Vec.length t.offsets
  | V2 -> t.sealed_rows + t.open_n

(* Unsealed rows live only in the open block; the dataset-size and
   page-traffic figures count their approximate raw footprint so
   growth is visible between flushes. *)
let byte_size t = Heap_file.size t.file + t.open_bytes

let page_count t =
  let psz = Buffer_pool.page_size t.pool in
  Heap_file.page_count t.file + ((t.open_bytes + psz - 1) / psz)

(* Approximate on-disk bytes holding rows [0, row): the charge basis
   for governed scans bounded by a row locator. *)
let bytes_upto t row =
  match t.mode with
  | V1 _ ->
      if row >= Vec.length t.offsets then Heap_file.size t.file
      else Vec.get t.offsets row
  | V2 ->
      if row >= t.sealed_rows then Heap_file.size t.file
      else begin
        (* first block starting at or after [row] *)
        let n = Vec.length t.blocks in
        let rec search lo hi =
          if lo >= hi then lo
          else
            let mid = (lo + hi) / 2 in
            let b = Vec.get t.blocks mid in
            if b.bk_start + b.bk_rows <= row then search (mid + 1) hi
            else search lo mid
        in
        let i = search 0 n in
        if i >= n then Heap_file.size t.file else (Vec.get t.blocks i).bk_off
      end

(* ------------------------------------------------------------------ *)
(* v2 block encoding *)

let tomb_filler = function Schema.T_int -> Value.Int 0L | Schema.T_str -> Value.Str ""

let cell t c j =
  let cols = Schema.columns t.schema in
  match Array.unsafe_get t.open_block j with
  | Live tuple -> tuple.(c)
  | Tombstone key ->
      if c = Schema.pk_index t.schema then key
      else tomb_filler cols.(c).Schema.col_type

let encode_int_col t c n buf =
  let st = t.stats.(c) in
  st.cs_raw_bytes <- st.cs_raw_bytes + (8 * n);
  let v0 =
    match cell t c 0 with
    | Value.Int x -> x
    | Value.Str _ -> invalid_arg "Col_segment: str value in int column"
  in
  let const = ref true in
  for j = 1 to n - 1 do
    match cell t c j with
    | Value.Int x -> if x <> v0 then const := false
    | Value.Str _ -> invalid_arg "Col_segment: str value in int column"
  done;
  let body = Buffer.create 64 in
  if !const then begin
    Varint.write_i64 body v0;
    st.cs_const_blocks <- st.cs_const_blocks + 1;
    Binio.write_u8 buf 0
  end
  else begin
    let prev = ref 0L in
    for j = 0 to n - 1 do
      match cell t c j with
      | Value.Int x ->
          Varint.write_i64 body (Int64.sub x !prev);
          prev := x
      | Value.Str _ -> assert false
    done;
    st.cs_delta_blocks <- st.cs_delta_blocks + 1;
    Binio.write_u8 buf 1
  end;
  st.cs_enc_bytes <- st.cs_enc_bytes + Buffer.length body;
  Binio.write_varint buf (Buffer.length body);
  Buffer.add_buffer buf body

let encode_str_col t c n buf =
  let st = t.stats.(c) in
  let strs =
    Array.init n (fun j ->
        match cell t c j with
        | Value.Str s -> s
        | Value.Int _ -> invalid_arg "Col_segment: int value in str column")
  in
  Array.iter
    (fun s ->
      let l = String.length s in
      st.cs_raw_bytes <- st.cs_raw_bytes + l + Varint.size_u64 (Int64.of_int l))
    strs;
  (* first-occurrence dictionary; fall back to raw when the column is
     not low-cardinality enough to win *)
  let table = Hashtbl.create 64 in
  let dict = Vec.create ~dummy:"" () in
  let codes = Array.make n 0 in
  (try
     Array.iteri
       (fun j s ->
         let code =
           match Hashtbl.find_opt table s with
           | Some c -> c
           | None ->
               if Hashtbl.length table >= 256 then raise Exit;
               let c = Vec.push dict s in
               Hashtbl.replace table s c;
               c
         in
         codes.(j) <- code)
       strs
   with Exit -> Hashtbl.reset table);
  let ndict = Vec.length dict in
  let use_dict = Hashtbl.length table = ndict && ndict > 0 && ndict < n in
  let body = Buffer.create 256 in
  if use_dict then begin
    Binio.write_varint body ndict;
    Vec.iter (Binio.write_string body) dict;
    Array.iter (Binio.write_varint body) codes;
    st.cs_dict_blocks <- st.cs_dict_blocks + 1;
    Binio.write_u8 buf 3
  end
  else begin
    Array.iter (Binio.write_string body) strs;
    st.cs_rawstr_blocks <- st.cs_rawstr_blocks + 1;
    Binio.write_u8 buf 2
  end;
  st.cs_enc_bytes <- st.cs_enc_bytes + Buffer.length body;
  Binio.write_varint buf (Buffer.length body);
  Buffer.add_buffer buf body

let seal t =
  if t.open_n > 0 then begin
    let n = t.open_n in
    let inner = Buffer.create 4096 in
    Binio.write_varint inner n;
    let tombs = Bitvec.create ~capacity:n () in
    let any_tomb = ref false in
    for j = 0 to n - 1 do
      match t.open_block.(j) with
      | Tombstone _ ->
          Bitvec.set tombs j;
          any_tomb := true
      | Live _ -> ()
    done;
    if !any_tomb then begin
      if Bitvec.length tombs < n then Bitvec.assign tombs (n - 1) false;
      Binio.write_u8 inner 1;
      Buffer.add_string inner (Rle.encode tombs)
    end
    else Binio.write_u8 inner 0;
    let cols = Schema.columns t.schema in
    Array.iteri
      (fun c (col : Schema.column) ->
        match col.Schema.col_type with
        | Schema.T_int -> encode_int_col t c n inner
        | Schema.T_str -> encode_str_col t c n inner)
      cols;
    let body = Buffer.contents inner in
    let payload =
      if t.compress then begin
        let z = Lz77.compress body in
        if String.length z < String.length body then "\001" ^ z
        else "\000" ^ body
      end
      else "\000" ^ body
    in
    let off = Heap_file.append t.file payload in
    ignore (Vec.push t.blocks { bk_off = off; bk_start = t.sealed_rows; bk_rows = n });
    t.sealed_rows <- t.sealed_rows + n;
    Array.fill t.open_block 0 n (Live [||]);
    t.open_n <- 0;
    t.open_bytes <- 0;
    Obs.incr c_blocks_sealed
  end

let approx_row_bytes rv =
  let value_bytes = function
    | Value.Int _ -> 8
    | Value.Str s -> String.length s + 2
  in
  match rv with
  | Live tuple -> Array.fold_left (fun acc v -> acc + value_bytes v) 2 tuple
  | Tombstone key -> 2 + value_bytes key

let append t rv =
  match t.mode with
  | V1 codec ->
      let off = Heap_file.append t.file (codec.v1_encode rv) in
      Vec.push t.offsets off
  | V2 ->
      let row = t.sealed_rows + t.open_n in
      t.open_block.(t.open_n) <- rv;
      t.open_n <- t.open_n + 1;
      t.open_bytes <- t.open_bytes + approx_row_bytes rv;
      if t.open_n = block_rows then seal t;
      row

let flush t =
  (match t.mode with V1 _ -> () | V2 -> seal t);
  Heap_file.flush t.file

(* ------------------------------------------------------------------ *)
(* v2 block decoding *)

type col_batch =
  | C_int of int64 array
  | C_str of string array
  | C_dict of { dict : string array; codes : int array }

type batch = {
  b_rows : int;
  b_cols : col_batch array;
  b_tombs : Bitvec.t option;
}

(* Per-domain scratch: decoded-column arrays reused block to block
   inside one scan.  [busy] guards re-entrancy — a scan started from
   inside another scan's consumer falls back to fresh allocation
   rather than clobbering the outer batch. *)
type scratch = {
  mutable s_ints : int64 array array;
  mutable s_strs : string array array;
  mutable s_codes : int array array;
  mutable s_busy : bool;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { s_ints = [||]; s_strs = [||]; s_codes = [||]; s_busy = false })

let grow_slot arr c mk =
  if Array.length !arr <= c then begin
    let bigger = Array.make (c + 4) [||] in
    Array.blit !arr 0 bigger 0 (Array.length !arr);
    arr := bigger
  end;
  if Array.length !arr.(c) = 0 then !arr.(c) <- mk ();
  !arr.(c)

let scratch_ints s c =
  let r = ref s.s_ints in
  let a = grow_slot r c (fun () -> Array.make block_rows 0L) in
  s.s_ints <- !r;
  a

let scratch_strs s c =
  let r = ref s.s_strs in
  let a = grow_slot r c (fun () -> Array.make block_rows "") in
  s.s_strs <- !r;
  a

let scratch_codes s c =
  let r = ref s.s_codes in
  let a = grow_slot r c (fun () -> Array.make block_rows 0) in
  s.s_codes <- !r;
  a

let corrupt fmt = Printf.ksprintf (fun m -> raise (Binio.Corrupt m)) fmt

(* Decode one sealed block payload into a batch.  With [?scratch] the
   column arrays are the per-domain scratch (valid until the next
   decode on this domain); without, fresh arrays are allocated. *)
let decode_payload t ?scratch payload =
  Obs.Prof.add Obs.Prof.Bytes_decoded (String.length payload);
  Obs.incr c_blocks_decoded;
  let pos = ref 0 in
  let body =
    match Binio.read_u8 payload pos with
    | 0 -> payload
    | 1 ->
        let z = String.sub payload 1 (String.length payload - 1) in
        let b = Lz77.decompress z in
        pos := 0;
        b
    | w -> corrupt "Col_segment: bad block wrap tag %d in %s" w t.path
  in
  let n = Binio.read_varint body pos in
  if n <= 0 || n > block_rows then
    corrupt "Col_segment: bad block row count %d in %s" n t.path;
  Obs.add c_rows_decoded n;
  let tombs =
    match Binio.read_u8 body pos with
    | 0 -> None
    | 1 ->
        let v = Rle.decode body pos in
        if Bitvec.length v <> n then
          corrupt "Col_segment: tombstone bitmap length mismatch in %s" t.path;
        Some v
    | b -> corrupt "Col_segment: bad tombstone flag %d in %s" b t.path
  in
  let cols = Schema.columns t.schema in
  let b_cols =
    Array.mapi
      (fun c (col : Schema.column) ->
        let enc = Binio.read_u8 body pos in
        let len = Binio.read_varint body pos in
        if !pos + len > String.length body then
          corrupt "Col_segment: column %d overruns block in %s" c t.path;
        let colend = !pos + len in
        let r =
          match enc, col.Schema.col_type with
          | 0, Schema.T_int ->
              let v = Varint.read_i64 body pos in
              let a =
                match scratch with
                | Some s -> scratch_ints s c
                | None -> Array.make n 0L
              in
              Array.fill a 0 n v;
              C_int a
          | 1, Schema.T_int ->
              let a =
                match scratch with
                | Some s -> scratch_ints s c
                | None -> Array.make n 0L
              in
              let prev = ref 0L in
              for j = 0 to n - 1 do
                prev := Int64.add !prev (Varint.read_i64 body pos);
                a.(j) <- !prev
              done;
              C_int a
          | 2, Schema.T_str ->
              let a =
                match scratch with
                | Some s -> scratch_strs s c
                | None -> Array.make n ""
              in
              for j = 0 to n - 1 do
                a.(j) <- Binio.read_string body pos
              done;
              C_str a
          | 3, Schema.T_str ->
              let ndict = Binio.read_varint body pos in
              if ndict <= 0 || ndict > n then
                corrupt "Col_segment: bad dictionary size %d in %s" ndict
                  t.path;
              let dict =
                Array.init ndict (fun _ -> Binio.read_string body pos)
              in
              let codes =
                match scratch with
                | Some s -> scratch_codes s c
                | None -> Array.make n 0
              in
              for j = 0 to n - 1 do
                let code = Binio.read_varint body pos in
                if code >= ndict then
                  corrupt "Col_segment: dictionary code %d out of range in %s"
                    code t.path;
                codes.(j) <- code
              done;
              C_dict { dict; codes }
          | enc, _ ->
              corrupt "Col_segment: bad encoding %d for column %d in %s" enc c
                t.path
        in
        if !pos <> colend then
          corrupt "Col_segment: column %d length mismatch in %s" c t.path;
        r)
      cols
  in
  { b_rows = n; b_cols; b_tombs = tombs }

let col_value cols c j =
  match cols.(c) with
  | C_int a -> Value.Int a.(j)
  | C_str a -> Value.Str a.(j)
  | C_dict { dict; codes } -> Value.Str dict.(codes.(j))

(* placeholder for Array.make before the real values land; never
   escapes *)
let dummy_value = Value.Int 0L

let tuple_of_batch t b j =
  let n = Schema.arity t.schema in
  let a = Array.make n dummy_value in
  for c = 0 to n - 1 do
    Array.unsafe_set a c (col_value b.b_cols c j)
  done;
  a

let is_tomb b j =
  match b.b_tombs with None -> false | Some v -> Bitvec.get v j

let row_value_of_batch t b j =
  if is_tomb b j then Tombstone (col_value b.b_cols (Schema.pk_index t.schema) j)
  else Live (tuple_of_batch t b j)

(* Per-domain cache of the most recently decoded block per segment:
   point lookups cluster (pk probes during merges and diffs), so one
   cached batch per segment id removes the quadratic decode. *)
let cache_key :
    (int, int * batch) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let block_index_of_row t row =
  (* greatest block with bk_start <= row *)
  let n = Vec.length t.blocks in
  let rec search lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if (Vec.get t.blocks mid).bk_start <= row then search (mid + 1) hi
      else search lo mid
  in
  let i = search 0 n in
  if i < 0 then corrupt "Col_segment: row %d before first block in %s" row t.path
  else i

let cached_batch t bi =
  let cache = Domain.DLS.get cache_key in
  match Hashtbl.find_opt cache t.id with
  | Some (i, b) when i = bi -> b
  | _ ->
      let blk = Vec.get t.blocks bi in
      let b = decode_payload t (Heap_file.get t.file blk.bk_off) in
      if b.b_rows <> blk.bk_rows then
        corrupt "Col_segment: block at %d has %d rows, expected %d in %s"
          blk.bk_off b.b_rows blk.bk_rows t.path;
      Hashtbl.replace cache t.id (bi, b);
      b

let check_row t row =
  if row < 0 || row >= rows t then
    corrupt "Col_segment: row %d out of range (have %d) in %s" row (rows t)
      t.path

let with_scratch f =
  let s = Domain.DLS.get scratch_key in
  if s.s_busy then f None
  else begin
    s.s_busy <- true;
    Fun.protect ~finally:(fun () -> s.s_busy <- false) (fun () -> f (Some s))
  end

(* Decode one sealed block into [scratch] (bulk iteration: each block
   is visited once, so the DLS batch cache would only churn). *)
let scratch_batch t scratch bi =
  let blk = Vec.get t.blocks bi in
  let b = decode_payload t ?scratch (Heap_file.get t.file blk.bk_off) in
  if b.b_rows <> blk.bk_rows then
    corrupt "Col_segment: block at %d has %d rows, expected %d in %s"
      blk.bk_off b.b_rows blk.bk_rows t.path;
  b

let get t row =
  check_row t row;
  match t.mode with
  | V1 codec -> codec.v1_decode (Heap_file.get t.file (Vec.get t.offsets row))
  | V2 ->
      if row >= t.sealed_rows then t.open_block.(row - t.sealed_rows)
      else
        let bi = block_index_of_row t row in
        let blk = Vec.get t.blocks bi in
        let b = cached_batch t bi in
        row_value_of_batch t b (row - blk.bk_start)

let get_tuple t row =
  match get t row with
  | Live tuple -> tuple
  | Tombstone _ ->
      corrupt "Col_segment: row %d of %s is a tombstone" row t.path

(* ------------------------------------------------------------------ *)
(* iteration *)

let clip_bounds t from upto =
  let n = rows t in
  (max 0 (Option.value from ~default:0), min n (Option.value upto ~default:n))

(* All rows (live and tombstone) in [from, upto), ascending. *)
let iter ?from ?upto t f =
  let from, upto = clip_bounds t from upto in
  if from < upto then
    match t.mode with
    | V1 codec ->
        let byte_from = Vec.get t.offsets from in
        let byte_upto =
          if upto >= Vec.length t.offsets then Heap_file.size t.file
          else Vec.get t.offsets upto
        in
        let row = ref from in
        Heap_file.iter ~from:byte_from ~upto:byte_upto t.file
          (fun _off payload ->
            f !row (codec.v1_decode payload);
            incr row)
    | V2 ->
        let nb = Vec.length t.blocks in
        if from < t.sealed_rows then
          with_scratch (fun scratch ->
              let bi0 = block_index_of_row t from in
              let bi = ref bi0 in
              let continue = ref true in
              while !continue && !bi < nb do
                let blk = Vec.get t.blocks !bi in
                if blk.bk_start >= upto then continue := false
                else begin
                  let b = scratch_batch t scratch !bi in
                  let lo = max from blk.bk_start
                  and hi = min upto (blk.bk_start + blk.bk_rows) in
                  for row = lo to hi - 1 do
                    f row (row_value_of_batch t b (row - blk.bk_start))
                  done;
                  incr bi
                end
              done);
        let lo = max from t.sealed_rows in
        for row = lo to upto - 1 do
          f row t.open_block.(row - t.sealed_rows)
        done

(* All rows in [from, upto), descending. *)
let iter_rev ?from ?upto t f =
  let from, upto = clip_bounds t from upto in
  if from < upto then
    match t.mode with
    | V1 codec ->
        let byte_from = Vec.get t.offsets from in
        let byte_upto =
          if upto >= Vec.length t.offsets then Heap_file.size t.file
          else Vec.get t.offsets upto
        in
        let row = ref upto in
        Heap_file.iter_rev ~from:byte_from ~upto:byte_upto t.file
          (fun _off payload ->
            decr row;
            f !row (codec.v1_decode payload))
    | V2 ->
        let hi = min upto (rows t) in
        (for row = hi - 1 downto max from t.sealed_rows do
           f row t.open_block.(row - t.sealed_rows)
         done);
        if from < t.sealed_rows then begin
          let last = min hi t.sealed_rows - 1 in
          if last >= from then
            with_scratch (fun scratch ->
                let bi = ref (block_index_of_row t last) in
                let continue = ref true in
                while !continue && !bi >= 0 do
                  let blk = Vec.get t.blocks !bi in
                  if blk.bk_start + blk.bk_rows <= from then continue := false
                  else begin
                    let b = scratch_batch t scratch !bi in
                    let lo = max from blk.bk_start
                    and bhi = min (last + 1) (blk.bk_start + blk.bk_rows) in
                    for row = bhi - 1 downto lo do
                      f row (row_value_of_batch t b (row - blk.bk_start))
                    done;
                    decr bi
                  end
                done)
        end

(* ------------------------------------------------------------------ *)
(* predicate compilation against a decoded batch *)

let compile_pred cols (p : Col_pred.t) =
  match cols.(p.Col_pred.cp_col), p.Col_pred.cp_value with
  | C_int a, Value.Int v ->
      let op = p.Col_pred.cp_op in
      fun j -> Col_pred.matches op (Int64.compare a.(j) v)
  | C_str a, Value.Str v ->
      let op = p.Col_pred.cp_op in
      fun j -> Col_pred.matches op (String.compare a.(j) v)
  | C_dict { dict; codes }, Value.Str v ->
      (* evaluate once per dictionary entry, then test codes only *)
      let op = p.Col_pred.cp_op in
      let ok = Array.map (fun d -> Col_pred.matches op (String.compare d v)) dict in
      fun j -> ok.(codes.(j))
  | (C_int _, Value.Str _) ->
      (* Value.compare orders Int < Str: int cell vs str literal *)
      let r = Col_pred.matches p.Col_pred.cp_op (-1) in
      fun _ -> r
  | (C_str _ | C_dict _), Value.Int _ ->
      let r = Col_pred.matches p.Col_pred.cp_op 1 in
      fun _ -> r

let compile_preds cols preds =
  let fs = List.map (compile_pred cols) preds in
  match fs with
  | [] -> fun _ -> true
  | [ f ] -> f
  | fs -> fun j -> List.for_all (fun f -> f j) fs

(* ------------------------------------------------------------------ *)
(* filtered scan *)

(* Live rows of [from, upto) passing [sel] (a bitmap over absolute
   rows) and [preds], ascending; tuples are materialized only for
   emitted rows. *)
let scan ?sel ?(preds = []) ?from ?upto t f =
  let from, upto = clip_bounds t from upto in
  if from < upto then
    match t.mode with
    | V1 codec ->
        let emit row payload =
          match codec.v1_decode payload with
          | Live tuple -> if Col_pred.eval_tuple preds tuple then f row tuple
          | Tombstone _ -> ()
        in
        (match sel with
        | Some sel ->
            Bitvec.iter_set_range
              (fun row ->
                emit row (Heap_file.get t.file (Vec.get t.offsets row)))
              sel ~lo:from ~hi:upto
        | None ->
            iter ~from ~upto t (fun row rv ->
                match rv with
                | Live tuple ->
                    if Col_pred.eval_tuple preds tuple then f row tuple
                | Tombstone _ -> ()))
    | V2 ->
        with_scratch (fun scratch ->
            let nb = Vec.length t.blocks in
            if from < t.sealed_rows then begin
              let bi = ref (block_index_of_row t from) in
              let continue = ref true in
              while !continue && !bi < nb do
                let blk = Vec.get t.blocks !bi in
                if blk.bk_start >= upto then continue := false
                else begin
                  let lo = max from blk.bk_start
                  and hi = min upto (blk.bk_start + blk.bk_rows) in
                  let selected =
                    match sel with
                    | None -> true
                    | Some sel -> Bitvec.any_in_range sel ~lo ~hi
                  in
                  if not selected then Obs.incr c_blocks_skipped
                  else begin
                    let b =
                      decode_payload t ?scratch
                        (Heap_file.get t.file blk.bk_off)
                    in
                    if b.b_rows <> blk.bk_rows then
                      corrupt
                        "Col_segment: block at %d has %d rows, expected %d in %s"
                        blk.bk_off b.b_rows blk.bk_rows t.path;
                    let ok = compile_preds b.b_cols preds in
                    let emit row =
                      let j = row - blk.bk_start in
                      if (not (is_tomb b j)) && ok j then
                        f row (tuple_of_batch t b j)
                    in
                    match sel with
                    | Some sel -> Bitvec.iter_set_range emit sel ~lo ~hi
                    | None ->
                        for row = lo to hi - 1 do
                          emit row
                        done
                  end;
                  incr bi
                end
              done
            end;
            (* open block: evaluate row-wise on the in-memory rows *)
            let lo = max from t.sealed_rows in
            for row = lo to upto - 1 do
              let selected =
                match sel with None -> true | Some sel -> Bitvec.get sel row
              in
              if selected then
                match t.open_block.(row - t.sealed_rows) with
                | Live tuple ->
                    if Col_pred.eval_tuple preds tuple then f row tuple
                | Tombstone _ -> ()
            done)

(* Row ranges at block granularity, for engines fanning a scan across
   domains: each range decodes disjoint blocks, so parallel workers
   never share scratch or cache entries.  v1 segments use fixed-size
   ranges (every row is its own record). *)
let block_ranges t =
  let n = rows t in
  match t.mode with
  | V1 _ ->
      let nr = (n + block_rows - 1) / block_rows in
      Array.init nr (fun i ->
          (i * block_rows, min n ((i + 1) * block_rows)))
  | V2 ->
      let sealed = Vec.length t.blocks in
      let extra = if t.open_n > 0 then 1 else 0 in
      Array.init (sealed + extra) (fun i ->
          if i < sealed then begin
            let b = Vec.get t.blocks i in
            (b.bk_start, b.bk_start + b.bk_rows)
          end
          else (t.sealed_rows, n))

(* ------------------------------------------------------------------ *)
(* v1 locator conversion (version-first manifests address by byte) *)

let v1_offset_of_row t row =
  match t.mode with
  | V2 -> invalid_arg "Col_segment.v1_offset_of_row: v2 segment"
  | V1 _ ->
      if row >= Vec.length t.offsets then Heap_file.size t.file
      else Vec.get t.offsets row

let v1_row_of_offset t off =
  match t.mode with
  | V2 -> invalid_arg "Col_segment.v1_row_of_offset: v2 segment"
  | V1 _ ->
      (* count of rows whose offset is below [off] *)
      let n = Vec.length t.offsets in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if Vec.get t.offsets mid < off then search (mid + 1) hi
          else search lo mid
      in
      search 0 n

let v1_offsets t =
  match t.mode with
  | V2 -> invalid_arg "Col_segment.v1_offsets: v2 segment"
  | V1 _ -> t.offsets

(* ------------------------------------------------------------------ *)
(* manifest metadata (v2) *)

(* Seals the open block and flushes the heap first, so the persisted
   byte size covers every appended row — reopen truncates the heap to
   exactly this size. *)
let save_meta buf t =
  match t.mode with
  | V1 _ -> invalid_arg "Col_segment.save_meta: v1 manifests are engine-owned"
  | V2 ->
      flush t;
      Binio.write_varint buf (Heap_file.size t.file);
      Binio.write_varint buf (Vec.length t.blocks);
      Vec.iter
        (fun b ->
          Binio.write_varint buf b.bk_off;
          Binio.write_varint buf b.bk_rows)
        t.blocks;
      Array.iter
        (fun st ->
          Binio.write_varint buf st.cs_raw_bytes;
          Binio.write_varint buf st.cs_enc_bytes;
          Binio.write_varint buf st.cs_const_blocks;
          Binio.write_varint buf st.cs_delta_blocks;
          Binio.write_varint buf st.cs_rawstr_blocks;
          Binio.write_varint buf st.cs_dict_blocks)
        t.stats

let open_v2 ~pool ~schema ~compress ~path s pos =
  let size = Binio.read_varint s pos in
  let nblocks = Binio.read_varint s pos in
  let file = Heap_file.open_existing ~pool path in
  if size > Heap_file.size file then
    corrupt "Col_segment: manifest size %d exceeds file %s" size path;
  Heap_file.truncate_to file size;
  let t = make ~pool ~schema ~compress ~path V2 file in
  let start = ref 0 in
  for _ = 1 to nblocks do
    let bk_off = Binio.read_varint s pos in
    let bk_rows = Binio.read_varint s pos in
    if bk_rows <= 0 || bk_rows > block_rows || bk_off >= size then
      corrupt "Col_segment: bad block descriptor in manifest for %s" path;
    ignore (Vec.push t.blocks { bk_off; bk_start = !start; bk_rows });
    start := !start + bk_rows
  done;
  t.sealed_rows <- !start;
  Array.iter
    (fun st ->
      st.cs_raw_bytes <- Binio.read_varint s pos;
      st.cs_enc_bytes <- Binio.read_varint s pos;
      st.cs_const_blocks <- Binio.read_varint s pos;
      st.cs_delta_blocks <- Binio.read_varint s pos;
      st.cs_rawstr_blocks <- Binio.read_varint s pos;
      st.cs_dict_blocks <- Binio.read_varint s pos)
    t.stats;
  t

(* ------------------------------------------------------------------ *)
(* per-column encoding report *)

type col_report = {
  cr_name : string;
  cr_encoding : string; (* dominant encoding across sealed blocks *)
  cr_raw_bytes : int;
  cr_enc_bytes : int;
}

let column_report t =
  match t.mode with
  | V1 _ -> [||]
  | V2 ->
      let cols = Schema.columns t.schema in
      Array.mapi
        (fun c (col : Schema.column) ->
          let st = t.stats.(c) in
          let kinds =
            [
              ("const", st.cs_const_blocks);
              ("delta", st.cs_delta_blocks);
              ("raw", st.cs_rawstr_blocks);
              ("dict", st.cs_dict_blocks);
            ]
          in
          let dominant =
            List.fold_left
              (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
              ("none", 0) kinds
            |> fst
          in
          {
            cr_name = col.Schema.col_name;
            cr_encoding = dominant;
            cr_raw_bytes = st.cs_raw_bytes;
            cr_enc_bytes = st.cs_enc_bytes;
          })
        cols

(* Aggregate several segments' reports (multi-segment engines): byte
   volumes sum per column; the dominant encoding is taken from the
   segment contributing the most raw bytes to that column. *)
let merge_column_reports reports =
  let reports = List.filter (fun r -> Array.length r > 0) reports in
  match reports with
  | [] -> [||]
  | r0 :: _ ->
      Array.mapi
        (fun i c0 ->
          let raw = ref 0 and enc = ref 0 in
          let best = ref c0.cr_encoding and best_raw = ref (-1) in
          List.iter
            (fun r ->
              let c = r.(i) in
              raw := !raw + c.cr_raw_bytes;
              enc := !enc + c.cr_enc_bytes;
              if c.cr_raw_bytes > !best_raw then begin
                best_raw := c.cr_raw_bytes;
                best := c.cr_encoding
              end)
            reports;
          {
            cr_name = c0.cr_name;
            cr_encoding = !best;
            cr_raw_bytes = !raw;
            cr_enc_bytes = !enc;
          })
        r0

(* ------------------------------------------------------------------ *)
(* integrity, migration, lifecycle *)

let verify t =
  match t.mode with
  | V1 _ -> Heap_file.verify t.file
  | V2 ->
      let errors = ref [] in
      (match Heap_file.verify t.file with
      | [] ->
          Vec.iteri
            (fun i blk ->
              try
                let b = decode_payload t (Heap_file.get t.file blk.bk_off) in
                if b.b_rows <> blk.bk_rows then
                  errors :=
                    ( blk.bk_off,
                      Printf.sprintf "block %d row count mismatch" i )
                    :: !errors
              with Binio.Corrupt msg -> errors := (blk.bk_off, msg) :: !errors)
            t.blocks
      | errs -> errors := List.rev errs);
      List.rev !errors

let close t =
  flush t;
  Heap_file.close t.file

let abandon t = Heap_file.abandon t.file

let remove t = Heap_file.remove t.file

(* Rewrite a v1 segment as v2 in place, preserving row order 1:1 (so
   every row-addressed locator — bitmaps, commit histories, version
   pointers — stays valid).  Crash-safe: the v2 copy is built beside
   the original and renamed over it only once complete. *)
let migrate_to_v2 t =
  match t.mode with
  | V2 -> t
  | V1 _ ->
      let tmp = t.path ^ ".mig" in
      let nt = create_v2 ~pool:t.pool ~schema:t.schema ~compress:t.compress ~path:tmp in
      iter t (fun _row rv -> ignore (append nt rv));
      flush nt;
      let blocks = nt.blocks and sealed = nt.sealed_rows and stats = nt.stats in
      Heap_file.close nt.file;
      Heap_file.close t.file;
      Sys.rename tmp t.path;
      let file = Heap_file.open_existing ~pool:t.pool t.path in
      let r = make ~pool:t.pool ~schema:t.schema ~compress:t.compress ~path:t.path V2 file in
      let r = { r with sealed_rows = sealed } in
      Vec.iter (fun b -> ignore (Vec.push r.blocks b)) blocks;
      Array.blit stats 0 r.stats 0 (Array.length stats);
      r

(* ------------------------------------------------------------------ *)
(* manifest format header *)

(* v2 manifests lead with a magic byte no v1 manifest can start with:
   v1 tuple-first manifests begin with a varint string length (a small
   layout name, < 0x80) and v1 version-first / hybrid manifests begin
   with a 0/1 compress flag. *)
let manifest_magic_v2 = 0xF2

let write_manifest_header buf =
  Binio.write_u8 buf manifest_magic_v2;
  Binio.write_u8 buf 2

(* Peek the format version of a manifest blob; consumes the header
   only when it is a v2 one. *)
let manifest_version s pos =
  if String.length s > !pos && Char.code s.[!pos] = manifest_magic_v2 then begin
    incr pos;
    let v = Binio.read_u8 s pos in
    if v < 2 then corrupt "Col_segment: bad manifest format version %d" v;
    v
  end
  else 1
