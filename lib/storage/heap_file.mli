(** Append-only record files (heap files).

    All three Decibel storage schemes keep tuple data in heap files that
    only ever grow: tuple-first uses one shared file, version-first and
    hybrid use one segment file per branch (paper §3).  Records are
    varint-length-prefixed byte strings addressed by their starting byte
    offset; offsets double as record identifiers and as the branch-point
    markers version-first stores in its version graph.

    Appends are buffered in memory and flushed in large writes; reads go
    through the shared {!Buffer_pool} so sequential scans hit cached
    pages.  A single writer is assumed per file (Decibel serializes
    branch modifications with branch-level locks).

    Every record carries a CRC-32 of its payload in the header
    ([varint length, u32 crc, payload]), verified on every read, so
    media corruption and torn flushes surface as
    [Decibel_util.Binio.Corrupt] instead of silently wrong tuples.
    Appends, flushes, reads and truncations announce themselves to the
    {!Decibel_fault.Failpoint} registry (sites ["heap.append"],
    ["heap.flush"] — tearable — ["heap.get"], ["heap.truncate"]);
    flushes retry on transient failures via
    {!Decibel_fault.Retry.with_retries}. *)

type t

val create : pool:Buffer_pool.t -> string -> t
(** Create or truncate the file at the given path. *)

val open_existing : pool:Buffer_pool.t -> string -> t
(** Open for reading and appending; raises [Sys_error] if missing. *)

val open_reset : pool:Buffer_pool.t -> string -> t
(** Open-or-create with logical size 0 {e without} truncating the file
    on disk.  The maintenance executor stages an empty segment over a
    slot whose old bytes must stay readable until the manifest commit;
    stale tail bytes are reclaimed by a later {!create} or
    {!truncate_to}. *)

val path : t -> string

val size : t -> int
(** Logical size in bytes, including unflushed appends.  This is the
    offset the next append will return, i.e. the "end of segment" that
    branch points record (paper §3.3). *)

val page_count : t -> int
(** Number of buffer-pool pages the file's logical size spans — the
    page footprint a full sequential scan touches.  Heap files also
    feed the process-wide ["heap.*"] registry counters (pages read
    from disk, pages allocated, records/bytes written, flushes). *)

val append : t -> string -> int
(** Append one record; returns its offset. *)

val get : t -> int -> string
(** Record starting at the given offset.  Raises [Invalid_argument] on
    an out-of-range offset and [Decibel_util.Binio.Corrupt] if the
    offset does not address a record header or the payload fails its
    checksum. *)

val iter : ?from:int -> ?upto:int -> t -> (int -> string -> unit) -> unit
(** Sequential scan of records whose offsets lie in [\[from, upto)];
    calls [f offset payload] in file order. *)

val iter_rev : ?from:int -> ?upto:int -> t -> (int -> string -> unit) -> unit
(** Like {!iter} but emits records in reverse file order (used by
    version-first lineage scans, which read newest-first). *)

val flush : t -> unit
(** Push buffered appends to the operating system. *)

val truncate_to : t -> int -> unit
(** Discard everything past the given logical size (crash recovery:
    bytes written after the last checkpoint are replayed from the
    write-ahead log instead).  Requires no pending appends and a target
    within the current size.  Only buffer-pool pages at or past the cut
    are invalidated; the retained prefix stays cached. *)

val verify : t -> (int * string) list
(** Walk every record and check its checksum; returns [(offset,
    reason)] for each failure (offset [-1] with the parse error when
    the record framing itself is broken and the scan cannot continue).
    Empty means the file is clean.  Used by fsck. *)

val close : t -> unit

val abandon : t -> unit
(** Crash simulation: discard buffered appends and close the
    descriptor {e without} flushing, leaving on disk exactly what
    earlier flushes made durable.  The handle becomes unusable. *)

val remove : t -> unit
(** Close and delete the underlying file. *)
