(** Page cache shared by heap files.

    Decibel stores pages "in a fairly conventional buffer pool
    architecture" (paper §2.1; 4 MB pages on their testbed).  This pool
    caches fixed-size pages keyed by (file id, page number) with clock
    (second-chance) eviction.  Files perform their own I/O and consult
    the pool; only complete pages are cached, so a file's growing tail
    page is always re-read and never stale.

    The pool counts hits/misses/evictions for benchmark reporting, and
    {!drop_all} simulates a cold cache between measurements (the paper
    flushes disk caches before each operation, §5).

    The pool is domain-safe: it is split into key-hashed shards, each
    with its own mutex, hashtable and clock hand, so concurrent page
    fetches from parallel scan workers contend only when they hash to
    the same shard.  Eviction is clock within each shard; the shards
    partition the page budget. *)

type t

val create :
  ?page_size:int -> ?capacity_pages:int -> ?shards:int -> unit -> t
(** [page_size] in bytes (default 65536); [capacity_pages] bounds
    residency (default 1024, i.e. 64 MiB at the default page size);
    [shards] is the lock-striping factor (default 8, clamped to
    [capacity_pages] so every shard owns at least one page). *)

val page_size : t -> int

val capacity_pages : t -> int
(** Residency bound this pool was created with. *)

val resident_pages : t -> int
(** Pages currently cached ([<= capacity_pages]). *)

val shard_count : t -> int
(** Number of lock-striped shards this pool was created with. *)

val next_file_id : t -> int
(** Fresh identifier for a file joining the pool. *)

val find : t -> file:int -> page:int -> bytes option
(** Cached page contents, if resident. Marks the page recently-used. *)

val add : t -> file:int -> page:int -> bytes -> unit
(** Insert a (complete) page, evicting if at capacity. *)

val invalidate_file : t -> int -> unit
(** Drop every cached page of one file (file truncated or deleted). *)

val invalidate_page : t -> file:int -> page:int -> unit
(** Drop one cached page (its durable contents grew). *)

val invalidate_from : t -> file:int -> page:int -> unit
(** Drop every cached page of one file with page number [>= page]
    (the file was truncated: the page containing the cut and all later
    pages are stale, while earlier pages stay warm). *)

val drop_all : t -> unit
(** Empty the cache; statistics are retained. *)

val note_write_back : t -> unit
(** Record that a file flushed buffered data to disk (called by
    {!Heap_file.flush}); counted in {!stats} and on the
    ["buffer_pool.write_backs"] registry counter. *)

type stats = { hits : int; misses : int; evictions : int; write_backs : int }

val stats : t -> stats
(** This pool's instance statistics.  Every pool also mirrors its
    counts onto the process-wide {!Decibel_obs.Obs} registry under
    ["buffer_pool.hits"], ["buffer_pool.misses"],
    ["buffer_pool.evictions"], ["buffer_pool.reads"],
    ["buffer_pool.writes"] and ["buffer_pool.write_backs"]. *)

val reset_stats : t -> unit
(** Zero this pool's instance statistics.  The registry counters are
    monotonic and shared across pools; clear them with
    {!Decibel_obs.Obs.reset}. *)
