module Obs = Decibel_obs.Obs
module Gctx = Decibel_governor.Governor.Ctx

type key = int * int

type entry = { data : bytes; mutable referenced : bool }

type stats = { hits : int; misses : int; evictions : int; write_backs : int }

(* The pool is split into key-hashed shards, each with its own mutex,
   hashtable, clock ring and statistics, so page fetches from parallel
   scan workers neither race nor serialize on one lock.  A page lives
   in exactly one shard (its key hashes there), so per-shard clock
   eviction is still correct — the rings partition the pool. *)
type shard = {
  sm : Mutex.t;
  cap : int; (* this shard's slice of the page budget *)
  table : (key, entry) Hashtbl.t;
  ring : key array; (* clock ring; (-1,-1) marks a free slot *)
  mutable hand : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  page_size : int;
  capacity : int; (* total across shards *)
  shards : shard array;
  next_file : int Atomic.t;
  write_backs : int Atomic.t;
}

(* Process-wide registry mirrors of the per-pool statistics: every pool
   feeds the same named counters (metric naming: layer.operation.unit),
   so benchmark reports see I/O totals without holding pool handles. *)
let c_hits = Obs.counter "buffer_pool.hits"
let c_misses = Obs.counter "buffer_pool.misses"
let c_evictions = Obs.counter "buffer_pool.evictions"
let c_reads = Obs.counter "buffer_pool.reads"
let c_writes = Obs.counter "buffer_pool.writes"
let c_write_backs = Obs.counter "buffer_pool.write_backs"

let no_key = (-1, -1)

let create ?(page_size = 65536) ?(capacity_pages = 1024) ?(shards = 8) () =
  if page_size <= 0 || capacity_pages <= 0 then
    invalid_arg "Buffer_pool.create: sizes must be positive";
  if shards <= 0 then invalid_arg "Buffer_pool.create: shards must be positive";
  let nshards = min shards capacity_pages in
  let base = capacity_pages / nshards and rem = capacity_pages mod nshards in
  {
    page_size;
    capacity = capacity_pages;
    shards =
      Array.init nshards (fun i ->
          let cap = base + if i < rem then 1 else 0 in
          {
            sm = Mutex.create ();
            cap;
            table = Hashtbl.create (cap * 2);
            ring = Array.make cap no_key;
            hand = 0;
            resident = 0;
            hits = 0;
            misses = 0;
            evictions = 0;
          });
    next_file = Atomic.make 0;
    write_backs = Atomic.make 0;
  }

let shard_of t ((file, page) : key) =
  (* Fibonacci-style mix so consecutive pages of one file spread
     across shards instead of hammering one. *)
  let h = (file * 0x9E3779B1) lxor (page * 0x85EBCA6B) in
  t.shards.((h land max_int) mod Array.length t.shards)

let with_shard s f =
  Mutex.lock s.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.sm) f

let page_size t = t.page_size
let capacity_pages t = t.capacity

let resident_pages t =
  Array.fold_left
    (fun acc s -> acc + with_shard s (fun () -> s.resident))
    0 t.shards

let shard_count t = Array.length t.shards
let next_file_id t = Atomic.fetch_and_add t.next_file 1

let find t ~file ~page =
  Obs.incr c_reads;
  let s = shard_of t (file, page) in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.table (file, page) with
      | Some e ->
          e.referenced <- true;
          s.hits <- s.hits + 1;
          Obs.incr c_hits;
          Obs.Prof.incr Obs.Prof.Pages_hit;
          Decibel_obs.Workload.note_page ~hit:true;
          Some e.data
      | None ->
          s.misses <- s.misses + 1;
          Obs.incr c_misses;
          Obs.Prof.incr Obs.Prof.Pages_missed;
          Decibel_obs.Workload.note_page ~hit:false;
          None)

(* Advance the clock hand until a victim with referenced=false is found,
   clearing reference bits along the way; bounded by 2 * shard capacity.
   Caller holds the shard mutex. *)
let evict_one s =
  let rec loop steps =
    if steps > 2 * s.cap then ()
    else begin
      let k = s.ring.(s.hand) in
      if k = no_key then begin
        s.hand <- (s.hand + 1) mod s.cap;
        loop (steps + 1)
      end
      else
        match Hashtbl.find_opt s.table k with
        | None ->
            s.ring.(s.hand) <- no_key;
            s.hand <- (s.hand + 1) mod s.cap
        | Some e ->
            if e.referenced then begin
              e.referenced <- false;
              s.hand <- (s.hand + 1) mod s.cap;
              loop (steps + 1)
            end
            else begin
              Hashtbl.remove s.table k;
              s.ring.(s.hand) <- no_key;
              s.resident <- s.resident - 1;
              s.evictions <- s.evictions + 1;
              Obs.incr c_evictions;
              s.hand <- (s.hand + 1) mod s.cap
            end
    end
  in
  loop 0

let add t ~file ~page data =
  let k = (file, page) in
  (* Page loads are the dominant transient allocation on read paths:
     charge them to the governed operation's byte budget (if any).
     [charge_current] never raises — a breach surfaces at the op's next
     poll point, so cache bookkeeping below cannot be torn. *)
  Gctx.charge_current (Bytes.length data);
  (* profile-attributed decode volume: every page materialized into
     the pool was read+decoded on behalf of the ambient request *)
  Obs.Prof.add Obs.Prof.Bytes_decoded (Bytes.length data);
  Obs.incr c_writes;
  let s = shard_of t k in
  with_shard s (fun () ->
      (match Hashtbl.find_opt s.table k with
      | Some e ->
          (* refresh in place (a partial page grew) *)
          Hashtbl.replace s.table k { data; referenced = e.referenced }
      | None -> ());
      if not (Hashtbl.mem s.table k) then begin
        if s.resident >= s.cap then evict_one s;
        if s.resident < s.cap then begin
          Hashtbl.replace s.table k { data; referenced = true };
          (* place in a free ring slot starting from the hand *)
          let rec place i steps =
            if steps >= s.cap then ()
            else if s.ring.(i) = no_key then s.ring.(i) <- k
            else place ((i + 1) mod s.cap) (steps + 1)
          in
          place s.hand 0;
          s.resident <- s.resident + 1
        end
      end)

let note_write_back t =
  ignore (Atomic.fetch_and_add t.write_backs 1);
  Obs.incr c_write_backs

let invalidate_page t ~file ~page =
  let k = (file, page) in
  let s = shard_of t k in
  with_shard s (fun () ->
      if Hashtbl.mem s.table k then begin
        Hashtbl.remove s.table k;
        s.resident <- s.resident - 1;
        Array.iteri (fun i k' -> if k' = k then s.ring.(i) <- no_key) s.ring
      end)

let invalidate_matching t pred =
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          let keys =
            Hashtbl.fold
              (fun k _ acc -> if pred k then k :: acc else acc)
              s.table []
          in
          List.iter (Hashtbl.remove s.table) keys;
          Array.iteri
            (fun i k -> if k <> no_key && pred k then s.ring.(i) <- no_key)
            s.ring;
          s.resident <- Hashtbl.length s.table))
    t.shards

let invalidate_from t ~file ~page =
  invalidate_matching t (fun (f, p) -> f = file && p >= page)

let invalidate_file t file = invalidate_matching t (fun (f, _) -> f = file)

let drop_all t =
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          Hashtbl.reset s.table;
          Array.fill s.ring 0 (Array.length s.ring) no_key;
          s.resident <- 0;
          s.hand <- 0))
    t.shards

let stats t =
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          hits := !hits + s.hits;
          misses := !misses + s.misses;
          evictions := !evictions + s.evictions))
    t.shards;
  {
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    write_backs = Atomic.get t.write_backs;
  }

(* Resets this pool's instance statistics only: the registry counters
   are process-wide and monotonic (use Obs.reset to clear those). *)
let reset_stats t =
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          s.hits <- 0;
          s.misses <- 0;
          s.evictions <- 0))
    t.shards;
  Atomic.set t.write_backs 0
